// Tests for the wraparound-mesh embeddings (Section 6).
#include "torus/torus.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/verify.hpp"
#include "search/provider.hpp"

namespace hj::torus {
namespace {

TorusPlanner make_planner(bool with_search = false) {
  TorusPlanner p;
  if (with_search) p.set_direct_provider(search::make_search_provider());
  return p;
}

// --- AxisCodec unit behaviour. ---

TEST(AxisCodec, HalfCycleCoversAllPositions) {
  AxisCodec c = AxisCodec::make(AxisScheme::Half, 10, true);
  EXPECT_EQ(c.quotient_len, 5u);
  EXPECT_EQ(c.cycle_len, 10u);
  EXPECT_EQ(c.removed_count(), 0u);
  // The cycle visits each (y, x) pair once.
  std::set<std::pair<u64, u64>> seen;
  for (u64 t = 0; t < c.cycle_len; ++t) {
    auto p = c.phys(t);
    EXPECT_TRUE(seen.insert({p.y, p.code}).second);
    EXPECT_LT(p.y, c.quotient_len);
    EXPECT_LE(p.code, 1u);
  }
}

TEST(AxisCodec, HalfOddRemovesAlphaNode) {
  AxisCodec c = AxisCodec::make(AxisScheme::Half, 9, true);
  EXPECT_EQ(c.quotient_len, 5u);
  EXPECT_EQ(c.removed_count(), 1u);
  EXPECT_TRUE(c.is_removed(5));  // top of the return column
  // Guest coordinates skip exactly the removed position.
  std::set<u64> used;
  for (u64 g = 0; g < 9; ++g) {
    const u64 t = c.pos_of_guest(g);
    EXPECT_FALSE(c.is_removed(t)) << "g=" << g;
    EXPECT_TRUE(used.insert(t).second);
  }
}

TEST(AxisCodec, QuarterSnakeIsAHamiltonianCycle) {
  AxisCodec c = AxisCodec::make(AxisScheme::Quarter, 20, true);
  EXPECT_EQ(c.quotient_len, 5u);
  EXPECT_EQ(c.cycle_len, 20u);
  std::set<std::pair<u64, u64>> seen;
  for (u64 t = 0; t < c.cycle_len; ++t) {
    auto p = c.phys(t);
    auto q = c.phys((t + 1) % c.cycle_len);
    EXPECT_TRUE(seen.insert({p.y, p.code}).second) << t;
    // Consecutive positions differ in exactly one of (quotient step,
    // one-bit ring step).
    if (p.y == q.y) {
      EXPECT_EQ(hamming(p.code, q.code), 1u) << t;
    } else {
      EXPECT_EQ(p.code, q.code) << t;
      EXPECT_EQ(std::max(p.y, q.y) - std::min(p.y, q.y), 1u) << t;
    }
  }
  EXPECT_EQ(seen.size(), 20u);
}

TEST(AxisCodec, QuarterRemovalsAreRowMiddles) {
  for (u64 l : {u64{17}, u64{18}, u64{19}}) {
    AxisCodec c = AxisCodec::make(AxisScheme::Quarter, l, true);
    EXPECT_EQ(c.removed_count(), 20 - l);
    u64 removed = 0;
    for (u64 t = 0; t < c.cycle_len; ++t) {
      if (!c.is_removed(t)) continue;
      ++removed;
      // Both cycle neighbors must be ring (inner) steps: bridge cost 2.
      auto prev = c.phys((t + c.cycle_len - 1) % c.cycle_len);
      auto self = c.phys(t);
      auto next = c.phys((t + 1) % c.cycle_len);
      EXPECT_EQ(prev.y, self.y);
      EXPECT_EQ(next.y, self.y);
    }
    EXPECT_EQ(removed, 20 - l);
  }
}

TEST(AxisCodec, SchemePreconditions) {
  EXPECT_THROW(AxisCodec::make(AxisScheme::Gray, 6, true),
               std::invalid_argument);
  EXPECT_THROW(AxisCodec::make(AxisScheme::Ring, 9, true),
               std::invalid_argument);
  EXPECT_THROW(AxisCodec::make(AxisScheme::Quarter, 8, true),
               std::invalid_argument);  // ceil(8/4) = 2 < 3
  EXPECT_NO_THROW(AxisCodec::make(AxisScheme::Quarter, 9, true));
  EXPECT_THROW(AxisCodec::make(AxisScheme::Pass, 5, true),
               std::invalid_argument);
}

// --- Whole-torus embeddings. ---

class TorusShapes : public ::testing::TestWithParam<Shape> {};

TEST_P(TorusShapes, ValidAndCertified) {
  static TorusPlanner p = make_planner();
  PlanResult r = p.plan(GetParam());
  EXPECT_TRUE(r.report.valid)
      << GetParam().to_string() << ": "
      << (r.report.errors.empty() ? r.plan : r.report.errors[0]);
  EXPECT_LE(r.report.dilation, 3u) << GetParam().to_string();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TorusShapes,
    ::testing::Values(Shape{4}, Shape{5}, Shape{6}, Shape{7}, Shape{9},
                      Shape{12}, Shape{4, 4}, Shape{6, 6}, Shape{5, 5},
                      Shape{6, 10}, Shape{12, 20}, Shape{9, 7}, Shape{13, 5},
                      Shape{4, 4, 4}, Shape{6, 6, 6}, Shape{5, 6, 7},
                      Shape{12, 12, 12}),
    [](const auto& param_info) {
      std::string s = param_info.param.to_string();
      for (auto& ch : s)
        if (ch == 'x') ch = '_';
      return "T" + s;
    });

TEST(Torus, PowerOfTwoTorusIsGrayDilationOne) {
  TorusPlanner p = make_planner();
  PlanResult r = p.plan(Shape{8, 4});
  EXPECT_TRUE(r.report.valid);
  EXPECT_EQ(r.report.dilation, 1u);
  EXPECT_TRUE(r.report.minimal_expansion);
}

TEST(Torus, EvenTorusDilationTwoCorollary3) {
  // Corollary 3, first clause: both sides even => dilation <= 2 at minimal
  // expansion (given the quotient embeds with dilation <= 2).
  TorusPlanner p = make_planner();
  for (Shape s : {Shape{6, 6}, Shape{6, 10}, Shape{10, 12}, Shape{12, 20}}) {
    PlanResult r = p.plan(s);
    EXPECT_TRUE(r.report.valid) << s.to_string();
    EXPECT_TRUE(r.report.minimal_expansion) << s.to_string() << " " << r.plan;
    EXPECT_LE(r.report.dilation, 2u) << s.to_string() << " " << r.plan;
  }
}

TEST(Torus, QuarterConditionGivesDilationTwo) {
  // Corollary 3, quarter clause on an odd side: 13 = 4*4 - 3, quotient
  // 4x... pick 13x5: ceil2(65) = 128; quarter on 13 (q=4? no, q=4 >= 3
  // via ceil(13/4)=4) and ring on 5: cube = ...
  TorusPlanner p = make_planner();
  PlanResult r = p.plan(Shape{13, 5});
  EXPECT_TRUE(r.report.valid) << r.plan;
  EXPECT_LE(r.report.dilation, 2u) << r.plan;
}

TEST(Torus, OddRingMatchesBipartiteLowerBound) {
  // An odd cycle cannot embed with dilation 1 (the cube is bipartite).
  TorusPlanner p = make_planner();
  PlanResult r = p.plan(Shape{9});
  EXPECT_TRUE(r.report.valid);
  EXPECT_GE(r.report.dilation, 2u);
  EXPECT_TRUE(r.report.minimal_expansion);  // 9 nodes in Q4
}

TEST(Torus, MixedWrapAxes) {
  // Wrap only the second axis: a cylinder.
  TorusPlanner p = make_planner();
  Mesh cylinder(Shape{4, 6}, SmallVec<u8, 4>{0, 1});
  PlanResult r = p.plan(cylinder);
  EXPECT_TRUE(r.report.valid) << r.plan;
  EXPECT_LE(r.report.dilation, 2u);
  // The guest keeps its wrap edge count: 4*5... axis0 (no wrap) 3*6=18
  // edges, axis1 (wrap, len 6) 6*4=24 edges.
  EXPECT_EQ(r.report.guest_edges, 42u);
}

TEST(Torus, RingSchemeSmallLengths) {
  TorusPlanner p = make_planner();
  for (u64 l : {u64{3}, u64{5}, u64{6}, u64{7}}) {
    PlanResult r = p.plan(Shape{l});
    EXPECT_TRUE(r.report.valid) << l;
    EXPECT_TRUE(r.report.minimal_expansion) << l;
    EXPECT_LE(r.report.dilation, 2u) << l;
  }
}

TEST(Torus, WrapEdgesAreShortEverywhere) {
  // Every wrap edge individually must respect the certified dilation.
  TorusPlanner p = make_planner();
  PlanResult r = p.plan(Shape{10, 6});
  u32 max_wrap_dil = 0;
  r.embedding->guest().for_each_edge([&](const MeshEdge& e) {
    if (!e.wrap) return;
    max_wrap_dil = std::max(
        max_wrap_dil, static_cast<u32>(r.embedding->edge_path(e).size() - 1));
  });
  EXPECT_LE(max_wrap_dil, r.report.dilation);
  EXPECT_GE(max_wrap_dil, 1u);
}

TEST(Torus, LargeOddAxesStillWork) {
  TorusPlanner p = make_planner();
  PlanResult r = p.plan(Shape{21, 9});
  EXPECT_TRUE(r.report.valid) << r.plan;
  EXPECT_LE(r.report.dilation, 3u);
}

TEST(Torus, DirectSearchRescuesSmallTori) {
  // The 3x3 torus: ceil2(9) = 16, but half/quarter/ring schemes round the
  // axes up; the whole-torus searcher finds a minimal Q4 embedding.
  TorusPlanner plain = make_planner(false);
  PlanResult before = plain.plan(Shape{3, 3});
  TorusPlanner searching = make_planner(true);
  PlanResult after = searching.plan(Shape{3, 3});
  EXPECT_TRUE(after.report.valid) << after.plan;
  EXPECT_LE(after.report.host_dim, before.report.host_dim);
  EXPECT_TRUE(after.report.minimal_expansion) << after.plan;
  EXPECT_LE(after.report.dilation, 2u) << after.plan;
}

TEST(Torus, DirectSearchSweepSmallSquares) {
  TorusPlanner p = make_planner(true);
  for (u64 l : {u64{3}, u64{5}, u64{6}, u64{7}}) {
    PlanResult r = p.plan(Shape{l, l});
    EXPECT_TRUE(r.report.valid) << l << " " << r.plan;
    EXPECT_LE(r.report.dilation, 2u) << l << " " << r.plan;
    EXPECT_TRUE(r.report.minimal_expansion) << l << " " << r.plan;
  }
}

}  // namespace
}  // namespace hj::torus
