#include "core/small_vec.hpp"

#include <gtest/gtest.h>

#include "core/common.hpp"

#include <numeric>

namespace hj {
namespace {

TEST(SmallVec, InlineUse) {
  SmallVec<int, 4> v;
  EXPECT_TRUE(v.empty());
  v.push_back(1);
  v.push_back(2);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v.back(), 2);
}

TEST(SmallVec, SpillsToHeapAndKeepsData) {
  SmallVec<int, 2> v;
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(v[static_cast<size_t>(i)], i);
}

TEST(SmallVec, CopySemantics) {
  SmallVec<int, 2> v{1, 2, 3, 4, 5};
  SmallVec<int, 2> w = v;
  w[0] = 42;
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(w[0], 42);
  EXPECT_EQ(w.size(), 5u);
  v = w;
  EXPECT_EQ(v[0], 42);
}

TEST(SmallVec, MoveSemantics) {
  SmallVec<int, 2> v;
  for (int i = 0; i < 50; ++i) v.push_back(i);
  SmallVec<int, 2> w = std::move(v);
  EXPECT_EQ(w.size(), 50u);
  EXPECT_EQ(w[49], 49);
  EXPECT_TRUE(v.empty());  // moved-from is reusable
  v.push_back(7);
  EXPECT_EQ(v[0], 7);
}

TEST(SmallVec, ResizeAndAssign) {
  SmallVec<u64, 4> v;
  v.resize(10, 3);
  EXPECT_EQ(v.size(), 10u);
  EXPECT_EQ(v[9], 3u);
  v.assign(2, 9);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], 9u);
}

TEST(SmallVec, Reverse) {
  SmallVec<int, 4> v{1, 2, 3};
  v.reverse();
  EXPECT_EQ(v, (SmallVec<int, 4>{3, 2, 1}));
}

TEST(SmallVec, Equality) {
  SmallVec<int, 4> a{1, 2, 3};
  SmallVec<int, 4> b{1, 2, 3};
  SmallVec<int, 4> c{1, 2};
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(SmallVec, IteratorConstruction) {
  std::vector<int> src(20);
  std::iota(src.begin(), src.end(), 0);
  SmallVec<int, 4> v(src.begin(), src.end());
  EXPECT_EQ(v.size(), 20u);
  EXPECT_EQ(v[19], 19);
}

}  // namespace
}  // namespace hj
