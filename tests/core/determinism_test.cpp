// Determinism across thread counts: the batch engine's contract is that
// sweep_3d, verify_batch and plan_batch return *bit-identical* results
// at every HJ_THREADS setting — counts, metrics (doubles compared
// exactly), histograms and plan strings. The par:: engine guarantees
// this by fixing the chunk decomposition and the merge order
// independently of the worker count; these tests pin the contract.
#include <gtest/gtest.h>

#include <random>

#include "core/coverage.hpp"
#include "core/parallel.hpp"
#include "core/planner.hpp"
#include "core/verify.hpp"

namespace hj {
namespace {

constexpr u32 kThreadCounts[] = {1, 2, 8};

/// RAII guard: restore the engine to env/hardware resolution on exit so
/// a failing test cannot leak an override into later tests.
struct ThreadOverrideGuard {
  ~ThreadOverrideGuard() { par::set_thread_override(0); }
};

void expect_same_report(const VerifyReport& a, const VerifyReport& b) {
  EXPECT_EQ(a.valid, b.valid);
  EXPECT_EQ(a.errors, b.errors);
  EXPECT_EQ(a.guest_nodes, b.guest_nodes);
  EXPECT_EQ(a.guest_edges, b.guest_edges);
  EXPECT_EQ(a.host_dim, b.host_dim);
  EXPECT_EQ(a.expansion, b.expansion);  // doubles: exact, not approximate
  EXPECT_EQ(a.minimal_expansion, b.minimal_expansion);
  EXPECT_EQ(a.dilation, b.dilation);
  EXPECT_EQ(a.avg_dilation, b.avg_dilation);
  EXPECT_EQ(a.dilation_histogram, b.dilation_histogram);
  EXPECT_EQ(a.wirelength, b.wirelength);
  EXPECT_TRUE(a.bounds == b.bounds);
  EXPECT_EQ(a.congestion, b.congestion);
  EXPECT_EQ(a.avg_congestion, b.avg_congestion);
  EXPECT_EQ(a.congestion_histogram, b.congestion_histogram);
  EXPECT_EQ(a.load_factor, b.load_factor);
}

std::vector<Shape> seeded_shapes(std::size_t count) {
  std::mt19937_64 rng(20260806);
  std::uniform_int_distribution<u64> axis(1, 24);
  std::uniform_int_distribution<u32> rank(1, 3);
  std::vector<Shape> shapes;
  while (shapes.size() < count) {
    SmallVec<u64, 4> ext;
    const u32 k = rank(rng);
    for (u32 d = 0; d < k; ++d) ext.push_back(axis(rng));
    Shape s{ext};
    if (s.num_nodes() >= 2 && s.num_nodes() <= 4096)
      shapes.push_back(std::move(s));
  }
  return shapes;
}

TEST(Determinism, SweepCountsIdenticalAtEveryThreadCount) {
  const ThreadOverrideGuard guard;
  par::set_thread_override(1);
  const coverage::SweepCounts reference = coverage::sweep_3d(5);
  for (u32 threads : kThreadCounts) {
    par::set_thread_override(threads);
    const coverage::SweepCounts c = coverage::sweep_3d(5);
    EXPECT_EQ(c.total, reference.total) << threads << " threads";
    EXPECT_EQ(c.by_method, reference.by_method) << threads << " threads";
  }
}

TEST(Determinism, SweepHonoursHjThreadsEnvironment) {
  const ThreadOverrideGuard guard;
  par::set_thread_override(0);
  ASSERT_EQ(setenv("HJ_THREADS", "3", 1), 0);
  EXPECT_EQ(par::thread_count(), 3u);
  const coverage::SweepCounts at3 = coverage::sweep_3d(4);
  ASSERT_EQ(setenv("HJ_THREADS", "1", 1), 0);
  EXPECT_EQ(par::thread_count(), 1u);
  const coverage::SweepCounts at1 = coverage::sweep_3d(4);
  unsetenv("HJ_THREADS");
  EXPECT_EQ(at3.by_method, at1.by_method);
  // The CLI override outranks the environment.
  par::set_thread_override(5);
  EXPECT_EQ(par::thread_count(), 5u);
}

TEST(Determinism, VerifyBatchIdenticalAtEveryThreadCount) {
  const ThreadOverrideGuard guard;
  par::set_thread_override(1);
  const std::vector<Shape> shapes = seeded_shapes(40);
  std::vector<EmbeddingPtr> embs;
  for (const PlanResult& p : plan_batch(shapes)) embs.push_back(p.embedding);

  const std::vector<VerifyReport> reference = verify_batch(embs);
  ASSERT_EQ(reference.size(), embs.size());
  for (u32 threads : kThreadCounts) {
    par::set_thread_override(threads);
    const std::vector<VerifyReport> reports = verify_batch(embs);
    ASSERT_EQ(reports.size(), reference.size());
    for (std::size_t i = 0; i < reports.size(); ++i) {
      SCOPED_TRACE(shapes[i].to_string() + " at " + std::to_string(threads) +
                   " threads");
      expect_same_report(reports[i], reference[i]);
    }
  }
}

TEST(Determinism, VerifyBatchMatchesSerialVerify) {
  const ThreadOverrideGuard guard;
  par::set_thread_override(4);
  const std::vector<Shape> shapes = seeded_shapes(12);
  std::vector<EmbeddingPtr> embs;
  for (const PlanResult& p : plan_batch(shapes)) embs.push_back(p.embedding);
  const std::vector<VerifyReport> batch = verify_batch(embs);
  for (std::size_t i = 0; i < embs.size(); ++i) {
    SCOPED_TRACE(shapes[i].to_string());
    expect_same_report(batch[i], verify(*embs[i]));
  }
}

TEST(Determinism, PlanBatchIdenticalAtEveryThreadCount) {
  const ThreadOverrideGuard guard;
  // Include permuted duplicates so the canonical dedup + perm relabel
  // path is exercised under contention.
  std::vector<Shape> shapes = seeded_shapes(48);
  shapes.push_back(Shape{5, 3, 2});
  shapes.push_back(Shape{2, 3, 5});
  shapes.push_back(Shape{3, 5, 2});

  par::set_thread_override(1);
  const std::vector<PlanResult> reference = plan_batch(shapes);
  for (u32 threads : kThreadCounts) {
    par::set_thread_override(threads);
    const std::vector<PlanResult> results = plan_batch(shapes);
    ASSERT_EQ(results.size(), reference.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      SCOPED_TRACE(shapes[i].to_string() + " at " + std::to_string(threads) +
                   " threads");
      EXPECT_EQ(results[i].plan, reference[i].plan);
      expect_same_report(results[i].report, reference[i].report);
    }
  }
}

TEST(Determinism, PlanBatchIdenticalPerObjectiveAtEveryThreadCount) {
  // The multi-objective planner must stay bit-identical across thread
  // counts for *every* objective, not just the lexicographic default:
  // non-lex objectives verify candidates and race the balanced router,
  // so any nondeterminism there would leak into plan strings or metrics.
  const ThreadOverrideGuard guard;
  const std::vector<Shape> shapes = seeded_shapes(16);
  for (u32 obj = 0; obj < cost::kNumObjectives; ++obj) {
    PlannerOptions opts;
    opts.objective = static_cast<cost::Objective>(obj);
    SCOPED_TRACE(std::string("objective ") +
                 cost::objective_name(opts.objective));
    par::set_thread_override(1);
    const std::vector<PlanResult> reference = plan_batch(shapes, opts);
    for (u32 threads : kThreadCounts) {
      par::set_thread_override(threads);
      const std::vector<PlanResult> results = plan_batch(shapes, opts);
      ASSERT_EQ(results.size(), reference.size());
      for (std::size_t i = 0; i < results.size(); ++i) {
        SCOPED_TRACE(shapes[i].to_string() + " at " +
                     std::to_string(threads) + " threads");
        EXPECT_EQ(results[i].plan, reference[i].plan);
        expect_same_report(results[i].report, reference[i].report);
      }
    }
  }
}

TEST(Determinism, PlanBatchCanonicalizesPermutedShapes) {
  const ThreadOverrideGuard guard;
  par::set_thread_override(2);
  const std::vector<Shape> shapes = {Shape{7, 3, 2}, Shape{2, 3, 7},
                                     Shape{3, 7, 2}, Shape{2, 3, 7}};
  const std::vector<PlanResult> results = plan_batch(shapes);
  // All four are one canonical class: same cube, same certified metrics,
  // and each result's guest is the shape as requested.
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].embedding->guest().shape(), shapes[i]);
    EXPECT_EQ(results[i].report.host_dim, results[0].report.host_dim);
    EXPECT_EQ(results[i].report.dilation, results[0].report.dilation);
    EXPECT_EQ(results[i].report.congestion, results[0].report.congestion);
    EXPECT_TRUE(results[i].report.valid);
  }
  // Exact duplicates share one plan (and plan string).
  EXPECT_EQ(results[1].plan, results[3].plan);
  // The sorted member is the canonical plan; permuted members carry the
  // perm<> relabel wrapper.
  EXPECT_NE(results[1].plan.rfind("perm<", 0), 0u);
  EXPECT_EQ(results[0].plan.rfind("perm<", 0), 0u);
}

TEST(Determinism, RepeatedRunsAtEightThreadsAreBitIdentical) {
  // Thread-count invariance alone would not catch a racy self-scheduler:
  // with ticket-based chunk claiming, *which worker* computes a chunk
  // varies run to run even at a fixed thread count. Five repeated runs
  // at 8 threads pin that the claim order never leaks into results —
  // the merge order is a function of the chunk index only.
  const ThreadOverrideGuard guard;
  par::set_thread_override(8);
  const std::vector<Shape> shapes = seeded_shapes(24);

  const coverage::SweepCounts sweep_ref = coverage::sweep_3d(5);
  const std::vector<PlanResult> plan_ref = plan_batch(shapes);
  std::vector<EmbeddingPtr> embs;
  for (const PlanResult& p : plan_ref) embs.push_back(p.embedding);
  const std::vector<VerifyReport> verify_ref = verify_batch(embs);

  for (int run = 1; run < 5; ++run) {
    SCOPED_TRACE("repeat " + std::to_string(run));
    const coverage::SweepCounts sweep = coverage::sweep_3d(5);
    EXPECT_EQ(sweep.total, sweep_ref.total);
    EXPECT_EQ(sweep.by_method, sweep_ref.by_method);

    const std::vector<PlanResult> plans = plan_batch(shapes);
    ASSERT_EQ(plans.size(), plan_ref.size());
    for (std::size_t i = 0; i < plans.size(); ++i) {
      EXPECT_EQ(plans[i].plan, plan_ref[i].plan) << shapes[i].to_string();
      expect_same_report(plans[i].report, plan_ref[i].report);
    }

    const std::vector<VerifyReport> reports = verify_batch(embs);
    ASSERT_EQ(reports.size(), verify_ref.size());
    for (std::size_t i = 0; i < reports.size(); ++i) {
      SCOPED_TRACE(shapes[i].to_string());
      expect_same_report(reports[i], verify_ref[i]);
    }
  }
}

TEST(Determinism, SharedCacheReusesFactorPlans) {
  const ThreadOverrideGuard guard;
  par::set_thread_override(2);
  ShardedPlanCache cache;
  const std::vector<Shape> shapes = {Shape{6, 10}, Shape{10, 6},
                                     Shape{12, 10}};
  const std::vector<PlanResult> first = plan_batch(shapes, {}, nullptr,
                                                   &cache);
  EXPECT_GT(cache.size(), 0u);
  const u64 size_after_first = cache.size();
  // Replanning the same batch against the warm cache adds no entries and
  // returns identical plans.
  const std::vector<PlanResult> second = plan_batch(shapes, {}, nullptr,
                                                    &cache);
  EXPECT_EQ(cache.size(), size_after_first);
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    EXPECT_EQ(first[i].plan, second[i].plan);
    expect_same_report(first[i].report, second[i].report);
  }
}

}  // namespace
}  // namespace hj
