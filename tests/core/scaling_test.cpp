// Self-timing scaling gate for the parallel engine. The hot-path rewrite
// (persistent self-scheduling pool, arena-backed verify, bitword
// bookkeeping) promises real multi-core scaling, not just determinism —
// this harness measures it: sweep_3d and verify_batch on an n=9-class
// workload at HJ_THREADS=1 versus every hardware thread must come out at
// least 2x faster. Timing tests are noise-prone by nature, so each
// configuration takes the best of several runs on a pre-warmed pool; the
// 2x bar is far below the ~6x an 8-core machine reaches, leaving slack
// for a loaded CI runner without letting a serialized engine pass.
//
// On machines with fewer than 4 hardware threads a 2x speedup is not
// measurable, so the gate skips (with a notice); the multicore CI
// runners are where it binds.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include "core/coverage.hpp"
#include "core/embedding.hpp"
#include "core/parallel.hpp"
#include "core/verify.hpp"

namespace hj {
namespace {

constexpr u32 kMinHardwareThreads = 4;
constexpr double kRequiredSpeedup = 2.0;

/// RAII guard: restore the engine to env/hardware resolution on exit so
/// a failing test cannot leak an override into later tests.
struct ThreadOverrideGuard {
  ~ThreadOverrideGuard() { par::set_thread_override(0); }
};

template <class Fn>
double seconds_of(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

/// Best (minimum) wall time over `reps` runs — the standard damping for
/// scheduler jitter when benchmarking inside a test.
template <class Fn>
double best_of(int reps, Fn&& fn) {
  double best = seconds_of(fn);
  for (int r = 1; r < reps; ++r) best = std::min(best, seconds_of(fn));
  return best;
}

/// Spin the pool up (worker threads spawn on first use) so neither timed
/// configuration pays the one-time startup cost.
void warm_pool(u32 threads) {
  par::set_thread_override(threads);
  (void)coverage::sweep_3d(4);
}

TEST(Scaling, SweepReachesTwoXOnMulticore) {
  const u32 hw = std::thread::hardware_concurrency();
  if (hw < kMinHardwareThreads) {
    GTEST_SKIP() << "scaling gate needs >= " << kMinHardwareThreads
                 << " hardware threads, found " << hw
                 << "; speedup is enforced on the multicore CI runners";
  }
  const ThreadOverrideGuard guard;
  warm_pool(hw);

  par::set_thread_override(1);
  const double serial = best_of(2, [] { (void)coverage::sweep_3d(9); });
  par::set_thread_override(hw);
  const double parallel = best_of(3, [] { (void)coverage::sweep_3d(9); });

  const double speedup = serial / parallel;
  RecordProperty("sweep_serial_s", std::to_string(serial));
  RecordProperty("sweep_parallel_s", std::to_string(parallel));
  RecordProperty("sweep_speedup", std::to_string(speedup));
  EXPECT_GE(speedup, kRequiredSpeedup)
      << "sweep_3d(9): " << serial << "s at 1 thread vs " << parallel
      << "s at " << hw << " threads (" << speedup << "x)";
}

TEST(Scaling, VerifyBatchReachesTwoXOnMulticore) {
  const u32 hw = std::thread::hardware_concurrency();
  if (hw < kMinHardwareThreads) {
    GTEST_SKIP() << "scaling gate needs >= " << kMinHardwareThreads
                 << " hardware threads, found " << hw
                 << "; speedup is enforced on the multicore CI runners";
  }
  const ThreadOverrideGuard guard;
  warm_pool(hw);

  // n=9-class workload: every sorted 3-d shape with sides 4..16 (up to
  // 4096 nodes, minimal cubes up to Q12), four Gray copies each — a few
  // million guest edges in total, enough serial work for the ratio to be
  // meaningful while one verify stays far smaller than one chunk of it.
  std::vector<EmbeddingPtr> embs;
  for (u64 a = 4; a <= 16; ++a)
    for (u64 b = a; b <= 16; ++b)
      for (u64 c = b; c <= 16; ++c)
        for (int copy = 0; copy < 4; ++copy)
          embs.push_back(std::make_shared<GrayEmbedding>(Mesh(Shape{a, b, c})));

  par::set_thread_override(1);
  const double serial = best_of(2, [&] { (void)verify_batch(embs); });
  par::set_thread_override(hw);
  const double parallel = best_of(3, [&] { (void)verify_batch(embs); });

  const double speedup = serial / parallel;
  RecordProperty("verify_serial_s", std::to_string(serial));
  RecordProperty("verify_parallel_s", std::to_string(parallel));
  RecordProperty("verify_speedup", std::to_string(speedup));
  EXPECT_GE(speedup, kRequiredSpeedup)
      << "verify_batch(" << embs.size() << " embeddings): " << serial
      << "s at 1 thread vs " << parallel << "s at " << hw << " threads ("
      << speedup << "x)";
}

}  // namespace
}  // namespace hj
