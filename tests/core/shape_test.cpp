#include "core/shape.hpp"

#include <gtest/gtest.h>

namespace hj {
namespace {

TEST(BitUtils, CeilPow2) {
  EXPECT_EQ(ceil_pow2(1), 1u);
  EXPECT_EQ(ceil_pow2(2), 2u);
  EXPECT_EQ(ceil_pow2(3), 4u);
  EXPECT_EQ(ceil_pow2(4), 4u);
  EXPECT_EQ(ceil_pow2(5), 8u);
  EXPECT_EQ(ceil_pow2(63), 64u);
  EXPECT_EQ(ceil_pow2(64), 64u);
  EXPECT_EQ(ceil_pow2(65), 128u);
  EXPECT_EQ(ceil_pow2(u64{1} << 40), u64{1} << 40);
  EXPECT_EQ(ceil_pow2((u64{1} << 40) + 1), u64{1} << 41);
}

TEST(BitUtils, Log2) {
  EXPECT_EQ(log2_ceil(1), 0u);
  EXPECT_EQ(log2_ceil(2), 1u);
  EXPECT_EQ(log2_ceil(3), 2u);
  EXPECT_EQ(log2_ceil(512), 9u);
  EXPECT_EQ(log2_ceil(513), 10u);
  EXPECT_EQ(log2_floor(1), 0u);
  EXPECT_EQ(log2_floor(2), 1u);
  EXPECT_EQ(log2_floor(3), 1u);
  EXPECT_EQ(log2_floor(512), 9u);
}

TEST(BitUtils, Hamming) {
  EXPECT_EQ(hamming(0, 0), 0u);
  EXPECT_EQ(hamming(0b1010, 0b0101), 4u);
  EXPECT_EQ(hamming(7, 6), 1u);
}

TEST(Shape, NodeCountAndDims) {
  Shape s{3, 5, 7};
  EXPECT_EQ(s.dims(), 3u);
  EXPECT_EQ(s.num_nodes(), 105u);
  EXPECT_EQ(s[0], 3u);
  EXPECT_EQ(s[2], 7u);
}

TEST(Shape, RowMajorStrides) {
  Shape s{3, 5, 7};
  EXPECT_EQ(s.stride(0), 35u);
  EXPECT_EQ(s.stride(1), 7u);
  EXPECT_EQ(s.stride(2), 1u);
}

TEST(Shape, IndexCoordRoundTrip) {
  Shape s{4, 3, 5};
  for (MeshIndex i = 0; i < s.num_nodes(); ++i) {
    EXPECT_EQ(s.index(s.coord(i)), i);
  }
  EXPECT_EQ(s.index(Coord{0, 0, 0}), 0u);
  EXPECT_EQ(s.index(Coord{0, 0, 1}), 1u);
  EXPECT_EQ(s.index(Coord{1, 0, 0}), 15u);
  EXPECT_EQ(s.index(Coord{3, 2, 4}), s.num_nodes() - 1);
}

TEST(Shape, ElementwiseProduct) {
  Shape a{3, 1, 5};
  Shape b{7, 9, 1};
  Shape p = a * b;
  EXPECT_EQ(p, (Shape{21, 9, 5}));
}

TEST(Shape, ProductRankMismatchThrows) {
  EXPECT_THROW((void)(Shape{3, 5} * Shape{3, 5, 7}), std::invalid_argument);
}

TEST(Shape, FitsIn) {
  EXPECT_TRUE((Shape{3, 3, 23}).fits_in(Shape{3, 3, 25}));
  EXPECT_FALSE((Shape{3, 3, 25}).fits_in(Shape{3, 3, 23}));
  EXPECT_FALSE((Shape{3, 3}).fits_in(Shape{3, 3, 25}));
}

TEST(Shape, CubeDims) {
  // 5x6x7: Gray needs 3+3+3 = 9 bits, minimal is ceil(log2 210) = 8.
  Shape s{5, 6, 7};
  EXPECT_EQ(s.gray_cube_dim(), 9u);
  EXPECT_EQ(s.minimal_cube_dim(), 8u);
  // Powers of two: Gray is minimal.
  Shape t{4, 8, 2};
  EXPECT_EQ(t.gray_cube_dim(), t.minimal_cube_dim());
}

TEST(Shape, SortedSqueezedPadded) {
  Shape s{7, 1, 3};
  EXPECT_EQ(s.sorted(), (Shape{1, 3, 7}));
  EXPECT_EQ(s.squeezed(), (Shape{7, 3}));
  EXPECT_EQ((Shape{1, 1}).squeezed(), (Shape{1}));
  EXPECT_EQ((Shape{3, 5}).padded_to(4), (Shape{3, 5, 1, 1}));
  EXPECT_THROW((Shape{3, 5}).padded_to(1), std::invalid_argument);
}

TEST(Shape, ToString) {
  EXPECT_EQ((Shape{3, 5, 7}).to_string(), "3x5x7");
  EXPECT_EQ((Shape{11}).to_string(), "11");
}

TEST(Shape, InvalidExtents) {
  EXPECT_THROW(Shape{0}, std::invalid_argument);
  EXPECT_THROW((Shape{3, 0, 5}), std::invalid_argument);
}

}  // namespace
}  // namespace hj
