#include "core/embedding.hpp"

#include <gtest/gtest.h>

#include "core/verify.hpp"

namespace hj {
namespace {

// --- Gray code embedding: the Section 3.1 baseline. ---

class GrayEmbeddingShapes : public ::testing::TestWithParam<Shape> {};

TEST_P(GrayEmbeddingShapes, DilationOneCongestionOne) {
  GrayEmbedding emb{Mesh(GetParam())};
  VerifyReport r = verify(emb);
  EXPECT_TRUE(r.valid) << (r.errors.empty() ? "" : r.errors[0]);
  EXPECT_LE(r.dilation, 1u);
  EXPECT_LE(r.congestion, 1u);
  EXPECT_EQ(r.load_factor, 1u);
  EXPECT_EQ(emb.host_dim(), GetParam().gray_cube_dim());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GrayEmbeddingShapes,
    ::testing::Values(Shape{1}, Shape{2}, Shape{7}, Shape{8}, Shape{3, 5},
                      Shape{4, 4}, Shape{5, 6, 7}, Shape{2, 3, 4, 5},
                      Shape{16, 16}, Shape{9, 1, 3}),
    [](const auto& param_info) {
      std::string s = param_info.param.to_string();
      for (auto& c : s)
        if (c == 'x') c = '_';
      return s;
    });

TEST(GrayEmbedding, MinimalExpansionOnlyForNiceShapes) {
  EXPECT_TRUE(GrayEmbedding{Mesh(Shape{4, 8})}.minimal_expansion());
  // 3x5 = 15 nodes fit a Q4, but Gray rounds each axis: 4*8 = Q5. This is
  // the gap the paper's direct embeddings close.
  EXPECT_FALSE(GrayEmbedding{Mesh(Shape{3, 5})}.minimal_expansion());
  // 3x6 = 18 -> ceil2 is 32 = 4*8: Gray happens to be minimal here.
  EXPECT_TRUE(GrayEmbedding{Mesh(Shape{3, 6})}.minimal_expansion());
  // 5x6x7 = 210 needs 8 bits, Gray uses 9.
  EXPECT_FALSE(GrayEmbedding{Mesh(Shape{5, 6, 7})}.minimal_expansion());
}

TEST(GrayEmbedding, MapMatchesConcatenatedAxisCodes) {
  GrayEmbedding emb{Mesh(Shape{3, 5})};  // 2 + 3 bits
  const Shape& s = emb.guest().shape();
  for (MeshIndex i = 0; i < s.num_nodes(); ++i) {
    Coord c = s.coord(i);
    EXPECT_EQ(emb.map(i), (gray(c[0]) << 3) | gray(c[1]));
  }
}

TEST(GrayEmbedding, PowerOfTwoTorusWrapsWithDilationOne) {
  GrayEmbedding emb{Mesh::torus(Shape{8, 4})};
  VerifyReport r = verify(emb);
  EXPECT_TRUE(r.valid);
  EXPECT_EQ(r.dilation, 1u);
}

TEST(GrayEmbedding, RejectsNonPow2Torus) {
  EXPECT_THROW(GrayEmbedding{Mesh::torus(Shape{5, 4})}, std::invalid_argument);
}

// --- Explicit embeddings. ---

TEST(ExplicitEmbedding, MapAndDefaultRouting) {
  // 3-node line into Q2: 0 -> 00, 1 -> 11, 2 -> 01. Edge (0,1) dilates to 2.
  ExplicitEmbedding emb{Mesh(Shape{3}), 2, {0b00, 0b11, 0b01}};
  EXPECT_EQ(emb.map(1), 0b11u);
  VerifyReport r = verify(emb);
  EXPECT_TRUE(r.valid);
  EXPECT_EQ(r.dilation, 2u);
  EXPECT_EQ(r.avg_dilation, 1.5);
}

TEST(ExplicitEmbedding, PathOverrideChangesCongestion) {
  ExplicitEmbedding emb{Mesh(Shape{3}), 2, {0b00, 0b11, 0b01}};
  // Route edge (0,1) through 10 instead of the e-cube route through 01;
  // then the cube edge (01,11) is no longer shared.
  MeshEdge e01{0, 1, 0, false};
  emb.set_edge_path(e01, CubePath{0b00, 0b10, 0b11});
  VerifyReport r = verify(emb);
  EXPECT_TRUE(r.valid);
  EXPECT_EQ(r.congestion, 1u);
  EXPECT_EQ(emb.edge_path(e01)[1], 0b10u);
}

TEST(ExplicitEmbedding, RejectsBadPathOverride) {
  ExplicitEmbedding emb{Mesh(Shape{3}), 2, {0b00, 0b11, 0b01}};
  MeshEdge e01{0, 1, 0, false};
  // Wrong endpoint.
  EXPECT_THROW(emb.set_edge_path(e01, CubePath{0b00, 0b10}),
               std::invalid_argument);
  // Not a cube path (a diagonal hop).
  EXPECT_THROW(emb.set_edge_path(e01, CubePath{0b00, 0b11}),
               std::invalid_argument);
}

TEST(ExplicitEmbedding, RejectsWrongSizeOrRange) {
  EXPECT_THROW((ExplicitEmbedding{Mesh(Shape{3}), 2, {0, 1}}),
               std::invalid_argument);
  EXPECT_THROW((ExplicitEmbedding{Mesh(Shape{3}), 2, {0, 1, 4}}),
               std::invalid_argument);
}

TEST(Embedding, ExpansionArithmetic) {
  ExplicitEmbedding emb{Mesh(Shape{3}), 2, {0, 1, 3}};
  EXPECT_DOUBLE_EQ(emb.expansion(), 4.0 / 3.0);
  EXPECT_TRUE(emb.minimal_expansion());
  ExplicitEmbedding big{Mesh(Shape{3}), 3, {0, 1, 3}};
  EXPECT_FALSE(big.minimal_expansion());
}

TEST(NeighborRoute, ForwardAndReverseAgree) {
  GrayEmbedding emb{Mesh(Shape{3, 5})};
  const Shape& s = emb.guest().shape();
  const MeshIndex u = s.index(Coord{1, 2});
  const MeshIndex w = s.index(Coord{1, 3});
  CubePath fwd = neighbor_route(emb, u, w);
  CubePath rev = neighbor_route(emb, w, u);
  EXPECT_EQ(fwd.front(), emb.map(u));
  EXPECT_EQ(fwd.back(), emb.map(w));
  rev.reverse();
  EXPECT_EQ(fwd, rev);
}

TEST(NeighborRoute, WrapEdges) {
  GrayEmbedding emb{Mesh::torus(Shape{8})};
  CubePath p = neighbor_route(emb, 7, 0);   // the wrap edge, forward
  EXPECT_EQ(p.front(), emb.map(7));
  EXPECT_EQ(p.back(), emb.map(0));
  EXPECT_EQ(p.size(), 2u);  // cyclic Gray: one hop
  CubePath q = neighbor_route(emb, 0, 7);   // and backward
  EXPECT_EQ(q.front(), emb.map(0));
  EXPECT_EQ(q.back(), emb.map(7));
}

TEST(NeighborRoute, RejectsNonNeighbors) {
  GrayEmbedding emb{Mesh(Shape{4, 4})};
  EXPECT_THROW((void)neighbor_route(emb, 0, 2), std::invalid_argument);
  EXPECT_THROW((void)neighbor_route(emb, 0, 5), std::invalid_argument);
  // 0 and 3 are not wrap-adjacent on an unwrapped axis.
  GrayEmbedding line{Mesh(Shape{4})};
  EXPECT_THROW((void)neighbor_route(line, 0, 3), std::invalid_argument);
}

}  // namespace
}  // namespace hj
