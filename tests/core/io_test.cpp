// Tests for embedding serialization.
#include "core/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "core/direct.hpp"
#include "core/product.hpp"
#include "core/verify.hpp"
#include "torus/torus.hpp"

namespace hj::io {
namespace {

void expect_same_metrics(const Embedding& a, const Embedding& b) {
  const VerifyReport ra = verify(a), rb = verify(b);
  EXPECT_TRUE(rb.valid) << (rb.errors.empty() ? "" : rb.errors[0]);
  EXPECT_EQ(ra.dilation, rb.dilation);
  EXPECT_DOUBLE_EQ(ra.avg_dilation, rb.avg_dilation);
  EXPECT_EQ(ra.congestion, rb.congestion);
  EXPECT_DOUBLE_EQ(ra.avg_congestion, rb.avg_congestion);
  EXPECT_EQ(ra.host_dim, rb.host_dim);
  for (MeshIndex i = 0; i < a.guest().num_nodes(); ++i)
    ASSERT_EQ(a.map(i), b.map(i)) << "node " << i;
}

TEST(Io, RoundTripGray) {
  GrayEmbedding emb{Mesh(Shape{3, 5})};
  auto back = from_text(to_text(emb));
  expect_same_metrics(emb, *back);
}

TEST(Io, RoundTripDirectTableWithPaths) {
  // Direct tables carry congestion-routed paths; the round trip must
  // preserve the congestion exactly (not just the node map).
  auto emb = direct_embedding(Shape{7, 9});
  ASSERT_TRUE(emb.has_value());
  auto back = from_text(to_text(**emb));
  expect_same_metrics(**emb, *back);
}

TEST(Io, RoundTripProduct) {
  auto d = *direct_embedding(Shape{3, 5});
  auto g = std::make_shared<GrayEmbedding>(Mesh(Shape{4, 2}));
  MeshProductEmbedding prod(g, d);
  auto back = from_text(to_text(prod));
  expect_same_metrics(prod, *back);
}

TEST(Io, RoundTripTorus) {
  torus::TorusPlanner planner;
  PlanResult r = planner.plan(Shape{6, 10});
  auto back = from_text(to_text(*r.embedding));
  expect_same_metrics(*r.embedding, *back);
  EXPECT_TRUE(back->guest().wraps(0));
  EXPECT_TRUE(back->guest().wraps(1));
}

TEST(Io, FormatIsStable) {
  GrayEmbedding emb{Mesh(Shape{2, 2})};
  const std::string text = to_text(emb);
  EXPECT_NE(text.find("hjembed 1\n"), std::string::npos);
  EXPECT_NE(text.find("shape 2 2\n"), std::string::npos);
  EXPECT_NE(text.find("cube 2\n"), std::string::npos);
  EXPECT_NE(text.find("map 0 1 2 3\n"), std::string::npos);
  EXPECT_NE(text.find("end\n"), std::string::npos);
}

TEST(Io, RejectsMalformedInput) {
  EXPECT_THROW((void)from_text(""), std::invalid_argument);
  EXPECT_THROW((void)from_text("hjembed 2\n"), std::invalid_argument);
  EXPECT_THROW((void)from_text("hjembed 1\nshape 3 5\nwrap 0 0\ncube 4\n"
                               "map 0 1\nend\n"),
               std::invalid_argument);  // short map
  EXPECT_THROW((void)from_text("hjembed 1\nshape 2\nwrap 0\ncube 1\n"
                               "map 0 1\nbogus\n"),
               std::invalid_argument);
  // A path that does not follow cube links.
  EXPECT_THROW((void)from_text("hjembed 1\nshape 2\nwrap 0\ncube 2\n"
                               "map 0 3\npath 0 0 0 0 3\nend\n"),
               std::invalid_argument);
}

TEST(Io, RejectsOutOfCubeMap) {
  EXPECT_THROW((void)from_text("hjembed 1\nshape 2\nwrap 0\ncube 1\n"
                               "map 0 2\nend\n"),
               std::invalid_argument);
}

TEST(Io, TruncatedMidPathNamesTheLine) {
  // The document ends mid-way through a path header — the torn-write
  // artifact the plan store's serve path must reject loudly.
  const std::string text =
      "hjembed 1\nshape 2\nwrap 0\ncube 1\nmap 0 1\npath 0 0\n";
  try {
    (void)from_text(text);
    FAIL() << "truncated path header accepted";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 6"), std::string::npos) << msg;
    EXPECT_NE(msg.find("truncated mid-path"), std::string::npos) << msg;
  }
}

TEST(Io, MissingEndMarkerNamesTheLine) {
  const std::string text = "hjembed 1\nshape 2\nwrap 0\ncube 1\nmap 0 1\n";
  try {
    (void)from_text(text);
    FAIL() << "document without end sentinel accepted";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 6"), std::string::npos) << msg;
    EXPECT_NE(msg.find("missing end marker"), std::string::npos) << msg;
  }
}

TEST(Io, SectionErrorsNameTheirLine) {
  try {
    (void)from_text("hjembed 1\nshape 3 x\n");
    FAIL();
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
  try {
    (void)from_text("hjembed 1\nshape 2\nwrap 0\ncube 1\n");
    FAIL();
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 5"), std::string::npos) << msg;
    EXPECT_NE(msg.find("expected map"), std::string::npos) << msg;
  }
}

TEST(Io, EveryBytePrefixThrowsWithALineOrParses) {
  // Byte-level truncation fuzz: any prefix of a real document (this one
  // carries explicit path lines) either parses — only possible for
  // near-complete prefixes — or throws an error naming a line.
  auto emb = direct_embedding(Shape{3, 5});
  ASSERT_TRUE(emb.has_value());
  const std::string text = to_text(**emb);
  u64 parsed = 0, rejected = 0;
  for (std::size_t n = 0; n < text.size(); ++n) {
    try {
      (void)from_text(text.substr(0, n));
      ++parsed;
    } catch (const std::invalid_argument& e) {
      ++rejected;
      ASSERT_NE(std::string(e.what()).find("line "), std::string::npos)
          << "prefix " << n << ": " << e.what();
    }
  }
  EXPECT_GT(rejected, 0u);
  // Everything short of the end sentinel must have been rejected.
  EXPECT_LE(parsed, 1u);
}

TEST(Io, SaveLoadFile) {
  auto emb = direct_embedding(Shape{3, 3, 3});
  ASSERT_TRUE(emb.has_value());
  const std::string file = ::testing::TempDir() + "/hj_io_test.hje";
  save(**emb, file);
  auto back = load(file);
  expect_same_metrics(**emb, *back);
  std::remove(file.c_str());
}

TEST(Io, LoadMissingFileThrows) {
  EXPECT_THROW((void)load("/nonexistent/definitely/missing.hje"),
               std::invalid_argument);
}

}  // namespace
}  // namespace hj::io
