// Tests for the direct embedding tables (Section 3.3 of the paper).
#include "core/direct.hpp"

#include <gtest/gtest.h>

#include "core/product.hpp"
#include "core/verify.hpp"

namespace hj {
namespace {

class DirectTables : public ::testing::TestWithParam<Shape> {};

TEST_P(DirectTables, Dilation2Congestion2Minimal) {
  auto emb = direct_embedding(GetParam());
  ASSERT_TRUE(emb.has_value());
  VerifyReport r = verify(**emb);
  EXPECT_TRUE(r.valid) << (r.errors.empty() ? "" : r.errors[0]);
  EXPECT_TRUE(r.minimal_expansion);
  EXPECT_LE(r.dilation, 2u);
  EXPECT_LE(r.congestion, 2u);
}

INSTANTIATE_TEST_SUITE_P(PaperShapes, DirectTables,
                         ::testing::Values(Shape{3, 5}, Shape{7, 9},
                                           Shape{11, 11}, Shape{3, 3, 3},
                                           Shape{3, 3, 7}));

INSTANTIATE_TEST_SUITE_P(PermutedShapes, DirectTables,
                         ::testing::Values(Shape{5, 3}, Shape{9, 7},
                                           Shape{3, 7, 3}, Shape{7, 3, 3},
                                           Shape{3, 3, 3, 1}));

INSTANTIATE_TEST_SUITE_P(WithUnitAxes, DirectTables,
                         ::testing::Values(Shape{3, 1, 5}, Shape{1, 7, 9},
                                           Shape{5, 1, 3}, Shape{11, 1, 11}));

TEST(DirectTables, RegistryContents) {
  const auto& shapes = direct_table_shapes();
  EXPECT_EQ(shapes.size(), 5u);
  EXPECT_TRUE(has_direct_embedding(Shape{3, 5}));
  EXPECT_TRUE(has_direct_embedding(Shape{5, 3}));
  EXPECT_TRUE(has_direct_embedding(Shape{1, 11, 11}));
  EXPECT_FALSE(has_direct_embedding(Shape{5, 5}));
  EXPECT_FALSE(has_direct_embedding(Shape{3, 15}));   // not 3x5: merged axis
  EXPECT_FALSE(has_direct_embedding(Shape{3, 5, 3}));
}

TEST(DirectTables, ExactCubeDims) {
  EXPECT_EQ((*direct_embedding(Shape{3, 5}))->host_dim(), 4u);
  EXPECT_EQ((*direct_embedding(Shape{7, 9}))->host_dim(), 6u);
  EXPECT_EQ((*direct_embedding(Shape{11, 11}))->host_dim(), 7u);
  EXPECT_EQ((*direct_embedding(Shape{3, 3, 3}))->host_dim(), 5u);
  EXPECT_EQ((*direct_embedding(Shape{3, 3, 7}))->host_dim(), 6u);
}

TEST(DirectTables, AverageDilationBeatsWorstCase) {
  // Section 3.3 notes the direct embeddings' average dilation approaches 1;
  // each table's average must sit well below the worst case of 2.
  for (const Shape& s : direct_table_shapes()) {
    VerifyReport r = verify(**direct_embedding(s));
    EXPECT_LT(r.avg_dilation, 1.6) << s.to_string();
    EXPECT_GE(r.avg_dilation, 1.0) << s.to_string();
  }
}

TEST(DirectTables, CachedInstancesAreShared) {
  auto a = direct_embedding(Shape{7, 9});
  auto b = direct_embedding(Shape{7, 9});
  EXPECT_EQ(a->get(), b->get());
}

TEST(DirectTables, ProductWithGrayMatchesCorollary2) {
  // 21x9x5 with minimal expansion: (7x9x1 direct) x (3x1x5 direct) —
  // the Section 4.2 example, now with real tables.
  auto f1 = direct_embedding(Shape{7, 9, 1});
  auto f2 = direct_embedding(Shape{3, 1, 5});
  ASSERT_TRUE(f1 && f2);
  MeshProductEmbedding emb(*f1, *f2);
  EXPECT_EQ(emb.guest().shape(), (Shape{21, 9, 5}));
  VerifyReport r = verify(emb);
  EXPECT_TRUE(r.valid) << (r.errors.empty() ? "" : r.errors[0]);
  EXPECT_TRUE(r.minimal_expansion);  // 945 nodes in Q10
  EXPECT_LE(r.dilation, 2u);
  EXPECT_LE(r.congestion, 2u);
}

}  // namespace
}  // namespace hj
