// Tests for the graph decomposition engine (Theorem 3 / Corollary 2).
#include "core/product.hpp"

#include <gtest/gtest.h>

#include "core/verify.hpp"

namespace hj {
namespace {

EmbeddingPtr gray_of(Shape s) {
  return std::make_shared<GrayEmbedding>(Mesh(std::move(s)));
}

/// A 3-node line in Q2 with dilation 2: 0 -> 00, 1 -> 11, 2 -> 01.
EmbeddingPtr dil2_line3() {
  return std::make_shared<ExplicitEmbedding>(Mesh(Shape{3}), 2,
                                             std::vector<CubeNode>{0, 3, 1});
}

TEST(Product, GrayTimesGrayIsDilationOne) {
  MeshProductEmbedding emb(gray_of(Shape{4}), gray_of(Shape{3}));
  EXPECT_EQ(emb.guest().shape(), (Shape{12}));
  EXPECT_EQ(emb.host_dim(), 4u);
  VerifyReport r = verify(emb);
  EXPECT_TRUE(r.valid) << (r.errors.empty() ? "" : r.errors[0]);
  EXPECT_EQ(r.dilation, 1u);
  EXPECT_EQ(r.congestion, 1u);
  EXPECT_TRUE(r.minimal_expansion);
}

TEST(Product, ExpansionMultiplies) {
  // e = e1 * e2 (Theorem 3).
  auto f1 = gray_of(Shape{3});   // 4/3
  auto f2 = gray_of(Shape{5});   // 8/5
  MeshProductEmbedding emb(f1, f2);
  EXPECT_DOUBLE_EQ(emb.expansion(), (4.0 / 3.0) * (8.0 / 5.0));
}

TEST(Product, DilationIsMaxOfFactors) {
  MeshProductEmbedding emb(gray_of(Shape{4}), dil2_line3());
  VerifyReport r = verify(emb);
  EXPECT_TRUE(r.valid) << (r.errors.empty() ? "" : r.errors[0]);
  EXPECT_EQ(r.dilation, 2u);  // max(1, 2)
  EXPECT_TRUE(r.minimal_expansion);  // 12 nodes in Q4
}

TEST(Product, CongestionBoundedByMaxOfFactors) {
  MeshProductEmbedding emb(gray_of(Shape{4}), dil2_line3());
  VerifyReport r = verify(emb);
  // Factor congestions are 1 (Gray) and <= 2 (one dilation-2 path).
  EXPECT_LE(r.congestion, 2u);
}

TEST(Product, SeamEdgesAreCarriedByOuterFactor) {
  // At a copy boundary the inner images must coincide, so the cube nodes
  // differ only in the outer bit field (Corollary 2's reflection at work).
  MeshProductEmbedding emb(gray_of(Shape{4}), dil2_line3());
  const u32 n1 = 2;
  // Line node 3 is the end of copy 0; node 4 the (reflected) end of copy 1.
  EXPECT_EQ(emb.map(3) & ((1u << n1) - 1), emb.map(4) & ((1u << n1) - 1));
  // And within a copy, consecutive nodes differ in the inner field only.
  EXPECT_EQ(emb.map(1) >> n1, emb.map(2) >> n1);
}

TEST(Product, ReflectionMakesEveryCopyBoundaryCheap) {
  // Without reflection copy boundaries would pay dilation d1 + d2; with it
  // every boundary edge's dilation equals the outer edge's dilation alone.
  MeshProductEmbedding emb(gray_of(Shape{4}), dil2_line3());
  // Seam 3 -> 4 rides outer edge (0,1), which has dilation 2.
  EXPECT_EQ(emb.edge_path(MeshEdge{3, 4, 0, false}).size(), 3u);
  // Seam 7 -> 8 rides outer edge (1,2), which has dilation 1.
  EXPECT_EQ(emb.edge_path(MeshEdge{7, 8, 0, false}).size(), 2u);
}

TEST(Product, AverageDilationExactOnLine12) {
  // Inner Gray(4), outer dilation-2 line(3): 9 intra-copy edges of dilation
  // 1 plus seams of dilation 2 and 1 -> avg = 12/11.
  MeshProductEmbedding emb(gray_of(Shape{4}), dil2_line3());
  VerifyReport r = verify(emb);
  EXPECT_DOUBLE_EQ(r.avg_dilation, 12.0 / 11.0);
}

TEST(Product, FactorOrderTradesAverageDilation) {
  // Section 4.1: traversing the dilation-1 factor fastest minimizes the
  // average dilation; the max dilation is order-independent.
  MeshProductEmbedding good(gray_of(Shape{4}), dil2_line3());
  MeshProductEmbedding bad(dil2_line3(), gray_of(Shape{4}));
  VerifyReport rg = verify(good), rb = verify(bad);
  EXPECT_TRUE(rg.valid);
  EXPECT_TRUE(rb.valid);
  EXPECT_EQ(rg.dilation, rb.dilation);
  EXPECT_DOUBLE_EQ(rg.avg_dilation, 12.0 / 11.0);
  EXPECT_DOUBLE_EQ(rb.avg_dilation, 15.0 / 11.0);
  EXPECT_LT(rg.avg_dilation, rb.avg_dilation);
}

TEST(Product, MultiAxisProductOfGrayFactors) {
  // 15 x 10 = (3 x 5) * (5 x 2), both factors Gray: a dilation-one
  // minimal-expansion embedding of a mesh Gray alone cannot do minimally
  // (Gray on 15 x 10 directly needs 4 + 4 = 8 bits = 256 = minimal too,
  // but the decomposition exercises the multi-axis path).
  MeshProductEmbedding emb(gray_of(Shape{3, 5}), gray_of(Shape{5, 2}));
  EXPECT_EQ(emb.guest().shape(), (Shape{15, 10}));
  EXPECT_EQ(emb.host_dim(), 9u);
  VerifyReport r = verify(emb);
  EXPECT_TRUE(r.valid) << (r.errors.empty() ? "" : r.errors[0]);
  EXPECT_EQ(r.dilation, 1u);
  EXPECT_EQ(r.congestion, 1u);
}

TEST(Product, PaperExample21x9x5ViaRelabel) {
  // Section 4.2: embedding a 21x9x5 mesh from a 7x9 and a 3x5 embedding:
  // (7x9x1) x (3x1x5). Using Gray factors here; the direct-table version
  // with minimal expansion lives in the planner tests.
  auto f79 = RelabelEmbedding::lift(gray_of(Shape{7, 9}), Shape{7, 9, 1});
  auto f35 = RelabelEmbedding::lift(gray_of(Shape{3, 5}), Shape{3, 1, 5});
  MeshProductEmbedding emb(f79, f35);
  EXPECT_EQ(emb.guest().shape(), (Shape{21, 9, 5}));
  VerifyReport r = verify(emb);
  EXPECT_TRUE(r.valid) << (r.errors.empty() ? "" : r.errors[0]);
  EXPECT_EQ(r.dilation, 1u);
  EXPECT_EQ(r.host_dim, 12u);
}

TEST(Product, RelabelPreservesMetrics) {
  auto base = dil2_line3();
  auto lifted = RelabelEmbedding::lift(base, Shape{1, 3, 1});
  VerifyReport r0 = verify(*base), r1 = verify(*lifted);
  EXPECT_TRUE(r1.valid);
  EXPECT_EQ(r0.dilation, r1.dilation);
  EXPECT_DOUBLE_EQ(r0.avg_dilation, r1.avg_dilation);
  EXPECT_EQ(r0.congestion, r1.congestion);
}

TEST(Product, RelabelRejectsBadLift) {
  EXPECT_THROW(RelabelEmbedding::lift(gray_of(Shape{3, 5}), Shape{5, 3, 1}),
               std::invalid_argument);
  EXPECT_THROW(RelabelEmbedding::lift(gray_of(Shape{3, 5}), Shape{3, 2, 5}),
               std::invalid_argument);
}

TEST(Product, SubmeshExtension) {
  // Strategy 3 of Section 4.2: a 3x3x23 mesh rides in a 3x3x25 embedding.
  auto big = std::make_shared<MeshProductEmbedding>(
      RelabelEmbedding::lift(gray_of(Shape{3, 3, 5}), Shape{3, 3, 5}),
      RelabelEmbedding::lift(gray_of(Shape{5}), Shape{1, 1, 5}));
  EXPECT_EQ(big->guest().shape(), (Shape{3, 3, 25}));
  SubmeshEmbedding emb(big, Shape{3, 3, 23});
  VerifyReport r = verify(emb);
  EXPECT_TRUE(r.valid) << (r.errors.empty() ? "" : r.errors[0]);
  EXPECT_EQ(r.dilation, 1u);
  EXPECT_EQ(r.guest_nodes, 207u);
}

TEST(Product, SubmeshRejectsOversizedGuest) {
  EXPECT_THROW(SubmeshEmbedding(gray_of(Shape{3, 5}), Shape{4, 5}),
               std::invalid_argument);
}

TEST(Product, ChainFoldsLeft) {
  auto e = product_chain({gray_of(Shape{2}), gray_of(Shape{3}),
                          gray_of(Shape{5})});
  EXPECT_EQ(e->guest().shape(), (Shape{30}));
  EXPECT_EQ(e->host_dim(), 1u + 2u + 3u);
  VerifyReport r = verify(*e);
  EXPECT_TRUE(r.valid);
  EXPECT_EQ(r.dilation, 1u);
}

TEST(Product, RejectsWrappedFactors) {
  auto t = std::make_shared<GrayEmbedding>(Mesh::torus(Shape{4}));
  EXPECT_THROW(MeshProductEmbedding(t, gray_of(Shape{3})),
               std::invalid_argument);
}

TEST(Product, TheoremThreeOnThreeFactors) {
  // Corollary 1: iterated products keep dilation = max over factors.
  auto e = product_chain(
      {gray_of(Shape{4}), dil2_line3(), gray_of(Shape{2})});
  EXPECT_EQ(e->guest().shape(), (Shape{24}));
  VerifyReport r = verify(*e);
  EXPECT_TRUE(r.valid);
  EXPECT_EQ(r.dilation, 2u);
  EXPECT_LE(r.congestion, 2u);
}

}  // namespace
}  // namespace hj
