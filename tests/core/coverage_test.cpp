// Tests for the Figure 2 coverage arithmetic (Section 5).
#include "core/coverage.hpp"

#include <gtest/gtest.h>

namespace hj::coverage {
namespace {

TEST(Coverage, GrayExcess) {
  EXPECT_EQ(gray_excess_log2(Shape{4, 8}), 0u);
  EXPECT_EQ(gray_excess_log2(Shape{3, 5}), 1u);    // 32 vs 16
  EXPECT_EQ(gray_excess_log2(Shape{5, 6, 7}), 1u);  // 512 vs 256
  EXPECT_EQ(gray_excess_log2(Shape{5, 5, 5}), 2u);  // 512 vs 128
}

TEST(Coverage, Method1Examples) {
  EXPECT_TRUE(method1_gray(4, 8, 2));
  EXPECT_TRUE(method1_gray(3, 6, 1));   // 4*8 = 32 = ceil2(18)
  EXPECT_FALSE(method1_gray(3, 5, 1));
  EXPECT_FALSE(method1_gray(5, 6, 7));
}

TEST(Coverage, Method2PaperExamples) {
  // Section 5: a 5x10x11 mesh has more than one unit relative expansion;
  // the 6x11x7 mesh has none.
  EXPECT_TRUE(method2_pair(5, 10, 11));
  EXPECT_FALSE(method2_pair(6, 11, 7));
  EXPECT_FALSE(method1_gray(6, 11, 7));
  // 5x6x7: pairing the first two axes works (32 * 8 = 256 = ceil2(210)).
  EXPECT_TRUE(method2_pair(5, 6, 7));
}

TEST(Coverage, Method2AxisChoiceRule) {
  // The paper's rule: pick the two axes with the smallest l / ceil2(l).
  // For 5x6x7 those are 5 (0.625) and 6 (0.75): ceil2(30)*ceil2(7) = 256.
  EXPECT_EQ(ceil_pow2(u64{5} * 6) * ceil_pow2(7), ceil_pow2(u64{5} * 6 * 7));
  // Pairing 6,7 instead fails: ceil2(42)*ceil2(5) = 64*8 = 512.
  EXPECT_NE(ceil_pow2(u64{6} * 7) * ceil_pow2(5), ceil_pow2(u64{5} * 6 * 7));
}

TEST(Coverage, Method3Patterns) {
  EXPECT_TRUE(method3_small3d(3, 3, 3));
  EXPECT_TRUE(method3_small3d(3, 3, 7));
  EXPECT_TRUE(method3_small3d(6, 12, 3));    // 3*2^a pattern
  EXPECT_TRUE(method3_small3d(7, 6, 6));     // 3,3,7 permuted and scaled
  EXPECT_TRUE(method3_small3d(6, 6, 11));    // extends to 6x6x12, Q9 = ceil2(396)
  EXPECT_TRUE(method3_small3d(3, 3, 9));     // extends to 3x3x12, Q7 = ceil2(81)
  EXPECT_FALSE(method3_small3d(2, 2, 2));    // patterns overshoot the cube
  EXPECT_FALSE(method3_small3d(5, 5, 5));    // 6x6x6 needs Q8, minimal is Q7
  // 3x3x3 itself is not reachable by methods 1-2.
  EXPECT_FALSE(method1_gray(3, 3, 3));
  EXPECT_FALSE(method2_pair(3, 3, 3));
}

TEST(Coverage, Method4PaperExample) {
  // 3x3x23 extends to 3x3x25 and decomposes as (3x5) x (3x5):
  // split axis 3 as 5*5 >= 23, ceil2(3*5) * ceil2(5*3) = 16*16 = 256 =
  // ceil2(207). (Extended method 3 reaches it too, via 3x3x24.)
  auto w = method4_split(3, 3, 23);
  ASSERT_TRUE(w.has_value());
  EXPECT_FALSE(method1_gray(3, 3, 23));
  EXPECT_FALSE(method2_pair(3, 3, 23));
}

TEST(Coverage, Method4OnlyShape) {
  // 3x9x33 splits 33 = 5*7 (with extension to 35): ceil2(3*5) * ceil2(7*9)
  // = 16 * 64 = 1024 = ceil2(891); no earlier method reaches it.
  EXPECT_FALSE(method1_gray(3, 9, 33));
  EXPECT_FALSE(method2_pair(3, 9, 33));
  EXPECT_FALSE(method3_small3d(3, 9, 33));
  ASSERT_TRUE(method4_split(3, 9, 33).has_value());
}

TEST(Coverage, Method4WitnessIsSound) {
  // Any witness must satisfy the defining arithmetic identity.
  for (u64 l1 : {u64{3}, u64{5}, u64{9}, u64{23}}) {
    for (u64 l2 : {u64{3}, u64{7}, u64{21}}) {
      for (u64 l3 : {u64{5}, u64{11}, u64{23}}) {
        auto w = method4_split(l1, l2, l3);
        if (!w) continue;
        const u64 l[3] = {l1, l2, l3};
        EXPECT_GE(w->lp * w->lpp, l[w->split_axis]);
        EXPECT_EQ(ceil_pow2(l[w->axis_lo] * w->lp) *
                      ceil_pow2(w->lpp * l[w->axis_hi]),
                  ceil_pow2(l1 * l2 * l3))
            << l1 << "x" << l2 << "x" << l3;
      }
    }
  }
}

TEST(Coverage, FirstMethodOrdering) {
  EXPECT_EQ(first_method(4, 8, 2), 1u);
  EXPECT_EQ(first_method(5, 6, 7), 2u);
  EXPECT_EQ(first_method(3, 3, 3), 3u);
  EXPECT_EQ(first_method(3, 3, 23), 3u);  // extended method 3
  EXPECT_EQ(first_method(3, 9, 33), 4u);
  EXPECT_EQ(first_method(5, 5, 5), 0u);  // the paper's open shape
}

TEST(Coverage, PaperOpenShapesAreUncovered) {
  // Section 5 lists the <=256-node meshes with no known minimal-expansion
  // dilation-2 embedding; none may be covered by methods 1-4.
  EXPECT_EQ(first_method(5, 5, 5), 0u);
  EXPECT_EQ(first_method(5, 7, 7), 0u);
  EXPECT_EQ(first_method(3, 9, 9), 0u);
  EXPECT_EQ(first_method(5, 5, 10), 0u);
  EXPECT_EQ(first_method(3, 5, 17), 0u);
}

TEST(Coverage, AllOtherSmall3DMeshesAreCovered) {
  // Conversely, every mesh of <= 256 nodes other than those five (and
  // permutations) must be covered — this is exactly the paper's claim.
  for (u64 a = 1; a <= 256; ++a)
    for (u64 b = a; a * b <= 256; ++b)
      for (u64 c = b; a * b * c <= 256; ++c) {
        const bool open =
            (a == 5 && b == 5 && c == 5) || (a == 5 && b == 7 && c == 7) ||
            (a == 3 && b == 9 && c == 9) || (a == 5 && b == 5 && c == 10) ||
            (a == 3 && b == 5 && c == 17);
        EXPECT_EQ(first_method(a, b, c) == 0, open)
            << a << "x" << b << "x" << c;
      }
}

TEST(Coverage, SweepSmallSidesExact) {
  // n = 1: all 8 meshes have power-of-two axes.
  SweepCounts c1 = sweep_3d(1);
  EXPECT_EQ(c1.total, 8u);
  EXPECT_EQ(c1.by_method[1], 8u);
  // n = 2 by brute force: 64 meshes, only 3x3x3 needs method 3 beyond
  // methods 1-2... verify against a direct recount.
  SweepCounts c2 = sweep_3d(2);
  EXPECT_EQ(c2.total, 64u);
  std::array<u64, 5> recount{};
  for (u64 a = 1; a <= 4; ++a)
    for (u64 b = 1; b <= 4; ++b)
      for (u64 q = 1; q <= 4; ++q) ++recount[first_method(a, b, q)];
  EXPECT_EQ(c2.by_method, recount);
}

TEST(Coverage, SweepSymmetryWeighting) {
  // The sorted-triple sweep must equal brute force for n = 3 too.
  SweepCounts c = sweep_3d(3);
  std::array<u64, 5> recount{};
  for (u64 a = 1; a <= 8; ++a)
    for (u64 b = 1; b <= 8; ++b)
      for (u64 q = 1; q <= 8; ++q) ++recount[first_method(a, b, q)];
  EXPECT_EQ(c.by_method, recount);
  EXPECT_EQ(c.total, 512u);
}

TEST(Coverage, CumulativePercentMonotone) {
  SweepCounts c = sweep_3d(4);
  double prev = 0;
  for (u32 i = 1; i <= 4; ++i) {
    EXPECT_GE(c.cumulative_percent(i), prev);
    prev = c.cumulative_percent(i);
  }
  EXPECT_LE(prev, 100.0);
}

// The headline reproduction: the paper's cumulative percentages at n = 9
// are 28.5 / 81.5 / 82.9 / 96.1. The full sweep runs in seconds and is
// exercised by bench/fig2_coverage; here we check n = 6 stays stable and
// consistent (regression guard for the method predicates).
TEST(Coverage, SweepN6Regression) {
  SweepCounts c = sweep_3d(6);
  EXPECT_NEAR(c.cumulative_percent(1), 37.8, 0.1);
  EXPECT_NEAR(c.cumulative_percent(2), 85.6, 0.1);
  EXPECT_NEAR(c.cumulative_percent(3), 88.1, 0.1);
  EXPECT_NEAR(c.cumulative_percent(4), 93.2, 0.1);
}

TEST(CoverageKd, PartitionBlocksMatch3DMethods) {
  // For k = 3, covered_kd must agree with first_method (plus the pair and
  // single partitions, which first_method's methods 1-2 already contain).
  for (u64 a = 1; a <= 12; ++a)
    for (u64 b = a; b <= 12; ++b)
      for (u64 c = b; c <= 12; ++c) {
        const bool kd = covered_kd(Shape{a, b, c});
        const bool m = first_method(a, b, c) != 0;
        EXPECT_EQ(kd, m) << a << "x" << b << "x" << c;
      }
}

TEST(CoverageKd, FourDimensionalExamples) {
  // 3x5x3x5 = (3x5) x (3x5): two Chan pairs, ceil2(15)^2 = 256 = ceil2(225).
  EXPECT_TRUE(covered_kd(Shape{3, 5, 3, 5}));
  // 12x16x20x32: Gray on 16 and 32, pairs on (12,20).
  EXPECT_TRUE(covered_kd(Shape{12, 16, 20, 32}));
  // 5x5x5x5: pairs give ceil2(25)^2 = 1024 > ceil2(625) = 1024... holds!
  EXPECT_TRUE(covered_kd(Shape{5, 5, 5, 5}));
  // 5x5x5x7 = 875 -> Q10: the only unit-expansion partition is
  // (5x5x5) x (7), and 5x5x5 is open under the paper's methods — not
  // covered. (With this library's 5x5x5 witness it would be: Corollary 1
  // gives 128 * 8 = 1024 = ceil2(875).)
  EXPECT_FALSE(covered_kd(Shape{5, 5, 5, 7}));
}

TEST(CoverageKd, UncoveredExample) {
  // 5x7x7 is open even in 3-D; padding with a unit axis must not help.
  EXPECT_FALSE(covered_kd(Shape{5, 7, 7, 1}));
}

TEST(CoverageKd, SweepMatchesBruteForce) {
  const KdSweep s = sweep_kd(4, 2);
  EXPECT_EQ(s.total, 256u);
  u64 brute = 0;
  for (u64 a = 1; a <= 4; ++a)
    for (u64 b = 1; b <= 4; ++b)
      for (u64 c = 1; c <= 4; ++c)
        for (u64 d = 1; d <= 4; ++d)
          if (covered_kd(Shape{a, b, c, d})) ++brute;
  EXPECT_EQ(s.covered, brute);
}

TEST(CoverageKd, MajorityConjectureHolds) {
  // The paper's Summary conjecture, at the sizes the test budget allows.
  EXPECT_GT(sweep_kd(4, 4).percent(), 50.0);
  EXPECT_GT(sweep_kd(5, 3).percent(), 50.0);
}

}  // namespace
}  // namespace hj::coverage
