// Tests for the embedding planner (Section 4.2 strategy).
#include "core/planner.hpp"

#include <gtest/gtest.h>

#include "search/provider.hpp"

namespace hj {
namespace {

Planner make_planner(bool with_search = true) {
  Planner p;
  if (with_search) p.set_direct_provider(search::make_search_provider());
  return p;
}

TEST(Planner, GrayWhenAlreadyMinimal) {
  Planner p = make_planner(false);
  PlanResult r = p.plan(Shape{4, 8, 2});
  EXPECT_TRUE(r.report.valid);
  EXPECT_EQ(r.report.dilation, 1u);
  EXPECT_TRUE(r.report.minimal_expansion);
  EXPECT_NE(r.plan.find("gray"), std::string::npos);
}

TEST(Planner, DirectTableShapes) {
  Planner p = make_planner(false);
  for (Shape s : {Shape{3, 5}, Shape{7, 9}, Shape{3, 3, 7}}) {
    PlanResult r = p.plan(s);
    EXPECT_TRUE(r.report.valid);
    EXPECT_TRUE(r.report.minimal_expansion) << s.to_string();
    EXPECT_LE(r.report.dilation, 2u);
    EXPECT_NE(r.plan.find("direct"), std::string::npos);
  }
}

TEST(Planner, DecompositionExample12x20) {
  // Section 4.2: 12 x 20 reduces to (3x5) x (4x4).
  Planner p = make_planner(false);
  PlanResult r = p.plan(Shape{12, 20});
  EXPECT_TRUE(r.report.valid);
  EXPECT_TRUE(r.report.minimal_expansion);  // 240 nodes in Q8
  EXPECT_LE(r.report.dilation, 2u);
  EXPECT_LE(r.report.congestion, 2u);
}

TEST(Planner, DecompositionExample3x25x3) {
  // Section 4.2: 3 x 25 x 3 reduces to two 3x5 embeddings: 225 -> Q8.
  Planner p = make_planner(false);
  PlanResult r = p.plan(Shape{3, 25, 3});
  EXPECT_TRUE(r.report.valid);
  EXPECT_TRUE(r.report.minimal_expansion);
  EXPECT_LE(r.report.dilation, 2u);
}

TEST(Planner, ExtensionExample3x3x23) {
  // Section 4.2 strategy 3: 3x3x23 extends to 3x3x25.
  Planner p = make_planner(false);
  PlanResult r = p.plan(Shape{3, 3, 23});
  EXPECT_TRUE(r.report.valid);
  EXPECT_TRUE(r.report.minimal_expansion);  // 207 nodes in Q8
  EXPECT_LE(r.report.dilation, 2u);
  EXPECT_NE(r.plan.find("sub<3x3x23>"), std::string::npos);
}

TEST(Planner, PaperExample21x9x5) {
  // Section 4.2: 21x9x5 via (7x9x1) x (3x1x5): 945 nodes in Q10.
  Planner p = make_planner(false);
  PlanResult r = p.plan(Shape{21, 9, 5});
  EXPECT_TRUE(r.report.valid);
  EXPECT_TRUE(r.report.minimal_expansion);
  EXPECT_LE(r.report.dilation, 2u);
  EXPECT_LE(r.report.congestion, 2u);
}

TEST(Planner, PatternExtension6x6x11) {
  // 6x6x11 is reachable only by extending every axis to the 3*2^a form
  // (Figure 2 method 3): 6x6x12 = (2x2x4 gray) x (3x3x3 direct).
  Planner p = make_planner(false);
  PlanResult r = p.plan(Shape{6, 6, 11});
  EXPECT_TRUE(r.report.valid);
  EXPECT_TRUE(r.report.minimal_expansion);  // 396 nodes in Q9
  EXPECT_LE(r.report.dilation, 2u);
}

TEST(Planner, ExtensionUnlocks5x5WithoutSearch) {
  // 5x5 rides inside 6x5 = (2x1 gray) * (3x5 direct): minimal Q5,
  // dilation 2 — the planner finds this without any searcher attached.
  Planner p = make_planner(false);
  PlanResult r = p.plan(Shape{5, 5});
  EXPECT_TRUE(r.report.valid);
  EXPECT_TRUE(r.report.minimal_expansion);
  EXPECT_LE(r.report.dilation, 2u);
}

TEST(Planner, SearchProviderUnlocks5x5x5) {
  // 5x5x5 is the paper's open shape: no method of Section 5 reaches it,
  // and neither does the planner without a searcher. Backtracking finds a
  // dilation-2 witness in Q7 (resolving the paper's open question).
  Planner without = make_planner(false);
  EXPECT_FALSE(without.achieves_minimal_dil2(Shape{5, 5, 5}));
  Planner with = make_planner(true);
  PlanResult r = with.plan(Shape{5, 5, 5});
  EXPECT_TRUE(r.report.valid);
  EXPECT_TRUE(r.report.minimal_expansion);
  EXPECT_LE(r.report.dilation, 2u);
  EXPECT_NE(r.plan.find("search"), std::string::npos);
}

TEST(Planner, FallbackIsStillValid) {
  // 13x19 = 247: prime axes, no extension fits, search skipped (too big
  // with the default provider cap): planner falls back to Gray.
  Planner p = make_planner(false);
  PlanResult r = p.plan(Shape{13, 19});
  EXPECT_TRUE(r.report.valid);
  EXPECT_FALSE(r.report.minimal_expansion);
  EXPECT_EQ(r.report.dilation, 1u);
  EXPECT_DOUBLE_EQ(r.report.expansion, 512.0 / 247.0);
}

TEST(Planner, NeverExceedsDilationTwo) {
  Planner p = make_planner(false);
  for (u64 a = 1; a <= 9; ++a) {
    for (u64 b = a; b <= 9; ++b) {
      PlanResult r = p.plan(Shape{a, b});
      EXPECT_TRUE(r.report.valid) << a << "x" << b;
      EXPECT_LE(r.report.dilation, 2u) << a << "x" << b;
    }
  }
}

TEST(Planner, MemoizationIsConsistent) {
  Planner p = make_planner(false);
  PlanResult r1 = p.plan(Shape{12, 20});
  PlanResult r2 = p.plan(Shape{12, 20});
  EXPECT_EQ(r1.report.dilation, r2.report.dilation);
  EXPECT_EQ(r1.report.host_dim, r2.report.host_dim);
  EXPECT_EQ(r1.plan, r2.plan);
}

TEST(Planner, OneDimensionalAlwaysMinimal) {
  Planner p = make_planner(false);
  for (u64 l : {u64{1}, u64{2}, u64{3}, u64{7}, u64{100}, u64{511}}) {
    PlanResult r = p.plan(Shape{l});
    EXPECT_TRUE(r.report.minimal_expansion) << l;
    EXPECT_LE(r.report.dilation, 1u);
  }
}

TEST(Planner, SinglePointMesh) {
  Planner p = make_planner(false);
  PlanResult r = p.plan(Shape{1, 1, 1});
  EXPECT_TRUE(r.report.valid);
  EXPECT_EQ(r.report.host_dim, 0u);
}

class PlannerCoverage : public ::testing::TestWithParam<Shape> {};

// Shapes the paper's Section 5 pipeline must reach with dilation 2 at
// minimal expansion, each through a different strategy mix.
TEST_P(PlannerCoverage, MinimalDilationTwo) {
  static Planner p = make_planner(true);
  PlanResult r = p.plan(GetParam());
  EXPECT_TRUE(r.report.valid) << r.plan;
  EXPECT_TRUE(r.report.minimal_expansion)
      << GetParam().to_string() << " plan: " << r.plan;
  EXPECT_LE(r.report.dilation, 2u) << r.plan;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PlannerCoverage,
    ::testing::Values(Shape{6, 10}, Shape{3, 21}, Shape{14, 18},
                      Shape{3, 5, 6}, Shape{12, 16, 20}, Shape{9, 15, 1},
                      Shape{5, 10, 11}, Shape{6, 6, 6}, Shape{10, 14, 18},
                      Shape{3, 3, 21}),
    [](const auto& param_info) {
      std::string s = param_info.param.to_string();
      for (auto& ch : s)
        if (ch == 'x') ch = '_';
      return s;
    });

}  // namespace
}  // namespace hj
