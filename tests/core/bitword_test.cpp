// Property tests for BitwordSet, the packed-u64 membership type behind
// the verifier's injectivity sweep, the planner's fault-avoidance node
// marking and the simulator's done/failed tracking. The workhorse drives
// BitwordSet and a std::set<u32> oracle through the same seeded random
// operation sequences — including 2^14-bit universes, the storm-cell
// size from E20 — and checks that membership, count and iteration agree
// after every step.
#include "core/bitword.hpp"

#include <gtest/gtest.h>

#include <random>
#include <set>
#include <vector>

namespace hj {
namespace {

// --- Targeted unit tests ----------------------------------------------------

TEST(Bitword, StartsEmpty) {
  BitwordSet s(130);
  EXPECT_EQ(s.size(), 130u);
  EXPECT_EQ(s.words(), 3u);
  EXPECT_EQ(s.count(), 0u);
  EXPECT_TRUE(s.none());
  EXPECT_FALSE(s.any());
  for (u64 i = 0; i < s.size(); ++i) EXPECT_FALSE(s.test(i));
}

TEST(Bitword, SetClearTestRoundTrip) {
  BitwordSet s(200);
  // Word-boundary indices are the interesting ones.
  for (u64 i : {u64{0}, u64{1}, u64{63}, u64{64}, u64{127}, u64{128},
                u64{199}}) {
    EXPECT_FALSE(s.test(i));
    s.set(i);
    EXPECT_TRUE(s.test(i));
    s.clear(i);
    EXPECT_FALSE(s.test(i));
  }
  EXPECT_TRUE(s.none());
}

TEST(Bitword, TestAndSetReportsPriorState) {
  BitwordSet s(64);
  EXPECT_FALSE(s.test_and_set(17));
  EXPECT_TRUE(s.test_and_set(17));  // the injectivity-collision signal
  EXPECT_TRUE(s.test(17));
  EXPECT_EQ(s.count(), 1u);
}

TEST(Bitword, ForEachSetVisitsAscending) {
  BitwordSet s(300);
  const std::vector<u64> want = {0, 5, 63, 64, 65, 128, 255, 299};
  for (u64 i : want) s.set(i);
  std::vector<u64> got;
  s.for_each_set([&](u64 i) { got.push_back(i); });
  EXPECT_EQ(got, want);
}

TEST(Bitword, ResetZeroesEverything) {
  BitwordSet s(1000);
  for (u64 i = 0; i < 1000; i += 7) s.set(i);
  ASSERT_GT(s.count(), 0u);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_TRUE(s.none());
}

TEST(Bitword, ShrinkThenGrowCannotResurrectStaleBits) {
  BitwordSet s(256);
  for (u64 i = 0; i < 256; ++i) s.set(i);
  // Shrink to a non-word-aligned size: bits 100..255 leave the universe,
  // including the tail of word 1 and whole words 2-3.
  s.resize(100);
  EXPECT_EQ(s.size(), 100u);
  EXPECT_EQ(s.count(), 100u);
  s.resize(256);
  EXPECT_EQ(s.count(), 100u);
  for (u64 i = 100; i < 256; ++i)
    EXPECT_FALSE(s.test(i)) << "stale bit " << i << " survived shrink/grow";
}

TEST(Bitword, EqualityComparesSizeAndBits) {
  BitwordSet a(70), b(70);
  EXPECT_EQ(a, b);
  a.set(69);
  EXPECT_FALSE(a == b);
  b.set(69);
  EXPECT_EQ(a, b);
  BitwordSet c(71);
  c.set(69);
  EXPECT_FALSE(a == c);  // same words, different universe
}

// --- Oracle property tests --------------------------------------------------

// One randomized episode: apply the same op sequence to a BitwordSet and
// a std::set<u32>, checking full agreement at the end and spot agreement
// along the way.
void run_episode(u64 seed) {
  std::mt19937_64 rng(seed);
  // Mix tiny universes (word-boundary edge cases) with the 2^14-node
  // storm-cell size the type was built for.
  static constexpr u64 kSizes[] = {1, 63, 64, 65, 1000, u64{1} << 14};
  const u64 size = kSizes[rng() % std::size(kSizes)];
  BitwordSet set(size);
  std::set<u32> oracle;
  std::uniform_int_distribution<u64> index(0, size - 1);

  const u32 ops = 200 + static_cast<u32>(rng() % 300);
  for (u32 op = 0; op < ops; ++op) {
    const u64 i = index(rng);
    switch (rng() % 5) {
      case 0:
        set.set(i);
        oracle.insert(static_cast<u32>(i));
        break;
      case 1:
        set.clear(i);
        oracle.erase(static_cast<u32>(i));
        break;
      case 2: {
        const bool was = set.test_and_set(i);
        const bool oracle_was =
            !oracle.insert(static_cast<u32>(i)).second;
        ASSERT_EQ(was, oracle_was) << "test_and_set(" << i << ")";
        break;
      }
      case 3:
        ASSERT_EQ(set.test(i), oracle.count(static_cast<u32>(i)) != 0)
            << "test(" << i << ")";
        break;
      default:
        ASSERT_EQ(set.count(), oracle.size());
        ASSERT_EQ(set.none(), oracle.empty());
        ASSERT_EQ(set.any(), !oracle.empty());
        break;
    }
  }

  // Full-state agreement: iteration yields exactly the oracle, in order.
  std::vector<u32> got;
  set.for_each_set([&](u64 i) { got.push_back(static_cast<u32>(i)); });
  ASSERT_EQ(got, std::vector<u32>(oracle.begin(), oracle.end()));
  ASSERT_EQ(set.count(), oracle.size());

  // Occasionally shrink-and-regrow mid-life and re-check: resize must
  // drop exactly the out-of-range members and nothing else.
  if (size > 1 && rng() % 2 == 0) {
    const u64 cut = 1 + index(rng) % (size - 1);
    set.resize(cut);
    while (!oracle.empty() && *oracle.rbegin() >= cut)
      oracle.erase(std::prev(oracle.end()));
    set.resize(size);
    got.clear();
    set.for_each_set([&](u64 i) { got.push_back(static_cast<u32>(i)); });
    ASSERT_EQ(got, std::vector<u32>(oracle.begin(), oracle.end()))
        << "after resize to " << cut << " and back";
  }
}

TEST(Bitword, AgreesWithSetOracleOver200SeededEpisodes) {
  for (u64 seed = 0; seed < 200; ++seed) {
    SCOPED_TRACE("episode seed " + std::to_string(seed));
    run_episode(0x5eed0000 + seed);
    if (HasFatalFailure()) return;
  }
}

TEST(Bitword, DensePopulationAtStormCellSize) {
  // All 2^14 bits on: count and iteration at the size run() sees for the
  // largest E20 storm hosts.
  const u64 n = u64{1} << 14;
  BitwordSet s(n);
  for (u64 i = 0; i < n; ++i) EXPECT_FALSE(s.test_and_set(i));
  EXPECT_EQ(s.count(), n);
  u64 expect = 0;
  s.for_each_set([&](u64 i) {
    ASSERT_EQ(i, expect);
    ++expect;
  });
  EXPECT_EQ(expect, n);
}

}  // namespace
}  // namespace hj
