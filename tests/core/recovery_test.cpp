// Tests for the live-recovery controller: the reroute / migrate / replan
// escalation ladder, its migration-cost model, factor-subcube spare
// preference, and the fault-aware plan_batch cache-purity regression.
#include "core/recovery.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "core/io.hpp"
#include "core/product.hpp"
#include "core/router.hpp"
#include "manytoone/manytoone.hpp"
#include "search/provider.hpp"

namespace hj::recovery {
namespace {

RecoveryOptions full_options() {
  RecoveryOptions opts;
  opts.direct_provider = search::make_search_provider();
  opts.degrade_provider = m2o::make_degrade_provider();
  return opts;
}

PlanResult plan_shape(const Shape& shape) {
  Planner planner;
  planner.set_direct_provider(search::make_search_provider());
  return planner.plan(shape);
}

// --- Rung (a): reroute ------------------------------------------------------

TEST(Recovery, LinkFaultRepairsByReroute) {
  const PlanResult base = plan_shape(Shape{4, 4, 4});
  ASSERT_TRUE(base.report.valid);
  // 4x4x4 is a subcube power: dilation 1. A detour adds an even number of
  // hops (hypercube path parity), so the faulted edge lands at 3 — allow
  // +2 here so rung (a) is reachable at all; the default +1 budget would
  // correctly escalate a dilation-1 embedding to replan.
  RecoveryOptions opts = full_options();
  opts.max_dilation_increase = 2;

  // Kill a link under some routed edge; both endpoints stay healthy.
  FaultSet faults;
  bool armed = false;
  base.embedding->guest().for_each_edge([&](const MeshEdge& e) {
    if (armed) return;
    const CubePath p = base.embedding->edge_path(e);
    if (p.size() == 2) {
      faults.fail_link(p[0], p[1]);
      armed = true;
    }
  });
  ASSERT_TRUE(armed);

  RecoveryController ctl(Shape{4, 4, 4}, opts);
  const RepairResult r =
      ctl.repair(*base.embedding, faults, base.report.dilation);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.rung, Rung::Reroute);
  EXPECT_EQ(r.moved_nodes, 0u);
  EXPECT_EQ(r.migration_cost, 0u);
  EXPECT_TRUE(r.report.valid);
  EXPECT_TRUE(r.report.fault_free);
  EXPECT_LE(r.report.dilation, base.report.dilation + 2);
  // Reroute must not move any guest node.
  for (MeshIndex i = 0; i < base.embedding->guest().num_nodes(); ++i)
    EXPECT_EQ(r.embedding->map(i), base.embedding->map(i));
}

// --- Rung (b): migrate ------------------------------------------------------

TEST(Recovery, DeadNodeMigratesToAdjacentSpare) {
  // 3x3x7 fills 63 of Q6's 64 addresses: exactly one spare. Kill the used
  // address one bit away from the spare, so the displaced guest node has a
  // distance-1 home to move to.
  const PlanResult base = plan_shape(Shape{3, 3, 7});
  ASSERT_TRUE(base.report.valid);
  ASSERT_EQ(base.report.host_dim, 6u);

  std::vector<bool> used(64, false);
  for (MeshIndex i = 0; i < 63; ++i) used[base.embedding->map(i)] = true;
  CubeNode spare = 64;
  for (CubeNode v = 0; v < 64; ++v)
    if (!used[v]) spare = v;
  ASSERT_LT(spare, 64u);

  FaultSet faults;
  faults.fail_node(spare ^ 1);  // a used neighbor of the spare

  RecoveryController ctl(Shape{3, 3, 7}, full_options());
  const RepairResult r =
      ctl.repair(*base.embedding, faults, base.report.dilation);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.rung, Rung::Migrate);
  EXPECT_EQ(r.moved_nodes, 1u);
  EXPECT_EQ(r.migration_cost, 1u);  // cost model: one node, distance one
  EXPECT_TRUE(r.report.valid);
  EXPECT_TRUE(r.report.fault_free);
  EXPECT_LE(r.report.dilation, base.report.dilation + 1);
  // Exactly the displaced guest node moved, onto the spare.
  u64 moved = 0;
  for (MeshIndex i = 0; i < 63; ++i) {
    if (r.embedding->map(i) != base.embedding->map(i)) {
      ++moved;
      EXPECT_EQ(base.embedding->map(i), spare ^ 1);
      EXPECT_EQ(r.embedding->map(i), spare);
    }
  }
  EXPECT_EQ(moved, 1u);
}

TEST(Recovery, SparePreferenceStaysInFactorSubcube) {
  // Hand-built placement in Q4 with inner factor width 2 (outer bits are
  // bits 2-3). Guest node 6 sits at 13 (0b1101); its radius-1 spares are
  // 9 (foreign outer bits) and 12 / 15 (same outer bits). Address order
  // alone would pick 9; the factor preference must pick 12.
  const std::vector<CubeNode> map{0, 1, 2, 3, 4, 5, 13};
  auto emb = std::make_shared<ExplicitEmbedding>(
      Mesh(Shape{7}), 4, std::vector<CubeNode>(map));
  const VerifyReport before = verify(*emb);
  ASSERT_TRUE(before.valid);
  FaultSet faults;
  faults.fail_node(13);

  RecoveryOptions opts = full_options();
  opts.max_dilation_increase = 4;  // isolate spare choice from the budget
  RecoveryController ctl(Shape{7}, opts);
  const RepairResult with_factor =
      ctl.repair(*emb, faults, before.dilation, /*factor_inner_dim=*/2);
  ASSERT_TRUE(with_factor.ok);
  ASSERT_EQ(with_factor.rung, Rung::Migrate);
  EXPECT_EQ(with_factor.embedding->map(6), 12u);

  const RepairResult without_factor =
      ctl.repair(*emb, faults, before.dilation, /*factor_inner_dim=*/0);
  ASSERT_TRUE(without_factor.ok);
  ASSERT_EQ(without_factor.rung, Rung::Migrate);
  EXPECT_EQ(without_factor.embedding->map(6), 9u);
}

TEST(Recovery, InnerFactorDimOfProductPlan) {
  auto inner = std::make_shared<GrayEmbedding>(Mesh(Shape{3, 3}));
  auto outer = std::make_shared<GrayEmbedding>(Mesh(Shape{1, 2}));
  MeshProductEmbedding product(inner, outer);
  EXPECT_EQ(inner_factor_dim(product), 4u);
  EXPECT_EQ(inner_factor_dim(*inner), 0u);  // not a product
}

// --- Rung (c): replan and escalation ---------------------------------------

TEST(Recovery, FarSpareEscalatesToReplan) {
  // Kill a used address farther than max_migration_radius from the only
  // spare: reroute fails (dead endpoint), migrate finds no spare in
  // radius, so the controller must replan.
  const PlanResult base = plan_shape(Shape{3, 3, 7});
  std::vector<bool> used(64, false);
  for (MeshIndex i = 0; i < 63; ++i) used[base.embedding->map(i)] = true;
  CubeNode spare = 64;
  for (CubeNode v = 0; v < 64; ++v)
    if (!used[v]) spare = v;
  ASSERT_LT(spare, 64u);
  const CubeNode far = spare ^ 0x3f;  // Hamming distance 6 from the spare
  ASSERT_TRUE(used[far]);

  FaultSet faults;
  faults.fail_node(far);
  RecoveryOptions opts = full_options();
  opts.max_migration_radius = 2;
  RecoveryController ctl(Shape{3, 3, 7}, opts);
  const RepairResult r =
      ctl.repair(*base.embedding, faults, base.report.dilation);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.rung, Rung::Replan);
  EXPECT_TRUE(r.report.valid);
  EXPECT_TRUE(r.report.fault_free);
  EXPECT_GE(r.moved_nodes, 1u);
  EXPECT_GE(r.migration_cost, r.moved_nodes);  // every move costs >= 1
}

TEST(Recovery, ForceReplanSkipsLocalRungs) {
  const PlanResult base = plan_shape(Shape{4, 4, 4});
  FaultSet faults;
  bool armed = false;
  base.embedding->guest().for_each_edge([&](const MeshEdge& e) {
    if (armed) return;
    const CubePath p = base.embedding->edge_path(e);
    if (p.size() == 2) {
      faults.fail_link(p[0], p[1]);
      armed = true;
    }
  });
  ASSERT_TRUE(armed);
  RecoveryOptions opts = full_options();
  opts.force_replan = true;
  RecoveryController ctl(Shape{4, 4, 4}, opts);
  const RepairResult r =
      ctl.repair(*base.embedding, faults, base.report.dilation);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.rung, Rung::Replan);
  EXPECT_TRUE(r.report.fault_free);
}

TEST(Recovery, UnrepairableReturnsNotOk) {
  // No degrade provider and every address failed: nothing can certify.
  const PlanResult base = plan_shape(Shape{2, 2});
  FaultSet faults;
  for (CubeNode v = 0; v < 4; ++v) faults.fail_node(v);
  RecoveryController ctl(Shape{2, 2});  // bare: no providers attached
  const RepairResult r =
      ctl.repair(*base.embedding, faults, base.report.dilation);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.embedding, nullptr);
}

TEST(Recovery, RepairRejectsWrongShape) {
  const PlanResult base = plan_shape(Shape{2, 2});
  RecoveryController ctl(Shape{3, 3});
  EXPECT_THROW((void)ctl.repair(*base.embedding, FaultSet{}, 1),
               std::invalid_argument);
}

// --- Satellite: fault-aware plan_batch and cache purity ---------------------

TEST(PlanBatchFaults, FaultedAndFaultFreeShareOneBatchSafely) {
  // The same shape planned with and without faults in one batch, both
  // orders. The faulted plans must certify against their fault sets, the
  // fault-free plans must be byte-identical to an isolated plan() (i.e.
  // the shared cache was never polluted by a faulted result).
  const Shape shape{3, 3, 7};
  const std::string clean_text = io::to_text(*plan_shape(shape).embedding);

  FaultSet faults;
  faults.fail_link(0, 1);

  for (const bool faulted_first : {true, false}) {
    ShardedPlanCache cache;
    const std::vector<Shape> shapes{shape, shape};
    const std::vector<const FaultSet*> fsets =
        faulted_first ? std::vector<const FaultSet*>{&faults, nullptr}
                      : std::vector<const FaultSet*>{nullptr, &faults};
    const std::vector<PlanResult> plans = plan_batch(
        shapes, fsets, {}, [] { return search::make_search_provider(); },
        &cache);
    const std::size_t fi = faulted_first ? 0 : 1;
    const std::size_t ci = 1 - fi;

    EXPECT_TRUE(plans[fi].report.valid);
    EXPECT_TRUE(plans[fi].report.fault_free);
    EXPECT_TRUE(verify(*plans[fi].embedding, faults).fault_free);

    EXPECT_TRUE(plans[ci].report.valid);
    EXPECT_EQ(io::to_text(*plans[ci].embedding), clean_text)
        << "fault-free plan differs after sharing a batch with a faulted "
           "plan: the cache was polluted";

    // Planning the shape again from the same (warm) cache must still
    // yield the clean embedding.
    const std::vector<PlanResult> again = plan_batch(
        {shape}, {}, [] { return search::make_search_provider(); }, &cache);
    EXPECT_EQ(io::to_text(*again[0].embedding), clean_text);
  }
}

TEST(PlanBatchFaults, SizesMustMatch) {
  EXPECT_THROW(
      (void)plan_batch({Shape{2, 2}}, std::vector<const FaultSet*>{}),
      std::invalid_argument);
}

TEST(PlanBatchFaults, UnavoidableFaultsThrowAfterTheBatch) {
  FaultSet all_dead;
  for (CubeNode v = 0; v < 4; ++v) all_dead.fail_node(v);
  EXPECT_THROW((void)plan_batch({Shape{2, 2}},
                                std::vector<const FaultSet*>{&all_dead}),
               std::invalid_argument);
}

// --- Concurrency: controllers + verify_batch under TSan ---------------------

TEST(RecoveryConcurrency, ControllersShareCacheWithVerifyBatch) {
  // Four controller threads repairing against a shared plan cache while
  // the main thread runs verify_batch on the parallel engine: the TSan CI
  // job runs this at HJ_THREADS=4 to certify the locking.
  const PlanResult base = plan_shape(Shape{3, 3, 7});
  std::vector<bool> used(64, false);
  for (MeshIndex i = 0; i < 63; ++i) used[base.embedding->map(i)] = true;
  CubeNode spare = 64;
  for (CubeNode v = 0; v < 64; ++v)
    if (!used[v]) spare = v;

  ShardedPlanCache cache;
  std::vector<RepairResult> results(4);
  std::vector<std::thread> workers;
  for (u32 t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      FaultSet faults;
      faults.fail_node(spare ^ (u64{1} << t));
      RecoveryController ctl(Shape{3, 3, 7}, full_options());
      ctl.set_shared_cache(&cache);
      results[t] =
          ctl.repair(*base.embedding, faults, base.report.dilation);
    });
  }
  std::vector<EmbeddingPtr> embs(16, base.embedding);
  const std::vector<VerifyReport> reports = verify_batch(embs);
  for (std::thread& w : workers) w.join();

  for (const VerifyReport& r : reports) EXPECT_TRUE(r.valid);
  for (u32 t = 0; t < 4; ++t) {
    ASSERT_TRUE(results[t].ok) << "worker " << t;
    EXPECT_TRUE(results[t].report.fault_free);
  }
}

}  // namespace
}  // namespace hj::recovery
