// Property-based harness: a seeded shape generator drives the planner
// over hundreds of random 1D-3D meshes and checks every certified report
// against the paper's closed-form invariants — Theorem 3 / Corollaries
// 1-2 for product plans, and the Rajan-style dilation lower bound
// (dilation >= 1, with dilation 1 at minimal expansion possible exactly
// when Gray code already reaches the minimal cube).
#include <gtest/gtest.h>

#include <random>

#include "core/coverage.hpp"
#include "core/planner.hpp"
#include "core/product.hpp"
#include "search/provider.hpp"

namespace hj {
namespace {

constexpr u64 kSeed = 0x90901234;
constexpr int kShapes = 520;       // >= 500 planner trials
constexpr u64 kMaxNodes = 1 << 15; // keeps the suite fast under ASan

/// Axis generator mixing the regimes the paper cares about: exact powers
/// of two (Gray-minimal), odd lengths (worst rounding), and the
/// 3*2^a / 7*2^a "paper-shaped" families behind methods 3-4.
u64 random_axis(std::mt19937_64& rng) {
  switch (rng() % 4) {
    case 0:
      return u64{1} << (rng() % 7);  // 1..64, power of two
    case 1:
      return 3 + 2 * (rng() % 31);   // odd in [3, 63]
    case 2: {
      static constexpr u64 paper[] = {3, 5, 6, 7, 9, 11, 12, 14, 17,
                                      21, 23, 24, 25, 28, 48, 56};
      return paper[rng() % std::size(paper)];
    }
    default:
      return 1 + rng() % 64;         // uniform [1, 64]
  }
}

Shape random_shape(std::mt19937_64& rng, u32 min_rank, u32 max_rank) {
  for (;;) {
    const u32 rank = min_rank + static_cast<u32>(rng() % (max_rank - min_rank + 1));
    SmallVec<u64, 4> ext;
    u64 nodes = 1;
    for (u32 d = 0; d < rank; ++d) {
      ext.push_back(random_axis(rng));
      nodes *= ext.back();
    }
    if (nodes <= kMaxNodes) return Shape{ext};
  }
}

TEST(PlannerProperty, RandomShapesSatisfyPaperInvariants) {
  std::mt19937_64 rng(kSeed);
  Planner planner;
  planner.set_direct_provider(search::make_search_provider(100'000));

  int minimal_hits = 0;
  for (int t = 0; t < kShapes; ++t) {
    const Shape s = random_shape(rng, 1, 3);
    SCOPED_TRACE("shape " + s.to_string());
    const PlanResult r = planner.plan(s);
    const VerifyReport& rep = r.report;

    ASSERT_TRUE(rep.valid) << r.plan;
    EXPECT_EQ(rep.guest_nodes, s.num_nodes());

    // Every library construction is dilation <= 2 (Gray leaves are 1,
    // tables/search are 2, products and submeshes preserve the max).
    EXPECT_LE(rep.dilation, 2u) << r.plan;

    // Expansion is exactly |V(H)| / |V(G)|, and the host never exceeds
    // the per-axis Gray rounding (the planner's universal fallback).
    EXPECT_EQ(rep.expansion,
              static_cast<double>(u64{1} << rep.host_dim) /
                  static_cast<double>(s.num_nodes()));
    EXPECT_GE(rep.host_dim, s.minimal_cube_dim());
    EXPECT_LE(rep.host_dim, s.gray_cube_dim());

    // Rajan-style lower bound: any embedding of a mesh with at least one
    // edge has dilation >= 1, and a *minimal-expansion* dilation-1 (i.e.
    // subgraph) embedding is constructed exactly when Gray code is
    // already minimal (gray_excess_log2 == 0).
    if (rep.guest_edges > 0) {
      EXPECT_GE(rep.dilation, 1u);
      EXPECT_GE(rep.avg_dilation, 1.0);
      EXPECT_LE(rep.avg_dilation, static_cast<double>(rep.dilation));
      EXPECT_GE(rep.congestion, 1u);
    }
    if (coverage::gray_excess_log2(s) == 0) {
      EXPECT_TRUE(rep.minimal_expansion) << r.plan;
      EXPECT_LE(rep.dilation, 1u) << r.plan;
    } else if (rep.minimal_expansion && s.num_nodes() > 1) {
      EXPECT_EQ(rep.dilation, 2u)
          << "dilation-1 minimal embedding of a mesh whose Gray rounding "
             "overflows the minimal cube would be a subgraph that cannot "
             "exist: " << r.plan;
    }

    // Histogram bookkeeping: dilation bins cover every guest edge.
    u64 edges_binned = 0;
    for (u64 c : rep.dilation_histogram) edges_binned += c;
    EXPECT_EQ(edges_binned, rep.guest_edges);

    // Wirelength double-counting identity: total edge-path length equals
    // both Sum d * dil_hist[d] (guest-side) and Sum c * cong_hist[c]
    // (host-side link loads) — the same links counted from either end.
    u64 wl_guest = 0;
    for (std::size_t d = 0; d < rep.dilation_histogram.size(); ++d)
      wl_guest += d * rep.dilation_histogram[d];
    u64 wl_host = 0;
    for (std::size_t c = 0; c < rep.congestion_histogram.size(); ++c)
      wl_host += c * rep.congestion_histogram[c];
    EXPECT_EQ(rep.wirelength, wl_guest) << r.plan;
    EXPECT_EQ(rep.wirelength, wl_host) << r.plan;

    // Every cost-model lower bound must be dominated by the measured
    // metric it bounds — a bound above its value would refute the model.
    EXPECT_LE(rep.bounds.host_dim, rep.host_dim) << r.plan;
    EXPECT_LE(rep.bounds.dilation, rep.dilation) << r.plan;
    EXPECT_LE(rep.bounds.wirelength, rep.wirelength) << r.plan;
    EXPECT_LE(rep.bounds.congestion, rep.congestion) << r.plan;
    EXPECT_LE(rep.bounds.load, rep.load_factor) << r.plan;

    if (rep.minimal_expansion) ++minimal_hits;
  }
  // The generator leans on coverable families; most shapes should reach
  // the minimal cube (Figure 2's 96.1% is the 3D-by-512^3 analogue).
  EXPECT_GE(minimal_hits, kShapes / 2);
}

TEST(PlannerProperty, ProductPlansComposeMetricsPerTheorem3) {
  // Corollary 2: embedding factors M1 -> Q_n1, M2 -> Q_n2 yields
  // M1*M2 -> Q_{n1+n2} with dilation max(d1, d2), congestion
  // max(c1, c2) and expansion e1 * e2. Verify the composed product
  // measures exactly that, for random planned factors.
  std::mt19937_64 rng(kSeed ^ 0xBEEF);
  Planner planner;

  for (int t = 0; t < 200; ++t) {
    const u32 rank = 1 + static_cast<u32>(rng() % 3);
    Shape s1{1}, s2{1};
    u64 nodes = 0;
    do {
      s1 = random_shape(rng, rank, rank);
      s2 = random_shape(rng, rank, rank);
      nodes = s1.num_nodes() * s2.num_nodes();
    } while (nodes > kMaxNodes || nodes < 2);
    SCOPED_TRACE("factors " + s1.to_string() + " and " + s2.to_string());

    const PlanResult r1 = planner.plan(s1);
    const PlanResult r2 = planner.plan(s2);
    // The planner's convention: the lower-dilation factor goes inner.
    const bool first_inner = r1.report.dilation <= r2.report.dilation;
    const PlanResult& inner = first_inner ? r1 : r2;
    const PlanResult& outer = first_inner ? r2 : r1;
    const MeshProductEmbedding product(inner.embedding, outer.embedding);
    const VerifyReport rep = verify(product);

    ASSERT_TRUE(rep.valid);
    EXPECT_EQ(rep.host_dim, r1.report.host_dim + r2.report.host_dim);
    // e1 * e2 rounds differently than 2^(n1+n2) / (g1 * g2); the values
    // agree to the ULP, not bitwise.
    EXPECT_DOUBLE_EQ(rep.expansion,
                     r1.report.expansion * r2.report.expansion);
    EXPECT_EQ(rep.dilation,
              std::max(r1.report.dilation, r2.report.dilation));
    EXPECT_LE(rep.congestion,
              std::max(r1.report.congestion, r2.report.congestion));
    // The inner factor's congestion pattern is replicated intact in
    // every copy, so at least that side of the max is always realized.
    EXPECT_GE(rep.congestion, inner.report.congestion);
  }
}

TEST(PlannerProperty, BatchMatchesSerialOnRandomShapes) {
  // plan_batch must agree with the serial planner on certified metrics
  // for canonical (sorted) inputs, where no perm relabeling applies.
  std::mt19937_64 rng(kSeed ^ 0xCAFE);
  std::vector<Shape> shapes;
  for (int t = 0; t < 64; ++t)
    shapes.push_back(random_shape(rng, 1, 3).sorted());
  const std::vector<PlanResult> batch = plan_batch(shapes);

  Planner planner;
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    SCOPED_TRACE("shape " + shapes[i].to_string());
    const PlanResult serial = planner.plan(shapes[i]);
    EXPECT_EQ(batch[i].plan, serial.plan);
    EXPECT_EQ(batch[i].report.dilation, serial.report.dilation);
    EXPECT_EQ(batch[i].report.congestion, serial.report.congestion);
    EXPECT_EQ(batch[i].report.host_dim, serial.report.host_dim);
  }
}

}  // namespace
}  // namespace hj
