#include "core/verify.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace hj {
namespace {

TEST(Verify, FlagsNonInjectiveOneToOne) {
  ExplicitEmbedding emb{Mesh(Shape{3}), 2, {0, 1, 1}};
  VerifyReport r = verify(emb);
  EXPECT_FALSE(r.valid);
  EXPECT_EQ(r.load_factor, 2u);
}

TEST(Verify, FlagsBrokenPath) {
  // An embedding whose edge_path lies about its endpoints.
  class Liar final : public Embedding {
   public:
    Liar() : Embedding(Mesh(Shape{2}), 1) {}
    CubeNode map(MeshIndex i) const override { return i; }
    CubePath edge_path(const MeshEdge&) const override {
      return CubePath{0, 0};  // not a cube edge
    }
  } emb;
  VerifyReport r = verify(emb);
  EXPECT_FALSE(r.valid);
}

TEST(Verify, GrayMetricsExact) {
  GrayEmbedding emb{Mesh(Shape{4, 4})};
  VerifyReport r = verify(emb);
  EXPECT_TRUE(r.valid);
  EXPECT_EQ(r.guest_nodes, 16u);
  EXPECT_EQ(r.guest_edges, 24u);
  EXPECT_EQ(r.host_dim, 4u);
  EXPECT_DOUBLE_EQ(r.expansion, 1.0);
  EXPECT_TRUE(r.minimal_expansion);
  EXPECT_EQ(r.dilation, 1u);
  EXPECT_DOUBLE_EQ(r.avg_dilation, 1.0);
  EXPECT_EQ(r.congestion, 1u);
  // 24 of Q4's 32 edges carry exactly one guest edge.
  EXPECT_DOUBLE_EQ(r.avg_congestion, 24.0 / 32.0);
  ASSERT_GE(r.congestion_histogram.size(), 2u);
  EXPECT_EQ(r.congestion_histogram[0], 8u);
  EXPECT_EQ(r.congestion_histogram[1], 24u);
}

TEST(Verify, DilationHistogramSumsToEdges) {
  ExplicitEmbedding emb{Mesh(Shape{3, 3}), 4,
                        {0, 1, 3, 4, 5, 7, 12, 13, 15}};
  VerifyReport r = verify(emb);
  EXPECT_TRUE(r.valid);
  const u64 total = std::accumulate(r.dilation_histogram.begin(),
                                    r.dilation_histogram.end(), u64{0});
  EXPECT_EQ(total, r.guest_edges);
}

TEST(Verify, CongestionHistogramCoversAllHostEdges) {
  GrayEmbedding emb{Mesh(Shape{3, 5})};
  VerifyReport r = verify(emb);
  const u64 total = std::accumulate(r.congestion_histogram.begin(),
                                    r.congestion_histogram.end(), u64{0});
  EXPECT_EQ(total, Hypercube(r.host_dim).num_edges());
}

TEST(Verify, SharedCubeEdgeCountedTwice) {
  // Two guest edges forced through the same cube edge.
  ExplicitEmbedding emb{Mesh(Shape{3}), 2, {0b01, 0b00, 0b10}};
  // Default e-cube routing: (01 -> 00) and (00 -> 10): no shared edge, both
  // dilation 1. Now reroute edge 0 via a detour that reuses (00,10).
  emb.set_edge_path(MeshEdge{0, 1, 0, false},
                    CubePath{0b01, 0b11, 0b10, 0b00});
  VerifyReport r = verify(emb);
  EXPECT_TRUE(r.valid);
  EXPECT_EQ(r.congestion, 2u);  // edge (00,10) carries both paths
  EXPECT_EQ(r.dilation, 3u);
}

TEST(Verify, LoadFactorForManyToOne) {
  class Contract final : public Embedding {
   public:
    Contract() : Embedding(Mesh(Shape{6}), 1) {}
    CubeNode map(MeshIndex i) const override { return i / 3; }
    CubePath edge_path(const MeshEdge& e) const override {
      return Hypercube::ecube_path(map(e.a), map(e.b));
    }
    bool one_to_one() const noexcept override { return false; }
  } emb;
  VerifyReport r = verify(emb);
  EXPECT_TRUE(r.valid);
  EXPECT_EQ(r.load_factor, 3u);
  EXPECT_EQ(r.dilation, 1u);    // the block-boundary edge
  ASSERT_GE(r.dilation_histogram.size(), 1u);
  EXPECT_EQ(r.dilation_histogram[0], 4u);  // intra-block edges collapse
}

TEST(Verify, CertifiedHelper) {
  GrayEmbedding good{Mesh(Shape{4, 8})};
  EXPECT_TRUE(verify_certified(good, 1));
  GrayEmbedding fat{Mesh(Shape{5, 6, 7})};  // expansion 512/210, not minimal
  VerifyReport r;
  EXPECT_FALSE(verify_certified(fat, 2, &r));
  EXPECT_TRUE(r.valid);  // structurally fine, just not minimal
}

TEST(Verify, SummaryMentionsShapeAndCube) {
  GrayEmbedding emb{Mesh(Shape{4, 4})};
  VerifyReport r = verify(emb);
  std::string s = summary(r, emb);
  EXPECT_NE(s.find("4x4"), std::string::npos);
  EXPECT_NE(s.find("Q4"), std::string::npos);
  EXPECT_NE(s.find("minimal"), std::string::npos);
}

}  // namespace
}  // namespace hj
