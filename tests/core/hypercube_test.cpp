#include "core/hypercube.hpp"

#include <gtest/gtest.h>

#include <set>

namespace hj {
namespace {

TEST(Hypercube, Counts) {
  Hypercube q0(0), q3(3), q10(10);
  EXPECT_EQ(q0.num_nodes(), 1u);
  EXPECT_EQ(q0.num_edges(), 0u);
  EXPECT_EQ(q3.num_nodes(), 8u);
  EXPECT_EQ(q3.num_edges(), 12u);
  EXPECT_EQ(q10.num_nodes(), 1024u);
  EXPECT_EQ(q10.num_edges(), 5120u);
}

TEST(Hypercube, Adjacency) {
  EXPECT_TRUE(Hypercube::adjacent(0b000, 0b100));
  EXPECT_FALSE(Hypercube::adjacent(0b000, 0b110));
  EXPECT_FALSE(Hypercube::adjacent(5, 5));
  EXPECT_EQ(Hypercube::neighbor(0b1010, 0), 0b1011u);
  EXPECT_EQ(Hypercube::neighbor(0b1010, 3), 0b0010u);
}

TEST(Hypercube, EcubePathIsShortestAndValid) {
  for (CubeNode a = 0; a < 32; ++a) {
    for (CubeNode b = 0; b < 32; ++b) {
      CubePath p = Hypercube::ecube_path(a, b);
      ASSERT_GE(p.size(), 1u);
      EXPECT_EQ(p.front(), a);
      EXPECT_EQ(p.back(), b);
      EXPECT_EQ(p.size() - 1, hamming(a, b));
      for (std::size_t i = 0; i + 1 < p.size(); ++i)
        EXPECT_TRUE(Hypercube::adjacent(p[i], p[i + 1]));
    }
  }
}

TEST(Hypercube, EcubePathFixesLowBitsFirst) {
  CubePath p = Hypercube::ecube_path(0b000, 0b101);
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p[1], 0b001u);
  EXPECT_EQ(p[2], 0b101u);
}

TEST(Hypercube, EdgeKeyIsUniquePerEdge) {
  Hypercube q(5);
  std::set<u64> keys;
  for (CubeNode v = 0; v < q.num_nodes(); ++v) {
    for (u32 b = 0; b < q.dim(); ++b) {
      CubeNode w = Hypercube::neighbor(v, b);
      if (v < w) {
        EXPECT_TRUE(keys.insert(Hypercube::edge_key(v, w)).second);
      }
    }
  }
  EXPECT_EQ(keys.size(), q.num_edges());
  // Symmetric in argument order.
  EXPECT_EQ(Hypercube::edge_key(3, 7), Hypercube::edge_key(7, 3));
}

TEST(Hypercube, DimensionLimit) {
  EXPECT_THROW(Hypercube(64), std::invalid_argument);
  EXPECT_NO_THROW(Hypercube(63));
}

}  // namespace
}  // namespace hj
