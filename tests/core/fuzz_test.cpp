// Property and failure-injection tests: the verifier must catch every
// corruption, and the planner must hold its invariants on random shapes.
#include <gtest/gtest.h>

#include <random>

#include "core/io.hpp"
#include "core/planner.hpp"
#include "core/verify.hpp"
#include "hypersim/fault.hpp"
#include "torus/torus.hpp"

namespace hj {
namespace {

// --- Failure injection: corrupt a known-good embedding, expect detection.

std::shared_ptr<ExplicitEmbedding> good_embedding() {
  // Materialize a planner result (12x20, dil 2, routed paths) via io.
  static const std::string text = [] {
    Planner p;
    return io::to_text(*p.plan(Shape{12, 20}).embedding);
  }();
  return io::from_text(text);
}

TEST(FailureInjection, BaselineIsValid) {
  auto emb = good_embedding();
  VerifyReport r = verify(*emb);
  EXPECT_TRUE(r.valid);
  EXPECT_LE(r.dilation, 2u);
}

TEST(FailureInjection, DuplicatedNodeIsCaught) {
  auto emb = good_embedding();
  std::vector<CubeNode> map = emb->node_map();
  map[7] = map[3];  // collide two nodes
  ExplicitEmbedding bad(emb->guest(), emb->host_dim(), map);
  VerifyReport r = verify(bad);
  EXPECT_FALSE(r.valid);
  EXPECT_EQ(r.load_factor, 2u);
}

TEST(FailureInjection, SwappedNodesRaiseDilationNotValidity) {
  // Swapping two images keeps the embedding structurally valid (with
  // default routing) but typically wrecks the dilation — the verifier
  // must report the true numbers, not the advertised ones.
  auto emb = good_embedding();
  std::vector<CubeNode> map = emb->node_map();
  std::swap(map.front(), map.back());
  ExplicitEmbedding bad(emb->guest(), emb->host_dim(), map);
  VerifyReport r = verify(bad);
  EXPECT_TRUE(r.valid);
  EXPECT_GT(r.dilation, 2u);
}

TEST(FailureInjection, StalePathAfterMapChangeIsCaught) {
  auto emb = good_embedding();
  // Corrupt the map entry of a node that owns a stored path: the loader's
  // endpoint check must reject the stale path.
  std::string text = io::to_text(*emb);
  const auto ppos = text.find("\npath ");
  ASSERT_NE(ppos, std::string::npos);
  std::istringstream ph(text.substr(ppos + 6));
  u64 src = 0;
  ph >> src;
  // Rewrite that node's map entry to a guaranteed-different address.
  const auto mpos = text.find("map ");
  ASSERT_NE(mpos, std::string::npos);
  std::istringstream ms(text.substr(mpos + 4));
  std::vector<u64> map_vals(emb->guest().num_nodes());
  for (u64& v : map_vals) ms >> v;
  map_vals[src] ^= 1;  // move the node one cube link away
  std::swap(map_vals[src],
            map_vals[src == 0 ? 1 : 0]);  // keep it a permutation-ish change
  std::string rebuilt = text.substr(0, mpos) + "map";
  for (u64 v : map_vals) rebuilt += " " + std::to_string(v);
  rebuilt += text.substr(text.find('\n', mpos));
  EXPECT_THROW((void)io::from_text(rebuilt), std::invalid_argument);
}

TEST(FailureInjection, OutOfCubeNodeRejectedAtConstruction) {
  auto emb = good_embedding();
  std::vector<CubeNode> map = emb->node_map();
  map[0] = u64{1} << emb->host_dim();
  EXPECT_THROW(ExplicitEmbedding(emb->guest(), emb->host_dim(), map),
               std::invalid_argument);
}

// --- Malformed io::from_text inputs: always throw, never crash. ---

TEST(IoFuzz, TruncatedInputsThrowOrParse) {
  const std::string text = io::to_text(*good_embedding());
  // Every prefix must either parse cleanly (if it happens to contain a
  // complete document) or throw std::invalid_argument — never crash or
  // return a torn object.
  for (std::size_t len = 0; len < text.size(); len += 3) {
    try {
      auto emb = io::from_text(text.substr(0, len));
      ASSERT_NE(emb, nullptr);
    } catch (const std::invalid_argument&) {
      // expected for most prefixes
    }
  }
}

TEST(IoFuzz, MalformedInputsThrow) {
  const char* cases[] = {
      "",                                             // empty
      "hjembed",                                      // header cut short
      "hjembed 2\nshape 2 2\n",                       // unknown version
      "bogus 1\nshape 2 2\n",                         // wrong magic
      "hjembed 1\nshape\nwrap 0\ncube 2\nmap 0\nend",  // empty shape
      "hjembed 1\nshape 2 0\nwrap 0 0\ncube 2\nmap 0 1 2 3\nend",  // zero extent
      "hjembed 1\nshape 2 2\nwrap 0\ncube 2\nmap 0 1 2 3\nend",    // short wrap
      "hjembed 1\nshape 2 2\nwrap 0 0\ncube 2\nmap 0 1 2\nend",    // short map
      "hjembed 1\nshape 2 2\nwrap 0 0\ncube 2\nmap 0 1 2 x\nend",  // bad number
      "hjembed 1\nshape 2 2\nwrap 0 0\ncube 99\nmap 0 1 2 3\nend",  // cube > 63
      "hjembed 1\nshape 2 2\nwrap 0 0\ncube 2\nmap 0 1 2 7\nend",  // out of cube
      "hjembed 1\nshape 2 2\nwrap 0 0\ncube 2\nmap 0 1 2 3\n",     // missing end
      "hjembed 1\nshape 2 2\nwrap 0 0\ncube 2\nmap 0 1 2 3\njunk\nend",
      "hjembed 1\nshape 2 2\nwrap 0 0\ncube 2\nmap 0 1 2 3\n"
      "path 9 0 0 0 1\nend",                          // path node out of range
      "hjembed 1\nshape 2 2\nwrap 0 0\ncube 2\nmap 0 1 2 3\n"
      "path 0 7 0 0 1\nend",                          // path axis out of range
      "hjembed 1\nshape 2 2\nwrap 0 0\ncube 2\nmap 0 1 2 3\n"
      "path 0 0 1 0 1\nend",                          // wrap path, unwrapped mesh
  };
  for (const char* c : cases)
    EXPECT_THROW((void)io::from_text(c), std::invalid_argument) << c;
}

TEST(IoFuzz, HugeShapeHeaderThrowsInsteadOfAllocating) {
  // An absurd shape header must be rejected before the node map is
  // allocated (no bad_alloc, no u64 overflow wrapping to a small product).
  const char* cases[] = {
      "hjembed 1\nshape 18446744073709551615 2\nwrap 0 0\ncube 2\nmap 0\nend",
      "hjembed 1\nshape 4294967296 4294967296\nwrap 0 0\ncube 2\nmap 0\nend",
      "hjembed 1\nshape 99999999999\nwrap 0\ncube 2\nmap 0\nend",
  };
  for (const char* c : cases)
    EXPECT_THROW((void)io::from_text(c), std::invalid_argument) << c;
}

TEST(IoFuzz, DuplicatePathKeyThrows) {
  std::string text =
      "hjembed 1\nshape 2 2\nwrap 0 0\ncube 2\nmap 0 1 2 3\n"
      "path 0 1 0 0 1\n"
      "path 0 1 0 0 1\nend";
  EXPECT_THROW((void)io::from_text(text), std::invalid_argument);
  // The same path given once is fine.
  std::string once =
      "hjembed 1\nshape 2 2\nwrap 0 0\ncube 2\nmap 0 1 2 3\n"
      "path 0 1 0 0 1\nend";
  EXPECT_TRUE(verify(*io::from_text(once)).valid);
}

// --- Random-shape property sweeps. ---

Shape random_shape(std::mt19937_64& rng, u32 max_dims, u64 max_nodes) {
  std::uniform_int_distribution<u32> kdist(1, max_dims);
  const u32 k = kdist(rng);
  SmallVec<u64, 4> ext;
  u64 nodes = 1;
  for (u32 i = 0; i < k; ++i) {
    const u64 cap = std::max<u64>(1, max_nodes / nodes);
    std::uniform_int_distribution<u64> ldist(1, std::min<u64>(cap, 40));
    ext.push_back(ldist(rng));
    nodes *= ext.back();
  }
  return Shape{ext};
}

TEST(PlannerProperty, RandomShapesAlwaysCertifiable) {
  std::mt19937_64 rng(20260707);
  Planner planner;  // shared memo makes 150 shapes cheap
  for (int t = 0; t < 150; ++t) {
    const Shape s = random_shape(rng, 4, 3000);
    PlanResult r = planner.plan(s);
    ASSERT_TRUE(r.report.valid) << s.to_string() << " " << r.plan;
    EXPECT_LE(r.report.dilation, 2u) << s.to_string() << " " << r.plan;
    EXPECT_EQ(r.report.load_factor, 1u) << s.to_string();
    // Never worse than Gray.
    EXPECT_LE(r.report.host_dim, s.gray_cube_dim()) << s.to_string();
    EXPECT_GE(r.report.host_dim, s.minimal_cube_dim()) << s.to_string();
  }
}

TEST(PlannerProperty, RoundTripThroughIoPreservesEverything) {
  std::mt19937_64 rng(424242);
  Planner planner;
  for (int t = 0; t < 25; ++t) {
    const Shape s = random_shape(rng, 3, 600);
    PlanResult r = planner.plan(s);
    auto back = io::from_text(io::to_text(*r.embedding));
    VerifyReport rb = verify(*back);
    EXPECT_EQ(r.report.dilation, rb.dilation) << s.to_string();
    EXPECT_EQ(r.report.congestion, rb.congestion) << s.to_string();
    EXPECT_DOUBLE_EQ(r.report.avg_dilation, rb.avg_dilation) << s.to_string();
  }
}

TEST(TorusProperty, RandomToriAlwaysValid) {
  std::mt19937_64 rng(777);
  torus::TorusPlanner planner;
  for (int t = 0; t < 40; ++t) {
    const Shape s = random_shape(rng, 3, 800);
    PlanResult r = planner.plan(s);
    ASSERT_TRUE(r.report.valid) << s.to_string() << " " << r.plan;
    EXPECT_LE(r.report.dilation, 3u) << s.to_string() << " " << r.plan;
  }
}

TEST(InversePlacement, RoundTrips) {
  Planner planner;
  PlanResult r = planner.plan(Shape{7, 9});
  const std::vector<i64> inv = inverse_placement(*r.embedding);
  u64 used = 0;
  for (u64 v = 0; v < inv.size(); ++v) {
    if (inv[v] < 0) continue;
    ++used;
    EXPECT_EQ(r.embedding->map(static_cast<MeshIndex>(inv[v])), v);
  }
  EXPECT_EQ(used, r.embedding->guest().num_nodes());
}

TEST(FaultScheduleFuzz, MalformedInputsAreRejectedWithContext) {
  // Every malformed line must throw (never crash or silently skip), and
  // the message must carry the offending line number for the CLI user.
  const char* bad[] = {
      "x node 3\n",           // non-numeric cycle
      "5\n",                  // missing kind
      "5 nodule 3\n",         // unknown kind
      "5 node\n",             // missing address
      "5 link 3\n",           // missing second address
      "5 link 3 4\n",         // addresses are not cube-adjacent
      "5 node 3 junk\n",      // trailing junk
      "1 node 1\nbroken\n",   // good line followed by bad one
  };
  for (const char* text : bad) {
    EXPECT_THROW((void)sim::FaultSchedule::parse(text),
                 std::invalid_argument)
        << text;
    try {
      (void)sim::FaultSchedule::parse(text);
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("line"), std::string::npos)
          << text;
    }
  }
  EXPECT_THROW((void)sim::FaultSchedule::load("/nonexistent/sched.txt"),
               std::invalid_argument);
}

TEST(FaultScheduleFuzz, RandomTextNeverCrashesTheParser) {
  std::mt19937_64 rng(4242);
  const char alphabet[] = "0123456789 nodelink#\n\t-";
  for (int t = 0; t < 200; ++t) {
    std::string text;
    const std::size_t len = rng() % 64;
    for (std::size_t i = 0; i < len; ++i)
      text += alphabet[rng() % (sizeof(alphabet) - 1)];
    try {
      const sim::FaultSchedule s = sim::FaultSchedule::parse(text);
      // Anything accepted must be canonically ordered.
      for (std::size_t i = 1; i < s.events().size(); ++i)
        EXPECT_LE(s.events()[i - 1].cycle, s.events()[i].cycle);
    } catch (const std::invalid_argument&) {
      // Rejection is fine; crashing is not.
    }
  }
}

TEST(DetailedSummary, ContainsHistograms) {
  GrayEmbedding emb{Mesh(Shape{4, 4})};
  VerifyReport r = verify(emb);
  const std::string s = detailed_summary(r, emb);
  EXPECT_NE(s.find("dilation histogram"), std::string::npos);
  EXPECT_NE(s.find("d1:24"), std::string::npos);
  EXPECT_NE(s.find("c1:24"), std::string::npos);
}

}  // namespace
}  // namespace hj
