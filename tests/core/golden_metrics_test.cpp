// Golden-metrics regression: the paper's worked examples, planned live
// and diffed against a checked-in snapshot of (dilation, congestion,
// expansion_log2, plan string). Any planner change that silently
// degrades — or merely reshuffles — a Section 5 example shows up here as
// an exact-string diff.
#include <gtest/gtest.h>

#include "core/planner.hpp"
#include "search/provider.hpp"

namespace hj {
namespace {

struct GoldenRow {
  Shape shape;
  u32 dilation;
  u32 congestion;
  u32 expansion_log2;  // host_dim - minimal_cube_dim; 0 = minimal cube
  u64 wirelength;      // total edge-path length of the chosen plan
  u64 wl_lb;           // cost-model wirelength lower bound for the cube
  const char* plan;
};

// Snapshot of the planner's output with the default search provider.
// 3x3x3 -> Q5 and 3x3x7 -> Q6 are the paper's direct tables; the other
// three are Section 5 worked examples solved by decomposition. The
// wirelength column pins the chosen paths, not just the plan tree, and
// the wl_lb column pins the cost model's bound (gap = wl / wl_lb).
const GoldenRow kGolden[] = {
    {Shape{3, 3, 3}, 2, 2, 0, 76, 55, "direct 3x3x3"},
    {Shape{3, 3, 7}, 2, 2, 0, 182, 139, "direct 3x3x7"},
    {Shape{5, 5, 8}, 2, 2, 0, 559, 496, "(gray 1x1x2 * search 5x5x4)"},
    {Shape{6, 6, 17}, 2, 2, 0, 1710, 1597,
     "(gray 2x1x1 * (gray 3x1x1 * search 1x6x17))"},
    {Shape{9, 12, 21}, 2, 2, 0, 6732, 6256,
     "(gray 3x1x1 * (gray 3x1x1 * (gray 1x2x1 * search 1x6x21)))"},
};

TEST(GoldenMetrics, PaperWorkedExamplesAreStable) {
  Planner planner;
  planner.set_direct_provider(search::make_search_provider());
  for (const GoldenRow& g : kGolden) {
    SCOPED_TRACE(g.shape.to_string());
    const PlanResult r = planner.plan(g.shape);
    ASSERT_TRUE(r.report.valid);
    EXPECT_EQ(r.report.dilation, g.dilation);
    EXPECT_EQ(r.report.congestion, g.congestion);
    EXPECT_EQ(r.report.host_dim - g.shape.minimal_cube_dim(),
              g.expansion_log2);
    EXPECT_EQ(r.report.wirelength, g.wirelength);
    EXPECT_EQ(r.report.bounds.wirelength, g.wl_lb);
    EXPECT_GE(cost::gap(static_cast<double>(r.report.wirelength),
                        static_cast<double>(r.report.bounds.wirelength)),
              1.0);
    EXPECT_EQ(r.plan, g.plan);
  }
}

TEST(GoldenMetrics, BatchPlannerAgreesWithSerialPlanner) {
  // plan_batch must certify the same metrics for the same shapes; the
  // plan string may gain a perm<> wrapper for non-sorted axis orders.
  std::vector<Shape> shapes;
  for (const GoldenRow& g : kGolden) shapes.push_back(g.shape);
  const std::vector<PlanResult> batch = plan_batch(
      shapes, {}, [] { return search::make_search_provider(); });
  ASSERT_EQ(batch.size(), std::size(kGolden));
  for (std::size_t i = 0; i < batch.size(); ++i) {
    SCOPED_TRACE(shapes[i].to_string());
    EXPECT_TRUE(batch[i].report.valid);
    EXPECT_EQ(batch[i].report.dilation, kGolden[i].dilation);
    EXPECT_EQ(batch[i].report.congestion, kGolden[i].congestion);
    EXPECT_EQ(batch[i].report.host_dim - shapes[i].minimal_cube_dim(),
              kGolden[i].expansion_log2);
    EXPECT_EQ(batch[i].embedding->guest().shape(), shapes[i]);
  }
}

}  // namespace
}  // namespace hj
