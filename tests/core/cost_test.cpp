// Unit tests for the cost model (core/cost.hpp): objective parsing and
// ordering, the measurement predicate, the min-degree cut floor, the
// closed-form lower bounds on known shapes, and the gap conventions.
#include <gtest/gtest.h>

#include "core/cost.hpp"

namespace hj::cost {
namespace {

TEST(Cost, ObjectiveNamesRoundTripThroughParse) {
  for (u32 i = 0; i < kNumObjectives; ++i) {
    const auto o = static_cast<Objective>(i);
    const auto parsed = parse_objective(objective_name(o));
    ASSERT_TRUE(parsed.has_value()) << objective_name(o);
    EXPECT_EQ(*parsed, o);
  }
}

TEST(Cost, ParseAcceptsAliasesAndRejectsJunk) {
  EXPECT_EQ(parse_objective("lex"), Objective::Lexicographic);
  EXPECT_EQ(parse_objective("default"), Objective::Lexicographic);
  EXPECT_EQ(parse_objective("wirelength"), Objective::WirelengthFirst);
  EXPECT_EQ(parse_objective("dilation"), Objective::DilationFirst);
  EXPECT_EQ(parse_objective("congestion"), Objective::CongestionFirst);
  EXPECT_EQ(parse_objective("bogus"), std::nullopt);
  EXPECT_EQ(parse_objective(""), std::nullopt);
  EXPECT_EQ(parse_objective("Lexicographic"), std::nullopt);  // case matters
  EXPECT_EQ(parse_objective("wirelength "), std::nullopt);
}

TEST(Cost, NeedsMeasurementOnlyForNonLexicographic) {
  static_assert(!needs_measurement(Objective::Lexicographic));
  static_assert(needs_measurement(Objective::DilationFirst));
  static_assert(needs_measurement(Objective::WirelengthFirst));
  static_assert(needs_measurement(Objective::CongestionFirst));
}

TEST(Cost, CubeIsThePrimaryKeyUnderEveryObjective) {
  // A smaller cube wins regardless of arbitrarily worse secondary
  // metrics, under every objective.
  const CostVector small{5, 2, 9, 999};
  const CostVector large{6, 1, 1, 1};
  for (u32 i = 0; i < kNumObjectives; ++i) {
    const auto o = static_cast<Objective>(i);
    EXPECT_TRUE(better(o, small, large)) << objective_name(o);
    EXPECT_FALSE(better(o, large, small)) << objective_name(o);
  }
}

TEST(Cost, LexicographicIgnoresSecondaryMetrics) {
  // Same cube, same dilation: never "better", even with a huge
  // wirelength/congestion edge — first candidate wins ties, exactly the
  // historical planner order.
  const CostVector a{6, 2, 1, 100};
  const CostVector b{6, 2, 9, 900};
  EXPECT_FALSE(better(Objective::Lexicographic, a, b));
  EXPECT_FALSE(better(Objective::Lexicographic, b, a));
  // Dilation still breaks cube ties.
  const CostVector d1{6, 1, 9, 900};
  EXPECT_TRUE(better(Objective::Lexicographic, d1, a));
}

TEST(Cost, MeasuredObjectivesOrderTheirKeys) {
  const CostVector base{6, 2, 3, 500};
  // Better wirelength, worse dilation.
  const CostVector wl{6, 3, 3, 400};
  EXPECT_TRUE(better(Objective::WirelengthFirst, wl, base));
  EXPECT_FALSE(better(Objective::DilationFirst, wl, base));
  // Better congestion, worse wirelength.
  const CostVector cong{6, 2, 2, 600};
  EXPECT_TRUE(better(Objective::CongestionFirst, cong, base));
  EXPECT_FALSE(better(Objective::WirelengthFirst, cong, base));
  // DilationFirst: equal dilation falls through to wirelength.
  const CostVector wl2{6, 2, 9, 400};
  EXPECT_TRUE(better(Objective::DilationFirst, wl2, base));
  // Full tie is never strictly better.
  EXPECT_FALSE(better(Objective::DilationFirst, base, base));
  EXPECT_FALSE(better(Objective::WirelengthFirst, base, base));
  EXPECT_FALSE(better(Objective::CongestionFirst, base, base));
}

TEST(Cost, MinDegreeCountsNonDegenerateAxes) {
  EXPECT_EQ(min_degree(Mesh(Shape{5})), 1u);
  EXPECT_EQ(min_degree(Mesh(Shape{3, 4})), 2u);
  EXPECT_EQ(min_degree(Mesh(Shape{3, 3, 3})), 3u);
  EXPECT_EQ(min_degree(Mesh(Shape{1, 7})), 1u);     // length-1 axis: none
  EXPECT_EQ(min_degree(Mesh::torus(Shape{3, 3})), 4u);
  // A wrapped length-2 axis is a single edge, not a 2-cycle.
  EXPECT_EQ(min_degree(Mesh::torus(Shape{2, 5})), 3u);
}

TEST(Cost, LowerBoundsOnPaperShape3x3x3) {
  // 3x3x3 in Q5: 27 nodes, 54 edges, minimal cube 5 < Gray cube 6, so
  // dilation 1 is impossible (Theorem 1) and one extra hop is forced.
  const Bounds b = lower_bounds(Mesh(Shape{3, 3, 3}), 5, true);
  EXPECT_EQ(b.host_dim, 5u);
  EXPECT_EQ(b.dilation, 2u);
  EXPECT_EQ(b.wirelength, 55u);  // 54 edges + 1 forced second hop
  EXPECT_EQ(b.congestion, 1u);   // ceil(55 / 80) = 1
  EXPECT_EQ(b.load, 1u);
}

TEST(Cost, LowerBoundsGrayMinimalShapeAllowsDilationOne) {
  // 4x4 in Q4 is Gray-minimal: dilation floor 1, wirelength floor is the
  // edge count (24 > the 4 * 2 dimension-cut total).
  const Bounds b = lower_bounds(Mesh(Shape{4, 4}), 4, true);
  EXPECT_EQ(b.host_dim, 4u);
  EXPECT_EQ(b.dilation, 1u);
  EXPECT_EQ(b.wirelength, 24u);
  EXPECT_EQ(b.congestion, 1u);
  EXPECT_EQ(b.load, 1u);
}

TEST(Cost, OddWrappedAxisForcesDilationTwo) {
  // C5 in Q3: an odd cycle is non-bipartite, so no subgraph embedding
  // exists even though host_dim == gray_cube_dim. The dimension-cut
  // floor (3 cuts * degree 2) meets the edge floor (5 + 1) at 6.
  const Bounds b = lower_bounds(Mesh::torus(Shape{5}), 3, true);
  EXPECT_EQ(b.dilation, 2u);
  EXPECT_EQ(b.wirelength, 6u);
  // Even cycles stay embeddable: C8 in Q3 has dilation floor 1.
  EXPECT_EQ(lower_bounds(Mesh::torus(Shape{8}), 3, true).dilation, 1u);
}

TEST(Cost, ManyToOneKeepsOnlyOccupancyFloors) {
  // Collapsed edges route in zero hops, so every edge-based floor is
  // dropped; the load floor ceil(27 / 16) = 2 survives.
  const Bounds b = lower_bounds(Mesh(Shape{3, 3, 3}), 4, false);
  EXPECT_EQ(b.host_dim, 0u);
  EXPECT_EQ(b.dilation, 0u);
  EXPECT_EQ(b.wirelength, 0u);
  EXPECT_EQ(b.congestion, 0u);
  EXPECT_EQ(b.load, 2u);
}

TEST(Cost, EdgelessGuestHasNoEdgeFloors) {
  const Bounds b = lower_bounds(Mesh(Shape{1}), 0, true);
  EXPECT_EQ(b.dilation, 0u);
  EXPECT_EQ(b.wirelength, 0u);
  EXPECT_EQ(b.congestion, 0u);
  EXPECT_EQ(b.load, 1u);
}

TEST(Cost, GapConventions) {
  EXPECT_DOUBLE_EQ(gap(55.0, 55.0), 1.0);
  EXPECT_DOUBLE_EQ(gap(110.0, 55.0), 2.0);
  // Zero bound (edgeless / many-to-one): optimal by convention.
  EXPECT_DOUBLE_EQ(gap(0.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(gap(7.0, 0.0), 1.0);
}

}  // namespace
}  // namespace hj::cost
