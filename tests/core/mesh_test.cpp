#include "core/mesh.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace hj {
namespace {

TEST(Mesh, EdgeCountMatchesFormula) {
  // A k-D l1 x ... x lk mesh has sum_i (l_i - 1) * prod_{j != i} l_j edges.
  Mesh m(Shape{3, 5, 7});
  EXPECT_EQ(m.num_edges(), 2u * 35 + 4u * 21 + 6u * 15);
}

TEST(Mesh, ForEachEdgeVisitsEachOnce) {
  Mesh m(Shape{4, 5});
  std::set<std::pair<MeshIndex, MeshIndex>> seen;
  u64 count = 0;
  m.for_each_edge([&](const MeshEdge& e) {
    ++count;
    auto key = std::minmax(e.a, e.b);
    EXPECT_TRUE(seen.insert(key).second) << "duplicate edge";
    EXPECT_LT(e.a, m.num_nodes());
    EXPECT_LT(e.b, m.num_nodes());
  });
  EXPECT_EQ(count, m.num_edges());
}

TEST(Mesh, EdgesConnectAdjacentCoords) {
  Mesh m(Shape{3, 4, 2});
  m.for_each_edge([&](const MeshEdge& e) {
    Coord ca = m.shape().coord(e.a);
    Coord cb = m.shape().coord(e.b);
    u32 diffs = 0;
    for (u32 i = 0; i < m.dims(); ++i) {
      if (ca[i] != cb[i]) {
        ++diffs;
        EXPECT_EQ(i, e.axis);
        EXPECT_FALSE(e.wrap);
        EXPECT_EQ(cb[i], ca[i] + 1);
      }
    }
    EXPECT_EQ(diffs, 1u);
  });
}

TEST(Mesh, TorusEdgeCount) {
  // A wrapped axis of length l > 2 contributes l edges per line.
  Mesh t = Mesh::torus(Shape{3, 5});
  EXPECT_EQ(t.num_edges(), 3u * 5 + 5u * 3);
}

TEST(Mesh, TorusLengthTwoAxisHasSingleEdge) {
  // Wrap on a length-2 axis must not create a double edge.
  Mesh t = Mesh::torus(Shape{2, 4});
  EXPECT_EQ(t.num_edges(), 1u * 4 + 4u * 2);
}

TEST(Mesh, TorusLengthOneAxisHasNoEdge) {
  Mesh t = Mesh::torus(Shape{1, 4});
  EXPECT_EQ(t.num_edges(), 4u);
}

TEST(Mesh, WrapEdgeOrientation) {
  Mesh t = Mesh::torus(Shape{5});
  bool saw_wrap = false;
  t.for_each_edge([&](const MeshEdge& e) {
    if (e.wrap) {
      saw_wrap = true;
      EXPECT_EQ(e.a, 4u);  // high-coordinate end first
      EXPECT_EQ(e.b, 0u);
    }
  });
  EXPECT_TRUE(saw_wrap);
}

TEST(Mesh, NeighborsAreSymmetric) {
  Mesh m = Mesh::torus(Shape{4, 3});
  for (MeshIndex i = 0; i < m.num_nodes(); ++i) {
    for (MeshIndex j : m.neighbors(i)) {
      auto back = m.neighbors(j);
      EXPECT_NE(std::find(back.begin(), back.end(), i), back.end())
          << i << " -> " << j << " not symmetric";
    }
  }
}

TEST(Mesh, NeighborCountsInteriorAndCorner) {
  Mesh m(Shape{3, 3});
  EXPECT_EQ(m.neighbors(4).size(), 4u);  // center
  EXPECT_EQ(m.neighbors(0).size(), 2u);  // corner
  Mesh t = Mesh::torus(Shape{3, 3});
  EXPECT_EQ(t.neighbors(0).size(), 4u);  // torus has no corners
}

TEST(Mesh, NeighborsMatchEdges) {
  Mesh m = Mesh::torus(Shape{4, 5});
  std::map<MeshIndex, std::set<MeshIndex>> adj;
  m.for_each_edge([&](const MeshEdge& e) {
    adj[e.a].insert(e.b);
    adj[e.b].insert(e.a);
  });
  for (MeshIndex i = 0; i < m.num_nodes(); ++i) {
    std::set<MeshIndex> from_nb;
    for (MeshIndex j : m.neighbors(i)) from_nb.insert(j);
    EXPECT_EQ(from_nb, adj[i]) << "node " << i;
  }
}

TEST(Mesh, WrapFlagsRankMismatchThrows) {
  EXPECT_THROW(Mesh(Shape{3, 4}, SmallVec<u8, 4>{1}), std::invalid_argument);
}

}  // namespace
}  // namespace hj
