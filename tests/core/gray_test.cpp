#include "core/gray.hpp"

#include <gtest/gtest.h>

namespace hj {
namespace {

TEST(Gray, ConsecutiveCodesAreAdjacent) {
  for (u64 i = 0; i + 1 < 4096; ++i) {
    EXPECT_EQ(hamming(gray(i), gray(i + 1)), 1u) << "at i=" << i;
  }
}

TEST(Gray, IsPermutationOfRange) {
  std::vector<bool> seen(1 << 10, false);
  for (u64 i = 0; i < (1 << 10); ++i) {
    u64 g = gray(i);
    ASSERT_LT(g, seen.size());
    EXPECT_FALSE(seen[g]);
    seen[g] = true;
  }
}

TEST(Gray, InverseRoundTrip) {
  for (u64 i = 0; i < 4096; ++i) {
    EXPECT_EQ(gray_inverse(gray(i)), i);
    EXPECT_EQ(gray(gray_inverse(i)), i);
  }
  // Large values too.
  for (u64 i = (u64{1} << 40); i < (u64{1} << 40) + 100; ++i)
    EXPECT_EQ(gray_inverse(gray(i)), i);
}

TEST(Gray, CyclicClosure) {
  // G(2^n - 1) and G(0) differ in one bit: Gray codes embed rings of
  // power-of-two length with dilation one.
  for (u32 n = 1; n <= 16; ++n) {
    EXPECT_EQ(hamming(gray((u64{1} << n) - 1), gray(0)), 1u) << "n=" << n;
  }
}

TEST(Gray, ReflectedGrayMeetsAtCopyBoundary) {
  // The key identity behind Corollary 2: the seam between copy y and copy
  // y+1 joins the END of one traversal to the START of the next, and the
  // reflection makes those codewords equal:
  //   G~(2t,   2^n - 1) == G~(2t+1, 0)        (even copy end = odd start)
  //   G~(2t+1, 2^n - 1) == G~(2t+2, 0)        (odd copy end = even start)
  const u32 n = 5;
  const u64 top = (u64{1} << n) - 1;
  for (u64 t = 0; t < 8; ++t) {
    EXPECT_EQ(reflected_gray(2 * t, top, n), reflected_gray(2 * t + 1, 0, n));
    EXPECT_EQ(reflected_gray(2 * t + 1, top, n),
              reflected_gray(2 * t + 2, 0, n));
  }
}

TEST(Gray, ReflectedGrayStaysAdjacentWithinCopy) {
  const u32 n = 4;
  for (u64 y = 0; y < 4; ++y) {
    for (u64 x = 0; x + 1 < (u64{1} << n); ++x) {
      EXPECT_EQ(hamming(reflected_gray(y, x, n), reflected_gray(y, x + 1, n)),
                1u);
    }
  }
}

}  // namespace
}  // namespace hj
