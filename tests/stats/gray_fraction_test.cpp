// Tests for the Theorem 2 / Figure 1 statistics.
#include "stats/gray_fraction.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace hj::stats {
namespace {

TEST(GrayFraction, PaperValues) {
  // The paper: f_2(1/2) = 2(1 - ln 2) ~ 0.61, f_3(1/2) ~ 0.27.
  EXPECT_NEAR(gray_minimal_fraction(2), 2.0 * (1.0 - std::log(2.0)), 1e-12);
  EXPECT_NEAR(gray_minimal_fraction(2), 0.6137, 5e-4);
  const double ln2 = std::log(2.0);
  EXPECT_NEAR(gray_minimal_fraction(3),
              4.0 * (1.0 - ln2 - ln2 * ln2 / 2.0), 1e-12);
  EXPECT_NEAR(gray_minimal_fraction(3), 0.2665, 5e-4);  // "~0.27" in the paper
}

TEST(GrayFraction, OneDimensionalIsCertain) {
  EXPECT_NEAR(gray_minimal_fraction(1), 1.0, 1e-12);
  EXPECT_NEAR(f_k(1, 1.0), 0.0, 1e-12);
}

TEST(GrayFraction, DecreasesWithDimension) {
  double prev = 1.1;
  for (u32 k = 1; k <= 10; ++k) {
    const double f = gray_minimal_fraction(k);
    EXPECT_GT(f, 0.0);
    EXPECT_LT(f, prev);
    prev = f;
  }
  // Figure 1's qualitative point: by k = 10 the fraction is tiny.
  EXPECT_LT(gray_minimal_fraction(10), 0.002);
}

TEST(GrayFraction, FkMonotoneInAlpha) {
  for (u32 k : {2u, 3u, 5u}) {
    double prev = 2.0;
    for (double a = 0.5; a <= 1.0001; a += 0.05) {
      const double f = f_k(k, std::min(a, 1.0));
      EXPECT_LE(f, prev + 1e-12);
      prev = f;
    }
  }
}

TEST(GrayFraction, DistributionSumsToOne) {
  for (u32 k = 1; k <= 8; ++k) {
    const auto dist = gray_expansion_distribution(k);
    ASSERT_EQ(dist.size(), k + 1);
    const double total = std::accumulate(dist.begin(), dist.end(), 0.0);
    EXPECT_NEAR(total, 1.0, 1e-9) << "k=" << k;
    for (double p : dist) EXPECT_GE(p, -1e-12);
    // The beta = 0 bucket is exactly f_k(1/2).
    EXPECT_NEAR(dist[0], gray_minimal_fraction(k), 1e-9);
  }
}

TEST(GrayFraction, MonteCarloMatchesClosedForm) {
  for (u32 k : {2u, 3u, 4u}) {
    const double mc = gray_minimal_fraction_mc(k, 400'000, 7);
    EXPECT_NEAR(mc, gray_minimal_fraction(k), 0.01) << "k=" << k;
  }
}

TEST(GrayFraction, ExactFiniteDomainApproachesAsymptote) {
  // The finite-domain fraction converges to the continuous model as the
  // domain grows (Figure 1 is the asymptote of Figure 2's S1 curve).
  const double f2 = gray_minimal_fraction(2);
  const double e5 = gray_minimal_fraction_exact(2, 5);
  const double e8 = gray_minimal_fraction_exact(2, 8);
  EXPECT_LT(std::abs(e8 - f2), std::abs(e5 - f2) + 1e-5);
  EXPECT_NEAR(e8, f2, 0.04);
}

TEST(GrayFraction, ExactMatchesCoverageSweepAtK3) {
  // Must agree with the Figure 2 S1 value at n = 6 (37.8%).
  EXPECT_NEAR(gray_minimal_fraction_exact(3, 6), 0.378, 0.002);
}

TEST(GrayFraction, DomainMonteCarloMatchesExact) {
  const double exact = gray_minimal_fraction_exact(3, 7);
  const double mc = gray_minimal_fraction_domain_mc(3, 7, 400'000, 11);
  EXPECT_NEAR(mc, exact, 0.01);
}

TEST(GrayFraction, InvalidArguments) {
  EXPECT_THROW((void)f_k(0, 0.6), std::invalid_argument);
  EXPECT_THROW((void)f_k(2, 0.4), std::invalid_argument);
  EXPECT_THROW((void)gray_minimal_fraction_exact(4, 3),
               std::invalid_argument);
}

}  // namespace
}  // namespace hj::stats
