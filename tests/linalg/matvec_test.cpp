// Tests for the distributed matrix-vector kernel.
#include <gtest/gtest.h>

#include <random>

#include "core/planner.hpp"
#include "linalg/cannon.hpp"
#include "torus/torus.hpp"

namespace hj::la {
namespace {

void check(const Embedding& emb, u64 m, u64 seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> val(-1.0, 1.0);
  std::vector<double> A(m * m), x(m);
  for (double& v : A) v = val(rng);
  for (double& v : x) v = val(rng);
  const std::vector<double> ref = reference_matvec(m, A, x);
  const MatvecResult r = matvec(emb, m, A, x);
  ASSERT_EQ(r.y.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i)
    ASSERT_NEAR(r.y[i], ref[i], 1e-9) << "element " << i;
}

TEST(Matvec, CorrectOnGrayGrid) {
  GrayEmbedding emb{Mesh(Shape{4, 4})};
  check(emb, 8, 1);
  check(emb, 16, 2);
}

TEST(Matvec, CorrectOnPlannedGrid) {
  Planner planner;
  check(*planner.plan(Shape{5, 5}).embedding, 10, 3);
  check(*planner.plan(Shape{6, 6}).embedding, 12, 4);
}

TEST(Matvec, CorrectOnTorus) {
  torus::TorusPlanner planner;
  check(*planner.plan(Shape{6, 6}).embedding, 12, 5);
}

TEST(Matvec, SingleProcessor) {
  GrayEmbedding emb{Mesh(Shape{1, 1})};
  check(emb, 4, 6);
  std::vector<double> A(16, 1.0), x(4, 1.0);
  const MatvecResult r = matvec(emb, 4, A, x);
  EXPECT_EQ(r.comm_cycles, 0u);
}

TEST(Matvec, CommunicationScalesWithGridNotMatrix) {
  GrayEmbedding emb{Mesh(Shape{4, 4})};
  std::vector<double> A8(64, 1.0), x8(8, 1.0);
  std::vector<double> A16(256, 1.0), x16(16, 1.0);
  const MatvecResult small = matvec(emb, 8, A8, x8);
  const MatvecResult big = matvec(emb, 16, A16, x16);
  // Same grid, same message count and cycles (block size is a flit knob).
  EXPECT_EQ(small.comm_cycles, big.comm_cycles);
  EXPECT_EQ(small.messages, big.messages);
}

TEST(Matvec, DilationShowsUpInCycles) {
  // Dilation-1 Gray vs the dilation-2 minimal embedding of the same grid:
  // the systolic chains pay the dilation per hop.
  Planner planner;
  GrayEmbedding gray{Mesh(Shape{6, 6})};  // Q6 (64 slots, minimal too)
  PlanResult dec = planner.plan(Shape{6, 6});
  std::vector<double> A(144, 1.0), x(12, 1.0);
  const MatvecResult rg = matvec(gray, 12, A, x);
  const MatvecResult rd = matvec(*dec.embedding, 12, A, x);
  EXPECT_LE(rg.comm_cycles, rd.comm_cycles);
  EXPECT_LE(rd.comm_cycles, 2 * rg.comm_cycles);
}

TEST(Matvec, RejectsBadArguments) {
  GrayEmbedding emb{Mesh(Shape{4, 4})};
  EXPECT_THROW((void)matvec(emb, 10, std::vector<double>(100),
                            std::vector<double>(10)),
               std::invalid_argument);
  EXPECT_THROW((void)matvec(emb, 8, std::vector<double>(10),
                            std::vector<double>(8)),
               std::invalid_argument);
}

}  // namespace
}  // namespace hj::la
