// Tests for Cannon's algorithm on embedded processor grids.
#include "linalg/cannon.hpp"

#include <gtest/gtest.h>

#include <random>

#include "core/planner.hpp"
#include "torus/torus.hpp"

namespace hj::la {
namespace {

std::vector<double> random_matrix(u64 m, u64 seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> val(-1.0, 1.0);
  std::vector<double> out(m * m);
  for (double& v : out) v = val(rng);
  return out;
}

void expect_matches_reference(const Embedding& emb, u64 m, u64 seed) {
  const std::vector<double> A = random_matrix(m, seed);
  const std::vector<double> B = random_matrix(m, seed + 1);
  const std::vector<double> ref = reference_multiply(m, A, B);
  const CannonResult r = cannon_multiply(emb, m, A, B);
  ASSERT_EQ(r.C.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i)
    ASSERT_NEAR(r.C[i], ref[i], 1e-9) << "element " << i;
}

TEST(Cannon, CorrectOnGrayTorus) {
  GrayEmbedding emb{Mesh::torus(Shape{4, 4})};
  expect_matches_reference(emb, 8, 1);
  expect_matches_reference(emb, 12, 2);
}

TEST(Cannon, CorrectOnPlannedTorus) {
  torus::TorusPlanner planner;
  PlanResult r = planner.plan(Shape{6, 6});
  expect_matches_reference(*r.embedding, 12, 3);
}

TEST(Cannon, CorrectOnPlainMeshEmbedding) {
  // Without wraparound the ring shifts route the long way back; the
  // numerics must be identical anyway.
  GrayEmbedding emb{Mesh(Shape{4, 4})};
  expect_matches_reference(emb, 8, 4);
}

TEST(Cannon, SingleProcessorDegenerates) {
  GrayEmbedding emb{Mesh::torus(Shape{1, 1})};
  expect_matches_reference(emb, 3, 5);
  const CannonResult r = cannon_multiply(emb, 3, random_matrix(3, 9),
                                         random_matrix(3, 10));
  EXPECT_EQ(r.comm_cycles, 0u);
  EXPECT_EQ(r.messages, 0u);
}

TEST(Cannon, TorusShiftsBeatMeshShifts) {
  // The wraparound channels are the whole point of Section 6: on a plain
  // mesh embedding the cyclic shift's wrap message crosses the grid.
  // (Power-of-two Gray grids get cube wraparound for free — the cyclic
  // Gray code — so the gap only shows on non-power-of-two grids.)
  torus::TorusPlanner tp;
  Planner mp;
  PlanResult torus = tp.plan(Shape{6, 6});
  PlanResult mesh = mp.plan(Shape{6, 6});
  const auto A = random_matrix(12, 6), B = random_matrix(12, 7);
  const CannonResult rt = cannon_multiply(*torus.embedding, 12, A, B);
  const CannonResult rm = cannon_multiply(*mesh.embedding, 12, A, B);
  EXPECT_LT(rt.comm_cycles, rm.comm_cycles);  // measured: 10 vs 30
  for (std::size_t i = 0; i < rt.C.size(); ++i)
    ASSERT_NEAR(rt.C[i], rm.C[i], 1e-9);
}

TEST(Cannon, GrayPowerOfTwoGetsFreeWraparound) {
  // The cyclic-Gray corollary: on a 2^a x 2^a Gray grid, logical wrap
  // edges are already one cube hop, so mesh == torus exactly.
  GrayEmbedding torus{Mesh::torus(Shape{4, 4})};
  GrayEmbedding mesh{Mesh(Shape{4, 4})};
  const auto A = random_matrix(8, 6), B = random_matrix(8, 7);
  const CannonResult rt = cannon_multiply(torus, 8, A, B);
  const CannonResult rm = cannon_multiply(mesh, 8, A, B);
  EXPECT_EQ(rt.comm_cycles, rm.comm_cycles);
  for (std::size_t i = 0; i < rt.C.size(); ++i)
    ASSERT_NEAR(rt.C[i], rm.C[i], 1e-12);
}

TEST(Cannon, RoundAndMessageCounts) {
  GrayEmbedding emb{Mesh::torus(Shape{4, 4})};
  const CannonResult r =
      cannon_multiply(emb, 8, random_matrix(8, 8), random_matrix(8, 9));
  EXPECT_EQ(r.rounds, 4u);
  // Main loop: 3 shift rounds x 2 matrices x 16 tiles = 96 messages, plus
  // the skew traffic.
  EXPECT_GE(r.messages, 96u);
  EXPECT_GT(r.comm_cycles, 0u);
  EXPECT_GE(r.comm_cycles, r.skew_cycles);
}

TEST(Cannon, LargerTilesCostMoreCycles) {
  GrayEmbedding emb{Mesh::torus(Shape{4, 4})};
  const auto A = random_matrix(8, 11), B = random_matrix(8, 12);
  const CannonResult small = cannon_multiply(emb, 8, A, B, 1);
  const CannonResult big = cannon_multiply(emb, 8, A, B, 16);
  EXPECT_GT(big.comm_cycles, small.comm_cycles);
}

TEST(Cannon, RejectsBadArguments) {
  GrayEmbedding rect{Mesh::torus(Shape{4, 2})};
  EXPECT_THROW(
      (void)cannon_multiply(rect, 8, std::vector<double>(64),
                            std::vector<double>(64)),
      std::invalid_argument);
  GrayEmbedding sq{Mesh::torus(Shape{4, 4})};
  EXPECT_THROW((void)cannon_multiply(sq, 10, std::vector<double>(100),
                                     std::vector<double>(100)),
               std::invalid_argument);  // 10 % 4 != 0
  EXPECT_THROW((void)cannon_multiply(sq, 8, std::vector<double>(3),
                                     std::vector<double>(64)),
               std::invalid_argument);
}

}  // namespace
}  // namespace hj::la
