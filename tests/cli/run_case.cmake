# Generic hj_embed CLI test case, driven by `cmake -P` so no shell is
# assumed. Variables (passed with -D):
#   BIN             path to the hj_embed binary (required)
#   ARGS            semicolon-separated argument list
#   PRE_ARGS        if set, run BIN with these arguments first and require
#                   success (setup step, e.g. precompute before serve)
#   PRE_STDIN       text fed to the setup command's stdin (same "\n"
#                   escaping as STDIN; e.g. drive a serve session that
#                   leaves a flight ring behind)
#   STDIN           text fed to the command's stdin; "\n" escapes become
#                   newlines (line-protocol commands like serve)
#   EXPECT_NONZERO  if set, the command must FAIL (any nonzero exit)
#   MATCH           substring that must appear in combined stdout+stderr
#   FILE1 / FILE1_MATCH, FILE2 / FILE2_MATCH
#                   files that must exist afterwards and contain the
#                   given substring (export-flag round trips)
if(NOT DEFINED BIN)
  message(FATAL_ERROR "run_case.cmake: BIN is required")
endif()

if(DEFINED PRE_ARGS)
  separate_arguments(PRE_LIST UNIX_COMMAND "${PRE_ARGS}")
  set(pre_input_args)
  if(DEFINED PRE_STDIN)
    string(REPLACE "\\n" "\n" pre_stdin_body "${PRE_STDIN}")
    string(RANDOM LENGTH 8 pre_stdin_tag)
    set(pre_stdin_file
        "${CMAKE_CURRENT_BINARY_DIR}/cli_pre_stdin_${pre_stdin_tag}.txt")
    file(WRITE "${pre_stdin_file}" "${pre_stdin_body}")
    set(pre_input_args INPUT_FILE "${pre_stdin_file}")
  endif()
  execute_process(
    COMMAND "${BIN}" ${PRE_LIST}
    ${pre_input_args}
    OUTPUT_VARIABLE pre_out
    ERROR_VARIABLE pre_err
    RESULT_VARIABLE pre_rc
  )
  if(DEFINED PRE_STDIN)
    file(REMOVE "${pre_stdin_file}")
  endif()
  if(NOT pre_rc EQUAL 0)
    message(FATAL_ERROR
            "setup command failed (exit ${pre_rc})\n${pre_out}${pre_err}")
  endif()
endif()

set(input_args)
if(DEFINED STDIN)
  string(REPLACE "\\n" "\n" stdin_body "${STDIN}")
  string(RANDOM LENGTH 8 stdin_tag)
  set(stdin_file "${CMAKE_CURRENT_BINARY_DIR}/cli_stdin_${stdin_tag}.txt")
  file(WRITE "${stdin_file}" "${stdin_body}")
  set(input_args INPUT_FILE "${stdin_file}")
endif()

separate_arguments(ARG_LIST UNIX_COMMAND "${ARGS}")
execute_process(
  COMMAND "${BIN}" ${ARG_LIST}
  ${input_args}
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
  RESULT_VARIABLE rc
)
if(DEFINED STDIN)
  file(REMOVE "${stdin_file}")
endif()
set(combined "${out}${err}")

if(EXPECT_NONZERO)
  if(rc EQUAL 0)
    message(FATAL_ERROR "expected failure, got exit 0\n${combined}")
  endif()
else()
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "exit ${rc}\n${combined}")
  endif()
endif()

if(DEFINED MATCH)
  string(FIND "${combined}" "${MATCH}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "output does not contain '${MATCH}'\n${combined}")
  endif()
endif()

foreach(slot 1 2)
  if(DEFINED FILE${slot})
    if(NOT EXISTS "${FILE${slot}}")
      message(FATAL_ERROR "expected file ${FILE${slot}} was not written")
    endif()
    file(READ "${FILE${slot}}" body)
    string(FIND "${body}" "${FILE${slot}_MATCH}" pos)
    if(pos EQUAL -1)
      message(FATAL_ERROR
              "${FILE${slot}} does not contain '${FILE${slot}_MATCH}'")
    endif()
  endif()
endforeach()
