// Tests for the Boolean-cube network simulator substrate.
#include "hypersim/network.hpp"

#include <gtest/gtest.h>

#include "core/direct.hpp"
#include "core/verify.hpp"
#include "hypersim/storm.hpp"

namespace hj::sim {
namespace {

TEST(Network, SingleMessageTakesPathLengthCycles) {
  CubeNetwork net(SimConfig{3});
  net.add_message(CubePath{0, 1, 3, 7});
  SimResult r = net.run();
  EXPECT_EQ(r.cycles, 3u);
  EXPECT_EQ(r.messages, 1u);
  EXPECT_EQ(r.total_hops, 3u);
  EXPECT_EQ(r.max_link_load, 1u);
  EXPECT_DOUBLE_EQ(r.slowdown_vs_bound, 1.0);
}

TEST(Network, ContendingMessagesSerialize) {
  CubeNetwork net(SimConfig{2});
  // Both messages need link 0 -> 1 on their first hop.
  net.add_message(CubePath{0, 1});
  net.add_message(CubePath{0, 1, 3});
  SimResult r = net.run();
  EXPECT_EQ(r.max_link_load, 2u);
  // Cycle 1: msg0 takes (0,1), msg1 stalls. Cycle 2: msg1 takes (0,1).
  // Cycle 3: msg1 takes (1,3).
  EXPECT_EQ(r.cycles, 3u);
}

TEST(Network, OppositeDirectionsDoNotContend) {
  CubeNetwork net(SimConfig{1});
  net.add_message(CubePath{0, 1});
  net.add_message(CubePath{1, 0});
  SimResult r = net.run();
  EXPECT_EQ(r.cycles, 1u);
  EXPECT_EQ(r.max_link_load, 1u);
}

TEST(Network, BandwidthTwoHalvesSerialization) {
  for (u32 bw : {1u, 2u}) {
    CubeNetwork net(SimConfig{2, bw});
    net.add_message(CubePath{0, 1});
    net.add_message(CubePath{0, 1});
    SimResult r = net.run();
    EXPECT_EQ(r.cycles, bw == 1 ? 2u : 1u) << "bw=" << bw;
  }
}

TEST(Network, ZeroLengthRoutesCompleteInstantly) {
  CubeNetwork net(SimConfig{2});
  net.add_message(CubePath{3});
  SimResult r = net.run();
  EXPECT_EQ(r.cycles, 0u);
}

TEST(Network, RejectsBrokenRoutes) {
  CubeNetwork net(SimConfig{2});
  EXPECT_THROW(net.add_message(CubePath{0, 3}), std::invalid_argument);
  EXPECT_THROW(net.add_message(CubePath{}), std::invalid_argument);
}

TEST(Network, GrayStencilIsContentionLight) {
  // Dilation-1, congestion-1 routes: each directed link carries at most
  // one message; everything lands in one cycle.
  GrayEmbedding emb{Mesh(Shape{8, 8})};
  SimResult r = simulate_stencil(emb);
  EXPECT_TRUE(r.consistent());
  EXPECT_EQ(r.max_route_len, 1u);
  EXPECT_EQ(r.cycles, 1u);
  EXPECT_EQ(r.messages, 2u * emb.guest().num_edges());
}

TEST(Network, DirectTableStencilRespectsCongestionBound) {
  // Dilation-2 congestion-2 embedding: the exchange takes a handful of
  // cycles, bounded by a small multiple of the lower bound.
  auto emb = direct_embedding(Shape{7, 9});
  ASSERT_TRUE(emb.has_value());
  SimResult r = simulate_stencil(**emb);
  EXPECT_TRUE(r.consistent());
  EXPECT_EQ(r.max_route_len, 2u);
  EXPECT_GE(r.cycles, r.lower_bound());
  EXPECT_LE(r.cycles, 4 * r.lower_bound());
}

TEST(Network, DeterministicAcrossRuns) {
  auto emb = direct_embedding(Shape{3, 3, 7});
  ASSERT_TRUE(emb.has_value());
  SimResult a = simulate_stencil(**emb);
  SimResult b = simulate_stencil(**emb);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.total_hops, b.total_hops);
}

TEST(Network, AxisShiftSmallerThanFullExchange) {
  GrayEmbedding emb{Mesh(Shape{4, 4})};
  CubeNetwork net(SimConfig{emb.host_dim()});
  net.add_axis_shift(emb, 0);
  EXPECT_EQ(net.pending(), 12u);  // 3 * 4 edges on axis 0
  SimResult r = net.run();
  EXPECT_EQ(r.cycles, 1u);
}

TEST(Network, RunResetsState) {
  CubeNetwork net(SimConfig{2});
  net.add_message(CubePath{0, 1});
  (void)net.run();
  EXPECT_EQ(net.pending(), 0u);
  SimResult r = net.run();
  EXPECT_EQ(r.messages, 0u);
  EXPECT_EQ(r.cycles, 0u);
}

// --- Flit-level behaviour (message sizes, switching modes). ---

TEST(Flits, StoreAndForwardLatencyIsHopsTimesFlits) {
  CubeNetwork net(SimConfig{3, 1, 1'000'000, Switching::StoreAndForward, 4});
  net.add_message(CubePath{0, 1, 3, 7});
  SimResult r = net.run();
  EXPECT_EQ(r.cycles, 3u * 4u);
  EXPECT_DOUBLE_EQ(r.slowdown_vs_bound, 1.0);
}

TEST(Flits, CutThroughPipelinesTheTrain) {
  CubeNetwork net(SimConfig{3, 1, 1'000'000, Switching::CutThrough, 4});
  net.add_message(CubePath{0, 1, 3, 7});
  SimResult r = net.run();
  EXPECT_EQ(r.cycles, 3u + 4u - 1u);
  EXPECT_DOUBLE_EQ(r.slowdown_vs_bound, 1.0);
}

TEST(Flits, SingleFlitModesAgree) {
  for (auto sw : {Switching::StoreAndForward, Switching::CutThrough}) {
    auto emb = direct_embedding(Shape{3, 3, 3});
    ASSERT_TRUE(emb.has_value());
    SimResult r = simulate_stencil(**emb, 1, sw, 1);
    SimResult base = simulate_stencil(**emb);
    EXPECT_EQ(r.cycles, base.cycles);
  }
}

TEST(Flits, DilationPenaltyScalesWithMessageSizeOnlyForSAF) {
  // The dilation-2 route pays 2F under store-and-forward but only F+1
  // under cut-through: the motivating ablation for bench/exp_stencil_sim.
  for (u32 f : {1u, 8u, 32u}) {
    CubeNetwork saf(SimConfig{2, 1, 1'000'000, Switching::StoreAndForward, f});
    saf.add_message(CubePath{0, 1, 3});
    CubeNetwork ct(SimConfig{2, 1, 1'000'000, Switching::CutThrough, f});
    ct.add_message(CubePath{0, 1, 3});
    EXPECT_EQ(saf.run().cycles, 2u * f);
    EXPECT_EQ(ct.run().cycles, f + 1u);
  }
}

TEST(Flits, ContentionSerializesTrains) {
  // Two 4-flit messages over one shared link: 8 cycles of link time.
  CubeNetwork net(SimConfig{1, 1, 1'000'000, Switching::StoreAndForward, 4});
  net.add_message(CubePath{0, 1});
  net.add_message(CubePath{0, 1});
  SimResult r = net.run();
  EXPECT_EQ(r.cycles, 8u);
}

TEST(Flits, BandwidthSplitsFairlyAcrossTrains) {
  CubeNetwork net(SimConfig{1, 2, 1'000'000, Switching::StoreAndForward, 4});
  net.add_message(CubePath{0, 1});
  net.add_message(CubePath{0, 1});
  SimResult r = net.run();
  EXPECT_EQ(r.cycles, 4u);  // both trains stream in parallel
}

TEST(Broadcast, RootFansOutWithCongestion) {
  GrayEmbedding emb{Mesh(Shape{4, 4})};
  CubeNetwork net(SimConfig{emb.host_dim()});
  net.add_broadcast(emb, 0);
  EXPECT_EQ(net.pending(), 15u);
  SimResult r = net.run();
  // The root's outgoing links serialize: ~15 messages over 4 links.
  EXPECT_GE(r.max_link_load, 4u);
  EXPECT_GE(r.cycles, r.lower_bound());
  EXPECT_LE(r.cycles, 3 * r.lower_bound());
}

TEST(Broadcast, SkipsSelfAndColocated) {
  GrayEmbedding emb{Mesh(Shape{2, 2})};
  CubeNetwork net(SimConfig{2});
  net.add_broadcast(emb, 1);
  EXPECT_EQ(net.pending(), 3u);
}

TEST(Network, AccountingConsistentUnderE20StormDamage) {
  // Regression for the bitword done/failed bookkeeping in run(): replay
  // the E20 storm generator's damage (every kind, flapping included) as
  // the fault model of a stencil run and re-assert the SimResult
  // accounting invariant — every message ends delivered or failed, and
  // `completed` means exactly "all delivered, none failed".
  GrayEmbedding emb{Mesh(Shape{8, 8, 4})};  // Q8, the E20 smoke host size
  for (StormKind kind : {StormKind::Regional, StormKind::Cascading,
                         StormKind::Bursty, StormKind::Mixed}) {
    SCOPED_TRACE(storm_kind_name(kind));
    StormSpec spec;
    spec.cube_dim = emb.host_dim();
    spec.kind = kind;
    spec.events = 50;
    spec.flapping_links = 2;
    spec.seed = 20;
    const Storm storm = StormGenerator(spec).generate();

    // run() has no arrival clock: land the whole schedule up front so
    // the permanent damage is maximal for the failed-message path.
    FaultModel model;
    std::size_t cursor = 0;
    storm.schedule.apply_until(~u64{0}, model.permanent(), cursor);
    storm.install_flapping(model);

    SimConfig config;
    config.cube_dim = emb.host_dim();
    config.faults = &model;
    SimResult r = simulate_stencil(emb, config);
    EXPECT_TRUE(r.consistent());
    // A non-truncated run leaves nothing in flight.
    EXPECT_EQ(r.delivered + r.failed_messages, r.messages);
    // The storm kills hardware, so some routes must actually fail (the
    // failed-bitword path is exercised, not vacuously green).
    EXPECT_GT(r.failed_messages, 0u);
    EXPECT_GT(r.delivered, 0u);
    EXPECT_FALSE(r.completed);
  }
}

}  // namespace
}  // namespace hj::sim
