// Tests for the live-recovery stack: FaultSchedule parsing and replay,
// the run_live detection layer (consecutive-failure counters and the
// delivery watchdog), the epoch driver, and end-to-end certified recovery
// with bit-identical logs at every thread count.
#include "hypersim/live.hpp"

#include <gtest/gtest.h>

#include "core/io.hpp"
#include "core/parallel.hpp"
#include "manytoone/manytoone.hpp"
#include "search/provider.hpp"

namespace hj::sim {
namespace {

// Restores the thread override even when an assertion fails mid-test.
struct ThreadOverrideGuard {
  ~ThreadOverrideGuard() { par::set_thread_override(0); }
};

PlanResult plan_shape(const Shape& shape) {
  Planner planner;
  planner.set_direct_provider(search::make_search_provider());
  return planner.plan(shape);
}

LiveOptions full_options() {
  LiveOptions opts;
  opts.recovery.direct_provider = search::make_search_provider();
  opts.recovery.degrade_provider = m2o::make_degrade_provider();
  return opts;
}

// --- FaultSchedule ----------------------------------------------------------

TEST(FaultSchedule, ParseAndCanonicalOrder) {
  const FaultSchedule s = FaultSchedule::parse(
      "# a comment\n"
      "\n"
      "20 link 4 5\n"
      "10 node 3\n"
      "10 link 0 2\n"
      "10 node 1\n");
  ASSERT_EQ(s.size(), 4u);
  // Sorted by (cycle, node-before-link, address).
  EXPECT_EQ(s.events()[0], (FaultEvent{10, true, 1, 0}));
  EXPECT_EQ(s.events()[1], (FaultEvent{10, true, 3, 0}));
  EXPECT_EQ(s.events()[2], (FaultEvent{10, false, 0, 2}));
  EXPECT_EQ(s.events()[3], (FaultEvent{20, false, 4, 5}));
  EXPECT_EQ(s.events()[0].to_string(), "node 1");
  EXPECT_EQ(s.events()[2].to_string(), "link 0-2");
}

TEST(FaultSchedule, ParseRejectsMalformedLines) {
  EXPECT_THROW((void)FaultSchedule::parse("x node 3\n"),
               std::invalid_argument);
  EXPECT_THROW((void)FaultSchedule::parse("5\n"), std::invalid_argument);
  EXPECT_THROW((void)FaultSchedule::parse("5 nodule 3\n"),
               std::invalid_argument);
  EXPECT_THROW((void)FaultSchedule::parse("5 node\n"),
               std::invalid_argument);
  EXPECT_THROW((void)FaultSchedule::parse("5 link 3\n"),
               std::invalid_argument);
  EXPECT_THROW((void)FaultSchedule::parse("5 link 3 4\n"),
               std::invalid_argument);  // not cube-adjacent
  EXPECT_THROW((void)FaultSchedule::parse("5 node 3 junk\n"),
               std::invalid_argument);
  EXPECT_THROW((void)FaultSchedule::load("/nonexistent/schedule.txt"),
               std::invalid_argument);
}

TEST(FaultSchedule, ApplyUntilIsIncremental) {
  FaultSchedule s;
  s.add_node_failure(10, 3);
  s.add_link_failure(20, 0, 1);
  FaultSet f;
  std::size_t cursor = 0;
  s.apply_until(5, f, cursor);
  EXPECT_TRUE(f.empty());
  s.apply_until(10, f, cursor);
  EXPECT_TRUE(f.node_failed(3));
  EXPECT_FALSE(f.link_failed(0, 1));
  s.apply_until(100, f, cursor);
  EXPECT_TRUE(f.link_failed(0, 1));
  EXPECT_EQ(cursor, 2u);
}

TEST(FaultSchedule, DiagnosePrefersNodeOverLinkAndEarliest) {
  FaultSchedule s;
  s.add_link_failure(5, 2, 3);
  s.add_node_failure(8, 2);
  // Before the node arrival, the link event explains a 2->3 failure.
  auto d1 = s.diagnose(2, 3, 6);
  ASSERT_TRUE(d1.has_value());
  EXPECT_FALSE(d1->is_node);
  // After it, the dead endpoint node wins (it explains every incident
  // link).
  auto d2 = s.diagnose(2, 3, 10);
  ASSERT_TRUE(d2.has_value());
  EXPECT_TRUE(d2->is_node);
  EXPECT_EQ(d2->a, 2u);
  // Unrelated links have no explanation.
  EXPECT_FALSE(s.diagnose(4, 5, 100).has_value());
}

TEST(FaultSchedule, RandomIsSeedDeterministic) {
  const FaultSchedule a = FaultSchedule::random(6, 2, 2, 10, 5, 42);
  const FaultSchedule b = FaultSchedule::random(6, 2, 2, 10, 5, 42);
  const FaultSchedule c = FaultSchedule::random(6, 2, 2, 10, 5, 43);
  ASSERT_EQ(a.size(), 4u);
  EXPECT_EQ(a.events(), b.events());
  EXPECT_NE(a.events(), c.events());
  u32 nodes = 0;
  for (const FaultEvent& e : a.events()) nodes += e.is_node ? 1 : 0;
  EXPECT_EQ(nodes, 2u);
}

// --- SimConfig validation ---------------------------------------------------

TEST(LiveConfig, RejectsNonsensicalDetectionSettings) {
  SimConfig cfg{4};
  cfg.detect_threshold = 0;
  EXPECT_THROW(CubeNetwork{cfg}, std::invalid_argument);
  cfg.detect_threshold = 4;
  cfg.watchdog_cycles = 0;
  EXPECT_THROW(CubeNetwork{cfg}, std::invalid_argument);
  cfg.watchdog_cycles = 4096;
  cfg.max_retries = 2;  // below detect_threshold: detection could never fire
  EXPECT_THROW(CubeNetwork{cfg}, std::invalid_argument);
}

TEST(LiveConfig, RejectsWatchdogBelowRouteServiceTime) {
  SimConfig cfg{4};
  cfg.message_flits = 4;
  cfg.watchdog_cycles = 5;  // longest route below is 4 hops x 4 flits = 16
  CubeNetwork net(cfg);
  (void)net.add_message(CubePath{0, 1, 3, 7, 15});
  EXPECT_THROW((void)net.run_live(0, FaultSchedule{}),
               std::invalid_argument);
}

// --- run_live detection -----------------------------------------------------

TEST(RunLive, DrainsCleanlyWithoutFaults) {
  SimConfig cfg{3};
  CubeNetwork net(cfg);
  (void)net.add_message(CubePath{0, 1, 3});
  (void)net.add_message(CubePath{7, 6});
  const LiveEpochResult r = net.run_live(0, FaultSchedule{});
  EXPECT_TRUE(r.drained());
  EXPECT_FALSE(r.detected);
  EXPECT_FALSE(r.truncated);
  EXPECT_EQ(r.delivered, 2u);
  EXPECT_EQ(r.message_delivered, (std::vector<u8>{1, 1}));
}

TEST(RunLive, ConsecutiveFailuresDetectAnArrivedLinkFault) {
  // An 8-flit message starts streaming over 0->1 (first attempt at cycle
  // 1); the link dies mid-message at cycle 3. Attempts at cycles 3..6
  // fail, so the counter reaches detect_threshold=4 at cycle 6 and the
  // epoch pauses that same cycle.
  FaultSchedule schedule;
  schedule.add_link_failure(3, 0, 1);
  SimConfig cfg{3};
  cfg.detect_threshold = 4;
  cfg.message_flits = 8;
  CubeNetwork net(cfg);
  (void)net.add_message(CubePath{0, 1, 3});
  const LiveEpochResult r = net.run_live(0, schedule);
  ASSERT_TRUE(r.detected);
  ASSERT_EQ(r.detections.size(), 1u);
  EXPECT_EQ(r.detections[0].from, 0u);
  EXPECT_EQ(r.detections[0].to, 1u);
  EXPECT_EQ(r.detections[0].consecutive_failures, 4u);
  EXPECT_FALSE(r.detections[0].by_watchdog);
  EXPECT_EQ(r.detections[0].cycle, 3u + 4u - 1u);
  EXPECT_EQ(r.end_cycle, 3u + 4u - 1u);
  EXPECT_EQ(r.message_delivered, (std::vector<u8>{0}));
}

TEST(RunLive, NodeFaultMidRouteIsDetectedOnAnIncidentLink) {
  // Node 3 dies at cycle 2, after the flit already crossed 1->3 (cycle
  // 1): the stall shows up on the outgoing link 3->7 instead. Either
  // incident link is fine — what matters is that diagnosis maps the
  // suspected link back to the node death.
  FaultSchedule schedule;
  schedule.add_node_failure(2, 3);
  SimConfig cfg{3};
  CubeNetwork net(cfg);
  (void)net.add_message(CubePath{1, 3, 7});
  const LiveEpochResult r = net.run_live(0, schedule);
  ASSERT_TRUE(r.detected);
  EXPECT_TRUE(r.detections[0].from == 3u || r.detections[0].to == 3u);
  // Ground truth diagnoses the suspected link back to the node death.
  auto diag = schedule.diagnose(r.detections[0].from, r.detections[0].to,
                                r.end_cycle);
  ASSERT_TRUE(diag.has_value());
  EXPECT_TRUE(diag->is_node);
  EXPECT_EQ(diag->a, 3u);
}

TEST(RunLive, WatchdogPromotesAStallWhenCountersCannot) {
  // detect_threshold is set high, so the counter path stays silent; the
  // watchdog must flag the stuck hop after watchdog_cycles of no
  // progress.
  FaultSchedule schedule;
  schedule.add_link_failure(0, 0, 1);
  SimConfig cfg{3};
  cfg.detect_threshold = 50;
  cfg.max_retries = 1000;
  cfg.watchdog_cycles = 10;
  CubeNetwork net(cfg);
  (void)net.add_message(CubePath{0, 1, 3});
  const LiveEpochResult r = net.run_live(0, schedule);
  ASSERT_TRUE(r.detected);
  EXPECT_TRUE(r.detections[0].by_watchdog);
  EXPECT_EQ(r.detections[0].from, 0u);
  EXPECT_EQ(r.detections[0].to, 1u);
  EXPECT_EQ(r.detections[0].cycle, 10u);
}

TEST(RunLive, StartCycleOffsetsScheduleReplay) {
  // An event at cycle 5 is already in effect when the epoch starts at
  // cycle 8, even though nothing was detected before.
  FaultSchedule schedule;
  schedule.add_link_failure(5, 0, 1);
  SimConfig cfg{3};
  CubeNetwork net(cfg);
  (void)net.add_message(CubePath{0, 1});
  const LiveEpochResult r = net.run_live(8, schedule);
  ASSERT_TRUE(r.detected);
  EXPECT_EQ(r.detections[0].cycle, 8u + 4u);
}

// --- The epoch driver -------------------------------------------------------

TEST(LiveRun, CleanScheduleDeliversEverything) {
  const PlanResult base = plan_shape(Shape{3, 3, 3});
  const LiveRunResult r = run_stencil_with_recovery(
      base.embedding, FaultSchedule{}, full_options());
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.delivered, r.messages);
  EXPECT_EQ(r.failed, 0u);
  EXPECT_TRUE(r.log.empty());
  EXPECT_TRUE(r.report.fault_free);
}

TEST(LiveRun, EndToEndScenarioWithThreeArrivals) {
  // The acceptance scenario: a 3D mesh, >= 3 mid-run arrivals, every
  // message delivered-or-accounted, the final embedding certified against
  // every arrived fault, and any repair that stopped at rung (a) or (b)
  // within dilation d+1.
  const PlanResult base = plan_shape(Shape{4, 4, 4});
  ASSERT_TRUE(base.report.valid);
  const u32 d = base.report.dilation;

  FaultSchedule schedule;
  // A link fault (reroutable), then a node death, then another link cut.
  const CubeNode victim = base.embedding->map(21);
  schedule.add_link_failure(2, base.embedding->map(0),
                            base.embedding->map(0) ^ 1);
  schedule.add_node_failure(9, victim);
  schedule.add_link_failure(16, victim ^ 0x30, victim ^ 0x30 ^ 2);
  ASSERT_EQ(schedule.size(), 3u);

  LiveOptions opts = full_options();
  opts.sim.message_flits = 4;
  const LiveRunResult r =
      run_stencil_with_recovery(base.embedding, schedule, opts);

  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.delivered + r.failed, r.messages);
  EXPECT_EQ(r.failed, 0u);
  EXPECT_TRUE(r.report.valid);
  EXPECT_TRUE(r.report.fault_free);
  EXPECT_GE(r.log.size(), 1u);
  for (const RecoveryEpochLog& e : r.log) {
    EXPECT_LE(e.arrival_cycle, e.detect_cycle);
    if (e.rung == "reroute" || e.rung == "migrate") {
      EXPECT_LE(e.dilation, d + 1) << "rung " << e.rung;
    }
  }
  // Every scheduled fault is known to the final fault set.
  EXPECT_TRUE(r.faults.node_failed(victim));
  EXPECT_TRUE(r.faults.link_failed(base.embedding->map(0),
                                   base.embedding->map(0) ^ 1));
}

TEST(LiveRun, PersistentTransientIsQuarantined) {
  // No scheduled arrivals, but a heavy transient: suspects that the
  // schedule cannot explain must be quarantined as permanent links and
  // routed around, and the run still drains.
  const PlanResult base = plan_shape(Shape{3, 3, 3});
  FaultModel transient;
  transient.set_transient(0.8, 7);
  LiveOptions opts = full_options();
  opts.sim.faults = &transient;
  const LiveRunResult r =
      run_stencil_with_recovery(base.embedding, FaultSchedule{}, opts);
  EXPECT_EQ(r.delivered + r.failed, r.messages);
  bool quarantined = false;
  for (const RecoveryEpochLog& e : r.log)
    if (e.fault.find("quarantine") != std::string::npos) quarantined = true;
  EXPECT_TRUE(quarantined)
      << "a 0.8 drop rate must trip the consecutive-failure detector";
  // Quarantined links are conservative false positives: the final
  // embedding must still certify against the ground truth (no permanent
  // faults at all).
  EXPECT_TRUE(r.report.valid);
  EXPECT_TRUE(r.report.fault_free);
}

TEST(LiveRun, AuditSweepCatchesUndetectedArrival) {
  // A node death at the very end of the drain: no remaining traffic may
  // cross it, so detection can stay silent — the audit sweep must still
  // leave a certified final embedding.
  const PlanResult base = plan_shape(Shape{3, 3, 3});
  FaultSchedule schedule;
  schedule.add_node_failure(1, base.embedding->map(13));
  LiveOptions opts = full_options();
  opts.sim.message_flits = 1;
  const LiveRunResult r =
      run_stencil_with_recovery(base.embedding, schedule, opts);
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.report.fault_free);
  EXPECT_FALSE(r.log.empty());
}

// --- Determinism ------------------------------------------------------------

TEST(LiveDeterminism, IdenticalLogAndEmbeddingAtEveryThreadCount) {
  const ThreadOverrideGuard guard;
  const PlanResult base = plan_shape(Shape{3, 3, 7});
  const FaultSchedule schedule = FaultSchedule::random(
      base.embedding->host_dim(), 2, 2, 3, 7, 1234);

  std::string ref_log, ref_emb;
  for (const u32 threads : {1u, 2u, 8u}) {
    par::set_thread_override(threads);
    LiveOptions opts = full_options();
    opts.sim.message_flits = 4;
    const LiveRunResult r =
        run_stencil_with_recovery(base.embedding, schedule, opts);
    const std::string log = recovery_log_json(r);
    const std::string emb = io::to_text(*r.embedding);
    if (ref_log.empty()) {
      ref_log = log;
      ref_emb = emb;
      EXPECT_GE(r.log.size(), 2u) << "scenario should exercise repairs";
    } else {
      EXPECT_EQ(log, ref_log) << "RecoveryLog differs at " << threads
                              << " threads";
      EXPECT_EQ(emb, ref_emb) << "final embedding differs at " << threads
                              << " threads";
    }
  }
}

}  // namespace
}  // namespace hj::sim
