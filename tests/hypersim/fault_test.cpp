// Tests for the fault-tolerant stack: fault injection in hypersim, detour
// routing, and planner-level graceful degradation.
#include "hypersim/fault.hpp"

#include <gtest/gtest.h>

#include "core/direct.hpp"
#include "core/io.hpp"
#include "core/planner.hpp"
#include "core/product.hpp"
#include "core/router.hpp"
#include "core/verify.hpp"
#include "hypersim/network.hpp"
#include "manytoone/manytoone.hpp"

namespace hj::sim {
namespace {

// Materialize any embedding as an explicit one (the router mutates paths).
std::shared_ptr<ExplicitEmbedding> materialize(const Embedding& emb) {
  return io::from_text(io::to_text(emb));
}

// --- FaultSet / FaultModel basics -----------------------------------------

TEST(FaultSet, NodeAndLinkQueries) {
  FaultSet f;
  EXPECT_TRUE(f.empty());
  f.fail_node(5);
  f.fail_link(0, 1);
  EXPECT_TRUE(f.node_failed(5));
  EXPECT_FALSE(f.node_failed(4));
  EXPECT_TRUE(f.link_failed(0, 1));
  EXPECT_TRUE(f.link_failed(1, 0));
  // A dead node kills its links too.
  EXPECT_TRUE(f.link_failed(5, 4));
  EXPECT_FALSE(f.link_failed(2, 3));
  EXPECT_FALSE(f.path_avoids(CubePath{0, 1, 3}));
  EXPECT_FALSE(f.path_avoids(CubePath{4, 5}));
  EXPECT_TRUE(f.path_avoids(CubePath{2, 3, 7}));
  EXPECT_THROW(f.fail_link(0, 3), std::invalid_argument);
}

TEST(FaultModel, DropsAreDeterministicAndOrderFree) {
  FaultModel a, b;
  a.set_transient(0.1, 42);
  b.set_transient(0.1, 42);
  u64 drops = 0;
  // Query b in a different order than a: decisions must still agree,
  // because drops() is a pure function of (seed, cycle, link).
  for (u64 cycle = 0; cycle < 200; ++cycle)
    for (u64 link = 0; link < 24; ++link)
      if (a.drops(cycle, link)) ++drops;
  u64 drops_b = 0;
  for (u64 link = 24; link-- > 0;)
    for (u64 cycle = 200; cycle-- > 0;)
      if (b.drops(cycle, link)) ++drops_b;
  EXPECT_EQ(drops, drops_b);
  // Rate is in the right ballpark for p = 0.1 over 4800 trials.
  EXPECT_GT(drops, 4800 * 0.05);
  EXPECT_LT(drops, 4800 * 0.2);

  FaultModel c;
  c.set_transient(0.1, 43);
  u64 diff = 0;
  for (u64 cycle = 0; cycle < 200; ++cycle)
    for (u64 link = 0; link < 24; ++link)
      if (a.drops(cycle, link) != c.drops(cycle, link)) ++diff;
  EXPECT_GT(diff, 0u) << "different seeds should give different traces";

  EXPECT_THROW(c.set_transient(1.5, 0), std::invalid_argument);
  EXPECT_THROW(c.set_transient(-0.1, 0), std::invalid_argument);
}

TEST(FaultModel, ParseFaultSpec) {
  FaultModel m = parse_fault_spec("node=5,link=3-7,p=0.01,seed=42");
  EXPECT_TRUE(m.permanent().node_failed(5));
  EXPECT_TRUE(m.permanent().link_failed(3, 7));
  EXPECT_DOUBLE_EQ(m.drop_p(), 0.01);
  EXPECT_EQ(m.seed(), 42u);
  EXPECT_TRUE(m.has_transient());

  EXPECT_FALSE(parse_fault_spec("node=0").has_transient());
  EXPECT_THROW((void)parse_fault_spec("node="), std::invalid_argument);
  EXPECT_THROW((void)parse_fault_spec("link=3"), std::invalid_argument);
  EXPECT_THROW((void)parse_fault_spec("link=0-3"), std::invalid_argument);
  EXPECT_THROW((void)parse_fault_spec("p=2.0"), std::invalid_argument);
  EXPECT_THROW((void)parse_fault_spec("bogus=1"), std::invalid_argument);
}

// --- Simulator fault injection --------------------------------------------

TEST(SimFaults, CleanRunSetsCompleted) {
  CubeNetwork net(SimConfig{3});
  net.add_message(CubePath{0, 1, 3});
  SimResult r = net.run();
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.consistent());
  EXPECT_EQ(r.delivered, 1u);
  EXPECT_EQ(r.failed_messages, 0u);
  EXPECT_GT(r.slowdown_vs_bound, 0.0);
}

TEST(SimFaults, TruncatedRunReportsIncomplete) {
  SimConfig cfg{3};
  cfg.max_cycles = 2;  // the 3-hop message cannot finish
  CubeNetwork net(cfg);
  net.add_message(CubePath{0, 1, 3, 7});
  SimResult r = net.run();
  EXPECT_FALSE(r.completed);
  EXPECT_TRUE(r.consistent());  // in-flight message: delivered+failed < total
  EXPECT_EQ(r.cycles, 2u);
  EXPECT_EQ(r.delivered, 0u);
  EXPECT_DOUBLE_EQ(r.slowdown_vs_bound, 0.0);
}

TEST(SimFaults, PermanentLinkFaultFailsAffectedMessage) {
  FaultModel faults;
  faults.permanent().fail_link(0, 1);
  SimConfig cfg{3};
  cfg.faults = &faults;
  CubeNetwork net(cfg);
  net.add_message(CubePath{0, 1, 3});  // crosses the dead link
  net.add_message(CubePath{4, 6});     // healthy
  SimResult r = net.run();
  EXPECT_FALSE(r.completed);
  EXPECT_TRUE(r.consistent());
  EXPECT_EQ(r.failed_messages, 1u);
  EXPECT_EQ(r.delivered, 1u);
  // The doomed message is failed up front, not stalled to max_cycles.
  EXPECT_LT(r.cycles, 10u);
}

TEST(SimFaults, PermanentFaultCascadesToDependents) {
  FaultModel faults;
  faults.permanent().fail_node(1);
  SimConfig cfg{3};
  cfg.faults = &faults;
  CubeNetwork net(cfg);
  const u64 first = net.add_message(CubePath{0, 1});
  net.add_message(CubePath{2, 3}, static_cast<i64>(first));
  SimResult r = net.run();
  EXPECT_FALSE(r.completed);
  EXPECT_TRUE(r.consistent());
  EXPECT_EQ(r.failed_messages, 2u);
  EXPECT_EQ(r.delivered, 0u);
}

TEST(SimFaults, TransientDropsDelayButComplete) {
  const auto run_with = [](const FaultModel* faults) {
    SimConfig cfg{4};
    cfg.faults = faults;
    CubeNetwork net(cfg);
    for (CubeNode v = 0; v < 8; ++v)
      net.add_message(Hypercube::ecube_path(v, v ^ 15));
    return net.run();
  };
  const SimResult clean = run_with(nullptr);
  ASSERT_TRUE(clean.completed);

  FaultModel faults;
  faults.set_transient(0.05, 7);
  const SimResult faulty = run_with(&faults);
  EXPECT_TRUE(faulty.completed);
  EXPECT_TRUE(faulty.consistent());
  EXPECT_EQ(faulty.delivered, faulty.messages);
  EXPECT_GT(faulty.dropped_flits, 0u);
  EXPECT_GE(faulty.cycles, clean.cycles);
}

TEST(SimFaults, SameSeedSameResultDifferentSeedDiffers) {
  const auto run_seeded = [](u64 seed) {
    FaultModel faults;
    faults.set_transient(0.2, seed);
    SimConfig cfg{4};
    cfg.faults = &faults;
    CubeNetwork net(cfg);
    for (CubeNode v = 0; v < 16; ++v)
      net.add_message(Hypercube::ecube_path(v, v ^ 15));
    return net.run();
  };
  const SimResult a = run_seeded(11), b = run_seeded(11), c = run_seeded(12);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.dropped_flits, b.dropped_flits);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.failed_messages, b.failed_messages);
  EXPECT_TRUE(a.cycles != c.cycles || a.dropped_flits != c.dropped_flits)
      << "seed should change the fault trace";
}

TEST(SimFaults, RetryExhaustionFailsMessages) {
  FaultModel faults;
  faults.set_transient(0.9, 3);
  SimConfig cfg{4};
  cfg.faults = &faults;
  cfg.max_retries = 2;
  cfg.detect_threshold = 2;  // must not exceed max_retries
  CubeNetwork net(cfg);
  for (CubeNode v = 0; v < 16; ++v)
    net.add_message(Hypercube::ecube_path(v, v ^ 15));
  SimResult r = net.run();
  EXPECT_FALSE(r.completed);
  EXPECT_TRUE(r.consistent());
  EXPECT_GT(r.failed_messages, 0u);
  EXPECT_EQ(r.delivered + r.failed_messages, r.messages);
  EXPECT_LT(r.cycles, cfg.max_cycles);
}

// --- Detour routing --------------------------------------------------------

TEST(Detour, RoutesAroundFailedLinkOn3x3x3) {
  auto direct = direct_embedding(Shape{3, 3, 3});
  ASSERT_TRUE(direct.has_value());
  auto emb = materialize(**direct);
  ASSERT_EQ(emb->host_dim(), 5u);
  const VerifyReport before = verify(*emb);
  ASSERT_TRUE(before.valid);

  // Fail the first hop of some routed edge path.
  FaultSet faults;
  bool armed = false;
  emb->guest().for_each_edge([&](const MeshEdge& e) {
    if (armed) return;
    const CubePath p = emb->edge_path(e);
    if (p.size() >= 2) {
      faults.fail_link(p[0], p[1]);
      armed = true;
    }
  });
  ASSERT_TRUE(armed);
  ASSERT_FALSE(verify(*emb, faults).fault_free);

  const DetourStats stats = route_around_faults(*emb, faults);
  EXPECT_TRUE(stats.ok);
  EXPECT_GE(stats.detoured_edges, 1u);
  EXPECT_EQ(stats.unroutable_edges, 0u);
  EXPECT_LE(stats.max_added_dilation, 2u);

  const VerifyReport after = verify(*emb, faults);
  EXPECT_TRUE(after.valid);
  EXPECT_TRUE(after.fault_free);
  EXPECT_LE(after.dilation, before.dilation + 2);
}

TEST(Detour, DeadLinkBetweenHealthyNodes) {
  // A link-only fault: both endpoints stay alive, so the node map must be
  // untouched and only the crossing paths may change.
  auto emb = materialize(GrayEmbedding(Mesh(Shape{4, 4, 4})));
  const VerifyReport before = verify(*emb);
  ASSERT_TRUE(before.valid);
  const std::vector<CubeNode> map_before = emb->node_map();

  FaultSet faults;
  bool armed = false;
  emb->guest().for_each_edge([&](const MeshEdge& e) {
    if (armed) return;
    const CubePath p = emb->edge_path(e);
    if (p.size() == 2) {
      faults.fail_link(p[0], p[1]);
      armed = true;
    }
  });
  ASSERT_TRUE(armed);
  ASSERT_FALSE(verify(*emb, faults).fault_free);
  for (CubeNode v : map_before) ASSERT_FALSE(faults.node_failed(v));

  const DetourStats stats = route_around_faults(*emb, faults);
  EXPECT_TRUE(stats.ok);
  EXPECT_GE(stats.detoured_edges, 1u);
  EXPECT_EQ(stats.unroutable_edges, 0u);

  const VerifyReport after = verify(*emb, faults);
  EXPECT_TRUE(after.valid);
  EXPECT_TRUE(after.fault_free);
  EXPECT_LE(after.dilation, before.dilation + 2);
  EXPECT_EQ(emb->node_map(), map_before);
}

TEST(Detour, LinkFaultOnReflectedBoundaryEdge) {
  // 3x6 = (3x3) * (1x2): the outer axis has two inner copies, the second
  // reflected by phi~, and the copy-boundary edges (column 2 -> 3) are
  // carried by the outer embedding. Kill a link under one of those
  // boundary paths and detour around it.
  auto inner = std::make_shared<GrayEmbedding>(Mesh(Shape{3, 3}));
  auto outer = std::make_shared<GrayEmbedding>(Mesh(Shape{1, 2}));
  MeshProductEmbedding product(inner, outer);
  ASSERT_EQ(product.guest().shape(), (Shape{3, 6}));
  auto emb = materialize(product);
  const VerifyReport before = verify(*emb);
  ASSERT_TRUE(before.valid);

  // Find a copy-boundary edge: axis 1, columns 2 and 3 (distinct y_j of
  // the outer factor on either side).
  FaultSet faults;
  bool armed = false;
  emb->guest().for_each_edge([&](const MeshEdge& e) {
    if (armed || e.axis != 1) return;
    if (e.a % 6 != 2 || e.b % 6 != 3) return;
    const CubePath p = emb->edge_path(e);
    ASSERT_GE(p.size(), 2u);
    faults.fail_link(p[0], p[1]);
    armed = true;
  });
  ASSERT_TRUE(armed);
  ASSERT_FALSE(verify(*emb, faults).fault_free);

  const DetourStats stats = route_around_faults(*emb, faults);
  EXPECT_TRUE(stats.ok);
  EXPECT_GE(stats.detoured_edges, 1u);
  EXPECT_EQ(stats.unroutable_edges, 0u);

  const VerifyReport after = verify(*emb, faults);
  EXPECT_TRUE(after.valid);
  EXPECT_TRUE(after.fault_free);
  EXPECT_LE(after.dilation, before.dilation + 2);
}

TEST(Detour, ReportsFailedEndpointAsUnroutable) {
  auto direct = direct_embedding(Shape{3, 3, 3});
  ASSERT_TRUE(direct.has_value());
  auto emb = materialize(**direct);
  FaultSet faults;
  faults.fail_node(emb->map(0));  // no detour can save a dead endpoint
  const DetourStats stats = route_around_faults(*emb, faults);
  EXPECT_FALSE(stats.ok);
  EXPECT_GT(stats.unroutable_edges, 0u);
}

// --- Planner degradation ladder --------------------------------------------

TEST(PlanAvoiding, AnySingleFailedLinkOn3x3x7InQ6) {
  // Acceptance scenario: every single-link fault on the planner embedding
  // of 3x3x7 in the 6-cube must be absorbed (detour or remap), certified
  // fault-free, with <= 2 added dilation, and the stencil exchange must
  // deliver every message under simulation.
  Planner planner;
  const Shape shape{3, 3, 7};
  const PlanResult base = planner.plan(shape);
  ASSERT_EQ(base.embedding->host_dim(), 6u);

  for (CubeNode a = 0; a < 64; ++a) {
    for (u32 d = 0; d < 6; ++d) {
      const CubeNode b = a ^ (u64{1} << d);
      if (b < a) continue;
      FaultSet faults;
      faults.fail_link(a, b);
      const PlanResult r = planner.plan_avoiding(shape, faults);
      ASSERT_TRUE(r.report.valid) << "link " << a << "-" << b;
      ASSERT_TRUE(r.report.fault_free) << "link " << a << "-" << b;
      ASSERT_LE(r.report.dilation, base.report.dilation + 2)
          << "link " << a << "-" << b;

      FaultModel model{faults};
      SimConfig cfg{6};
      cfg.faults = &model;
      const SimResult sim = simulate_stencil(*r.embedding, cfg);
      ASSERT_TRUE(sim.completed) << "link " << a << "-" << b;
      ASSERT_EQ(sim.failed_messages, 0u) << "link " << a << "-" << b;
    }
  }
}

TEST(PlanAvoiding, FailedNodeRemapsIntoTheSpareAddress) {
  // 3x3x7 leaves exactly one of the 64 addresses unused: whichever node
  // dies, an XOR translation moves the hole onto it.
  Planner planner;
  const Shape shape{3, 3, 7};
  for (CubeNode dead = 0; dead < 64; ++dead) {
    FaultSet faults;
    faults.fail_node(dead);
    const PlanResult r = planner.plan_avoiding(shape, faults);
    ASSERT_TRUE(r.report.valid) << "node " << dead;
    ASSERT_TRUE(r.report.fault_free) << "node " << dead;
    ASSERT_EQ(r.report.load_factor, 1u) << "node " << dead;
  }
}

TEST(PlanAvoiding, EmptyFaultSetIsAPlainPlan) {
  Planner planner;
  const PlanResult r = planner.plan_avoiding(Shape{3, 3, 7}, FaultSet{});
  EXPECT_TRUE(r.report.valid);
  EXPECT_TRUE(r.report.fault_free);
}

TEST(PlanAvoiding, FullCubeFailedNodeDegradesToManyToOne) {
  // 4x4x4 fills Q6 exactly: no spare address, so a dead node forces the
  // last rung of the ladder — contraction into a healthy sub-cube.
  const Shape shape{4, 4, 4};
  FaultSet faults;
  faults.fail_node(0);

  Planner bare;
  EXPECT_THROW((void)bare.plan_avoiding(shape, faults),
               std::invalid_argument);

  Planner planner;
  planner.set_degrade_provider(m2o::make_degrade_provider());
  const PlanResult r = planner.plan_avoiding(shape, faults);
  EXPECT_TRUE(r.report.valid);
  EXPECT_TRUE(r.report.fault_free);
  EXPECT_GE(r.report.load_factor, 2u);
  EXPECT_NE(r.plan.find("degrade"), std::string::npos) << r.plan;

  FaultModel model{faults};
  SimConfig cfg{6};
  cfg.faults = &model;
  const SimResult sim = simulate_stencil(*r.embedding, cfg);
  EXPECT_TRUE(sim.completed);
}

TEST(PlanAvoiding, DegradedPlanSurvivesManyFailedNodes) {
  // Kill a whole half-cube corner's worth of nodes; the provider must find
  // a surviving sub-cube and contract into it.
  const Shape shape{4, 4, 4};
  FaultSet faults;
  for (CubeNode v = 0; v < 8; ++v) faults.fail_node(v ^ 21);
  Planner planner;
  planner.set_degrade_provider(m2o::make_degrade_provider());
  const PlanResult r = planner.plan_avoiding(shape, faults);
  EXPECT_TRUE(r.report.valid);
  EXPECT_TRUE(r.report.fault_free);
}

// --- SubcubeEmbedding ------------------------------------------------------

TEST(Subcube, PlacesBaseInsideFixedBits) {
  auto direct = direct_embedding(Shape{3, 3, 3});
  ASSERT_TRUE(direct.has_value());
  const m2o::SubcubeEmbedding sub(*direct, 6, /*mask=*/0x8, /*value=*/0x8);
  const VerifyReport r = verify(sub);
  EXPECT_TRUE(r.valid);
  for (MeshIndex i = 0; i < sub.guest().num_nodes(); ++i)
    EXPECT_EQ(sub.map(i) & 0x8u, 0x8u);
  EXPECT_THROW(m2o::SubcubeEmbedding(*direct, 6, 0x1, 0x2),
               std::invalid_argument);
  EXPECT_THROW(m2o::SubcubeEmbedding(*direct, 5, 0x1, 0x1),
               std::invalid_argument);  // base Q5 does not fit Q4 sub-cube
}

}  // namespace
}  // namespace hj::sim
