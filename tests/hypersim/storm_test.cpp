// Tests for the fault-storm engine: StormGenerator purity and the shape
// of each correlated failure model, the FaultSchedule duplicate-arrival
// guard, flapping-link determinism, the storm-aware watchdog and the
// quarantine LRU in the live driver, the Degraded verdict contract, and
// a seeded 50-storm repair sweep that must be idempotent-when-certified
// and bit-identical at every thread count.
#include "hypersim/storm.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <string>
#include <vector>

#include "core/io.hpp"
#include "core/parallel.hpp"
#include "core/recovery.hpp"
#include "hypersim/live.hpp"
#include "manytoone/manytoone.hpp"
#include "search/provider.hpp"

namespace hj::sim {
namespace {

// Restores the thread override even when an assertion fails mid-test.
struct ThreadOverrideGuard {
  ~ThreadOverrideGuard() { par::set_thread_override(0); }
};

PlanResult plan_shape(const Shape& shape) {
  Planner planner;
  planner.set_direct_provider(search::make_search_provider());
  return planner.plan(shape);
}

LiveOptions full_options() {
  LiveOptions opts;
  opts.recovery.direct_provider = search::make_search_provider();
  opts.recovery.degrade_provider = m2o::make_degrade_provider();
  return opts;
}

u32 dist(CubeNode a, CubeNode b) {
  return static_cast<u32>(std::popcount(a ^ b));
}

// --- StormGenerator ---------------------------------------------------------

TEST(StormGenerator, PureFunctionOfTheSpec) {
  StormSpec spec;
  spec.cube_dim = 7;
  spec.kind = StormKind::Mixed;
  spec.events = 40;
  spec.flapping_links = 3;
  spec.seed = 5;
  const Storm a = StormGenerator(spec).generate();
  const Storm b = StormGenerator(spec).generate();
  EXPECT_EQ(a.schedule.events(), b.schedule.events());
  ASSERT_EQ(a.flapping.size(), b.flapping.size());
  for (std::size_t i = 0; i < a.flapping.size(); ++i) {
    EXPECT_EQ(a.flapping[i].a, b.flapping[i].a);
    EXPECT_EQ(a.flapping[i].b, b.flapping[i].b);
    EXPECT_EQ(a.flapping[i].phase, b.flapping[i].phase);
  }
  EXPECT_EQ(a.stats.node_events, b.stats.node_events);
  EXPECT_EQ(a.stats.link_events, b.stats.link_events);
  EXPECT_EQ(a.stats.dropped_events, b.stats.dropped_events);
  EXPECT_EQ(a.stats.span_cycles, b.stats.span_cycles);

  spec.seed = 6;
  const Storm c = StormGenerator(spec).generate();
  EXPECT_NE(a.schedule.events(), c.schedule.events());
}

TEST(StormGenerator, ValidatesTheSpec) {
  StormSpec good;
  good.cube_dim = 6;
  (void)StormGenerator(good);  // baseline: must not throw

  const auto broken = [&](auto&& tweak) {
    StormSpec s = good;
    tweak(s);
    EXPECT_THROW((void)StormGenerator(s), std::invalid_argument);
  };
  broken([](StormSpec& s) { s.cube_dim = 0; });
  broken([](StormSpec& s) { s.cube_dim = 31; });
  broken([](StormSpec& s) { s.node_fraction = 1.5; });
  broken([](StormSpec& s) { s.burst_size = 0; });
  broken([](StormSpec& s) { s.regions = 0; });
  broken([](StormSpec& s) { s.region_radius = 0; });
  broken([](StormSpec& s) { s.region_radius = s.cube_dim + 1; });
  broken([](StormSpec& s) { s.cascade_p = -0.1; });
  broken([](StormSpec& s) { s.max_fail_fraction = 0.0; });
  broken([](StormSpec& s) {
    s.flapping_links = 1;
    s.flap_down = s.flap_period;  // down window swallows the period
  });
}

TEST(StormGenerator, RegionalEventsStayInsideOneHammingBall) {
  StormSpec spec;
  spec.cube_dim = 8;
  spec.kind = StormKind::Regional;
  spec.events = 30;
  spec.node_fraction = 0.5;
  spec.regions = 1;
  spec.region_radius = 2;
  spec.max_fail_fraction = 1.0;
  spec.seed = 7;
  const Storm storm = StormGenerator(spec).generate();
  ASSERT_GE(storm.schedule.size(), 20u);

  // With a single epicenter, every failure's primary address lies in one
  // Hamming ball of the region radius (link far ends one hop further).
  // The epicenter is internal, so search all of Q8 for a ball that
  // covers the storm.
  bool covered = false;
  for (CubeNode c = 0; c < 256 && !covered; ++c) {
    covered = std::all_of(
        storm.schedule.events().begin(), storm.schedule.events().end(),
        [&](const FaultEvent& e) {
          if (e.is_node) return dist(e.a, c) <= spec.region_radius;
          // Link endpoints are canonicalized (a < b), so either end may
          // be the in-ball one; the other is at most one hop further.
          const u32 da = dist(e.a, c), db = dist(e.b, c);
          return std::min(da, db) <= spec.region_radius &&
                 std::max(da, db) <= spec.region_radius + 1;
        });
  }
  EXPECT_TRUE(covered) << "regional storm not contained in any radius-2 ball";
}

TEST(StormGenerator, CascadingFailuresTouchPreviousVictims) {
  StormSpec spec;
  spec.cube_dim = 8;
  spec.kind = StormKind::Cascading;
  spec.events = 24;
  spec.node_fraction = 0.4;
  spec.cascade_p = 1.0;  // every failure must feed on an earlier victim
  spec.max_fail_fraction = 1.0;
  // One event per cycle so schedule order equals generation order.
  spec.burst_size = 1;
  spec.burst_spacing = 1;
  spec.intra_burst_spacing = 0;
  spec.seed = 11;
  const Storm storm = StormGenerator(spec).generate();
  ASSERT_GE(storm.schedule.size(), 10u);

  std::vector<CubeNode> victims;
  for (const FaultEvent& e : storm.schedule.events()) {
    if (!victims.empty()) {
      u32 best = ~u32{0};
      for (const CubeNode v : victims) best = std::min(best, dist(e.a, v));
      if (e.is_node)
        EXPECT_LE(best, 1u) << "cascading node death away from every victim";
      else
        EXPECT_EQ(best, 0u) << "cascading link cut away from every victim";
    }
    victims.push_back(e.a);
    if (!e.is_node) victims.push_back(e.b);
  }
}

TEST(StormGenerator, BurstyTimingFormsArrivalTrains) {
  StormSpec spec;
  spec.cube_dim = 6;
  spec.kind = StormKind::Bursty;
  spec.events = 8;
  spec.burst_size = 4;
  spec.first_cycle = 10;
  spec.burst_spacing = 100;
  spec.intra_burst_spacing = 3;
  spec.max_fail_fraction = 1.0;
  spec.seed = 3;
  const Storm storm = StormGenerator(spec).generate();
  ASSERT_EQ(storm.schedule.size(), 8u);
  EXPECT_EQ(storm.stats.dropped_events, 0u);
  const u64 expected[] = {10, 13, 16, 19, 110, 113, 116, 119};
  for (std::size_t i = 0; i < 8; ++i)
    EXPECT_EQ(storm.schedule.events()[i].cycle, expected[i]) << "event " << i;
  EXPECT_EQ(storm.stats.span_cycles, 109u);
}

TEST(StormGenerator, FailFractionCapDropsAndAccounts) {
  StormSpec spec;
  spec.cube_dim = 4;  // 16 nodes; cap 0.25 allows at most 4 dead
  spec.events = 500;
  spec.node_fraction = 1.0;  // every arrival wants to be a node death
  spec.max_fail_fraction = 0.25;
  spec.seed = 9;
  const Storm storm = StormGenerator(spec).generate();
  EXPECT_EQ(storm.stats.node_events, 4u);
  EXPECT_EQ(storm.stats.link_events, 0u);
  // Unplaceable events are dropped and counted, never silent.
  EXPECT_EQ(storm.stats.node_events + storm.stats.link_events +
                storm.stats.dropped_events,
            spec.events);
}

TEST(StormGenerator, FlappingLinksAreDistinctValidAndInstallable) {
  StormSpec spec;
  spec.cube_dim = 5;
  spec.events = 0;  // flapping only
  spec.flapping_links = 4;
  spec.flap_period = 16;
  spec.flap_down = 4;
  spec.seed = 2;
  const Storm storm = StormGenerator(spec).generate();
  EXPECT_TRUE(storm.schedule.empty());
  ASSERT_EQ(storm.flapping.size(), 4u);
  std::vector<u64> keys;
  for (const FlapSpec& f : storm.flapping) {
    EXPECT_TRUE(Hypercube::adjacent(f.a, f.b));
    EXPECT_LT(f.a, f.b);
    EXPECT_EQ(f.period, 16u);
    EXPECT_EQ(f.down, 4u);
    EXPECT_LT(f.phase, f.period);
    keys.push_back(Hypercube::edge_key(f.a, f.b));
  }
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(std::adjacent_find(keys.begin(), keys.end()), keys.end())
      << "flapping links must be distinct";

  FaultModel model;
  storm.install_flapping(model);
  EXPECT_EQ(model.num_flapping(), 4u);
}

TEST(StormSpecParse, RoundTripAndErrors) {
  const StormSpec s = parse_storm_spec(
      "kind=cascading,events=7,seed=11,node_frac=0.5,first=9,burst=3,"
      "spacing=50,gap=2,regions=2,radius=3,cascade_p=0.25,cap=0.5,"
      "flap=2,flap_period=20,flap_down=5",
      6);
  EXPECT_EQ(s.cube_dim, 6u);
  EXPECT_EQ(s.kind, StormKind::Cascading);
  EXPECT_EQ(s.events, 7u);
  EXPECT_EQ(s.seed, 11u);
  EXPECT_DOUBLE_EQ(s.node_fraction, 0.5);
  EXPECT_EQ(s.first_cycle, 9u);
  EXPECT_EQ(s.burst_size, 3u);
  EXPECT_EQ(s.burst_spacing, 50u);
  EXPECT_EQ(s.intra_burst_spacing, 2u);
  EXPECT_EQ(s.regions, 2u);
  EXPECT_EQ(s.region_radius, 3u);
  EXPECT_DOUBLE_EQ(s.cascade_p, 0.25);
  EXPECT_DOUBLE_EQ(s.max_fail_fraction, 0.5);
  EXPECT_EQ(s.flapping_links, 2u);
  EXPECT_EQ(s.flap_period, 20u);
  EXPECT_EQ(s.flap_down, 5u);

  // Unset keys keep their defaults.
  const StormSpec d = parse_storm_spec("events=3", 4);
  EXPECT_EQ(d.cube_dim, 4u);
  EXPECT_EQ(d.kind, StormKind::Regional);
  EXPECT_EQ(d.events, 3u);
  EXPECT_EQ(d.burst_size, StormSpec{}.burst_size);

  EXPECT_THROW((void)parse_storm_spec("bogus=1", 4), std::invalid_argument);
  EXPECT_THROW((void)parse_storm_spec("events=abc", 4),
               std::invalid_argument);
  EXPECT_THROW((void)parse_storm_spec("kind=tornado", 4),
               std::invalid_argument);
  EXPECT_THROW((void)parse_storm_spec("events", 4), std::invalid_argument);
}

// --- FaultSchedule duplicate-arrival guard ----------------------------------

TEST(FaultScheduleStorm, RejectsDuplicateArrivals) {
  FaultSchedule s;
  s.add_node_failure(5, 3);
  // Hardware dies at most once — a second arrival for the same node, at
  // any cycle, is a schedule bug.
  EXPECT_THROW(s.add_node_failure(9, 3), std::invalid_argument);
  s.add_link_failure(5, 0, 1);
  EXPECT_THROW(s.add_link_failure(7, 0, 1), std::invalid_argument);
  // Links are canonicalized, so the reversed duplicate is caught too.
  EXPECT_THROW(s.add_link_failure(7, 1, 0), std::invalid_argument);
  s.add_link_failure(7, 1, 3);  // distinct hardware is fine
  EXPECT_EQ(s.size(), 3u);

  // The guard also covers the file-parse path.
  EXPECT_THROW((void)FaultSchedule::parse("1 node 2\n3 node 2\n"),
               std::invalid_argument);
}

// --- Flapping links ---------------------------------------------------------

TEST(FlapModel, DeterministicDutyCycle) {
  FaultModel m;
  m.add_flapping(FlapSpec{0, 1, /*period=*/8, /*down=*/3, /*phase=*/2});
  for (u64 cycle = 0; cycle < 24; ++cycle) {
    const bool expect_down = (cycle + 2) % 8 < 3;
    EXPECT_EQ(m.flapping_down(cycle, 0, 1), expect_down) << "cycle " << cycle;
    EXPECT_EQ(m.flapping_down(cycle, 1, 0), expect_down) << "cycle " << cycle;
    EXPECT_FALSE(m.flapping_down(cycle, 2, 3));  // unregistered link
  }
  EXPECT_THROW(m.add_flapping(FlapSpec{0, 3, 8, 3, 0}),
               std::invalid_argument);  // not a cube link
  EXPECT_THROW(m.add_flapping(FlapSpec{0, 1, 8, 8, 0}),
               std::invalid_argument);  // down window swallows the period
}

// --- Storm-aware watchdog ---------------------------------------------------

TEST(RunLiveStorm, WatchdogDefersCongestionStalls) {
  // Three 8-flit messages contend for the single link 0->1 on a healthy
  // cube: the losers make no progress for >= watchdog_cycles, but every
  // stall cycle is bandwidth blocking, not a transmission failure — the
  // watchdog must defer ("saturated, not dead") instead of promoting a
  // healthy link to suspect, and the run must still drain.
  SimConfig cfg{3};
  cfg.message_flits = 8;
  cfg.watchdog_cycles = 8;
  CubeNetwork net(cfg);
  (void)net.add_message(CubePath{0, 1});
  (void)net.add_message(CubePath{0, 1});
  (void)net.add_message(CubePath{0, 1});
  const LiveEpochResult r = net.run_live(0, FaultSchedule{});
  EXPECT_TRUE(r.drained());
  EXPECT_FALSE(r.detected);
  EXPECT_EQ(r.delivered, 3u);
  EXPECT_GE(r.deferred_watchdogs, 1u);
}

// --- Quarantine LRU ---------------------------------------------------------

TEST(LiveStorm, QuarantineLruEvictsAtCapacityAndStillCertifies) {
  // A heavy persistent transient trips detection on many distinct links;
  // with capacity 1 every new quarantine evicts (heals) the previous
  // one. The ground truth is fault-free, so the run must still end
  // certified: evicted links really were healthy.
  const PlanResult base = plan_shape(Shape{3, 3, 3});
  FaultModel transient;
  transient.set_transient(0.8, 7);
  LiveOptions opts = full_options();
  opts.sim.faults = &transient;
  opts.quarantine_capacity = 1;
  const LiveRunResult r =
      run_stencil_with_recovery(base.embedding, FaultSchedule{}, opts);
  EXPECT_EQ(r.delivered + r.failed, r.messages);
  EXPECT_GE(r.quarantined, 2u);
  EXPECT_GE(r.quarantine_evictions, 1u);
  EXPECT_TRUE(r.report.valid);
  EXPECT_TRUE(r.report.fault_free);
}

// --- The Degraded verdict ---------------------------------------------------

TEST(LiveStorm, DegradedVerdictCarriesWitness) {
  // 2x2x2 fills Q3 exactly; a node death leaves 8 guests and 7 healthy
  // hosts. Without a degrade provider no contraction can save the run:
  // the controller must produce the pigeonhole witness and the driver
  // must end Degraded — a valid partial embedding plus the lower-bound
  // evidence — rather than thrash the ladder.
  const PlanResult base = plan_shape(Shape{2, 2, 2});
  ASSERT_TRUE(base.report.valid);
  FaultSchedule schedule;
  schedule.add_node_failure(1, base.embedding->map(0));
  LiveOptions opts;
  opts.recovery.direct_provider = search::make_search_provider();
  opts.sim.message_flits = 4;
  const LiveRunResult r =
      run_stencil_with_recovery(base.embedding, schedule, opts);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.verdict, Verdict::Degraded);
  EXPECT_TRUE(r.report.valid);
  EXPECT_FALSE(r.witness.empty());
  EXPECT_EQ(r.delivered + r.failed, r.messages);
  // The JSON log carries the verdict contract for downstream tools.
  const std::string json = recovery_log_json(r);
  EXPECT_NE(json.find("\"verdict\": \"degraded\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"witness\""), std::string::npos) << json;
}

TEST(LiveStorm, VerdictNamesAreStable) {
  EXPECT_STREQ(verdict_name(Verdict::Certified), "certified");
  EXPECT_STREQ(verdict_name(Verdict::Degraded), "degraded");
  EXPECT_STREQ(verdict_name(Verdict::Failed), "failed");
}

// --- Seeded 50-storm repair sweep -------------------------------------------

TEST(StormDeterminism, RepairSweepIdempotentAndIdenticalAtEveryThreadCount) {
  // For 50 seeded storms, feed the arrivals one at a time into a
  // RecoveryController (as the live driver does, one start_epoch per
  // arrival). Whenever a repair certifies, repairing the already-repaired
  // embedding against the same fault set must be a no-op (idempotence);
  // and the full transcript of outcomes — rungs, descs, embeddings —
  // must be bit-identical at HJ_THREADS 1, 2 and 8.
  const ThreadOverrideGuard guard;
  std::string ref_digest;
  for (const u32 threads : {1u, 2u, 8u}) {
    par::set_thread_override(threads);
    const PlanResult base = plan_shape(Shape{3, 3, 3});
    const u32 host_dim = base.embedding->host_dim();
    const u32 inner = recovery::inner_factor_dim(*base.embedding);
    std::string digest;
    for (u64 seed = 1; seed <= 50; ++seed) {
      StormSpec spec;
      spec.cube_dim = host_dim;
      spec.kind = seed % 2 == 0 ? StormKind::Regional : StormKind::Cascading;
      spec.events = 6;
      spec.node_fraction = 0.3;
      spec.seed = seed;
      const Storm storm = StormGenerator(spec).generate();

      recovery::RecoveryOptions ropts;
      ropts.direct_provider = search::make_search_provider();
      ropts.degrade_provider = m2o::make_degrade_provider();
      recovery::RecoveryController controller(Shape{3, 3, 3}, ropts);
      EmbeddingPtr current = base.embedding;
      FaultSet faults;
      digest += "storm " + std::to_string(seed) + "\n";
      for (const FaultEvent& e : storm.schedule.events()) {
        if (e.is_node)
          faults.fail_node(e.a);
        else
          faults.fail_link(e.a, e.b);
        controller.start_epoch();
        const recovery::RepairResult repair = controller.repair(
            *current, faults, base.report.dilation, inner);
        digest += e.to_string() + " -> ";
        if (!repair.ok) {
          digest += "fail(" + repair.desc + ")\n";
          continue;  // accumulate more damage against the old embedding
        }
        digest += repair.desc + "\n" + io::to_text(*repair.embedding);
        // Idempotence: a certified embedding needs no further repair.
        const recovery::RepairResult again = controller.repair(
            *repair.embedding, faults, base.report.dilation, inner);
        ASSERT_TRUE(again.ok) << "re-repair of a certified embedding failed";
        EXPECT_EQ(again.moved_nodes, 0u);
        EXPECT_EQ(again.migration_cost, 0u);
        EXPECT_EQ(io::to_text(*again.embedding),
                  io::to_text(*repair.embedding))
            << "repair of an already-certified embedding changed it";
        current = repair.embedding;
      }
    }
    if (ref_digest.empty()) {
      ref_digest = digest;
      EXPECT_NE(digest.find("migrate"), std::string::npos)
          << "sweep should exercise the migrate rung";
    } else {
      EXPECT_EQ(digest, ref_digest)
          << "repair transcript differs at " << threads << " threads";
    }
  }
}

}  // namespace
}  // namespace hj::sim
