// Tests for the collective-communication schedules.
#include "hypersim/collectives.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/direct.hpp"
#include "torus/torus.hpp"

namespace hj::sim {
namespace {

TEST(BinomialBroadcast, ReachesEveryNodeExactlyOnce) {
  const u32 n = 4;
  Schedule s = binomial_broadcast(n, 5);
  EXPECT_EQ(s.size(), 15u);  // 2^n - 1 deliveries
  std::set<CubeNode> reached{5};
  for (const auto& m : s) {
    EXPECT_EQ(m.route.size(), 2u);  // single hops
    EXPECT_TRUE(reached.count(m.route.front())) << "send before receive";
    EXPECT_TRUE(reached.insert(m.route.back()).second);
  }
  EXPECT_EQ(reached.size(), 16u);
}

TEST(BinomialBroadcast, CompletesInDimRounds) {
  for (u32 n : {2u, 4u, 6u}) {
    SimResult r = run_schedule(binomial_broadcast(n, 0), SimConfig{n});
    EXPECT_EQ(r.cycles, n) << "n=" << n;
  }
}

TEST(BinomialBroadcast, StoreAndForwardScalesWithFlits) {
  SimResult r = run_schedule(
      binomial_broadcast(4, 0),
      SimConfig{4, 1, 1'000'000, Switching::StoreAndForward, 8});
  EXPECT_EQ(r.cycles, 4u * 8u);
}

TEST(MeshFlood, CompletesInEccentricityOnGray) {
  // On a dilation-1 embedding the flood takes exactly the mesh
  // eccentricity of the root (no contention: each edge used once).
  GrayEmbedding emb{Mesh(Shape{4, 4})};
  SimResult r = run_schedule(mesh_flood_broadcast(emb, 0),
                             SimConfig{emb.host_dim()});
  EXPECT_EQ(r.cycles, 6u);  // corner-to-corner manhattan distance
  EXPECT_EQ(r.messages, 15u);
}

TEST(MeshFlood, CenterRootIsFaster) {
  GrayEmbedding emb{Mesh(Shape{4, 4})};
  const MeshIndex center = emb.guest().shape().index(Coord{2, 2});
  SimResult corner = run_schedule(mesh_flood_broadcast(emb, 0),
                                  SimConfig{emb.host_dim()});
  SimResult mid = run_schedule(mesh_flood_broadcast(emb, center),
                               SimConfig{emb.host_dim()});
  EXPECT_LT(mid.cycles, corner.cycles);
}

TEST(MeshFlood, WorksOnDilationTwoEmbeddings) {
  auto emb = direct_embedding(Shape{7, 9});
  ASSERT_TRUE(emb.has_value());
  SimResult r = run_schedule(mesh_flood_broadcast(**emb, 0),
                             SimConfig{(*emb)->host_dim()});
  EXPECT_EQ(r.messages, 62u);
  // Eccentricity 14 <= cycles <= 2 * 14 (dilation 2 paths, no contention
  // beats that comfortably).
  EXPECT_GE(r.cycles, 14u);
  EXPECT_LE(r.cycles, 28u);
}

TEST(MeshFlood, WrapEdgesShortenTorusFloods) {
  torus::TorusPlanner planner;
  PlanResult torus = planner.plan(Shape{8, 8});
  GrayEmbedding open_mesh{Mesh(Shape{8, 8})};
  SimResult wrapped = run_schedule(mesh_flood_broadcast(*torus.embedding, 0),
                                   SimConfig{torus.embedding->host_dim()});
  SimResult open = run_schedule(mesh_flood_broadcast(open_mesh, 0),
                                SimConfig{open_mesh.host_dim()});
  EXPECT_LT(wrapped.cycles, open.cycles);  // radius 8 vs eccentricity 14
}

TEST(Collectives, BinomialBeatsMeshFlood) {
  // The point of the comparison: native cube broadcast needs ceil(log2 N)
  // rounds; the mesh abstraction pays the mesh diameter.
  GrayEmbedding emb{Mesh(Shape{8, 8})};
  SimResult flood = run_schedule(mesh_flood_broadcast(emb, 0),
                                 SimConfig{emb.host_dim()});
  SimResult binom = run_schedule(binomial_broadcast(emb.host_dim(), 0),
                                 SimConfig{emb.host_dim()});
  EXPECT_EQ(binom.cycles, 6u);
  EXPECT_EQ(flood.cycles, 14u);
}

TEST(Collectives, DependencyValidation) {
  CubeNetwork net(SimConfig{2});
  EXPECT_THROW((void)net.add_message(CubePath{0, 1}, 5),
               std::invalid_argument);
  const u64 first = net.add_message(CubePath{0, 1});
  (void)net.add_message(CubePath{1, 3}, static_cast<i64>(first));
  SimResult r = net.run();
  EXPECT_EQ(r.cycles, 2u);  // strictly sequential
}

}  // namespace
}  // namespace hj::sim
