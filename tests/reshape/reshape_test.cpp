// Tests for the reshaping techniques (Section 3.2) and Lemma 2.
#include "reshape/reshape.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/verify.hpp"

namespace hj::reshape {
namespace {

TEST(Folding, MapIsInjectiveAndInRange) {
  FoldingMap f(Shape{10, 3}, 4);
  EXPECT_EQ(f.host().shape(), (Shape{4, 9}));  // 3 segments
  std::set<MeshIndex> images;
  for (MeshIndex i = 0; i < f.guest().num_nodes(); ++i) {
    const MeshIndex m = f.map(i);
    EXPECT_LT(m, f.host().num_nodes());
    EXPECT_TRUE(images.insert(m).second);
  }
}

TEST(Folding, DilationEqualsSegmentCount) {
  // Two segments -> horizontal stride 2 -> mesh dilation 2 (the paper's
  // "folding yields dilation two").
  FoldingMap two(Shape{8, 5}, 4);
  EXPECT_EQ(two.dilation(), 2u);
  FoldingMap three(Shape{12, 5}, 4);
  EXPECT_EQ(three.dilation(), 3u);
}

TEST(Folding, FoldLineStaysAdjacent) {
  // Vertical edges crossing a segment boundary must cost one step thanks
  // to the reflection.
  FoldingMap f(Shape{8, 2}, 4);
  const Shape& gs = f.guest().shape();
  const MeshIndex a = gs.index(Coord{3, 0});  // last row of segment 0
  const MeshIndex b = gs.index(Coord{4, 0});  // first row of segment 1
  EXPECT_EQ(f.path(MeshEdge{a, b, 0, false}).size(), 2u);
}

TEST(Folding, ComposedWithGrayKeepsDilation) {
  // Lemma 2: mesh dilation 2 x cube dilation 1 = cube dilation <= 2.
  EmbeddingPtr emb = fold_and_gray(Shape{5, 5}, 2);
  VerifyReport r = verify(*emb);
  EXPECT_TRUE(r.valid) << (r.errors.empty() ? "" : r.errors[0]);
  EXPECT_EQ(r.dilation, 2u);
  // Folding is wasteful: 5x5 -> 4x10 -> Q6, twice the minimal Q5. (The
  // planner reaches Q5 for 5x5; folding cannot.)
  EXPECT_FALSE(r.minimal_expansion);
  EXPECT_EQ(r.host_dim, 6u);
}

TEST(Folding, SingleSegmentIsIdentityLike) {
  FoldingMap f(Shape{4, 5}, 4);
  EXPECT_EQ(f.dilation(), 1u);
}

TEST(Snake, PacksTightlyIntoMinimalArea) {
  // 5x3 into 4x4: uses 15 of 16 cells; any host with enough cells works.
  SnakeMap s(Shape{5, 3}, Shape{4, 4});
  std::set<MeshIndex> images;
  for (MeshIndex i = 0; i < 15; ++i)
    EXPECT_TRUE(images.insert(s.map(i)).second);
}

TEST(Snake, VerticalEdgesAreCheapHorizontalDegrade) {
  // The naive line compression keeps guest-column edges at mesh distance
  // one but lets cross-column edges blow up — the measured reason the
  // paper needs modified line compression [4].
  SnakeMap s(Shape{8, 8}, Shape{4, 16});
  u32 max_col_edge = 0, max_row_edge = 0;
  s.guest().for_each_edge([&](const MeshEdge& e) {
    const u32 d = static_cast<u32>(s.path(e).size() - 1);
    if (e.axis == 0)
      max_col_edge = std::max(max_col_edge, d);
    else
      max_row_edge = std::max(max_row_edge, d);
  });
  EXPECT_EQ(max_col_edge, 1u);
  EXPECT_GT(max_row_edge, 2u);
}

TEST(Snake, RejectsTooSmallHost) {
  EXPECT_THROW(SnakeMap(Shape{5, 5}, Shape{4, 6}), std::invalid_argument);
}

TEST(Composed, PathsAreContiguousCubeWalks) {
  EmbeddingPtr emb = fold_and_gray(Shape{7, 3}, 2);
  VerifyReport r = verify(*emb);
  EXPECT_TRUE(r.valid) << (r.errors.empty() ? "" : r.errors[0]);
}

TEST(Composed, RejectsMismatchedShapes) {
  auto fold = std::make_shared<FoldingMap>(Shape{8, 5}, 4);
  auto gray = std::make_shared<GrayEmbedding>(Mesh(Shape{4, 4}));
  EXPECT_THROW(ComposedEmbedding(fold, gray), std::invalid_argument);
}

TEST(Composed, DilationBoundIsSumAlongPath) {
  // Lemma 2 upper bound: cube dilation of an edge <= sum over its mesh
  // path of the inner dilations. With a Gray inner embedding the bound is
  // exactly the mesh path length.
  auto fold = std::make_shared<FoldingMap>(Shape{12, 5}, 4);
  auto gray = std::make_shared<GrayEmbedding>(fold->host());
  ComposedEmbedding emb(fold, gray);
  emb.guest().for_each_edge([&](const MeshEdge& e) {
    EXPECT_LE(emb.edge_path(e).size(), fold->path(e).size());
  });
}

}  // namespace
}  // namespace hj::reshape
