// Tests for the many-to-one embeddings (Section 7).
#include "manytoone/manytoone.hpp"

#include <gtest/gtest.h>

#include "core/product.hpp"

namespace hj::m2o {
namespace {

EmbeddingPtr gray_of(Shape s) {
  return std::make_shared<GrayEmbedding>(Mesh(std::move(s)));
}

TEST(Contraction, LoadFactorIsProductOfFactors) {
  // Lemma 5 with f = 1: contract a 12x6 mesh onto a 4x3 Gray embedding
  // with factors 3x2 -> load factor 6.
  ContractionEmbedding emb(gray_of(Shape{4, 3}), Shape{3, 2});
  EXPECT_EQ(emb.guest().shape(), (Shape{12, 6}));
  VerifyReport r = verify(emb);
  EXPECT_TRUE(r.valid);
  EXPECT_EQ(r.load_factor, 6u);
  EXPECT_EQ(r.dilation, 1u);  // dilation of the base is preserved
}

TEST(Contraction, IntraBlockEdgesCollapse) {
  ContractionEmbedding emb(gray_of(Shape{4}), Shape{3});
  // Guest is a 12-line; edges within a block of 3 have zero-length paths.
  const CubePath p = emb.edge_path(MeshEdge{0, 1, 0, false});
  EXPECT_EQ(p.size(), 1u);
  // Block-boundary edge (2,3) rides the base edge.
  const CubePath q = emb.edge_path(MeshEdge{2, 3, 0, false});
  EXPECT_EQ(q.size(), 2u);
}

TEST(Contraction, CongestionMatchesLemma5Bound) {
  // Base: Gray 4x4 (congestion 1 per axis). Factors 3x2: congestion bound
  // on axis 1 edges: c1 * (3*2)/3 = 2; axis 2: 1 * 6/2 = 3. Overall <= 3.
  ContractionEmbedding emb(gray_of(Shape{4, 4}), Shape{3, 2});
  VerifyReport r = verify(emb);
  EXPECT_TRUE(r.valid);
  EXPECT_LE(r.congestion, 3u);
  EXPECT_EQ(r.load_factor, 6u);
}

TEST(Contraction, TheoremFourProductOfManyToOne) {
  // Product of two many-to-one embeddings: load factors multiply,
  // dilation is the max (Theorem 4).
  auto f1 = std::make_shared<ContractionEmbedding>(gray_of(Shape{2}),
                                                   Shape{3});  // load 3
  auto f2 = std::make_shared<ContractionEmbedding>(gray_of(Shape{4}),
                                                   Shape{2});  // load 2
  MeshProductEmbedding prod(f1, f2);
  EXPECT_FALSE(prod.one_to_one());
  EXPECT_EQ(prod.guest().shape(), (Shape{48}));
  VerifyReport r = verify(prod);
  EXPECT_TRUE(r.valid);
  EXPECT_EQ(r.load_factor, 6u);
  EXPECT_LE(r.dilation, 1u);
  // Theorem 4's congestion bound: c <= max(f1*c2, f2*c1) = max(3*1, 2*1).
  EXPECT_LE(r.congestion, 3u);
}

TEST(Fold, QuotientsHighBits) {
  auto base = gray_of(Shape{4, 4});  // Q4
  CubeFoldEmbedding folded(base, 2);
  EXPECT_EQ(folded.host_dim(), 2u);
  VerifyReport r = verify(folded);
  EXPECT_TRUE(r.valid);
  EXPECT_EQ(r.load_factor, 4u);  // 16 nodes onto 4
  EXPECT_LE(r.dilation, 1u);     // folding never lengthens a path
}

TEST(Fold, FullFoldCollapsesEverything) {
  CubeFoldEmbedding folded(gray_of(Shape{4, 4}), 0);
  VerifyReport r = verify(folded);
  EXPECT_TRUE(r.valid);
  EXPECT_EQ(r.load_factor, 16u);
  EXPECT_EQ(r.dilation, 0u);
}

TEST(Fold, RejectsEnlarging) {
  EXPECT_THROW(CubeFoldEmbedding(gray_of(Shape{4}), 5),
               std::invalid_argument);
}

TEST(GrayContraction, Corollary4Properties) {
  // An l_i 2^n_i mesh into the (sum n_i)-cube: dilation one, congestion
  // <= prod(l_i) / min(l_i), optimal load factor.
  const Shape counts{3, 5};
  const Shape pows{4, 2};
  EmbeddingPtr emb = gray_contraction(counts, pows);
  EXPECT_EQ(emb->guest().shape(), (Shape{12, 10}));
  EXPECT_EQ(emb->host_dim(), 3u);
  VerifyReport r = verify(*emb);
  EXPECT_TRUE(r.valid);
  EXPECT_EQ(r.dilation, 1u);
  EXPECT_EQ(r.load_factor, 15u);  // optimal: 120 nodes on 8 processors
  EXPECT_LE(r.congestion, 15u / 3u);
}

TEST(GrayContraction, RejectsNonPow2) {
  EXPECT_THROW(gray_contraction(Shape{3}, Shape{6}), std::invalid_argument);
}

TEST(ContractToCube, Paper19x19Example) {
  // Section 7's worked example: a 19x19 mesh into a 5-cube with dilation
  // one; load factor 15 via 24x20 = (3*2^3) x (5*2^2); optimal is
  // ceil(361/32) = 12.
  ContractPlan plan = contract_to_cube(Shape{19, 19}, 5);
  EXPECT_TRUE(plan.report.valid) << plan.plan;
  EXPECT_EQ(plan.report.host_dim, 5u);
  EXPECT_LE(plan.report.dilation, 1u);
  EXPECT_EQ(plan.report.load_factor, 15u) << plan.plan;
  EXPECT_EQ(plan.optimal_load, 12u);
  // Within a factor of two of optimal (Corollary 5).
  EXPECT_LE(plan.report.load_factor, 2 * plan.optimal_load);
}

TEST(ContractToCube, ExactWhenMeshMatchesCube) {
  ContractPlan plan = contract_to_cube(Shape{8, 4}, 5);
  EXPECT_EQ(plan.report.load_factor, 1u);
  EXPECT_EQ(plan.optimal_load, 1u);
  EXPECT_EQ(plan.report.dilation, 1u);
}

TEST(ContractToCube, FoldPathAlsoWorks) {
  // Request a smaller cube than the natural Gray fit: folding kicks in.
  ContractPlan plan = contract_to_cube(Shape{8, 8}, 4);
  EXPECT_TRUE(plan.report.valid) << plan.plan;
  EXPECT_EQ(plan.report.host_dim, 4u);
  EXPECT_EQ(plan.report.load_factor, 4u);
  EXPECT_EQ(plan.optimal_load, 4u);
  EXPECT_LE(plan.report.dilation, 1u);
}

class ContractSweep
    : public ::testing::TestWithParam<std::tuple<Shape, u32>> {};

TEST_P(ContractSweep, WithinTwoOfOptimalAndDilationOne) {
  const auto& [shape, n] = GetParam();
  ContractPlan plan = contract_to_cube(shape, n);
  EXPECT_TRUE(plan.report.valid) << plan.plan;
  EXPECT_LE(plan.report.dilation, 1u) << plan.plan;
  EXPECT_EQ(plan.report.host_dim, n);
  EXPECT_GE(plan.report.load_factor, plan.optimal_load);
  // Corollary 5's factor-of-two guarantee applies exactly when its
  // arithmetic condition holds (e.g. 9x9x9 into Q6 fails the condition
  // and lands at 25 vs optimal 12 — the paper promises nothing there).
  if (corollary5_condition(shape, n)) {
    EXPECT_LE(plan.report.load_factor, 2 * plan.optimal_load) << plan.plan;
  }
}

TEST(ContractToCube, Corollary5ConditionExamples) {
  EXPECT_TRUE(corollary5_condition(Shape{19, 19}, 5));  // 24x20, paper
  EXPECT_FALSE(corollary5_condition(Shape{9, 9, 9}, 6));
  EXPECT_TRUE(corollary5_condition(Shape{8, 4}, 5));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ContractSweep,
    ::testing::Values(std::tuple{Shape{19, 19}, 5u}, std::tuple{Shape{7}, 2u},
                      std::tuple{Shape{100}, 4u},
                      std::tuple{Shape{9, 9, 9}, 6u},
                      std::tuple{Shape{33, 65}, 8u},
                      std::tuple{Shape{5, 6, 7}, 4u},
                      std::tuple{Shape{127, 3}, 7u}));

}  // namespace
}  // namespace hj::m2o
