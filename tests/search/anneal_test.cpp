// Tests for the simulated-annealing embedding searcher.
#include "search/anneal.hpp"

#include <gtest/gtest.h>

#include "core/verify.hpp"

namespace hj::search {
namespace {

TEST(Anneal, FindsEasyDilationTwo) {
  AnnealOptions o;
  o.iterations = 200'000;
  auto r = anneal_search(Mesh(Shape{3, 5}), 4, o);
  ASSERT_TRUE(r.map.has_value());
  ExplicitEmbedding emb(Mesh(Shape{3, 5}), 4, *r.map);
  VerifyReport v = verify(emb);
  EXPECT_TRUE(v.valid);
  EXPECT_LE(v.dilation, 2u);
}

TEST(Anneal, FindsThreeDimensional) {
  AnnealOptions o;
  o.iterations = 500'000;
  auto r = anneal_search(Mesh(Shape{3, 3, 3}), 5, o);
  ASSERT_TRUE(r.map.has_value());
  ExplicitEmbedding emb(Mesh(Shape{3, 3, 3}), 5, *r.map);
  EXPECT_LE(verify(emb).dilation, 2u);
}

TEST(Anneal, WitnessIsAlwaysInjective) {
  AnnealOptions o;
  o.iterations = 100'000;
  auto r = anneal_search(Mesh(Shape{4, 5}), 5, o);
  ASSERT_TRUE(r.map.has_value());
  std::vector<CubeNode> sorted = *r.map;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
}

TEST(Anneal, ImpossibleCapacityReturnsEmpty) {
  auto r = anneal_search(Mesh(Shape{3, 3}), 3);
  EXPECT_FALSE(r.map.has_value());
}

TEST(Anneal, DeterministicForFixedSeed) {
  AnnealOptions o;
  o.iterations = 50'000;
  o.seed = 1234;
  auto a = anneal_search(Mesh(Shape{3, 5}), 4, o);
  auto b = anneal_search(Mesh(Shape{3, 5}), 4, o);
  ASSERT_EQ(a.map.has_value(), b.map.has_value());
  if (a.map) {
    EXPECT_EQ(*a.map, *b.map);
  }
}

TEST(Anneal, ReportsBestPenaltyWhenUnsolved) {
  // One iteration cannot solve anything: the result must carry a nonzero
  // penalty and no map.
  AnnealOptions o;
  o.iterations = 1;
  o.restarts = 1;
  auto r = anneal_search(Mesh(Shape{3, 5}), 4, o);
  if (!r.map) {
    EXPECT_GT(r.best_penalty, 0u);
  }
}

}  // namespace
}  // namespace hj::search
