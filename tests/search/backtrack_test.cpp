// Tests for the backtracking embedding searcher.
#include "search/backtrack.hpp"

#include <gtest/gtest.h>

#include "core/verify.hpp"

namespace hj::search {
namespace {

void expect_witness_valid(const Mesh& m, u32 dim,
                          const std::vector<CubeNode>& map, u32 max_dil) {
  ExplicitEmbedding emb(m, dim, map);
  VerifyReport r = verify(emb);
  EXPECT_TRUE(r.valid) << (r.errors.empty() ? "" : r.errors[0]);
  EXPECT_LE(r.dilation, max_dil);
}

TEST(Backtrack, FindsGrayLikeDilationOne) {
  BacktrackOptions o;
  o.max_dilation = 1;
  auto r = backtrack_search(Mesh(Shape{4, 4}), 4, o);
  ASSERT_TRUE(r.map.has_value());
  expect_witness_valid(Mesh(Shape{4, 4}), 4, *r.map, 1);
}

TEST(Backtrack, FindsAllPaperDirectShapes) {
  struct Case {
    Shape shape;
    u32 dim;
  };
  for (const Case& c : {Case{Shape{3, 5}, 4}, Case{Shape{7, 9}, 6},
                        Case{Shape{11, 11}, 7}, Case{Shape{3, 3, 3}, 5},
                        Case{Shape{3, 3, 7}, 6}}) {
    auto r = backtrack_search(Mesh(c.shape), c.dim);
    ASSERT_TRUE(r.map.has_value()) << c.shape.to_string();
    expect_witness_valid(Mesh(c.shape), c.dim, *r.map, 2);
  }
}

TEST(Backtrack, HavelMoravekLowerBound) {
  // Theorem 1: a dilation-1 embedding of 3x5 needs ceil(log 3) +
  // ceil(log 5) = 5 cube dimensions; exhaustive search in Q4 must refute.
  BacktrackOptions o;
  o.max_dilation = 1;
  auto r = backtrack_search(Mesh(Shape{3, 5}), 4, o);
  EXPECT_FALSE(r.map.has_value());
  EXPECT_TRUE(r.exhausted);
  // And in Q5 it must succeed (Gray code exists there).
  auto r5 = backtrack_search(Mesh(Shape{3, 5}), 5, o);
  EXPECT_TRUE(r5.map.has_value());
}

TEST(Backtrack, RefutesImpossibleCapacity) {
  auto r = backtrack_search(Mesh(Shape{3, 3}), 3);  // 9 nodes, 8 slots
  EXPECT_FALSE(r.map.has_value());
  EXPECT_TRUE(r.exhausted);
}

TEST(Backtrack, DilationOneTorusPowerOfTwo) {
  BacktrackOptions o;
  o.max_dilation = 1;
  auto r = backtrack_search(Mesh::torus(Shape{8}), 3, o);
  ASSERT_TRUE(r.map.has_value());
  ExplicitEmbedding emb(Mesh::torus(Shape{8}), 3, *r.map);
  VerifyReport v = verify(emb);
  EXPECT_TRUE(v.valid);
  EXPECT_EQ(v.dilation, 1u);
}

TEST(Backtrack, OddRingNeedsDilationTwo) {
  // A 5-cycle is odd; the bipartite cube has no odd cycles, so dilation 1
  // is impossible even in a large cube, but dilation 2 fits in Q3.
  BacktrackOptions o1;
  o1.max_dilation = 1;
  auto r1 = backtrack_search(Mesh::torus(Shape{5}), 3, o1);
  EXPECT_FALSE(r1.map.has_value());
  EXPECT_TRUE(r1.exhausted);
  auto r2 = backtrack_search(Mesh::torus(Shape{5}), 3);
  ASSERT_TRUE(r2.map.has_value());
  expect_witness_valid(Mesh::torus(Shape{5}), 3, *r2.map, 2);
}

TEST(Backtrack, BudgetStopsInconclusively) {
  BacktrackOptions o;
  o.node_budget = 3;
  auto r = backtrack_search(Mesh(Shape{7, 9}), 6, o);
  EXPECT_FALSE(r.map.has_value());
  EXPECT_FALSE(r.exhausted);
  EXPECT_LE(r.nodes_expanded, 3u);
}

TEST(Backtrack, CanonicalPruningPreservesCompleteness) {
  // With and without symmetry breaking the searcher must agree on
  // existence questions.
  for (u32 dil : {1u, 2u}) {
    BacktrackOptions with, without;
    with.max_dilation = without.max_dilation = dil;
    without.canonical_pruning = false;
    auto a = backtrack_search(Mesh(Shape{3, 4}), 4, with);
    auto b = backtrack_search(Mesh(Shape{3, 4}), 4, without);
    EXPECT_EQ(a.map.has_value(), b.map.has_value()) << "dil " << dil;
    EXPECT_LE(a.nodes_expanded, b.nodes_expanded);
  }
}

TEST(Backtrack, TrivialGuests) {
  auto r1 = backtrack_search(Mesh(Shape{1}), 0);
  ASSERT_TRUE(r1.map.has_value());
  EXPECT_EQ(r1.map->size(), 1u);
  auto r2 = backtrack_search(Mesh(Shape{2}), 1);
  ASSERT_TRUE(r2.map.has_value());
}

}  // namespace
}  // namespace hj::search
