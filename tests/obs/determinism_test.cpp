// The observability determinism contract: every Kind::Deterministic
// aggregate (counter values and histogram buckets) is bit-identical at
// HJ_THREADS 1, 2 and 8 for the same workload, because the observation
// multiset is a pure function of the input and u64 shard merging
// commutes. Timing metrics are explicitly outside the contract and are
// excluded by snapshotting with a kind filter.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "core/parallel.hpp"
#include "core/planner.hpp"
#include "hypersim/network.hpp"
#include "obs/obs.hpp"

namespace hj {
namespace {

#ifndef HJ_DISABLE_OBS

/// One seeded workload: a plan_batch over ~12 random small shapes
/// (repeats and axis permutations included, so the dedup and relabel
/// counters fire), plus a stencil simulation on every fourth workload.
void run_workload(u64 seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<u64> axis(2, 20);
  std::uniform_int_distribution<u32> rank(1, 3);
  std::vector<Shape> shapes;
  for (int i = 0; i < 12; ++i) {
    SmallVec<u64, 4> extents;
    const u32 r = rank(rng);
    for (u32 a = 0; a < r; ++a) extents.push_back(axis(rng));
    shapes.push_back(Shape{extents});
    // Re-enqueue an axis permutation of every third shape so canonical
    // dedup has something to deduplicate.
    if (i % 3 == 0 && extents.size() > 1) {
      std::reverse(extents.begin(), extents.end());
      shapes.push_back(Shape{extents});
    }
  }
  ShardedPlanCache cache;
  const std::vector<PlanResult> plans =
      plan_batch(shapes, {}, nullptr, &cache);
  if (seed % 4 == 0) {
    for (const PlanResult& r : plans) {
      if (r.embedding->host_dim() > 10) continue;
      const sim::SimResult s = sim::simulate_stencil(*r.embedding);
      ASSERT_TRUE(s.consistent());
      break;
    }
  }
}

TEST(ObsDeterminism, DeterministicAggregatesMatchAcrossThreadCounts) {
  obs::set_enabled(true);
  std::vector<obs::Registry::Snapshot> runs;
  for (const u32 threads : {1u, 2u, 8u}) {
    par::set_thread_override(threads);
    obs::Registry::global().reset();
    for (u64 seed = 1; seed <= 50; ++seed) run_workload(seed);
    runs.push_back(
        obs::Registry::global().snapshot(obs::Kind::Deterministic));
  }
  par::set_thread_override(0);
  obs::set_enabled(false);
  obs::Trace::global().clear();

  ASSERT_FALSE(runs[0].counters.empty());
  ASSERT_FALSE(runs[0].histograms.empty());
  // Sanity: the workload actually exercised the instrumented layers.
  EXPECT_GT(runs[0].counters.at("plan.batch.shapes"), 0u);
  EXPECT_GT(runs[0].counters.at("plan.batch.unique"), 0u);
  EXPECT_GT(runs[0].counters.at("sim.runs"), 0u);
  EXPECT_GT(runs[0].histograms.at("plan.dilation").count, 0u);
  // Dedup must have merged at least the injected permutations.
  EXPECT_LT(runs[0].counters.at("plan.batch.unique"),
            runs[0].counters.at("plan.batch.shapes"));

  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[0], runs[2]);
}

// The same contract, extended to the structured event log: the
// concatenation of Kind::Deterministic event LINES (not just aggregate
// counters) is bit-identical at HJ_THREADS 1/2/8, because Det events are
// emitted only from serial or canonically ordered call sites and carry
// no clock/thread fields. Timing events are free to interleave and are
// filtered out by deterministic_text().
TEST(ObsDeterminism, DeterministicEventStreamsMatchAcrossThreadCounts) {
  obs::set_enabled(true);
  std::vector<std::string> streams;
  for (const u32 threads : {1u, 2u, 8u}) {
    par::set_thread_override(threads);
    obs::Registry::global().reset();
    obs::EventLog::global().clear();
    for (u64 seed = 1; seed <= 20; ++seed) run_workload(seed);
    streams.push_back(obs::EventLog::global().deterministic_text());
  }
  par::set_thread_override(0);
  obs::set_enabled(false);
  obs::EventLog::global().clear();
  obs::Trace::global().clear();

  ASSERT_FALSE(streams[0].empty());
  // The batch-summary event is Det and fires once per plan_batch call.
  EXPECT_NE(streams[0].find("\"ev\":\"plan.batch\""), std::string::npos);
  EXPECT_EQ(streams[0].find("ts_us"), std::string::npos);
  EXPECT_EQ(streams[0], streams[1]);
  EXPECT_EQ(streams[0], streams[2]);
}

TEST(ObsDeterminism, TimingMetricsAreExcludedFromTheContract) {
  obs::set_enabled(true);
  obs::Registry::global().reset();
  run_workload(7);
  const auto det =
      obs::Registry::global().snapshot(obs::Kind::Deterministic);
  const auto all = obs::Registry::global().snapshot();
  obs::set_enabled(false);
  obs::Trace::global().clear();
  // plancache hit counts depend on worker scheduling: Timing by design.
  EXPECT_EQ(det.counters.count("plancache.hits"), 0u);
  EXPECT_EQ(all.counters.count("plancache.hits"), 1u);
  for (const auto& [name, value] : det.counters)
    EXPECT_EQ(all.counters.at(name), value) << name;
}

#endif  // HJ_DISABLE_OBS

}  // namespace
}  // namespace hj
