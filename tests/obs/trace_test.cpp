// Structured trace spans: recording, RAII nesting and the Chrome
// trace_event JSON export.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.hpp"

namespace hj::obs {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Trace::global().clear();
#ifndef HJ_DISABLE_OBS
    was_ = enabled();
    set_enabled(true);
#endif
  }
  void TearDown() override {
#ifndef HJ_DISABLE_OBS
    set_enabled(was_);
#endif
    Trace::global().clear();
  }
  bool was_ = false;
};

#ifndef HJ_DISABLE_OBS

TEST_F(TraceTest, SpanGuardRecordsCompleteEvent) {
  {
    HJ_SPAN("outer");
  }
  ASSERT_EQ(Trace::global().size(), 1u);
  const std::string js = Trace::global().to_json();
  EXPECT_NE(js.find("\"name\": \"outer\""), std::string::npos) << js;
  EXPECT_NE(js.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(js.find("\"traceEvents\""), std::string::npos);
}

TEST_F(TraceTest, NestedSpansContainEachOther) {
  {
    HJ_SPAN("parent");
    {
      HJ_SPAN_N("child", 42);
    }
  }
  // Children close (and record) before parents: child is event 0.
  ASSERT_EQ(Trace::global().size(), 2u);
  const std::string js = Trace::global().to_json();
  const auto child = js.find("\"name\": \"child\"");
  const auto parent = js.find("\"name\": \"parent\"");
  ASSERT_NE(child, std::string::npos);
  ASSERT_NE(parent, std::string::npos);
  EXPECT_LT(child, parent);
  EXPECT_NE(js.find("\"args\": {\"n\": 42}"), std::string::npos) << js;
}

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  set_enabled(false);
  {
    HJ_SPAN("ghost");
    HJ_SPAN_N("ghost_n", 1);
  }
  EXPECT_EQ(Trace::global().size(), 0u);
}

TEST_F(TraceTest, ClearEmptiesTheLog) {
  { HJ_SPAN("gone"); }
  ASSERT_GT(Trace::global().size(), 0u);
  Trace::global().clear();
  EXPECT_EQ(Trace::global().size(), 0u);
  EXPECT_NE(Trace::global().to_json().find("\"traceEvents\": []"),
            std::string::npos);
}

TEST_F(TraceTest, JsonEscapesNames) {
  TraceEvent e;
  e.name = "a \"quoted\" \\ name";
  e.ts_us = 1;
  e.dur_us = 2;
  Trace::global().record(std::move(e));
  const std::string js = Trace::global().to_json();
  EXPECT_NE(js.find("a \\\"quoted\\\" \\\\ name"), std::string::npos) << js;
}

#else  // HJ_DISABLE_OBS

TEST_F(TraceTest, MacrosCompileToNothing) {
  HJ_SPAN("noop");
  HJ_SPAN_N("noop_n", 3);
  EXPECT_EQ(Trace::global().size(), 0u);
}

#endif

}  // namespace
}  // namespace hj::obs
