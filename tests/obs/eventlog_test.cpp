// Structured event log contract tests: the exact one-line JSON shape,
// deterministic FNV-1a event ids, the Kind contract (Timing lines carry
// ts_us/tid, Deterministic lines never do), escaping and truncation
// invariants, the bounded in-memory capture, and the --events-out
// stream's parseable-tail guarantee.
#include <gtest/gtest.h>
#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "obs/obs.hpp"

namespace hj {
namespace {

#ifndef HJ_DISABLE_OBS

std::string temp_path(const std::string& tag) {
  return ::testing::TempDir() + "hj_eventlog_" + tag;
}

std::string eid_hex(const char* name) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%08x", obs::event_id(name));
  return buf;
}

/// Capture is only live while obs::enabled(); scope it per test.
struct CaptureScope {
  CaptureScope() {
    obs::set_enabled(true);
    obs::EventLog::global().clear();
  }
  ~CaptureScope() {
    obs::EventLog::global().clear();
    obs::set_enabled(false);
  }
};

TEST(EventId, IsFnv1aAndStable) {
  // FNV-1a basis and a hand-computed step, locked down so "eid" values
  // in archived logs never silently change meaning.
  static_assert(obs::event_id("") == 2166136261u);
  static_assert(obs::event_id("a") == (2166136261u ^ 'a') * 16777619u);
  static_assert(obs::event_id("serve.request") !=
                obs::event_id("serve.reply"));
  EXPECT_EQ(eid_hex(""), "811c9dc5");
}

TEST(EventLog, DeterministicLineHasExactFlatJsonShape) {
  CaptureScope scope;
  obs::Event("test.ev", obs::Kind::Deterministic, obs::Severity::Info, "test")
      .kv("a", u64{7})
      .kv("b", "x")
      .kv("c", i64{-3})
      .emit();
  const std::vector<std::string> events = obs::EventLog::global().events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0],
            "{\"ev\":\"test.ev\",\"eid\":\"" + eid_hex("test.ev") +
                "\",\"kind\":\"det\",\"sev\":\"info\",\"comp\":\"test\","
                "\"a\":7,\"b\":\"x\",\"c\":-3}");
}

TEST(EventLog, TimingLinesCarryClockFieldsDeterministicLinesNever) {
  CaptureScope scope;
  obs::Event("t.ev", obs::Kind::Timing, obs::Severity::Warn, "test").emit();
  obs::Event("d.ev", obs::Kind::Deterministic, obs::Severity::Error, "test")
      .emit();
  const std::vector<std::string> events = obs::EventLog::global().events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].find("\"kind\":\"timing\""), std::string::npos);
  EXPECT_NE(events[0].find("\"sev\":\"warn\""), std::string::npos);
  EXPECT_NE(events[0].find(",\"ts_us\":"), std::string::npos);
  EXPECT_NE(events[0].find(",\"tid\":"), std::string::npos);
  EXPECT_NE(events[1].find("\"sev\":\"error\""), std::string::npos);
  EXPECT_EQ(events[1].find("ts_us"), std::string::npos);
  EXPECT_EQ(events[1].find("tid"), std::string::npos);
  // deterministic_text() filters to det lines only.
  const std::string det = obs::EventLog::global().deterministic_text();
  EXPECT_EQ(det.find("t.ev"), std::string::npos);
  EXPECT_NE(det.find("d.ev"), std::string::npos);
}

TEST(EventLog, EscapesQuotesBackslashesAndControlBytes) {
  CaptureScope scope;
  obs::Event("esc", obs::Kind::Deterministic, obs::Severity::Info, "test")
      .kv("k", "a\"b\\c\x01" "d")
      .emit();
  const std::vector<std::string> events = obs::EventLog::global().events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_NE(events[0].find("\"k\":\"a\\\"b\\\\c d\""), std::string::npos)
      << events[0];
}

TEST(EventLog, OverlongPayloadIsTruncatedButStillClosed) {
  CaptureScope scope;
  obs::Event("big", obs::Kind::Deterministic, obs::Severity::Info, "test")
      .kv("k", std::string(2 * obs::Event::kMaxLine, 'z'))
      .emit();
  const std::vector<std::string> events = obs::EventLog::global().events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].size(), obs::Event::kMaxLine);
  EXPECT_EQ(events[0].front(), '{');
  EXPECT_EQ(events[0].back(), '}');  // the reserved byte survives overflow
}

TEST(EventLog, CaptureIsBoundedAndCountsDrops) {
  CaptureScope scope;
  const std::size_t extra = 10;
  for (std::size_t i = 0; i < obs::EventLog::kCaptureCap + extra; ++i)
    obs::Event("cap", obs::Kind::Deterministic, obs::Severity::Debug, "test")
        .emit();
  EXPECT_EQ(obs::EventLog::global().events().size(),
            obs::EventLog::kCaptureCap);
  EXPECT_EQ(obs::EventLog::global().dropped(), extra);
  obs::EventLog::global().clear();
  EXPECT_EQ(obs::EventLog::global().dropped(), 0u);
}

TEST(EventLog, StreamFdGetsOneTerminatedLinePerEvent) {
  const std::string path = temp_path("stream.jsonl");
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  ASSERT_GE(fd, 0);
  obs::EventLog::global().set_stream_fd(fd);
  EXPECT_TRUE(obs::events_on());  // a stream alone is a live sink
  obs::Event("s.one", obs::Kind::Deterministic, obs::Severity::Info, "test")
      .kv("n", u64{1})
      .emit();
  obs::Event("s.two", obs::Kind::Timing, obs::Severity::Info, "test").emit();
  obs::EventLog::global().set_stream_fd(-1);
  ::close(fd);

  std::ifstream in(path);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  for (const std::string& l : lines) {
    EXPECT_EQ(l.front(), '{');
    EXPECT_EQ(l.back(), '}');
  }
  EXPECT_NE(lines[0].find("\"ev\":\"s.one\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"ev\":\"s.two\""), std::string::npos);
  std::remove(path.c_str());
}

#endif  // HJ_DISABLE_OBS

}  // namespace
}  // namespace hj
