// Metrics registry: counters, gauges, histograms, snapshots, JSON and
// the enable gate.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>
#include <vector>

namespace hj::obs {
namespace {

/// Tests mutate the process-global registry; scope every test to its own
/// metric names and reset values on entry so order does not matter.
class RegistryTest : public ::testing::Test {
 protected:
  void SetUp() override { Registry::global().reset(); }
};

TEST_F(RegistryTest, CounterAccumulates) {
  Counter& c = Registry::global().counter("test.reg.counter");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(c.kind(), Kind::Deterministic);
}

TEST_F(RegistryTest, CounterIsIdempotentlyInterned) {
  Counter& a = Registry::global().counter("test.reg.same");
  Counter& b = Registry::global().counter("test.reg.same");
  EXPECT_EQ(&a, &b);
}

TEST_F(RegistryTest, KindConflictThrows) {
  (void)Registry::global().counter("test.reg.kinded", Kind::Timing);
  EXPECT_THROW((void)Registry::global().counter("test.reg.kinded",
                                                Kind::Deterministic),
               std::invalid_argument);
  // Same name in a different metric family is a separate namespace.
  EXPECT_NO_THROW((void)Registry::global().histogram("test.reg.kinded"));
}

TEST_F(RegistryTest, GaugeHoldsLastValue) {
  Gauge& g = Registry::global().gauge("test.reg.gauge");
  g.set(-7);
  EXPECT_EQ(g.value(), -7);
  g.set(1234);
  EXPECT_EQ(g.value(), 1234);
}

TEST_F(RegistryTest, HistogramBucketBoundaries) {
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(u64{1} << 40), Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::bucket_of(~u64{0}), Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::bucket_lo(0), 0u);
  EXPECT_EQ(Histogram::bucket_lo(1), 1u);
  EXPECT_EQ(Histogram::bucket_lo(5), 16u);
  // Every sample lands in the bucket whose range contains it.
  for (u64 v : {u64{1}, u64{5}, u64{100}, u64{65536}, u64{1} << 33}) {
    const u32 b = Histogram::bucket_of(v);
    EXPECT_GE(v, Histogram::bucket_lo(b)) << v;
    if (b + 1 < Histogram::kBuckets) {
      EXPECT_LT(v, Histogram::bucket_lo(b + 1)) << v;
    }
  }
}

TEST_F(RegistryTest, HistogramAggregates) {
  Histogram& h = Registry::global().histogram("test.reg.hist");
  for (u64 v : {u64{0}, u64{1}, u64{1}, u64{7}, u64{100}}) h.observe(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 109u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_EQ(h.bucket(0), 1u);        // the 0
  EXPECT_EQ(h.bucket(1), 2u);        // the 1s
  EXPECT_EQ(h.bucket(3), 1u);        // 7 in [4, 8)
  EXPECT_DOUBLE_EQ(h.mean(), 109.0 / 5.0);
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 5u);
  EXPECT_EQ(snap.buckets.size(), Histogram::kBuckets);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST_F(RegistryTest, ConcurrentAddsAllLand) {
  Counter& c = Registry::global().counter("test.reg.mt");
  Histogram& h = Registry::global().histogram("test.reg.mt.hist");
  constexpr u64 kPerThread = 10'000;
  std::vector<std::thread> pool;
  for (int t = 0; t < 8; ++t)
    pool.emplace_back([&] {
      for (u64 i = 0; i < kPerThread; ++i) {
        c.add();
        h.observe(i & 1023);
      }
    });
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(c.value(), 8 * kPerThread);
  EXPECT_EQ(h.count(), 8 * kPerThread);
}

TEST_F(RegistryTest, SnapshotFiltersByKind) {
  auto& reg = Registry::global();
  reg.counter("test.reg.det").add(3);
  reg.counter("test.reg.tim", Kind::Timing).add(9);
  reg.histogram("test.reg.det.h").observe(5);
  reg.histogram("test.reg.tim.h", Kind::Timing).observe(5);

  const Registry::Snapshot det = reg.snapshot(Kind::Deterministic);
  EXPECT_EQ(det.counters.at("test.reg.det"), 3u);
  EXPECT_EQ(det.counters.count("test.reg.tim"), 0u);
  EXPECT_EQ(det.histograms.count("test.reg.det.h"), 1u);
  EXPECT_EQ(det.histograms.count("test.reg.tim.h"), 0u);

  const Registry::Snapshot all = reg.snapshot();
  EXPECT_EQ(all.counters.at("test.reg.tim"), 9u);

  // Snapshots of the same state compare equal; a bump breaks equality.
  EXPECT_EQ(det, reg.snapshot(Kind::Deterministic));
  reg.counter("test.reg.det").add();
  EXPECT_FALSE(det == reg.snapshot(Kind::Deterministic));
}

TEST_F(RegistryTest, JsonContainsEveryFamily) {
  auto& reg = Registry::global();
  reg.counter("test.reg.json.c").add(2);
  reg.gauge("test.reg.json.g").set(-5);
  reg.histogram("test.reg.json.h", Kind::Timing).observe(1000);
  const std::string js = reg.to_json();
  EXPECT_NE(js.find("\"test.reg.json.c\": {\"value\": 2, "
                    "\"kind\": \"deterministic\"}"),
            std::string::npos)
      << js;
  EXPECT_NE(js.find("\"test.reg.json.g\": {\"value\": -5"),
            std::string::npos);
  EXPECT_NE(js.find("\"test.reg.json.h\""), std::string::npos);
  EXPECT_NE(js.find("\"kind\": \"timing\""), std::string::npos);
}

TEST_F(RegistryTest, EnableGateFlips) {
#ifndef HJ_DISABLE_OBS
  const bool before = enabled();
  set_enabled(true);
  EXPECT_TRUE(enabled());
  set_enabled(false);
  EXPECT_FALSE(enabled());
  set_enabled(before);
#else
  EXPECT_FALSE(enabled());
#endif
}

TEST_F(RegistryTest, ThreadOrdinalsAreSmallAndStable) {
  const u32 mine = thread_ordinal();
  EXPECT_EQ(thread_ordinal(), mine);
  u32 other = mine;
  std::thread([&] { other = thread_ordinal(); }).join();
  EXPECT_NE(other, mine);
}

}  // namespace
}  // namespace hj::obs
