// Flight-recorder contract tests: ring wraparound keeps the newest N
// lines in order, file-backed rings decode offline, on-demand dumps are
// parseable text, and the crash handler writes a dump from a raised
// SIGABRT before the process dies with the honest signal (exercised in
// a forked child so it also runs under ASan, whose own abort path goes
// through the same handler chain).
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "obs/flight.hpp"

namespace hj {
namespace {

namespace flight = obs::flight;

std::string temp_path(const std::string& tag) {
  return ::testing::TempDir() + "hj_flight_" + tag;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

TEST(Flight, RingWraparoundKeepsNewestSlotsInOrder) {
  const std::string ring = temp_path("wrap.ring");
  ASSERT_TRUE(flight::init_file(ring, /*slots=*/8));
  const u64 base = flight::recorded();
  for (int i = 0; i < 20; ++i) {
    const std::string line = "wrap-" + std::to_string(i);
    flight::note(line.c_str(), line.size());
  }
  EXPECT_EQ(flight::recorded(), base + 20);

  // 20 notes into 8 slots: exactly wrap-12 .. wrap-19 survive, oldest
  // first — the wraparound overwrote 0..11.
  const std::vector<std::string> lines = flight::read_ring(ring);
  ASSERT_EQ(lines.size(), 8u);
  for (int i = 0; i < 8; ++i)
    EXPECT_EQ(lines[static_cast<std::size_t>(i)],
              "wrap-" + std::to_string(12 + i));
  std::remove(ring.c_str());
}

TEST(Flight, OverlongLinesAreTruncatedNotTorn) {
  const std::string ring = temp_path("trunc.ring");
  ASSERT_TRUE(flight::init_file(ring, /*slots=*/4));
  const std::string huge(1000, 'x');
  flight::note(huge.c_str(), huge.size());
  const std::vector<std::string> lines = flight::read_ring(ring);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].size(), flight::kSlotBytes - 1);  // capped + '\n'
  EXPECT_EQ(lines[0], std::string(flight::kSlotBytes - 1, 'x'));
  std::remove(ring.c_str());
}

TEST(Flight, DumpProducesParseableTextReadableByReadRing) {
  const std::string ring = temp_path("dump.ring");
  const std::string out = temp_path("dump.txt");
  ASSERT_TRUE(flight::init_file(ring, /*slots=*/16));
  for (int i = 0; i < 3; ++i) {
    const std::string line = "dump-" + std::to_string(i);
    flight::note(line.c_str(), line.size());
  }
  ASSERT_TRUE(flight::dump(out));
  // read_ring() detects the missing magic and decodes the text form.
  const std::vector<std::string> lines = flight::read_ring(out);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "dump-0");
  EXPECT_EQ(lines[2], "dump-2");
  std::remove(ring.c_str());
  std::remove(out.c_str());
}

TEST(Flight, DumpToConfiguredRequiresAnInstalledPath) {
  flight::uninstall_crash_handler();
  EXPECT_FALSE(flight::dump_to_configured());

  const std::string ring = temp_path("cfg.ring");
  const std::string out = temp_path("cfg.dump");
  ASSERT_TRUE(flight::init_file(ring, /*slots=*/16));
  flight::install_crash_handler(out);
  const std::string line = "configured-dump-probe";
  flight::note(line.c_str(), line.size());
  EXPECT_TRUE(flight::dump_to_configured());
  flight::uninstall_crash_handler();

  EXPECT_NE(read_file(out).find("configured-dump-probe"), std::string::npos);
  std::remove(ring.c_str());
  std::remove(out.c_str());
}

TEST(Flight, ReadRingRejectsMissingFile) {
  EXPECT_THROW((void)flight::read_ring(temp_path("no-such-file")),
               std::invalid_argument);
}

// The async-signal-safety claim, end to end: a child attaches its own
// ring, installs the handler, notes a few events and abort()s. The
// parent requires death by SIGABRT (the handler re-raises with the
// default disposition, so the exit stays honest) AND a dump file whose
// banner names the signal and whose tail holds the noted lines.
TEST(Flight, CrashHandlerDumpsRingOnSigabrt) {
  const std::string ring = temp_path("crash.ring");
  const std::string dump = temp_path("crash.dump");
  std::remove(dump.c_str());

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: only _exit() on failure paths — no gtest machinery here.
    if (!flight::init_file(ring, /*slots=*/32)) _exit(90);
    flight::install_crash_handler(dump);
    for (int i = 0; i < 5; ++i) {
      const std::string line = "inflight-request-" + std::to_string(i);
      flight::note(line.c_str(), line.size());
    }
    raise(SIGABRT);
    _exit(91);  // unreachable when the handler re-raises correctly
  }

  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status)) << "child exited " << status;
  EXPECT_EQ(WTERMSIG(status), SIGABRT);

  const std::string body = read_file(dump);
  EXPECT_NE(body.find("# flight dump signal=6"), std::string::npos) << body;
  EXPECT_NE(body.find("inflight-request-0"), std::string::npos);
  EXPECT_NE(body.find("inflight-request-4"), std::string::npos);

  // The mmap'd ring file itself is also decodable postmortem.
  const std::vector<std::string> lines = flight::read_ring(ring);
  ASSERT_EQ(lines.size(), 5u);
  EXPECT_EQ(lines.back(), "inflight-request-4");

  std::remove(ring.c_str());
  std::remove(dump.c_str());
}

}  // namespace
}  // namespace hj
