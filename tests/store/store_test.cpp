// Plan store tests: format round trips, crash-consistent precompute
// (resume from a clean or torn journal converges to a bit-identical
// store), the every-byte corruption property (truncation and bit flips
// are always *detected* — a reply is checksum-verified or quarantined,
// never garbage), and the serve layer's verdict contract, including
// "never serve an uncertified plan".
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "core/io.hpp"
#include "core/verify.hpp"
#include "store/precompute.hpp"
#include "store/serve.hpp"
#include "store/store.hpp"
#include "store/writer.hpp"

namespace hj::store {
namespace {

std::string temp_path(const std::string& tag) {
  return ::testing::TempDir() + "hj_store_" + tag;
}

void remove_store(const std::string& path) {
  std::remove(path.c_str());
  std::remove(journal_path(path).c_str());
  std::remove((path + ".tmp").c_str());
}

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << path;
  return std::string((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(os.good()) << path;
}

Record make_record(const Shape& shape) {
  Planner planner;
  const PlanResult r = planner.plan(shape.sorted());
  Record rec;
  rec.key = Key::of(shape);
  rec.cube = r.report.host_dim;
  rec.dil = r.report.dilation;
  rec.plan = r.plan;
  rec.emb_text = io::to_text(*r.embedding);
  return rec;
}

TEST(StoreFormat, KeyCanonicalizesAndOrders) {
  const Key a = Key::of(Shape{{5, 3}});
  const Key b = Key::of(Shape{{3, 5}});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.rank(), 2u);
  EXPECT_EQ(a.to_string(), "3x5");
  EXPECT_EQ(a.shape(), Shape({3, 5}));
  // Lexicographic order on the canonical (sorted, zero-padded) extents:
  // a strict total order across ranks, because extents are >= 1 and the
  // padding is always 0. Shape{{3,5,2}} canonicalizes to 2x3x5, so its
  // key leads with 2 and sorts before 3x5.
  EXPECT_LT(Key::of(Shape{{2, 7}}), Key::of(Shape{{3, 5}}));
  EXPECT_LT(Key::of(Shape{{3, 5, 2}}), Key::of(Shape{{3, 5}}));
  EXPECT_LT(Key::of(Shape{{3, 5}}), Key::of(Shape{{3, 6}}));
  EXPECT_THROW((void)Key::of(Shape{{2, 2, 2, 2, 2}}), std::invalid_argument);
}

TEST(StoreFormat, RecordRoundTrip) {
  const Record rec = make_record(Shape{{3, 5}});
  std::string bytes;
  encode_record(bytes, rec);
  Record back;
  u64 total = 0;
  std::string err;
  ASSERT_TRUE(decode_record(
      reinterpret_cast<const unsigned char*>(bytes.data()), bytes.size(),
      &back, &total, &err))
      << err;
  EXPECT_EQ(total, bytes.size());
  EXPECT_EQ(back.key, rec.key);
  EXPECT_EQ(back.cube, rec.cube);
  EXPECT_EQ(back.dil, rec.dil);
  EXPECT_EQ(back.plan, rec.plan);
  EXPECT_EQ(back.emb_text, rec.emb_text);
}

TEST(StoreFormat, DecodeRejectsTruncationAtEveryLength) {
  std::string bytes;
  encode_record(bytes, make_record(Shape{{2, 3}}));
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    std::string err;
    EXPECT_FALSE(decode_record(
        reinterpret_cast<const unsigned char*>(bytes.data()), n, nullptr,
        nullptr, &err))
        << "decode accepted a " << n << "-byte prefix";
  }
}

TEST(StoreWriter, RoundTripAndLookup) {
  const std::string path = temp_path("roundtrip.hjs");
  remove_store(path);
  Writer w;
  const Shape shapes[] = {Shape{{4}}, Shape{{2, 3}}, Shape{{3, 5}}};
  for (const Shape& s : shapes) w.add(make_record(s));
  EXPECT_EQ(w.record_count(), 3u);
  atomic_write_file(path, w.finish());

  const PlanStore store = PlanStore::open(path);
  EXPECT_EQ(store.record_count(), 3u);
  for (const Shape& s : shapes) {
    const PlanStore::Lookup hit = store.lookup(Key::of(s));
    ASSERT_EQ(hit.status, PlanStore::Status::Hit) << s.to_string();
    EXPECT_EQ(hit.record.key, Key::of(s));
    // The stored document re-verifies.
    const auto emb = io::from_text(hit.record.emb_text);
    EXPECT_TRUE(verify(*emb).valid);
  }
  EXPECT_EQ(store.lookup(Key::of(Shape{{7, 11}})).status,
            PlanStore::Status::Miss);
  remove_store(path);
}

TEST(StoreWriter, DuplicateKeysRejected) {
  Writer w;
  w.add(make_record(Shape{{2, 3}}));
  w.add(make_record(Shape{{3, 2}}));  // same canonical key
  EXPECT_THROW((void)w.finish(), std::invalid_argument);
}

TEST(Precompute, EnumerationIsCanonicalAndOrdered) {
  const std::vector<Shape> shapes = enumerate_canonical_shapes(12, 3);
  ASSERT_FALSE(shapes.empty());
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    const Shape& s = shapes[i];
    EXPECT_LE(s.num_nodes(), 12u);
    EXPECT_EQ(s, s.sorted()) << "non-canonical " << s.to_string();
    if (i > 0) {
      const Shape& p = shapes[i - 1];
      // Rank-major, then lexicographic within a rank.
      ASSERT_TRUE(p.dims() < s.dims() ||
                  (p.dims() == s.dims() && Key::of(p) < Key::of(s)))
          << p.to_string() << " before " << s.to_string();
    }
  }
  // Deterministic: same call, same list.
  EXPECT_EQ(shapes, enumerate_canonical_shapes(12, 3));
}

TEST(Precompute, BuildsOpensAndIsIdempotent) {
  const std::string path = temp_path("build.hjs");
  remove_store(path);
  PrecomputeOptions opts;
  opts.max_nodes = 16;
  const PrecomputeResult r = precompute(path, opts);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.batches_planned, r.batches_total);

  const PlanStore store = PlanStore::open(path);
  const std::vector<Shape> shapes = enumerate_canonical_shapes(16, 3);
  EXPECT_EQ(store.record_count(), shapes.size());
  for (const Shape& s : shapes)
    EXPECT_EQ(store.lookup(Key::of(s)).status, PlanStore::Status::Hit);

  // Second run: nothing to do, store untouched byte for byte.
  const std::string before = read_file(path);
  const PrecomputeResult again = precompute(path, opts);
  EXPECT_TRUE(again.complete);
  EXPECT_EQ(again.batches_planned, 0u);
  EXPECT_EQ(read_file(path), before);
  remove_store(path);
}

TEST(Precompute, ResumeConvergesBitIdentical) {
  const std::string ref = temp_path("ref.hjs");
  const std::string part = temp_path("part.hjs");
  remove_store(ref);
  remove_store(part);
  PrecomputeOptions opts;
  opts.max_nodes = 24;
  opts.batch_size = 4;
  ASSERT_TRUE(precompute(ref, opts).complete);

  // Interrupt after 2 batches (the in-process analogue of kill -9: the
  // journal holds exactly the completed frames).
  PrecomputeOptions partial = opts;
  partial.max_batches = 2;
  const PrecomputeResult first = precompute(part, partial);
  EXPECT_FALSE(first.complete);
  EXPECT_EQ(first.batches_planned, 2u);

  const PrecomputeResult second = precompute(part, opts);
  EXPECT_TRUE(second.complete);
  EXPECT_EQ(second.batches_resumed, 2u);
  EXPECT_EQ(read_file(part), read_file(ref)) << "resume diverged";
  remove_store(ref);
  remove_store(part);
}

TEST(Precompute, TornJournalTailIsDroppedAndReplanned) {
  const std::string ref = temp_path("torn_ref.hjs");
  const std::string part = temp_path("torn.hjs");
  remove_store(ref);
  remove_store(part);
  PrecomputeOptions opts;
  opts.max_nodes = 24;
  opts.batch_size = 4;
  ASSERT_TRUE(precompute(ref, opts).complete);

  PrecomputeOptions partial = opts;
  partial.max_batches = 2;
  ASSERT_FALSE(precompute(part, partial).complete);
  // Simulate a crash mid-append: a frame header with a payload that never
  // made it to disk.
  std::string torn;
  put_u32(torn, kJournalMagic);
  put_u32(torn, 2);          // the next expected batch index
  put_u64(torn, 100000);     // claims a payload the file does not have
  put_u64(torn, 0);
  append_file_sync(journal_path(part), torn);

  const PrecomputeResult resumed = precompute(part, opts);
  EXPECT_TRUE(resumed.complete);
  EXPECT_EQ(resumed.batches_resumed, 2u);
  EXPECT_EQ(resumed.journal_dropped_bytes, torn.size());
  EXPECT_EQ(read_file(part), read_file(ref)) << "torn resume diverged";
  remove_store(ref);
  remove_store(part);
}

TEST(Precompute, StaleJournalFromOtherBudgetIsRebuilt) {
  const std::string path = temp_path("stale.hjs");
  remove_store(path);
  PrecomputeOptions small;
  small.max_nodes = 8;
  small.batch_size = 4;
  small.max_batches = 1;
  ASSERT_FALSE(precompute(path, small).complete);

  // Resume under a different budget: the journal's record keys no longer
  // match the enumeration slice, so its frames must be discarded.
  PrecomputeOptions big;
  big.max_nodes = 16;
  big.batch_size = 4;
  const PrecomputeResult r = precompute(path, big);
  EXPECT_TRUE(r.complete);
  const PlanStore store = PlanStore::open(path);
  EXPECT_EQ(store.record_count(), enumerate_canonical_shapes(16, 3).size());
  remove_store(path);
}

// Satellite 3: the every-byte corruption property. For each byte of a
// small store, truncating there or flipping a bit there must either fail
// open() with an exception, or open a store whose every lookup is
// checksum-verified: Hit with the pristine record's exact bytes, or an
// explicit Corrupt quarantine. Never UB, never silently wrong data.
TEST(StoreCorruption, EveryOffsetTruncationAndBitFlip) {
  const std::string path = temp_path("fuzz.hjs");
  const std::string mut = temp_path("fuzz_mut.hjs");
  remove_store(path);
  PrecomputeOptions opts;
  opts.max_nodes = 6;
  opts.max_rank = 2;
  ASSERT_TRUE(precompute(path, opts).complete);
  const std::string pristine = read_file(path);
  const std::vector<Shape> shapes = enumerate_canonical_shapes(6, 2);

  // Pristine records, for comparing surviving lookups against.
  std::vector<Record> expect;
  {
    const PlanStore store = PlanStore::open(path);
    for (const Shape& s : shapes) {
      const PlanStore::Lookup hit = store.lookup(Key::of(s));
      ASSERT_EQ(hit.status, PlanStore::Status::Hit);
      expect.push_back(hit.record);
    }
  }

  const auto check_mutant = [&](const std::string& bytes, u64* corrupt_out) {
    write_file(mut, bytes);
    u64 corrupt = 0;
    try {
      const PlanStore store = PlanStore::open(mut);
      for (std::size_t i = 0; i < shapes.size(); ++i) {
        const PlanStore::Lookup hit = store.lookup(Key::of(shapes[i]));
        switch (hit.status) {
          case PlanStore::Status::Hit:
            // A served record must be byte-identical to the pristine one.
            ASSERT_EQ(hit.record.plan, expect[i].plan);
            ASSERT_EQ(hit.record.emb_text, expect[i].emb_text);
            ASSERT_EQ(hit.record.cube, expect[i].cube);
            ASSERT_EQ(hit.record.dil, expect[i].dil);
            break;
          case PlanStore::Status::Corrupt:
            ASSERT_FALSE(hit.error.empty());
            ++corrupt;
            break;
          case PlanStore::Status::Miss:
            FAIL() << "key vanished: " << shapes[i].to_string();
        }
      }
    } catch (const std::runtime_error&) {
      // Clean open() rejection is an acceptable outcome.
    }
    if (corrupt_out) *corrupt_out = corrupt;
  };

  // Truncation at every offset.
  for (u64 n = 0; n < pristine.size(); ++n)
    check_mutant(pristine.substr(0, n), nullptr);

  // A bit flip at every byte offset. One flipped byte may corrupt at most
  // one record (records do not overlap).
  for (u64 off = 0; off < pristine.size(); ++off) {
    std::string flipped = pristine;
    flipped[off] = static_cast<char>(flipped[off] ^ 0x40);
    u64 corrupt = 0;
    check_mutant(flipped, &corrupt);
    EXPECT_LE(corrupt, 1u) << "offset " << off;
  }
  remove_store(path);
  remove_store(mut);
}

TEST(Serve, WarmColdAndRelabelVerdicts) {
  const std::string path = temp_path("serve.hjs");
  remove_store(path);
  PrecomputeOptions opts;
  opts.max_nodes = 16;
  ASSERT_TRUE(precompute(path, opts).complete);
  const PlanStore store = PlanStore::open(path);
  Server server(&store);

  Reply warm = server.handle(Shape{{2, 3}});
  EXPECT_TRUE(warm.ok);
  EXPECT_EQ(warm.verdict, Verdict::ServedWarm);
  EXPECT_EQ(warm.cube, 3u);

  // Non-canonical axis order: still warm, relabelled and re-verified.
  Reply perm = server.handle(Shape{{3, 2}});
  EXPECT_TRUE(perm.ok);
  EXPECT_EQ(perm.verdict, Verdict::ServedWarm);
  EXPECT_NE(perm.plan.find("perm<3x2>"), std::string::npos) << perm.plan;

  // Outside the store budget: live planner, served-cold.
  Reply cold = server.handle(Shape{{5, 7}});
  EXPECT_TRUE(cold.ok);
  EXPECT_EQ(cold.verdict, Verdict::ServedCold);

  const ServeStats st = server.stats();
  EXPECT_EQ(st.requests, 3u);
  EXPECT_EQ(st.warm, 2u);
  EXPECT_EQ(st.cold, 1u);
  EXPECT_EQ(st.errors, 0u);
  remove_store(path);
}

TEST(Serve, CorruptRecordDegradesAndStillAnswers) {
  const std::string path = temp_path("serve_corrupt.hjs");
  remove_store(path);
  PrecomputeOptions opts;
  opts.max_nodes = 12;
  opts.max_rank = 2;
  ASSERT_TRUE(precompute(path, opts).complete);

  // Flip a byte somewhere in the data region (index/superblock flips fail
  // open(), which is the other, louder failure mode).
  std::string bytes = read_file(path);
  {
    const PlanStore probe = PlanStore::open(path);
    const auto [first, last] = probe.data_region();
    ASSERT_LT(first, last);
    const u64 off = first + (last - first) / 2;
    bytes[off] = static_cast<char>(bytes[off] ^ 0xFF);
  }
  write_file(path, bytes);

  const PlanStore store = PlanStore::open(path);
  Server server(&store);
  const std::vector<Shape> shapes = enumerate_canonical_shapes(12, 2);
  u64 degraded = 0;
  for (const Shape& s : shapes) {
    const Reply rep = server.handle(s);
    // The daemon survives: every request is answered with a verified
    // plan, corruption only changes the verdict.
    ASSERT_TRUE(rep.ok) << s.to_string() << ": " << rep.error;
    if (rep.verdict == Verdict::Degraded) ++degraded;
  }
  EXPECT_EQ(degraded, 1u);
  EXPECT_EQ(store.quarantined_count(), 1u);
  EXPECT_EQ(server.stats().degraded, 1u);
  remove_store(path);
}

TEST(Serve, NeverServesAnUncertifiedPlan) {
  // A record whose checksum is intact but whose payload is a plan for a
  // DIFFERENT shape — exactly what a buggy precompute or a malicious
  // store would contain. The serve path must catch it at verification,
  // quarantine, and fall back to the live planner.
  const std::string path = temp_path("lying.hjs");
  remove_store(path);
  Writer w;
  Record lying = make_record(Shape{{2, 2}});
  lying.key = Key::of(Shape{{2, 3}});  // claims to be the 2x3 plan
  w.add(lying);
  atomic_write_file(path, w.finish());

  const PlanStore store = PlanStore::open(path);
  Server server(&store);
  const Reply rep = server.handle(Shape{{2, 3}});
  ASSERT_TRUE(rep.ok) << rep.error;
  EXPECT_EQ(rep.verdict, Verdict::Degraded);
  EXPECT_EQ(store.quarantined_count(), 1u);
  // The reply's certificate covers the *requested* shape.
  EXPECT_EQ(rep.cube, 3u);
  remove_store(path);
}

TEST(Serve, NoStoreMeansColdButServed) {
  Server server(nullptr);
  const Reply rep = server.handle(Shape{{3, 5}});
  EXPECT_TRUE(rep.ok);
  EXPECT_EQ(rep.verdict, Verdict::ServedCold);
  // Second hit memoizes to warm.
  const Reply memo = server.handle(Shape{{3, 5}});
  EXPECT_TRUE(memo.ok);
  EXPECT_EQ(memo.verdict, Verdict::ServedWarm);
}

TEST(Serve, OversizedRequestIsAnErrorReplyNotACrash) {
  Server server(nullptr);
  const Reply rep = server.handle(Shape{{1u << 14, 1u << 14}});
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.error.find("2^26"), std::string::npos) << rep.error;
  EXPECT_EQ(server.stats().errors, 1u);
}

TEST(BoundedQueue, ShedsWhenFullAndDrainsOnClose) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3)) << "admission past capacity";
  EXPECT_EQ(q.size(), 2u);
  q.close();
  EXPECT_FALSE(q.try_push(4)) << "admission after close";
  EXPECT_EQ(q.pop(), std::optional<int>(1));
  EXPECT_EQ(q.pop(), std::optional<int>(2));
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(BoundedQueue, PopBlocksUntilPush) {
  BoundedQueue<int> q(1);
  std::thread producer([&] { ASSERT_TRUE(q.try_push(42)); });
  EXPECT_EQ(q.pop(), std::optional<int>(42));
  producer.join();
  q.close();
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(RunServe, LineProtocolVerdictsErrorsAndStats) {
  const std::string path = temp_path("proto.hjs");
  remove_store(path);
  PrecomputeOptions opts;
  opts.max_nodes = 16;
  ASSERT_TRUE(precompute(path, opts).complete);
  const PlanStore store = PlanStore::open(path);
  Server server(&store);

  std::istringstream in(
      "3x7\n"
      "  \n"
      "# a comment\n"
      "2 2 2\n"
      "bogus\n"
      "0x4\n"
      "stats\n"
      "quit\n"
      "2x2\n");  // after quit: must not be processed
  std::ostringstream out;
  EXPECT_EQ(run_serve(in, out, server), 0);
  const std::string o = out.str();
  // 3x7 has 21 nodes — outside the 16-node store budget, so a live plan.
  EXPECT_NE(o.find("id=1 verdict=served-cold shape=3x7"), std::string::npos)
      << o;
  EXPECT_NE(o.find("id=2 verdict=served-warm shape=2x2x2"), std::string::npos)
      << o;
  EXPECT_NE(o.find("id=3 error=bad extent 'bogus'"), std::string::npos) << o;
  EXPECT_NE(o.find("id=4 error=bad extent '0'"), std::string::npos) << o;
  EXPECT_NE(o.find("stats requests="), std::string::npos) << o;
  EXPECT_EQ(o.find("id=5"), std::string::npos) << "request after quit served";
  remove_store(path);
}

TEST(Serve, PhaseBreakdownAttributesRequestLatency) {
  Server server(nullptr);
  // The caller-measured queue wait is recorded verbatim into the reply
  // and folded into the end-to-end latency.
  const Reply cold = server.handle(Shape{{3, 5}}, /*queue_us=*/123);
  ASSERT_TRUE(cold.ok);
  EXPECT_EQ(cold.phase.queue_us, 123u);
  EXPECT_GE(cold.latency_us, 123u);

  // Memo hit: the lookup phase fires, the live planner does not.
  const Reply memo = server.handle(Shape{{3, 5}});
  ASSERT_TRUE(memo.ok);
  EXPECT_EQ(memo.verdict, Verdict::ServedWarm);
  EXPECT_EQ(memo.phase.queue_us, 0u);

  // The always-on histograms saw every request, independent of HJ_OBS.
  const auto phases = server.phase_snapshot();
  ASSERT_EQ(phases.size(), 5u);
  for (const char* name : {"queue", "lookup", "verify", "plan", "total"})
    ASSERT_EQ(phases.count(name), 1u) << name;
  EXPECT_EQ(phases.at("total").count, 2u);
  EXPECT_EQ(phases.at("queue").count, 2u);
  EXPECT_EQ(phases.at("queue").max, 123u);
  // Bucket-interpolated quantile: within the <2x power-of-two bound and
  // clamped to the observed max.
  EXPECT_GE(phases.at("queue").quantile(0.99), 64u);
  EXPECT_LE(phases.at("queue").quantile(0.99), 123u);
}

TEST(Serve, ReVerifyTimeIsAttributedToTheVerifyPhase) {
  const std::string path = temp_path("phase_verify.hjs");
  remove_store(path);
  PrecomputeOptions opts;
  opts.max_nodes = 16;
  ASSERT_TRUE(precompute(path, opts).complete);
  const PlanStore store = PlanStore::open(path);
  Server server(&store);
  const Reply warm = server.handle(Shape{{2, 3}});
  ASSERT_TRUE(warm.ok);
  ASSERT_EQ(warm.verdict, Verdict::ServedWarm);
  // A store hit pays lookup + mandatory re-verify, never the planner.
  EXPECT_EQ(warm.phase.plan_us, 0u);
  EXPECT_EQ(server.phase_snapshot().at("verify").count, 1u);
  remove_store(path);
}

TEST(RunServe, StatsCommandReportsPerPhaseHistograms) {
  Server server(nullptr);
  std::istringstream in("2x3\n3x4\nstats\nquit\n");
  std::ostringstream out;
  EXPECT_EQ(run_serve(in, out, server), 0);
  const std::string o = out.str();
  // The live stats command answers with p50/p99/max per phase, computed
  // from the always-on histograms — no restart, no HJ_OBS required.
  // (Counts are not asserted: stats is answered by the reader thread
  // while the worker may still be draining the queue.)
  for (const char* name : {"queue", "lookup", "verify", "plan", "total"}) {
    const std::string head = std::string("phase ") + name + " count=";
    EXPECT_NE(o.find(head), std::string::npos) << name << " in:\n" << o;
  }
  EXPECT_NE(o.find("p50_us="), std::string::npos) << o;
  EXPECT_NE(o.find("p99_us="), std::string::npos) << o;
  EXPECT_NE(o.find("max_us="), std::string::npos) << o;
}

TEST(RunServe, StatsEveryWritesOneLineJsonSnapshots) {
  const std::string snap = temp_path("stats_every.jsonl");
  std::remove(snap.c_str());
  ServeOptions opts;
  opts.stats_every = 2;
  opts.stats_out = snap;
  Server server(nullptr, opts);
  std::istringstream in("2x2\n2x3\n2x4\n3x3\nquit\n");
  std::ostringstream out;
  EXPECT_EQ(run_serve(in, out, server), 0);

  std::ifstream is(snap);
  ASSERT_TRUE(is.good()) << snap;
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(is, line)) lines.push_back(line);
  // 4 processed requests at stats_every=2 -> exactly 2 snapshots, each a
  // self-contained flat JSON object (the `tail -1 | jq` monitoring
  // contract from the README).
  ASSERT_EQ(lines.size(), 2u);
  for (const std::string& l : lines) {
    EXPECT_EQ(l.front(), '{');
    EXPECT_EQ(l.back(), '}');
    EXPECT_NE(l.find("\"requests\":"), std::string::npos) << l;
    EXPECT_NE(l.find("\"total_p99_us\":"), std::string::npos) << l;
  }
  EXPECT_NE(lines[1].find("\"requests\":4"), std::string::npos) << lines[1];
  std::remove(snap.c_str());
}

}  // namespace
}  // namespace hj::store
