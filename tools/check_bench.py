#!/usr/bin/env python3
"""Schema validator for the line-delimited BENCH_*.json artifacts.

Usage: check_bench.py [--min-plan-speedup=X] FILE [FILE ...]

Checks, per file (schema chosen by basename):
  * every line parses as a JSON object
  * every required key is present, with finite numbers (no NaN/inf)
  * run ids are monotone:
      - BENCH_parallel*: within each workload, the thread counts of the
        timed rows are strictly increasing (size resets the sequence);
        with --min-plan-speedup=X, additionally every plan_batch row
        must report speedup >= X (the CI perf-smoke gate: adding
        threads must never make planning slower than serial)
      - BENCH_recovery*: trials are non-decreasing per (shape, mode), and
        epoch rows count 0, 1, 2, ... between summary rows
      - BENCH_storm*: every storm row's verdict is one of
        certified/degraded/failed with consistent delivery accounting,
        and each survival row's verdict counts sum to its run count and
        match the storm rows of its (shape, kind, events) cell
      - BENCH_bounds*: every bounds row has value >= lower bound and
        gap == value / bound >= 1.0 for dilation/wirelength/congestion,
        every equivalence row is identical (the lexicographic default
        reproduces the historical planner), and the wirelength
        objective's wins row shows >= 1 win at dilation <= 2
      - BENCH_serve*: latency rows keep p99 >= p50 >= 0 us, the split
        row's warm+cold+degraded+shed verdicts sum to its requests
        (shedding is accounted load, not loss), and every corruption row
        answers and verifies 100% of its requests with
        warm+degraded+cold == answered (byte flips degrade to the live
        planner, never to an unverified or dropped reply)

Exits 1 on the first file with violations; prints every violation found.
"""
import json
import math
import sys

PARALLEL_KEYS = {
    "exp": str, "workload": str, "size": int, "threads": int,
    "seconds": (int, float), "speedup": (int, float), "identical": bool,
}
RECOVERY_COMMON = {"shape": str, "trial": int, "mode": str, "row": str}
RECOVERY_EPOCH = {
    "epoch": int, "arrival_cycle": int, "detect_cycle": int,
    "detect_latency": int, "fault": str, "rung": str, "moved_nodes": int,
    "migration_cost": int, "dilation": int, "congestion": int,
}
RECOVERY_RUN = {
    "ok": bool, "cycles": int, "messages": int, "delivered": int,
    "failed": int, "epochs": int, "repairs": int,
    "total_migration_cost": int, "final_dilation": int,
    "final_congestion": int, "final_load": int,
}
# Registry-sourced columns added to run rows; optional so historical
# artifacts generated before the observability layer still validate.
RECOVERY_RUN_OPTIONAL = {
    "reroute_us": int, "migrate_us": int, "replan_us": int,
    "rung_attempts": int, "rung_certified": int,
}
STORM_COMMON = {
    "row": str, "shape": str, "host_dim": int, "method": str, "kind": str,
    "events": int,
}
STORM_RUN = {
    "seed": int, "arrivals": int, "flapping": int, "verdict": str,
    "messages": int, "delivered": int, "failed": int, "epochs": int,
    "repairs": int, "quarantined": int, "quarantine_evictions": int,
    "repairs_denied": int, "deferred_watchdogs": int, "uncovered": int,
    "witness": bool, "cycles": int,
}
STORM_SURVIVAL = {
    "runs": int, "certified": int, "degraded": int, "failed": int,
}
VERDICTS = ("certified", "degraded", "failed")
BOUNDS_ROW = {
    "row": str, "shape": str, "objective": str, "host_dim": int,
    "method": str, "nodes": int, "edges": int, "minimal": bool,
    "dilation": int, "dil_lb": int, "dil_gap": (int, float),
    "wirelength": int, "wl_lb": int, "wl_gap": (int, float),
    "congestion": int, "cong_lb": int, "cong_gap": (int, float),
    "load": int, "load_lb": int,
}
BOUNDS_EQUIVALENCE = {
    "row": str, "shape": str, "default_method": str, "lex_method": str,
    "identical": bool,
}
BOUNDS_WINS = {
    "row": str, "objective": str, "planned": int, "wins": int,
    "wins_dil2": int, "losses": int, "metric_saved": int,
}
OBJECTIVES = ("lexicographic", "dilation", "wirelength", "congestion")
SERVE_LATENCY = {
    "row": str, "mode": str, "requests": int, "p50_us": int,
    "p99_us": int, "mean_us": (int, float),
}
SERVE_SPLIT = {
    "row": str, "requests": int, "warm": int, "cold": int,
    "degraded": int, "shed": int,
}
SERVE_CORRUPTION = {
    "row": str, "flips": int, "requests": int, "answered": int,
    "verified": int, "warm": int, "degraded": int, "cold": int,
    "quarantined": int,
}
SERVE_MODES = ("cold", "warm")


def check_types(row, schema, errors, where, required=True):
    for key, types in schema.items():
        if key not in row:
            if required:
                errors.append(f"{where}: missing key '{key}'")
            continue
        value = row[key]
        # bool is an int subclass in Python; keep the kinds separate.
        if types is int and isinstance(value, bool):
            errors.append(f"{where}: '{key}' should be an integer")
        elif not isinstance(value, types):
            errors.append(f"{where}: '{key}' has type "
                          f"{type(value).__name__}")
        elif isinstance(value, float) and not math.isfinite(value):
            errors.append(f"{where}: '{key}' is not finite")


def check_parallel(rows, errors, min_plan_speedup=None):
    last = {}  # workload -> (size, threads)
    for lineno, row in rows:
        where = f"line {lineno}"
        check_types(row, PARALLEL_KEYS, errors, where)
        if not all(k in row for k in ("workload", "size", "threads")):
            continue
        key = row["workload"]
        if (min_plan_speedup is not None and key == "plan_batch"
                and isinstance(row.get("speedup"), (int, float))
                and row["speedup"] < min_plan_speedup):
            errors.append(
                f"{where}: plan_batch at {row['threads']} threads has "
                f"speedup {row['speedup']} < {min_plan_speedup}")
        prev = last.get(key)
        if prev is not None:
            size, threads = prev
            if (row["size"], row["threads"]) <= (size, threads):
                errors.append(
                    f"{where}: {key} run ids not monotone: "
                    f"size/threads {row['size']}/{row['threads']} after "
                    f"{size}/{threads}")
        last[key] = (row["size"], row["threads"])


def check_recovery(rows, errors):
    trial = {}  # (shape, mode) -> last trial
    epoch = {}  # (shape, mode) -> expected next epoch id
    for lineno, row in rows:
        where = f"line {lineno}"
        check_types(row, RECOVERY_COMMON, errors, where)
        if not all(k in row for k in RECOVERY_COMMON):
            continue
        key = (row["shape"], row["mode"])
        if row["row"] == "epoch":
            check_types(row, RECOVERY_EPOCH, errors, where)
            expected = epoch.get(key, 0)
            if row.get("epoch") != expected:
                errors.append(f"{where}: epoch {row.get('epoch')} for "
                              f"{key}, expected {expected}")
            epoch[key] = expected + 1
        elif row["row"] == "run":
            check_types(row, RECOVERY_RUN, errors, where)
            check_types(row, RECOVERY_RUN_OPTIONAL, errors, where,
                        required=False)
            epoch[key] = 0  # next trial's epochs restart at 0
        else:
            errors.append(f"{where}: unknown row type '{row['row']}'")
        if key in trial and row["trial"] < trial[key]:
            errors.append(f"{where}: trial went backwards for {key}")
        trial[key] = row["trial"]


def check_storm(rows, errors):
    # (shape, kind, events) -> verdict tallies of the storm rows seen
    # since the cell's last survival row.
    pending = {}
    for lineno, row in rows:
        where = f"line {lineno}"
        check_types(row, STORM_COMMON, errors, where)
        if not all(k in row for k in STORM_COMMON):
            continue
        key = (row["shape"], row["kind"], row["events"])
        if row["row"] == "storm":
            check_types(row, STORM_RUN, errors, where)
            verdict = row.get("verdict")
            if verdict not in VERDICTS:
                errors.append(f"{where}: verdict '{verdict}' not in "
                              f"{VERDICTS}")
                continue
            if all(k in row for k in ("messages", "delivered", "failed")):
                if row["delivered"] + row["failed"] != row["messages"]:
                    errors.append(f"{where}: delivery accounting broken: "
                                  f"{row['delivered']} + {row['failed']} "
                                  f"!= {row['messages']}")
                if verdict == "certified" and row["failed"] != 0:
                    errors.append(f"{where}: certified run with "
                                  f"{row['failed']} failed messages")
            cell = pending.setdefault(key, dict.fromkeys(VERDICTS, 0))
            cell[verdict] += 1
        elif row["row"] == "survival":
            check_types(row, STORM_SURVIVAL, errors, where)
            if not all(k in row for k in STORM_SURVIVAL):
                continue
            split = {v: row[v] for v in VERDICTS}
            if sum(split.values()) != row["runs"]:
                errors.append(f"{where}: verdict counts sum to "
                              f"{sum(split.values())}, runs={row['runs']}")
            seen = pending.pop(key, dict.fromkeys(VERDICTS, 0))
            if split != seen:
                errors.append(f"{where}: survival split {split} does not "
                              f"match its cell's storm rows {seen}")
        else:
            errors.append(f"{where}: unknown row type '{row['row']}'")
    for key, cell in pending.items():
        errors.append(f"storm rows for {key} have no survival row")


def check_bounds(rows, errors):
    wl_wins_dil2 = None
    for lineno, row in rows:
        where = f"line {lineno}"
        kind = row.get("row")
        if kind == "bounds":
            check_types(row, BOUNDS_ROW, errors, where)
            if not all(k in row for k in BOUNDS_ROW):
                continue
            if row["objective"] not in OBJECTIVES:
                errors.append(f"{where}: objective '{row['objective']}' "
                              f"not in {OBJECTIVES}")
            for metric, lb, gap in (("dilation", "dil_lb", "dil_gap"),
                                    ("wirelength", "wl_lb", "wl_gap"),
                                    ("congestion", "cong_lb", "cong_gap"),
                                    ("load", "load_lb", None)):
                if row[metric] < row[lb]:
                    errors.append(f"{where}: {metric} {row[metric]} below "
                                  f"its lower bound {row[lb]}")
                if gap is None:
                    continue
                if row[gap] < 1.0:
                    errors.append(f"{where}: {gap} {row[gap]} < 1.0")
                expect = row[metric] / row[lb] if row[lb] else 1.0
                if abs(row[gap] - expect) > 1e-3:
                    errors.append(f"{where}: {gap} {row[gap]} != "
                                  f"{metric}/{lb} = {expect:.4f}")
        elif kind == "equivalence":
            check_types(row, BOUNDS_EQUIVALENCE, errors, where)
            if row.get("identical") is not True:
                errors.append(f"{where}: lexicographic-default equivalence "
                              f"broken for shape '{row.get('shape')}'")
        elif kind == "wins":
            check_types(row, BOUNDS_WINS, errors, where)
            if not all(k in row for k in BOUNDS_WINS):
                continue
            if not (row["wins_dil2"] <= row["wins"] <= row["planned"]):
                errors.append(f"{where}: wins accounting broken: "
                              f"{row['wins_dil2']} <= {row['wins']} <= "
                              f"{row['planned']} fails")
            if row["objective"] == "wirelength":
                wl_wins_dil2 = row["wins_dil2"]
        else:
            errors.append(f"{where}: unknown row type '{kind}'")
    if wl_wins_dil2 is None:
        errors.append("no wins row for the wirelength objective")
    elif wl_wins_dil2 < 1:
        errors.append("wirelength objective never beat the default at "
                      "dilation <= 2 (wins_dil2 == 0)")


def check_serve(rows, errors):
    modes = set()
    saw_split = saw_corruption = False
    for lineno, row in rows:
        where = f"line {lineno}"
        kind = row.get("row")
        if kind == "latency":
            check_types(row, SERVE_LATENCY, errors, where)
            if not all(k in row for k in SERVE_LATENCY):
                continue
            if row["mode"] not in SERVE_MODES:
                errors.append(f"{where}: latency mode '{row['mode']}' "
                              f"not in {SERVE_MODES}")
            modes.add(row["mode"])
            if row["requests"] < 1:
                errors.append(f"{where}: latency row with no requests")
            if not (0 <= row["p50_us"] <= row["p99_us"]):
                errors.append(f"{where}: latency percentiles inverted: "
                              f"p50={row['p50_us']} p99={row['p99_us']}")
        elif kind == "split":
            check_types(row, SERVE_SPLIT, errors, where)
            if not all(k in row for k in SERVE_SPLIT):
                continue
            saw_split = True
            total = (row["warm"] + row["cold"] + row["degraded"]
                     + row["shed"])
            if total != row["requests"]:
                errors.append(f"{where}: verdict split sums to {total}, "
                              f"requests={row['requests']}")
        elif kind == "corruption":
            check_types(row, SERVE_CORRUPTION, errors, where)
            if not all(k in row for k in SERVE_CORRUPTION):
                continue
            saw_corruption = True
            if row["answered"] != row["requests"]:
                errors.append(f"{where}: {row['answered']} of "
                              f"{row['requests']} requests answered")
            if row["verified"] != row["answered"]:
                errors.append(f"{where}: {row['verified']} of "
                              f"{row['answered']} answers verified — an "
                              "uncertified plan escaped")
            served = row["warm"] + row["degraded"] + row["cold"]
            if served != row["answered"]:
                errors.append(f"{where}: serve verdicts sum to {served}, "
                              f"answered={row['answered']}")
        else:
            errors.append(f"{where}: unknown row type '{kind}'")
    for mode in SERVE_MODES:
        if mode not in modes:
            errors.append(f"no latency row for mode '{mode}'")
    if not saw_split:
        errors.append("no split row")
    if not saw_corruption:
        errors.append("no corruption rows")


def check_file(path, min_plan_speedup=None):
    errors = []
    rows = []
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as e:
                errors.append(f"line {lineno}: invalid JSON ({e})")
                continue
            if not isinstance(row, dict):
                errors.append(f"line {lineno}: not a JSON object")
                continue
            rows.append((lineno, row))
    if not rows:
        errors.append("no rows")

    name = path.rsplit("/", 1)[-1]
    if name.startswith("BENCH_parallel"):
        check_parallel(rows, errors, min_plan_speedup)
    elif name.startswith("BENCH_recovery"):
        check_recovery(rows, errors)
    elif name.startswith("BENCH_storm"):
        check_storm(rows, errors)
    elif name.startswith("BENCH_bounds"):
        check_bounds(rows, errors)
    elif name.startswith("BENCH_serve"):
        check_serve(rows, errors)
    else:
        errors.append(f"no schema for '{name}' (expected BENCH_parallel*, "
                      "BENCH_recovery*, BENCH_storm*, BENCH_bounds* or "
                      "BENCH_serve*)")
    return errors


def main(argv):
    min_plan_speedup = None
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--min-plan-speedup="):
            try:
                min_plan_speedup = float(arg.split("=", 1)[1])
            except ValueError:
                print(f"invalid threshold in '{arg}'", file=sys.stderr)
                return 2
        else:
            paths.append(arg)
    if not paths:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = False
    for path in paths:
        errors = check_file(path, min_plan_speedup)
        if errors:
            failed = True
            for e in errors:
                print(f"{path}: {e}", file=sys.stderr)
        else:
            print(f"{path}: ok")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
