#!/bin/sh
# Build the tree under a sanitizer and run tests against it. Uses a
# separate build directory so the regular build stays untouched.
#
#   tools/run_sanitized.sh [asan|tsan] [build-dir]
#
# asan (default): AddressSanitizer + UBSan (HJ_SANITIZE), full test
#   suite — matches the CI "sanitize" job.
# tsan: ThreadSanitizer (HJ_SANITIZE_THREAD), runs the concurrency-heavy
#   suites (recovery controller + live runs sharing caches with
#   verify_batch, the parallel engine tests, and the plan-serve daemon's
#   bounded queue + reader/worker threads) at HJ_THREADS=4.
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
mode=asan
case "${1:-}" in
  asan|tsan) mode=$1; shift ;;
esac
build=${1:-"$repo/build-$mode"}

if [ "$mode" = tsan ]; then
  cmake -B "$build" -S "$repo" -DHJ_SANITIZE_THREAD=ON \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$build" -j "$(nproc)" \
    --target test_recovery test_live test_storm test_determinism \
    test_planner test_bitword test_scaling test_hypersim test_store
  TSAN_OPTIONS=halt_on_error=1 HJ_THREADS=4 \
    ctest --test-dir "$build" --output-on-failure -j "$(nproc)" \
    -R 'Recovery|PlanBatch|LiveRun|LiveDeterminism|RunLive|Determinism|Planner|Storm|Bitword|Scaling|Network|Serve|BoundedQueue'
else
  cmake -B "$build" -S "$repo" -DHJ_SANITIZE=ON \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$build" -j "$(nproc)"
  ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir "$build" --output-on-failure -j "$(nproc)"
fi
