#!/bin/sh
# Build the full tree with AddressSanitizer + UBSan (the HJ_SANITIZE
# option) and run the test suite under it. Uses a separate build
# directory so the regular build stays untouched.
#
#   tools/run_sanitized.sh [build-dir]
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build=${1:-"$repo/build-asan"}

cmake -B "$build" -S "$repo" -DHJ_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build" -j "$(nproc)"
ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=halt_on_error=1 \
  ctest --test-dir "$build" --output-on-failure -j "$(nproc)"
