#!/usr/bin/env python3
"""Diff two line-delimited BENCH_*.json artifacts and flag regressions.

Usage: compare_bench.py [options] BASELINE CURRENT

Rows are matched by identity: every string/bool field of the row (row
type, mode, shape, workload, verdict, ...) plus an occurrence index for
repeated identities, so reordering between runs does not misalign the
diff. Numeric fields of matched rows are then compared pairwise:

  * gated metrics are direction-aware and thresholded — a change past
    the threshold in the BAD direction is a regression, in the good
    direction it is reported as an improvement:
        lower is better:  p50_us, p99_us, mean_us, seconds, cycles,
                          detect_latency, migration_cost,
                          total_migration_cost, failed, uncovered
        higher is better: speedup, delivered, wins, wins_dil2,
                          certified, verified, answered
  * every other numeric drift is informational only (counts like
    `requests` legitimately differ between --quick and full runs).

Tiny-value noise is suppressed: a gated metric whose baseline is below
the absolute floor (default 20, think microseconds) is never failed on.

Options:
  --threshold=X     default relative threshold (default 0.10 = 10%)
  --metric=NAME:X   per-metric threshold override, repeatable
                    (e.g. --metric=p99_us:0.25)
  --abs-floor=N     skip gating when the baseline value is < N
  --warn-only       print regressions but exit 0 (the CI soft gate for
                    runner-noise-prone latency rows)

Exit codes: 0 ok (or --warn-only), 1 regressions found, 2 usage/IO.
"""
import json
import sys

LOWER_IS_BETTER = {
    "p50_us", "p99_us", "mean_us", "seconds", "cycles", "detect_latency",
    "migration_cost", "total_migration_cost", "failed", "uncovered",
}
HIGHER_IS_BETTER = {
    "speedup", "delivered", "wins", "wins_dil2", "certified", "verified",
    "answered",
}


def load_rows(path):
    rows = []
    try:
        with open(path, encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                except json.JSONDecodeError as e:
                    raise SystemExit(f"{path}:{lineno}: invalid JSON ({e})")
                if not isinstance(row, dict):
                    raise SystemExit(f"{path}:{lineno}: not a JSON object")
                rows.append(row)
    except OSError as e:
        raise SystemExit(f"cannot read {path}: {e}")
    return rows


def identity(row, seen):
    """Stable match key: the row's non-numeric fields + occurrence index."""
    ident = tuple(sorted((k, v) for k, v in row.items()
                         if isinstance(v, (str, bool))))
    seen[ident] = seen.get(ident, 0) + 1
    return ident + (("#", seen[ident]),)


def index_rows(rows):
    seen, out = {}, {}
    for row in rows:
        out[identity(row, seen)] = row
    return out


def fmt_ident(key):
    return " ".join(f"{k}={v}" for k, v in key if k != "#") or "(row)"


def compare(base_rows, cur_rows, thresholds, default_threshold, abs_floor):
    regressions, notes = [], []
    base = index_rows(base_rows)
    cur = index_rows(cur_rows)
    for key in base:
        if key not in cur:
            notes.append(f"row dropped: {fmt_ident(key)}")
    for key in cur:
        if key not in base:
            notes.append(f"row added: {fmt_ident(key)}")
    for key, brow in base.items():
        crow = cur.get(key)
        if crow is None:
            continue
        where = fmt_ident(key)
        for metric, bval in brow.items():
            cval = crow.get(metric)
            if (isinstance(bval, bool) or isinstance(cval, bool)
                    or not isinstance(bval, (int, float))
                    or not isinstance(cval, (int, float))):
                continue
            if bval == cval:
                continue
            delta = (cval - bval) / bval if bval else float("inf")
            line = (f"{where}: {metric} {bval} -> {cval} "
                    f"({delta:+.1%})" if bval else
                    f"{where}: {metric} {bval} -> {cval}")
            gated = metric in LOWER_IS_BETTER or metric in HIGHER_IS_BETTER
            if not gated:
                notes.append(f"info: {line}")
                continue
            threshold = thresholds.get(metric, default_threshold)
            worse = delta > 0 if metric in LOWER_IS_BETTER else delta < 0
            if abs(bval) < abs_floor:
                notes.append(f"info (below floor {abs_floor}): {line}")
            elif worse and abs(delta) > threshold:
                regressions.append(
                    f"{line} exceeds the {threshold:.0%} threshold")
            elif abs(delta) > threshold:
                notes.append(f"improvement: {line}")
            else:
                notes.append(f"ok: {line}")
    return regressions, notes


def main(argv):
    default_threshold = 0.10
    abs_floor = 20.0
    thresholds = {}
    warn_only = False
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--threshold="):
            default_threshold = float(arg.split("=", 1)[1])
        elif arg.startswith("--metric="):
            spec = arg.split("=", 1)[1]
            if ":" not in spec:
                print(f"bad --metric spec '{spec}' (want NAME:PCT)",
                      file=sys.stderr)
                return 2
            name, pct = spec.split(":", 1)
            thresholds[name] = float(pct)
        elif arg.startswith("--abs-floor="):
            abs_floor = float(arg.split("=", 1)[1])
        elif arg == "--warn-only":
            warn_only = True
        elif arg.startswith("-"):
            print(f"unknown option '{arg}'", file=sys.stderr)
            return 2
        else:
            paths.append(arg)
    if len(paths) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    regressions, notes = compare(load_rows(paths[0]), load_rows(paths[1]),
                                 thresholds, default_threshold, abs_floor)
    for note in notes:
        print(note)
    tag = "WARN" if warn_only else "FAIL"
    for r in regressions:
        print(f"{tag}: {r}", file=sys.stderr)
    if regressions:
        print(f"{len(regressions)} regression(s) {paths[0]} -> {paths[1]}",
              file=sys.stderr)
        return 0 if warn_only else 1
    print(f"no regressions {paths[0]} -> {paths[1]}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
