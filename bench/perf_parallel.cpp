// E17 — parallel batch engine: serial-vs-N-thread speedup and (crucially)
// bit-identical results for the three batch paths built on par:: —
// coverage::sweep_3d, verify_batch and plan_batch.
//
// Emits one JSON row per (workload, thread count) to stdout; diagnostic
// text goes to stderr. Any cross-thread-count mismatch exits non-zero.
//
//   ./perf_parallel [--quick] > BENCH_parallel.json
//
// Workloads:
//   * sweep n=1..11          — the Figure 2 triple sweep (--quick: n<=9,
//                              the CI perf-smoke configuration)
//   * verify_batch, 2k plans — certify 2000 planned embeddings
//   * plan_batch, 2k shapes  — plan 2000 random shapes (shared cache)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "core/coverage.hpp"
#include "core/parallel.hpp"
#include "core/planner.hpp"
#include "core/verify.hpp"
#include "obs/obs.hpp"

using namespace hj;

namespace {

constexpr u32 kThreadCounts[] = {1, 2, 4, 8};

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void emit(const char* workload, u32 param, u32 threads, double seconds,
          double serial_seconds, bool identical,
          const std::string& extra = "") {
  std::printf("{\"exp\": \"E17\", \"workload\": \"%s\", \"size\": %u, "
              "\"threads\": %u, \"seconds\": %.4f, \"speedup\": %.2f, "
              "\"identical\": %s%s}\n",
              workload, param, threads, seconds,
              seconds > 0 ? serial_seconds / seconds : 0.0,
              identical ? "true" : "false", extra.c_str());
}

bool same_report(const VerifyReport& a, const VerifyReport& b) {
  return a.valid == b.valid && a.dilation == b.dilation &&
         a.congestion == b.congestion && a.host_dim == b.host_dim &&
         a.expansion == b.expansion && a.avg_dilation == b.avg_dilation &&
         a.avg_congestion == b.avg_congestion &&
         a.load_factor == b.load_factor &&
         a.dilation_histogram == b.dilation_histogram &&
         a.congestion_histogram == b.congestion_histogram;
}

std::vector<Shape> random_shapes(std::size_t count) {
  std::mt19937_64 rng(0xE17);
  std::uniform_int_distribution<u64> axis(2, 32);
  std::uniform_int_distribution<u32> rank(1, 3);
  std::vector<Shape> shapes;
  shapes.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    SmallVec<u64, 4> ext;
    const u32 k = rank(rng);
    for (u32 d = 0; d < k; ++d) ext.push_back(axis(rng));
    shapes.push_back(Shape{ext});
  }
  return shapes;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") {
      quick = true;
    } else {
      std::fprintf(stderr, "usage: perf_parallel [--quick]\n");
      return 2;
    }
  }

  int mismatches = 0;

  // --- sweep_3d, n = 1..11 (--quick stops at 9) ---
  const u32 sweep_max = quick ? 9 : 11;
  for (u32 n = 1; n <= sweep_max; ++n) {
    coverage::SweepCounts reference;
    double serial_seconds = 0;
    for (u32 threads : kThreadCounts) {
      par::set_thread_override(threads);
      const double t0 = now_seconds();
      const coverage::SweepCounts c = coverage::sweep_3d(n);
      const double dt = now_seconds() - t0;
      if (threads == 1) {
        reference = c;
        serial_seconds = dt;
      }
      const bool identical = c.by_method == reference.by_method &&
                             c.total == reference.total;
      if (!identical) ++mismatches;
      if (n >= 6 || threads == 1)  // tiny sweeps are pure overhead rows
        emit("sweep_3d", n, threads, dt, serial_seconds, identical);
    }
  }

  // --- verify_batch over 2000 planned embeddings ---
  const std::vector<Shape> shapes = random_shapes(2000);
  par::set_thread_override(1);
  std::vector<PlanResult> plans = plan_batch(shapes);
  std::vector<EmbeddingPtr> embs;
  embs.reserve(plans.size());
  for (const PlanResult& p : plans) embs.push_back(p.embedding);
  {
    std::vector<VerifyReport> reference;
    double serial_seconds = 0;
    for (u32 threads : kThreadCounts) {
      par::set_thread_override(threads);
      const double t0 = now_seconds();
      const std::vector<VerifyReport> reports = verify_batch(embs);
      const double dt = now_seconds() - t0;
      bool identical = true;
      if (threads == 1) {
        reference = reports;
        serial_seconds = dt;
      } else {
        for (std::size_t i = 0; i < reports.size(); ++i)
          identical = identical && same_report(reports[i], reference[i]);
      }
      if (!identical) ++mismatches;
      emit("verify_batch", 2000, threads, dt, serial_seconds, identical);
    }
  }

  // --- plan_batch over the same 2000 shapes ---
  // Canonical-shape dedup ratio, computed independently of the registry
  // so the timed rows stay observation-free.
  std::set<std::string> canonical;
  for (const Shape& s : shapes) {
    SmallVec<u64, 4> ext = s.extents();
    std::sort(ext.begin(), ext.end());
    canonical.insert(Shape{ext}.to_string());
  }
  char dedup[64];
  std::snprintf(dedup, sizeof dedup, ", \"dedup_ratio\": %.2f",
                static_cast<double>(shapes.size()) /
                    static_cast<double>(canonical.size()));
  double plan_serial_seconds = 0;
  {
    std::vector<PlanResult> reference;
    for (u32 threads : kThreadCounts) {
      par::set_thread_override(threads);
      const double t0 = now_seconds();
      std::vector<PlanResult> results = plan_batch(shapes);
      const double dt = now_seconds() - t0;
      bool identical = true;
      if (threads == 1) {
        reference = std::move(results);
        plan_serial_seconds = dt;
      } else {
        for (std::size_t i = 0; i < results.size(); ++i)
          identical = identical && results[i].plan == reference[i].plan &&
                      same_report(results[i].report, reference[i].report);
      }
      if (!identical) ++mismatches;
      emit("plan_batch", 2000, threads, dt, plan_serial_seconds, identical,
           dedup);
    }
  }

  // --- plan_batch again with the observability layer on ---
  // One extra row measuring the instrumented run and reporting the
  // registry's own view of the batch (cache traffic, dedup): both the
  // overhead check and a smoke test that the hooks actually fire.
  {
    obs::set_enabled(true);
    obs::Registry::global().reset();
    const double t0 = now_seconds();
    const std::vector<PlanResult> results = plan_batch(shapes);
    const double dt = now_seconds() - t0;
    obs::set_enabled(false);
    auto& reg = obs::Registry::global();
    const u64 lookups =
        reg.counter("plancache.lookups", obs::Kind::Timing).value();
    const u64 hits =
        reg.counter("plancache.hits", obs::Kind::Timing).value();
    const u64 unique = reg.counter("plan.batch.unique").value();
    char extra[160];
    std::snprintf(extra, sizeof extra,
                  ", \"cache_hit_rate\": %.3f, \"lookups\": %llu, "
                  "\"unique\": %llu",
                  lookups ? static_cast<double>(hits) /
                                static_cast<double>(lookups)
                          : 0.0,
                  static_cast<unsigned long long>(lookups),
                  static_cast<unsigned long long>(unique));
    const bool counts_ok = results.size() == shapes.size() &&
                           unique == canonical.size();
    if (!counts_ok) ++mismatches;
    emit("plan_batch_obs", 2000, kThreadCounts[3], dt, plan_serial_seconds,
         counts_ok, extra);
  }

  par::set_thread_override(0);
  if (mismatches) {
    std::fprintf(stderr, "E17 FAILED: %d thread-count mismatches\n",
                 mismatches);
    return 1;
  }
  std::fprintf(stderr, "E17 ok: all workloads bit-identical across thread "
               "counts\n");
  return 0;
}
