// E13 (extension) — what the mesh abstraction costs for collectives.
//
// The embeddings make mesh-logical communication cheap (dilation 2), but a
// mesh-shaped broadcast still pays the mesh diameter, while the underlying
// cube can broadcast in ceil(log2 N) rounds (Johnsson [15]). This bench
// quantifies the gap on embedded meshes, across message sizes and
// switching modes — the case for dropping to native cube collectives even
// when the computation is mesh-structured.
#include <cstdio>

#include "core/planner.hpp"
#include "hypersim/collectives.hpp"

using namespace hj;

namespace {

void row(const char* label, const sim::Schedule& s, u32 dim, u32 flits,
         sim::Switching sw) {
  sim::SimResult r =
      sim::run_schedule(s, sim::SimConfig{dim, 1, 1'000'000, sw, flits});
  std::printf("  %-26s %-8llu cycles (%llu messages)\n", label,
              static_cast<unsigned long long>(r.cycles),
              static_cast<unsigned long long>(r.messages));
}

}  // namespace

int main() {
  std::printf("E13: broadcast on a 8x8 mesh embedded in Q6\n\n");
  Planner planner;
  PlanResult mesh = planner.plan(Shape{8, 8});

  for (u32 flits : {1u, 16u}) {
    for (auto sw : {sim::Switching::StoreAndForward,
                    sim::Switching::CutThrough}) {
      std::printf("message %u flits, %s:\n", flits,
                  sw == sim::Switching::StoreAndForward ? "store-and-forward"
                                                        : "cut-through");
      row("mesh flood (corner root)",
          sim::mesh_flood_broadcast(*mesh.embedding, 0),
          mesh.embedding->host_dim(), flits, sw);
      const MeshIndex center =
          mesh.embedding->guest().shape().index(Coord{4, 4});
      row("mesh flood (center root)",
          sim::mesh_flood_broadcast(*mesh.embedding, center),
          mesh.embedding->host_dim(), flits, sw);
      row("native binomial tree",
          sim::binomial_broadcast(mesh.embedding->host_dim(),
                                  mesh.embedding->map(0)),
          mesh.embedding->host_dim(), flits, sw);
      std::printf("\n");
    }
  }
  std::printf("Reading: the mesh abstraction pays the mesh diameter (~2 "
              "sqrt(N)) per broadcast;\nthe cube's binomial tree pays log2 "
              "N — embeddings do not replace native collectives.\n");
  return 0;
}
