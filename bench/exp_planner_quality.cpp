// Planner quality sweep — beyond the paper's max-dilation statistics:
// what do the *average* dilation and congestion of the constructed
// embeddings look like across the covered domain? (Section 3.3 argues the
// direct embeddings' averages approach 1; this measures the composed
// pipeline.)
#include <cstdio>
#include <cstring>
#include <random>
#include <vector>

#include "core/parallel.hpp"
#include "core/planner.hpp"
#include "search/provider.hpp"

using namespace hj;

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], "--threads=", 10) == 0)
      par::set_thread_override(static_cast<u32>(std::atoi(argv[i] + 10)));

  std::printf("planner quality over random 3D shapes (axes in [2, 64]), "
              "%u threads\n\n", par::thread_count());
  std::mt19937_64 rng(20260707);
  std::uniform_int_distribution<u64> axis(2, 64);

  const int kTrials = 120;
  std::vector<Shape> shapes;
  shapes.reserve(kTrials);
  for (int t = 0; t < kTrials; ++t)
    shapes.push_back(Shape{axis(rng), axis(rng), axis(rng)});

  // Batch-plan the whole sweep: canonical-shape dedup + the shared
  // factor cache make this the library's intended bulk entry point.
  const std::vector<PlanResult> results = plan_batch(
      shapes, {}, [] { return search::make_search_provider(); });

  u64 minimal_dil2 = 0, larger_cube = 0;
  std::vector<double> avg_dils;
  double worst_avg = 0;
  Shape worst_shape{1};
  for (int t = 0; t < kTrials; ++t) {
    const PlanResult& r = results[static_cast<std::size_t>(t)];
    if (!r.report.valid) {
      std::printf("INVALID plan for %s!\n", shapes[static_cast<std::size_t>(t)].to_string().c_str());
      return 1;
    }
    if (r.report.minimal_expansion && r.report.dilation <= 2) {
      ++minimal_dil2;
      avg_dils.push_back(r.report.avg_dilation);
      if (r.report.avg_dilation > worst_avg) {
        worst_avg = r.report.avg_dilation;
        worst_shape = shapes[static_cast<std::size_t>(t)];
      }
    } else {
      ++larger_cube;
    }
  }

  double mean = 0;
  for (double d : avg_dils) mean += d;
  if (!avg_dils.empty()) mean /= static_cast<double>(avg_dils.size());

  std::printf("shapes tried        : %d\n", kTrials);
  std::printf("minimal + dil<=2    : %llu (%.0f%%)\n",
              static_cast<unsigned long long>(minimal_dil2),
              100.0 * static_cast<double>(minimal_dil2) / kTrials);
  std::printf("fallback (bigger Q) : %llu\n",
              static_cast<unsigned long long>(larger_cube));
  std::printf("avg dilation (mean) : %.4f over the minimal embeddings\n",
              mean);
  std::printf("avg dilation (worst): %.4f at %s\n", worst_avg,
              worst_shape.to_string().c_str());
  std::printf("\nhistogram of average dilation:\n");
  const double edges[] = {1.0, 1.05, 1.1, 1.2, 1.3, 1.5, 2.0};
  for (std::size_t b = 0; b + 1 < std::size(edges); ++b) {
    u64 count = 0;
    for (double d : avg_dils)
      if (d >= edges[b] && d < edges[b + 1]) ++count;
    std::printf("  [%.2f, %.2f): %llu\n", edges[b], edges[b + 1],
                static_cast<unsigned long long>(count));
  }
  std::printf("\nReading: the composed pipeline keeps the average dilation "
              "close to 1 (most edges are\nGray edges of the inner factors) "
              "— the paper's Section 4.1 point, measured end to end.\n");
  return 0;
}
