// E1 — Figure 1: the asymptotic fraction of k-dimensional meshes for which
// binary-reflected Gray code embedding attains minimal expansion, as a
// function of k (both panels: linear and log scale).
//
// Paper reference points: f_2(1/2) = 2(1 - ln 2) ~ 0.61,
// f_3(1/2) = 4(1 - ln2 - ln^2(2)/2) ~ 0.27 (0.2665 exactly).
#include <cmath>
#include <cstdio>

#include "stats/gray_fraction.hpp"

using namespace hj;

int main() {
  std::printf("E1 / Figure 1: fraction of k-D meshes where Gray code is "
              "minimal\n");
  std::printf("%-4s %-12s %-12s %-14s %-14s %-10s\n", "k", "closed-form",
              "monte-carlo", "domain(2^6)", "domain(2^9,MC)", "log10(f)");
  for (u32 k = 1; k <= 10; ++k) {
    const double f = stats::gray_minimal_fraction(k);
    const double mc = stats::gray_minimal_fraction_mc(k, 300'000, 17);
    const double dom6 =
        k <= 3 ? stats::gray_minimal_fraction_exact(k, 6)
               : stats::gray_minimal_fraction_domain_mc(k, 6, 300'000, 23);
    const double dom9 =
        stats::gray_minimal_fraction_domain_mc(k, 9, 300'000, 29);
    std::printf("%-4u %-12.6f %-12.6f %-14.6f %-14.6f %-10.3f\n", k, f, mc,
                dom6, dom9, std::log10(f));
  }

  std::printf("\nGray expansion distribution P(expansion = 2^beta):\n");
  std::printf("%-4s", "k");
  for (u32 b = 0; b <= 4; ++b) std::printf("  beta=%-8u", b);
  std::printf("\n");
  for (u32 k = 1; k <= 6; ++k) {
    const auto dist = stats::gray_expansion_distribution(k);
    std::printf("%-4u", k);
    for (u32 b = 0; b <= 4; ++b)
      std::printf("  %-12.6f", b < dist.size() ? dist[b] : 0.0);
    std::printf("\n");
  }

  std::printf("\npaper check: f_2 = %.4f (paper ~0.61), f_3 = %.4f (paper "
              "~0.27)\n",
              stats::gray_minimal_fraction(2), stats::gray_minimal_fraction(3));
  return 0;
}
