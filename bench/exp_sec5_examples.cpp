// E5 — the worked examples of Sections 4.2 and 5, each constructed and
// certified:
//   * 5x10x11 has more than one unit relative expansion; 6x11x7 has none.
//   * 5x6x7: the smallest-ratio axis pair (5,6) is the right pairing.
//   * 21x9x5: minimal expansion via (7x9x1) x (3x1x5), and alternatively
//     (21x3x1) x (1x3x5).
//   * 12x20 -> (3x5) x (4x4); 3x25x3 -> two 3x5 embeddings;
//     3x3x23 extends to 3x3x25.
#include <cstdio>

#include "core/coverage.hpp"
#include "core/direct.hpp"
#include "core/planner.hpp"
#include "core/product.hpp"
#include "search/provider.hpp"

using namespace hj;

namespace {

void show(const char* label, const Embedding& emb) {
  VerifyReport r = verify(emb);
  std::printf("  %-34s %s\n", label, summary(r, emb).c_str());
}

void relative_expansions(u64 l1, u64 l2, u64 l3) {
  const u64 target = ceil_pow2(l1 * l2 * l3);
  const double r12 =
      static_cast<double>(ceil_pow2(l1 * l2) * ceil_pow2(l3)) /
      static_cast<double>(target);
  const double r23 =
      static_cast<double>(ceil_pow2(l2 * l3) * ceil_pow2(l1)) /
      static_cast<double>(target);
  const double r31 =
      static_cast<double>(ceil_pow2(l3 * l1) * ceil_pow2(l2)) /
      static_cast<double>(target);
  std::printf("  %llux%llux%llu: pairings (12|3)=%.0f (23|1)=%.0f "
              "(31|2)=%.0f\n",
              static_cast<unsigned long long>(l1),
              static_cast<unsigned long long>(l2),
              static_cast<unsigned long long>(l3), r12, r23, r31);
}

}  // namespace

int main() {
  std::printf("E5: Section 4.2 / 5 worked examples\n\n");

  std::printf("relative expansions of the axis pairings (paper: 5x10x11 has "
              "several 1s, 6x11x7 none):\n");
  relative_expansions(5, 10, 11);
  relative_expansions(6, 11, 7);
  relative_expansions(5, 6, 7);
  std::printf("\n");

  std::printf("21x9x5 both decompositions of Section 4.2:\n");
  {
    MeshProductEmbedding a(*direct_embedding(Shape{7, 9, 1}),
                           *direct_embedding(Shape{3, 1, 5}));
    show("(7x9x1) x (3x1x5)", a);
    // (21x3x1) x (1x3x5): the 21x3 factor is the Section 3.3 exception
    // shape — the search provider supplies its direct embedding.
    Planner planner;
    planner.set_direct_provider(search::make_search_provider());
    auto f21x3 = planner.plan(Shape{21, 3, 1});
    auto f1x3x5 = planner.plan(Shape{1, 3, 5});
    MeshProductEmbedding b(f21x3.embedding, f1x3x5.embedding);
    show("(21x3x1) x (1x3x5)", b);
  }
  std::printf("\n");

  std::printf("planner on the catalogue examples:\n");
  Planner planner;
  for (Shape s : {Shape{12, 20}, Shape{3, 25, 3}, Shape{3, 3, 23},
                  Shape{5, 6, 7}, Shape{5, 10, 11}, Shape{6, 11, 7},
                  Shape{12, 16, 20, 32}}) {
    PlanResult r = planner.plan(s);
    std::printf("  %-12s -> %s\n       plan: %s\n", s.to_string().c_str(),
                summary(r.report, *r.embedding).c_str(), r.plan.c_str());
  }
  return 0;
}
