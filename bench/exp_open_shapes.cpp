// E11 — the paper's open shapes, revisited with this library's searcher.
//
// Section 5: "for the three-dimensional meshes of 128 nodes or less, the
// 5x5x5 mesh is the only mesh for which we do not know of a
// minimal-expansion dilation-two embedding, if it exists" (plus 5x7x7,
// 3x9x9, 5x5x10, 3x5x17 up to 256 nodes). Our backtracking search settles
// 5x5x5 POSITIVELY: the witness is committed as a table and re-verified
// here, together with 15x17 (the next (2^a-1) x (2^a+1) family member).
// The remaining four resisted a 2e9-node backtracking budget and short
// annealing runs; pass --long to attack them again.
#include <cstdio>
#include <cstring>

#include "core/direct.hpp"
#include "core/verify.hpp"
#include "search/provider.hpp"

using namespace hj;

int main(int argc, char** argv) {
  const bool long_run = argc > 1 && std::strcmp(argv[1], "--long") == 0;

  std::printf("E11: the paper's open shapes\n\n");
  std::printf("committed witnesses (found by hj::search, re-verified "
              "now):\n");
  for (const Shape& s : extra_table_shapes()) {
    auto emb = extra_embedding(s);
    VerifyReport r = verify(**emb);
    const bool ok = r.valid && r.minimal_expansion && r.dilation <= 2;
    std::printf("  %-8s %s  %s\n", s.to_string().c_str(),
                summary(r, **emb).c_str(),
                ok ? "[RESOLVES THE PAPER'S OPEN QUESTION]" : "[BROKEN]");
  }

  std::printf("\n5x5x10 also falls: it is (5x5x5) x (1x1x2) by Corollary 2 "
              "once 5x5x5 is solved\n(bench/exp_3d_small shows the planner "
              "finding this composition on its own).\n");
  std::printf("\nstill open after bounded search (budget-limited, not "
              "refuted):\n");
  std::printf("  5x7x7, 3x9x9, 3x5x17\n");

  if (long_run) {
    std::printf("\n--long: attacking with a bigger budget...\n");
    auto provider = search::make_search_provider(4'000'000'000ull,
                                                 100'000'000ull);
    for (Shape s : {Shape{5, 7, 7}, Shape{3, 9, 9}, Shape{3, 5, 17}}) {
      auto m = provider(Mesh(s), s.minimal_cube_dim());
      std::printf("  %-8s %s\n", s.to_string().c_str(),
                  m ? "FOUND (print and commit it!)" : "no witness");
      if (m) {
        for (CubeNode v : *m)
          std::printf("%llu,", static_cast<unsigned long long>(v));
        std::printf("\n");
      }
    }
  }
  return 0;
}
