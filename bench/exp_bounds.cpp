// E21 — the multi-objective cost model: optimality gaps per objective.
//
// For the paper's Section 5 shapes, a slice of the Figure-2 families
// (3*2^a x 3*2^b x {2^c, 7*2^c}) and the factorization-rich shapes where
// candidate ties exist, plan under every cost::Objective and report each
// certificate's distance from its computable lower bounds: dilation
// (Havel-Moravek / odd-cycle), wirelength and congestion (the cut bounds
// of arXiv 1807.06787), as value / bound gap curves per objective.
//
// One JSON row per (shape, objective) ("row":"bounds"): measured metrics,
// lower bounds and gaps. One row per shape ("row":"equivalence"): the
// default PlannerOptions and an explicit --objective=lexicographic must
// produce the identical plan (the bit-for-bit compatibility contract).
// One row per non-default objective ("row":"wins"): how often it strictly
// beat the default on its primary metric, and how often those wins kept
// dilation <= 2. Rows go to stdout AND BENCH_bounds.json; the schema is
// enforced by tools/check_bench.py, which re-checks gap >= 1.0, requires
// every equivalence row to be identical, and requires the wirelength
// objective to win at least one shape at dilation <= 2.
//
// `exp_bounds --quick` runs a trimmed shape list (CI perf-smoke: a few
// hundred-node shapes in seconds).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/planner.hpp"
#include "search/provider.hpp"

using namespace hj;

namespace {

FILE* g_json = nullptr;

void emit(const std::string& line) {
  std::fputs(line.c_str(), stdout);
  if (g_json) std::fputs(line.c_str(), g_json);
}

struct Planned {
  PlanResult result;
  cost::Objective objective;
};

std::string bounds_row(const Shape& shape, cost::Objective o,
                       const PlanResult& r) {
  const VerifyReport& v = r.report;
  char buf[768];
  std::snprintf(
      buf, sizeof buf,
      "{\"row\":\"bounds\",\"shape\":\"%s\",\"objective\":\"%s\","
      "\"host_dim\":%u,\"method\":\"%s\",\"nodes\":%llu,\"edges\":%llu,"
      "\"minimal\":%s,\"dilation\":%u,\"dil_lb\":%u,\"dil_gap\":%.4f,"
      "\"wirelength\":%llu,\"wl_lb\":%llu,\"wl_gap\":%.4f,"
      "\"congestion\":%u,\"cong_lb\":%u,\"cong_gap\":%.4f,"
      "\"load\":%llu,\"load_lb\":%llu}\n",
      shape.to_string().c_str(), cost::objective_name(o), v.host_dim,
      r.plan.c_str(), static_cast<unsigned long long>(v.guest_nodes),
      static_cast<unsigned long long>(v.guest_edges),
      v.minimal_expansion ? "true" : "false", v.dilation, v.bounds.dilation,
      cost::gap(v.dilation, v.bounds.dilation),
      static_cast<unsigned long long>(v.wirelength),
      static_cast<unsigned long long>(v.bounds.wirelength),
      cost::gap(static_cast<double>(v.wirelength),
                static_cast<double>(v.bounds.wirelength)),
      v.congestion, v.bounds.congestion,
      cost::gap(v.congestion, v.bounds.congestion),
      static_cast<unsigned long long>(v.load_factor),
      static_cast<unsigned long long>(v.bounds.load));
  return buf;
}

PlanResult plan_with(const Shape& shape, const PlannerOptions& opts) {
  Planner planner(opts);
  planner.set_direct_provider(search::make_search_provider());
  return planner.plan(shape);
}

/// The primary secondary metric the objective optimizes at equal cube.
u64 primary_metric(cost::Objective o, const VerifyReport& r) {
  switch (o) {
    case cost::Objective::WirelengthFirst:
      return r.wirelength;
    case cost::Objective::CongestionFirst:
      return r.congestion;
    default:
      return r.dilation;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;

  // Section 5 paper shapes, a Figure-2 family slice, and shapes with
  // factorization ties (where non-default objectives have real choices).
  std::vector<Shape> shapes = {
      Shape{3, 3, 3},  Shape{3, 3, 7},  Shape{5, 5, 8},
      Shape{5, 6, 6},  Shape{6, 6, 10}, Shape{3, 5, 12},
  };
  if (!quick) {
    for (Shape s : {Shape{6, 6, 17}, Shape{9, 12, 21}, Shape{6, 6, 8},
                    Shape{3, 6, 14}, Shape{6, 12, 7}, Shape{5, 5, 12},
                    Shape{6, 10, 10}})
      shapes.push_back(s);
  }

  g_json = std::fopen("BENCH_bounds.json", "w");
  std::printf("E21: optimality gaps per objective over %zu shapes%s\n\n",
              shapes.size(), quick ? " (--quick)" : "");

  const cost::Objective kObjectives[] = {
      cost::Objective::Lexicographic, cost::Objective::DilationFirst,
      cost::Objective::WirelengthFirst, cost::Objective::CongestionFirst};

  // shape index -> objective -> plan; filled column-major so a planner's
  // memo is reused across the shapes of one objective.
  std::vector<std::vector<PlanResult>> plans(
      shapes.size(), std::vector<PlanResult>(cost::kNumObjectives));
  for (const cost::Objective o : kObjectives) {
    PlannerOptions opts;
    opts.objective = o;
    Planner planner(opts);
    planner.set_direct_provider(search::make_search_provider());
    for (std::size_t i = 0; i < shapes.size(); ++i)
      plans[i][static_cast<u32>(o)] = planner.plan(shapes[i]);
  }

  for (std::size_t i = 0; i < shapes.size(); ++i)
    for (const cost::Objective o : kObjectives)
      emit(bounds_row(shapes[i], o, plans[i][static_cast<u32>(o)]));

  // The compatibility contract: default-constructed options and an
  // explicit lexicographic objective are the same planner.
  bool all_identical = true;
  for (const Shape& s : shapes) {
    const PlanResult def = plan_with(s, PlannerOptions{});
    PlannerOptions lex_opts;
    lex_opts.objective = *cost::parse_objective("lexicographic");
    const PlanResult lex = plan_with(s, lex_opts);
    const bool identical = def.plan == lex.plan &&
                           def.report.host_dim == lex.report.host_dim &&
                           def.report.dilation == lex.report.dilation &&
                           def.report.congestion == lex.report.congestion &&
                           def.report.wirelength == lex.report.wirelength;
    all_identical = all_identical && identical;
    char buf[512];
    std::snprintf(buf, sizeof buf,
                  "{\"row\":\"equivalence\",\"shape\":\"%s\","
                  "\"default_method\":\"%s\",\"lex_method\":\"%s\","
                  "\"identical\":%s}\n",
                  s.to_string().c_str(), def.plan.c_str(), lex.plan.c_str(),
                  identical ? "true" : "false");
    emit(buf);
  }

  // Per-objective win tallies against the default plans.
  for (const cost::Objective o :
       {cost::Objective::DilationFirst, cost::Objective::WirelengthFirst,
        cost::Objective::CongestionFirst}) {
    u32 wins = 0, wins_dil2 = 0, losses = 0;
    u64 saved = 0;
    for (std::size_t i = 0; i < shapes.size(); ++i) {
      const VerifyReport& def =
          plans[i][static_cast<u32>(cost::Objective::Lexicographic)].report;
      const VerifyReport& obj = plans[i][static_cast<u32>(o)].report;
      const u64 dv = primary_metric(o, def), ov = primary_metric(o, obj);
      if (ov < dv) {
        ++wins;
        saved += dv - ov;
        if (obj.dilation <= 2) ++wins_dil2;
      } else if (ov > dv) {
        ++losses;
      }
    }
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "{\"row\":\"wins\",\"objective\":\"%s\",\"planned\":%zu,"
                  "\"wins\":%u,\"wins_dil2\":%u,\"losses\":%u,"
                  "\"metric_saved\":%llu}\n",
                  cost::objective_name(o), shapes.size(), wins, wins_dil2,
                  losses, static_cast<unsigned long long>(saved));
    emit(buf);
  }

  if (g_json) std::fclose(g_json);
  std::printf("\nequivalence: default == lexicographic on every shape: %s\n",
              all_identical ? "yes" : "NO?!");
  std::printf("wrote BENCH_bounds.json\n");
  return all_identical ? 0 : 1;
}
