// E2 — Figure 2: the cumulative percentage of l1 x l2 x l3 meshes
// (1 <= l_i <= 2^n, n = 1..9) with a minimal-expansion dilation-<=2
// embedding under the paper's methods 1..4.
//
// Paper headline at n = 9: 28.5% / 81.5% / 82.9% / 96.1%.
//
// Every computed row is diffed against the checked-in golden counts, and
// the n = 9 row additionally against the paper's published percentages
// (tolerance ±0.05); any drift makes the binary exit non-zero, so the
// headline claim is CI-checkable — run a small max_n for a fast gate or
// the full `fig2_coverage 9` for the paper reproduction. HJ_THREADS (or
// --threads=N) sets the sweep's worker count; counts are identical at
// every thread count.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "core/coverage.hpp"
#include "core/parallel.hpp"

using namespace hj;

namespace {

struct Golden {
  u64 total;
  u64 by_method[5];  // [0] = uncovered, [1..4] = first covering method
};

// Exact sweep counts for n = 1..9, recorded from the serial sweep; the
// n = 9 row reproduces the paper's 28.5 / 81.5 / 82.9 / 96.1.
constexpr Golden kGolden[9] = {
    {8, {0, 8, 0, 0, 0}},
    {64, {0, 63, 0, 1, 0}},
    {512, {4, 395, 93, 20, 0}},
    {4096, {143, 2454, 1291, 189, 19}},
    {32768, {1900, 15121, 13938, 1082, 727}},
    {262144, {17873, 99219, 125054, 6773, 13225}},
    {2097152, {127637, 689514, 1064967, 40547, 174487}},
    {16777216, {849789, 5050442, 8761091, 271699, 1844195}},
    {134217728, {5209758, 38315283, 71055945, 1933838, 17702904}},
};

constexpr double kPaperAtN9[4] = {28.5, 81.5, 82.9, 96.1};
constexpr double kTolerance = 0.05;

}  // namespace

int main(int argc, char** argv) {
  u32 max_n = 9;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0)
      par::set_thread_override(static_cast<u32>(std::atoi(argv[i] + 10)));
    else
      max_n = static_cast<u32>(std::atoi(argv[i]));
  }

  std::printf("E2 / Figure 2: cumulative %% of 3D meshes reaching minimal "
              "expansion with dilation <= 2 (%u threads)\n",
              par::thread_count());
  std::printf("%-4s %-10s %-10s %-10s %-10s %-10s %-8s\n", "n", "S1(gray)",
              "S2(pair)", "S3(3x3xL)", "S4(split)", "uncovered", "time");
  int failures = 0;
  for (u32 n = 1; n <= max_n; ++n) {
    const auto t0 = std::chrono::steady_clock::now();
    const coverage::SweepCounts c = coverage::sweep_3d(n);
    const double dt =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    std::printf("%-4u %-10.1f %-10.1f %-10.1f %-10.1f %-10.1f %-8.2fs\n", n,
                c.cumulative_percent(1), c.cumulative_percent(2),
                c.cumulative_percent(3), c.cumulative_percent(4),
                100.0 - c.cumulative_percent(4), dt);
    if (n <= 9) {
      const Golden& g = kGolden[n - 1];
      bool row_ok = c.total == g.total;
      for (u32 m = 0; m < 5; ++m) row_ok = row_ok && c.by_method[m] == g.by_method[m];
      if (!row_ok) {
        std::printf("  DRIFT at n=%u: counts differ from the recorded "
                    "golden sweep\n", n);
        ++failures;
      }
    }
    if (n == 9) {
      for (u32 i = 1; i <= 4; ++i) {
        const double got = c.cumulative_percent(i);
        if (std::fabs(got - kPaperAtN9[i - 1]) > kTolerance) {
          std::printf("  DRIFT at n=9: S%u = %.2f, paper says %.1f "
                      "(tolerance %.2f)\n", i, got, kPaperAtN9[i - 1],
                      kTolerance);
          ++failures;
        }
      }
    }
  }
  std::printf("\npaper at n=9: S1=28.5  S2=81.5  S3=82.9  S4=96.1\n");
  if (failures) {
    std::printf("FAILED: %d drift(s) from the recorded/published figures\n",
                failures);
    return 1;
  }
  return 0;
}
