// E2 — Figure 2: the cumulative percentage of l1 x l2 x l3 meshes
// (1 <= l_i <= 2^n, n = 1..9) with a minimal-expansion dilation-<=2
// embedding under the paper's methods 1..4.
//
// Paper headline at n = 9: 28.5% / 81.5% / 82.9% / 96.1%.
#include <chrono>
#include <cstdio>

#include "core/coverage.hpp"

using namespace hj;

int main(int argc, char** argv) {
  u32 max_n = 9;
  if (argc > 1) max_n = static_cast<u32>(std::atoi(argv[1]));

  std::printf("E2 / Figure 2: cumulative %% of 3D meshes reaching minimal "
              "expansion with dilation <= 2\n");
  std::printf("%-4s %-10s %-10s %-10s %-10s %-10s %-8s\n", "n", "S1(gray)",
              "S2(pair)", "S3(3x3xL)", "S4(split)", "uncovered", "time");
  for (u32 n = 1; n <= max_n; ++n) {
    const auto t0 = std::chrono::steady_clock::now();
    const coverage::SweepCounts c = coverage::sweep_3d(n);
    const double dt =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    std::printf("%-4u %-10.1f %-10.1f %-10.1f %-10.1f %-10.1f %-8.2fs\n", n,
                c.cumulative_percent(1), c.cumulative_percent(2),
                c.cumulative_percent(3), c.cumulative_percent(4),
                100.0 - c.cumulative_percent(4), dt);
  }
  std::printf("\npaper at n=9: S1=28.5  S2=81.5  S3=82.9  S4=96.1\n");
  return 0;
}
