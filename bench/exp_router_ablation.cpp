// Ablation — how much the congestion router buys (DESIGN.md design-choice
// list). A node map fixes dilation but not congestion: dilation-2 edges
// choose between two midpoints. We compare
//   * e-cube default routing (always the low-bit-first midpoint),
//   * greedy assignment,
//   * greedy + local improvement passes (the library default),
// on every direct table and on composed embeddings.
#include <cstdio>

#include "core/direct.hpp"
#include "core/io.hpp"
#include "core/planner.hpp"
#include "core/router.hpp"
#include "core/verify.hpp"

using namespace hj;

namespace {

void compare(const char* label, const Embedding& source) {
  // Materialize the node map, then route three ways.
  auto text_emb = io::from_text(io::to_text(source));
  const Mesh& guest = text_emb->guest();
  const std::vector<CubeNode>& map = text_emb->node_map();

  ExplicitEmbedding ecube(guest, text_emb->host_dim(), map);
  const VerifyReport r0 = verify(ecube);

  ExplicitEmbedding greedy(guest, text_emb->host_dim(), map);
  route_minimize_congestion(greedy, /*max_passes=*/0);
  const VerifyReport r1 = verify(greedy);

  ExplicitEmbedding routed(guest, text_emb->host_dim(), map);
  const RouteStats stats = route_minimize_congestion(routed);
  const VerifyReport r2 = verify(routed);

  std::printf("  %-22s cong: e-cube %u, greedy %u, +%u passes -> %u   "
              "(avg %.3f -> %.3f)\n",
              label, r0.congestion, r1.congestion, stats.passes_used,
              r2.congestion, r0.avg_congestion, r2.avg_congestion);
}

}  // namespace

int main() {
  std::printf("router ablation: midpoint choice for dilation-2 edges\n\n");
  for (const Shape& s : direct_table_shapes())
    compare(s.to_string().c_str(), **direct_embedding(s));
  for (const Shape& s : extra_table_shapes())
    compare((s.to_string() + " (extra)").c_str(), **extra_embedding(s));

  Planner planner;
  compare("12x20 (planned)", *planner.plan(Shape{12, 20}).embedding);
  compare("21x9x5 (planned)", *planner.plan(Shape{21, 9, 5}).embedding);
  return 0;
}
