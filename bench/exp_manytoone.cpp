// E8 — Section 7: many-to-one embeddings.
//
// The paper's worked example: a 19x19 mesh embeds in a 5-cube with
// dilation one and load factor 15 (via the 3*2^3 x 5*2^2 = 24x20 mesh),
// against an optimal load of ceil(361/32) = 12. We reproduce it exactly
// and sweep a table of mesh/cube combinations.
#include <cstdio>

#include "manytoone/manytoone.hpp"

using namespace hj;

int main() {
  std::printf("E8: many-to-one embeddings (Section 7)\n\n");

  {
    m2o::ContractPlan p = m2o::contract_to_cube(Shape{19, 19}, 5);
    std::printf("paper example 19x19 -> Q5:\n");
    std::printf("  load factor %llu (paper: 15), optimal %llu (paper: 12), "
                "dilation %u (paper: 1)\n",
                static_cast<unsigned long long>(p.report.load_factor),
                static_cast<unsigned long long>(p.optimal_load),
                p.report.dilation);
    std::printf("  plan: %s\n\n", p.plan.c_str());
  }

  std::printf("%-12s %-4s %-6s %-8s %-7s %-5s %-6s %s\n", "mesh", "n",
              "load", "optimal", "ratio", "dil", "cong", "corollary5");
  struct Case {
    Shape shape;
    u32 n;
  };
  for (const Case& c :
       {Case{Shape{19, 19}, 5}, Case{Shape{19, 19}, 4},
        Case{Shape{19, 19}, 6}, Case{Shape{100, 100}, 8},
        Case{Shape{9, 9, 9}, 6}, Case{Shape{33, 65}, 8},
        Case{Shape{127, 127}, 10}, Case{Shape{5, 6, 7}, 4},
        Case{Shape{512}, 5}, Case{Shape{31, 17, 9}, 9}}) {
    m2o::ContractPlan p = m2o::contract_to_cube(c.shape, c.n);
    std::printf("%-12s %-4u %-6llu %-8llu %-7.2f %-5u %-6u %s\n",
                c.shape.to_string().c_str(), c.n,
                static_cast<unsigned long long>(p.report.load_factor),
                static_cast<unsigned long long>(p.optimal_load),
                static_cast<double>(p.report.load_factor) /
                    static_cast<double>(p.optimal_load),
                p.report.dilation, p.report.congestion,
                m2o::corollary5_condition(c.shape, c.n) ? "holds" : "fails");
  }
  std::printf("\nWhere the Corollary 5 condition holds, load/optimal <= 2; "
              "where it fails, the paper\npromises nothing (the scheme still "
              "returns its best decomposition).\n");
  return 0;
}
