// E6 — Section 4.1: the average dilation of a Corollary 2 product whose
// inner factor is a power-of-two Gray mesh:
//
//   exact:  1 + sum_i (d2(i)-1) * seam_edges(i) / total_edges
//   approx: 1 + sum_i (d2(i)-1) / (k * 2^{n_i})
//
// where d2(i) is the average dilation of the outer factor's axis-i edges.
// The bench builds such products around the 3x5 and 3x3x7 direct tables,
// measures the true average with the verifier, and tabulates both formulas
// — including the paper's observation that growing the inner axes drives
// the average toward 1. The factor-order ablation (inner and outer
// swapped) shows why the Gray factor must be traversed fastest.
#include <cstdio>
#include <vector>

#include "core/direct.hpp"
#include "core/product.hpp"
#include "core/verify.hpp"

using namespace hj;

namespace {

/// Average dilation of the outer embedding's edges along each axis.
std::vector<double> axis_avg_dilation(const Embedding& emb) {
  const u32 k = emb.guest().dims();
  std::vector<double> sum(k, 0.0);
  std::vector<u64> cnt(k, 0);
  emb.guest().for_each_edge([&](const MeshEdge& e) {
    sum[e.axis] += static_cast<double>(emb.edge_path(e).size() - 1);
    ++cnt[e.axis];
  });
  for (u32 i = 0; i < k; ++i)
    if (cnt[i]) sum[i] /= static_cast<double>(cnt[i]);
  return sum;
}

void run_case(const char* label, EmbeddingPtr outer, const Shape& inner_pows) {
  auto inner = std::make_shared<GrayEmbedding>(Mesh(inner_pows));
  MeshProductEmbedding prod(inner, outer);
  const VerifyReport r = verify(prod);

  // Exact formula.
  const std::vector<double> d2 = axis_avg_dilation(*outer);
  const Shape& so = outer->guest().shape();
  const Shape& sp = prod.guest().shape();
  const u32 k = so.dims();
  double extra = 0.0;
  for (u32 i = 0; i < k; ++i) {
    const u64 seams =
        (so[i] - 1) * (sp.num_nodes() / sp[i]) * (inner_pows[i]) /
        inner_pows[i];  // (l2i - 1) * lines * inner positions = below
    // seam edges along axis i: (l2i - 1) * prod_{j != i} (l2j * 2^{n_j})
    const u64 seam_edges = (so[i] - 1) * (sp.num_nodes() / sp[i]);
    (void)seams;
    extra += (d2[i] - 1.0) * static_cast<double>(seam_edges);
  }
  const double exact =
      1.0 + extra / static_cast<double>(prod.guest().num_edges());
  double approx = 1.0;
  for (u32 i = 0; i < k; ++i)
    approx += (d2[i] - 1.0) /
              (static_cast<double>(k) * static_cast<double>(inner_pows[i]));

  // Order ablation: outer traversed fastest instead.
  MeshProductEmbedding swapped(outer, inner);
  const VerifyReport rs = verify(swapped);

  std::printf("  %-28s measured %.4f | exact %.4f | approx %.4f | "
              "swapped-order %.4f\n",
              label, r.avg_dilation, exact, approx, rs.avg_dilation);
}

}  // namespace

int main() {
  std::printf("E6: average dilation of Gray x direct products "
              "(Section 4.1)\n\n");
  auto d35 = *direct_embedding(Shape{3, 5});
  for (u64 g : {u64{2}, u64{4}, u64{8}, u64{16}}) {
    char label[64];
    std::snprintf(label, sizeof label, "(%llux%llu gray) x (3x5)",
                  static_cast<unsigned long long>(g),
                  static_cast<unsigned long long>(g));
    run_case(label, d35, Shape{g, g});
  }
  std::printf("\n");
  auto d337 = *direct_embedding(Shape{3, 3, 7});
  for (u64 g : {u64{2}, u64{4}, u64{8}}) {
    char label[64];
    std::snprintf(label, sizeof label, "(%llu^3 gray) x (3x3x7)",
                  static_cast<unsigned long long>(g));
    run_case(label, d337, Shape{g, g, g});
  }
  std::printf("\nThe measured column must match 'exact' to float precision; "
              "'approx' converges as the\ninner axes grow; the swapped "
              "order is strictly worse (Section 4.1's ordering rule).\n");
  return 0;
}
