// E4 — Section 5 claim: among 3D meshes with at most 128 nodes, 5x5x5 is
// the only one without a known minimal-expansion dilation-2 embedding; up
// to 256 nodes there are four more: 5x7x7, 3x9x9, 5x5x10, 3x5x17.
//
// Two layers of reproduction:
//   (a) arithmetic (the paper's methods 1-4 membership) -> exact exception
//       sets;
//   (b) constructive (the planner + search) -> which exceptions this
//       library resolves beyond the paper (5x5x5 falls to search).
#include <cstdio>
#include <vector>

#include "core/coverage.hpp"
#include "core/planner.hpp"
#include "search/provider.hpp"

using namespace hj;

int main() {
  std::printf("E4: 3D meshes up to 256 nodes without minimal-expansion "
              "dilation-2 coverage\n\n");

  std::vector<Shape> uncovered;
  for (u64 a = 1; a <= 256; ++a)
    for (u64 b = a; a * b <= 256; ++b)
      for (u64 c = b; a * b * c <= 256; ++c)
        if (coverage::first_method(a, b, c) == 0)
          uncovered.push_back(Shape{a, b, c});

  std::printf("arithmetic exceptions (paper methods 1-4):\n");
  for (const Shape& s : uncovered) {
    std::printf("  %-10s (%llu nodes)%s\n", s.to_string().c_str(),
                static_cast<unsigned long long>(s.num_nodes()),
                s.num_nodes() <= 128 ? "  <= 128" : "");
  }
  std::printf("paper expects: 5x5x5 (<=128); 5x7x7, 3x9x9, 5x5x10, 3x5x17 "
              "(<=256)\n\n");

  std::printf("constructive attack with the search provider:\n");
  Planner p;
  p.set_direct_provider(search::make_search_provider(60'000'000));
  for (const Shape& s : uncovered) {
    PlanResult r = p.plan(s);
    const bool solved = r.report.valid && r.report.minimal_expansion &&
                        r.report.dilation <= 2;
    std::printf("  %-10s %s  (dil %u, exp %.3f)  plan: %s\n",
                s.to_string().c_str(), solved ? "SOLVED " : "open   ",
                r.report.dilation, r.report.expansion, r.plan.c_str());
  }
  return 0;
}
