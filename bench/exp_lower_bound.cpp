// E9 — Theorem 1 (Havel & Moravek): a dilation-one embedding of an
// l1 x ... x lk mesh needs at least sum_i ceil(log2 l_i) cube dimensions.
// The backtracking searcher verifies the bound exhaustively on small
// shapes: below the bound every search space is refuted; at the bound the
// Gray witness is found.
#include <cstdio>

#include "search/backtrack.hpp"

using namespace hj;
using namespace hj::search;

int main() {
  std::printf("E9: Havel-Moravek dilation-1 lower bound, verified "
              "exhaustively\n\n");
  std::printf("%-10s %-6s %-10s %-22s %-22s\n", "mesh", "bound", "minimal",
              "search at minimal dim", "search at bound");

  // Gating: a "FOUND?!" (embedding below the bound) or "MISSING?!"
  // (no witness at the bound) row refutes Theorem 1 — the run must fail,
  // not just print, because the cost model's dilation floor builds on it.
  u32 anomalies = 0;
  for (Shape s : {Shape{3, 3}, Shape{3, 5}, Shape{3, 6}, Shape{5, 5},
                  Shape{3, 3, 3}, Shape{5, 6}, Shape{7, 9}, Shape{3, 3, 7}}) {
    u32 bound = 0;
    for (u32 i = 0; i < s.dims(); ++i) bound += log2_ceil(s[i]);
    const u32 minimal = s.minimal_cube_dim();

    BacktrackOptions o;
    o.max_dilation = 1;
    o.node_budget = 200'000'000;
    char below[64] = "(bound == minimal)";
    if (minimal < bound) {
      auto r = backtrack_search(Mesh(s), minimal, o);
      if (r.map) ++anomalies;
      std::snprintf(below, sizeof below, "%s (%llu nodes)",
                    r.exhausted && !r.map ? "refuted"
                    : r.map              ? "FOUND?!"
                                         : "budget out",
                    static_cast<unsigned long long>(r.nodes_expanded));
    }
    auto at = backtrack_search(Mesh(s), bound, o);
    if (!at.map) ++anomalies;
    char atb[64];
    std::snprintf(atb, sizeof atb, "%s (%llu nodes)",
                  at.map ? "witness found" : "MISSING?!",
                  static_cast<unsigned long long>(at.nodes_expanded));
    std::printf("%-10s %-6u %-10u %-22s %-22s\n", s.to_string().c_str(),
                bound, minimal, below, atb);
  }
  std::printf("\nEvery row with minimal < bound must read 'refuted', and "
              "every bound column\n'witness found' — Theorem 1 is tight on "
              "these shapes.\n");
  if (anomalies) {
    std::printf("E9: %u anomalous row(s) — Theorem 1 violated?!\n",
                anomalies);
    return 1;
  }
  return 0;
}
