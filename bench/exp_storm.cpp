// E20 — fault storms: survival under correlated failure pressure, and
// what graceful degradation costs on big cubes.
//
// For meshes filling 2^10-, 2^12- and 2^14-node cubes, generate seeded
// correlated storms (StormGenerator: regional Hamming-ball clusters,
// cascading link hazards, bursty arrival trains, optional flapping
// links) and replay each against a live stencil run with the full
// recovery stack: escalating ladder under the per-epoch backoff budget,
// capacity-limited quarantine with LRU probing, storm-aware watchdog.
// Every run terminates in an explicit verdict — certified, degraded
// (with uncovered-node report and, when repair is provably impossible,
// a lower-bound witness), or failed — never a thrash loop.
//
// One JSON row per run ("row":"storm"): verdict, delivery accounting,
// epochs, quarantine traffic, denied repairs, deferred watchdogs. One
// row per (shape, kind, intensity) cell ("row":"survival"): the
// certified/degraded/failed split across seeds — the survival curve vs
// storm intensity. Rows go to stdout AND BENCH_storm.json; the schema
// is enforced by tools/check_bench.py.
//
// `exp_storm --quick` runs a small-cube smoke configuration (CI: a
// 200-arrival storm on a few-hundred-node cube in seconds).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "hypersim/live.hpp"
#include "hypersim/storm.hpp"
#include "manytoone/manytoone.hpp"
#include "search/provider.hpp"

using namespace hj;

namespace {

FILE* g_json = nullptr;

void emit(const std::string& line) {
  std::fputs(line.c_str(), stdout);
  if (g_json) std::fputs(line.c_str(), g_json);
}

struct Tally {
  u32 runs = 0;
  u32 certified = 0;
  u32 degraded = 0;
  u32 failed = 0;
};

std::string storm_row(const std::string& shape, u32 host_dim,
                      const std::string& method, const sim::StormSpec& spec,
                      const sim::Storm& storm,
                      const sim::LiveRunResult& live) {
  char buf[768];
  std::snprintf(
      buf, sizeof buf,
      "{\"row\":\"storm\",\"shape\":\"%s\",\"host_dim\":%u,"
      "\"method\":\"%s\",\"kind\":\"%s\",\"events\":%u,\"seed\":%llu,"
      "\"arrivals\":%u,\"flapping\":%llu,\"verdict\":\"%s\","
      "\"messages\":%llu,\"delivered\":%llu,\"failed\":%llu,"
      "\"epochs\":%u,\"repairs\":%llu,\"quarantined\":%llu,"
      "\"quarantine_evictions\":%llu,\"repairs_denied\":%llu,"
      "\"deferred_watchdogs\":%llu,\"uncovered\":%llu,\"witness\":%s,"
      "\"cycles\":%llu}\n",
      shape.c_str(), host_dim, method.c_str(),
      sim::storm_kind_name(spec.kind), spec.events,
      static_cast<unsigned long long>(spec.seed),
      storm.stats.node_events + storm.stats.link_events,
      static_cast<unsigned long long>(storm.flapping.size()),
      sim::verdict_name(live.verdict),
      static_cast<unsigned long long>(live.messages),
      static_cast<unsigned long long>(live.delivered),
      static_cast<unsigned long long>(live.failed), live.epochs,
      static_cast<unsigned long long>(live.log.size()),
      static_cast<unsigned long long>(live.quarantined),
      static_cast<unsigned long long>(live.quarantine_evictions),
      static_cast<unsigned long long>(live.repairs_denied),
      static_cast<unsigned long long>(live.deferred_watchdogs),
      static_cast<unsigned long long>(live.uncovered.size()),
      live.witness.empty() ? "false" : "true",
      static_cast<unsigned long long>(live.cycles));
  return buf;
}

std::string survival_row(const std::string& shape, u32 host_dim,
                         const std::string& method, sim::StormKind kind,
                         u32 events, const Tally& t) {
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "{\"row\":\"survival\",\"shape\":\"%s\",\"host_dim\":%u,"
      "\"method\":\"%s\",\"kind\":\"%s\",\"events\":%u,\"runs\":%u,"
      "\"certified\":%u,\"degraded\":%u,\"failed\":%u}\n",
      shape.c_str(), host_dim, method.c_str(), sim::storm_kind_name(kind),
      events, t.runs, t.certified, t.degraded, t.failed);
  return buf;
}

/// One survival-curve cell: `seeds` storms of the given kind/intensity
/// against one planned embedding, then the aggregate row.
void run_cell(const PlanResult& plan, sim::StormKind kind, u32 events,
              u32 flapping, u32 seeds) {
  const std::string shape = plan.embedding->guest().shape().to_string();
  const u32 host_dim = plan.embedding->host_dim();
  // "Method" of the base embedding: its plan derivation, which names the
  // decomposition that produced it (direct / gray product / subcube...).
  const std::string method = plan.plan;
  Tally tally;
  for (u32 seed = 1; seed <= seeds; ++seed) {
    sim::StormSpec spec;
    spec.cube_dim = host_dim;
    spec.kind = kind;
    spec.events = events;
    spec.flapping_links = flapping;
    spec.seed = seed;
    // Compress the arrival train into the run's active window: bursts
    // land every few cycles from cycle 2, so repair epochs and fresh
    // arrivals overlap (sustained pressure) instead of the storm raging
    // over an already-drained network.
    spec.first_cycle = 2;
    spec.burst_size = 16;
    spec.burst_spacing = 2;
    spec.intra_burst_spacing = 0;
    const sim::Storm storm = sim::StormGenerator(spec).generate();

    sim::FaultModel faults;
    storm.install_flapping(faults);
    sim::LiveOptions opts;
    opts.sim.message_flits = 4;
    opts.sim.faults = &faults;
    opts.recovery.direct_provider = search::make_search_provider();
    opts.recovery.degrade_provider = m2o::make_degrade_provider();
    const sim::LiveRunResult live =
        sim::run_stencil_with_recovery(plan.embedding, storm.schedule, opts);

    ++tally.runs;
    switch (live.verdict) {
      case sim::Verdict::Certified: ++tally.certified; break;
      case sim::Verdict::Degraded: ++tally.degraded; break;
      case sim::Verdict::Failed: ++tally.failed; break;
    }
    emit(storm_row(shape, host_dim, method, spec, storm, live));
  }
  emit(survival_row(shape, host_dim, method, kind, events, tally));
}

PlanResult plan_shape(const Shape& shape) {
  Planner planner;
  planner.set_direct_provider(search::make_search_provider());
  return planner.plan(shape);
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  g_json = std::fopen("BENCH_storm.json", "w");
  if (!g_json)
    std::fprintf(stderr, "warning: cannot open BENCH_storm.json\n");

  if (quick) {
    // CI smoke: a 200-arrival regional storm (plus flapping) on a
    // 256-node cube — every storm mechanism, seconds of runtime. 5x6x8
    // leaves 16 spare hosts, so the migrate rung has somewhere to go.
    const PlanResult plan = plan_shape(Shape{{5, 6, 8}});  // 240 on Q8
    run_cell(plan, sim::StormKind::Regional, 200, 2, 2);
    run_cell(plan, sim::StormKind::Cascading, 60, 0, 1);
  } else {
    // Survival curves vs storm intensity, 2^10 / 2^12 / 2^14-node hosts.
    // The curve shapes leave spare capacity (expansion > 1) so the cheap
    // rungs (reroute / migrate) can keep runs certified until the storm
    // eats the spares; the full-occupancy 16^3 cell has no spares at all,
    // so any node death forces the replan rung — pigeonhole rules out
    // every one-to-one repair and survival comes from the many-to-one
    // contraction (Section 7), the other face of graceful degradation.
    const PlanResult q10 = plan_shape(Shape{{7, 9, 13}});     // 819 on Q10
    const PlanResult q12 = plan_shape(Shape{{11, 13, 23}});   // 3289 on Q12
    const PlanResult q12f = plan_shape(Shape{{16, 16, 16}});  // 4096 on Q12
    const PlanResult q14 = plan_shape(Shape{{13, 25, 41}});   // 13325 on Q14
    for (const u32 events : {50u, 200u, 400u}) {
      run_cell(q10, sim::StormKind::Regional, events, 0, 3);
      run_cell(q12, sim::StormKind::Regional, events, 0, 3);
    }
    run_cell(q12f, sim::StormKind::Regional, 200, 0, 2);
    // Correlated-kind coverage on the acceptance cube (Q12): cascading
    // hazards, and a mixed storm with flapping links driving the
    // quarantine LRU.
    run_cell(q12, sim::StormKind::Cascading, 200, 0, 2);
    run_cell(q12, sim::StormKind::Mixed, 200, 4, 2);
    // Big-cube point: one 200-arrival regional storm on 2^14 nodes.
    run_cell(q14, sim::StormKind::Regional, 200, 0, 1);
  }

  if (g_json) std::fclose(g_json);
  return 0;
}
