// E14 (extension) — Cannon's algorithm across embeddings: the end-to-end
// cost of the embedding choice for the paper's motivating application.
//
// Same computation, same machine-cycle model, four placements of a 6x6
// process grid:
//   * planner torus (Section 6, wrap channels dilation <= 2)
//   * planner mesh (no wrap channels: cyclic shifts pay the long way back)
//   * Gray torus on 8x8 (expansion ~1.8: idle processors, dilation 1)
//   * Gray mesh without wrap
#include <cstdio>
#include <random>

#include "core/planner.hpp"
#include "linalg/cannon.hpp"
#include "torus/torus.hpp"

using namespace hj;

namespace {

void run(const char* label, const Embedding& emb, u64 m,
         const std::vector<double>& A, const std::vector<double>& B,
         const std::vector<double>& ref) {
  for (u32 flits : {1u, 8u}) {
    la::CannonResult r = la::cannon_multiply(emb, m, A, B, flits);
    double err = 0;
    for (std::size_t i = 0; i < ref.size(); ++i)
      err = std::max(err, std::abs(r.C[i] - ref[i]));
    std::printf("  %-28s tile=%u flits: comm %-5llu (skew %-4llu) Q%u %s\n",
                label, flits, static_cast<unsigned long long>(r.comm_cycles),
                static_cast<unsigned long long>(r.skew_cycles),
                emb.host_dim(), err < 1e-9 ? "ok" : "WRONG");
  }
}

}  // namespace

int main() {
  const u64 p = 6, m = 24;
  std::mt19937_64 rng(99);
  std::uniform_real_distribution<double> val(-1.0, 1.0);
  std::vector<double> A(m * m), B(m * m);
  for (double& v : A) v = val(rng);
  for (double& v : B) v = val(rng);
  const std::vector<double> ref = la::reference_multiply(m, A, B);

  std::printf("E14: Cannon's algorithm, %llux%llu matrices on a %llux%llu "
              "process grid\n\n",
              static_cast<unsigned long long>(m),
              static_cast<unsigned long long>(m),
              static_cast<unsigned long long>(p),
              static_cast<unsigned long long>(p));

  torus::TorusPlanner tp;
  Planner mp;
  run("planner torus 6x6", *tp.plan(Shape{p, p}).embedding, m, A, B, ref);
  run("planner mesh 6x6", *mp.plan(Shape{p, p}).embedding, m, A, B, ref);
  GrayEmbedding gray_torus{Mesh::torus(Shape{8, 8})};
  // Gray 8x8 torus: run the same 6x6 logical grid on its top-left corner?
  // Cannon needs the wrap channels of the full ring, so instead compare a
  // power-of-two grid where Gray is the natural choice:
  std::printf("\npower-of-two grid for reference (8x8, m=24):\n");
  run("gray torus 8x8", gray_torus, 24, A, B, ref);
  GrayEmbedding gray_mesh{Mesh(Shape{8, 8})};
  run("gray mesh 8x8", gray_mesh, 24, A, B, ref);

  std::printf("\nReading: the torus embedding's wrap channels keep every "
              "shift at <= 2 hops; without\nthem the wrap messages cross "
              "the embedded grid and dominate the skew phase.\n");
  return 0;
}
