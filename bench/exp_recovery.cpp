// E18 — live recovery: when faults arrive mid-run, what does each rung of
// the escalation ladder cost, and what does the ladder save over always
// replanning?
//
// For the Section 5 example shapes, replay seeded random FaultSchedules
// (>= 3 mid-run arrivals each) against a live stencil exchange twice: once
// with the full ladder (reroute / migrate / replan, cheapest certified
// rung wins) and once with the force_replan baseline. One JSON row per
// (shape, trial, mode, repair epoch): detection latency (cycles from
// arrival to the detector pausing the run), rung chosen, migration cost,
// post-repair dilation/congestion; plus a summary row per run with total
// cycles and delivery accounting. Rows go to stdout AND to
// BENCH_recovery.json in the working directory.
#include <cstdio>
#include <string>
#include <vector>

#include "hypersim/live.hpp"
#include "manytoone/manytoone.hpp"
#include "search/provider.hpp"

using namespace hj;

namespace {

FILE* g_json = nullptr;

void emit(const std::string& line) {
  std::fputs(line.c_str(), stdout);
  if (g_json) std::fputs(line.c_str(), g_json);
}

std::string epoch_row(const char* shape, u32 trial, const char* mode,
                      u32 epoch, const sim::RecoveryEpochLog& e) {
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "{\"shape\":\"%s\",\"trial\":%u,\"mode\":\"%s\",\"row\":\"epoch\","
      "\"epoch\":%u,\"arrival_cycle\":%llu,\"detect_cycle\":%llu,"
      "\"detect_latency\":%llu,\"fault\":\"%s\",\"rung\":\"%s\","
      "\"moved_nodes\":%llu,\"migration_cost\":%llu,\"dilation\":%u,"
      "\"congestion\":%u}\n",
      shape, trial, mode, epoch,
      static_cast<unsigned long long>(e.arrival_cycle),
      static_cast<unsigned long long>(e.detect_cycle),
      static_cast<unsigned long long>(e.detect_latency), e.fault.c_str(),
      e.rung.c_str(), static_cast<unsigned long long>(e.moved_nodes),
      static_cast<unsigned long long>(e.migration_cost), e.dilation,
      e.congestion);
  return buf;
}

std::string summary_row(const char* shape, u32 trial, const char* mode,
                        const sim::LiveRunResult& r, u64 total_cost) {
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "{\"shape\":\"%s\",\"trial\":%u,\"mode\":\"%s\",\"row\":\"run\","
      "\"ok\":%s,\"cycles\":%llu,\"messages\":%llu,\"delivered\":%llu,"
      "\"failed\":%llu,\"epochs\":%u,\"repairs\":%zu,"
      "\"total_migration_cost\":%llu,\"final_dilation\":%u,"
      "\"final_congestion\":%u,\"final_load\":%llu}\n",
      shape, trial, mode, r.ok ? "true" : "false",
      static_cast<unsigned long long>(r.cycles),
      static_cast<unsigned long long>(r.messages),
      static_cast<unsigned long long>(r.delivered),
      static_cast<unsigned long long>(r.failed), r.epochs, r.log.size(),
      static_cast<unsigned long long>(total_cost), r.report.dilation,
      r.report.congestion,
      static_cast<unsigned long long>(r.report.load_factor));
  return buf;
}

void run_shape(const Shape& shape) {
  Planner planner;
  planner.set_direct_provider(search::make_search_provider());
  const PlanResult plan = planner.plan(shape);
  const std::string name = shape.to_string();

  for (u32 trial = 0; trial < 3; ++trial) {
    // >= 3 arrivals per schedule: 2 node deaths + 2 link cuts, spaced so
    // the run is still draining when they land.
    const sim::FaultSchedule schedule = sim::FaultSchedule::random(
        plan.embedding->host_dim(), /*node_events=*/2, /*link_events=*/2,
        /*first_cycle=*/3, /*spacing=*/8, /*seed=*/1000 + trial);
    for (const bool force_replan : {false, true}) {
      sim::LiveOptions opts;
      opts.sim.message_flits = 4;
      opts.recovery.force_replan = force_replan;
      opts.recovery.direct_provider = search::make_search_provider();
      opts.recovery.degrade_provider = m2o::make_degrade_provider();
      const sim::LiveRunResult live =
          sim::run_stencil_with_recovery(plan.embedding, schedule, opts);
      const char* mode = force_replan ? "replan_baseline" : "ladder";
      u64 total_cost = 0;
      for (std::size_t i = 0; i < live.log.size(); ++i) {
        total_cost += live.log[i].migration_cost;
        emit(epoch_row(name.c_str(), trial, mode, static_cast<u32>(i),
                       live.log[i]));
      }
      emit(summary_row(name.c_str(), trial, mode, live, total_cost));
    }
  }
}

}  // namespace

int main() {
  g_json = std::fopen("BENCH_recovery.json", "w");
  if (!g_json)
    std::fprintf(stderr, "warning: cannot open BENCH_recovery.json\n");
  for (const Shape& s :
       {Shape{{3, 3, 7}}, Shape{{4, 4, 4}}, Shape{{7, 9}}})
    run_shape(s);
  if (g_json) std::fclose(g_json);
  return 0;
}
