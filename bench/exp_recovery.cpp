// E18 — live recovery: when faults arrive mid-run, what does each rung of
// the escalation ladder cost, and what does the ladder save over always
// replanning?
//
// For the Section 5 example shapes, replay seeded random FaultSchedules
// (>= 3 mid-run arrivals each) against a live stencil exchange twice: once
// with the full ladder (reroute / migrate / replan, cheapest certified
// rung wins) and once with the force_replan baseline. One JSON row per
// (shape, trial, mode, repair epoch): detection latency (cycles from
// arrival to the detector pausing the run), rung chosen, migration cost,
// post-repair dilation/congestion; plus a summary row per run with total
// cycles and delivery accounting. Per-rung wall time and attempt counts
// come from the observability registry (recovery.rung_us.* and
// recovery.*.attempts/.certified), not from hand-rolled timers: the
// registry is reset before each run so every summary row reports exactly
// that run. Rows go to stdout AND to BENCH_recovery.json in the working
// directory.
#include <cstdio>
#include <string>
#include <vector>

#include "hypersim/live.hpp"
#include "manytoone/manytoone.hpp"
#include "obs/obs.hpp"
#include "search/provider.hpp"

using namespace hj;

namespace {

FILE* g_json = nullptr;

void emit(const std::string& line) {
  std::fputs(line.c_str(), stdout);
  if (g_json) std::fputs(line.c_str(), g_json);
}

std::string epoch_row(const char* shape, u32 trial, const char* mode,
                      u32 epoch, const sim::RecoveryEpochLog& e) {
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "{\"shape\":\"%s\",\"trial\":%u,\"mode\":\"%s\",\"row\":\"epoch\","
      "\"epoch\":%u,\"arrival_cycle\":%llu,\"detect_cycle\":%llu,"
      "\"detect_latency\":%llu,\"fault\":\"%s\",\"rung\":\"%s\","
      "\"moved_nodes\":%llu,\"migration_cost\":%llu,\"dilation\":%u,"
      "\"congestion\":%u}\n",
      shape, trial, mode, epoch,
      static_cast<unsigned long long>(e.arrival_cycle),
      static_cast<unsigned long long>(e.detect_cycle),
      static_cast<unsigned long long>(e.detect_latency), e.fault.c_str(),
      e.rung.c_str(), static_cast<unsigned long long>(e.moved_nodes),
      static_cast<unsigned long long>(e.migration_cost), e.dilation,
      e.congestion);
  return buf;
}

/// Per-run rung economics, read back from the metrics registry after a
/// live run (the registry is reset before each run).
struct RungCosts {
  u64 us[3] = {0, 0, 0};  // reroute, migrate, replan wall time
  u64 attempts = 0;
  u64 certified = 0;
};

RungCosts collect_rung_costs() {
  RungCosts c;
  auto& reg = obs::Registry::global();
  const char* rungs[3] = {"reroute", "migrate", "replan"};
  for (int i = 0; i < 3; ++i) {
    c.us[i] = reg.histogram(std::string("recovery.rung_us.") + rungs[i],
                            obs::Kind::Timing)
                  .sum();
    const std::string base = std::string("recovery.") + rungs[i];
    c.attempts += reg.counter(base + ".attempts").value();
    c.certified += reg.counter(base + ".certified").value();
  }
  return c;
}

std::string summary_row(const char* shape, u32 trial, const char* mode,
                        const sim::LiveRunResult& r, u64 total_cost,
                        const RungCosts& rc) {
  char buf[768];
  std::snprintf(
      buf, sizeof buf,
      "{\"shape\":\"%s\",\"trial\":%u,\"mode\":\"%s\",\"row\":\"run\","
      "\"ok\":%s,\"cycles\":%llu,\"messages\":%llu,\"delivered\":%llu,"
      "\"failed\":%llu,\"epochs\":%u,\"repairs\":%zu,"
      "\"total_migration_cost\":%llu,\"final_dilation\":%u,"
      "\"final_congestion\":%u,\"final_load\":%llu,"
      "\"reroute_us\":%llu,\"migrate_us\":%llu,\"replan_us\":%llu,"
      "\"rung_attempts\":%llu,\"rung_certified\":%llu}\n",
      shape, trial, mode, r.ok ? "true" : "false",
      static_cast<unsigned long long>(r.cycles),
      static_cast<unsigned long long>(r.messages),
      static_cast<unsigned long long>(r.delivered),
      static_cast<unsigned long long>(r.failed), r.epochs, r.log.size(),
      static_cast<unsigned long long>(total_cost), r.report.dilation,
      r.report.congestion,
      static_cast<unsigned long long>(r.report.load_factor),
      static_cast<unsigned long long>(rc.us[0]),
      static_cast<unsigned long long>(rc.us[1]),
      static_cast<unsigned long long>(rc.us[2]),
      static_cast<unsigned long long>(rc.attempts),
      static_cast<unsigned long long>(rc.certified));
  return buf;
}

void run_shape(const Shape& shape) {
  Planner planner;
  planner.set_direct_provider(search::make_search_provider());
  const PlanResult plan = planner.plan(shape);
  const std::string name = shape.to_string();

  for (u32 trial = 0; trial < 3; ++trial) {
    // >= 3 arrivals per schedule: 2 node deaths + 2 link cuts, spaced so
    // the run is still draining when they land.
    const sim::FaultSchedule schedule = sim::FaultSchedule::random(
        plan.embedding->host_dim(), /*node_events=*/2, /*link_events=*/2,
        /*first_cycle=*/3, /*spacing=*/8, /*seed=*/1000 + trial);
    for (const bool force_replan : {false, true}) {
      sim::LiveOptions opts;
      opts.sim.message_flits = 4;
      opts.recovery.force_replan = force_replan;
      opts.recovery.direct_provider = search::make_search_provider();
      opts.recovery.degrade_provider = m2o::make_degrade_provider();
      obs::Registry::global().reset();
      const sim::LiveRunResult live =
          sim::run_stencil_with_recovery(plan.embedding, schedule, opts);
      const RungCosts rung_costs = collect_rung_costs();
      const char* mode = force_replan ? "replan_baseline" : "ladder";
      u64 total_cost = 0;
      for (std::size_t i = 0; i < live.log.size(); ++i) {
        total_cost += live.log[i].migration_cost;
        emit(epoch_row(name.c_str(), trial, mode, static_cast<u32>(i),
                       live.log[i]));
      }
      emit(summary_row(name.c_str(), trial, mode, live, total_cost,
                       rung_costs));
    }
  }
}

}  // namespace

int main() {
  obs::set_enabled(true);  // rung economics come from the registry
  g_json = std::fopen("BENCH_recovery.json", "w");
  if (!g_json)
    std::fprintf(stderr, "warning: cannot open BENCH_recovery.json\n");
  for (const Shape& s :
       {Shape{{3, 3, 7}}, Shape{{4, 4, 4}}, Shape{{7, 9}}})
    run_shape(s);
  if (g_json) std::fclose(g_json);
  return 0;
}
