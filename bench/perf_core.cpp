// P1-P4 — performance microbenchmarks of the library's hot paths.
#include <benchmark/benchmark.h>

#include "core/coverage.hpp"
#include "core/direct.hpp"
#include "core/planner.hpp"
#include "core/product.hpp"
#include "core/verify.hpp"
#include "hypersim/network.hpp"

namespace hj {
namespace {

void BM_GrayMap(benchmark::State& state) {
  GrayEmbedding emb{Mesh(Shape{512, 512})};
  MeshIndex i = 0;
  const u64 n = emb.guest().num_nodes();
  for (auto _ : state) {
    benchmark::DoNotOptimize(emb.map(i));
    i = (i + 9973) % n;
  }
}
BENCHMARK(BM_GrayMap);

void BM_ProductMap(benchmark::State& state) {
  // A three-level composition, the deepest structure the planner builds.
  auto d = *direct_embedding(Shape{7, 9});
  auto g = std::make_shared<GrayEmbedding>(Mesh(Shape{16, 8}));
  MeshProductEmbedding prod(g, d);
  MeshIndex i = 0;
  const u64 n = prod.guest().num_nodes();
  for (auto _ : state) {
    benchmark::DoNotOptimize(prod.map(i));
    i = (i + 9973) % n;
  }
}
BENCHMARK(BM_ProductMap);

void BM_ProductEdgePath(benchmark::State& state) {
  auto d = *direct_embedding(Shape{7, 9});
  auto g = std::make_shared<GrayEmbedding>(Mesh(Shape{16, 8}));
  MeshProductEmbedding prod(g, d);
  const auto edges = prod.guest().edges();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(prod.edge_path(edges[i]));
    i = (i + 97) % edges.size();
  }
}
BENCHMARK(BM_ProductEdgePath);

void BM_Verify(benchmark::State& state) {
  const u64 side = static_cast<u64>(state.range(0));
  GrayEmbedding emb{Mesh(Shape{side, side})};
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify(emb));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(emb.guest().num_edges()));
}
BENCHMARK(BM_Verify)->Arg(16)->Arg(64)->Arg(256);

void BM_CoverageFirstMethod(benchmark::State& state) {
  u64 l = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        coverage::first_method(l % 512 + 1, (l * 7) % 512 + 1,
                               (l * 13) % 512 + 1));
    ++l;
  }
}
BENCHMARK(BM_CoverageFirstMethod);

void BM_CoverageSweep(benchmark::State& state) {
  const u32 n = static_cast<u32>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(coverage::sweep_3d(n));
  }
}
BENCHMARK(BM_CoverageSweep)->Arg(5)->Arg(7);

void BM_PlannerPlan(benchmark::State& state) {
  for (auto _ : state) {
    Planner p;  // fresh memo each iteration: measures full planning cost
    benchmark::DoNotOptimize(p.plan(Shape{12, 20}));
  }
}
BENCHMARK(BM_PlannerPlan);

void BM_StencilSim(benchmark::State& state) {
  auto d = *direct_embedding(Shape{7, 9});
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulate_stencil(*d));
  }
}
BENCHMARK(BM_StencilSim);

}  // namespace
}  // namespace hj

BENCHMARK_MAIN();
