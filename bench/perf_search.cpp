// P5 — search engine performance: how fast the direct tables regenerate.
#include <benchmark/benchmark.h>

#include "search/anneal.hpp"
#include "search/backtrack.hpp"

namespace hj::search {
namespace {

void BM_Backtrack3x5(benchmark::State& state) {
  Mesh m(Shape{3, 5});
  for (auto _ : state) {
    benchmark::DoNotOptimize(backtrack_search(m, 4));
  }
}
BENCHMARK(BM_Backtrack3x5);

void BM_Backtrack7x9(benchmark::State& state) {
  Mesh m(Shape{7, 9});
  for (auto _ : state) {
    benchmark::DoNotOptimize(backtrack_search(m, 6));
  }
}
BENCHMARK(BM_Backtrack7x9);

void BM_Backtrack11x11(benchmark::State& state) {
  Mesh m(Shape{11, 11});
  for (auto _ : state) {
    benchmark::DoNotOptimize(backtrack_search(m, 7));
  }
}
BENCHMARK(BM_Backtrack11x11);

void BM_BacktrackRefute3x5Dil1(benchmark::State& state) {
  // Exhaustive refutation (Theorem 1 check) — the complete-search cost.
  Mesh m(Shape{3, 5});
  BacktrackOptions o;
  o.max_dilation = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(backtrack_search(m, 4, o));
  }
}
BENCHMARK(BM_BacktrackRefute3x5Dil1);

void BM_Anneal3x3x3(benchmark::State& state) {
  Mesh m(Shape{3, 3, 3});
  AnnealOptions o;
  o.iterations = 300'000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(anneal_search(m, 5, o));
  }
}
BENCHMARK(BM_Anneal3x3x3);

}  // namespace
}  // namespace hj::search

BENCHMARK_MAIN();
