// E12 — the Summary's conjecture, quantified (beyond the paper):
// "We conjecture that a majority of the higher dimensional meshes can be
//  embedded with dilation two using the existing two-, and
//  three-dimensional mesh embeddings of dilation two."
//
// covered_kd() partitions the axes into blocks of <= 3 handled by the
// paper's own machinery (Gray / Chan 2-D / methods 1-4 in 3-D) and checks
// the Corollary 1 cube budget. No cross-block splitting is attempted, so
// the numbers below are a LOWER bound on the dilation-2 coverage.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/coverage.hpp"

using namespace hj;

int main(int argc, char** argv) {
  u32 max_n4 = 7, max_n5 = 5;
  if (argc > 1) max_n4 = static_cast<u32>(std::atoi(argv[1]));
  if (argc > 2) max_n5 = static_cast<u32>(std::atoi(argv[2]));

  std::printf("E12: k-D coverage by 2-D/3-D machinery (lower bound)\n\n");
  std::printf("%-4s %-4s %-12s %-10s %-8s\n", "k", "n", "covered", "total",
              "time");
  struct Row {
    u32 k, n;
  };
  std::vector<Row> rows;
  for (u32 n = 1; n <= max_n4; ++n) rows.push_back({4, n});
  for (u32 n = 1; n <= max_n5; ++n) rows.push_back({5, n});
  for (const Row& r : rows) {
    const auto t0 = std::chrono::steady_clock::now();
    const coverage::KdSweep s = coverage::sweep_kd(r.k, r.n);
    const double dt =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    std::printf("%-4u %-4u %-11.1f%% %-10llu %-8.2fs\n", r.k, r.n,
                s.percent(), static_cast<unsigned long long>(s.total), dt);
  }
  std::printf("\nThe conjecture ('a majority') holds wherever the covered "
              "column stays above 50%%.\nFor comparison, Gray alone covers "
              "only ~8.9%% (k=4) / ~2.4%% (k=5) asymptotically (Figure 1).\n");
  return 0;
}
