// E10 — what dilation-2 minimal expansion buys on a real machine: the
// paper's motivating tradeoff, quantified on the hypersim substrate.
//
// Scenario A (fits both ways): the 9x13 mesh on a Q7 machine.
//   * decomposition embedding: minimal expansion (117/128 processors
//     busy), dilation 2.
//   * Gray code: needs Q8 — on the Q7 machine it must halve an axis and
//     run at load factor 2 (half the work per processor doubles).
// Scenario B (one-to-one on different machines): 7x9 via Gray (Q7,
//   128 processors for 63 cells) vs the direct table (Q6).
//
// Cost model per relaxation sweep: T = w * load_factor + beta * cycles,
// with w the per-cell compute cost and cycles the simulated neighbor
// exchange time.
#include <cstdio>

#include "core/planner.hpp"
#include "hypersim/network.hpp"
#include "manytoone/manytoone.hpp"
#include "search/provider.hpp"

using namespace hj;

namespace {

void report(const char* label, const Embedding& emb, u64 load_factor) {
  sim::SimResult r = sim::simulate_stencil(emb);
  const double busy = static_cast<double>(emb.guest().num_nodes()) /
                      static_cast<double>(u64{1} << emb.host_dim()) /
                      static_cast<double>(load_factor);
  std::printf("  %-34s Q%-3u load %-3llu comm %-4llu cycles (bound %-3llu) "
              "busy %.0f%%\n",
              label, emb.host_dim(), static_cast<unsigned long long>(load_factor),
              static_cast<unsigned long long>(r.cycles),
              static_cast<unsigned long long>(r.lower_bound()),
              100.0 * busy);
  for (double w : {1.0, 4.0, 16.0}) {
    const double total = w * static_cast<double>(load_factor) +
                         static_cast<double>(r.cycles);
    std::printf("      w=%-4.0f T = %.1f\n", w, total);
  }
}

}  // namespace

int main() {
  std::printf("E10: stencil exchange on the simulated cube machine\n\n");

  std::printf("Scenario A: 9x13 mesh, Q7 machine (128 nodes)\n");
  {
    Planner planner;
    planner.set_direct_provider(search::make_search_provider());
    PlanResult dec = planner.plan(Shape{9, 13});
    report("decomposition (dil 2, minimal)", *dec.embedding, 1);
    m2o::ContractPlan gray = m2o::contract_to_cube(Shape{9, 13}, 7);
    report("Gray + contraction (dil 1)", *gray.embedding,
           gray.report.load_factor);
  }

  std::printf("\nScenario B: 7x9 mesh, one-to-one on its own machine\n");
  {
    Planner planner;
    PlanResult direct = planner.plan(Shape{7, 9});
    report("direct table (Q6, minimal)", *direct.embedding, 1);
    GrayEmbedding gray{Mesh(Shape{7, 9})};
    report("Gray code (Q7, expansion 2)", gray, 1);
  }

  std::printf("\nScenario C: axis shift (CSHIFT) communication only\n");
  {
    Planner planner;
    PlanResult direct = planner.plan(Shape{7, 9});
    for (u32 axis = 0; axis < 2; ++axis) {
      sim::CubeNetwork net(sim::SimConfig{direct.embedding->host_dim()});
      net.add_axis_shift(*direct.embedding, axis);
      sim::SimResult r = net.run();
      std::printf("  direct 7x9 axis %u shift: %llu cycles (bound %llu)\n",
                  axis, static_cast<unsigned long long>(r.cycles),
                  static_cast<unsigned long long>(r.lower_bound()));
    }
  }

  std::printf("\nScenario D: message-size sweep — does dilation 2 still "
              "hurt with cut-through?\n");
  {
    Planner planner;
    PlanResult direct = planner.plan(Shape{7, 9});
    GrayEmbedding gray{Mesh(Shape{7, 9})};
    std::printf("  %-6s %-26s %-26s\n", "flits",
                "store-and-forward (dir/gray)", "cut-through (dir/gray)");
    for (u32 f : {1u, 4u, 16u, 64u}) {
      const auto saf_d = sim::simulate_stencil(
          *direct.embedding, 1, sim::Switching::StoreAndForward, f);
      const auto saf_g = sim::simulate_stencil(
          gray, 1, sim::Switching::StoreAndForward, f);
      const auto ct_d = sim::simulate_stencil(*direct.embedding, 1,
                                              sim::Switching::CutThrough, f);
      const auto ct_g =
          sim::simulate_stencil(gray, 1, sim::Switching::CutThrough, f);
      std::printf("  %-6u %6llu / %-6llu (%.2fx)     %6llu / %-6llu "
                  "(%.2fx)\n",
                  f, static_cast<unsigned long long>(saf_d.cycles),
                  static_cast<unsigned long long>(saf_g.cycles),
                  static_cast<double>(saf_d.cycles) /
                      static_cast<double>(saf_g.cycles),
                  static_cast<unsigned long long>(ct_d.cycles),
                  static_cast<unsigned long long>(ct_g.cycles),
                  static_cast<double>(ct_d.cycles) /
                      static_cast<double>(ct_g.cycles));
    }
  }

  std::printf("\nReading: minimal expansion keeps nearly all processors "
              "busy at a ~2x communication\ncost; Gray either strands half "
              "the machine (B) or doubles compute via load factor (A).\n"
              "The paper's dilation-2 embeddings win whenever compute "
              "dominates (w >= ~2).\nUnder cut-through switching (post-"
              "paper hardware) the dilation-2 penalty shrinks toward\n"
              "the congestion bound — minimal expansion wins even more "
              "clearly.\n");
  return 0;
}
