// E16 — fault resilience: how many failed links can an embedding absorb
// before the stencil exchange stops delivering, and what does each detour
// cost in latency?
//
// For the Section 5 example shapes, sweep the number of permanently
// failed links (chosen by a seeded generator, several trials per count)
// and compare the planner's fault-avoiding embedding (degradation ladder:
// detour / remap / contract) against the Gray-code baseline patched by
// detour routing alone. One JSON row per (shape, embedding, #links,
// trial): delivered-message latency, completion, certified dilation and
// congestion after detouring.
#include <cstdio>
#include <string>

#include "core/io.hpp"
#include "core/planner.hpp"
#include "core/router.hpp"
#include "hypersim/network.hpp"
#include "manytoone/manytoone.hpp"
#include "search/provider.hpp"

using namespace hj;

namespace {

// Deterministic xorshift64* stream; the sweep must be reproducible.
struct Rng {
  u64 s;
  u64 next() {
    s ^= s >> 12;
    s ^= s << 25;
    s ^= s >> 27;
    return s * 0x2545f4914f6cdd1dull;
  }
};

FaultSet random_links(u32 cube_dim, u32 count, u64 seed) {
  FaultSet f;
  Rng rng{seed * 0x9e3779b97f4a7c15ull + 1};
  while (f.num_failed_links() < count) {
    const CubeNode a = rng.next() & ((u64{1} << cube_dim) - 1);
    const u32 d = static_cast<u32>(rng.next() % cube_dim);
    f.fail_link(a, a ^ (u64{1} << d));
  }
  return f;
}

void row(const char* shape, const char* embed, u32 links, u32 trial,
         const VerifyReport& rep, const sim::SimResult& sim) {
  std::printf(
      "{\"shape\":\"%s\",\"embed\":\"%s\",\"failed_links\":%u,"
      "\"trial\":%u,\"completed\":%s,\"cycles\":%llu,\"delivered\":%llu,"
      "\"messages\":%llu,\"fault_free\":%s,\"dilation\":%u,"
      "\"congestion\":%u,\"load_factor\":%llu,\"host_dim\":%u}\n",
      shape, embed, links, trial, sim.completed ? "true" : "false",
      static_cast<unsigned long long>(sim.cycles),
      static_cast<unsigned long long>(sim.delivered),
      static_cast<unsigned long long>(sim.messages),
      rep.fault_free ? "true" : "false", rep.dilation, rep.congestion,
      static_cast<unsigned long long>(rep.load_factor), rep.host_dim);
}

sim::SimResult faulted_stencil(const Embedding& emb, const FaultSet& faults) {
  sim::FaultModel model{faults};
  sim::SimConfig cfg{emb.host_dim()};
  cfg.faults = &model;
  return sim::simulate_stencil(emb, cfg);
}

}  // namespace

int main() {
  const Shape shapes[] = {Shape{7, 9}, Shape{11, 11}, Shape{3, 3, 7}};
  const u32 link_counts[] = {0, 1, 2, 4, 8};
  const u32 trials = 3;

  Planner planner;
  planner.set_direct_provider(search::make_search_provider());
  planner.set_degrade_provider(m2o::make_degrade_provider());

  for (const Shape& shape : shapes) {
    const std::string name = shape.to_string();
    for (u32 links : link_counts) {
      for (u32 trial = 0; trial < trials; ++trial) {
        const u64 seed = (u64{links} << 8) | trial;

        // Planner: full degradation ladder via plan_avoiding.
        {
          const FaultSet faults =
              random_links(planner.plan(shape).report.host_dim, links, seed);
          try {
            const PlanResult r = planner.plan_avoiding(shape, faults);
            row(name.c_str(), "planner", links, trial, r.report,
                faulted_stencil(*r.embedding, faults));
          } catch (const std::invalid_argument&) {
            VerifyReport none;
            none.fault_free = false;
            row(name.c_str(), "planner", links, trial, none, sim::SimResult{});
          }
        }

        // Gray baseline: fixed node map, detour routing only.
        {
          const GrayEmbedding gray{Mesh(shape)};
          const FaultSet faults =
              random_links(gray.host_dim(), links, seed);
          auto emb = io::from_text(io::to_text(gray));
          (void)route_minimize_congestion(*emb);
          (void)route_around_faults(*emb, faults);
          row(name.c_str(), "gray", links, trial, verify(*emb, faults),
              faulted_stencil(*emb, faults));
        }
      }
    }
  }
  return 0;
}
