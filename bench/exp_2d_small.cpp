// E3 — Section 3.3 claim: using the three direct 2D embeddings, graph
// decomposition and Gray code, all 2D meshes with <= 64 nodes embed into a
// minimal cube with dilation two and congestion two — except 3x21.
//
// We reproduce the claim constructively: the planner WITHOUT the search
// provider is exactly the paper's toolkit; with search attached the single
// exception is resolved as well.
#include <cstdio>
#include <vector>

#include "core/planner.hpp"
#include "search/provider.hpp"

using namespace hj;

int main() {
  std::printf("E3: constructive coverage of 2D meshes with <= 64 nodes\n\n");

  Planner paper_toolkit;  // tables + decomposition + extension, no search
  Planner with_search;
  with_search.set_direct_provider(search::make_search_provider());

  u64 total = 0, ok_paper = 0, ok_search = 0;
  std::vector<Shape> exceptions;
  for (u64 a = 1; a <= 64; ++a) {
    for (u64 b = a; a * b <= 64; ++b) {
      ++total;
      Shape s{a, b};
      PlanResult r = paper_toolkit.plan(s);
      const bool good = r.report.valid && r.report.minimal_expansion &&
                        r.report.dilation <= 2 && r.report.congestion <= 2;
      if (good) {
        ++ok_paper;
      } else {
        exceptions.push_back(s);
        std::printf("  paper-toolkit exception: %-8s -> %s\n",
                    s.to_string().c_str(), r.plan.c_str());
      }
      PlanResult rs = with_search.plan(s);
      if (rs.report.valid && rs.report.minimal_expansion &&
          rs.report.dilation <= 2)
        ++ok_search;
    }
  }

  std::printf("\n%llu meshes total; paper toolkit solves %llu "
              "(paper: all but 3x21); +search solves %llu\n",
              static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(ok_paper),
              static_cast<unsigned long long>(ok_search));
  std::printf("expected exception set: {3x21}; observed: {");
  for (const Shape& s : exceptions) std::printf(" %s", s.to_string().c_str());
  std::printf(" }\n");
  return 0;
}
