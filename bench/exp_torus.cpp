// E7 — Section 6 / Corollary 3: wraparound meshes.
//
// (a) Arithmetic: over all 2D tori with sides <= 2^n, the fraction
//     satisfying Corollary 3's dilation-2 condition
//     (ceil2(l1 l2) == 16 * ceil2(ceil(l1/4) ceil(l2/4)) or both even)
//     and the dilation-3 condition
//     (ceil2(l1 l2) == 4 * ceil2(ceil(l1/2) ceil(l2/2))).
// (b) Constructive: the TorusPlanner on a sweep of tori, certified by the
//     verifier; plus the Lemma 3 (half) vs Lemma 4 (quarter) ablation on
//     odd-sided tori.
#include <cstdio>

#include "search/provider.hpp"
#include "torus/torus.hpp"

using namespace hj;

namespace {

bool cond_dil2(u64 l1, u64 l2) {
  const u64 q = ((l1 + 3) / 4) * ((l2 + 3) / 4);
  return ceil_pow2(l1 * l2) == 16 * ceil_pow2(q) ||
         (l1 % 2 == 0 && l2 % 2 == 0);
}

bool cond_dil3(u64 l1, u64 l2) {
  const u64 h = ((l1 + 1) / 2) * ((l2 + 1) / 2);
  return ceil_pow2(l1 * l2) == 4 * ceil_pow2(h);
}

}  // namespace

int main() {
  std::printf("E7: wraparound meshes (Section 6)\n\n");

  std::printf("(a) Corollary 3 arithmetic coverage of 2D tori, sides in "
              "[3, 2^n]:\n");
  std::printf("    %-4s %-12s %-12s\n", "n", "dil<=2 cond", "dil<=3 cond");
  for (u32 n = 3; n <= 9; ++n) {
    const u64 side = u64{1} << n;
    u64 total = 0, c2 = 0, c3 = 0;
    for (u64 a = 3; a <= side; ++a)
      for (u64 b = a; b <= side; ++b) {
        const u64 w = (a == b) ? 1 : 2;
        total += w;
        if (cond_dil2(a, b)) c2 += w;
        if (cond_dil2(a, b) || cond_dil3(a, b)) c3 += w;
      }
    std::printf("    %-4u %-12.1f %-12.1f\n", n,
                100.0 * static_cast<double>(c2) / static_cast<double>(total),
                100.0 * static_cast<double>(c3) / static_cast<double>(total));
  }

  std::printf("\n(b) constructive TorusPlanner sweep (certified):\n");
  torus::TorusPlanner planner;
  planner.set_direct_provider(search::make_search_provider());
  std::printf("    %-10s %-44s %s\n", "torus", "result", "plan");
  for (Shape s : {Shape{6, 6}, Shape{6, 10}, Shape{12, 20}, Shape{13, 5},
                  Shape{9, 9}, Shape{15, 13}, Shape{5, 6, 7},
                  Shape{12, 12, 12}, Shape{14, 18}}) {
    PlanResult r = planner.plan(s);
    std::printf("    %-10s %-44s %s\n", s.to_string().c_str(),
                summary(r.report, *r.embedding).c_str(), r.plan.c_str());
  }

  std::printf("\n(c) Lemma 3 (half) vs Lemma 4 (quarter) on odd sides:\n");
  Planner mesh_planner;
  for (Shape s : {Shape{13, 13}, Shape{21, 11}, Shape{15, 9}}) {
    for (auto scheme : {torus::AxisScheme::Half, torus::AxisScheme::Quarter}) {
      std::vector<torus::AxisCodec> codecs;
      SmallVec<u64, 4> q;
      bool feasible = true;
      for (u32 i = 0; i < s.dims() && feasible; ++i) {
        try {
          codecs.push_back(torus::AxisCodec::make(scheme, s[i], true));
          q.push_back(codecs.back().quotient_len);
        } catch (const std::invalid_argument&) {
          feasible = false;
        }
      }
      if (!feasible) {
        std::printf("    %-8s %-8s infeasible (quotient too small)\n",
                    s.to_string().c_str(), torus::to_string(scheme));
        continue;
      }
      PlanResult qp = mesh_planner.plan(Shape{q});
      torus::TorusEmbedding emb(Mesh::torus(s), std::move(codecs),
                                qp.embedding);
      VerifyReport r = verify(emb);
      std::printf("    %-8s %-8s %s\n", s.to_string().c_str(),
                  torus::to_string(scheme), summary(r, emb).c_str());
    }
  }
  std::printf("\nExpected shape: quarter keeps dilation at max(d,2) where "
              "half pays d+1 on odd sides,\nat the price of a coarser "
              "quotient (Lemma 4 vs Lemma 3).\n");
  return 0;
}
