// E22 — plan serving at production scale: store-hit latency, overload
// shedding, and corruption survival.
//
// Builds a plan store with the checkpointed precompute pass, then
// measures the three serve-path claims:
//
//   * "latency" rows — exact p50/p99/mean request latency for cold
//     serving (live planner, no store) vs warm serving (store hit +
//     mandatory re-verify), memoization off so every request pays the
//     full path it is labelled with.
//   * "split" rows — a request flood through the bounded admission
//     queue: the warm/cold/degraded/shed verdict split must account for
//     every request (shed is load shedding, not loss).
//   * "corruption" rows — seeded byte flips confined to the store's
//     data region (superblock/index flips fail open(), the louder
//     failure mode), then every canonical shape queried: all requests
//     answered, all answers verified, the split shows how many fell
//     back to the live planner.
//
// Rows go to stdout AND BENCH_serve.json; schema enforced by
// tools/check_bench.py. `exp_serve --quick` shrinks the store budget
// for CI.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "search/provider.hpp"
#include "store/precompute.hpp"
#include "store/serve.hpp"
#include "store/store.hpp"
#include "store/writer.hpp"

using namespace hj;

namespace {

FILE* g_json = nullptr;

void emit(const std::string& line) {
  std::fputs(line.c_str(), stdout);
  if (g_json) std::fputs(line.c_str(), g_json);
}

// Nearest-rank quantiles come from the shared obs helper (same formula
// the private copy here used, so E22's published numbers are unchanged).
using obs::percentile;

std::string latency_row(const char* mode, const std::vector<u64>& lat) {
  u64 sum = 0;
  for (u64 v : lat) sum += v;
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"row\":\"latency\",\"mode\":\"%s\",\"requests\":%zu,"
                "\"p50_us\":%llu,\"p99_us\":%llu,\"mean_us\":%.1f}\n",
                mode, lat.size(),
                static_cast<unsigned long long>(percentile(lat, 0.5)),
                static_cast<unsigned long long>(percentile(lat, 0.99)),
                lat.empty() ? 0.0
                            : static_cast<double>(sum) /
                                  static_cast<double>(lat.size()));
  return buf;
}

/// Latency distribution over every canonical shape. `store` == nullptr
/// measures the cold path (live planner per request); with a store every
/// request is a hit plus the mandatory re-verify. Memoization off so
/// requests stay independent.
void run_latency(const char* mode, const store::PlanStore* st,
                 const std::vector<Shape>& shapes) {
  store::ServeOptions opts;
  opts.memoize = false;
  store::Server server(st, opts, [] { return search::make_search_provider(); });
  std::vector<u64> lat;
  lat.reserve(shapes.size());
  for (const Shape& s : shapes) {
    const store::Reply rep = server.handle(s);
    if (!rep.ok) {
      std::fprintf(stderr, "latency run failed on %s: %s\n",
                   s.to_string().c_str(), rep.error.c_str());
      continue;
    }
    lat.push_back(rep.latency_us);
  }
  emit(latency_row(mode, lat));
}

/// Flood the bounded queue through the line protocol: every request must
/// be accounted for by exactly one verdict.
void run_split(const store::PlanStore& st, const std::vector<Shape>& shapes,
               u32 rounds) {
  store::ServeOptions opts;
  opts.queue_cap = 8;
  opts.deadline_us = 0;  // isolate queue-full shedding
  store::Server server(&st, opts,
                       [] { return search::make_search_provider(); });
  std::ostringstream reqs;
  for (u32 r = 0; r < rounds; ++r)
    for (const Shape& s : shapes) reqs << s.to_string() << "\n";
  reqs << "quit\n";
  std::istringstream in(reqs.str());
  std::ostringstream out;
  (void)store::run_serve(in, out, server);
  const store::ServeStats s = server.stats();
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"row\":\"split\",\"requests\":%llu,\"warm\":%llu,"
                "\"cold\":%llu,\"degraded\":%llu,\"shed\":%llu}\n",
                static_cast<unsigned long long>(s.requests),
                static_cast<unsigned long long>(s.warm),
                static_cast<unsigned long long>(s.cold),
                static_cast<unsigned long long>(s.degraded),
                static_cast<unsigned long long>(s.shed));
  emit(buf);
}

/// Flip `flips` seeded bytes inside the data region of a copy of the
/// store, then query every canonical shape: the daemon must answer and
/// verify 100% of them, degrading (live fallback) where records died.
void run_corruption(const std::string& store_path,
                    const std::vector<Shape>& shapes, u32 flips, u64 seed) {
  std::string bytes;
  {
    std::ifstream is(store_path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(is),
                 std::istreambuf_iterator<char>());
  }
  const std::string mut_path = store_path + ".corrupt";
  {
    const store::PlanStore pristine = store::PlanStore::open(store_path);
    const auto [first, last] = pristine.data_region();
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<u64> off(first, last - 1);
    std::uniform_int_distribution<u32> bit(0, 7);
    for (u32 i = 0; i < flips; ++i)
      bytes[off(rng)] ^= static_cast<char>(1u << bit(rng));
    std::ofstream os(mut_path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  const store::PlanStore mut = store::PlanStore::open(mut_path);
  store::Server server(&mut, {}, [] { return search::make_search_provider(); });
  u64 answered = 0, verified = 0, warm = 0, degraded = 0, cold = 0;
  for (const Shape& s : shapes) {
    const store::Reply rep = server.handle(s);
    ++answered;
    if (rep.ok) ++verified;
    switch (rep.verdict) {
      case store::Verdict::ServedWarm: ++warm; break;
      case store::Verdict::Degraded: ++degraded; break;
      case store::Verdict::ServedCold: ++cold; break;
      case store::Verdict::Shed: break;
    }
  }
  char buf[320];
  std::snprintf(
      buf, sizeof buf,
      "{\"row\":\"corruption\",\"flips\":%u,\"requests\":%zu,"
      "\"answered\":%llu,\"verified\":%llu,\"warm\":%llu,"
      "\"degraded\":%llu,\"cold\":%llu,\"quarantined\":%llu}\n",
      flips, shapes.size(), static_cast<unsigned long long>(answered),
      static_cast<unsigned long long>(verified),
      static_cast<unsigned long long>(warm),
      static_cast<unsigned long long>(degraded),
      static_cast<unsigned long long>(cold),
      static_cast<unsigned long long>(mut.quarantined_count()));
  emit(buf);
  std::remove(mut_path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  g_json = std::fopen("BENCH_serve.json", "w");
  if (!g_json)
    std::fprintf(stderr, "warning: cannot open BENCH_serve.json\n");

  const u64 budget = quick ? 64 : 512;
  const std::string store_path = "exp_serve_store.hjs";
  std::remove(store_path.c_str());
  std::remove(store::journal_path(store_path).c_str());
  store::PrecomputeOptions popts;
  popts.max_nodes = budget;
  const store::PrecomputeResult pre = store::precompute(
      store_path, popts, [] { return search::make_search_provider(); });
  if (!pre.complete) {
    std::fprintf(stderr, "precompute did not complete\n");
    return 1;
  }
  const std::vector<Shape> shapes =
      store::enumerate_canonical_shapes(budget, 3);
  const store::PlanStore st = store::PlanStore::open(store_path);

  run_latency("cold", nullptr, shapes);
  run_latency("warm", &st, shapes);
  run_split(st, shapes, quick ? 2 : 4);
  for (const u32 flips : {1u, 8u, quick ? 32u : 256u})
    run_corruption(store_path, shapes, flips, /*seed=*/0x522EULL + flips);

  std::remove(store_path.c_str());
  if (g_json) std::fclose(g_json);
  return 0;
}
