// hjembed: many-to-one embeddings (Section 7 of the paper).
//
// When the mesh outgrows the machine, several mesh nodes share a cube node
// and the quality measure becomes the *load factor* (Definition 5). The
// paper's toolkit:
//
//   Theorem 4    the product of many-to-one embeddings multiplies load
//                factors, keeps dilation max(d1, d2), and bounds the
//                congestion by max(f1 c2, f2 c1). (The library's
//                MeshProductEmbedding already implements the construction;
//                it simply stops being injective.)
//   Lemma 5      contraction: an (l1 l1') x ... x (lk lk') mesh rides on an
//                embedding of the l1 x ... x lk mesh with load factor
//                f * prod l'_i, unchanged dilation, and congestion
//                c_i * prod(l'_j) / l'_i on axis i.
//   Corollary 4  Gray code + contraction embeds an l1 2^n1 x ... mesh with
//                dilation one and optimal load factor.
//   Corollary 5  any mesh embeds into any n-cube with dilation one and
//                load factor within 2x of optimal, by extending axes to
//                l'_i 2^n_i and folding surplus cube dimensions away.
#pragma once

#include <string>

#include "core/embedding.hpp"
#include "core/planner.hpp"
#include "core/verify.hpp"

namespace hj::m2o {

/// Lemma 5: contract blocks of `factors[i]` consecutive nodes per axis i
/// onto one node of the base embedding's guest. Guest shape =
/// base guest shape * factors (elementwise). Intra-block edges collapse to
/// zero-length paths; block-boundary edges ride the base paths.
class ContractionEmbedding final : public Embedding {
 public:
  ContractionEmbedding(EmbeddingPtr base, Shape factors);

  [[nodiscard]] CubeNode map(MeshIndex idx) const override;
  [[nodiscard]] CubePath edge_path(const MeshEdge& e) const override;
  [[nodiscard]] bool one_to_one() const noexcept override {
    return factors_.num_nodes() == 1 && base_->one_to_one();
  }

  [[nodiscard]] const Shape& factors() const noexcept { return factors_; }

 private:
  [[nodiscard]] MeshIndex block_of(MeshIndex idx) const;

  EmbeddingPtr base_;
  Shape factors_;
};

/// Corollary 5's folding step: quotient the host cube by its high address
/// bits. Edges along folded dimensions collapse; dilation never grows.
class CubeFoldEmbedding final : public Embedding {
 public:
  CubeFoldEmbedding(EmbeddingPtr base, u32 folded_dim);

  [[nodiscard]] CubeNode map(MeshIndex idx) const override;
  [[nodiscard]] CubePath edge_path(const MeshEdge& e) const override;
  [[nodiscard]] bool one_to_one() const noexcept override {
    return base_->host_dim() == host_dim() && base_->one_to_one();
  }

 private:
  EmbeddingPtr base_;
  CubeNode mask_;
};

/// Corollary 4: Gray code on the power-of-two parts plus contraction of
/// the rest: embeds the mesh (block_counts[i] * pow2_parts[i]) per axis
/// into the cube of the pow2 parts, with dilation <= 1 and optimal load
/// factor prod(block_counts).
[[nodiscard]] EmbeddingPtr gray_contraction(const Shape& block_counts,
                                            const Shape& pow2_parts);

/// A planned many-to-one embedding (Corollary 5 pipeline).
struct ContractPlan {
  EmbeddingPtr embedding;
  VerifyReport report;
  std::string plan;
  /// ceil(|mesh| / 2^n): no embedding can do better.
  u64 optimal_load = 0;
};

/// Embed `shape` into Q_n (n may be far smaller than the mesh) with
/// dilation <= 1, minimizing the load factor over all per-axis
/// (c_i * 2^{n_i} >= l_i) decompositions followed by a cube fold.
/// The paper's example: a 19x19 mesh into Q5 -> load 15, optimal 12.
[[nodiscard]] ContractPlan contract_to_cube(const Shape& shape, u32 n);

/// Corollary 5's applicability condition: some per-axis decomposition
/// l'_i 2^{n_i} >= l_i has ceil2(prod l'_i 2^{n_i}) == ceil2(prod l_i) and
/// sum n_i >= n. When it holds, contract_to_cube's load factor is within a
/// factor of two of optimal; when it fails the paper makes no promise.
[[nodiscard]] bool corollary5_condition(const Shape& shape, u32 n);

// --- Fault-tolerant degradation (the last rung of the planner ladder). ---

/// Places an embedding into Q_{host_dim} by pinning the address bits in
/// `fixed_mask` to `fixed_value` and spreading the base host's bits over
/// the free positions: the image lives entirely inside one sub-cube.
/// Dilation, congestion and load factor are those of the base embedding.
class SubcubeEmbedding final : public Embedding {
 public:
  SubcubeEmbedding(EmbeddingPtr base, u32 host_dim, u64 fixed_mask,
                   u64 fixed_value);

  [[nodiscard]] CubeNode map(MeshIndex idx) const override;
  [[nodiscard]] CubePath edge_path(const MeshEdge& e) const override;
  [[nodiscard]] bool one_to_one() const noexcept override {
    return base_->host_dim() == host_dim() && base_->one_to_one();
  }

 private:
  [[nodiscard]] CubeNode expand(CubeNode v) const noexcept;

  EmbeddingPtr base_;
  u64 fixed_mask_;
  u64 fixed_value_;
};

/// Degrade provider for Planner::plan_avoiding: when no one-to-one remap
/// dodges the fault set, find a fault-free sub-cube of Q_n (fixing up to
/// three address bits), contract the mesh into it with Lemma 5 / Corollary
/// 5 machinery (dilation 1, near-optimal load factor over the surviving
/// nodes), and place it there. Returns nothing when no such sub-cube
/// exists.
[[nodiscard]] DegradeProvider make_degrade_provider();

}  // namespace hj::m2o
