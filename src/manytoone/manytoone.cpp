#include "manytoone/manytoone.hpp"

#include <algorithm>

#include "core/product.hpp"

namespace hj::m2o {

ContractionEmbedding::ContractionEmbedding(EmbeddingPtr base, Shape factors)
    : Embedding(Mesh(base->guest().shape() * factors), base->host_dim()),
      base_(std::move(base)),
      factors_(std::move(factors)) {
  require(!base_->guest().any_wrap(),
          "ContractionEmbedding: wraparound bases are not supported");
}

MeshIndex ContractionEmbedding::block_of(MeshIndex idx) const {
  const Shape& s = guest().shape();
  const Shape& sb = base_->guest().shape();
  const Coord z = s.coord(idx);
  Coord b(sb.dims(), 0);
  for (u32 i = 0; i < sb.dims(); ++i) b[i] = z[i] / factors_[i];
  return sb.index(b);
}

CubeNode ContractionEmbedding::map(MeshIndex idx) const {
  return base_->map(block_of(idx));
}

CubePath ContractionEmbedding::edge_path(const MeshEdge& e) const {
  const MeshIndex ba = block_of(e.a), bb = block_of(e.b);
  if (ba == bb) {
    // Intra-block edge: both endpoints share an image; zero-length path.
    return CubePath{map(e.a)};
  }
  const MeshIndex lo = std::min(ba, bb), hi = std::max(ba, bb);
  CubePath p = base_->edge_path(MeshEdge{lo, hi, e.axis, false});
  if (ba > bb) p.reverse();
  return p;
}

// ---------------------------------------------------------------------------

CubeFoldEmbedding::CubeFoldEmbedding(EmbeddingPtr base, u32 folded_dim)
    : Embedding(base->guest(), folded_dim),
      base_(std::move(base)),
      mask_((u64{1} << folded_dim) - 1) {
  require(folded_dim <= base_->host_dim(),
          "CubeFoldEmbedding: cannot fold to a larger cube");
}

CubeNode CubeFoldEmbedding::map(MeshIndex idx) const {
  return base_->map(idx) & mask_;
}

CubePath CubeFoldEmbedding::edge_path(const MeshEdge& e) const {
  CubePath folded;
  for (CubeNode v : base_->edge_path(e)) {
    const CubeNode w = v & mask_;
    // Hops along folded dimensions collapse to nothing.
    if (folded.empty() || folded.back() != w) folded.push_back(w);
  }
  return folded;
}

// ---------------------------------------------------------------------------

EmbeddingPtr gray_contraction(const Shape& block_counts,
                              const Shape& pow2_parts) {
  require(block_counts.dims() == pow2_parts.dims(),
          "gray_contraction: rank mismatch");
  for (u32 i = 0; i < pow2_parts.dims(); ++i)
    require(is_pow2(pow2_parts[i]),
            "gray_contraction: pow2_parts must be powers of two");
  auto gray = std::make_shared<GrayEmbedding>(Mesh(pow2_parts));
  return std::make_shared<ContractionEmbedding>(std::move(gray),
                                                block_counts);
}

ContractPlan contract_to_cube(const Shape& shape, u32 n) {
  require(n <= 63, "contract_to_cube: cube too large");
  const u32 k = shape.dims();

  // Per-axis options: (c, p) with c * 2^p >= l, c = ceil(l / 2^p).
  struct Option {
    u64 c;
    u32 p;
  };
  std::vector<std::vector<Option>> options(k);
  for (u32 i = 0; i < k; ++i)
    for (u32 p = 0; p <= log2_ceil(shape[i]); ++p)
      options[i].push_back({(shape[i] + (u64{1} << p) - 1) >> p, p});

  // Pick the combination minimizing the load factor prod(c) * 2^(sum p - n)
  // subject to sum p >= n.
  struct Choice {
    SmallVec<u32, 4> pick;
    u64 load = ~u64{0};
  } best;
  SmallVec<u32, 4> pick(k, 0);
  for (;;) {
    u64 blocks = 1;
    u32 bits = 0;
    for (u32 i = 0; i < k; ++i) {
      blocks *= options[i][pick[i]].c;
      bits += options[i][pick[i]].p;
    }
    if (bits >= n && bits < 64) {
      const u64 load = blocks << (bits - n);
      if (load < best.load) best = {pick, load};
    }
    u32 axis = 0;
    while (axis < k && ++pick[axis] == options[axis].size()) pick[axis++] = 0;
    if (axis == k) break;
  }
  require(best.load != ~u64{0}, "contract_to_cube: no feasible decomposition");

  SmallVec<u64, 4> counts, pows;
  u32 bits = 0;
  for (u32 i = 0; i < k; ++i) {
    const Option& o = options[i][best.pick[i]];
    counts.push_back(o.c);
    pows.push_back(u64{1} << o.p);
    bits += o.p;
  }

  EmbeddingPtr emb = gray_contraction(Shape{counts}, Shape{pows});
  std::string plan = "contract[" + Shape{counts}.to_string() + " * gray " +
                     Shape{pows}.to_string() + "]";
  // The contracted guest may exceed the requested shape: shrink to it.
  if (!(emb->guest().shape() == shape))
    emb = std::make_shared<SubmeshEmbedding>(std::move(emb), shape);
  if (bits > n) {
    emb = std::make_shared<CubeFoldEmbedding>(std::move(emb), n);
    plan += " folded to Q" + std::to_string(n);
  }

  ContractPlan out;
  out.embedding = emb;
  out.report = verify(*emb);
  out.plan = std::move(plan);
  out.optimal_load =
      (shape.num_nodes() + (u64{1} << n) - 1) >> n;
  return out;
}

// ---------------------------------------------------------------------------

SubcubeEmbedding::SubcubeEmbedding(EmbeddingPtr base, u32 host_dim,
                                   u64 fixed_mask, u64 fixed_value)
    : Embedding(base->guest(), host_dim),
      base_(std::move(base)),
      fixed_mask_(fixed_mask),
      fixed_value_(fixed_value) {
  require(host_dim <= 63, "SubcubeEmbedding: cube too large");
  require((fixed_value & ~fixed_mask) == 0,
          "SubcubeEmbedding: fixed value 0x%llx outside its mask 0x%llx",
          static_cast<unsigned long long>(fixed_value),
          static_cast<unsigned long long>(fixed_mask));
  require(fixed_mask < (u64{1} << host_dim),
          "SubcubeEmbedding: mask outside the host cube");
  const u32 free_bits =
      host_dim - static_cast<u32>(std::popcount(fixed_mask));
  require(base_->host_dim() == free_bits,
          "SubcubeEmbedding: base Q%u does not fill the Q%u sub-cube",
          base_->host_dim(), free_bits);
}

CubeNode SubcubeEmbedding::expand(CubeNode v) const noexcept {
  // Spread the base address bits over the free positions, low to high.
  CubeNode out = fixed_value_;
  u32 src = 0;
  for (u32 j = 0; j < host_dim(); ++j) {
    if (fixed_mask_ & (u64{1} << j)) continue;
    out |= ((v >> src) & 1) << j;
    ++src;
  }
  return out;
}

CubeNode SubcubeEmbedding::map(MeshIndex idx) const {
  return expand(base_->map(idx));
}

CubePath SubcubeEmbedding::edge_path(const MeshEdge& e) const {
  CubePath out;
  for (CubeNode v : base_->edge_path(e)) out.push_back(expand(v));
  return out;
}

DegradeProvider make_degrade_provider() {
  return [](const Shape& shape, u32 n,
            const FaultSet& faults) -> std::optional<DegradedPlan> {
    // A sub-cube (fix the bits in `mask` to `value`) survives iff it
    // contains no failed node and no failed link with both endpoints
    // inside it (a link across a fixed dimension leaves the sub-cube).
    const auto healthy = [&](u64 mask, u64 value) {
      for (CubeNode f : faults.failed_nodes())
        if ((f & mask) == value) return false;
      for (u64 key : faults.failed_link_keys()) {
        const CubeNode lo = key >> 6;
        const u32 bit = static_cast<u32>(key & 63);
        if (mask & (u64{1} << bit)) continue;  // crosses a fixed dimension
        if ((lo & mask) == value) return false;
      }
      return true;
    };

    // Fewest fixed bits first: every pinned bit halves the surviving
    // machine and roughly doubles the load factor.
    u64 mask = 0, value = 0;
    bool found = false;
    for (u32 k = 1; k <= 3 && k <= n && !found; ++k) {
      SmallVec<u32, 4> bits(k, 0);
      for (u32 i = 0; i < k; ++i) bits[i] = i;
      for (;;) {
        u64 m = 0;
        for (u32 i = 0; i < k; ++i) m |= u64{1} << bits[i];
        for (u64 sub = 0; sub < (u64{1} << k); ++sub) {
          // Scatter `sub` over the chosen bit positions.
          u64 v = 0;
          for (u32 i = 0; i < k; ++i)
            if (sub & (u64{1} << i)) v |= u64{1} << bits[i];
          if (healthy(m, v)) {
            mask = m;
            value = v;
            found = true;
            break;
          }
        }
        if (found) break;
        // Next k-combination of bit positions.
        bool advanced = false;
        for (u32 i = k; i-- > 0;) {
          if (bits[i] + (k - i) < n) {
            ++bits[i];
            for (u32 j = i + 1; j < k; ++j) bits[j] = bits[j - 1] + 1;
            advanced = true;
            break;
          }
        }
        if (!advanced) break;
      }
    }
    if (!found) return std::nullopt;

    const u32 m = n - static_cast<u32>(std::popcount(mask));
    ContractPlan plan = contract_to_cube(shape, m);
    if (!plan.report.valid) return std::nullopt;
    DegradedPlan out;
    out.embedding = std::make_shared<SubcubeEmbedding>(plan.embedding, n,
                                                       mask, value);
    char buf[64];
    std::snprintf(buf, sizeof buf, " into subcube[mask=0x%llx val=0x%llx]",
                  static_cast<unsigned long long>(mask),
                  static_cast<unsigned long long>(value));
    out.plan = plan.plan + buf;
    return out;
  };
}

bool corollary5_condition(const Shape& shape, u32 n) {
  const u32 k = shape.dims();
  const u64 target = ceil_pow2(shape.num_nodes());
  SmallVec<u32, 4> pick(k, 0);
  std::vector<std::vector<u64>> ext(k);  // candidate c * 2^p per axis
  std::vector<std::vector<u32>> pow(k);
  for (u32 i = 0; i < k; ++i)
    for (u32 p = 0; p <= log2_ceil(shape[i]); ++p) {
      const u64 c = (shape[i] + (u64{1} << p) - 1) >> p;
      ext[i].push_back(c << p);
      pow[i].push_back(p);
    }
  for (;;) {
    u64 prod = 1;
    u32 bits = 0;
    for (u32 i = 0; i < k; ++i) {
      prod *= ext[i][pick[i]];
      bits += pow[i][pick[i]];
    }
    if (bits >= n && ceil_pow2(prod) == target) return true;
    u32 axis = 0;
    while (axis < k && ++pick[axis] == ext[axis].size()) pick[axis++] = 0;
    if (axis == k) break;
  }
  return false;
}

}  // namespace hj::m2o
