#include "linalg/cannon.hpp"

namespace hj::la {

std::vector<double> reference_matvec(u64 m, const std::vector<double>& A,
                                     const std::vector<double>& x) {
  std::vector<double> y(m, 0.0);
  for (u64 i = 0; i < m; ++i)
    for (u64 j = 0; j < m; ++j) y[i] += A[i * m + j] * x[j];
  return y;
}

MatvecResult matvec(const Embedding& emb, u64 m,
                    const std::vector<double>& A,
                    const std::vector<double>& x, u32 flits_per_block) {
  const Shape& grid = emb.guest().shape();
  require(grid.dims() == 2 && grid[0] == grid[1],
          "matvec: needs a square 2-D processor grid");
  const u64 p = grid[0];
  require(m % p == 0, "matvec: m must be a multiple of p");
  require(A.size() == m * m && x.size() == m, "matvec: size mismatch");
  const u64 t = m / p;

  MatvecResult result;
  const sim::SimConfig net_cfg{emb.host_dim(), 1, 10'000'000,
                               sim::Switching::StoreAndForward,
                               flits_per_block};

  // Phase 1: the diagonal processor (c, c) owns slice x_c; broadcast it
  // down column c, systolically in both directions (each hop one cycle of
  // dependency). All columns proceed in parallel.
  {
    sim::CubeNetwork net(net_cfg);
    for (u64 c = 0; c < p; ++c) {
      // Downward chain c -> c+1 -> ... and upward chain c -> c-1 -> ...
      i64 dep = -1;
      for (u64 r = c; r + 1 < p; ++r) {
        dep = static_cast<i64>(net.add_message(
            neighbor_route(emb, grid.index(Coord{r, c}),
                           grid.index(Coord{r + 1, c})),
            dep));
        ++result.messages;
      }
      dep = -1;
      for (u64 r = c; r > 0; --r) {
        dep = static_cast<i64>(net.add_message(
            neighbor_route(emb, grid.index(Coord{r, c}),
                           grid.index(Coord{r - 1, c})),
            dep));
        ++result.messages;
      }
    }
    result.comm_cycles += net.run().cycles;
  }

  // Phase 2: local partial products (free in the communication model).
  // partial[(r, c)] = A_tile(r, c) * x_c.
  const u64 procs = grid.num_nodes();
  std::vector<std::vector<double>> partial(procs, std::vector<double>(t, 0));
  for (u64 r = 0; r < p; ++r)
    for (u64 c = 0; c < p; ++c) {
      auto& out = partial[grid.index(Coord{r, c})];
      for (u64 i = 0; i < t; ++i)
        for (u64 j = 0; j < t; ++j)
          out[i] += A[(r * t + i) * m + c * t + j] * x[c * t + j];
    }

  // Phase 3: systolic row reduction right-to-left into column 0: each
  // processor waits for its right neighbor's partial sum, adds, forwards.
  {
    sim::CubeNetwork net(net_cfg);
    for (u64 r = 0; r < p; ++r) {
      i64 dep = -1;
      for (u64 c = p; c-- > 1;) {
        dep = static_cast<i64>(net.add_message(
            neighbor_route(emb, grid.index(Coord{r, c}),
                           grid.index(Coord{r, c - 1})),
            dep));
        ++result.messages;
        // The data reduction itself:
        auto& acc = partial[grid.index(Coord{r, c - 1})];
        const auto& in = partial[grid.index(Coord{r, c})];
        for (u64 i = 0; i < t; ++i) acc[i] += in[i];
      }
    }
    result.comm_cycles += net.run().cycles;
  }

  // Gather y from column 0.
  result.y.assign(m, 0.0);
  for (u64 r = 0; r < p; ++r) {
    const auto& slice = partial[grid.index(Coord{r, 0})];
    for (u64 i = 0; i < t; ++i) result.y[r * t + i] = slice[i];
  }
  return result;
}

}  // namespace hj::la
