#include "linalg/cannon.hpp"

#include <algorithm>

namespace hj::la {
namespace {

/// A tile of the distributed matrix.
using Tile = std::vector<double>;

/// The cube route moving a tile one step along `axis` in the decreasing
/// direction (c -> c-1, cyclically): the embedding's path for that mesh
/// edge, or the direct cube route when the guest has no wrap channel.
CubePath shift_route(const Embedding& emb, const Shape& grid, u64 r, u64 c,
                     u32 axis) {
  Coord from(2, 0);
  from[0] = r;
  from[1] = c;
  Coord to = from;
  const u64 len = grid[axis];
  const bool wraps_back = from[axis] == 0;
  to[axis] = wraps_back ? len - 1 : from[axis] - 1;
  if (wraps_back && !(emb.guest().wraps(axis) && len > 2)) {
    // No wrap channel: route across the cube directly.
    return Hypercube::ecube_path(emb.map(grid.index(from)),
                                 emb.map(grid.index(to)));
  }
  if (len == 2) {
    return emb.edge_path(
        MeshEdge{grid.index(Coord{axis == 0 ? u64{0} : r,
                                  axis == 1 ? u64{0} : c}),
                 grid.index(Coord{axis == 0 ? u64{1} : r,
                                  axis == 1 ? u64{1} : c}),
                 axis, false});
  }
  return neighbor_route(emb, grid.index(from), grid.index(to));
}

void local_multiply_accumulate(Tile& c, const Tile& a, const Tile& b,
                               u64 t) {
  for (u64 i = 0; i < t; ++i)
    for (u64 k = 0; k < t; ++k) {
      const double aik = a[i * t + k];
      for (u64 j = 0; j < t; ++j) c[i * t + j] += aik * b[k * t + j];
    }
}

}  // namespace

std::vector<double> reference_multiply(u64 m, const std::vector<double>& A,
                                       const std::vector<double>& B) {
  std::vector<double> C(m * m, 0.0);
  for (u64 i = 0; i < m; ++i)
    for (u64 k = 0; k < m; ++k) {
      const double aik = A[i * m + k];
      for (u64 j = 0; j < m; ++j) C[i * m + j] += aik * B[k * m + j];
    }
  return C;
}

CannonResult cannon_multiply(const Embedding& emb, u64 m,
                             const std::vector<double>& A,
                             const std::vector<double>& B,
                             u32 flits_per_tile, sim::Switching sw) {
  const Shape& grid = emb.guest().shape();
  require(grid.dims() == 2 && grid[0] == grid[1],
          "cannon_multiply: needs a square 2-D processor grid");
  const u64 p = grid[0];
  require(m % p == 0, "cannon_multiply: m must be a multiple of p");
  require(A.size() == m * m && B.size() == m * m,
          "cannon_multiply: matrix size mismatch");
  const u64 t = m / p;

  // Distribute: tile (r, c) of A and B to processor (r, c). Tiles are
  // indexed by mesh index, i.e. they "live on" the embedded cube node.
  const u64 procs = grid.num_nodes();
  std::vector<Tile> a(procs, Tile(t * t)), b(procs, Tile(t * t)),
      c(procs, Tile(t * t, 0.0));
  for (u64 r = 0; r < p; ++r)
    for (u64 col = 0; col < p; ++col) {
      const u64 idx = grid.index(Coord{r, col});
      for (u64 i = 0; i < t; ++i)
        for (u64 j = 0; j < t; ++j) {
          a[idx][i * t + j] = A[(r * t + i) * m + col * t + j];
          b[idx][i * t + j] = B[(r * t + i) * m + col * t + j];
        }
    }

  CannonResult result;
  const sim::SimConfig net_cfg{emb.host_dim(), 1, 10'000'000, sw,
                               flits_per_tile};

  // One cyclic shift of every tile by one step along `axis` (decreasing
  // coordinate). `move` masks which grid positions actually send. Returns
  // the simulated cycles.
  auto shift_step = [&](std::vector<Tile>& tiles, u32 axis,
                        const std::vector<bool>& move) -> u64 {
    sim::CubeNetwork net(net_cfg);
    std::vector<Tile> next = tiles;
    for (u64 r = 0; r < p; ++r)
      for (u64 col = 0; col < p; ++col) {
        const u64 src = grid.index(Coord{r, col});
        if (!move[src]) continue;
        Coord dstc{r, col};
        dstc[axis] = dstc[axis] == 0 ? p - 1 : dstc[axis] - 1;
        const u64 dst = grid.index(dstc);
        next[dst] = tiles[src];
        CubePath route = shift_route(emb, grid, r, col, axis);
        if (route.size() >= 2) {
          net.add_message(std::move(route));
          ++result.messages;
        }
      }
    // `next` starts as a copy, so non-movers keep their tile and every
    // arrival overwrites its slot. The masks used here (whole rows for A,
    // whole columns for B) guarantee a vacated slot is always refilled.
    tiles.swap(next);
    return net.run().cycles;
  };

  const std::vector<bool> all(procs, true);

  // Skew: A tile at row r shifts left r times; B tile at column c shifts
  // up c times. Executed as p-1 masked unit-shift rounds (round s moves
  // tiles that still owe shifts), which is how systolic implementations
  // stage it.
  std::vector<u64> owedA(procs), owedB(procs);
  for (u64 r = 0; r < p; ++r)
    for (u64 col = 0; col < p; ++col) {
      owedA[grid.index(Coord{r, col})] = r;
      owedB[grid.index(Coord{r, col})] = col;
    }
  for (u64 s = 0; s + 1 < p; ++s) {
    std::vector<bool> moveA(procs), moveB(procs);
    bool any = false;
    for (u64 i = 0; i < procs; ++i) {
      moveA[i] = owedA[i] > 0;
      moveB[i] = owedB[i] > 0;
      any = any || moveA[i] || moveB[i];
    }
    if (!any) break;
    // Owed counts travel with the tiles. A's owed count is constant along
    // each row and B's along each column, so shifting the count arrays is
    // just a decrement.
    for (u64 i = 0; i < procs; ++i) {
      if (owedA[i] > 0) --owedA[i];
      if (owedB[i] > 0) --owedB[i];
    }
    const u64 ca = shift_step(a, 1, moveA);
    const u64 cb = shift_step(b, 0, moveB);
    result.skew_cycles += std::max(ca, cb);
  }
  result.comm_cycles = result.skew_cycles;

  // Main loop: p rounds of multiply + shift (no shift after the last).
  for (u64 round = 0; round < p; ++round) {
    ++result.rounds;
    for (u64 i = 0; i < procs; ++i)
      local_multiply_accumulate(c[i], a[i], b[i], t);
    if (round + 1 == p) break;
    const u64 ca = shift_step(a, 1, all);
    const u64 cb = shift_step(b, 0, all);
    result.comm_cycles += std::max(ca, cb);
  }

  // Gather C.
  result.C.assign(m * m, 0.0);
  for (u64 r = 0; r < p; ++r)
    for (u64 col = 0; col < p; ++col) {
      const u64 idx = grid.index(Coord{r, col});
      for (u64 i = 0; i < t; ++i)
        for (u64 j = 0; j < t; ++j)
          result.C[(r * t + i) * m + col * t + j] = c[idx][i * t + j];
    }
  return result;
}

}  // namespace hj::la
