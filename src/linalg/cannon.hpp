// hjembed: distributed dense linear algebra on embedded process meshes —
// the paper's opening motivation ("many linear algebra computations can be
// performed effectively on processor networks configured as
// two-dimensional meshes, with or without wraparound") made executable.
//
// Cannon's algorithm multiplies two m x m matrices on a p x p processor
// torus: after a skew alignment, p rounds each do a local tile multiply,
// then ring-shift the A tiles left and the B tiles up. All data movement
// goes through the embedding (tiles live on cube nodes; shifts follow the
// embedding's edge paths) and the communication time comes from the
// hypersim network, so the choice of embedding — Gray vs decomposition,
// mesh vs torus — shows up directly in the cycle counts while the numerics
// stay bit-identical.
#pragma once

#include <vector>

#include "hypersim/network.hpp"

namespace hj::la {

struct CannonResult {
  /// The full m x m product, gathered (row-major) — compare against a
  /// serial reference to validate the data movement end to end.
  std::vector<double> C;
  /// Simulated communication cycles: skew phase + p-1 shift rounds.
  u64 comm_cycles = 0;
  /// Simulated cycles of the skew (alignment) phase alone.
  u64 skew_cycles = 0;
  u64 rounds = 0;
  u64 messages = 0;
};

/// Multiply A * B (both m x m, row-major) on the processor grid given by
/// `emb` (a 2-D square guest, p x p; wraparound axes make the ring shifts
/// single-hop, a plain mesh pays the long way back). m must be a multiple
/// of p. `flits_per_tile` sets the simulated message length of one tile
/// transfer; `sw` the switching mode.
[[nodiscard]] CannonResult cannon_multiply(
    const Embedding& emb, u64 m, const std::vector<double>& A,
    const std::vector<double>& B, u32 flits_per_tile = 1,
    sim::Switching sw = sim::Switching::StoreAndForward);

/// Serial reference multiply for validation.
[[nodiscard]] std::vector<double> reference_multiply(
    u64 m, const std::vector<double>& A, const std::vector<double>& B);

struct MatvecResult {
  std::vector<double> y;  // the m-vector A * x
  /// Simulated cycles: broadcast of x down the columns, then the partial
  /// sums travel rightward along each row (a systolic row reduction).
  u64 comm_cycles = 0;
  u64 messages = 0;
};

/// y = A * x on the p x p grid of `emb`: x is broadcast down the columns
/// (each diagonal processor owns its slice), every processor multiplies
/// its tile, and the row partial sums reduce left-to-right systolically.
/// Exercises Johnsson's [15] broadcast + reduction structure through the
/// embedding.
[[nodiscard]] MatvecResult matvec(const Embedding& emb, u64 m,
                                  const std::vector<double>& A,
                                  const std::vector<double>& x,
                                  u32 flits_per_block = 1);

/// Serial reference.
[[nodiscard]] std::vector<double> reference_matvec(
    u64 m, const std::vector<double>& A, const std::vector<double>& x);

}  // namespace hj::la
