// hjembed search: simulated-annealing search for bounded-dilation
// embeddings.
//
// Backtracking proves nonexistence but struggles on the larger direct
// shapes (11x11 into Q7 has ~10^200 raw placements). Annealing gives up
// completeness for speed: it walks the space of injective placements,
// penalizing every edge whose image exceeds the dilation bound, and
// returns a witness when the penalty reaches zero. A returned map is
// always exact (the caller re-verifies it); a miss proves nothing.
#pragma once

#include <optional>
#include <vector>

#include "core/mesh.hpp"

namespace hj::search {

struct AnnealOptions {
  u32 max_dilation = 2;
  u64 iterations = 2'000'000;  // per restart
  u32 restarts = 8;
  double t_start = 2.5;
  double t_end = 0.02;
  u64 seed = 0x9e3779b97f4a7c15ull;
};

struct AnnealResult {
  std::optional<std::vector<CubeNode>> map;
  /// Best (lowest) penalty seen: sum over edges of max(0, length - bound).
  u64 best_penalty = 0;
  u64 iterations_used = 0;
};

/// Search for a one-to-one embedding of `guest` into Q_{host_dim} with
/// dilation <= opts.max_dilation by simulated annealing.
[[nodiscard]] AnnealResult anneal_search(const Mesh& guest, u32 host_dim,
                                         const AnnealOptions& opts = {});

}  // namespace hj::search
