#include "search/anneal.hpp"

#include <cmath>
#include <random>

namespace hj::search {
namespace {

/// Penalty of one edge image: how far past the dilation bound it is.
/// Squaring rewards shortening very long edges first.
u64 edge_penalty(CubeNode a, CubeNode b, u32 bound) {
  const u32 h = hamming(a, b);
  if (h <= bound) return 0;
  const u64 over = h - bound;
  return over * over;
}

constexpr u32 kNoPos = ~0u;

}  // namespace

AnnealResult anneal_search(const Mesh& guest, u32 host_dim,
                           const AnnealOptions& opts) {
  require(host_dim <= 30, "anneal_search: host_dim too large");
  AnnealResult result;
  const u64 n_guest = guest.num_nodes();
  const u64 n_host = u64{1} << host_dim;
  if (n_guest > n_host) return result;

  // Edge and adjacency structures.
  struct E {
    MeshIndex a, b;
  };
  std::vector<E> edges;
  guest.for_each_edge(
      [&](const MeshEdge& e) { edges.push_back({e.a, e.b}); });
  std::vector<SmallVec<u32, 8>> incident(n_guest);
  for (u32 ei = 0; ei < edges.size(); ++ei) {
    incident[edges[ei].a].push_back(ei);
    incident[edges[ei].b].push_back(ei);
  }
  std::vector<SmallVec<MeshIndex, 8>> adj(n_guest);
  for (const E& e : edges) {
    adj[e.a].push_back(e.b);
    adj[e.b].push_back(e.a);
  }

  std::mt19937_64 rng(opts.seed);
  result.best_penalty = ~u64{0};

  for (u32 restart = 0; restart < opts.restarts; ++restart) {
    // Initial placement: Gray-like row-major fill keeps most edges short.
    std::vector<CubeNode> place(n_guest);
    std::vector<i64> owner(n_host, -1);  // cube node -> guest node or -1
    for (u64 i = 0; i < n_guest; ++i) {
      place[i] = i ^ (i >> 1);  // gray of the linear index
      owner[place[i]] = static_cast<i64>(i);
    }

    // Violated-edge bookkeeping: a worklist so moves can focus on the
    // endpoints that still hurt.
    std::vector<u64> pen(edges.size(), 0);
    std::vector<u32> violated;
    std::vector<u32> vpos(edges.size(), kNoPos);
    u64 penalty = 0;
    auto refresh_edge = [&](u32 ei) {
      const u64 fresh =
          edge_penalty(place[edges[ei].a], place[edges[ei].b],
                       opts.max_dilation);
      penalty += fresh - pen[ei];
      if (fresh && vpos[ei] == kNoPos) {
        vpos[ei] = static_cast<u32>(violated.size());
        violated.push_back(ei);
      } else if (!fresh && vpos[ei] != kNoPos) {
        const u32 last = violated.back();
        violated[vpos[ei]] = last;
        vpos[last] = vpos[ei];
        violated.pop_back();
        vpos[ei] = kNoPos;
      }
      pen[ei] = fresh;
    };
    for (u32 ei = 0; ei < edges.size(); ++ei) refresh_edge(ei);

    auto node_cost = [&](MeshIndex v, CubeNode at) {
      u64 c = 0;
      for (MeshIndex w : adj[v])
        c += edge_penalty(at, place[w], opts.max_dilation);
      return c;
    };

    const double cool =
        std::pow(opts.t_end / opts.t_start,
                 1.0 / static_cast<double>(opts.iterations));
    double temp = opts.t_start;
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    std::uniform_int_distribution<u64> pick_guest(0, n_guest - 1);
    std::uniform_int_distribution<u64> pick_host(0, n_host - 1);

    for (u64 it = 0; it < opts.iterations && penalty > 0; ++it, temp *= cool) {
      ++result.iterations_used;
      // Focus most moves on an endpoint of a violated edge.
      MeshIndex v;
      if (!violated.empty() && unit(rng) < 0.75) {
        const u32 ei = violated[static_cast<std::size_t>(
            unit(rng) * static_cast<double>(violated.size()))];
        v = unit(rng) < 0.5 ? edges[ei].a : edges[ei].b;
      } else {
        v = pick_guest(rng);
      }
      const CubeNode from = place[v];
      // Half the time target a slot near a neighbor's image (a productive
      // destination), otherwise anywhere.
      CubeNode to;
      if (!adj[v].empty() && unit(rng) < 0.5) {
        const MeshIndex w = adj[v][static_cast<std::size_t>(
            unit(rng) * static_cast<double>(adj[v].size()))];
        const u32 bit1 = static_cast<u32>(pick_host(rng)) % host_dim;
        const u32 bit2 = static_cast<u32>(pick_host(rng)) % host_dim;
        to = place[w] ^ (u64{1} << bit1) ^ (u64{1} << bit2);
      } else {
        to = pick_host(rng);
      }
      if (to == from) continue;
      const i64 displaced = owner[to];
      const MeshIndex w =
          displaced < 0 ? 0 : static_cast<MeshIndex>(displaced);

      i64 delta;
      if (displaced < 0) {
        delta = static_cast<i64>(node_cost(v, to)) -
                static_cast<i64>(node_cost(v, from));
      } else {
        const u64 before = node_cost(v, from) + node_cost(w, to);
        place[v] = to;
        place[w] = from;
        const u64 after = node_cost(v, to) + node_cost(w, from);
        place[v] = from;
        place[w] = to;
        delta = static_cast<i64>(after) - static_cast<i64>(before);
      }

      if (delta <= 0 ||
          unit(rng) < std::exp(-static_cast<double>(delta) / temp)) {
        if (displaced < 0) {
          owner[from] = -1;
          owner[to] = static_cast<i64>(v);
          place[v] = to;
        } else {
          owner[to] = static_cast<i64>(v);
          owner[from] = static_cast<i64>(w);
          place[v] = to;
          place[w] = from;
        }
        for (u32 ei : incident[v]) refresh_edge(ei);
        if (displaced >= 0)
          for (u32 ei : incident[w]) refresh_edge(ei);
      }
    }

    result.best_penalty = std::min(result.best_penalty, penalty);
    if (penalty == 0) {
      result.map = std::move(place);
      return result;
    }
    rng.seed(opts.seed + 0x517cc1b727220a95ull * (restart + 1));
  }
  return result;
}

}  // namespace hj::search
