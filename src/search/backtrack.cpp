#include "search/backtrack.hpp"

#include <algorithm>
#include <random>

#include "core/hypercube.hpp"
#include "search/bitset.hpp"

namespace hj::search {
namespace {

/// Hamming ball of radius r around every cube node, as bitsets.
std::vector<NodeSet> make_balls(u32 dim, u32 radius) {
  const u64 n = u64{1} << dim;
  std::vector<NodeSet> balls(n, NodeSet(dim));
  // Enumerate all masks of popcount <= radius once, then translate.
  std::vector<u64> offsets;
  offsets.push_back(0);
  for (u32 r = 1; r <= radius; ++r) {
    // All masks with exactly r bits via Gosper's hack.
    if (r > dim) break;
    u64 m = (u64{1} << r) - 1;
    const u64 limit = u64{1} << dim;
    while (m < limit) {
      offsets.push_back(m);
      const u64 c = m & (~m + 1);
      const u64 rr = m + c;
      m = (((rr ^ m) >> 2) / c) | rr;
    }
  }
  for (u64 v = 0; v < n; ++v)
    for (u64 off : offsets) balls[v].set(v ^ off);
  return balls;
}

struct Frame {
  std::vector<CubeNode> candidates;
  std::size_t next = 0;
  u64 used_dims_before = 0;
};

}  // namespace

BacktrackResult backtrack_search(const Mesh& guest, u32 host_dim,
                                 const BacktrackOptions& opts) {
  require(host_dim <= 24, "backtrack_search: host_dim too large");
  BacktrackResult result;
  const u64 n_guest = guest.num_nodes();
  const u64 n_host = u64{1} << host_dim;
  if (n_guest > n_host) {
    result.exhausted = true;
    return result;
  }

  const std::vector<NodeSet> balls = make_balls(host_dim, opts.max_dilation);

  // Earlier-placed neighbors of each node under row-major assignment order.
  std::vector<SmallVec<MeshIndex, 8>> prev(n_guest);
  guest.for_each_edge([&](const MeshEdge& e) {
    const MeshIndex lo = std::min(e.a, e.b), hi = std::max(e.a, e.b);
    prev[hi].push_back(lo);
  });

  std::vector<CubeNode> assign(n_guest, 0);
  NodeSet free(host_dim);
  free.fill();
  std::vector<Frame> stack;
  stack.reserve(n_guest);
  u64 used_dims = 0;

  auto push_frame = [&](MeshIndex node) {
    Frame f;
    f.used_dims_before = used_dims;
    if (node == 0) {
      f.candidates.push_back(0);  // translation symmetry: phi(0) = 0
    } else {
      NodeSet cand(host_dim);
      cand.fill();
      cand &= free;
      for (MeshIndex p : prev[node]) cand &= balls[assign[p]];
      cand.for_each([&](CubeNode c) {
        if (opts.canonical_pruning) {
          const u64 fresh = c & ~used_dims;
          if (fresh) {
            // Fresh dims must be exactly the lowest unused positions up to
            // the highest fresh bit.
            const u64 below =
                (u64{1} << (log2_floor(fresh) + 1)) - 1;
            if (((below & ~used_dims) ^ fresh) != 0) return;
          }
        }
        f.candidates.push_back(c);
      });
      // Try tight placements first: order by total distance to the placed
      // neighbors, so dilation-1 continuations are explored before
      // dilation-2 ones. With a shuffle seed, ties break randomly (for
      // randomized-restart searching) instead of by address.
      auto cost = [&](CubeNode x) {
        u32 d = 0;
        for (MeshIndex p : prev[node]) d += hamming(assign[p], x);
        return d;
      };
      if (opts.shuffle_seed) {
        std::mt19937_64 rng(opts.shuffle_seed ^
                            (0x9e3779b97f4a7c15ull * (node + 1)));
        std::shuffle(f.candidates.begin(), f.candidates.end(), rng);
        std::stable_sort(
            f.candidates.begin(), f.candidates.end(),
            [&](CubeNode x, CubeNode y) { return cost(x) < cost(y); });
      } else {
        std::sort(f.candidates.begin(), f.candidates.end(),
                  [&](CubeNode x, CubeNode y) {
                    const u32 dx = cost(x), dy = cost(y);
                    if (dx != dy) return dx < dy;
                    return x < y;
                  });
      }
    }
    stack.push_back(std::move(f));
  };

  push_frame(0);
  while (!stack.empty()) {
    if (opts.node_budget && result.nodes_expanded >= opts.node_budget)
      return result;  // budget exhausted, inconclusive
    Frame& f = stack.back();
    const MeshIndex node = static_cast<MeshIndex>(stack.size()) - 1;
    if (f.next >= f.candidates.size()) {
      // Backtrack.
      stack.pop_back();
      if (!stack.empty()) {
        const MeshIndex prev_node = static_cast<MeshIndex>(stack.size()) - 1;
        free.set(assign[prev_node]);
        used_dims = stack.back().used_dims_before;
        // used_dims is restored lazily below when the frame advances; the
        // stored value at push time covers re-expansion correctly.
      }
      continue;
    }
    const CubeNode c = f.candidates[f.next++];
    ++result.nodes_expanded;
    assign[node] = c;
    used_dims = f.used_dims_before | c;
    if (stack.size() == n_guest) {
      result.map = assign;
      return result;
    }
    free.reset(c);
    push_frame(static_cast<MeshIndex>(stack.size()));
  }

  result.exhausted = true;
  return result;
}

}  // namespace hj::search
