// hjembed search: adapter exposing the searchers as a planner
// DirectProvider.
#pragma once

#include "core/planner.hpp"
#include "search/anneal.hpp"
#include "search/backtrack.hpp"

namespace hj::search {

/// A DirectProvider that runs bounded backtracking and, when inconclusive,
/// a short annealing pass. Deterministic for a fixed budget and seed.
[[nodiscard]] inline DirectProvider make_search_provider(
    u64 backtrack_budget = 20'000'000, u64 anneal_iterations = 0,
    u32 max_dilation = 2) {
  return [=](const Mesh& guest,
             u32 host_dim) -> std::optional<std::vector<CubeNode>> {
    BacktrackOptions bo;
    bo.max_dilation = max_dilation;
    bo.node_budget = backtrack_budget;
    BacktrackResult br = backtrack_search(guest, host_dim, bo);
    if (br.map) return br.map;
    if (br.exhausted || anneal_iterations == 0) return std::nullopt;
    AnnealOptions ao;
    ao.max_dilation = max_dilation;
    ao.iterations = anneal_iterations;
    ao.restarts = 2;
    AnnealResult ar = anneal_search(guest, host_dim, ao);
    return ar.map ? std::optional(std::move(*ar.map)) : std::nullopt;
  };
}

}  // namespace hj::search
