// hjembed search: exhaustive backtracking search for bounded-dilation
// embeddings.
//
// The paper's direct embeddings (Section 3.3) are given as tables in its
// companion reports [13, 14], which are not reproduced in the ICPP text.
// This searcher regenerates equivalent tables from scratch: it proves or
// refutes the existence of an embedding of a mesh into Q_n in which every
// edge image has cube length at most `max_dilation`, and returns a witness
// node map when one exists.
//
// Pruning: nodes are assigned in row-major order so every new node is
// constrained by its already-placed neighbors (candidate set = intersection
// of Hamming balls); cube symmetries are broken by fixing the first image
// at address 0 and demanding that fresh address bits appear in increasing
// position order (one representative per translation x bit-permutation
// orbit survives).
#pragma once

#include <optional>
#include <vector>

#include "core/mesh.hpp"

namespace hj::search {

struct BacktrackOptions {
  u32 max_dilation = 2;
  /// Stop after this many search-tree nodes (0 = unlimited). When the
  /// budget is hit the result is inconclusive, not a refutation.
  u64 node_budget = 0;
  /// Break cube symmetries (disable only for testing the pruning itself).
  bool canonical_pruning = true;
  /// Nonzero: shuffle ties in the candidate ordering with this seed.
  /// Randomized restarts (different seeds, modest budgets) often find
  /// witnesses that one deep deterministic run misses; a refutation under
  /// any seed is still exhaustive and therefore sound.
  u64 shuffle_seed = 0;
};

struct BacktrackResult {
  /// A witness map (guest linear index -> cube node), if one was found.
  std::optional<std::vector<CubeNode>> map;
  /// True when the search space was exhausted: together with an empty map
  /// this *proves* no embedding with the requested dilation exists.
  bool exhausted = false;
  u64 nodes_expanded = 0;
};

/// Search for a one-to-one embedding of `guest` into Q_{host_dim} with
/// dilation <= opts.max_dilation. Requires host_dim <= 24 (table sizes);
/// practical sizes are much smaller.
[[nodiscard]] BacktrackResult backtrack_search(const Mesh& guest,
                                               u32 host_dim,
                                               const BacktrackOptions& opts = {});

}  // namespace hj::search
