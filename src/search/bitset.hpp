// hjembed search: fixed-universe bitsets over cube nodes.
#pragma once

#include <vector>

#include "core/common.hpp"

namespace hj::search {

/// A bitset over the 2^n nodes of a cube, sized at construction. Supports
/// the operations the backtracking searcher needs: set/reset/test, in-place
/// intersection, and iteration over set bits.
class NodeSet {
 public:
  explicit NodeSet(u32 cube_dim)
      : bits_((std::size_t{1} << cube_dim) / 64 + 1, 0),
        universe_(u64{1} << cube_dim) {}

  void set(CubeNode v) noexcept { bits_[v >> 6] |= u64{1} << (v & 63); }
  void reset(CubeNode v) noexcept { bits_[v >> 6] &= ~(u64{1} << (v & 63)); }
  [[nodiscard]] bool test(CubeNode v) const noexcept {
    return (bits_[v >> 6] >> (v & 63)) & 1;
  }

  void fill() noexcept {
    for (u64 v = 0; v < universe_; ++v) set(v);
  }

  void clear() noexcept {
    for (u64& w : bits_) w = 0;
  }

  NodeSet& operator&=(const NodeSet& rhs) noexcept {
    for (std::size_t i = 0; i < bits_.size(); ++i) bits_[i] &= rhs.bits_[i];
    return *this;
  }

  [[nodiscard]] bool any() const noexcept {
    for (u64 w : bits_)
      if (w) return true;
    return false;
  }

  [[nodiscard]] u64 count() const noexcept {
    u64 c = 0;
    for (u64 w : bits_) c += static_cast<u64>(std::popcount(w));
    return c;
  }

  /// Visit every set bit in increasing order.
  template <class Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < bits_.size(); ++i) {
      u64 w = bits_[i];
      while (w) {
        const u64 low = w & (~w + 1);
        fn(static_cast<CubeNode>(i * 64 +
                                 static_cast<u64>(std::countr_zero(w))));
        w ^= low;
      }
    }
  }

 private:
  std::vector<u64> bits_;
  u64 universe_;
};

}  // namespace hj::search
