#include "reshape/reshape.hpp"

#include <algorithm>

namespace hj::reshape {

std::vector<MeshIndex> MeshMap::path(const MeshEdge& e) const {
  // Axis-ordered staircase: walk each axis in turn from map(a) to map(b).
  const Shape& hs = host_.shape();
  const Coord from = hs.coord(map(e.a));
  const Coord to = hs.coord(map(e.b));
  std::vector<MeshIndex> out;
  Coord cur = from;
  out.push_back(hs.index(cur));
  for (u32 axis = 0; axis < hs.dims(); ++axis) {
    while (cur[axis] != to[axis]) {
      cur[axis] += cur[axis] < to[axis] ? 1 : u64(-1);
      out.push_back(hs.index(cur));
    }
  }
  return out;
}

u32 MeshMap::dilation() const {
  u32 d = 0;
  guest_.for_each_edge([&](const MeshEdge& e) {
    d = std::max(d, static_cast<u32>(path(e).size() - 1));
  });
  return d;
}

// ---------------------------------------------------------------------------

namespace {

Shape folding_host(const Shape& guest, u64 host_rows) {
  require(guest.dims() == 2, "FoldingMap: 2D guests only");
  require(host_rows >= 1, "FoldingMap: need at least one host row");
  const u64 segments = (guest[0] + host_rows - 1) / host_rows;
  return Shape{host_rows, segments * guest[1]};
}

}  // namespace

FoldingMap::FoldingMap(Shape guest_shape, u64 host_rows)
    : MeshMap(Mesh(guest_shape), Mesh(folding_host(guest_shape, host_rows))),
      segments_((guest_shape[0] + host_rows - 1) / host_rows) {}

MeshIndex FoldingMap::map(MeshIndex idx) const {
  const Shape& gs = guest().shape();
  const Shape& hs = host().shape();
  const Coord g = gs.coord(idx);
  const u64 n1 = hs[0];
  const u64 seg = g[0] / n1;
  const u64 r = g[0] % n1;
  // Reflect odd segments so the fold line stays adjacent.
  const u64 row = (seg & 1) ? n1 - 1 - r : r;
  // Interleave: the `segments_` copies of guest column j sit side by side.
  const u64 col = g[1] * segments_ + seg;
  return hs.index(Coord{row, col});
}

// ---------------------------------------------------------------------------

SnakeMap::SnakeMap(Shape guest_shape, Shape host_shape)
    : MeshMap(Mesh(guest_shape), Mesh(host_shape)) {
  require(guest_shape.dims() == 2 && host_shape.dims() == 2,
          "SnakeMap: 2D only");
  require(host_shape.num_nodes() >= guest_shape.num_nodes(),
          "SnakeMap: host too small");
}

MeshIndex SnakeMap::map(MeshIndex idx) const {
  const Shape& gs = guest().shape();
  const Shape& hs = host().shape();
  const Coord g = gs.coord(idx);
  // Boustrophedon linearization of the guest (column-major, alternating
  // direction), then boustrophedon fill of the host columns.
  const u64 l1 = gs[0];
  const u64 gi = (g[1] & 1) ? l1 - 1 - g[0] : g[0];
  const u64 q = g[1] * l1 + gi;
  const u64 n1 = hs[0];
  const u64 col = q / n1;
  const u64 r = q % n1;
  const u64 row = (col & 1) ? n1 - 1 - r : r;
  return hs.index(Coord{row, col});
}

// ---------------------------------------------------------------------------

ComposedEmbedding::ComposedEmbedding(MeshMapPtr reshape, EmbeddingPtr inner)
    : Embedding(reshape->guest(), inner->host_dim()),
      reshape_(std::move(reshape)),
      inner_(std::move(inner)) {
  require(reshape_->host() == inner_->guest(),
          "ComposedEmbedding: reshape host must be the inner guest");
}

CubeNode ComposedEmbedding::map(MeshIndex idx) const {
  return inner_->map(reshape_->map(idx));
}

CubePath ComposedEmbedding::edge_path(const MeshEdge& e) const {
  const std::vector<MeshIndex> mesh_path = reshape_->path(e);
  const Shape& hs = reshape_->host().shape();
  CubePath out;
  out.push_back(inner_->map(mesh_path.front()));
  for (std::size_t i = 0; i + 1 < mesh_path.size(); ++i) {
    // Identify the host-mesh edge for this step and splice its cube path.
    const MeshIndex a = mesh_path[i], b = mesh_path[i + 1];
    const MeshIndex lo = std::min(a, b), hi = std::max(a, b);
    u32 axis = 0;
    const Coord ca = hs.coord(lo), cb = hs.coord(hi);
    for (u32 d = 0; d < hs.dims(); ++d)
      if (ca[d] != cb[d]) axis = d;
    CubePath step = inner_->edge_path(MeshEdge{lo, hi, axis, false});
    if (a > b) step.reverse();
    for (std::size_t j = 1; j < step.size(); ++j) out.push_back(step[j]);
  }
  return out;
}

// ---------------------------------------------------------------------------

EmbeddingPtr fold_and_gray(const Shape& shape, u32 row_bits) {
  auto fold = std::make_shared<FoldingMap>(shape, u64{1} << row_bits);
  auto gray = std::make_shared<GrayEmbedding>(fold->host());
  return std::make_shared<ComposedEmbedding>(std::move(fold),
                                             std::move(gray));
}

}  // namespace hj::reshape
