// hjembed: reshaping techniques (Section 3.2) and embedding composition
// (Lemma 2).
//
// Reshaping embeds an l1 x l2 mesh into an N1 x N2 mesh whose sides are
// powers of two, so a Gray code finishes the job; composing the two
// embeddings (Lemma 2) bounds each edge's cube dilation by the sum of the
// cube dilations along its mesh path. The paper's catalogue:
//
//   folding [19]            dilation = ceil(l1/N1) (2 for the classic
//                           half-fold), but wasteful: N2 >= ceil(l1/N1)*l2.
//   line compression [1]    capacity-tight boustrophedon packing; its max
//                           dilation degrades badly (SnakeMap measures
//                           this — the reason "modified" line compression
//                           [4] was a publishable result; that algorithm's
//                           text is unavailable, see DESIGN.md).
//
// The decomposition planner never needs these; they are here as faithful
// baselines and for the reshaping ablation bench.
#pragma once

#include <memory>

#include "core/embedding.hpp"

namespace hj::reshape {

/// A mesh-to-mesh embedding: a node map plus a host-mesh path per guest
/// edge (both meshes without wraparound).
class MeshMap {
 public:
  MeshMap(Mesh guest, Mesh host)
      : guest_(std::move(guest)), host_(std::move(host)) {
    require(!guest_.any_wrap() && !host_.any_wrap(),
            "MeshMap: wraparound meshes are not supported");
  }
  virtual ~MeshMap() = default;

  [[nodiscard]] const Mesh& guest() const noexcept { return guest_; }
  [[nodiscard]] const Mesh& host() const noexcept { return host_; }

  [[nodiscard]] virtual MeshIndex map(MeshIndex idx) const = 0;

  /// Host-mesh node sequence for a guest edge (endpoints included).
  /// Default: the axis-ordered staircase between the images.
  [[nodiscard]] virtual std::vector<MeshIndex> path(const MeshEdge& e) const;

  /// Max over guest edges of the host-mesh path length.
  [[nodiscard]] u32 dilation() const;

  MeshMap(const MeshMap&) = delete;
  MeshMap& operator=(const MeshMap&) = delete;

 private:
  Mesh guest_;
  Mesh host_;
};

using MeshMapPtr = std::shared_ptr<const MeshMap>;

/// Folding [19]: cut the guest's first axis into ceil(l1/N1) segments and
/// lay them side by side, reflecting odd segments so the cuts stay
/// adjacent. Host: N1 x (ceil(l1/N1) * l2). Dilation = ceil(l1/N1) (the
/// horizontal stride between copies).
class FoldingMap final : public MeshMap {
 public:
  FoldingMap(Shape guest_shape, u64 host_rows);

  [[nodiscard]] MeshIndex map(MeshIndex idx) const override;

 private:
  u64 segments_;
};

/// Line compression [1], naive form: boustrophedon column-major packing of
/// guest cells into host columns. Capacity-tight (any host with
/// N1 * N2 >= l1 * l2 works) but the max dilation degrades with N1 — the
/// measured justification for Chan's modified algorithm.
class SnakeMap final : public MeshMap {
 public:
  SnakeMap(Shape guest_shape, Shape host_shape);

  [[nodiscard]] MeshIndex map(MeshIndex idx) const override;
};

/// Lemma 2: compose a mesh-to-mesh embedding with a mesh-to-cube
/// embedding. Each guest edge's cube path is the concatenation of the
/// cube paths of its host-mesh path's edges, so
/// dil(e) <= sum of the inner dilations along the reshaped path.
class ComposedEmbedding final : public Embedding {
 public:
  ComposedEmbedding(MeshMapPtr reshape, EmbeddingPtr inner);

  [[nodiscard]] CubeNode map(MeshIndex idx) const override;
  [[nodiscard]] CubePath edge_path(const MeshEdge& e) const override;

 private:
  MeshMapPtr reshape_;
  EmbeddingPtr inner_;
};

/// Convenience: reshape-by-folding into power-of-two rows, then Gray code.
/// Returns an embedding of `shape` with dilation = ceil(l1 / 2^row_bits).
[[nodiscard]] EmbeddingPtr fold_and_gray(const Shape& shape, u32 row_bits);

}  // namespace hj::reshape
