#include "store/writer.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <numeric>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#define HJ_STORE_HAVE_POSIX_IO 1
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace hj::store {

void Writer::add(Record r) { recs_.push_back(std::move(r)); }

std::string Writer::finish() const {
  // Encode the data region (records in insertion order) and remember each
  // record's span for the index.
  std::string data;
  std::vector<std::pair<u64, u64>> span(recs_.size());  // offset, bytes
  for (std::size_t i = 0; i < recs_.size(); ++i) {
    const u64 off = kSuperBytes + data.size();
    const std::size_t before = data.size();
    encode_record(data, recs_[i]);
    span[i] = {off, data.size() - before};
  }

  // Index entries sorted by key; duplicate keys are a caller bug.
  std::vector<std::size_t> order(recs_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return recs_[a].key < recs_[b].key;
  });
  for (std::size_t i = 1; i < order.size(); ++i)
    require(recs_[order[i - 1]].key < recs_[order[i]].key,
            "store::Writer: duplicate key %s",
            recs_[order[i]].key.to_string().c_str());

  std::string index;
  index.reserve(order.size() * kIndexEntryBytes);
  for (std::size_t i : order) {
    for (u64 e : recs_[i].key.ext) put_u64(index, e);
    put_u64(index, span[i].first);
    put_u64(index, span[i].second);
  }

  std::string sb;
  sb.reserve(kSuperBytes);
  put_u64(sb, kSuperMagic);
  put_u32(sb, kFormatVersion);
  put_u32(sb, 0);  // flags
  put_u64(sb, recs_.size());
  put_u64(sb, kSuperBytes);           // data_off
  put_u64(sb, data.size());           // data_bytes
  put_u64(sb, kSuperBytes + data.size());  // index_off
  put_u64(sb, index.size());          // index_bytes
  put_u64(sb, fnv1a(index));          // index checksum
  put_u64(sb, fnv1a(sb));             // superblock checksum (bytes [0,64))

  return sb + data + index;
}

namespace {

[[noreturn]] void io_fail(const std::string& path, const char* what) {
  throw std::runtime_error("plan store '" + path + "': " + what + ": " +
                           std::strerror(errno));
}

#ifdef HJ_STORE_HAVE_POSIX_IO
void write_all(int fd, const std::string& path, const char* p, u64 n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      io_fail(path, "write failed");
    }
    p += w;
    n -= static_cast<u64>(w);
  }
}

void fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY);
  if (dfd >= 0) {
    (void)::fsync(dfd);  // best effort: some filesystems reject dir fsync
    ::close(dfd);
  }
}
#endif

}  // namespace

void atomic_write_file(const std::string& path, const std::string& bytes) {
#ifdef HJ_STORE_HAVE_POSIX_IO
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) io_fail(tmp, "cannot create temp file");
  write_all(fd, tmp, bytes.data(), bytes.size());
  if (::fsync(fd) != 0) {
    ::close(fd);
    io_fail(tmp, "fsync failed");
  }
  if (::close(fd) != 0) io_fail(tmp, "close failed");
  if (::rename(tmp.c_str(), path.c_str()) != 0) io_fail(path, "rename failed");
  fsync_parent_dir(path);
#else
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os.good())
    throw std::runtime_error("plan store '" + path + "': cannot open");
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  os.flush();
  if (!os.good())
    throw std::runtime_error("plan store '" + path + "': write failed");
#endif
}

void append_file_sync(const std::string& path, const std::string& bytes) {
#ifdef HJ_STORE_HAVE_POSIX_IO
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) io_fail(path, "cannot open for append");
  write_all(fd, path, bytes.data(), bytes.size());
  if (::fsync(fd) != 0) {
    ::close(fd);
    io_fail(path, "fsync failed");
  }
  if (::close(fd) != 0) io_fail(path, "close failed");
#else
  std::ofstream os(path, std::ios::binary | std::ios::app);
  if (!os.good())
    throw std::runtime_error("plan store '" + path + "': cannot open");
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  os.flush();
  if (!os.good())
    throw std::runtime_error("plan store '" + path + "': append failed");
#endif
}

}  // namespace hj::store
