#include "store/serve.hpp"

#include <chrono>
#include <istream>
#include <ostream>
#include <sstream>
#include <thread>

#include "core/io.hpp"
#include "core/verify.hpp"
#include "obs/obs.hpp"

namespace hj::store {
namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] u64 elapsed_us(Clock::time_point since) noexcept {
  return static_cast<u64>(std::chrono::duration_cast<std::chrono::microseconds>(
                              Clock::now() - since)
                              .count());
}

void count(const char* name, u64 n = 1) {
  if (obs::enabled())
    obs::Registry::global().counter(name, obs::Kind::Timing).add(n);
}

}  // namespace

const char* verdict_name(Verdict v) noexcept {
  switch (v) {
    case Verdict::ServedWarm: return "served-warm";
    case Verdict::ServedCold: return "served-cold";
    case Verdict::Degraded: return "degraded";
    case Verdict::Shed: return "shed";
  }
  return "unknown";
}

Server::Server(const PlanStore* store, ServeOptions opts,
               const DirectProviderFactory& provider_factory)
    : store_(store), opts_(opts), planner_(opts.planner) {
  if (provider_factory) planner_.set_direct_provider(provider_factory());
}

PlanResult Server::canonical_plan(const Shape& canon, Verdict& verdict) {
  const std::string memo_key = canon.to_string();
  if (opts_.memoize) {
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = memo_.find(memo_key);
    if (it != memo_.end()) {
      verdict = Verdict::ServedWarm;
      return it->second;
    }
  }

  verdict = Verdict::ServedCold;
  if (store_ && canon.dims() <= kMaxRank) {
    const Key key = Key::of(canon);
    const PlanStore::Lookup hit = store_->lookup(key);
    switch (hit.status) {
      case PlanStore::Status::Hit: {
        count("store.hits");
        // Never serve an uncertified plan: the on-disk certificate is
        // advisory only. Re-parse and re-verify before first use; a
        // record that parses but does not verify is as bad as a flipped
        // checksum and gets quarantined the same way.
        try {
          const std::shared_ptr<ExplicitEmbedding> emb =
              io::from_text(hit.record.emb_text);
          if (emb->guest().shape() == canon) {
            VerifyReport report = verify(*emb);
            if (report.valid) {
              PlanResult res;
              res.embedding = emb;
              res.report = std::move(report);
              res.plan = hit.record.plan;
              verdict = Verdict::ServedWarm;
              if (opts_.memoize) {
                std::lock_guard<std::mutex> lk(mu_);
                memo_.emplace(memo_key, res);
              }
              return res;
            }
          }
        } catch (const std::exception&) {
          // fall through to quarantine + live planner
        }
        store_->quarantine(key);
        count("store.corrupt");
        verdict = Verdict::Degraded;
        break;
      }
      case PlanStore::Status::Corrupt:
        count("store.corrupt");
        verdict = Verdict::Degraded;
        break;
      case PlanStore::Status::Miss:
        count("store.misses");
        break;
    }
  }

  // Live planner fallback (cold miss or degraded corruption path). The
  // planner re-verifies its result by construction.
  std::lock_guard<std::mutex> lk(mu_);
  PlanResult res = planner_.plan(canon);
  if (opts_.memoize) memo_.emplace(memo_key, res);
  return res;
}

Reply Server::handle(const Shape& shape) {
  const Clock::time_point t0 = Clock::now();
  Reply rep;
  try {
    require(shape.num_nodes() >= 1 && shape.num_nodes() <= (u64{1} << 26),
            "request too large: at most 2^26 mesh nodes");
    const Shape canon = shape.sorted();
    Verdict verdict = Verdict::ServedCold;
    const PlanResult canon_plan = canonical_plan(canon, verdict);
    // Relabel to the requested axis order; relabel_plan re-verifies, so
    // the reply's certificate always covers the exact shape served.
    const PlanResult final_plan = relabel_plan(canon_plan, shape);
    rep.verdict = verdict;
    rep.ok = final_plan.report.valid;
    if (!rep.ok) rep.error = "plan failed verification";
    rep.cube = final_plan.report.host_dim;
    rep.dil = final_plan.report.dilation;
    rep.cong = final_plan.report.congestion;
    rep.wl = final_plan.report.wirelength;
    rep.plan = final_plan.plan;
  } catch (const std::exception& e) {
    rep.ok = false;
    rep.error = e.what();
  }
  rep.latency_us = elapsed_us(t0);

  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    stats_.requests += 1;
    if (!rep.ok) {
      stats_.errors += 1;
    } else {
      switch (rep.verdict) {
        case Verdict::ServedWarm: stats_.warm += 1; break;
        case Verdict::ServedCold: stats_.cold += 1; break;
        case Verdict::Degraded: stats_.degraded += 1; break;
        case Verdict::Shed: stats_.shed += 1; break;
      }
    }
    if (store_) {
      stats_.store_corrupt = store_->quarantined_count();
    }
  }
  if (obs::enabled()) {
    static obs::Histogram& lat = obs::Registry::global().histogram(
        "serve.latency_us", obs::Kind::Timing);
    lat.observe(rep.latency_us);
    if (rep.ok) count(rep.verdict == Verdict::ServedWarm   ? "serve.warm"
                      : rep.verdict == Verdict::Degraded ? "serve.degraded"
                                                         : "serve.cold");
  }
  return rep;
}

void Server::note_shed() {
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    stats_.requests += 1;
    stats_.shed += 1;
  }
  count("serve.shed");
}

ServeStats Server::stats() const {
  std::lock_guard<std::mutex> lk(stats_mu_);
  return stats_;
}

namespace {

struct Request {
  u64 id = 0;
  Shape shape;
  Clock::time_point admitted;
};

/// Parse a request line ("3x5x7", "3 5 7", optional leading "plan").
/// Returns the shape or an error message via `err`.
std::optional<Shape> parse_shape_line(const std::string& line,
                                      std::string& err) {
  std::string s = line;
  for (char& c : s)
    if (c == 'x' || c == 'X' || c == ',') c = ' ';
  std::istringstream ls(s);
  std::string tok;
  SmallVec<u64, 4> ext;
  u64 prod = 1;
  bool first = true;
  while (ls >> tok) {
    if (first && tok == "plan") {
      first = false;
      continue;
    }
    first = false;
    u64 v = 0;
    std::size_t pos = 0;
    try {
      v = std::stoull(tok, &pos);
    } catch (const std::exception&) {
      pos = 0;
    }
    if (pos != tok.size() || v == 0) {
      err = "bad extent '" + tok + "'";
      return std::nullopt;
    }
    if (v > (u64{1} << 26) || prod > (u64{1} << 26) / v) {
      err = "shape too large (at most 2^26 nodes)";
      return std::nullopt;
    }
    prod *= v;
    ext.push_back(v);
  }
  if (ext.empty()) {
    err = "empty request";
    return std::nullopt;
  }
  return Shape{std::move(ext)};
}

std::string format_reply(u64 id, const Shape& shape, const Reply& rep) {
  std::ostringstream os;
  if (!rep.ok) {
    os << "id=" << id << " error=" << rep.error;
    return os.str();
  }
  os << "id=" << id << " verdict=" << verdict_name(rep.verdict)
     << " shape=" << shape.to_string() << " cube=" << rep.cube
     << " dil=" << rep.dil << " cong=" << rep.cong << " wl=" << rep.wl
     << " us=" << rep.latency_us << " plan=" << rep.plan;
  return os.str();
}

std::string format_stats(const Server& server) {
  const ServeStats st = server.stats();
  std::ostringstream os;
  os << "stats requests=" << st.requests << " warm=" << st.warm
     << " cold=" << st.cold << " degraded=" << st.degraded
     << " shed=" << st.shed << " errors=" << st.errors;
  if (const PlanStore* ps = server.plan_store())
    os << " store_records=" << ps->record_count()
       << " quarantined=" << ps->quarantined_count();
  return os.str();
}

}  // namespace

int run_serve(std::istream& in, std::ostream& out, Server& server) {
  BoundedQueue<Request> queue(server.options().queue_cap);
  std::mutex out_mu;
  const auto emit = [&](const std::string& line) {
    std::lock_guard<std::mutex> lk(out_mu);
    out << line << '\n';
    out.flush();
  };

  std::thread worker([&] {
    while (std::optional<Request> r = queue.pop()) {
      const u64 deadline = server.options().deadline_us;
      if (deadline && elapsed_us(r->admitted) > deadline) {
        server.note_shed();
        emit("id=" + std::to_string(r->id) + " verdict=shed reason=deadline");
        continue;
      }
      const Reply rep = server.handle(r->shape);
      emit(format_reply(r->id, r->shape, rep));
    }
  });

  std::string line;
  u64 next_id = 0;
  while (std::getline(in, line)) {
    // Strip a trailing CR and surrounding whitespace; skip blanks/comments.
    while (!line.empty() && (line.back() == '\r' || line.back() == ' '))
      line.pop_back();
    std::size_t start = line.find_first_not_of(' ');
    if (start == std::string::npos) continue;
    const std::string body = line.substr(start);
    if (body[0] == '#') continue;
    if (body == "quit") break;
    if (body == "stats") {
      emit(format_stats(server));
      continue;
    }
    const u64 id = ++next_id;
    std::string err;
    const std::optional<Shape> shape = parse_shape_line(body, err);
    if (!shape) {
      emit("id=" + std::to_string(id) + " error=" + err);
      continue;
    }
    if (!queue.try_push(Request{id, *shape, Clock::now()})) {
      server.note_shed();
      emit("id=" + std::to_string(id) + " verdict=shed reason=queue-full");
    }
  }
  queue.close();
  worker.join();
  return 0;
}

}  // namespace hj::store
