#include "store/serve.hpp"

#include <chrono>
#include <fstream>
#include <iostream>
#include <istream>
#include <ostream>
#include <sstream>
#include <thread>

#include "core/io.hpp"
#include "core/verify.hpp"
#include "obs/obs.hpp"

namespace hj::store {
namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] u64 elapsed_us(Clock::time_point since) noexcept {
  return static_cast<u64>(std::chrono::duration_cast<std::chrono::microseconds>(
                              Clock::now() - since)
                              .count());
}

/// Cached handles for the fixed serve counters (the obs.hpp idiom): the
/// registry map is probed once, at first use, and every later add() is
/// one relaxed atomic — the per-request lookup the old count(name)
/// helper paid is gone.
struct Counters {
  obs::Counter& store_hits;
  obs::Counter& store_misses;
  obs::Counter& store_corrupt;
  obs::Counter& serve_warm;
  obs::Counter& serve_cold;
  obs::Counter& serve_degraded;
  obs::Counter& serve_shed;

  static Counters& get() {
    static Counters c{
        obs::Registry::global().counter("store.hits", obs::Kind::Timing),
        obs::Registry::global().counter("store.misses", obs::Kind::Timing),
        obs::Registry::global().counter("store.corrupt", obs::Kind::Timing),
        obs::Registry::global().counter("serve.warm", obs::Kind::Timing),
        obs::Registry::global().counter("serve.cold", obs::Kind::Timing),
        obs::Registry::global().counter("serve.degraded", obs::Kind::Timing),
        obs::Registry::global().counter("serve.shed", obs::Kind::Timing),
    };
    return c;
  }
};

}  // namespace

const char* verdict_name(Verdict v) noexcept {
  switch (v) {
    case Verdict::ServedWarm: return "served-warm";
    case Verdict::ServedCold: return "served-cold";
    case Verdict::Degraded: return "degraded";
    case Verdict::Shed: return "shed";
  }
  return "unknown";
}

Server::Server(const PlanStore* store, ServeOptions opts,
               const DirectProviderFactory& provider_factory)
    : store_(store), opts_(opts), planner_(opts.planner) {
  if (provider_factory) planner_.set_direct_provider(provider_factory());
}

PlanResult Server::canonical_plan(const Shape& canon, Verdict& verdict,
                                  PhaseUs& ph) {
  const std::string memo_key = canon.to_string();
  if (opts_.memoize) {
    const Clock::time_point t = Clock::now();
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = memo_.find(memo_key);
    const bool hit = it != memo_.end();
    ph.lookup_us += elapsed_us(t);
    if (hit) {
      verdict = Verdict::ServedWarm;
      return it->second;
    }
  }

  verdict = Verdict::ServedCold;
  if (store_ && canon.dims() <= kMaxRank) {
    const Key key = Key::of(canon);
    const Clock::time_point tl = Clock::now();
    const PlanStore::Lookup hit = store_->lookup(key);
    ph.lookup_us += elapsed_us(tl);
    switch (hit.status) {
      case PlanStore::Status::Hit: {
        if (obs::enabled()) Counters::get().store_hits.add();
        // Never serve an uncertified plan: the on-disk certificate is
        // advisory only. Re-parse and re-verify before first use; a
        // record that parses but does not verify is as bad as a flipped
        // checksum and gets quarantined the same way.
        const Clock::time_point tv = Clock::now();
        PlanResult res;
        bool certified = false;
        try {
          const std::shared_ptr<ExplicitEmbedding> emb =
              io::from_text(hit.record.emb_text);
          if (emb->guest().shape() == canon) {
            VerifyReport report = verify(*emb);
            if (report.valid) {
              res.embedding = emb;
              res.report = std::move(report);
              res.plan = hit.record.plan;
              certified = true;
            }
          }
        } catch (const std::exception&) {
          // fall through to quarantine + live planner
        }
        ph.verify_us += elapsed_us(tv);
        if (certified) {
          verdict = Verdict::ServedWarm;
          if (opts_.memoize) {
            std::lock_guard<std::mutex> lk(mu_);
            memo_.emplace(memo_key, res);
          }
          return res;
        }
        store_->quarantine(key);
        if (obs::enabled()) Counters::get().store_corrupt.add();
        verdict = Verdict::Degraded;
        break;
      }
      case PlanStore::Status::Corrupt:
        if (obs::enabled()) Counters::get().store_corrupt.add();
        verdict = Verdict::Degraded;
        break;
      case PlanStore::Status::Miss:
        if (obs::enabled()) Counters::get().store_misses.add();
        break;
    }
  }

  // Live planner fallback (cold miss or degraded corruption path). The
  // planner re-verifies its result by construction.
  const Clock::time_point tp = Clock::now();
  std::lock_guard<std::mutex> lk(mu_);
  PlanResult res = planner_.plan(canon);
  ph.plan_us += elapsed_us(tp);
  if (opts_.memoize) memo_.emplace(memo_key, res);
  return res;
}

Reply Server::handle(const Shape& shape, u64 queue_us) {
  const Clock::time_point t0 = Clock::now();
  Reply rep;
  rep.phase.queue_us = queue_us;
  try {
    require(shape.num_nodes() >= 1 && shape.num_nodes() <= (u64{1} << 26),
            "request too large: at most 2^26 mesh nodes");
    const Shape canon = shape.sorted();
    Verdict verdict = Verdict::ServedCold;
    const PlanResult canon_plan = canonical_plan(canon, verdict, rep.phase);
    // Relabel to the requested axis order; relabel_plan re-verifies, so
    // the reply's certificate always covers the exact shape served.
    const Clock::time_point tr = Clock::now();
    const PlanResult final_plan = relabel_plan(canon_plan, shape);
    rep.phase.verify_us += elapsed_us(tr);
    rep.verdict = verdict;
    rep.ok = final_plan.report.valid;
    if (!rep.ok) rep.error = "plan failed verification";
    rep.cube = final_plan.report.host_dim;
    rep.dil = final_plan.report.dilation;
    rep.cong = final_plan.report.congestion;
    rep.wl = final_plan.report.wirelength;
    rep.plan = final_plan.plan;
  } catch (const std::exception& e) {
    rep.ok = false;
    rep.error = e.what();
  }
  rep.latency_us = elapsed_us(t0) + queue_us;

  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    stats_.requests += 1;
    if (!rep.ok) {
      stats_.errors += 1;
    } else {
      switch (rep.verdict) {
        case Verdict::ServedWarm: stats_.warm += 1; break;
        case Verdict::ServedCold: stats_.cold += 1; break;
        case Verdict::Degraded: stats_.degraded += 1; break;
        case Verdict::Shed: stats_.shed += 1; break;
      }
    }
    if (store_) {
      stats_.store_corrupt = store_->quarantined_count();
    }
  }
  // Always-on phase attribution: these relaxed-atomic observes are what
  // the live `stats` command and --stats-every snapshots answer from,
  // so they are not gated on obs::enabled().
  phase_queue_.observe(rep.phase.queue_us);
  phase_lookup_.observe(rep.phase.lookup_us);
  phase_verify_.observe(rep.phase.verify_us);
  phase_plan_.observe(rep.phase.plan_us);
  phase_total_.observe(rep.latency_us);
  if (obs::enabled()) {
    static obs::Histogram& lat = obs::Registry::global().histogram(
        "serve.latency_us", obs::Kind::Timing);
    static obs::Histogram& h_queue = obs::Registry::global().histogram(
        "serve.phase_us.queue", obs::Kind::Timing);
    static obs::Histogram& h_lookup = obs::Registry::global().histogram(
        "serve.phase_us.lookup", obs::Kind::Timing);
    static obs::Histogram& h_verify = obs::Registry::global().histogram(
        "serve.phase_us.verify", obs::Kind::Timing);
    static obs::Histogram& h_plan = obs::Registry::global().histogram(
        "serve.phase_us.plan", obs::Kind::Timing);
    lat.observe(rep.latency_us);
    h_queue.observe(rep.phase.queue_us);
    h_lookup.observe(rep.phase.lookup_us);
    h_verify.observe(rep.phase.verify_us);
    h_plan.observe(rep.phase.plan_us);
    if (rep.ok) {
      Counters& c = Counters::get();
      (rep.verdict == Verdict::ServedWarm ? c.serve_warm
       : rep.verdict == Verdict::Degraded ? c.serve_degraded
                                          : c.serve_cold)
          .add();
    }
  }
  return rep;
}

void Server::note_shed() {
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    stats_.requests += 1;
    stats_.shed += 1;
  }
  if (obs::enabled()) Counters::get().serve_shed.add();
}

ServeStats Server::stats() const {
  std::lock_guard<std::mutex> lk(stats_mu_);
  return stats_;
}

std::map<std::string, obs::HistogramSnapshot> Server::phase_snapshot() const {
  return {{"queue", phase_queue_.snapshot()},
          {"lookup", phase_lookup_.snapshot()},
          {"verify", phase_verify_.snapshot()},
          {"plan", phase_plan_.snapshot()},
          {"total", phase_total_.snapshot()}};
}

namespace {

struct Request {
  u64 id = 0;
  Shape shape;
  Clock::time_point admitted;
};

/// Parse a request line ("3x5x7", "3 5 7", optional leading "plan").
/// Returns the shape or an error message via `err`.
std::optional<Shape> parse_shape_line(const std::string& line,
                                      std::string& err) {
  std::string s = line;
  for (char& c : s)
    if (c == 'x' || c == 'X' || c == ',') c = ' ';
  std::istringstream ls(s);
  std::string tok;
  SmallVec<u64, 4> ext;
  u64 prod = 1;
  bool first = true;
  while (ls >> tok) {
    if (first && tok == "plan") {
      first = false;
      continue;
    }
    first = false;
    u64 v = 0;
    std::size_t pos = 0;
    try {
      v = std::stoull(tok, &pos);
    } catch (const std::exception&) {
      pos = 0;
    }
    if (pos != tok.size() || v == 0) {
      err = "bad extent '" + tok + "'";
      return std::nullopt;
    }
    if (v > (u64{1} << 26) || prod > (u64{1} << 26) / v) {
      err = "shape too large (at most 2^26 nodes)";
      return std::nullopt;
    }
    prod *= v;
    ext.push_back(v);
  }
  if (ext.empty()) {
    err = "empty request";
    return std::nullopt;
  }
  return Shape{std::move(ext)};
}

std::string format_reply(u64 id, const Shape& shape, const Reply& rep) {
  std::ostringstream os;
  if (!rep.ok) {
    os << "id=" << id << " error=" << rep.error;
    return os.str();
  }
  os << "id=" << id << " verdict=" << verdict_name(rep.verdict)
     << " shape=" << shape.to_string() << " cube=" << rep.cube
     << " dil=" << rep.dil << " cong=" << rep.cong << " wl=" << rep.wl
     << " us=" << rep.latency_us << " plan=" << rep.plan;
  return os.str();
}

/// The `stats` protocol reply: the historical one-line counter summary
/// followed by one `phase <name> ...` line per always-on histogram, so
/// a live client reads per-phase p50/p99/max without restarting the
/// daemon.
std::string format_stats(const Server& server) {
  const ServeStats st = server.stats();
  std::ostringstream os;
  os << "stats requests=" << st.requests << " warm=" << st.warm
     << " cold=" << st.cold << " degraded=" << st.degraded
     << " shed=" << st.shed << " errors=" << st.errors;
  if (const PlanStore* ps = server.plan_store())
    os << " store_records=" << ps->record_count()
       << " quarantined=" << ps->quarantined_count();
  for (const auto& [name, s] : server.phase_snapshot())
    os << "\nphase " << name << " count=" << s.count
       << " p50_us=" << s.quantile(0.50) << " p99_us=" << s.quantile(0.99)
       << " max_us=" << s.max;
  return os.str();
}

/// One-line JSON snapshot for --stats-every (flat keys so a shell
/// `python -c "json.loads(line)"` or jq one-liner can gate on it).
std::string snapshot_json(const Server& server) {
  const ServeStats st = server.stats();
  std::ostringstream os;
  os << "{\"requests\":" << st.requests << ",\"warm\":" << st.warm
     << ",\"cold\":" << st.cold << ",\"degraded\":" << st.degraded
     << ",\"shed\":" << st.shed << ",\"errors\":" << st.errors;
  for (const auto& [name, s] : server.phase_snapshot())
    os << ",\"" << name << "_p50_us\":" << s.quantile(0.50) << ",\"" << name
       << "_p99_us\":" << s.quantile(0.99) << ",\"" << name
       << "_max_us\":" << s.max;
  os << "}";
  return os.str();
}

}  // namespace

int run_serve(std::istream& in, std::ostream& out, Server& server) {
  BoundedQueue<Request> queue(server.options().queue_cap);
  std::mutex out_mu;
  const auto emit = [&](const std::string& line) {
    std::lock_guard<std::mutex> lk(out_mu);
    out << line << '\n';
    out.flush();
  };

  // --stats-every sink: a file (append, crash-tail-parseable) or stderr.
  const u64 stats_every = server.options().stats_every;
  std::ofstream stats_file;
  std::ostream* stats_sink = nullptr;
  if (stats_every > 0) {
    if (!server.options().stats_out.empty()) {
      stats_file.open(server.options().stats_out, std::ios::app);
      stats_sink = &stats_file;
    } else {
      stats_sink = &std::cerr;
    }
  }

  std::thread worker([&] {
    u64 processed = 0;
    while (std::optional<Request> r = queue.pop()) {
      const u64 queue_us = elapsed_us(r->admitted);
      const u64 deadline = server.options().deadline_us;
      if (deadline && queue_us > deadline) {
        server.note_shed();
        if (obs::events_on()) {
          obs::Event("serve.shed", obs::Kind::Timing, obs::Severity::Warn,
                     "serve")
              .kv("id", r->id)
              .kv("reason", "deadline")
              .kv("queue_us", queue_us)
              .emit();
        }
        emit("id=" + std::to_string(r->id) + " verdict=shed reason=deadline");
      } else {
        const Reply rep = server.handle(r->shape, queue_us);
        if (obs::events_on()) {
          obs::Event ev("serve.reply", obs::Kind::Timing,
                        rep.ok ? obs::Severity::Info : obs::Severity::Error,
                        "serve");
          ev.kv("id", r->id).kv("shape", r->shape.to_string());
          if (rep.ok)
            ev.kv("verdict", verdict_name(rep.verdict));
          else
            ev.kv("error", rep.error);
          ev.kv("us", rep.latency_us)
              .kv("queue_us", rep.phase.queue_us)
              .kv("lookup_us", rep.phase.lookup_us)
              .kv("verify_us", rep.phase.verify_us)
              .kv("plan_us", rep.phase.plan_us)
              .emit();
        }
        emit(format_reply(r->id, r->shape, rep));
      }
      ++processed;
      if (stats_sink && processed % stats_every == 0) {
        *stats_sink << snapshot_json(server) << '\n';
        stats_sink->flush();
      }
    }
  });

  std::string line;
  u64 next_id = 0;
  while (std::getline(in, line)) {
    // Strip a trailing CR and surrounding whitespace; skip blanks/comments.
    while (!line.empty() && (line.back() == '\r' || line.back() == ' '))
      line.pop_back();
    std::size_t start = line.find_first_not_of(' ');
    if (start == std::string::npos) continue;
    const std::string body = line.substr(start);
    if (body[0] == '#') continue;
    if (body == "quit") break;
    if (body == "stats") {
      emit(format_stats(server));
      continue;
    }
    const u64 id = ++next_id;
    std::string err;
    const std::optional<Shape> shape = parse_shape_line(body, err);
    if (!shape) {
      emit("id=" + std::to_string(id) + " error=" + err);
      continue;
    }
    // The admission event is the flight recorder's in-flight marker: a
    // crash mid-request leaves this line (with no matching serve.reply)
    // as the last words naming what was being served.
    if (obs::events_on()) {
      obs::Event("serve.request", obs::Kind::Timing, obs::Severity::Info,
                 "serve")
          .kv("id", id)
          .kv("shape", shape->to_string())
          .emit();
    }
    if (!queue.try_push(Request{id, *shape, Clock::now()})) {
      server.note_shed();
      if (obs::events_on()) {
        obs::Event("serve.shed", obs::Kind::Timing, obs::Severity::Warn,
                   "serve")
            .kv("id", id)
            .kv("reason", "queue-full")
            .emit();
      }
      emit("id=" + std::to_string(id) + " verdict=shed reason=queue-full");
    }
  }
  queue.close();
  worker.join();
  return 0;
}

}  // namespace hj::store
