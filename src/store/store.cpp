#include "store/store.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define HJ_STORE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace hj::store {
namespace {

[[noreturn]] void open_fail(const std::string& path, const std::string& what) {
  throw std::runtime_error("plan store '" + path + "': " + what);
}

}  // namespace

PlanStore PlanStore::open(const std::string& path) {
  PlanStore s;
  s.path_ = path;

#ifdef HJ_STORE_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) open_fail(path, "cannot open file");
  struct stat st {};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    open_fail(path, "cannot stat file");
  }
  s.size_ = static_cast<u64>(st.st_size);
  if (s.size_ > 0) {
    void* m = ::mmap(nullptr, s.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (m == MAP_FAILED) open_fail(path, "mmap failed");
    s.map_ = m;
    s.data_ = static_cast<const unsigned char*>(m);
  } else {
    ::close(fd);
  }
#else
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) open_fail(path, "cannot open file");
  s.fallback_.assign(std::istreambuf_iterator<char>(is),
                     std::istreambuf_iterator<char>());
  s.data_ = s.fallback_.data();
  s.size_ = s.fallback_.size();
#endif

  // --- superblock ---
  if (s.size_ < kSuperBytes) open_fail(path, "file shorter than a superblock");
  const unsigned char* p = s.data_;
  if (get_u64(p) != kSuperMagic) open_fail(path, "bad magic");
  if (get_u32(p + 8) != kFormatVersion)
    open_fail(path, "unsupported version " + std::to_string(get_u32(p + 8)));
  const u64 nrec = get_u64(p + 16);
  const u64 data_off = get_u64(p + 24);
  const u64 data_bytes = get_u64(p + 32);
  const u64 index_off = get_u64(p + 40);
  const u64 index_bytes = get_u64(p + 48);
  const u64 index_sum = get_u64(p + 56);
  if (fnv1a(p, 64) != get_u64(p + 64))
    open_fail(path, "superblock checksum mismatch");
  if (data_off != kSuperBytes || nrec > (u64{1} << 32) ||
      data_bytes > s.size_ || index_bytes > s.size_ ||
      index_bytes != nrec * kIndexEntryBytes ||
      index_off != data_off + data_bytes ||
      index_off + index_bytes != s.size_)
    open_fail(path, "region geometry inconsistent (truncated or torn file)");
  if (fnv1a(p + index_off, index_bytes) != index_sum)
    open_fail(path, "index checksum mismatch");

  s.nrec_ = nrec;
  s.data_bytes_ = data_bytes;
  s.index_off_ = index_off;

  // --- index sanity: sorted, unique, offsets inside the data region ---
  Key prev{};
  for (u64 i = 0; i < nrec; ++i) {
    const unsigned char* e = s.index_entry(i);
    Key k;
    for (u32 j = 0; j < kMaxRank; ++j) k.ext[j] = get_u64(e + 8 * j);
    if (i > 0 && !(prev < k))
      open_fail(path, "index keys not strictly sorted");
    prev = k;
    const u64 off = get_u64(e + 32);
    const u64 bytes = get_u64(e + 40);
    if (off < data_off || bytes < kRecordHeaderBytes ||
        off + bytes > index_off || off + bytes < off)
      open_fail(path, "index entry " + std::to_string(i) +
                          " points outside the data region");
  }

  s.quarantined_ = std::make_unique<std::atomic<u8>[]>(nrec ? nrec : 1);
  for (u64 i = 0; i < nrec; ++i)
    s.quarantined_[i].store(0, std::memory_order_relaxed);
  return s;
}

PlanStore::PlanStore(PlanStore&& o) noexcept { *this = std::move(o); }

PlanStore& PlanStore::operator=(PlanStore&& o) noexcept {
  if (this == &o) return *this;
#ifdef HJ_STORE_HAVE_MMAP
  if (map_) ::munmap(map_, size_);
#endif
  path_ = std::move(o.path_);
  data_ = std::exchange(o.data_, nullptr);
  size_ = std::exchange(o.size_, 0);
  map_ = std::exchange(o.map_, nullptr);
  fallback_ = std::move(o.fallback_);
  if (!fallback_.empty()) data_ = fallback_.data();
  nrec_ = std::exchange(o.nrec_, 0);
  data_bytes_ = std::exchange(o.data_bytes_, 0);
  index_off_ = std::exchange(o.index_off_, 0);
  quarantined_ = std::move(o.quarantined_);
  quarantine_hits_.store(o.quarantine_hits_.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
  return *this;
}

PlanStore::~PlanStore() {
#ifdef HJ_STORE_HAVE_MMAP
  if (map_) ::munmap(map_, size_);
#endif
}

const unsigned char* PlanStore::index_entry(u64 i) const noexcept {
  return data_ + index_off_ + i * kIndexEntryBytes;
}

Key PlanStore::key_at(u64 i) const {
  require(i < nrec_, "PlanStore::key_at: slot %llu out of range",
          static_cast<unsigned long long>(i));
  Key k;
  const unsigned char* e = index_entry(i);
  for (u32 j = 0; j < kMaxRank; ++j) k.ext[j] = get_u64(e + 8 * j);
  return k;
}

std::optional<u64> PlanStore::find_slot(const Key& key) const noexcept {
  u64 lo = 0, hi = nrec_;
  while (lo < hi) {
    const u64 mid = lo + (hi - lo) / 2;
    Key k;
    const unsigned char* e = index_entry(mid);
    for (u32 j = 0; j < kMaxRank; ++j) k.ext[j] = get_u64(e + 8 * j);
    if (k == key) return mid;
    if (k < key)
      lo = mid + 1;
    else
      hi = mid;
  }
  return std::nullopt;
}

PlanStore::Lookup PlanStore::lookup(const Key& key) const {
  Lookup out;
  const std::optional<u64> slot = find_slot(key);
  if (!slot) {
    out.status = Status::Miss;
    return out;
  }
  if (quarantined_[*slot].load(std::memory_order_relaxed)) {
    out.status = Status::Corrupt;
    out.error = "record quarantined by an earlier lookup";
    return out;
  }
  const unsigned char* e = index_entry(*slot);
  const u64 off = get_u64(e + 32);
  const u64 bytes = get_u64(e + 40);
  u64 total = 0;
  std::string err;
  // decode_record is bounds-limited to this record's index-declared span;
  // the span itself was validated against the data region at open().
  if (!decode_record(data_ + off, bytes, &out.record, &total, &err) ||
      total != bytes || out.record.key != key) {
    if (err.empty()) err = "record does not match its index entry";
    if (!quarantined_[*slot].exchange(1, std::memory_order_relaxed))
      quarantine_hits_.fetch_add(1, std::memory_order_relaxed);
    out.status = Status::Corrupt;
    out.record = Record{};
    out.error = err;
    return out;
  }
  out.status = Status::Hit;
  return out;
}

void PlanStore::quarantine(const Key& key) const {
  const std::optional<u64> slot = find_slot(key);
  if (!slot) return;
  if (!quarantined_[*slot].exchange(1, std::memory_order_relaxed))
    quarantine_hits_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace hj::store
