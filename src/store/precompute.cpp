#include "store/precompute.hpp"

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>

#include "core/io.hpp"
#include "obs/obs.hpp"
#include "store/store.hpp"
#include "store/writer.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace hj::store {
namespace {

/// Enumerate ascending extent tuples of exactly `rank` axes with product
/// <= max_nodes, lexicographically, smallest axis first.
void enumerate_rank(u32 rank, u64 max_nodes, SmallVec<u64, 4>& prefix,
                    u64 product, std::vector<Shape>& out) {
  if (prefix.size() == rank) {
    out.push_back(Shape{prefix});
    return;
  }
  const u64 lo = prefix.empty() ? 1 : prefix[prefix.size() - 1];
  for (u64 e = lo; product <= max_nodes / e; ++e) {
    prefix.push_back(e);
    enumerate_rank(rank, max_nodes, prefix, product * e, out);
    prefix.pop_back();
    if (e == max_nodes)  // guard the u64 loop against wrap at huge budgets
      break;
  }
}

struct JournalScan {
  u64 valid_bytes = 0;
  u64 batches = 0;
  std::vector<Record> records;  // decoded, in enumeration order
};

/// Walk the journal's batch frames, stopping at the first torn or
/// inconsistent frame. Frames must be sequentially numbered from 0 and
/// each record key must match the enumeration slice the frame covers.
JournalScan scan_journal(const std::string& path,
                         const std::vector<Shape>& shapes, u32 batch_size) {
  JournalScan scan;
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) return scan;
  std::string bytes((std::istreambuf_iterator<char>(is)),
                    std::istreambuf_iterator<char>());
  const auto* p = reinterpret_cast<const unsigned char*>(bytes.data());
  const u64 size = bytes.size();
  u64 off = 0;
  while (off + kJournalHeaderBytes <= size) {
    if (get_u32(p + off) != kJournalMagic) break;
    const u32 batch_index = get_u32(p + off + 4);
    const u64 payload_bytes = get_u64(p + off + 8);
    const u64 payload_sum = get_u64(p + off + 16);
    if (batch_index != scan.batches) break;
    if (payload_bytes > size - off - kJournalHeaderBytes) break;
    const unsigned char* payload = p + off + kJournalHeaderBytes;
    if (fnv1a(payload, payload_bytes) != payload_sum) break;
    // Decode the frame's records and pin them to the enumeration slice.
    const u64 first = u64{batch_index} * batch_size;
    std::vector<Record> frame;
    u64 rec_off = 0;
    bool ok = first < shapes.size();
    while (ok && rec_off < payload_bytes) {
      Record r;
      u64 total = 0;
      if (!decode_record(payload + rec_off, payload_bytes - rec_off, &r,
                         &total, nullptr)) {
        ok = false;
        break;
      }
      const u64 i = first + frame.size();
      if (i >= shapes.size() || r.key != Key::of(shapes[i])) {
        ok = false;
        break;
      }
      frame.push_back(std::move(r));
      rec_off += total;
    }
    const u64 expect =
        std::min<u64>(batch_size, shapes.size() - std::min(first, shapes.size()));
    if (!ok || frame.size() != expect) break;
    for (Record& r : frame) scan.records.push_back(std::move(r));
    scan.batches += 1;
    off += kJournalHeaderBytes + payload_bytes;
  }
  scan.valid_bytes = off;
  return scan;
}

void truncate_file(const std::string& path, u64 bytes) {
#if defined(__unix__) || defined(__APPLE__)
  if (::truncate(path.c_str(), static_cast<off_t>(bytes)) != 0)
    throw std::runtime_error("plan store journal '" + path +
                             "': truncate failed");
#else
  std::ifstream is(path, std::ios::binary);
  std::string keep(bytes, '\0');
  is.read(keep.data(), static_cast<std::streamsize>(bytes));
  is.close();
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(keep.data(), static_cast<std::streamsize>(bytes));
#endif
}

/// Crash-injection hooks (see the header). Parsed once per precompute().
struct KillPlan {
  u64 after_batches = 0;  // 0 = disabled
  u64 torn_bytes = u64(-1);
};

KillPlan read_kill_plan() {
  KillPlan k;
  if (const char* e = std::getenv("HJ_STORE_KILL_AFTER_BATCHES"))
    k.after_batches = std::strtoull(e, nullptr, 10);
  if (const char* e = std::getenv("HJ_STORE_TORN_BYTES"))
    k.torn_bytes = std::strtoull(e, nullptr, 10);
  return k;
}

}  // namespace

std::vector<Shape> enumerate_canonical_shapes(u64 max_nodes, u32 max_rank) {
  require(max_nodes >= 1 && max_nodes <= (u64{1} << 26),
          "precompute: max_nodes must be in [1, 2^26]");
  require(max_rank >= 1 && max_rank <= kMaxRank,
          "precompute: max_rank must be in [1, %u]", kMaxRank);
  std::vector<Shape> out;
  SmallVec<u64, 4> prefix;
  for (u32 rank = 1; rank <= max_rank; ++rank)
    enumerate_rank(rank, max_nodes, prefix, 1, out);
  return out;
}

std::string journal_path(const std::string& store_path) {
  return store_path + ".ckpt";
}

PrecomputeResult precompute(const std::string& store_path,
                            const PrecomputeOptions& opts,
                            const DirectProviderFactory& provider_factory) {
  require(opts.batch_size >= 1, "precompute: batch_size must be >= 1");
  const std::vector<Shape> shapes =
      enumerate_canonical_shapes(opts.max_nodes, opts.max_rank);

  PrecomputeResult res;
  res.shapes_total = shapes.size();
  res.batches_total =
      (shapes.size() + opts.batch_size - 1) / opts.batch_size;
  const std::string journal = journal_path(store_path);

  // Idempotence fast path: an existing store holding exactly this
  // budget's keys is already the converged artifact.
  try {
    const PlanStore existing = PlanStore::open(store_path);
    if (existing.record_count() == shapes.size()) {
      bool same = true;
      // Store keys are sorted; compare against the sorted enumeration.
      std::vector<Key> expect;
      expect.reserve(shapes.size());
      for (const Shape& s : shapes) expect.push_back(Key::of(s));
      std::sort(expect.begin(), expect.end());
      for (u64 i = 0; same && i < shapes.size(); ++i)
        same = existing.key_at(i) == expect[i];
      if (same) {
        std::remove(journal.c_str());
        res.batches_resumed = res.batches_total;
        res.complete = true;
        return res;
      }
    }
  } catch (const std::exception&) {
    // Missing or invalid store: (re)build from the journal.
  }

  // Recover the journal's valid prefix; drop any torn tail.
  JournalScan scan = scan_journal(journal, shapes, opts.batch_size);
  {
    std::ifstream is(journal, std::ios::binary | std::ios::ate);
    if (is.good()) {
      const u64 actual = static_cast<u64>(is.tellg());
      if (actual > scan.valid_bytes) {
        res.journal_dropped_bytes = actual - scan.valid_bytes;
        truncate_file(journal, scan.valid_bytes);
      }
    }
  }
  res.batches_resumed = scan.batches;
  if (obs::enabled()) {
    auto& reg = obs::Registry::global();
    reg.counter("store.precompute.batches_resumed", obs::Kind::Timing)
        .add(scan.batches);
  }
  // Serial driver, so these are Deterministic events: for a given
  // journal state the resume/torn-tail stream is byte-identical.
  if (obs::events_on()) {
    if (res.journal_dropped_bytes > 0)
      obs::Event("store.precompute.torn_tail", obs::Kind::Deterministic,
                 obs::Severity::Warn, "store")
          .kv("dropped_bytes", res.journal_dropped_bytes)
          .kv("valid_batches", scan.batches)
          .emit();
    obs::Event("store.precompute.resume", obs::Kind::Deterministic,
               obs::Severity::Info, "store")
        .kv("batches_resumed", scan.batches)
        .kv("batches_total", res.batches_total)
        .kv("shapes_total", res.shapes_total)
        .emit();
  }

  const KillPlan kill = read_kill_plan();
  ShardedPlanCache cache;

  // Plan and append the remaining batches.
  for (u64 b = scan.batches; b < res.batches_total; ++b) {
    if (opts.max_batches && res.batches_planned >= opts.max_batches)
      return res;  // simulated crash for tests: journal is consistent
    const u64 first = b * opts.batch_size;
    const u64 last = std::min<u64>(first + opts.batch_size, shapes.size());
    const std::vector<Shape> slice(shapes.begin() + static_cast<i64>(first),
                                   shapes.begin() + static_cast<i64>(last));
    const std::vector<PlanResult> plans =
        plan_batch(slice, opts.planner, provider_factory, &cache);

    std::string payload;
    for (u64 i = 0; i < plans.size(); ++i) {
      Record r;
      r.key = Key::of(slice[i]);
      r.cube = plans[i].report.host_dim;
      r.dil = plans[i].report.dilation;
      r.plan = plans[i].plan;
      r.emb_text = io::to_text(*plans[i].embedding);
      encode_record(payload, r);
      scan.records.push_back(std::move(r));
    }
    std::string frame;
    frame.reserve(kJournalHeaderBytes + payload.size());
    put_u32(frame, kJournalMagic);
    put_u32(frame, static_cast<u32>(b));
    put_u64(frame, payload.size());
    put_u64(frame, fnv1a(payload));
    frame += payload;

    if (kill.after_batches && res.batches_planned + 1 == kill.after_batches &&
        kill.torn_bytes != u64(-1)) {
      // Torn-write injection: append a prefix of the frame, then die.
      append_file_sync(journal, frame.substr(
          0, std::min<u64>(kill.torn_bytes, frame.size())));
      std::raise(SIGKILL);
    }
    append_file_sync(journal, frame);
    res.batches_planned += 1;
    if (obs::enabled())
      obs::Registry::global()
          .counter("store.precompute.batches_planned", obs::Kind::Timing)
          .add();
    if (obs::events_on())
      obs::Event("store.precompute.batch", obs::Kind::Deterministic,
                 obs::Severity::Info, "store")
          .kv("batch", b)
          .kv("shapes", last - first)
          .kv("checkpointed_bytes", static_cast<u64>(frame.size()))
          .emit();
    if (kill.after_batches && res.batches_planned == kill.after_batches)
      std::raise(SIGKILL);
  }

  // Assemble and atomically publish the store, then retire the journal.
  Writer w;
  for (Record& r : scan.records) w.add(std::move(r));
  atomic_write_file(store_path, w.finish());
  std::remove(journal.c_str());
  res.complete = true;
  if (obs::events_on())
    obs::Event("store.precompute.published", obs::Kind::Deterministic,
               obs::Severity::Info, "store")
        .kv("records", res.shapes_total)
        .kv("batches_planned", res.batches_planned)
        .kv("batches_resumed", res.batches_resumed)
        .emit();
  return res;
}

}  // namespace hj::store
