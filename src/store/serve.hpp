// hjembed plan store: the hardened serve loop.
//
// Server answers "embed this mesh" requests from a precomputed PlanStore,
// falling back to the live planner whenever the store cannot help, and
// NEVER serves an uncertified plan: every embedding loaded from disk is
// re-verified with verify() before its first use (then memoized), and a
// record that fails parsing or verification is quarantined in the store —
// one corrupt record degrades one shape, not the daemon. Every reply
// carries an explicit verdict:
//
//   served-warm  store hit or memo hit; certificate from a verified
//                store/memo plan (relabelled plans are re-verified too).
//   served-cold  store miss (or no store attached); planned live.
//   degraded     store record was corrupt or failed verification; the
//                record was quarantined and the reply planned live.
//   shed         the request was refused under overload: the bounded
//                queue was full at admission, or its per-request deadline
//                expired before a worker picked it up.
//
// run_serve() wires Server to a line-oriented stdin/stdout protocol
// (`hj_embed serve`): one request per line ("3x5x7" or "3 5 7"), plus
// "stats" and "quit"; replies are single `id=N ...` lines, so a client
// can correlate out-of-order completions.
//
// Telemetry (DESIGN.md §14). Every reply carries a per-phase latency
// breakdown (queue wait / store+memo lookup / re-verify / live plan),
// the Server keeps ALWAYS-ON per-phase histograms (relaxed atomics, no
// obs gate) so the live `stats` protocol command reports p50/p99/max
// per phase from a running daemon, and run_serve emits structured
// events (serve.request / serve.reply / serve.shed) into the event log
// + flight recorder so a crashed daemon's postmortem names the
// in-flight request. `--stats-every=N` additionally emits a one-line
// JSON snapshot every N processed requests.
#pragma once

#include <condition_variable>
#include <deque>
#include <iosfwd>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "core/planner.hpp"
#include "obs/metrics.hpp"
#include "store/store.hpp"

namespace hj::store {

enum class Verdict : u8 { ServedWarm, ServedCold, Degraded, Shed };

/// Wire name of a verdict: "served-warm", "served-cold", "degraded",
/// "shed".
[[nodiscard]] const char* verdict_name(Verdict v) noexcept;

struct ServeOptions {
  /// Per-request deadline: a queued request older than this is shed
  /// instead of processed. 0 disables the deadline.
  u64 deadline_us = 100000;
  /// Bounded admission queue capacity; a full queue sheds at admission.
  u64 queue_cap = 64;
  /// Memoize verified plans by canonical shape (first use verifies, later
  /// hits reuse the certificate).
  bool memoize = true;
  /// Emit a one-line JSON stats snapshot every N worker-processed
  /// requests (0 disables), to `stats_out` (appended) or stderr when
  /// empty — the daemon is monitorable without restart.
  u64 stats_every = 0;
  std::string stats_out;
  PlannerOptions planner;
};

/// Where a request's latency went, in microseconds. queue_us is the
/// admission-to-pop wait (run_serve fills it; direct handle() callers
/// may pass their own); the rest are attributed inside handle():
/// lookup_us = memo probe + store index lookup, verify_us = record
/// re-parse + verify() + relabel re-verify, plan_us = live planner.
struct PhaseUs {
  u64 queue_us = 0;
  u64 lookup_us = 0;
  u64 verify_us = 0;
  u64 plan_us = 0;
};

struct Reply {
  Verdict verdict = Verdict::ServedCold;
  bool ok = false;
  std::string error;  ///< set when !ok (invalid request, planner failure)
  u32 cube = 0;
  u32 dil = 0;
  u32 cong = 0;
  u64 wl = 0;
  std::string plan;
  u64 latency_us = 0;
  PhaseUs phase;
};

/// Point-in-time serve counters (monotone; snapshot via Server::stats()).
struct ServeStats {
  u64 requests = 0;
  u64 warm = 0;
  u64 cold = 0;
  u64 degraded = 0;
  u64 shed = 0;
  u64 errors = 0;
  u64 store_hits = 0;
  u64 store_misses = 0;
  u64 store_corrupt = 0;
};

/// The serve engine. Thread-safe: handle() may be called concurrently
/// (the memo and the live planner are mutex-protected; store lookups are
/// lock-free).
class Server {
 public:
  /// `store` may be null (pure live-planner serving); when given it must
  /// outlive the server.
  explicit Server(const PlanStore* store, ServeOptions opts = {},
                  const DirectProviderFactory& provider_factory = nullptr);

  /// Answer one request. Never throws: failures come back as !ok replies.
  /// `queue_us` is the caller-measured admission wait, recorded into the
  /// reply's phase breakdown and the queue-phase histogram.
  [[nodiscard]] Reply handle(const Shape& shape, u64 queue_us = 0);

  /// Record an admission-time shed (run_serve calls this; handle() never
  /// sheds on its own).
  void note_shed();

  [[nodiscard]] ServeStats stats() const;

  /// Always-on per-phase latency histograms ("queue", "lookup",
  /// "verify", "plan", "total"), independent of obs::enabled() — the
  /// live `stats` protocol command and --stats-every snapshots answer
  /// from these without restarting the daemon. When obs::enabled(),
  /// the same observations are mirrored into the global registry as
  /// serve.phase_us.* for --metrics-out exports.
  [[nodiscard]] std::map<std::string, obs::HistogramSnapshot>
  phase_snapshot() const;

  [[nodiscard]] const ServeOptions& options() const noexcept { return opts_; }
  [[nodiscard]] const PlanStore* plan_store() const noexcept { return store_; }

 private:
  /// Verified canonical plan via store -> memo -> live planner.
  /// `verdict` is set to the rung that produced it; lookup/verify/plan
  /// time is accumulated into `ph`.
  [[nodiscard]] PlanResult canonical_plan(const Shape& canon,
                                          Verdict& verdict, PhaseUs& ph);

  const PlanStore* store_;
  ServeOptions opts_;
  mutable std::mutex mu_;  // guards planner_ and memo_
  Planner planner_;
  std::unordered_map<std::string, PlanResult> memo_;  // canonical -> plan
  mutable std::mutex stats_mu_;
  ServeStats stats_;
  obs::Histogram phase_queue_{obs::Kind::Timing};
  obs::Histogram phase_lookup_{obs::Kind::Timing};
  obs::Histogram phase_verify_{obs::Kind::Timing};
  obs::Histogram phase_plan_{obs::Kind::Timing};
  obs::Histogram phase_total_{obs::Kind::Timing};
};

/// Bounded MPMC admission queue: try_push() refuses (returns false) when
/// full — load shedding is explicit, never blocking — and pop() blocks
/// until an item or close(). Exposed so the shed paths are unit-testable
/// deterministically.
template <class T>
class BoundedQueue {
 public:
  explicit BoundedQueue(u64 cap) : cap_(cap ? cap : 1) {}

  [[nodiscard]] bool try_push(T v) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (closed_ || q_.size() >= cap_) return false;
      q_.push_back(std::move(v));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and
  /// drained (nullopt).
  [[nodiscard]] std::optional<T> pop() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return closed_ || !q_.empty(); });
    if (q_.empty()) return std::nullopt;
    T v = std::move(q_.front());
    q_.pop_front();
    return v;
  }

  void close() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] u64 size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return q_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> q_;
  u64 cap_;
  bool closed_ = false;
};

/// Drive `server` from a line-oriented request stream until EOF or
/// "quit". Requests are admitted through a BoundedQueue sized by
/// server.options().queue_cap and processed by one worker thread;
/// admission overflow and deadline expiry produce `verdict=shed` lines.
/// Returns 0 (protocol-level problems are per-request `error=` replies,
/// not process failures).
int run_serve(std::istream& in, std::ostream& out, Server& server);

}  // namespace hj::store
