// hjembed plan store: the read side.
//
// PlanStore::open maps a store file read-only (mmap on POSIX, a buffered
// read elsewhere) and validates the superblock and index checksums, the
// region geometry and the index sort order before returning — a truncated
// or superblock/index-corrupted file fails open() with a reason, it never
// yields a store that could hand out garbage offsets.
//
// Record payloads are *lazily* validated: lookup() re-checksums the record
// it lands on, and a mismatch (bit flip, torn write inside the data
// region) quarantines that index slot — subsequent lookups report Corrupt
// immediately — while every other record keeps serving. The caller
// (store::Server) treats Corrupt and Miss as "fall back to the live
// planner", so one flipped byte degrades one shape, not the daemon.
//
// Thread safety: lookups are const and may run concurrently; quarantine
// marks are relaxed atomics (monotone flags, so racing markers agree).
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "store/format.hpp"

namespace hj::store {

class PlanStore {
 public:
  /// Open and structurally validate a store file. Throws
  /// std::runtime_error with a reason on any problem (missing file, short
  /// file, bad magic/version, checksum mismatch, index out of order or
  /// out of bounds).
  [[nodiscard]] static PlanStore open(const std::string& path);

  PlanStore(PlanStore&&) noexcept;
  PlanStore& operator=(PlanStore&&) noexcept;
  PlanStore(const PlanStore&) = delete;
  PlanStore& operator=(const PlanStore&) = delete;
  ~PlanStore();

  enum class Status : u8 { Hit, Miss, Corrupt };

  struct Lookup {
    Status status = Status::Miss;
    /// Filled on Hit: the decoded, checksum-verified record.
    Record record;
    /// Filled on Corrupt: why the record was rejected.
    std::string error;
  };

  /// Binary-search the index for `key`; checksum-verify and decode the
  /// record on a hit. Corrupt records are quarantined (sticky: later
  /// lookups of the same key return Corrupt without re-reading).
  [[nodiscard]] Lookup lookup(const Key& key) const;

  /// Mark a key's record as bad for reasons beyond checksums (e.g. its
  /// payload parsed but failed verification). No-op for unknown keys.
  void quarantine(const Key& key) const;

  [[nodiscard]] u64 record_count() const noexcept { return nrec_; }
  [[nodiscard]] u64 quarantined_count() const noexcept {
    return quarantine_hits_.load(std::memory_order_relaxed);
  }
  /// Key of index slot i (i < record_count()).
  [[nodiscard]] Key key_at(u64 i) const;
  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  /// [first, last) byte range of the data region (for corruption-injection
  /// tooling that must avoid the superblock/index, whose checksums fail
  /// the whole open()).
  [[nodiscard]] std::pair<u64, u64> data_region() const noexcept {
    return {kSuperBytes, kSuperBytes + data_bytes_};
  }

 private:
  PlanStore() = default;
  [[nodiscard]] const unsigned char* index_entry(u64 i) const noexcept;
  /// Index slot of `key`, or nullopt.
  [[nodiscard]] std::optional<u64> find_slot(const Key& key) const noexcept;

  std::string path_;
  const unsigned char* data_ = nullptr;  // whole file
  u64 size_ = 0;
  void* map_ = nullptr;  // munmap target when mmap'ed
  std::vector<unsigned char> fallback_;  // owning buffer when not mmap'ed
  u64 nrec_ = 0;
  u64 data_bytes_ = 0;
  u64 index_off_ = 0;
  // One sticky flag per index slot; unique_ptr keeps the store movable.
  std::unique_ptr<std::atomic<u8>[]> quarantined_;
  mutable std::atomic<u64> quarantine_hits_{0};
};

}  // namespace hj::store
