// hjembed plan store: the on-disk binary format.
//
// A store file holds every precomputed canonical-shape plan below a node
// budget, in a layout built to be mmap'ed and to make corruption — torn
// writes, truncation, bit flips — *detectable*, never undefined behaviour:
//
//   [superblock 72 B][data region: records][index: sorted fixed entries]
//
//   superblock   magic, version, record count, region offsets/sizes, an
//                FNV-1a checksum of the index region and one of the
//                superblock itself. Any flip here fails open().
//   record       64 B header (magic, key, certified cube/dilation, payload
//                sizes, FNV-1a over header+payload) followed by the plan
//                string and the io::to_text embedding document. Any flip
//                is caught at lookup() and quarantines the record.
//   index        one 48 B entry per record — the canonical (sorted) shape
//                key plus the record's offset/size — sorted by key, so a
//                lookup is one binary search over the mapped file. Any
//                flip fails open() via the index checksum.
//
// All integers are little-endian fixed-width, written byte by byte (no
// struct aliasing, so reading an arbitrary corrupted file is always
// defined behaviour). The file contains no timestamps or other
// run-dependent bytes: a store is a pure function of its records, which
// is what makes "resume after kill -9 converges to a bit-identical store"
// checkable with cmp(1).
#pragma once

#include <array>
#include <string>

#include "core/common.hpp"
#include "core/shape.hpp"

namespace hj::store {

/// "HJPSTOR1" read as a little-endian u64.
inline constexpr u64 kSuperMagic = 0x31524F5453504A48ull;
/// "HJPR" — record header magic.
inline constexpr u32 kRecordMagic = 0x52504A48u;
/// "HJCK" — checkpoint-journal batch frame magic.
inline constexpr u32 kJournalMagic = 0x4B434A48u;

inline constexpr u32 kFormatVersion = 1;
inline constexpr u64 kSuperBytes = 72;
inline constexpr u64 kRecordHeaderBytes = 64;
inline constexpr u64 kIndexEntryBytes = 48;
inline constexpr u64 kJournalHeaderBytes = 24;
/// Keys cover shapes of rank 1..4 (the planner's inline rank).
inline constexpr u32 kMaxRank = 4;

/// FNV-1a over a byte range (the checksum used everywhere in the format).
[[nodiscard]] inline u64 fnv1a(const unsigned char* p, u64 n,
                               u64 h = 14695981039346656037ull) noexcept {
  for (u64 i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

[[nodiscard]] inline u64 fnv1a(const std::string& s,
                               u64 h = 14695981039346656037ull) noexcept {
  return fnv1a(reinterpret_cast<const unsigned char*>(s.data()), s.size(), h);
}

// --- little-endian byte packing (append to a std::string buffer) ---

inline void put_u32(std::string& out, u32 v) {
  for (u32 i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

inline void put_u64(std::string& out, u64 v) {
  for (u32 i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

[[nodiscard]] inline u32 get_u32(const unsigned char* p) noexcept {
  u32 v = 0;
  for (u32 i = 0; i < 4; ++i) v |= static_cast<u32>(p[i]) << (8 * i);
  return v;
}

[[nodiscard]] inline u64 get_u64(const unsigned char* p) noexcept {
  u64 v = 0;
  for (u32 i = 0; i < 8; ++i) v |= static_cast<u64>(p[i]) << (8 * i);
  return v;
}

/// Store key: the canonical (ascending-sorted) shape extents, zero-padded
/// to kMaxRank. Extents are >= 1, so the zero padding encodes the rank
/// unambiguously and plain lexicographic comparison of the array orders
/// keys of every rank consistently.
struct Key {
  std::array<u64, kMaxRank> ext{};

  /// Key of a shape (any axis order; the key is the sorted form).
  /// Throws std::invalid_argument for rank > kMaxRank.
  [[nodiscard]] static Key of(const Shape& s) {
    require(s.dims() <= kMaxRank,
            "plan store: shape rank %u exceeds the store's max rank %u",
            s.dims(), kMaxRank);
    const Shape sorted = s.sorted();
    Key k;
    for (u32 i = 0; i < sorted.dims(); ++i) k.ext[i] = sorted[i];
    return k;
  }

  [[nodiscard]] u32 rank() const noexcept {
    u32 r = 0;
    while (r < kMaxRank && ext[r] != 0) ++r;
    return r;
  }

  [[nodiscard]] Shape shape() const {
    SmallVec<u64, 4> e;
    for (u32 i = 0; i < rank(); ++i) e.push_back(ext[i]);
    return Shape{e};
  }

  [[nodiscard]] std::string to_string() const {
    std::string s;
    for (u32 i = 0; i < rank(); ++i) {
      if (i) s += 'x';
      s += std::to_string(ext[i]);
    }
    return s;
  }

  friend bool operator==(const Key&, const Key&) = default;
  friend auto operator<=>(const Key&, const Key&) = default;
};

/// One store record: a canonical shape's certified plan. `emb_text` is the
/// io::to_text document of the planned embedding; `cube`/`dil` are the
/// certified metrics recorded at precompute time (advisory — the serve
/// path re-verifies before first use and never trusts them).
struct Record {
  Key key;
  u32 cube = 0;
  u32 dil = 0;
  std::string plan;
  std::string emb_text;
};

/// Append the record's on-disk encoding (header + payload) to `out`.
inline void encode_record(std::string& out, const Record& r) {
  std::string h;
  h.reserve(kRecordHeaderBytes);
  put_u32(h, kRecordMagic);
  put_u32(h, r.key.rank());
  for (u64 e : r.key.ext) put_u64(h, e);
  put_u32(h, r.cube);
  put_u32(h, r.dil);
  put_u32(h, static_cast<u32>(r.plan.size()));
  put_u32(h, static_cast<u32>(r.emb_text.size()));
  // Checksum covers the header-so-far plus the whole payload, so a flip
  // anywhere in the record (sizes and key included) is detected.
  u64 sum = fnv1a(h);
  sum = fnv1a(r.plan, sum);
  sum = fnv1a(r.emb_text, sum);
  put_u64(h, sum);
  out += h;
  out += r.plan;
  out += r.emb_text;
}

/// Decode (and checksum-verify) one record at `p` with `avail` readable
/// bytes. On success fills `out` and `total_bytes` and returns true; on
/// any inconsistency returns false with a reason in `err`. Never reads
/// past `p + avail` — safe on arbitrary corrupted bytes.
inline bool decode_record(const unsigned char* p, u64 avail, Record* out,
                          u64* total_bytes, std::string* err) {
  auto bad = [&](const char* what) {
    if (err) *err = what;
    return false;
  };
  if (avail < kRecordHeaderBytes) return bad("record header truncated");
  if (get_u32(p) != kRecordMagic) return bad("bad record magic");
  const u32 rank = get_u32(p + 4);
  if (rank == 0 || rank > kMaxRank) return bad("bad record key rank");
  Key key;
  for (u32 i = 0; i < kMaxRank; ++i) key.ext[i] = get_u64(p + 8 + 8 * i);
  for (u32 i = 0; i < kMaxRank; ++i) {
    const bool used = i < rank;
    if (used != (key.ext[i] != 0)) return bad("record key/rank mismatch");
    if (used && i > 0 && key.ext[i] < key.ext[i - 1])
      return bad("record key not canonical");
  }
  const u32 cube = get_u32(p + 40);
  const u32 dil = get_u32(p + 44);
  const u64 plan_bytes = get_u32(p + 48);
  const u64 emb_bytes = get_u32(p + 52);
  const u64 total = kRecordHeaderBytes + plan_bytes + emb_bytes;
  if (total > avail) return bad("record payload truncated");
  u64 sum = fnv1a(p, 56);
  sum = fnv1a(p + kRecordHeaderBytes, plan_bytes + emb_bytes, sum);
  if (sum != get_u64(p + 56)) return bad("record checksum mismatch");
  if (out) {
    out->key = key;
    out->cube = cube;
    out->dil = dil;
    out->plan.assign(reinterpret_cast<const char*>(p + kRecordHeaderBytes),
                     plan_bytes);
    out->emb_text.assign(
        reinterpret_cast<const char*>(p + kRecordHeaderBytes + plan_bytes),
        emb_bytes);
  }
  if (total_bytes) *total_bytes = total;
  return true;
}

}  // namespace hj::store
