// hjembed plan store: the write side.
//
// Writer collects records, then finish() produces the complete store image
// (superblock + data + sorted index + checksums) as one byte string — a
// pure function of the record set, so two precompute runs over the same
// shapes yield bit-identical files regardless of batching or interruption.
//
// Nothing is ever written in place: atomic_write_file() writes to
// `<path>.tmp`, fsyncs the file, renames it over the destination and
// fsyncs the directory, so a crash at any instant leaves either the old
// store or the new one — never a torn hybrid.
#pragma once

#include <string>
#include <vector>

#include "store/format.hpp"

namespace hj::store {

class Writer {
 public:
  /// Queue a record. Keys must be unique (std::invalid_argument otherwise,
  /// checked at finish()).
  void add(Record r);

  [[nodiscard]] u64 record_count() const noexcept { return recs_.size(); }

  /// Serialize the finished store: superblock, records in insertion
  /// order, index sorted by key. Deterministic for a given record set.
  [[nodiscard]] std::string finish() const;

 private:
  std::vector<Record> recs_;
};

/// Durable atomic replace: write `bytes` to `path + ".tmp"`, fsync,
/// rename over `path`, fsync the parent directory. Throws
/// std::runtime_error on any I/O failure (unwritable directory, full
/// disk); on failure the destination is untouched.
void atomic_write_file(const std::string& path, const std::string& bytes);

/// Append `bytes` to `path` (creating it if needed) and fsync — the
/// checkpoint journal's append discipline. Throws std::runtime_error on
/// failure.
void append_file_sync(const std::string& path, const std::string& bytes);

}  // namespace hj::store
