// hjembed plan store: the offline precompute pass.
//
// Enumerates every canonical shape (sorted extents, rank 1..max_rank) with
// at most `max_nodes` guest nodes, plans each through the deterministic
// batch engine, and writes the finished plan store. The pass is
// checkpointed and resumable: shapes are planned in fixed-size batches in
// a fixed enumeration order, and each finished batch is appended to a
// checksummed journal (`<store>.ckpt`) with an fsync before the next batch
// starts. A `kill -9` at any instant therefore loses at most the
// in-flight batch:
//
//   * a torn final frame (short write, bad checksum, wrong sequence
//     number) is detected on resume, truncated away, and re-planned;
//   * completed frames are trusted byte-for-byte (each is checksummed and
//     its record keys are checked against the enumeration slice it claims
//     to cover, so a stale journal from a different budget is rebuilt, not
//     merged);
//   * the final store is assembled only from journal frames and written
//     with atomic_write_file, so a rerun after any interruption converges
//     to a store bit-identical to an uninterrupted run (cmp-able in CI).
//
// Crash injection for tests/CI (real SIGKILL, not a simulated flag):
//   HJ_STORE_KILL_AFTER_BATCHES=k  raise(SIGKILL) right after appending
//                                  the k-th batch frame of this run;
//   HJ_STORE_TORN_BYTES=n          with the above: append only the first
//                                  n bytes of that frame first, leaving a
//                                  torn record for resume to recover from.
#pragma once

#include <string>
#include <vector>

#include "core/planner.hpp"
#include "store/format.hpp"

namespace hj::store {

struct PrecomputeOptions {
  /// Plan every canonical shape with at most this many guest nodes.
  u64 max_nodes = 512;
  /// Enumerate ranks 1..max_rank (<= format kMaxRank).
  u32 max_rank = 3;
  /// Shapes per checkpointed batch (the most a crash can lose).
  u32 batch_size = 32;
  /// Stop after this many batches this run (0 = run to completion); the
  /// in-process analogue of a crash, used by tests to exercise resume
  /// without SIGKILLing the test binary.
  u32 max_batches = 0;
  PlannerOptions planner;
};

struct PrecomputeResult {
  u64 shapes_total = 0;      ///< canonical shapes below the budget
  u64 batches_total = 0;
  u64 batches_resumed = 0;   ///< valid frames recovered from the journal
  u64 batches_planned = 0;   ///< frames planned and appended this run
  u64 journal_dropped_bytes = 0;  ///< torn tail truncated on resume
  bool complete = false;     ///< store finalized (atomically renamed)
};

/// Canonical shapes (ascending extents) with <= max_nodes nodes, ranks
/// 1..max_rank, in the fixed enumeration order the journal batches index
/// into: rank-major, then lexicographic by extents.
[[nodiscard]] std::vector<Shape> enumerate_canonical_shapes(u64 max_nodes,
                                                            u32 max_rank);

/// The journal path used for `store_path`.
[[nodiscard]] std::string journal_path(const std::string& store_path);

/// Build (or resume building) the store at `store_path`. Idempotent: a
/// store that already holds exactly the budget's shapes is left untouched
/// (complete = true, nothing planned). Throws std::runtime_error on I/O
/// failure (unwritable directory, full disk) and std::invalid_argument on
/// bad options.
PrecomputeResult precompute(const std::string& store_path,
                            const PrecomputeOptions& opts = {},
                            const DirectProviderFactory& provider_factory =
                                nullptr);

}  // namespace hj::store
