// hjembed: embeddings of wraparound meshes (Section 6 of the paper).
//
// The constructions of Lemmas 3 and 4, generalized and made uniform:
// every wrapped axis of length l is laid out as a Hamiltonian cycle of the
// product of a quotient line (length m) and a small inner ring carried by
// 1 or 2 dedicated address bits:
//
//   HALF     (Lemma 3): l <= 2m, inner ring of 2 (one bit). Even l costs
//            nothing; odd l removes one cycle node and bridges it, paying
//            dilation d+1 on one edge per hyperplane.
//   QUARTER  (Lemma 4): l <= 4m, inner ring of 4 (two bits, cyclic Gray).
//            l mod 4 in {1,2,3} removes 3/2/1 "row middle" nodes whose
//            bridges cost only dilation 2, so the total stays max(d, 2).
//            Requires m >= 3 (the paper's ceil(l/4) >= 3 condition).
//   RING     small-l fallback: an explicit ring table in the axis's own
//            minimal bit field (the paper's Figure 5-(e) special cases).
//   GRAY     power-of-two l: the cyclic binary-reflected Gray code.
//   PASS     non-wrapped axes pass through to the quotient mesh.
//
// The quotient mesh (one axis per guest axis, length m_i) is embedded by
// the ordinary mesh Planner; the torus embedding is the product of that
// embedding with the inner rings, with removed cycle nodes used as path
// way-points exactly as in the paper's proofs.
#pragma once

#include <string>

#include "core/planner.hpp"

namespace hj::torus {

enum class AxisScheme : u8 { Pass, Gray, Ring, Half, Quarter };

[[nodiscard]] const char* to_string(AxisScheme s);

/// Per-axis layout descriptor (see file comment).
struct AxisCodec {
  AxisScheme scheme = AxisScheme::Pass;
  u64 guest_len = 1;     // l_i
  u64 quotient_len = 1;  // m_i: length of this axis in the quotient mesh
  u32 bits = 0;          // dedicated inner address bits
  u64 cycle_len = 1;     // physical cycle length (quotient_len * 2^bits)

  /// Build the codec for a wrapped axis under `scheme` (throws if the
  /// scheme cannot host the length) or a Pass codec for an unwrapped one.
  static AxisCodec make(AxisScheme scheme, u64 len, bool wrapped);

  /// Physical cycle position -> (quotient coordinate, inner code).
  struct Phys {
    u64 y;
    u64 code;
  };
  [[nodiscard]] Phys phys(u64 t) const;

  /// Guest coordinate -> physical cycle position (skipping removed nodes).
  [[nodiscard]] u64 pos_of_guest(u64 g) const;

  /// Number of removed (skipped) cycle positions.
  [[nodiscard]] u64 removed_count() const { return cycle_len - guest_len; }

  /// True iff physical position t is removed (never hosts a guest node;
  /// its image still serves as a path way-point).
  [[nodiscard]] bool is_removed(u64 t) const;

  /// Worst-case dilation this axis contributes, given the quotient mesh
  /// embedding has dilation d2 on this axis.
  [[nodiscard]] u32 dilation_bound(u32 d2) const;
};

/// The torus embedding: quotient-mesh embedding x per-axis inner rings.
class TorusEmbedding final : public Embedding {
 public:
  /// `guest` may wrap any subset of axes. `codecs` must match the guest
  /// axes; `quotient` must embed the mesh of quotient lengths.
  TorusEmbedding(Mesh guest, std::vector<AxisCodec> codecs,
                 EmbeddingPtr quotient);

  [[nodiscard]] CubeNode map(MeshIndex idx) const override;
  [[nodiscard]] CubePath edge_path(const MeshEdge& e) const override;

  [[nodiscard]] const AxisCodec& codec(u32 axis) const {
    return codecs_[axis];
  }

 private:
  [[nodiscard]] CubeNode combine(CubeNode quotient_node,
                                 const Coord& codes) const;
  /// Path for one physical cycle step t -> t+1 (mod cycle_len) on `axis`,
  /// with every other axis pinned; appended to `out` (skipping the first
  /// node if out is non-empty).
  void append_step(u32 axis, u64 t, const Coord& y_others,
                   const Coord& code_others, CubePath& out) const;

  std::vector<AxisCodec> codecs_;
  EmbeddingPtr quotient_;
  SmallVec<u32, 4> bit_offset_;  // inner field offset per axis
  u32 inner_bits_ = 0;
};

/// Planner for wraparound meshes: tries scheme combinations per axis,
/// plans the quotient with the mesh planner, and returns the best
/// certified embedding.
class TorusPlanner {
 public:
  explicit TorusPlanner(PlannerOptions opts = {});
  void set_direct_provider(DirectProvider provider);

  /// Plan a fully wrapped mesh (all axes wraparound).
  [[nodiscard]] PlanResult plan(const Shape& shape);
  /// Plan with explicit per-axis wrap flags.
  [[nodiscard]] PlanResult plan(const Mesh& guest);

  [[nodiscard]] bool achieves_minimal(const Shape& shape, u32 max_dil);

 private:
  PlannerOptions opts_;
  DirectProvider provider_;
  Planner mesh_planner_;
};

}  // namespace hj::torus
