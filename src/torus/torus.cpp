#include "torus/torus.hpp"

#include <algorithm>

#include "core/gray.hpp"

namespace hj::torus {
namespace {

/// Explicit small rings (the paper's Figure 5-(e) special cases), one per
/// non-power-of-two length <= 7, in the minimal bit field. Odd rings have
/// one dilation-2 closing edge (the cube is bipartite, so dilation 1 is
/// impossible for odd cycles); ring 6 is dilation 1.
constexpr CubeNode kRing3[] = {0, 1, 3};
constexpr CubeNode kRing5[] = {0, 1, 3, 7, 6};
constexpr CubeNode kRing6[] = {0, 1, 3, 2, 6, 4};
constexpr CubeNode kRing7[] = {0, 1, 3, 2, 6, 7, 5};

const CubeNode* ring_table(u64 len) {
  switch (len) {
    case 3: return kRing3;
    case 5: return kRing5;
    case 6: return kRing6;
    case 7: return kRing7;
    default: return nullptr;
  }
}

}  // namespace

const char* to_string(AxisScheme s) {
  switch (s) {
    case AxisScheme::Pass: return "pass";
    case AxisScheme::Gray: return "gray";
    case AxisScheme::Ring: return "ring";
    case AxisScheme::Half: return "half";
    case AxisScheme::Quarter: return "quarter";
  }
  return "?";
}

AxisCodec AxisCodec::make(AxisScheme scheme, u64 len, bool wrapped) {
  AxisCodec c;
  c.scheme = scheme;
  c.guest_len = len;
  switch (scheme) {
    case AxisScheme::Pass:
      require(!wrapped || len <= 2,
              "Pass scheme needs an unwrapped axis (or length <= 2)");
      c.quotient_len = len;
      c.bits = 0;
      c.cycle_len = len;
      break;
    case AxisScheme::Gray:
      require(wrapped && is_pow2(len), "Gray scheme needs power-of-two length");
      c.quotient_len = 1;
      c.bits = log2_ceil(len);
      c.cycle_len = len;
      break;
    case AxisScheme::Ring:
      require(wrapped && ring_table(len) != nullptr,
              "Ring scheme covers lengths 3, 5, 6, 7");
      c.quotient_len = 1;
      c.bits = log2_ceil(len);
      c.cycle_len = len;
      break;
    case AxisScheme::Half:
      require(wrapped && len >= 2, "Half scheme needs a wrapped axis");
      c.quotient_len = (len + 1) / 2;
      c.bits = 1;
      c.cycle_len = 2 * c.quotient_len;
      break;
    case AxisScheme::Quarter:
      require(wrapped && (len + 3) / 4 >= 3,
              "Quarter scheme needs ceil(len/4) >= 3");
      c.quotient_len = (len + 3) / 4;
      c.bits = 2;
      c.cycle_len = 4 * c.quotient_len;
      break;
  }
  return c;
}

AxisCodec::Phys AxisCodec::phys(u64 t) const {
  assert(t < cycle_len);
  switch (scheme) {
    case AxisScheme::Pass:
      return {t, 0};
    case AxisScheme::Gray:
      return {0, gray(t)};
    case AxisScheme::Ring:
      return {0, ring_table(guest_len)[t]};
    case AxisScheme::Half:
      // Down the x=0 column, back up the x=1 column.
      return t < quotient_len ? Phys{t, 0}
                              : Phys{cycle_len - 1 - t, 1};
    case AxisScheme::Quarter: {
      // Down the x=0 column, then snake rows upward through x in {1,2,3}.
      // The inner code is the cyclic 2-bit Gray of the ring position x.
      if (t < quotient_len) return {t, gray(0)};
      const u64 u = t - quotient_len;
      const u64 row_from_top = u / 3;         // 0 = bottom row (y = m-1)
      const u64 s = u % 3;                    // step within the row
      const u64 y = quotient_len - 1 - row_from_top;
      const u64 x = (row_from_top % 2 == 0) ? 1 + s : 3 - s;
      return {y, gray(x)};
    }
  }
  return {0, 0};
}

bool AxisCodec::is_removed(u64 t) const {
  const u64 c = removed_count();
  if (c == 0) return false;
  switch (scheme) {
    case AxisScheme::Half:
      // Remove the top of the x=1 column: its neighbors are the x-flip at
      // y = m-1 (dilation 1) and a quotient edge (dilation d), so the
      // bridge costs d+1 (Lemma 3's alpha node).
      return t == quotient_len;
    case AxisScheme::Quarter: {
      // Remove "row middles" (x = 2): both bridge hops are ring edges, so
      // a bridge costs exactly 2 (Lemma 4).
      if (t < quotient_len) return false;
      const u64 u = t - quotient_len;
      return u % 3 == 1 && u / 3 < c;
    }
    default:
      return false;
  }
}

u64 AxisCodec::pos_of_guest(u64 g) const {
  assert(g < guest_len);
  const u64 c = removed_count();
  if (c == 0) return g;
  if (scheme == AxisScheme::Half) return g < quotient_len ? g : g + 1;
  // Quarter: removed positions are q + 3j + 1 for j < c; guest slots after
  // the x=0 column come in rows of 3 with the middle skipped in the first
  // c rows.
  if (g <= quotient_len) return g;
  const u64 v = g - quotient_len;  // 1-based index into the snake part
  u64 x;
  if (v <= 2 * c) {
    const u64 j = (v - 1) / 2;
    x = 3 * j + 2 + (v - 1) % 2;
  } else {
    x = 3 * c + (v - 2 * c);
  }
  return quotient_len + x;
}

u32 AxisCodec::dilation_bound(u32 d2) const {
  switch (scheme) {
    case AxisScheme::Pass: return d2;
    case AxisScheme::Gray: return guest_len > 1 ? 1 : 0;
    case AxisScheme::Ring: return guest_len == 6 ? 1 : 2;
    case AxisScheme::Half:
      return removed_count() ? d2 + 1 : std::max(d2, 1u);
    case AxisScheme::Quarter:
      return std::max(d2, removed_count() ? 2u : 1u);
  }
  return d2;
}

// ---------------------------------------------------------------------------

TorusEmbedding::TorusEmbedding(Mesh guest, std::vector<AxisCodec> codecs,
                               EmbeddingPtr quotient)
    : Embedding(guest, quotient->host_dim() +
                           [&] {
                             u32 b = 0;
                             for (const auto& c : codecs) b += c.bits;
                             return b;
                           }()),
      codecs_(std::move(codecs)),
      quotient_(std::move(quotient)) {
  const Shape& s = this->guest().shape();
  require(codecs_.size() == s.dims(), "TorusEmbedding: one codec per axis");
  SmallVec<u64, 4> qshape;
  for (u32 i = 0; i < s.dims(); ++i) {
    require(codecs_[i].guest_len == s[i],
            "TorusEmbedding: codec length mismatch");
    qshape.push_back(codecs_[i].quotient_len);
  }
  require(quotient_->guest().shape() == Shape{qshape},
          "TorusEmbedding: quotient shape mismatch");
  require(!quotient_->guest().any_wrap(),
          "TorusEmbedding: quotient must be a plain mesh");
  bit_offset_.assign(s.dims(), 0);
  u32 acc = 0;
  for (u32 i = s.dims(); i-- > 0;) {
    bit_offset_[i] = acc;
    acc += codecs_[i].bits;
  }
  inner_bits_ = acc;
}

CubeNode TorusEmbedding::combine(CubeNode quotient_node,
                                 const Coord& codes) const {
  CubeNode v = quotient_node << inner_bits_;
  for (u32 i = 0; i < codes.size(); ++i) v |= codes[i] << bit_offset_[i];
  return v;
}

CubeNode TorusEmbedding::map(MeshIndex idx) const {
  const Shape& s = guest().shape();
  const Coord g = s.coord(idx);
  Coord y(s.dims(), 0), codes(s.dims(), 0);
  for (u32 i = 0; i < s.dims(); ++i) {
    const auto p = codecs_[i].phys(codecs_[i].pos_of_guest(g[i]));
    y[i] = p.y;
    codes[i] = p.code;
  }
  return combine(quotient_->map(quotient_->guest().shape().index(y)), codes);
}

void TorusEmbedding::append_step(u32 axis, u64 t, const Coord& y_all,
                                 const Coord& code_all, CubePath& out) const {
  const AxisCodec& c = codecs_[axis];
  const auto from = c.phys(t);
  const auto to = c.phys((t + 1) % c.cycle_len);
  const Shape& qs = quotient_->guest().shape();

  auto emit = [&](CubeNode v) {
    if (out.empty() || out.back() != v) out.push_back(v);
  };

  if (from.y == to.y) {
    // Inner ring step: the quotient node is pinned; the inner code moves
    // by one ring position (Hamming 1 except for the explicit Ring tables'
    // dilation-2 edges, which route through the e-cube midpoint).
    Coord y = y_all;
    y[axis] = from.y;
    const CubeNode q = quotient_->map(qs.index(y));
    Coord codes = code_all;
    codes[axis] = from.code;
    const CubeNode n1 = combine(q, codes);
    codes[axis] = to.code;
    const CubeNode n2 = combine(q, codes);
    for (CubeNode v : Hypercube::ecube_path(n1, n2)) emit(v);
  } else {
    // Quotient step: the inner code is pinned; the quotient embedding
    // carries the path (possibly walked high-to-low).
    assert(from.code == to.code);
    const bool down = to.y < from.y;
    Coord y = y_all;
    y[axis] = down ? to.y : from.y;
    const MeshIndex lo = qs.index(y);
    CubePath qpath = quotient_->edge_path(
        MeshEdge{lo, lo + qs.stride(axis), axis, false});
    if (down) qpath.reverse();
    Coord codes = code_all;
    codes[axis] = from.code;
    for (CubeNode q : qpath) {
      Coord cc = codes;
      emit(combine(q, cc));
    }
  }
}

CubePath TorusEmbedding::edge_path(const MeshEdge& e) const {
  const Shape& s = guest().shape();
  const u32 axis = e.axis;
  const AxisCodec& c = codecs_[axis];
  const Coord ga = s.coord(e.a), gb = s.coord(e.b);

  Coord y_all(s.dims(), 0), code_all(s.dims(), 0);
  for (u32 i = 0; i < s.dims(); ++i) {
    const auto p = codecs_[i].phys(codecs_[i].pos_of_guest(ga[i]));
    y_all[i] = p.y;
    code_all[i] = p.code;
  }

  const u64 pa = c.pos_of_guest(ga[axis]);
  const u64 pb = c.pos_of_guest(gb[axis]);
  const u64 fwd = (pb + c.cycle_len - pa) % c.cycle_len;
  const u64 start = fwd <= 2 ? pa : pb;
  const u64 steps = fwd <= 2 ? fwd : (pa + c.cycle_len - pb) % c.cycle_len;
  require(steps >= 1 && steps <= 2, "TorusEmbedding: not a torus edge");

  CubePath path;
  for (u64 k = 0; k < steps; ++k)
    append_step(axis, (start + k) % c.cycle_len, y_all, code_all, path);
  if (fwd > 2) path.reverse();
  return path;
}

// ---------------------------------------------------------------------------

TorusPlanner::TorusPlanner(PlannerOptions opts)
    : opts_(opts), mesh_planner_(opts) {}

void TorusPlanner::set_direct_provider(DirectProvider provider) {
  provider_ = provider;
  mesh_planner_.set_direct_provider(std::move(provider));
}

PlanResult TorusPlanner::plan(const Shape& shape) {
  return plan(Mesh::torus(shape));
}

PlanResult TorusPlanner::plan(const Mesh& guest) {
  const Shape& s = guest.shape();
  std::vector<std::vector<AxisScheme>> options(s.dims());
  for (u32 i = 0; i < s.dims(); ++i) {
    const u64 l = s[i];
    if (!guest.wraps(i) || l <= 2) {
      options[i] = {AxisScheme::Pass};
    } else if (is_pow2(l)) {
      options[i] = {AxisScheme::Gray};
    } else if (ring_table(l)) {
      options[i] = {AxisScheme::Ring, AxisScheme::Half};
    } else if ((l + 3) / 4 >= 3) {
      options[i] = {AxisScheme::Quarter, AxisScheme::Half};
    } else {
      options[i] = {AxisScheme::Half};
    }
  }

  struct Best {
    std::shared_ptr<TorusEmbedding> emb;
    std::string desc;
    u32 cube = ~0u;
    u32 dil = ~0u;
  } best;

  SmallVec<u32, 4> pick(s.dims(), 0);
  for (;;) {
    std::vector<AxisCodec> codecs;
    SmallVec<u64, 4> qshape;
    u32 inner_bits = 0;
    for (u32 i = 0; i < s.dims(); ++i) {
      codecs.push_back(
          AxisCodec::make(options[i][pick[i]], s[i], guest.wraps(i)));
      qshape.push_back(codecs.back().quotient_len);
      inner_bits += codecs.back().bits;
    }
    PlanResult qplan = mesh_planner_.plan(Shape{qshape});
    const u32 cube = qplan.report.host_dim + inner_bits;
    u32 dil = 0;
    for (u32 i = 0; i < s.dims(); ++i)
      dil = std::max(dil, codecs[i].dilation_bound(qplan.report.dilation));
    if (cube < best.cube || (cube == best.cube && dil < best.dil)) {
      best.emb = std::make_shared<TorusEmbedding>(guest, std::move(codecs),
                                                  qplan.embedding);
      best.cube = cube;
      best.dil = dil;
      std::string schemes;
      for (u32 i = 0; i < s.dims(); ++i) {
        if (i) schemes += ",";
        schemes += to_string(options[i][pick[i]]);
      }
      best.desc = "torus[" + schemes + "](" + qplan.plan + ")";
    }
    u32 axis = 0;
    while (axis < s.dims() && ++pick[axis] == options[axis].size())
      pick[axis++] = 0;
    if (axis == s.dims()) break;
  }

  PlanResult out;
  out.embedding = best.emb;
  out.report = verify(*best.emb);
  out.plan = best.desc;

  // When the scheme constructions miss the minimal cube (or dilation 2),
  // small tori fall to a whole-guest direct search — the torus analogue of
  // the mesh planner's search leaf.
  const u32 minimal = s.minimal_cube_dim();
  const bool want_search =
      provider_ && guest.num_nodes() <= opts_.provider_max_nodes &&
      (out.report.host_dim > minimal ||
       (out.report.dilation > 2 && guest.num_nodes() > 2));
  if (want_search) {
    if (auto m = provider_(guest, minimal)) {
      auto direct = std::make_shared<ExplicitEmbedding>(guest, minimal, *m);
      VerifyReport r = verify(*direct);
      if (r.valid && (r.host_dim < out.report.host_dim ||
                      (r.host_dim == out.report.host_dim &&
                       r.dilation < out.report.dilation))) {
        out.embedding = std::move(direct);
        out.report = std::move(r);
        out.plan = "torus-search " + s.to_string();
      }
    }
  }
  return out;
}

bool TorusPlanner::achieves_minimal(const Shape& shape, u32 max_dil) {
  PlanResult r = plan(shape);
  return r.report.minimal_expansion && r.report.dilation <= max_dil &&
         r.report.valid;
}

}  // namespace hj::torus
