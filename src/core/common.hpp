// hjembed: common integer types and bit utilities.
//
// Part of the reproduction of Ho & Johnsson, "Embedding Three-Dimensional
// Meshes in Boolean Cubes by Graph Decomposition", ICPP 1990.
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>

namespace hj {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// A node of a Boolean cube, identified by its binary address.
/// The library supports cubes of dimension up to 63.
using CubeNode = u64;

/// Linear index of a node in a mesh (row-major over the mesh shape).
using MeshIndex = u64;

/// Hamming distance between two cube node addresses.
[[nodiscard]] constexpr u32 hamming(CubeNode a, CubeNode b) noexcept {
  return static_cast<u32>(std::popcount(a ^ b));
}

/// ceil(log2(x)) for x >= 1. The number of address bits needed to index
/// x distinct values.
[[nodiscard]] constexpr u32 log2_ceil(u64 x) noexcept {
  assert(x >= 1);
  return x <= 1 ? 0u : static_cast<u32>(64 - std::countl_zero(x - 1));
}

/// floor(log2(x)) for x >= 1.
[[nodiscard]] constexpr u32 log2_floor(u64 x) noexcept {
  assert(x >= 1);
  return static_cast<u32>(63 - std::countl_zero(x));
}

/// The paper's ceil2 operator: 2^ceil(log2 x), the smallest power of two
/// that is >= x. Written |x|_2 in the paper.
[[nodiscard]] constexpr u64 ceil_pow2(u64 x) noexcept {
  return u64{1} << log2_ceil(x);
}

[[nodiscard]] constexpr bool is_pow2(u64 x) noexcept {
  return x != 0 && (x & (x - 1)) == 0;
}

/// Throwing precondition check used on public API boundaries. Internal
/// invariants use assert().
inline void require(bool cond, const char* what) {
  if (!cond) throw std::invalid_argument(what);
}

/// Formatted variant: require(ok, "index %llu out of range [0, %llu)", i, n)
/// throws std::invalid_argument with the offending values interpolated.
/// printf semantics; the message is built only on failure, so the fast path
/// stays a branch.
template <class... Args>
  requires(sizeof...(Args) > 0)
void require(bool cond, const char* fmt, Args... args) {
  if (cond) [[likely]]
    return;
  char buf[256];
  std::snprintf(buf, sizeof buf, fmt, args...);
  throw std::invalid_argument(buf);
}

}  // namespace hj
