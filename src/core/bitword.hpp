// hjembed: packed u64 bitwords for hot-path node bookkeeping.
//
// The batch engine's hot loops used to track "seen this cube node?" /
// "message done?" state in std::vector<bool> or std::set — one bit of
// information behind a proxy reference or a red-black tree node. A
// BitwordSet stores the same membership as raw u64 words: test/set/clear
// are a shift and a mask, count() is a popcount sweep, and iteration
// walks set bits with countr_zero, so scanning a 2^14-node storm cell
// touches 256 cache lines instead of 16k tree nodes. Words are plain
// data, which also makes the type memcpy-cheap to reuse from a
// per-thread scratch arena between verify calls.
#pragma once

#include <bit>
#include <cstring>
#include <vector>

#include "core/common.hpp"

namespace hj {

/// Fixed-universe bit set over [0, size). All operations are O(1) except
/// the whole-set sweeps (count / for_each_set / reset), which run over
/// size/64 words. Not thread-safe; intended as per-thread scratch.
class BitwordSet {
 public:
  BitwordSet() = default;

  explicit BitwordSet(u64 size) { resize(size); }

  /// Grow/shrink the universe to [0, size). Newly exposed bits are clear;
  /// shrinking clears the tail so a later grow cannot resurrect stale
  /// bits from the old words.
  void resize(u64 size) {
    const u64 want = words_for(size);
    if (size < size_ && want <= words_.size()) {
      // Clear the now-out-of-range tail of the boundary word plus any
      // whole words beyond it, then keep capacity for reuse.
      for (u64 i = size; i < size_ && i < want * 64; ++i)
        words_[i >> 6] &= ~(u64{1} << (i & 63));
      for (u64 w = want; w < words_.size(); ++w) words_[w] = 0;
    }
    words_.resize(want, 0);
    size_ = size;
  }

  [[nodiscard]] u64 size() const noexcept { return size_; }
  [[nodiscard]] u64 words() const noexcept { return words_.size(); }

  void set(u64 i) noexcept {
    assert(i < size_);
    words_[i >> 6] |= u64{1} << (i & 63);
  }

  void clear(u64 i) noexcept {
    assert(i < size_);
    words_[i >> 6] &= ~(u64{1} << (i & 63));
  }

  [[nodiscard]] bool test(u64 i) const noexcept {
    assert(i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  /// Set bit i and report whether it was already set — the one-pass
  /// "mark visited, detect collision" operation of the verifier's
  /// injectivity sweep.
  bool test_and_set(u64 i) noexcept {
    assert(i < size_);
    u64& w = words_[i >> 6];
    const u64 mask = u64{1} << (i & 63);
    const bool was = (w & mask) != 0;
    w |= mask;
    return was;
  }

  /// Number of set bits (popcount over the words).
  [[nodiscard]] u64 count() const noexcept {
    u64 n = 0;
    for (u64 w : words_) n += static_cast<u64>(std::popcount(w));
    return n;
  }

  [[nodiscard]] bool none() const noexcept {
    for (u64 w : words_)
      if (w) return false;
    return true;
  }

  [[nodiscard]] bool any() const noexcept { return !none(); }

  /// Zero every bit. O(words); prefer clearing only the bits you set
  /// (via their indices) when the set is sparse relative to the universe.
  void reset() noexcept {
    if (!words_.empty())
      std::memset(words_.data(), 0, words_.size() * sizeof(u64));
  }

  /// Visit the index of every set bit in ascending order.
  template <class Fn>
  void for_each_set(Fn&& fn) const {
    for (u64 wi = 0; wi < words_.size(); ++wi) {
      u64 w = words_[wi];
      while (w) {
        const u64 bit = static_cast<u64>(std::countr_zero(w));
        fn(wi * 64 + bit);
        w &= w - 1;  // drop the lowest set bit
      }
    }
  }

  friend bool operator==(const BitwordSet& a, const BitwordSet& b) noexcept {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }

 private:
  [[nodiscard]] static u64 words_for(u64 size) noexcept {
    return (size + 63) / 64;
  }

  std::vector<u64> words_;
  u64 size_ = 0;
};

}  // namespace hj
