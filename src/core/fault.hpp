// hjembed: permanent fault sets over the Boolean cube.
//
// The paper targets iPSC/nCUBE-era hypercube multiprocessors, where dead
// nodes and links were a fact of life. A FaultSet records the permanently
// failed hardware; the router detours guest-edge paths around it (a detour
// is a controlled dilation increase), the planner remaps or contracts
// embeddings away from it, and the verifier certifies that a finished
// embedding never touches it. Transient (probabilistic) link faults are a
// simulation-time concern and live in hypersim (sim::FaultModel), layered
// on top of this structural set.
#pragma once

#include <unordered_set>

#include "core/hypercube.hpp"

namespace hj {

/// Permanently failed cube nodes and (undirected) cube links.
class FaultSet {
 public:
  FaultSet() = default;

  void fail_node(CubeNode v) { nodes_.insert(v); }

  void fail_link(CubeNode a, CubeNode b) {
    require(Hypercube::adjacent(a, b),
            "FaultSet::fail_link: %llu and %llu are not cube-adjacent",
            static_cast<unsigned long long>(a),
            static_cast<unsigned long long>(b));
    links_.insert(Hypercube::edge_key(a, b));
  }

  /// Remove a previously failed link (endpoint node failures are
  /// untouched). Exists for the quarantine layer: a suspected-transient
  /// link conservatively quarantined as permanent may later be probed
  /// and returned to service (live-run LRU un-quarantine), which is only
  /// sound for links *this* process quarantined — never for diagnosed
  /// ground-truth failures.
  void heal_link(CubeNode a, CubeNode b) {
    require(Hypercube::adjacent(a, b),
            "FaultSet::heal_link: %llu and %llu are not cube-adjacent",
            static_cast<unsigned long long>(a),
            static_cast<unsigned long long>(b));
    links_.erase(Hypercube::edge_key(a, b));
  }

  [[nodiscard]] bool node_failed(CubeNode v) const {
    return nodes_.count(v) != 0;
  }

  /// True iff the (undirected) link between adjacent nodes is failed, or
  /// either endpoint node is failed (a dead node kills its links).
  [[nodiscard]] bool link_failed(CubeNode a, CubeNode b) const {
    return node_failed(a) || node_failed(b) ||
           links_.count(Hypercube::edge_key(a, b)) != 0;
  }

  /// True iff every node and every hop of `path` is healthy.
  [[nodiscard]] bool path_avoids(const CubePath& path) const {
    if (empty()) return true;
    for (std::size_t i = 0; i < path.size(); ++i) {
      if (node_failed(path[i])) return false;
      if (i + 1 < path.size() && link_failed(path[i], path[i + 1]))
        return false;
    }
    return true;
  }

  [[nodiscard]] bool empty() const noexcept {
    return nodes_.empty() && links_.empty();
  }
  [[nodiscard]] std::size_t num_failed_nodes() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] std::size_t num_failed_links() const noexcept {
    return links_.size();
  }
  [[nodiscard]] const std::unordered_set<CubeNode>& failed_nodes()
      const noexcept {
    return nodes_;
  }
  /// Failed links as Hypercube::edge_key values (lo << 6 | flipped bit).
  [[nodiscard]] const std::unordered_set<u64>& failed_link_keys()
      const noexcept {
    return links_;
  }

 private:
  std::unordered_set<CubeNode> nodes_;
  std::unordered_set<u64> links_;  // Hypercube::edge_key
};

}  // namespace hj
