// hjembed: binary-reflected Gray codes (Section 3.1 of the paper).
//
// Encoding the index of each mesh axis with a binary-reflected Gray code
// yields the classical dilation-one embedding of a mesh whose per-axis
// rounded-up sizes multiply to the cube size [Johnsson 87, Reingold et al.].
#pragma once

#include "core/common.hpp"

namespace hj {

/// The i-th binary-reflected Gray codeword: consecutive integers map to
/// addresses at Hamming distance one.
[[nodiscard]] constexpr u64 gray(u64 i) noexcept { return i ^ (i >> 1); }

/// Inverse of gray(): the rank of a codeword.
[[nodiscard]] constexpr u64 gray_inverse(u64 g) noexcept {
  u64 i = g;
  for (u32 shift = 1; shift < 64; shift <<= 1) i ^= i >> shift;
  return i;
}

/// The reflected Gray code G~(y, x) of Section 4 of the paper: the code of
/// x when the copy index y is even, and the code of the reflected index
/// 2^n - 1 - x when y is odd. Reflection makes consecutive copies of an
/// inner axis meet at equal codewords, so axis boundaries cost no extra
/// cube distance in the product construction.
[[nodiscard]] constexpr u64 reflected_gray(u64 y, u64 x, u32 n) noexcept {
  return (y & 1) == 0 ? gray(x) : gray(((u64{1} << n) - 1) - x);
}

}  // namespace hj
