// hjembed: embedding serialization.
//
// A small line-oriented text format so found embeddings (search results,
// planner output) can be stored, exchanged and reloaded without rerunning
// the machinery. Reloading materializes an ExplicitEmbedding: the node map
// plus every edge path whose route differs from the default e-cube route,
// so all verified metrics (including congestion) survive the round trip.
//
//   hjembed 1
//   shape 7x9
//   wrap 0 0
//   cube 6
//   map 0 1 3 2 ...
//   path <node-index> <axis> <wrap(0|1)> <cube-node> <cube-node> ...
//   end
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "core/embedding.hpp"

namespace hj::io {

/// Serialize any embedding (the map and non-default paths are
/// materialized by querying it).
[[nodiscard]] std::string to_text(const Embedding& emb);
void write_text(std::ostream& os, const Embedding& emb);

/// Parse the text format. Throws std::invalid_argument on malformed
/// input; the result is structurally validated (ExplicitEmbedding checks
/// ranges, set_edge_path checks path continuity).
[[nodiscard]] std::shared_ptr<ExplicitEmbedding> from_text(
    const std::string& text);
[[nodiscard]] std::shared_ptr<ExplicitEmbedding> read_text(std::istream& is);

/// File convenience wrappers.
void save(const Embedding& emb, const std::string& file);
[[nodiscard]] std::shared_ptr<ExplicitEmbedding> load(const std::string& file);

}  // namespace hj::io
