#include "core/coverage.hpp"

#include <algorithm>
#include <functional>
#include <vector>

#include "core/parallel.hpp"

namespace hj::coverage {

u32 gray_excess_log2(const Shape& s) {
  u32 bits = 0;
  for (u32 i = 0; i < s.dims(); ++i) bits += log2_ceil(s[i]);
  return bits - s.minimal_cube_dim();
}

bool method1_gray(u64 l1, u64 l2, u64 l3) {
  return ceil_pow2(l1) * ceil_pow2(l2) * ceil_pow2(l3) ==
         ceil_pow2(l1 * l2 * l3);
}

bool method2_pair(u64 l1, u64 l2, u64 l3) {
  const u64 target = ceil_pow2(l1 * l2 * l3);
  return ceil_pow2(l1 * l2) * ceil_pow2(l3) == target ||
         ceil_pow2(l2 * l3) * ceil_pow2(l1) == target ||
         ceil_pow2(l3 * l1) * ceil_pow2(l2) == target;
}

namespace {

/// Smallest a with c * 2^a >= l.
u32 min_pow_for(u64 l, u64 c) { return l <= c ? 0 : log2_ceil((l + c - 1) / c); }

/// Can (l1,l2,l3) be extended axis-wise to (c0*2^a, c1*2^b, c2*2^c) while
/// the product embedding's cube, 2^(base + a + b + c), stays minimal?
/// Only the smallest exponents can work: any larger ones grow the cube.
bool fits_extended_pattern(const u64 l[3], const u64 c[3], u32 base,
                           u64 target) {
  u32 total = base;
  for (int i = 0; i < 3; ++i) total += min_pow_for(l[i], c[i]);
  return total < 64 && (u64{1} << total) == target;
}

}  // namespace

bool method3_small3d(u64 l1, u64 l2, u64 l3) {
  const u64 l[3] = {l1, l2, l3};
  const u64 target = ceil_pow2(l1 * l2 * l3);
  // Extend each axis up to the next 3*2^a (or 7*2^a) and use the 3x3x3
  // (or 3x3x7) direct embedding times Gray (Corollary 2 + Section 4.2
  // strategy 3). The 3x3x3 product cube is 2^(5+a+b+c), the 3x3x7 cube
  // 2^(6+a+b+c); both are automatically the minimal cube of the extended
  // mesh, so the test is whether that cube is also minimal for (l1,l2,l3).
  static constexpr u64 k333[3] = {3, 3, 3};
  if (fits_extended_pattern(l, k333, 5, target)) return true;
  for (int seven = 0; seven < 3; ++seven) {
    const u64 c[3] = {seven == 0 ? u64{7} : u64{3},
                      seven == 1 ? u64{7} : u64{3},
                      seven == 2 ? u64{7} : u64{3}};
    if (fits_extended_pattern(l, c, 6, target)) return true;
  }
  return false;
}

std::optional<SplitWitness> method4_split(u64 l1, u64 l2, u64 l3) {
  const u64 l[3] = {l1, l2, l3};
  const u64 target = ceil_pow2(l1 * l2 * l3);
  for (u32 s = 0; s < 3; ++s) {
    for (int swap = 0; swap < 2; ++swap) {
      const u32 i = swap ? (s + 2) % 3 : (s + 1) % 3;
      const u32 j = swap ? (s + 1) % 3 : (s + 2) % 3;
      // Within a fixed value of ceil2(l_i * l'), the best l' is the
      // largest (it minimizes l'' and hence the other factor), so only the
      // power-of-two bucket boundaries l' = floor(2^p / l_i) need testing.
      for (u64 cap = ceil_pow2(l[i]); cap <= target; cap <<= 1) {
        const u64 lp = cap / l[i];
        if (lp == 0) continue;
        const u64 lpp = (l[s] + lp - 1) / lp;
        if (ceil_pow2(l[i] * lp) * ceil_pow2(lpp * l[j]) == target)
          return SplitWitness{s, i, j, lp, lpp};
      }
    }
  }
  return std::nullopt;
}

u32 first_method(u64 l1, u64 l2, u64 l3) {
  if (method1_gray(l1, l2, l3)) return 1;
  if (method2_pair(l1, l2, l3)) return 2;
  if (method3_small3d(l1, l2, l3)) return 3;
  if (method4_split(l1, l2, l3)) return 4;
  return 0;
}

double SweepCounts::cumulative_percent(u32 i) const {
  u64 covered = 0;
  for (u32 m = 1; m <= i && m < 5; ++m) covered += by_method[m];
  return total ? 100.0 * static_cast<double>(covered) /
                     static_cast<double>(total)
               : 0.0;
}

SweepCounts sweep_3d(u32 n) {
  require(n >= 1 && n <= 16, "sweep_3d: n out of range");
  const u64 side = u64{1} << n;
  SweepCounts counts;
  counts.total = side * side * side;

  // Enumerate sorted triples a <= b <= c and weight by the number of
  // distinct permutations; every method is symmetric in the axes. The
  // outer l1 axis is chunked across the thread pool; per-chunk counts
  // merge in axis order, so the result is identical at every HJ_THREADS.
  // Grain 1 load-balances the triangular iteration space (small a values
  // own far more (b, c) pairs than large ones).
  counts.by_method = par::parallel_reduce(
      1, side + 1, /*grain=*/1, std::array<u64, 5>{},
      [side](u64 lo, u64 hi, std::array<u64, 5>& acc) {
        // Hoisted restatement of first_method(a, b, c): everything that
        // depends only on (a, b) is computed once per pair, and the
        // c-dependent ceilings (ceil2(c), ceil2(abc), ceil2(bc),
        // ceil2(ac), the 3*2^p / 7*2^p exponents of method 3) advance
        // monotonically with c, so the innermost iteration does a few
        // multiplies and compares instead of re-deriving every rounding.
        // The classification is exactly methods 1-4 in order — the golden
        // Figure-2 gates pin the counts to the unhoisted evaluation.
        for (u64 a = lo; a < hi; ++a) {
          const u64 ca = ceil_pow2(a);
          const u32 pa3 = min_pow_for(a, 3), pa7 = min_pow_for(a, 7);
          for (u64 b = a; b <= side; ++b) {
            const u64 cb = ceil_pow2(b);
            const u64 ab = a * b;
            const u64 cab = ceil_pow2(ab);
            const u32 pb3 = min_pow_for(b, 3), pb7 = min_pow_for(b, 7);
            u64 cc = cb;                      // ceil2(c), c from b
            u64 cabc = ceil_pow2(ab * b);     // ceil2(a*b*c)
            u64 cbc = ceil_pow2(b * b);       // ceil2(b*c)
            u64 cac = ceil_pow2(a * b);       // ceil2(a*c)
            u32 pc3 = pb3, pc7 = pb7;         // min p: 3*2^p >= c, 7*2^p >= c
            for (u64 c = b; c <= side; ++c) {
              while (cc < c) cc <<= 1;
              while (cabc < ab * c) cabc <<= 1;
              while (cbc < b * c) cbc <<= 1;
              while (cac < a * c) cac <<= 1;
              while ((u64{3} << pc3) < c) ++pc3;
              while ((u64{7} << pc7) < c) ++pc7;
              u32 method = 0;
              if (ca * cb * cc == cabc) {
                method = 1;
              } else if (cab * cc == cabc || cbc * ca == cabc ||
                         cac * cb == cabc) {
                method = 2;
              } else {
                // Method 3's four extension patterns, as exponent sums.
                const u32 t333 = 5 + pa3 + pb3 + pc3;
                const u32 t733 = 6 + pa7 + pb3 + pc3;
                const u32 t373 = 6 + pa3 + pb7 + pc3;
                const u32 t337 = 6 + pa3 + pb3 + pc7;
                if ((t333 < 64 && (u64{1} << t333) == cabc) ||
                    (t733 < 64 && (u64{1} << t733) == cabc) ||
                    (t373 < 64 && (u64{1} << t373) == cabc) ||
                    (t337 < 64 && (u64{1} << t337) == cabc)) {
                  method = 3;
                } else if (method4_split(a, b, c)) {
                  method = 4;
                }
              }
              const u64 weight =
                  (a == b && b == c) ? 1 : (a == b || b == c) ? 3 : 6;
              acc[method] += weight;
            }
          }
        }
      },
      [](std::array<u64, 5>& into, std::array<u64, 5>&& from) {
        for (u32 m = 0; m < 5; ++m) into[m] += from[m];
      });
  return counts;
}

namespace {

/// Enumerate set partitions of {0..k-1} into blocks of size <= 3 and call
/// `fn(blocks)`; stop early when fn returns true. Standard "assign element
/// i to an existing open block or a new one" recursion.
bool for_each_partition(u32 k, std::vector<std::vector<u32>>& blocks,
                        u32 next, const std::function<bool(
                            const std::vector<std::vector<u32>>&)>& fn) {
  if (next == k) return fn(blocks);
  // Index-based: recursion appends/removes trailing blocks, which would
  // invalidate range-for references on reallocation.
  const std::size_t existing = blocks.size();
  for (std::size_t bi = 0; bi < existing; ++bi) {
    if (blocks[bi].size() >= 3) continue;
    blocks[bi].push_back(next);
    if (for_each_partition(k, blocks, next + 1, fn)) {
      blocks[bi].pop_back();
      return true;
    }
    blocks[bi].pop_back();
  }
  blocks.push_back({next});
  const bool hit = for_each_partition(k, blocks, next + 1, fn);
  blocks.pop_back();
  return hit;
}

}  // namespace

bool covered_kd(const Shape& shape) {
  const u32 k = shape.dims();
  require(k >= 1 && k <= 6, "covered_kd: 1 <= k <= 6");
  const u64 target = ceil_pow2(shape.num_nodes());
  std::vector<std::vector<u32>> blocks;
  return for_each_partition(
      k, blocks, 0, [&](const std::vector<std::vector<u32>>& part) {
        u64 prod = 1;
        for (const auto& b : part) {
          u64 block_nodes = 1;
          for (u32 axis : b) block_nodes *= shape[axis];
          prod *= ceil_pow2(block_nodes);
          if (prod > target) return false;
          if (b.size() == 3 &&
              first_method(shape[b[0]], shape[b[1]], shape[b[2]]) == 0)
            return false;
        }
        return prod == target;
      });
}

KdSweep sweep_kd(u32 k, u32 n) {
  require(k >= 1 && k <= 6, "sweep_kd: 1 <= k <= 6");
  require(n >= 1 && n <= 16, "sweep_kd: n out of range");
  const u64 side = u64{1} << n;
  KdSweep out;
  // Sorted tuples with multinomial weight k! / prod(run lengths!).
  SmallVec<u64, 8> l(k, 1);
  u64 factorial_k = 1;
  for (u64 i = 2; i <= k; ++i) factorial_k *= i;
  for (;;) {
    u64 weight = factorial_k;
    u64 run = 1;
    for (u32 i = 1; i <= k; ++i) {
      if (i < k && l[i] == l[i - 1]) {
        ++run;
      } else {
        for (u64 r = 2; r <= run; ++r) weight /= r;
        run = 1;
      }
    }
    out.total += weight;
    SmallVec<u64, 4> ext;
    for (u32 i = 0; i < k; ++i) ext.push_back(l[i]);
    if (covered_kd(Shape{ext})) out.covered += weight;
    // Advance the sorted odometer.
    u32 pos = k;
    while (pos-- > 0) {
      if (l[pos] < side) {
        ++l[pos];
        for (u32 j = pos + 1; j < k; ++j) l[j] = l[pos];
        break;
      }
      if (pos == 0) return out;
    }
  }
}

}  // namespace hj::coverage
