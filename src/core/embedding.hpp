// hjembed: the embedding abstraction (Definition 1 of the paper).
//
// An embedding maps every guest mesh node to a cube node and every guest
// edge to a cube path between the images of its endpoints. Embeddings are
// represented behaviourally (virtual map/edge_path) so that the graph
// decomposition engine can compose them without materializing node tables,
// exactly mirroring the constructive proofs of Theorem 3 and Corollary 2.
#pragma once

#include <memory>
#include <vector>

#include "core/gray.hpp"
#include "core/hypercube.hpp"
#include "core/mesh.hpp"

namespace hj {

/// Base class for mesh-into-cube embeddings.
///
/// One-to-one embeddings (Sections 3-6) promise an injective map();
/// many-to-one embeddings (Section 7) override one_to_one() to return
/// false and are measured by load factor instead of expansion.
class Embedding {
 public:
  Embedding(Mesh guest, u32 host_dim)
      : guest_(std::move(guest)), host_dim_(host_dim) {
    require(host_dim <= 63, "Embedding host dimension must be <= 63");
  }

  virtual ~Embedding() = default;

  [[nodiscard]] const Mesh& guest() const noexcept { return guest_; }
  [[nodiscard]] u32 host_dim() const noexcept { return host_dim_; }
  [[nodiscard]] Hypercube host() const noexcept { return Hypercube(host_dim_); }

  /// Image of guest node `idx` in the cube.
  [[nodiscard]] virtual CubeNode map(MeshIndex idx) const = 0;

  /// Cube path assigned to a guest edge, from map(e.a) to map(e.b).
  /// The default routes along the dimension-ordered shortest path; concrete
  /// embeddings override this when the paper's construction prescribes the
  /// path (congestion guarantees depend on path choice, not only on the
  /// node map).
  [[nodiscard]] virtual CubePath edge_path(const MeshEdge& e) const {
    return Hypercube::ecube_path(map(e.a), map(e.b));
  }

  /// False for the many-to-one embeddings of Section 7.
  [[nodiscard]] virtual bool one_to_one() const noexcept { return true; }

  /// Materialize map(i) for every guest node into `out` (resized to
  /// num_nodes(); out[i] == map(i) for all i). The default loops over the
  /// virtual map(); composite embeddings override it with incremental
  /// odometer traversals that amortize the per-node coordinate arithmetic
  /// and factor-map recursion — the batch verifier's hot path.
  virtual void map_all(std::vector<CubeNode>& out) const;

  /// True asserts that *every* guest edge's assigned path is exactly the
  /// at-most-one-hop sequence [map(e.a), map(e.b)] — i.e. dilation <= 1
  /// with the default e-cube route. Gray embeddings and products/relabels/
  /// submeshes of unit embeddings qualify; anything that may carry a
  /// prescribed multi-hop path (ExplicitEmbedding) must return false. The
  /// verifier uses this to skip materializing per-edge paths.
  [[nodiscard]] virtual bool unit_paths() const noexcept { return false; }

  /// expansion = |V(H)| / |V(G)| (Definition 1).
  [[nodiscard]] double expansion() const noexcept {
    return static_cast<double>(u64{1} << host_dim_) /
           static_cast<double>(guest_.num_nodes());
  }

  /// True iff the host cube is minimal: n = ceil(log2 |V(G)|).
  [[nodiscard]] bool minimal_expansion() const noexcept {
    return host_dim_ == guest_.shape().minimal_cube_dim();
  }

  Embedding(const Embedding&) = delete;
  Embedding& operator=(const Embedding&) = delete;

 private:
  Mesh guest_;
  u32 host_dim_;
};

using EmbeddingPtr = std::shared_ptr<const Embedding>;

/// The binary-reflected Gray code embedding (Section 3.1): axis i is
/// encoded on ceil(log2 l_i) address bits; adjacent mesh nodes land on
/// adjacent cube nodes (dilation one, congestion one) at the price of
/// rounding every axis up to a power of two.
///
/// Axis 0 occupies the most significant bit field.
class GrayEmbedding final : public Embedding {
 public:
  // Takes `guest` by const reference and copies: a by-value Mesh would be
  // moved while its shape is still being read for the cube dimension
  // (constructor argument evaluation order is unspecified).
  explicit GrayEmbedding(const Mesh& guest)
      : GrayEmbedding(guest.shape().gray_cube_dim(), guest) {}

  [[nodiscard]] CubeNode map(MeshIndex idx) const override {
    const Shape& s = guest().shape();
    CubeNode out = 0;
    // Decode row-major index axis by axis, fastest axis first.
    for (u32 i = s.dims(); i-- > 0;) {
      const u64 c = idx % s[i];
      idx /= s[i];
      out |= gray(c) << shift_[i];
    }
    return out;
  }

  [[nodiscard]] CubePath edge_path(const MeshEdge& e) const override {
    // Every Gray edge image has dilation one except a wrap edge of a
    // power-of-two axis, which is also dilation one (the code is cyclic).
    return Hypercube::ecube_path(map(e.a), map(e.b));
  }

  void map_all(std::vector<CubeNode>& out) const override;

  [[nodiscard]] bool unit_paths() const noexcept override { return true; }

 private:
  GrayEmbedding(u32 host_dim, Mesh g) : Embedding(std::move(g), host_dim) {
    const Shape& s = guest().shape();
    shift_.assign(s.dims(), 0);
    u32 acc = 0;
    for (u32 i = s.dims(); i-- > 0;) {
      shift_[i] = acc;
      acc += log2_ceil(s[i]);
    }
    for (u32 i = 0; i < s.dims(); ++i) {
      require(!guest().wraps(i) || is_pow2(s[i]) || s[i] <= 2,
              "GrayEmbedding: wrapped axes must have power-of-two length "
              "(use the torus module otherwise)");
    }
  }

  SmallVec<u32, 4> shift_;
};

/// An embedding backed by an explicit node table and (optionally) explicit
/// per-edge paths. Used for the paper's direct embeddings (3x5, 7x9, 11x11,
/// 3x3x3, 3x3x7) and for anything produced by the search engine.
class ExplicitEmbedding final : public Embedding {
 public:
  ExplicitEmbedding(Mesh guest, u32 host_dim, std::vector<CubeNode> node_map)
      : Embedding(std::move(guest), host_dim), map_(std::move(node_map)) {
    require(map_.size() == this->guest().num_nodes(),
            "ExplicitEmbedding: node map size must equal guest node count");
    const u64 cube = u64{1} << host_dim;
    for (CubeNode v : map_)
      require(v < cube, "ExplicitEmbedding: node map exceeds the cube");
  }

  [[nodiscard]] CubeNode map(MeshIndex idx) const override {
    return map_[idx];
  }

  [[nodiscard]] CubePath edge_path(const MeshEdge& e) const override;

  void map_all(std::vector<CubeNode>& out) const override {
    out.assign(map_.begin(), map_.end());
  }

  /// Prescribe the path for one edge. `path` must run from map(e.a) to
  /// map(e.b) along cube edges; the verifier re-checks this.
  void set_edge_path(const MeshEdge& e, CubePath path);

  /// Raw access for table generation and serialization.
  [[nodiscard]] const std::vector<CubeNode>& node_map() const noexcept {
    return map_;
  }

 private:
  [[nodiscard]] u64 path_key(const MeshEdge& e) const noexcept {
    return e.a * guest().dims() + e.axis;
  }

  std::vector<CubeNode> map_;
  // Sparse, keyed by (source node, axis); only dilation>=2 edges need an
  // entry. Sorted vector keeps lookups cache-friendly and allocation-free
  // after construction.
  std::vector<std::pair<u64, CubePath>> paths_;
  bool paths_sorted_ = true;
};

/// The cube route from mesh node `u` to its mesh neighbor `w`, following
/// the embedding's assigned path for that edge (reversed as needed).
/// `u` and `w` must be adjacent in the guest (wrap edges included).
[[nodiscard]] CubePath neighbor_route(const Embedding& emb, MeshIndex u,
                                      MeshIndex w);

}  // namespace hj
