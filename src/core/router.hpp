// hjembed: congestion-aware path assignment.
//
// A node map fixes the dilation of every edge but not the congestion: a
// dilation-2 edge has two candidate midpoints and the choice matters. The
// paper's direct embeddings come with congestion-2 path assignments [13];
// this router recovers such assignments for any node map by greedy
// assignment followed by local-improvement passes.
#pragma once

#include "core/embedding.hpp"
#include "core/fault.hpp"

namespace hj {

struct RouteStats {
  u32 congestion = 0;       // after routing
  u32 passes_used = 0;      // improvement passes actually run
  u64 rerouted_edges = 0;   // switches made during improvement
};

/// Choose cube paths for every guest edge of `emb`, minimizing the maximum
/// congestion. Dilation-1 edges are forced; dilation-2 edges pick one of
/// their two midpoints; longer edges keep their default route but still
/// count toward link loads. Paths are written back with set_edge_path().
RouteStats route_minimize_congestion(ExplicitEmbedding& emb,
                                     u32 max_passes = 16);

/// Congestion/wirelength-aware variant for the multi-objective planner:
/// race `candidates` dimension-order permutations against the default
/// fixed (e-cube) order and keep the best. Candidate 0 is the identity
/// (exactly the default order); the rest are Fisher-Yates shuffles drawn
/// from a splitmix64 stream seeded only by the candidate index, so the
/// scan is a pure function of (emb, candidates, max_passes) — bit
/// identical across runs and thread counts. Each candidate lays every
/// >= 2-hop edge along its bit order, runs the same two-hop improvement
/// passes as route_minimize_congestion, and is scored by max link load
/// then sum of squared loads (balance); ties keep the lowest index, so
/// the default order wins unless a permutation strictly helps. All paths
/// stay shortest, so wirelength is untouched — this is a congestion
/// lever only.
RouteStats route_balanced(ExplicitEmbedding& emb, u32 candidates = 8,
                          u32 max_passes = 16);

struct DetourStats {
  /// True iff every fault-affected edge found a healthy replacement path
  /// within the dilation budget (and no endpoint image is a failed node —
  /// a failed endpoint needs a node remap, which is the planner's job).
  bool ok = true;
  u64 detoured_edges = 0;     // edges rerouted around faults
  u64 unroutable_edges = 0;   // edges with no healthy path in budget
  u32 max_added_dilation = 0; // max(new path length - Hamming distance)
  u32 congestion = 0;         // max link load after detouring
};

/// Reroute every guest-edge path of `emb` that touches a failed node or
/// link onto a healthy cube path, adding at most `max_added_dilation` hops
/// over the Hamming distance of the edge image (a detour through an
/// adjacent cube dimension costs exactly 2 extra hops). Healthy paths are
/// left untouched; replacement paths are chosen by shortest-first,
/// load-greedy search, then tightened by local-improvement passes over the
/// detoured edges so congestion is re-minimized. Call after
/// route_minimize_congestion().
DetourStats route_around_faults(ExplicitEmbedding& emb,
                                const FaultSet& faults,
                                u32 max_added_dilation = 2,
                                u32 max_passes = 16);

}  // namespace hj
