// hjembed: congestion-aware path assignment.
//
// A node map fixes the dilation of every edge but not the congestion: a
// dilation-2 edge has two candidate midpoints and the choice matters. The
// paper's direct embeddings come with congestion-2 path assignments [13];
// this router recovers such assignments for any node map by greedy
// assignment followed by local-improvement passes.
#pragma once

#include "core/embedding.hpp"

namespace hj {

struct RouteStats {
  u32 congestion = 0;       // after routing
  u32 passes_used = 0;      // improvement passes actually run
  u64 rerouted_edges = 0;   // switches made during improvement
};

/// Choose cube paths for every guest edge of `emb`, minimizing the maximum
/// congestion. Dilation-1 edges are forced; dilation-2 edges pick one of
/// their two midpoints; longer edges keep their default route but still
/// count toward link loads. Paths are written back with set_edge_path().
RouteStats route_minimize_congestion(ExplicitEmbedding& emb,
                                     u32 max_passes = 16);

}  // namespace hj
