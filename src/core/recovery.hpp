// hjembed: the live-recovery controller — escalating repair of a running
// embedding after mid-run fault arrivals.
//
// When a node or link dies under a live computation, tearing the whole
// placement down and replanning is rarely the cheapest fix: the paper's
// own structure (Theorem 3 products, the phi~ reflection, Section 7
// contractions) makes *local* repair possible. The controller walks an
// escalation ladder, cheapest rung first:
//
//   (a) Reroute  — keep every guest node where it is; detour only the
//       edge paths that touch the new fault (route_around_faults).
//       Migration cost 0; fails when a host *node* died under a guest
//       node, or a detour would blow the dilation budget.
//   (b) Migrate  — move only the guest nodes whose hosts died to healthy
//       spare addresses within a bounded Hamming radius, preferring
//       spares inside the same factor subcube of the product plan (same
//       outer bits), then reroute. Cost = sum of Hamming distances moved.
//   (c) Replan   — full Planner::plan_avoiding walk (detour / XOR remap /
//       many-to-one contraction). Cost = every guest node's move distance
//       under the fresh plan; always the most disruptive rung.
//
// Every rung's outcome is re-certified by verify() against the updated
// FaultSet before it may be chosen; rungs (a) and (b) must additionally
// stay within `baseline_dilation + max_dilation_increase` (a detour in a
// cube adds an even number of hops, so an uncontrolled detour chain can
// silently double dilation — the budget forces escalation instead). The
// controller picks the cheapest certified rung by migration cost.
//
// Sustained pressure (fault storms, DESIGN §10) adds guard rails:
//
//   * Repair budget with exponential backoff. Each repair() call is
//     charged 2^min(consecutive_failures, 5) units against a budget that
//     start_epoch() replenishes by `budget_per_epoch` (capped at
//     `budget_cap`). Successful repairs cost one unit; a hopeless shape
//     that keeps failing sees its charges double until the budget cannot
//     cover the next attempt, and repair() then refuses up front
//     (RepairResult::budget_exhausted) instead of thrashing the ladder
//     for the rest of the run.
//   * Rung-level retry caps. A rung that failed `rung_retry_cap` times
//     in a row is skipped (its failure mode — no spare in radius, a host
//     node dead under a guest — rarely changes between consecutive
//     storms' epochs), but probed again every 4th skipped call so a
//     network healed by quarantine eviction can re-enable the cheap
//     rungs. Replan is never skipped: it is the rung of last resort.
//   * Impossibility witnesses. When the fault set provably admits no
//     certified one-to-one repair (pigeonhole: more guest nodes than
//     healthy hosts; or isolation: the largest healthy connected
//     component is too small), the controller skips the one-to-one rungs
//     outright and, if replan also fails, reports the witness so the
//     caller can degrade gracefully instead of retrying forever.
//
// All of this state is a pure function of the repair() call sequence, so
// controller behaviour — and with it the RecoveryLog — stays bit-identical
// at every thread count.
#pragma once

#include <optional>

#include "core/planner.hpp"

namespace hj::recovery {

/// The ladder rung a repair ended on.
enum class Rung : u8 { None, Reroute, Migrate, Replan };

[[nodiscard]] const char* rung_name(Rung r) noexcept;

struct RecoveryOptions {
  /// Max added hops per detoured edge handed to route_around_faults.
  u32 detour_budget = 2;
  /// Rungs (a)/(b) certify only if post-repair dilation stays within
  /// baseline_dilation + this; otherwise the controller escalates.
  u32 max_dilation_increase = 1;
  /// Hamming radius of the spare search in rung (b).
  u32 max_migration_radius = 3;
  /// Skip rungs (a)/(b) and always replan — the bench baseline.
  bool force_replan = false;
  /// Repair-pressure budget (see the class comment): units replenished
  /// per start_epoch(). 0 disables the budget entirely (unit-test and
  /// one-shot callers); the live-run driver leaves it on.
  u32 budget_per_epoch = 4;
  /// Ceiling on accumulated budget units, so a long quiet stretch cannot
  /// bank enough budget to thrash through a later storm.
  u32 budget_cap = 32;
  /// Consecutive uncertified attempts of rung (a)/(b) before that rung
  /// is skipped (probed again every 4th skip). 0 = never skip.
  u32 rung_retry_cap = 3;
  /// Providers handed to the internal planner for rung (c).
  DirectProvider direct_provider;
  DegradeProvider degrade_provider;
};

struct RepairResult {
  bool ok = false;
  Rung rung = Rung::None;
  /// The repaired, certified embedding (null when !ok).
  EmbeddingPtr embedding;
  /// verify() report of `embedding` against the fault set handed in.
  VerifyReport report;
  /// Guest nodes whose host address changed, and the migration-cost
  /// model: sum over moved nodes of hamming(old address, new address).
  u64 moved_nodes = 0;
  u64 migration_cost = 0;
  /// Human-readable repair derivation, e.g. "migrate(2 nodes, cost 3)".
  std::string desc;
  /// True when repair() refused to attempt anything because the backoff
  /// budget could not cover the next charge; the caller should stop
  /// retrying (declare the run degraded) rather than call again.
  bool budget_exhausted = false;
  /// Set on failure when the fault set provably admits no certified
  /// one-to-one repair (pigeonhole / isolation; see
  /// impossibility_witness) — the lower-bound evidence behind a
  /// Degraded verdict.
  std::string witness;
};

/// Repairs embeddings of one mesh shape. Not thread-safe (owns a
/// Planner); create one per thread and share a ShardedPlanCache.
class RecoveryController {
 public:
  explicit RecoveryController(Shape shape, RecoveryOptions opts = {});

  /// Attach a cross-controller plan memo (not owned; must outlive the
  /// controller). Only fault-free sub-plans are shared through it; see
  /// the cache-purity audit in planner.cpp.
  void set_shared_cache(ShardedPlanCache* cache);

  /// Repair `current` so it avoids `faults`, walking the ladder.
  /// `baseline_dilation` is the pre-fault certified dilation (the d in
  /// the d+1 guarantee); `factor_inner_dim` is the host-bit width of the
  /// product plan's inner factor (see inner_factor_dim()), 0 when
  /// unknown — it only steers spare preference, never correctness.
  /// Returns ok=false when no rung produces a certified embedding.
  [[nodiscard]] RepairResult repair(const Embedding& current,
                                    const FaultSet& faults,
                                    u32 baseline_dilation,
                                    u32 factor_inner_dim = 0);

  /// Replenish the backoff budget by budget_per_epoch (up to budget_cap).
  /// Epoch-driven callers (the live run) call this once per epoch; a
  /// controller that is never replenished has budget_cap to spend.
  void start_epoch();

  /// Units currently available to spend on repair attempts (meaningful
  /// only when budget_per_epoch > 0).
  [[nodiscard]] u32 budget_remaining() const noexcept { return budget_; }
  /// Consecutive repair() failures since the last certified repair (the
  /// exponent of the next attempt's charge).
  [[nodiscard]] u32 consecutive_failures() const noexcept {
    return consecutive_failures_;
  }

 private:
  [[nodiscard]] bool rung_enabled(u32 idx);  // 0 = reroute, 1 = migrate
  [[nodiscard]] RepairResult try_reroute(const Embedding& current,
                                         const FaultSet& faults,
                                         u32 dilation_budget);
  [[nodiscard]] RepairResult try_migrate(const Embedding& current,
                                         const FaultSet& faults,
                                         u32 dilation_budget,
                                         u32 factor_inner_dim);
  [[nodiscard]] RepairResult try_replan(const Embedding& current,
                                        const FaultSet& faults);

  Shape shape_;
  RecoveryOptions opts_;
  Planner planner_;
  // Storm guard-rail state (deterministic: a pure function of the
  // repair() call sequence).
  u32 budget_ = 0;
  u32 consecutive_failures_ = 0;
  u32 rung_failures_[2] = {0, 0};  // consecutive, per skippable rung
  u32 rung_skips_[2] = {0, 0};
};

/// Host-bit width of the inner factor when `emb` is a product plan
/// (MeshProductEmbedding), else 0. Callers cache this before the first
/// repair: repaired embeddings are materialized (ExplicitEmbedding) and
/// no longer expose their factor structure.
[[nodiscard]] u32 inner_factor_dim(const Embedding& emb);

/// A proof that no certified one-to-one repair of `shape` into the
/// faulted Q_{host_dim} can exist, or nullopt when no such proof is
/// found. Two witnesses, in increasing cost:
///   * pigeonhole — the guest has more nodes than healthy hosts (O(F));
///   * isolation  — every edge path of a connected guest must stay
///     inside one healthy connected component, and the largest healthy
///     component is smaller than the guest (BFS over the cube; only
///     attempted for host_dim <= 16).
/// A witness rules out rungs (a)/(b) and any one-to-one replan; only a
/// many-to-one contraction (degrade provider) could still serve, at a
/// load factor the witness quantifies.
[[nodiscard]] std::optional<std::string> impossibility_witness(
    const Shape& shape, const FaultSet& faults, u32 host_dim);

}  // namespace hj::recovery
