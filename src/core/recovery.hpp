// hjembed: the live-recovery controller — escalating repair of a running
// embedding after mid-run fault arrivals.
//
// When a node or link dies under a live computation, tearing the whole
// placement down and replanning is rarely the cheapest fix: the paper's
// own structure (Theorem 3 products, the phi~ reflection, Section 7
// contractions) makes *local* repair possible. The controller walks an
// escalation ladder, cheapest rung first:
//
//   (a) Reroute  — keep every guest node where it is; detour only the
//       edge paths that touch the new fault (route_around_faults).
//       Migration cost 0; fails when a host *node* died under a guest
//       node, or a detour would blow the dilation budget.
//   (b) Migrate  — move only the guest nodes whose hosts died to healthy
//       spare addresses within a bounded Hamming radius, preferring
//       spares inside the same factor subcube of the product plan (same
//       outer bits), then reroute. Cost = sum of Hamming distances moved.
//   (c) Replan   — full Planner::plan_avoiding walk (detour / XOR remap /
//       many-to-one contraction). Cost = every guest node's move distance
//       under the fresh plan; always the most disruptive rung.
//
// Every rung's outcome is re-certified by verify() against the updated
// FaultSet before it may be chosen; rungs (a) and (b) must additionally
// stay within `baseline_dilation + max_dilation_increase` (a detour in a
// cube adds an even number of hops, so an uncontrolled detour chain can
// silently double dilation — the budget forces escalation instead). The
// controller picks the cheapest certified rung by migration cost.
#pragma once

#include "core/planner.hpp"

namespace hj::recovery {

/// The ladder rung a repair ended on.
enum class Rung : u8 { None, Reroute, Migrate, Replan };

[[nodiscard]] const char* rung_name(Rung r) noexcept;

struct RecoveryOptions {
  /// Max added hops per detoured edge handed to route_around_faults.
  u32 detour_budget = 2;
  /// Rungs (a)/(b) certify only if post-repair dilation stays within
  /// baseline_dilation + this; otherwise the controller escalates.
  u32 max_dilation_increase = 1;
  /// Hamming radius of the spare search in rung (b).
  u32 max_migration_radius = 3;
  /// Skip rungs (a)/(b) and always replan — the bench baseline.
  bool force_replan = false;
  /// Providers handed to the internal planner for rung (c).
  DirectProvider direct_provider;
  DegradeProvider degrade_provider;
};

struct RepairResult {
  bool ok = false;
  Rung rung = Rung::None;
  /// The repaired, certified embedding (null when !ok).
  EmbeddingPtr embedding;
  /// verify() report of `embedding` against the fault set handed in.
  VerifyReport report;
  /// Guest nodes whose host address changed, and the migration-cost
  /// model: sum over moved nodes of hamming(old address, new address).
  u64 moved_nodes = 0;
  u64 migration_cost = 0;
  /// Human-readable repair derivation, e.g. "migrate(2 nodes, cost 3)".
  std::string desc;
};

/// Repairs embeddings of one mesh shape. Not thread-safe (owns a
/// Planner); create one per thread and share a ShardedPlanCache.
class RecoveryController {
 public:
  explicit RecoveryController(Shape shape, RecoveryOptions opts = {});

  /// Attach a cross-controller plan memo (not owned; must outlive the
  /// controller). Only fault-free sub-plans are shared through it; see
  /// the cache-purity audit in planner.cpp.
  void set_shared_cache(ShardedPlanCache* cache);

  /// Repair `current` so it avoids `faults`, walking the ladder.
  /// `baseline_dilation` is the pre-fault certified dilation (the d in
  /// the d+1 guarantee); `factor_inner_dim` is the host-bit width of the
  /// product plan's inner factor (see inner_factor_dim()), 0 when
  /// unknown — it only steers spare preference, never correctness.
  /// Returns ok=false when no rung produces a certified embedding.
  [[nodiscard]] RepairResult repair(const Embedding& current,
                                    const FaultSet& faults,
                                    u32 baseline_dilation,
                                    u32 factor_inner_dim = 0);

 private:
  [[nodiscard]] RepairResult try_reroute(const Embedding& current,
                                         const FaultSet& faults,
                                         u32 dilation_budget);
  [[nodiscard]] RepairResult try_migrate(const Embedding& current,
                                         const FaultSet& faults,
                                         u32 dilation_budget,
                                         u32 factor_inner_dim);
  [[nodiscard]] RepairResult try_replan(const Embedding& current,
                                        const FaultSet& faults);

  Shape shape_;
  RecoveryOptions opts_;
  Planner planner_;
};

/// Host-bit width of the inner factor when `emb` is a product plan
/// (MeshProductEmbedding), else 0. Callers cache this before the first
/// repair: repaired embeddings are materialized (ExplicitEmbedding) and
/// no longer expose their factor structure.
[[nodiscard]] u32 inner_factor_dim(const Embedding& emb);

}  // namespace hj::recovery
