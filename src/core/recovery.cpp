#include "core/recovery.hpp"

#include <algorithm>
#include <cstdio>
#include <unordered_set>

#include "core/io.hpp"
#include "core/product.hpp"
#include "core/router.hpp"
#include "obs/obs.hpp"

namespace hj::recovery {
namespace {

/// Per-rung registry scope: counts the attempt, times the rung, and (by
/// watching the function's result object) counts certified outcomes.
/// Rung wall time feeds recovery.rung_us.<rung> — the registry numbers
/// E18 reports instead of hand-rolled bench timers. Attempt/certified
/// counts are deterministic (the ladder walk is); durations are Timing.
class RungObs {
 public:
  RungObs(const char* rung, const RepairResult& result)
      : rung_(rung), result_(&result), on_(obs::enabled()) {
    if (on_) t0_ = obs::now_us();
  }
  RungObs(const RungObs&) = delete;
  RungObs& operator=(const RungObs&) = delete;
  ~RungObs() {
    if (!on_) return;
    auto& reg = obs::Registry::global();
    const std::string base = std::string("recovery.") + rung_;
    reg.counter(base + ".attempts").add();
    if (result_->ok) {
      reg.counter(base + ".certified").add();
      reg.histogram("recovery.migration_cost")
          .observe(result_->migration_cost);
    }
    reg.histogram("recovery.rung_us." + std::string(rung_),
                  obs::Kind::Timing)
        .observe(obs::now_us() - t0_);
  }

 private:
  const char* rung_;
  const RepairResult* result_;
  u64 t0_ = 0;
  bool on_;
};

/// Materialize any embedding as a freely mutable ExplicitEmbedding (node
/// map plus every non-default edge path) via the io round trip.
std::shared_ptr<ExplicitEmbedding> materialize(const Embedding& emb) {
  return io::from_text(io::to_text(emb));
}

/// All addresses at Hamming distance exactly `r` from `v` inside Q_n,
/// ascending. C(n, r) candidates; r is the (small) migration radius.
std::vector<CubeNode> candidates_at_radius(CubeNode v, u32 n, u32 r) {
  std::vector<CubeNode> out;
  std::vector<u32> bits(r);
  for (u32 i = 0; i < r; ++i) bits[i] = i;
  if (r == 0 || r > n) return out;
  for (;;) {
    CubeNode mask = 0;
    for (u32 b : bits) mask |= u64{1} << b;
    out.push_back(v ^ mask);
    // Next r-combination of {0..n-1} in lexicographic order.
    u32 i = r;
    while (i-- > 0) {
      if (bits[i] + (r - i) < n) {
        ++bits[i];
        for (u32 j = i + 1; j < r; ++j) bits[j] = bits[j - 1] + 1;
        break;
      }
      if (i == 0) {
        std::sort(out.begin(), out.end());
        return out;
      }
    }
  }
}

/// Healthy host count of Q_n under `faults` (failed addresses outside
/// the cube do not count against it).
u64 healthy_hosts(const FaultSet& faults, u32 n) {
  const u64 total = u64{1} << n;
  u64 dead = 0;
  for (const CubeNode v : faults.failed_nodes())
    if (v < total) ++dead;
  return total - dead;
}

u64 count_moves(const Embedding& from, const Embedding& to, u64& cost) {
  u64 moved = 0;
  cost = 0;
  for (MeshIndex i = 0; i < from.guest().num_nodes(); ++i) {
    const CubeNode a = from.map(i);
    const CubeNode b = to.map(i);
    if (a == b) continue;
    ++moved;
    cost += hamming(a, b);
  }
  return moved;
}

}  // namespace

const char* rung_name(Rung r) noexcept {
  switch (r) {
    case Rung::Reroute: return "reroute";
    case Rung::Migrate: return "migrate";
    case Rung::Replan: return "replan";
    case Rung::None: break;
  }
  return "none";
}

RecoveryController::RecoveryController(Shape shape, RecoveryOptions opts)
    : shape_(std::move(shape)), opts_(std::move(opts)) {
  require(opts_.detour_budget >= 1,
          "RecoveryController: detour_budget must be >= 1 (a zero budget "
          "cannot route around anything)");
  require(opts_.budget_per_epoch == 0 ||
              opts_.budget_cap >= opts_.budget_per_epoch,
          "RecoveryController: budget_cap (%u) must cover at least one "
          "epoch's replenishment (budget_per_epoch %u)",
          opts_.budget_cap, opts_.budget_per_epoch);
  // Standalone (non-epoch-driven) callers start with a full bank; the
  // live driver replenishes per epoch via start_epoch().
  budget_ = opts_.budget_cap;
  if (opts_.direct_provider)
    planner_.set_direct_provider(opts_.direct_provider);
  if (opts_.degrade_provider)
    planner_.set_degrade_provider(opts_.degrade_provider);
}

void RecoveryController::start_epoch() {
  if (opts_.budget_per_epoch == 0) return;
  budget_ = std::min(opts_.budget_cap, budget_ + opts_.budget_per_epoch);
}

bool RecoveryController::rung_enabled(u32 idx) {
  if (opts_.rung_retry_cap == 0 ||
      rung_failures_[idx] < opts_.rung_retry_cap)
    return true;
  // Over the cap: probe every 4th skipped call so a network healed by
  // quarantine eviction can re-enable the cheap rung.
  if (++rung_skips_[idx] % 4 == 0) return true;
  if (obs::enabled())
    obs::Registry::global().counter("recovery.rung_skips").add();
  return false;
}

void RecoveryController::set_shared_cache(ShardedPlanCache* cache) {
  planner_.set_shared_cache(cache);
}

RepairResult RecoveryController::try_reroute(const Embedding& current,
                                            const FaultSet& faults,
                                            u32 dilation_budget) {
  RepairResult out;
  out.rung = Rung::Reroute;
  HJ_SPAN("recovery.reroute");
  const RungObs rung_obs("reroute", out);
  auto repaired = materialize(current);
  const DetourStats detour =
      route_around_faults(*repaired, faults, opts_.detour_budget);
  if (!detour.ok) return out;
  VerifyReport rep = verify(*repaired, faults);
  if (!rep.valid || !rep.fault_free || rep.dilation > dilation_budget)
    return out;
  out.ok = true;
  out.embedding = std::move(repaired);
  out.report = std::move(rep);
  char buf[96];
  std::snprintf(buf, sizeof buf, "reroute(%llu detours, +%u dil)",
                static_cast<unsigned long long>(detour.detoured_edges),
                detour.max_added_dilation);
  out.desc = buf;
  return out;
}

RepairResult RecoveryController::try_migrate(const Embedding& current,
                                            const FaultSet& faults,
                                            u32 dilation_budget,
                                            u32 factor_inner_dim) {
  RepairResult out;
  out.rung = Rung::Migrate;
  HJ_SPAN("recovery.migrate");
  const RungObs rung_obs("migrate", out);
  const u32 n = current.host_dim();
  const u64 nodes = current.guest().num_nodes();

  std::vector<CubeNode> node_map(nodes);
  std::unordered_set<CubeNode> used;
  std::vector<MeshIndex> displaced;
  for (MeshIndex i = 0; i < nodes; ++i) {
    node_map[i] = current.map(i);
    used.insert(node_map[i]);
    if (faults.node_failed(node_map[i])) displaced.push_back(i);
  }
  if (displaced.empty()) return out;  // nothing to migrate: a link fault

  // Spare search, deterministic: radius ascending; within a radius,
  // spares in the same factor subcube (identical outer bits — the repair
  // stays inside one inner-factor copy of the product) before foreign
  // ones; ties by address. Greedy in guest-node order.
  const CubeNode outer_mask =
      factor_inner_dim >= n ? 0 : ~((u64{1} << factor_inner_dim) - 1);
  for (MeshIndex i : displaced) {
    const CubeNode old = node_map[i];
    CubeNode spare = old;
    bool found = false;
    for (u32 r = 1; r <= opts_.max_migration_radius && !found; ++r) {
      const std::vector<CubeNode> ring = candidates_at_radius(old, n, r);
      for (int same_factor = 1; same_factor >= 0 && !found; --same_factor) {
        for (const CubeNode cand : ring) {
          const bool same = (cand & outer_mask) == (old & outer_mask);
          if (same != (same_factor == 1)) continue;
          if (faults.node_failed(cand) || used.count(cand)) continue;
          spare = cand;
          found = true;
          break;
        }
      }
    }
    if (!found) return out;  // no healthy spare in radius: escalate
    used.insert(spare);
    node_map[i] = spare;
    out.migration_cost += hamming(old, spare);
    ++out.moved_nodes;
  }

  auto repaired = std::make_shared<ExplicitEmbedding>(
      current.guest(), n, std::move(node_map));
  route_minimize_congestion(*repaired);
  const DetourStats detour =
      route_around_faults(*repaired, faults, opts_.detour_budget);
  RepairResult gave_up;
  gave_up.rung = Rung::Migrate;
  if (!detour.ok) return gave_up;
  VerifyReport rep = verify(*repaired, faults);
  if (!rep.valid || !rep.fault_free || rep.dilation > dilation_budget)
    return gave_up;
  out.ok = true;
  out.embedding = std::move(repaired);
  out.report = std::move(rep);
  char buf[96];
  std::snprintf(buf, sizeof buf, "migrate(%llu nodes, cost %llu)",
                static_cast<unsigned long long>(out.moved_nodes),
                static_cast<unsigned long long>(out.migration_cost));
  out.desc = buf;
  return out;
}

RepairResult RecoveryController::try_replan(const Embedding& current,
                                           const FaultSet& faults) {
  RepairResult out;
  out.rung = Rung::Replan;
  HJ_SPAN("recovery.replan");
  const RungObs rung_obs("replan", out);
  try {
    PlanResult plan = planner_.plan_avoiding(shape_, faults);
    out.moved_nodes = count_moves(current, *plan.embedding,
                                  out.migration_cost);
    out.ok = true;
    out.embedding = std::move(plan.embedding);
    out.report = std::move(plan.report);
    out.desc = "replan(" + plan.plan + ")";
  } catch (const std::invalid_argument&) {
    // Every planner rung failed (e.g. no healthy subcube and no degrade
    // provider): the machine is beyond this controller's repair.
  }
  return out;
}

RepairResult RecoveryController::repair(const Embedding& current,
                                        const FaultSet& faults,
                                        u32 baseline_dilation,
                                        u32 factor_inner_dim) {
  require(current.guest().shape() == shape_,
          "RecoveryController::repair: embedding guest %s does not match "
          "the controller shape %s",
          current.guest().shape().to_string().c_str(),
          shape_.to_string().c_str());
  const u32 dilation_budget =
      baseline_dilation + opts_.max_dilation_increase;
  HJ_SPAN("recovery.repair");

  // Backoff budget: the attempt's charge doubles with every consecutive
  // failure, so hopeless repair sequences price themselves out instead
  // of thrashing to the caller's epoch cap.
  if (opts_.budget_per_epoch > 0) {
    const u32 charge = u32{1} << std::min(consecutive_failures_, 5u);
    if (charge > budget_) {
      RepairResult out;
      char buf[96];
      std::snprintf(buf, sizeof buf,
                    "repair budget exhausted (charge %u > remaining %u "
                    "after %u consecutive failures)",
                    charge, budget_, consecutive_failures_);
      out.desc = buf;
      out.budget_exhausted = true;
      if (obs::enabled())
        obs::Registry::global().counter("recovery.budget_exhausted").add();
      return out;
    }
    budget_ -= charge;
    if (obs::enabled())
      obs::Registry::global().counter("recovery.budget_charged").add(charge);
  }

  // Which rung the ladder ultimately handed back (certified outcomes
  // only); distinct from <rung>.certified, which also counts the losing
  // candidate when migrate and replan both succeed. finish() also
  // settles the backoff and per-rung retry state.
  auto finish = [&](RepairResult r) {
    if (r.ok) {
      consecutive_failures_ = 0;
      rung_failures_[0] = rung_failures_[1] = 0;
      rung_skips_[0] = rung_skips_[1] = 0;
    } else {
      ++consecutive_failures_;
      if (r.witness.empty())
        if (auto w = impossibility_witness(shape_, faults,
                                           current.host_dim()))
          r.witness = *w;
      if (!r.witness.empty() && obs::enabled())
        obs::Registry::global().counter("recovery.witness").add();
    }
    if (obs::enabled()) {
      auto& reg = obs::Registry::global();
      reg.counter("recovery.repairs").add();
      if (r.ok)
        reg.counter(std::string("recovery.chosen.") + rung_name(r.rung))
            .add();
    }
    return r;
  };

  // Pigeonhole pre-check (O(|failed nodes|)): with fewer healthy hosts
  // than guest nodes, no one-to-one rung can possibly certify — go
  // straight to replan, whose degrade provider (if any) is the only
  // option left. This is the "know when repair is provably impossible"
  // contract: the ladder is not burned through on a hopeless shape.
  const bool one_to_one_possible =
      shape_.num_nodes() <= healthy_hosts(faults, current.host_dim());

  // Rungs (a)/(b) patch an explicit placement; a many-to-one embedding
  // (load factor > 1) has no such placement to patch — replan directly.
  const bool local_repair_possible =
      !opts_.force_replan && current.one_to_one() && one_to_one_possible;

  if (local_repair_possible) {
    // (a) costs zero migration: if it certifies, nothing can beat it.
    if (rung_enabled(0)) {
      RepairResult a = try_reroute(current, faults, dilation_budget);
      if (a.ok) return finish(std::move(a));
      ++rung_failures_[0];
    }

    RepairResult b;
    if (rung_enabled(1)) {
      b = try_migrate(current, faults, dilation_budget, factor_inner_dim);
      if (!b.ok) ++rung_failures_[1];
    }
    RepairResult c = try_replan(current, faults);
    if (b.ok && (!c.ok || b.migration_cost <= c.migration_cost))
      return finish(std::move(b));
    return finish(std::move(c));
  }
  return finish(try_replan(current, faults));
}

u32 inner_factor_dim(const Embedding& emb) {
  if (const auto* p = dynamic_cast<const MeshProductEmbedding*>(&emb))
    return p->inner().host_dim();
  return 0;
}

std::optional<std::string> impossibility_witness(const Shape& shape,
                                                 const FaultSet& faults,
                                                 u32 host_dim) {
  const u64 guest = shape.num_nodes();
  const u64 healthy = healthy_hosts(faults, host_dim);
  char buf[192];
  if (guest > healthy) {
    std::snprintf(buf, sizeof buf,
                  "pigeonhole: guest %s has %llu nodes but only %llu of "
                  "%llu hosts are healthy — no one-to-one embedding "
                  "exists (load factor >= %llu is forced)",
                  shape.to_string().c_str(),
                  static_cast<unsigned long long>(guest),
                  static_cast<unsigned long long>(healthy),
                  static_cast<unsigned long long>(u64{1} << host_dim),
                  static_cast<unsigned long long>(
                      healthy ? (guest + healthy - 1) / healthy : guest));
    return std::string(buf);
  }
  // Isolation witness: a mesh is connected, and every certified edge
  // path stays on healthy hardware, so all guest images must share one
  // healthy connected component. BFS the healthy subgraph; bounded to
  // cubes small enough that the sweep stays trivial next to a replan.
  if (host_dim > 16 || faults.empty()) return std::nullopt;
  const u64 total = u64{1} << host_dim;
  std::vector<u8> seen(total, 0);
  std::vector<CubeNode> stack;
  u64 largest = 0;
  for (CubeNode start = 0; start < total; ++start) {
    if (seen[start] || faults.node_failed(start)) continue;
    u64 size = 0;
    seen[start] = 1;
    stack.push_back(start);
    while (!stack.empty()) {
      const CubeNode v = stack.back();
      stack.pop_back();
      ++size;
      for (u32 bit = 0; bit < host_dim; ++bit) {
        const CubeNode w = v ^ (u64{1} << bit);
        if (seen[w] || faults.node_failed(w) || faults.link_failed(v, w))
          continue;
        seen[w] = 1;
        stack.push_back(w);
      }
    }
    largest = std::max(largest, size);
    if (largest >= guest) return std::nullopt;  // big enough: no witness
  }
  std::snprintf(buf, sizeof buf,
                "isolation: the largest healthy connected component of "
                "Q%u has %llu nodes < guest %s's %llu — no connected "
                "one-to-one embedding exists",
                host_dim, static_cast<unsigned long long>(largest),
                shape.to_string().c_str(),
                static_cast<unsigned long long>(guest));
  return std::string(buf);
}

}  // namespace hj::recovery
