// hjembed: deterministic chunked parallelism for batch workloads.
//
// The engine is deliberately simple — no work stealing, no persistent
// pool: a range [begin, end) is cut into fixed-size chunks of `grain`
// iterations, workers claim chunks off a shared atomic counter, and
// reductions merge per-chunk accumulators *in chunk order*. Because the
// chunk decomposition and the merge order depend only on (range, grain)
// — never on the worker count or on scheduling — every parallel_for /
// parallel_reduce result is bit-identical to the serial run, including
// floating-point sums. That determinism guarantee is what lets the
// coverage sweep, batch verifier and batch planner run under any
// HJ_THREADS setting and still reproduce the paper's counts exactly.
//
// Thread count resolution: set_thread_override() (the CLI --threads
// flag) > the HJ_THREADS environment variable > hardware concurrency.
// A count of 1 runs inline on the calling thread with no spawning.
#pragma once

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "core/common.hpp"
#include "obs/obs.hpp"

namespace hj::par {

namespace detail {

inline std::atomic<u32>& override_slot() {
  static std::atomic<u32> v{0};
  return v;
}

}  // namespace detail

/// Programmatic thread-count override (e.g. from --threads=N). Zero
/// clears the override and defers to HJ_THREADS / the hardware.
inline void set_thread_override(u32 n) {
  detail::override_slot().store(n, std::memory_order_relaxed);
}

/// Worker threads a parallel call will use. Re-read on every call, so
/// tests may flip HJ_THREADS between invocations.
[[nodiscard]] inline u32 thread_count() {
  if (const u32 o = detail::override_slot().load(std::memory_order_relaxed))
    return o;
  if (const char* env = std::getenv("HJ_THREADS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= 4096)
      return static_cast<u32>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? static_cast<u32>(hw) : 1;
}

namespace detail {

/// Worker loop shared by the plain and observed paths; see run_chunks.
template <class Fn>
void run_chunks_plain(u64 chunks, Fn&& fn) {
  const u64 workers = std::min<u64>(thread_count(), chunks);
  if (workers <= 1) {
    for (u64 c = 0; c < chunks; ++c) fn(c);
    return;
  }
  std::atomic<u64> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mu;
  auto work = [&]() {
    for (;;) {
      const u64 c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks || failed.load(std::memory_order_relaxed)) return;
      try {
        fn(c);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mu);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (u64 t = 1; t < workers; ++t) pool.emplace_back(work);
  work();
  for (std::thread& t : pool) t.join();
  if (error) std::rethrow_exception(error);
}

/// Observed path: times every chunk and records per-chunk wall time plus
/// the invocation's imbalance (max/mean chunk time, x100) into the
/// registry. All par.* metrics are Kind::Timing — chunk decomposition
/// depends on the grain callers derive from thread_count(), and wall
/// time is wall time; nothing here joins the determinism contract.
template <class Fn>
void run_chunks_observed(u64 chunks, Fn&& fn) {
  auto& reg = obs::Registry::global();
  obs::Histogram& chunk_us =
      reg.histogram("par.chunk_us", obs::Kind::Timing);
  std::vector<u64> durations(chunks, 0);
  run_chunks_plain(chunks, [&](u64 c) {
    const u64 t0 = obs::now_us();
    fn(c);
    durations[c] = obs::now_us() - t0;
  });
  u64 total = 0, longest = 0;
  for (u64 d : durations) {
    chunk_us.observe(d);
    total += d;
    longest = std::max(longest, d);
  }
  reg.counter("par.invocations", obs::Kind::Timing).add();
  reg.counter("par.chunks", obs::Kind::Timing).add(chunks);
  // 100 = perfectly balanced; 800 = the slowest chunk ran 8x the mean.
  reg.histogram("par.imbalance_x100", obs::Kind::Timing)
      .observe(total ? longest * chunks * 100 / total : 100);
}

/// Run `fn(chunk_index)` for every chunk in [0, chunks). Workers claim
/// chunk indices from an atomic counter; the first exception is captured
/// and rethrown on the calling thread after all workers join.
template <class Fn>
void run_chunks(u64 chunks, Fn&& fn) {
  if (chunks == 0) return;
  HJ_SPAN_N("par.run_chunks", chunks);
  if (obs::enabled()) {
    run_chunks_observed(chunks, std::forward<Fn>(fn));
    return;
  }
  run_chunks_plain(chunks, std::forward<Fn>(fn));
}

[[nodiscard]] inline u64 chunk_count(u64 begin, u64 end, u64 grain) {
  return (end - begin + grain - 1) / grain;
}

}  // namespace detail

/// Apply `fn(lo, hi)` over disjoint sub-ranges covering [begin, end).
/// Sub-ranges are `grain` iterations (last may be short); `fn` must only
/// write state owned by its sub-range.
template <class Fn>
void parallel_for(u64 begin, u64 end, u64 grain, Fn&& fn) {
  if (end <= begin) return;
  grain = std::max<u64>(grain, 1);
  detail::run_chunks(detail::chunk_count(begin, end, grain), [&](u64 c) {
    const u64 lo = begin + c * grain;
    fn(lo, std::min(end, lo + grain));
  });
}

/// Chunked reduction: each chunk accumulates into its own copy of
/// `identity` via `fn(lo, hi, acc)`, then the per-chunk accumulators are
/// folded left-to-right in chunk order with `merge(into, from)`. The
/// merge order is fixed by the chunk decomposition, so the result is
/// identical for every thread count (floating point included).
template <class T, class Fn, class Merge>
[[nodiscard]] T parallel_reduce(u64 begin, u64 end, u64 grain,
                                const T& identity, Fn&& fn, Merge&& merge) {
  T out = identity;
  if (end <= begin) return out;
  grain = std::max<u64>(grain, 1);
  const u64 chunks = detail::chunk_count(begin, end, grain);
  std::vector<T> acc(chunks, identity);
  detail::run_chunks(chunks, [&](u64 c) {
    const u64 lo = begin + c * grain;
    fn(lo, std::min(end, lo + grain), acc[c]);
  });
  for (u64 c = 0; c < chunks; ++c) merge(out, std::move(acc[c]));
  return out;
}

}  // namespace hj::par
