// hjembed: deterministic self-scheduled parallelism for batch workloads.
//
// A range [begin, end) is cut into fixed-size chunks of `grain`
// iterations. Workers claim chunk indices off an atomic ticket counter
// (self-scheduling: a fast worker simply claims more tickets, which is
// what load-balances the triangular sweep and the mixed-size batches),
// and reductions merge per-chunk accumulators *in chunk order*. The
// determinism contract: the chunk decomposition and the merge order
// depend only on (range, grain) — never on the worker count, the ticket
// claim order, or scheduling — so every parallel_for / parallel_reduce
// result is bit-identical to the serial run, floating-point sums
// included. Which thread computed a chunk can never leak into a result;
// only *where* the chunk's accumulator is merged matters, and that slot
// is fixed by the chunk index.
//
// Unlike the first-generation engine, workers are persistent: a lazily
// grown pool parks on a condition variable between calls, so a parallel
// region costs two mutex handoffs instead of spawning and joining a
// thread per worker per call (which dominated small sweeps). Multiple
// threads may issue parallel regions concurrently — each region is a
// queued job with its own ticket/completion counters, and pool workers
// drain whichever jobs are live. A parallel region issued from inside a
// pool worker (nested parallelism) runs inline on that worker, which
// keeps the pool deadlock-free without a worker-count budget.
//
// Thread count resolution: set_thread_override() (the CLI --threads
// flag) > the HJ_THREADS environment variable > hardware concurrency.
// A count of 1 runs inline on the calling thread with no pool traffic.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "core/common.hpp"
#include "obs/obs.hpp"

namespace hj::par {

namespace detail {

inline std::atomic<u32>& override_slot() {
  static std::atomic<u32> v{0};
  return v;
}

}  // namespace detail

/// Programmatic thread-count override (e.g. from --threads=N). Zero
/// clears the override and defers to HJ_THREADS / the hardware.
inline void set_thread_override(u32 n) {
  detail::override_slot().store(n, std::memory_order_relaxed);
}

/// Worker threads a parallel call will use. Re-read on every call, so
/// tests may flip HJ_THREADS between invocations.
[[nodiscard]] inline u32 thread_count() {
  if (const u32 o = detail::override_slot().load(std::memory_order_relaxed))
    return o;
  if (const char* env = std::getenv("HJ_THREADS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= 4096)
      return static_cast<u32>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? static_cast<u32>(hw) : 1;
}

namespace detail {

/// True on a pool worker thread; nested parallel regions run inline.
inline bool& in_pool_worker() {
  thread_local bool flag = false;
  return flag;
}

/// One parallel region: an atomic ticket dispenser plus completion
/// accounting. Chunk c is claimed by exactly one thread; `done` counts
/// processed (or skipped-after-failure) chunks, and the caller sleeps on
/// `cv` until done == chunks. The first exception is captured and
/// rethrown on the issuing thread; later chunks are skipped, matching
/// the fail-fast contract of the first-generation engine.
struct Job {
  u64 chunks = 0;
  u32 max_workers = 0;  // pool workers allowed to join (caller excluded)
  u32 joined = 0;       // guarded by the pool mutex
  void (*fn)(void*, u64) = nullptr;
  void* ctx = nullptr;
  std::atomic<u64> next{0};
  std::atomic<u64> done{0};
  std::atomic<bool> failed{false};
  std::mutex mu;
  std::condition_variable cv;
  std::exception_ptr error;  // guarded by mu
};

/// Lazily grown persistent worker pool. Workers park on `cv_` and drain
/// queued jobs; the pool never shrinks (parked workers cost a stack and
/// nothing else) and joins everything on static destruction.
class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  /// Run `fn(ctx, c)` for every chunk c in [0, chunks) on up to
  /// `workers` threads including the caller. Blocks until every chunk
  /// completed; rethrows the first chunk exception.
  void run(u64 chunks, u32 workers, void (*fn)(void*, u64), void* ctx) {
    const auto job = std::make_shared<Job>();
    job->chunks = chunks;
    job->max_workers = workers - 1;
    job->fn = fn;
    job->ctx = ctx;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      ensure_workers(workers - 1);
      queue_.push_back(job);
    }
    cv_.notify_all();
    drive(*job);  // the caller is always one of the workers
    {
      std::unique_lock<std::mutex> lock(job->mu);
      job->cv.wait(lock, [&] {
        return job->done.load(std::memory_order_acquire) == job->chunks;
      });
    }
    {
      const std::lock_guard<std::mutex> lock(mu_);
      for (std::size_t i = 0; i < queue_.size(); ++i) {
        if (queue_[i] == job) {
          queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
          break;
        }
      }
    }
    if (job->error) std::rethrow_exception(job->error);
  }

  /// Threads currently parked in or working for the pool (diagnostic).
  [[nodiscard]] u64 size() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return threads_.size();
  }

 private:
  Pool() = default;

  ~Pool() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  // Hard cap on pool threads; HJ_THREADS admits up to 4096, but beyond
  // this the extra workers only add scheduler pressure. Jobs requesting
  // more simply run with every pooled worker plus the caller.
  static constexpr std::size_t kMaxThreads = 256;

  void ensure_workers(u32 want) {
    while (threads_.size() < want && threads_.size() < kMaxThreads)
      threads_.emplace_back([this] { worker_loop(); });
  }

  /// Claim tickets until the job is exhausted. Every claimed chunk
  /// increments `done` exactly once (skipped chunks after a failure
  /// included), so done == chunks is the completion condition.
  static void drive(Job& job) {
    for (;;) {
      const u64 c = job.next.fetch_add(1, std::memory_order_relaxed);
      if (c >= job.chunks) return;
      if (!job.failed.load(std::memory_order_relaxed)) {
        try {
          job.fn(job.ctx, c);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(job.mu);
          if (!job.error) job.error = std::current_exception();
          job.failed.store(true, std::memory_order_relaxed);
        }
      }
      if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          job.chunks) {
        // Taking the job mutex before notifying closes the race with a
        // caller that just checked the predicate and is about to sleep.
        const std::lock_guard<std::mutex> lock(job.mu);
        job.cv.notify_all();
      }
    }
  }

  [[nodiscard]] std::shared_ptr<Job> claimable_job() {
    for (const std::shared_ptr<Job>& job : queue_) {
      if (job->joined < job->max_workers &&
          job->next.load(std::memory_order_relaxed) < job->chunks)
        return job;
    }
    return nullptr;
  }

  void worker_loop() {
    in_pool_worker() = true;
    for (;;) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] { return stop_ || claimable_job() != nullptr; });
        if (stop_) return;
        job = claimable_job();
        if (!job) continue;  // raced away by another worker
        ++job->joined;
      }
      drive(*job);
    }
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::thread> threads_;
  std::vector<std::shared_ptr<Job>> queue_;
  bool stop_ = false;
};

/// Worker loop shared by the plain and observed paths; see run_chunks.
template <class Fn>
void run_chunks_plain(u64 chunks, Fn&& fn) {
  const u64 workers = std::min<u64>(thread_count(), chunks);
  if (workers <= 1 || in_pool_worker()) {
    // Serial, or a nested region on a pool worker: run inline. The
    // results are identical either way — inline execution is just the
    // one-worker schedule of the same chunk decomposition.
    for (u64 c = 0; c < chunks; ++c) fn(c);
    return;
  }
  using F = std::remove_reference_t<Fn>;
  const auto thunk = +[](void* ctx, u64 c) { (*static_cast<F*>(ctx))(c); };
  Pool::instance().run(chunks, static_cast<u32>(workers), thunk, &fn);
}

/// Observed path: times every chunk and records per-chunk wall time plus
/// the invocation's imbalance (max/mean chunk time, x100) into the
/// registry. All par.* metrics are Kind::Timing — chunk decomposition
/// depends on the grain callers derive from thread_count(), and wall
/// time is wall time; nothing here joins the determinism contract.
template <class Fn>
void run_chunks_observed(u64 chunks, Fn&& fn) {
  auto& reg = obs::Registry::global();
  obs::Histogram& chunk_us =
      reg.histogram("par.chunk_us", obs::Kind::Timing);
  std::vector<u64> durations(chunks, 0);
  run_chunks_plain(chunks, [&](u64 c) {
    const u64 t0 = obs::now_us();
    fn(c);
    durations[c] = obs::now_us() - t0;
  });
  u64 total = 0, longest = 0;
  for (u64 d : durations) {
    chunk_us.observe(d);
    total += d;
    longest = std::max(longest, d);
  }
  reg.counter("par.invocations", obs::Kind::Timing).add();
  reg.counter("par.chunks", obs::Kind::Timing).add(chunks);
  reg.histogram("par.pool_threads", obs::Kind::Timing)
      .observe(Pool::instance().size());
  // 100 = perfectly balanced; 800 = the slowest chunk ran 8x the mean.
  reg.histogram("par.imbalance_x100", obs::Kind::Timing)
      .observe(total ? longest * chunks * 100 / total : 100);
}

/// Run `fn(chunk_index)` for every chunk in [0, chunks). Workers claim
/// chunk indices from an atomic ticket; the first exception is captured
/// and rethrown on the calling thread after the region drains.
template <class Fn>
void run_chunks(u64 chunks, Fn&& fn) {
  if (chunks == 0) return;
  HJ_SPAN_N("par.run_chunks", chunks);
  if (obs::enabled()) {
    run_chunks_observed(chunks, std::forward<Fn>(fn));
    return;
  }
  run_chunks_plain(chunks, std::forward<Fn>(fn));
}

[[nodiscard]] inline u64 chunk_count(u64 begin, u64 end, u64 grain) {
  return (end - begin + grain - 1) / grain;
}

}  // namespace detail

/// Apply `fn(lo, hi)` over disjoint sub-ranges covering [begin, end).
/// Sub-ranges are `grain` iterations (last may be short); `fn` must only
/// write state owned by its sub-range.
template <class Fn>
void parallel_for(u64 begin, u64 end, u64 grain, Fn&& fn) {
  if (end <= begin) return;
  grain = std::max<u64>(grain, 1);
  detail::run_chunks(detail::chunk_count(begin, end, grain), [&](u64 c) {
    const u64 lo = begin + c * grain;
    fn(lo, std::min(end, lo + grain));
  });
}

/// Chunked reduction: each chunk accumulates into its own copy of
/// `identity` via `fn(lo, hi, acc)`, then the per-chunk accumulators are
/// folded left-to-right in chunk order with `merge(into, from)`. The
/// merge order is fixed by the chunk decomposition, so the result is
/// identical for every thread count (floating point included).
template <class T, class Fn, class Merge>
[[nodiscard]] T parallel_reduce(u64 begin, u64 end, u64 grain,
                                const T& identity, Fn&& fn, Merge&& merge) {
  T out = identity;
  if (end <= begin) return out;
  grain = std::max<u64>(grain, 1);
  const u64 chunks = detail::chunk_count(begin, end, grain);
  std::vector<T> acc(chunks, identity);
  detail::run_chunks(chunks, [&](u64 c) {
    const u64 lo = begin + c * grain;
    fn(lo, std::min(end, lo + grain), acc[c]);
  });
  for (u64 c = 0; c < chunks; ++c) merge(out, std::move(acc[c]));
  return out;
}

}  // namespace hj::par
