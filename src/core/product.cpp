#include "core/product.hpp"

#include <algorithm>

namespace hj {
namespace {

Mesh product_guest(const Embedding& inner, const Embedding& outer) {
  require(!inner.guest().any_wrap() && !outer.guest().any_wrap(),
          "MeshProductEmbedding: factor guests must not wrap "
          "(the torus module composes wraparound meshes)");
  return Mesh(inner.guest().shape() * outer.guest().shape());
}

}  // namespace

MeshProductEmbedding::MeshProductEmbedding(EmbeddingPtr inner,
                                           EmbeddingPtr outer)
    : Embedding(product_guest(*inner, *outer),
                inner->host_dim() + outer->host_dim()),
      inner_(std::move(inner)),
      outer_(std::move(outer)) {}

MeshProductEmbedding::Split MeshProductEmbedding::split(MeshIndex idx) const {
  const Shape& s = guest().shape();
  const Shape& s1 = inner_->guest().shape();
  const Coord z = s.coord(idx);
  Split out;
  out.x.resize(s.dims());
  out.y.resize(s.dims());
  out.parity.resize(s.dims());
  for (u32 j = 0; j < s.dims(); ++j) {
    const u64 l1 = s1[j];
    const u64 y = z[j] / l1;
    const u64 x = z[j] % l1;
    out.y[j] = y;
    out.parity[j] = y & 1;
    out.x[j] = (y & 1) ? (l1 - 1 - x) : x;  // the reflection x' of Sec. 4.1
  }
  return out;
}

CubeNode MeshProductEmbedding::map(MeshIndex idx) const {
  const Split sp = split(idx);
  const MeshIndex xi = inner_->guest().shape().index(sp.x);
  const MeshIndex yi = outer_->guest().shape().index(sp.y);
  return combine(inner_->map(xi), outer_->map(yi));
}

void MeshProductEmbedding::map_all(std::vector<CubeNode>& out) const {
  const Shape& s = guest().shape();
  const Shape& s1 = inner_->guest().shape();
  const Shape& s2 = outer_->guest().shape();
  const u64 n = s.num_nodes();
  out.resize(n);
  if (n == 0) return;
  // Materialize both factor maps once (recursing through nested products),
  // then walk the product mesh with an odometer that tracks the inner/outer
  // coordinate split incrementally — no per-node division, no Coord
  // allocation, no virtual recursion.
  std::vector<CubeNode> im, om;
  inner_->map_all(im);
  outer_->map_all(om);
  const u32 k = s.dims();
  const u32 inner_dim = inner_->host_dim();
  SmallVec<u64, 8> st1(k, 0), st2(k, 0);
  {
    u64 a = 1, b = 1;
    for (u32 j = k; j-- > 0;) {
      st1[j] = a;
      a *= s1[j];
      st2[j] = b;
      b *= s2[j];
    }
  }
  Coord z(k, 0), x(k, 0), y(k, 0);  // z_j = y_j * l1j + x_j (unreflected x)
  for (u64 idx = 0;;) {
    u64 xi = 0, yi = 0;
    for (u32 j = 0; j < k; ++j) {
      // Reflect the inner coordinate in odd copies (Sec. 4.1).
      xi += ((y[j] & 1) ? s1[j] - 1 - x[j] : x[j]) * st1[j];
      yi += y[j] * st2[j];
    }
    out[idx] = (om[yi] << inner_dim) | im[xi];
    if (++idx == n) break;
    for (u32 j = k; j-- > 0;) {
      if (z[j] + 1 < s[j]) {
        ++z[j];
        if (x[j] + 1 < s1[j]) {
          ++x[j];
        } else {
          x[j] = 0;
          ++y[j];
        }
        break;
      }
      z[j] = 0;
      x[j] = 0;
      y[j] = 0;
    }
  }
}

CubePath MeshProductEmbedding::edge_path(const MeshEdge& e) const {
  const Shape& s = guest().shape();
  const Shape& s1 = inner_->guest().shape();
  const Shape& s2 = outer_->guest().shape();
  const u32 j = e.axis;
  require(!e.wrap, "MeshProductEmbedding guests have no wrap edges");

  // Normalize to the low-coordinate endpoint; reverse at the end if the
  // caller's edge ran high-to-low.
  const Coord ca = s.coord(e.a);
  const Coord cb = s.coord(e.b);
  const bool reversed = cb[j] < ca[j];
  const MeshIndex low = reversed ? e.b : e.a;
  require((reversed ? ca[j] - cb[j] : cb[j] - ca[j]) == 1,
          "edge_path: not a mesh edge");

  const Split sp = split(low);
  const u64 l1 = s1[j];
  const u64 x_low = s.coord(low)[j] % l1;

  CubePath path;
  if (x_low + 1 < l1) {
    // M1-type edge: both endpoints live in the same (reflected) inner copy.
    // In reflected coordinates the edge runs x' -> x'+1 when the copy index
    // is even and x' -> x'-1 when odd.
    const bool copy_odd = sp.parity[j] != 0;
    Coord xa = sp.x;
    const u64 lo_x = copy_odd ? xa[j] - 1 : xa[j];
    Coord x_edge = xa;
    x_edge[j] = lo_x;
    const MeshIndex ia = s1.index(x_edge);
    const MeshEdge inner_edge{ia, ia + s1.stride(j), j, false};
    CubePath inner_path = inner_->edge_path(inner_edge);
    if (copy_odd) inner_path.reverse();
    const CubeNode outer_fixed = outer_->map(s2.index(sp.y));
    for (CubeNode w : inner_path) path.push_back(combine(w, outer_fixed));
  } else {
    // M2-type edge: the inner images coincide (reflection!), the outer
    // embedding carries the whole path.
    const MeshIndex ya = s2.index(sp.y);
    const MeshEdge outer_edge{ya, ya + s2.stride(j), j, false};
    const CubePath outer_path = outer_->edge_path(outer_edge);
    const CubeNode inner_fixed = inner_->map(s1.index(sp.x));
    for (CubeNode w : outer_path) path.push_back(combine(inner_fixed, w));
  }
  if (reversed) path.reverse();
  return path;
}

// ---------------------------------------------------------------------------

RelabelEmbedding::RelabelEmbedding(EmbeddingPtr base, Shape target,
                                   SmallVec<u32, 4> axis_of_base)
    : Embedding(Mesh(target), base->host_dim()),
      base_(std::move(base)),
      axis_of_base_(std::move(axis_of_base)) {
  const Shape& sb = base_->guest().shape();
  require(!base_->guest().any_wrap(),
          "RelabelEmbedding: wraparound bases are not supported");
  require(axis_of_base_.size() == sb.dims(),
          "RelabelEmbedding: need one target axis per base axis");
  base_of_axis_.assign(target.dims(), -1);
  for (u32 i = 0; i < sb.dims(); ++i) {
    const u32 t = axis_of_base_[i];
    require(t < target.dims(), "RelabelEmbedding: axis out of range");
    require(base_of_axis_[t] == -1, "RelabelEmbedding: duplicate target axis");
    require(target[t] == sb[i], "RelabelEmbedding: axis length mismatch");
    base_of_axis_[t] = static_cast<i32>(i);
  }
  for (u32 t = 0; t < target.dims(); ++t)
    require(base_of_axis_[t] != -1 || target[t] == 1,
            "RelabelEmbedding: unmapped target axis must have length 1");
}

std::shared_ptr<RelabelEmbedding> RelabelEmbedding::lift(EmbeddingPtr base,
                                                         const Shape& target) {
  const Shape sb = base->guest().shape();
  SmallVec<u32, 4> axis_of_base;
  u32 bi = 0;
  for (u32 t = 0; t < target.dims() && bi < sb.dims(); ++t) {
    if (target[t] == sb[bi]) {
      axis_of_base.push_back(t);
      ++bi;
    } else {
      require(target[t] == 1,
              "RelabelEmbedding::lift: target axes must match base axes in "
              "order, with 1s elsewhere");
    }
  }
  require(bi == sb.dims(), "RelabelEmbedding::lift: base axes left over");
  return std::make_shared<RelabelEmbedding>(std::move(base), target,
                                            std::move(axis_of_base));
}

MeshIndex RelabelEmbedding::to_base(MeshIndex idx) const {
  const Coord c = guest().shape().coord(idx);
  const Shape& sb = base_->guest().shape();
  Coord cb(sb.dims(), 0);
  for (u32 i = 0; i < sb.dims(); ++i) cb[i] = c[axis_of_base_[i]];
  return sb.index(cb);
}

CubeNode RelabelEmbedding::map(MeshIndex idx) const {
  return base_->map(to_base(idx));
}

void RelabelEmbedding::map_all(std::vector<CubeNode>& out) const {
  std::vector<CubeNode> bm;
  base_->map_all(bm);
  const Shape& s = guest().shape();
  const Shape& sb = base_->guest().shape();
  const u64 n = s.num_nodes();
  out.resize(n);
  if (n == 0) return;
  const u32 k = s.dims();
  // Walking target axis j moves the base index by the stride of the base
  // axis it feeds (zero for the inserted length-1 axes, which never step).
  SmallVec<u64, 8> bstride(k, 0);
  for (u32 i = 0; i < sb.dims(); ++i) bstride[axis_of_base_[i]] = sb.stride(i);
  Coord c(k, 0);
  u64 bi = 0;
  for (u64 idx = 0;;) {
    out[idx] = bm[bi];
    if (++idx == n) break;
    for (u32 j = k; j-- > 0;) {
      if (c[j] + 1 < s[j]) {
        ++c[j];
        bi += bstride[j];
        break;
      }
      bi -= c[j] * bstride[j];
      c[j] = 0;
    }
  }
}

CubePath RelabelEmbedding::edge_path(const MeshEdge& e) const {
  const i32 baxis = base_of_axis_[e.axis];
  assert(baxis >= 0);  // length-1 axes have no edges
  return base_->edge_path(
      MeshEdge{to_base(e.a), to_base(e.b), static_cast<u32>(baxis), e.wrap});
}

// ---------------------------------------------------------------------------

SubmeshEmbedding::SubmeshEmbedding(EmbeddingPtr base, Shape guest_shape)
    : Embedding(Mesh(guest_shape), base->host_dim()), base_(std::move(base)) {
  require(!base_->guest().any_wrap(),
          "SubmeshEmbedding: wraparound bases are not supported");
  require(guest_shape.fits_in(base_->guest().shape()),
          "SubmeshEmbedding: guest must fit inside the base guest");
}

MeshIndex SubmeshEmbedding::to_base(MeshIndex idx) const {
  return base_->guest().shape().index(guest().shape().coord(idx));
}

CubeNode SubmeshEmbedding::map(MeshIndex idx) const {
  return base_->map(to_base(idx));
}

void SubmeshEmbedding::map_all(std::vector<CubeNode>& out) const {
  std::vector<CubeNode> bm;
  base_->map_all(bm);
  const Shape& s = guest().shape();
  const Shape& sb = base_->guest().shape();
  const u64 n = s.num_nodes();
  out.resize(n);
  if (n == 0) return;
  const u32 k = s.dims();
  Coord c(k, 0);
  u64 bi = 0;
  for (u64 idx = 0;;) {
    out[idx] = bm[bi];
    if (++idx == n) break;
    for (u32 j = k; j-- > 0;) {
      if (c[j] + 1 < s[j]) {
        ++c[j];
        bi += sb.stride(j);
        break;
      }
      bi -= c[j] * sb.stride(j);
      c[j] = 0;
    }
  }
}

CubePath SubmeshEmbedding::edge_path(const MeshEdge& e) const {
  require(!e.wrap, "SubmeshEmbedding guests have no wrap edges");
  return base_->edge_path(MeshEdge{to_base(e.a), to_base(e.b), e.axis, false});
}

// ---------------------------------------------------------------------------

EmbeddingPtr product_chain(std::vector<EmbeddingPtr> factors) {
  require(!factors.empty(), "product_chain: need at least one factor");
  EmbeddingPtr acc = std::move(factors.front());
  for (std::size_t i = 1; i < factors.size(); ++i)
    acc = std::make_shared<MeshProductEmbedding>(std::move(acc),
                                                 std::move(factors[i]));
  return acc;
}

}  // namespace hj
