#include "core/verify.hpp"

#include <algorithm>
#include <cstdio>
#include <unordered_map>

#include "core/parallel.hpp"

namespace hj {
namespace {

constexpr std::size_t kMaxErrors = 8;

void add_error(VerifyReport& r, std::string msg) {
  r.valid = false;
  if (r.errors.size() < kMaxErrors) r.errors.push_back(std::move(msg));
}

void bump(std::vector<u64>& hist, std::size_t bin) {
  if (hist.size() <= bin) hist.resize(bin + 1, 0);
  ++hist[bin];
}

/// Congestion accumulator: dense array for small cubes, hash map beyond.
class CongestionCounter {
 public:
  explicit CongestionCounter(u32 dim) : dim_(dim) {
    if (dim_ <= kDenseDimLimit && dim_ > 0)
      dense_.assign((u64{1} << dim_) * dim_, 0);
  }

  void add(CubeNode a, CubeNode b) {
    const CubeNode lo = a < b ? a : b;
    const u32 bit = static_cast<u32>(std::countr_zero(a ^ b));
    if (!dense_.empty())
      ++dense_[lo * dim_ + bit];
    else
      ++sparse_[(lo << 6) | bit];
  }

  /// (max congestion, sum over used edges, count of used edges, histogram
  /// over used edges). Unused edges are added to the histogram by the
  /// caller, which knows |E(H)|.
  void collect(u32& max_c, u64& sum, u64& used, std::vector<u64>& hist) const {
    max_c = 0;
    sum = 0;
    used = 0;
    auto account = [&](u64 c) {
      if (c == 0) return;
      max_c = std::max<u32>(max_c, static_cast<u32>(c));
      sum += c;
      ++used;
      bump(hist, static_cast<std::size_t>(c));
    };
    if (!dense_.empty())
      for (u32 c : dense_) account(c);
    else
      for (const auto& [k, c] : sparse_) account(c);
  }

 private:
  static constexpr u32 kDenseDimLimit = 18;
  u32 dim_;
  std::vector<u32> dense_;
  std::unordered_map<u64, u64> sparse_;
};

}  // namespace

namespace {

VerifyReport verify_impl(const Embedding& emb, const FaultSet* faults) {
  VerifyReport r;
  const Mesh& guest = emb.guest();
  const Hypercube host = emb.host();

  r.guest_nodes = guest.num_nodes();
  r.guest_edges = guest.num_edges();
  r.host_dim = emb.host_dim();
  r.expansion = emb.expansion();
  r.minimal_expansion = emb.minimal_expansion();

  // --- Node map: range, injectivity / load factor. ---
  {
    std::unordered_map<CubeNode, u64> load;
    std::vector<u32> dense_load;
    const bool dense = r.host_dim <= 26;
    if (dense) dense_load.assign(u64{1} << r.host_dim, 0);
    u64 max_load = 0;
    for (MeshIndex i = 0; i < r.guest_nodes; ++i) {
      const CubeNode v = emb.map(i);
      if (!host.contains(v)) {
        add_error(r, "node " + std::to_string(i) + " mapped outside the cube");
        continue;
      }
      if (faults && faults->node_failed(v)) {
        // Fault hits are certified separately from structural validity:
        // the embedding may be perfectly well-formed, just not usable on
        // this particular broken machine.
        ++r.faulted_nodes;
        r.fault_free = false;
      }
      const u64 l = dense ? ++dense_load[v] : ++load[v];
      max_load = std::max(max_load, l);
    }
    r.load_factor = max_load;
    if (emb.one_to_one() && max_load > 1)
      add_error(r, "embedding claims one-to-one but load factor is " +
                       std::to_string(max_load));
  }

  // --- Edge paths: validity, dilation, congestion. ---
  CongestionCounter cong(r.host_dim);
  u64 dil_sum = 0;
  u32 dil_max = 0;
  u64 bad_paths = 0;
  guest.for_each_edge([&](const MeshEdge& e) {
    const CubePath p = emb.edge_path(e);
    bool ok = !p.empty() && p.front() == emb.map(e.a) &&
              p.back() == emb.map(e.b);
    for (std::size_t i = 0; ok && i + 1 < p.size(); ++i)
      ok = Hypercube::adjacent(p[i], p[i + 1]) && host.contains(p[i + 1]);
    if (!ok) {
      if (bad_paths++ == 0)
        add_error(r, "invalid path for edge (" + std::to_string(e.a) + "," +
                         std::to_string(e.b) + ") on axis " +
                         std::to_string(e.axis));
      return;
    }
    const u32 d = static_cast<u32>(p.size() - 1);
    dil_sum += d;
    dil_max = std::max(dil_max, d);
    bump(r.dilation_histogram, d);
    if (faults && !faults->path_avoids(p)) {
      ++r.faulted_paths;
      r.fault_free = false;
    }
    for (std::size_t i = 0; i + 1 < p.size(); ++i) cong.add(p[i], p[i + 1]);
  });
  if (bad_paths > 1)
    add_error(r, std::to_string(bad_paths) + " invalid edge paths in total");

  r.dilation = dil_max;
  r.avg_dilation =
      r.guest_edges ? static_cast<double>(dil_sum) /
                          static_cast<double>(r.guest_edges)
                    : 0.0;

  u32 cmax = 0;
  u64 csum = 0, cused = 0;
  cong.collect(cmax, csum, cused, r.congestion_histogram);
  r.congestion = cmax;
  const u64 host_edges = host.num_edges();
  if (!r.congestion_histogram.empty())
    r.congestion_histogram[0] = host_edges - cused;
  else if (host_edges > 0)
    r.congestion_histogram.assign(1, host_edges);
  r.avg_congestion =
      host_edges ? static_cast<double>(csum) / static_cast<double>(host_edges)
                 : 0.0;

  return r;
}

}  // namespace

VerifyReport verify(const Embedding& emb) { return verify_impl(emb, nullptr); }

VerifyReport verify(const Embedding& emb, const FaultSet& faults) {
  return verify_impl(emb, &faults);
}

namespace {

std::vector<VerifyReport> verify_batch_impl(
    const std::vector<EmbeddingPtr>& embs, const FaultSet* faults) {
  for (std::size_t i = 0; i < embs.size(); ++i)
    require(embs[i] != nullptr, "verify_batch: null embedding at index %zu",
            i);
  std::vector<VerifyReport> reports(embs.size());
  // Each slot is owned by exactly one chunk; verify_impl only reads the
  // (immutable) embedding, so no further synchronization is needed.
  par::parallel_for(0, embs.size(), /*grain=*/1, [&](u64 lo, u64 hi) {
    for (u64 i = lo; i < hi; ++i) reports[i] = verify_impl(*embs[i], faults);
  });
  return reports;
}

}  // namespace

std::vector<VerifyReport> verify_batch(const std::vector<EmbeddingPtr>& embs) {
  return verify_batch_impl(embs, nullptr);
}

std::vector<VerifyReport> verify_batch(const std::vector<EmbeddingPtr>& embs,
                                       const FaultSet& faults) {
  return verify_batch_impl(embs, &faults);
}

bool verify_certified(const Embedding& emb, u32 max_dil, VerifyReport* out) {
  VerifyReport r = verify(emb);
  const bool ok = r.valid && r.dilation <= max_dil && r.minimal_expansion;
  if (out) *out = std::move(r);
  return ok;
}

std::string summary(const VerifyReport& r, const Embedding& emb) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "%s -> Q%u: exp %.3f%s, dil %u (avg %.3f), cong %u (avg "
                "%.3f), load %llu%s",
                emb.guest().shape().to_string().c_str(), r.host_dim,
                r.expansion, r.minimal_expansion ? " (minimal)" : "",
                r.dilation, r.avg_dilation, r.congestion, r.avg_congestion,
                static_cast<unsigned long long>(r.load_factor),
                r.valid ? "" : "  [INVALID]");
  std::string out(buf);
  if (!r.fault_free) out += "  [FAULTED]";
  return out;
}

std::string detailed_summary(const VerifyReport& r, const Embedding& emb) {
  std::string out = summary(r, emb);
  out += "\n  dilation histogram:   ";
  for (std::size_t d = 0; d < r.dilation_histogram.size(); ++d) {
    out += 'd';
    out += std::to_string(d);
    out += ':';
    out += std::to_string(r.dilation_histogram[d]);
    out += ' ';
  }
  out += "\n  congestion histogram: ";
  for (std::size_t c = 0; c < r.congestion_histogram.size(); ++c) {
    out += 'c';
    out += std::to_string(c);
    out += ':';
    out += std::to_string(r.congestion_histogram[c]);
    out += ' ';
  }
  out += '\n';
  return out;
}

std::vector<i64> inverse_placement(const Embedding& emb) {
  std::vector<i64> inv(u64{1} << emb.host_dim(), -1);
  for (MeshIndex i = 0; i < emb.guest().num_nodes(); ++i)
    inv[emb.map(i)] = static_cast<i64>(i);
  return inv;
}

}  // namespace hj
