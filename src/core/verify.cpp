#include "core/verify.hpp"

#include <algorithm>
#include <cstdio>
#include <unordered_map>

#include "core/bitword.hpp"
#include "core/parallel.hpp"

namespace hj {
namespace {

constexpr std::size_t kMaxErrors = 8;

void add_error(VerifyReport& r, std::string msg) {
  r.valid = false;
  if (r.errors.size() < kMaxErrors) r.errors.push_back(std::move(msg));
}

void bump(std::vector<u64>& hist, std::size_t bin) {
  if (hist.size() <= bin) hist.resize(bin + 1, 0);
  ++hist[bin];
}

/// Per-thread scratch arena. verify() used to allocate (and zero) a node
/// map, a 2^n load array and a 2^n*n congestion array per call; under the
/// persistent pool each worker now keeps these buffers across calls and
/// clears only the entries it actually dirtied, so a batch of thousands
/// of verifies does thousands of memsets' less work. Buffers only grow.
struct VerifyScratch {
  std::vector<CubeNode> node_map;  // fully overwritten by map_all
  std::vector<u32> dense_load;     // all-zero between calls
  std::vector<u32> dense_cong;     // all-zero between calls
  std::vector<u64> cong_dirty;     // first-touch keys into dense_cong
};

VerifyScratch& scratch() {
  thread_local VerifyScratch s;
  return s;
}

/// Congestion accumulator: dense array for small cubes, hash map beyond.
/// The dense array lives in the scratch arena with a first-touch dirty
/// list, so both collection and the end-of-call cleanup cost O(edges
/// used), not O(2^n * n). Collection visits used edges in first-touch
/// order — deterministic (the edge scan is serial) and irrelevant to the
/// outputs, which are all commutative aggregates.
class CongestionCounter {
 public:
  CongestionCounter(u32 dim, VerifyScratch& s) : dim_(dim), s_(s) {
    if (dim_ <= kDenseDimLimit && dim_ > 0) {
      dense_ = true;
      const u64 want = (u64{1} << dim_) * dim_;
      if (s_.dense_cong.size() < want) s_.dense_cong.resize(want, 0);
    }
    s_.cong_dirty.clear();
  }

  ~CongestionCounter() {
    if (dense_)
      for (u64 k : s_.cong_dirty) s_.dense_cong[k] = 0;
  }

  void add(CubeNode a, CubeNode b) {
    const CubeNode lo = a < b ? a : b;
    const u32 bit = static_cast<u32>(std::countr_zero(a ^ b));
    if (dense_) {
      const u64 k = lo * dim_ + bit;
      if (s_.dense_cong[k]++ == 0) s_.cong_dirty.push_back(k);
    } else {
      ++sparse_[(lo << 6) | bit];
    }
  }

  /// (max congestion, sum over used edges, count of used edges, histogram
  /// over used edges). Unused edges are added to the histogram by the
  /// caller, which knows |E(H)|.
  void collect(u32& max_c, u64& sum, u64& used, std::vector<u64>& hist) const {
    max_c = 0;
    sum = 0;
    used = 0;
    auto account = [&](u64 c) {
      if (c == 0) return;
      max_c = std::max<u32>(max_c, static_cast<u32>(c));
      sum += c;
      ++used;
      bump(hist, static_cast<std::size_t>(c));
    };
    if (dense_)
      for (u64 k : s_.cong_dirty) account(s_.dense_cong[k]);
    else
      for (const auto& [k, c] : sparse_) account(c);
  }

 private:
  static constexpr u32 kDenseDimLimit = 18;
  u32 dim_;
  VerifyScratch& s_;
  bool dense_ = false;
  std::unordered_map<u64, u64> sparse_;
};

}  // namespace

namespace {

VerifyReport verify_impl(const Embedding& emb, const FaultSet* faults) {
  VerifyReport r;
  const Mesh& guest = emb.guest();
  const Hypercube host = emb.host();

  r.guest_nodes = guest.num_nodes();
  r.guest_edges = guest.num_edges();
  r.host_dim = emb.host_dim();
  r.expansion = emb.expansion();
  r.minimal_expansion = emb.minimal_expansion();

  VerifyScratch& s = scratch();
  std::vector<CubeNode>& nm = s.node_map;
  emb.map_all(nm);

  // --- Node map: range, injectivity / load factor. ---
  {
    std::unordered_map<CubeNode, u64> load;
    const bool dense = r.host_dim <= 26;
    if (dense && s.dense_load.size() < (u64{1} << r.host_dim))
      s.dense_load.resize(u64{1} << r.host_dim, 0);
    u64 max_load = 0;
    for (MeshIndex i = 0; i < r.guest_nodes; ++i) {
      const CubeNode v = nm[i];
      if (!host.contains(v)) {
        add_error(r, "node " + std::to_string(i) + " mapped outside the cube");
        continue;
      }
      if (faults && faults->node_failed(v)) {
        // Fault hits are certified separately from structural validity:
        // the embedding may be perfectly well-formed, just not usable on
        // this particular broken machine.
        ++r.faulted_nodes;
        r.fault_free = false;
      }
      const u64 l = dense ? ++s.dense_load[v] : ++load[v];
      max_load = std::max(max_load, l);
    }
    r.load_factor = max_load;
    if (emb.one_to_one() && max_load > 1)
      add_error(r, "embedding claims one-to-one but load factor is " +
                       std::to_string(max_load));
    // Scrub exactly the entries this call touched; the arena must read
    // all-zero for the next verify on this thread.
    if (dense)
      for (MeshIndex i = 0; i < r.guest_nodes; ++i)
        if (host.contains(nm[i])) s.dense_load[nm[i]] = 0;
  }

  // --- Edge paths: validity, dilation, congestion. ---
  CongestionCounter cong(r.host_dim, s);
  u64 dil_sum = 0;
  u32 dil_max = 0;
  u64 bad_paths = 0;
  // Generic per-edge accounting: materializes the assigned path and checks
  // it hop by hop. The unit-path scan below is an exact shortcut of this.
  const auto generic = [&](const MeshEdge& e) {
    const CubePath p = emb.edge_path(e);
    bool ok = !p.empty() && p.front() == nm[e.a] && p.back() == nm[e.b];
    for (std::size_t i = 0; ok && i + 1 < p.size(); ++i)
      ok = Hypercube::adjacent(p[i], p[i + 1]) && host.contains(p[i + 1]);
    if (!ok) {
      if (bad_paths++ == 0)
        add_error(r, "invalid path for edge (" + std::to_string(e.a) + "," +
                         std::to_string(e.b) + ") on axis " +
                         std::to_string(e.axis));
      return;
    }
    const u32 d = static_cast<u32>(p.size() - 1);
    dil_sum += d;
    dil_max = std::max(dil_max, d);
    bump(r.dilation_histogram, d);
    if (faults && !faults->path_avoids(p)) {
      ++r.faulted_paths;
      r.fault_free = false;
    }
    for (std::size_t i = 0; i + 1 < p.size(); ++i) cong.add(p[i], p[i + 1]);
  };
  if (emb.unit_paths()) {
    // Unit contract: edge_path(e) == [map(e.a), map(e.b)] for every edge,
    // so the path needs no materializing — its validity, dilation, fault
    // exposure and congestion follow from the two endpoint images. Any
    // edge that breaks the contract (endpoint images neither equal nor
    // adjacent) falls back to the generic scan, which keeps the report
    // bit-identical to the non-shortcut verifier even then.
    guest.for_each_edge([&](const MeshEdge& e) {
      const CubeNode va = nm[e.a], vb = nm[e.b];
      if (va == vb) {
        // Degenerate single-node path [va]: valid, dilation 0, no hops.
        bump(r.dilation_histogram, 0);
        if (faults) {
          CubePath p;
          p.push_back(va);
          if (!faults->path_avoids(p)) {
            ++r.faulted_paths;
            r.fault_free = false;
          }
        }
        return;
      }
      const u64 x = va ^ vb;
      if ((x & (x - 1)) == 0 && host.contains(vb)) {
        // One hop va-vb. Note the generic scan only range-checks p[i+1],
        // never p[0]; mirror that exactly.
        dil_sum += 1;
        dil_max = std::max<u32>(dil_max, 1);
        bump(r.dilation_histogram, 1);
        if (faults) {
          CubePath p;
          p.push_back(va);
          p.push_back(vb);
          if (!faults->path_avoids(p)) {
            ++r.faulted_paths;
            r.fault_free = false;
          }
        }
        cong.add(va, vb);
        return;
      }
      generic(e);
    });
  } else {
    guest.for_each_edge(generic);
  }
  if (bad_paths > 1)
    add_error(r, std::to_string(bad_paths) + " invalid edge paths in total");

  r.dilation = dil_max;
  r.avg_dilation =
      r.guest_edges ? static_cast<double>(dil_sum) /
                          static_cast<double>(r.guest_edges)
                    : 0.0;

  u32 cmax = 0;
  u64 csum = 0, cused = 0;
  cong.collect(cmax, csum, cused, r.congestion_histogram);
  r.congestion = cmax;
  // The double-counting identity: total path length == total link load.
  // Both sides count hops — a hop is one unit of wirelength on the path
  // side and one unit of load on the link it occupies.
  r.wirelength = dil_sum;
  assert(csum == dil_sum);
  static_cast<void>(csum);
  const u64 host_edges = host.num_edges();
  if (!r.congestion_histogram.empty())
    r.congestion_histogram[0] = host_edges - cused;
  else if (host_edges > 0)
    r.congestion_histogram.assign(1, host_edges);
  r.avg_congestion =
      host_edges ? static_cast<double>(csum) / static_cast<double>(host_edges)
                 : 0.0;

  r.bounds = cost::lower_bounds(guest, r.host_dim, emb.one_to_one());
  return r;
}

}  // namespace

VerifyReport verify(const Embedding& emb) { return verify_impl(emb, nullptr); }

VerifyReport verify(const Embedding& emb, const FaultSet& faults) {
  return verify_impl(emb, &faults);
}

namespace {

std::vector<VerifyReport> verify_batch_impl(
    const std::vector<EmbeddingPtr>& embs, const FaultSet* faults) {
  for (std::size_t i = 0; i < embs.size(); ++i)
    require(embs[i] != nullptr, "verify_batch: null embedding at index %zu",
            i);
  std::vector<VerifyReport> reports(embs.size());
  // Each slot is owned by exactly one chunk; verify_impl only reads the
  // (immutable) embedding, so no further synchronization is needed.
  par::parallel_for(0, embs.size(), /*grain=*/1, [&](u64 lo, u64 hi) {
    for (u64 i = lo; i < hi; ++i) reports[i] = verify_impl(*embs[i], faults);
  });
  return reports;
}

}  // namespace

std::vector<VerifyReport> verify_batch(const std::vector<EmbeddingPtr>& embs) {
  return verify_batch_impl(embs, nullptr);
}

std::vector<VerifyReport> verify_batch(const std::vector<EmbeddingPtr>& embs,
                                       const FaultSet& faults) {
  return verify_batch_impl(embs, &faults);
}

bool verify_certified(const Embedding& emb, u32 max_dil, VerifyReport* out) {
  VerifyReport r = verify(emb);
  const bool ok = r.valid && r.dilation <= max_dil && r.minimal_expansion;
  if (out) *out = std::move(r);
  return ok;
}

std::string summary(const VerifyReport& r, const Embedding& emb) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "%s -> Q%u: exp %.3f%s, dil %u (avg %.3f), cong %u (avg "
                "%.3f), load %llu%s",
                emb.guest().shape().to_string().c_str(), r.host_dim,
                r.expansion, r.minimal_expansion ? " (minimal)" : "",
                r.dilation, r.avg_dilation, r.congestion, r.avg_congestion,
                static_cast<unsigned long long>(r.load_factor),
                r.valid ? "" : "  [INVALID]");
  std::string out(buf);
  if (!r.fault_free) out += "  [FAULTED]";
  return out;
}

std::string gap_summary(const VerifyReport& r) {
  char buf[192];
  std::snprintf(
      buf, sizeof buf,
      "bounds: dil %u/%u (%.2fx), wl %llu/%llu (%.2fx), cong %u/%u (%.2fx)",
      r.dilation, r.bounds.dilation,
      cost::gap(r.dilation, r.bounds.dilation),
      static_cast<unsigned long long>(r.wirelength),
      static_cast<unsigned long long>(r.bounds.wirelength),
      cost::gap(static_cast<double>(r.wirelength),
                static_cast<double>(r.bounds.wirelength)),
      r.congestion, r.bounds.congestion,
      cost::gap(r.congestion, r.bounds.congestion));
  return buf;
}

std::string detailed_summary(const VerifyReport& r, const Embedding& emb) {
  std::string out = summary(r, emb);
  out += "\n  ";
  out += gap_summary(r);
  out += "\n  dilation histogram:   ";
  for (std::size_t d = 0; d < r.dilation_histogram.size(); ++d) {
    out += 'd';
    out += std::to_string(d);
    out += ':';
    out += std::to_string(r.dilation_histogram[d]);
    out += ' ';
  }
  out += "\n  congestion histogram: ";
  for (std::size_t c = 0; c < r.congestion_histogram.size(); ++c) {
    out += 'c';
    out += std::to_string(c);
    out += ':';
    out += std::to_string(r.congestion_histogram[c]);
    out += ' ';
  }
  out += '\n';
  return out;
}

std::vector<i64> inverse_placement(const Embedding& emb) {
  std::vector<i64> inv(u64{1} << emb.host_dim(), -1);
  std::vector<CubeNode> nm;
  emb.map_all(nm);
  for (MeshIndex i = 0; i < nm.size(); ++i)
    inv[nm[i]] = static_cast<i64>(i);
  return inv;
}

}  // namespace hj
