// hjembed: k-dimensional mesh shapes and coordinate/index conversion.
#pragma once

#include <numeric>
#include <string>

#include "core/common.hpp"
#include "core/small_vec.hpp"

namespace hj {

/// A k-dimensional coordinate. Axis i runs over [0, shape[i]).
using Coord = SmallVec<u64, 4>;

/// The extents of a k-dimensional mesh, e.g. Shape{3, 5} is a 3 x 5 mesh.
///
/// Linear indices are row-major with axis 0 slowest: the stride of the last
/// axis is 1. This matches the paper's habit of writing an l1 x l2 x l3 mesh
/// with l3 varying fastest.
class Shape {
 public:
  Shape() = default;

  Shape(std::initializer_list<u64> extents) : ext_(extents) { validate(); }

  explicit Shape(SmallVec<u64, 4> extents) : ext_(std::move(extents)) {
    validate();
  }

  /// Number of axes (k).
  [[nodiscard]] u32 dims() const noexcept {
    return static_cast<u32>(ext_.size());
  }

  /// Extent of axis `i`.
  [[nodiscard]] u64 operator[](u32 i) const noexcept { return ext_[i]; }

  [[nodiscard]] const SmallVec<u64, 4>& extents() const noexcept {
    return ext_;
  }

  /// Total number of nodes (product of extents).
  [[nodiscard]] u64 num_nodes() const noexcept {
    u64 n = 1;
    for (u64 e : ext_) n *= e;
    return n;
  }

  /// Row-major stride of axis `i`.
  [[nodiscard]] u64 stride(u32 i) const noexcept {
    u64 s = 1;
    for (u32 j = i + 1; j < dims(); ++j) s *= ext_[j];
    return s;
  }

  /// Linear index of a coordinate. Throws std::invalid_argument on a rank
  /// mismatch or an out-of-range coordinate (public entry point).
  [[nodiscard]] MeshIndex index(const Coord& c) const {
    require(c.size() == ext_.size(),
            "Shape::index: coordinate rank %zu does not match shape rank %zu",
            c.size(), ext_.size());
    MeshIndex idx = 0;
    for (u32 i = 0; i < dims(); ++i) {
      require(c[i] < ext_[i],
              "Shape::index: coordinate %llu out of range [0, %llu) on axis %u",
              static_cast<unsigned long long>(c[i]),
              static_cast<unsigned long long>(ext_[i]), i);
      idx = idx * ext_[i] + c[i];
    }
    return idx;
  }

  /// Coordinate of a linear index. Throws std::invalid_argument when the
  /// index falls outside the mesh (public entry point).
  [[nodiscard]] Coord coord(MeshIndex idx) const {
    require(idx < num_nodes(),
            "Shape::coord: index %llu out of range [0, %llu)",
            static_cast<unsigned long long>(idx),
            static_cast<unsigned long long>(num_nodes()));
    Coord c(dims(), 0);
    for (u32 i = dims(); i-- > 0;) {
      c[i] = idx % ext_[i];
      idx /= ext_[i];
    }
    return c;
  }

  /// Elementwise product of two shapes of equal rank; the shape of the
  /// Cartesian product mesh in Corollary 2 (l_j = l1j * l2j).
  [[nodiscard]] Shape operator*(const Shape& rhs) const {
    require(dims() == rhs.dims(), "Shape product requires equal rank");
    SmallVec<u64, 4> e;
    for (u32 i = 0; i < dims(); ++i) e.push_back(ext_[i] * rhs.ext_[i]);
    return Shape(std::move(e));
  }

  /// True iff this shape fits inside `outer` axis by axis (submesh relation).
  [[nodiscard]] bool fits_in(const Shape& outer) const noexcept {
    if (dims() != outer.dims()) return false;
    for (u32 i = 0; i < dims(); ++i)
      if (ext_[i] > outer.ext_[i]) return false;
    return true;
  }

  /// Cube dimension needed by a per-axis Gray code: sum of ceil(log2 l_i).
  [[nodiscard]] u32 gray_cube_dim() const noexcept {
    u32 n = 0;
    for (u64 e : ext_) n += log2_ceil(e);
    return n;
  }

  /// Minimal cube dimension for any one-to-one embedding:
  /// ceil(log2(num_nodes)).
  [[nodiscard]] u32 minimal_cube_dim() const noexcept {
    return log2_ceil(num_nodes());
  }

  /// Shape with the given axis lengths sorted ascending (meshes are
  /// isomorphic under axis permutation).
  [[nodiscard]] Shape sorted() const;

  /// Shape with all length-1 axes removed (a 3x1x5 mesh is a 3x5 mesh).
  [[nodiscard]] Shape squeezed() const;

  /// Pad with length-1 axes on the right up to rank k.
  [[nodiscard]] Shape padded_to(u32 k) const;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Shape& a, const Shape& b) noexcept {
    return a.ext_ == b.ext_;
  }

 private:
  void validate() const {
    for (u64 e : ext_) require(e >= 1, "Shape extents must be >= 1");
    require(ext_.size() >= 1, "Shape must have at least one axis");
  }

  SmallVec<u64, 4> ext_;
};

}  // namespace hj
