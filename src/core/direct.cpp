#include "core/direct.hpp"

#include <algorithm>
#include <array>

#include "core/product.hpp"
#include "core/router.hpp"
#include "core/verify.hpp"

namespace hj {
namespace {

#include "core/tables/direct_tables.inc"
#include "core/tables/open_shapes.inc"

struct TableEntry {
  Shape shape;
  u32 cube_dim;
  const CubeNode* data;
  std::size_t size;
};

const std::array<TableEntry, 5>& tables() {
  static const std::array<TableEntry, 5> t = {{
      {Shape{3, 5}, 4, kTable3x5, std::size(kTable3x5)},
      {Shape{7, 9}, 6, kTable7x9, std::size(kTable7x9)},
      {Shape{11, 11}, 7, kTable11x11, std::size(kTable11x11)},
      {Shape{3, 3, 3}, 5, kTable3x3x3, std::size(kTable3x3x3)},
      {Shape{3, 3, 7}, 6, kTable3x3x7, std::size(kTable3x3x7)},
  }};
  return t;
}

/// Base embeddings, built and congestion-routed once.
EmbeddingPtr base_embedding(std::size_t i) {
  static const std::array<EmbeddingPtr, 5> cache = [] {
    std::array<EmbeddingPtr, 5> out;
    for (std::size_t k = 0; k < tables().size(); ++k) {
      const TableEntry& t = tables()[k];
      auto emb = std::make_shared<ExplicitEmbedding>(
          Mesh(t.shape), t.cube_dim,
          std::vector<CubeNode>(t.data, t.data + t.size));
      route_minimize_congestion(*emb);
      out[k] = std::move(emb);
    }
    return out;
  }();
  return cache[i];
}

/// Index of the table matching `shape` up to axis permutation and 1-axes,
/// or npos.
std::size_t match_table(const Shape& shape) {
  const Shape key = shape.squeezed().sorted();
  for (std::size_t i = 0; i < tables().size(); ++i)
    if (tables()[i].shape.sorted() == key) return i;
  return static_cast<std::size_t>(-1);
}

}  // namespace

const std::vector<Shape>& direct_table_shapes() {
  static const std::vector<Shape> shapes = [] {
    std::vector<Shape> out;
    for (const TableEntry& t : tables()) out.push_back(t.shape);
    return out;
  }();
  return shapes;
}

bool has_direct_embedding(const Shape& shape) {
  return match_table(shape) != static_cast<std::size_t>(-1);
}

std::optional<EmbeddingPtr> direct_embedding(const Shape& shape) {
  const std::size_t i = match_table(shape);
  if (i == static_cast<std::size_t>(-1)) return std::nullopt;
  EmbeddingPtr base = base_embedding(i);
  const Shape& sb = base->guest().shape();
  if (shape == sb) return base;

  // Match each base axis to a distinct target axis of the same length.
  SmallVec<u32, 4> axis_of_base;
  std::vector<bool> taken(shape.dims(), false);
  for (u32 b = 0; b < sb.dims(); ++b) {
    bool matched = false;
    for (u32 t = 0; t < shape.dims() && !matched; ++t) {
      if (!taken[t] && shape[t] == sb[b]) {
        taken[t] = true;
        axis_of_base.push_back(t);
        matched = true;
      }
    }
    if (!matched) return std::nullopt;  // unreachable given match_table
  }
  return std::make_shared<RelabelEmbedding>(std::move(base), shape,
                                            std::move(axis_of_base));
}

namespace {

const std::array<TableEntry, 2>& extra_tables() {
  static const std::array<TableEntry, 2> t = {{
      {Shape{15, 17}, 8, kExtra_15_17, std::size(kExtra_15_17)},
      {Shape{5, 5, 5}, 7, kExtra_5_5_5, std::size(kExtra_5_5_5)},
  }};
  return t;
}

}  // namespace

const std::vector<Shape>& extra_table_shapes() {
  static const std::vector<Shape> shapes = [] {
    std::vector<Shape> out;
    for (const TableEntry& t : extra_tables()) out.push_back(t.shape);
    return out;
  }();
  return shapes;
}

std::optional<EmbeddingPtr> extra_embedding(const Shape& shape) {
  const Shape key = shape.squeezed().sorted();
  for (const TableEntry& t : extra_tables()) {
    if (!(t.shape.sorted() == key)) continue;
    auto emb = std::make_shared<ExplicitEmbedding>(
        Mesh(t.shape), t.cube_dim,
        std::vector<CubeNode>(t.data, t.data + t.size));
    route_minimize_congestion(*emb);
    if (shape == t.shape) return EmbeddingPtr(emb);
    SmallVec<u32, 4> axis_of_base;
    std::vector<bool> taken(shape.dims(), false);
    for (u32 b = 0; b < t.shape.dims(); ++b) {
      for (u32 a = 0; a < shape.dims(); ++a) {
        if (!taken[a] && shape[a] == t.shape[b]) {
          taken[a] = true;
          axis_of_base.push_back(a);
          break;
        }
      }
    }
    if (axis_of_base.size() != t.shape.dims()) return std::nullopt;
    return EmbeddingPtr(std::make_shared<RelabelEmbedding>(
        std::move(emb), shape, std::move(axis_of_base)));
  }
  return std::nullopt;
}

}  // namespace hj
