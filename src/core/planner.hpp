// hjembed: the embedding planner — the Section 4.2 strategy, made
// executable.
//
// Given a mesh shape, the planner assembles the best embedding it can
// certify from the library's building blocks:
//
//   1. Gray code when the axis roundings already reach the minimal cube.
//   2. A direct table (3x5, 7x9, 11x11, 3x3x3, 3x3x7, plus any shapes an
//      attached search provider can solve).
//   3. Graph decomposition: factor every axis and combine factor plans
//      with Corollary 2 (this is the paper's contribution).
//   4. Axis extension: embed the mesh as a submesh of a slightly larger,
//      better-factorable mesh (e.g. 3x3x23 inside 3x3x25), including the
//      multi-axis extension to 3*2^a / 7*2^a patterns behind Figure 2's
//      method 3.
//
// All leaves have dilation 1 (Gray) or 2 (tables/search), and products
// and submeshes preserve the maximum, so every plan has dilation <= 2;
// what varies is whether the minimal cube is reached. The returned
// embedding always carries a freshly verified certificate.
#pragma once

#include <array>
#include <functional>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/embedding.hpp"
#include "core/fault.hpp"
#include "core/verify.hpp"

namespace hj {

/// Hook for an external direct-embedding source (the search module): given
/// a mesh and a cube dimension, return a dilation-2 node map or nothing.
/// Kept as a callback so hj_core does not depend on hj_search.
using DirectProvider =
    std::function<std::optional<std::vector<CubeNode>>(const Mesh&, u32)>;

/// A degraded (typically many-to-one) plan produced when no one-to-one
/// fault-avoiding embedding exists.
struct DegradedPlan {
  EmbeddingPtr embedding;
  std::string plan;
};

/// Hook for the last rung of the degradation ladder: embed `shape` into
/// Q_{cube_dim} while avoiding `faults`, accepting load factor > 1
/// (Theorem 4 / Lemma 5 machinery). Kept as a callback so hj_core does not
/// depend on hj_manytoone; see m2o::make_degrade_provider().
using DegradeProvider = std::function<std::optional<DegradedPlan>(
    const Shape&, u32, const FaultSet&)>;

struct PlannerOptions {
  /// Try axis extensions (strategy 3 of Section 4.2).
  bool allow_extension = true;
  /// Guests at most this large are offered to the direct provider.
  u64 provider_max_nodes = 150;
  /// Ranking order for candidate plans. The Lexicographic default is the
  /// historical (cube, dilation) first-wins order and reproduces the
  /// pre-cost-model planner bit-for-bit; any other objective measures
  /// every candidate (verify() per candidate) and re-ranks ties by
  /// wirelength/congestion, with the balanced router racing dimension
  /// orders on search-based node maps.
  cost::Objective objective = cost::Objective::Lexicographic;
};

struct PlanResult {
  EmbeddingPtr embedding;
  /// Certified metrics (verify() is re-run on the final embedding).
  VerifyReport report;
  /// Human-readable derivation, e.g. "(direct 7x9x1 * gray 3x1x5) sub".
  std::string plan;
};

/// A finished sub-plan, as memoized by the planner: the embedding plus
/// the summary the search ranks on. Values are pure functions of the
/// memo key (planning is deterministic), which is what makes sharing
/// them across threads safe for reproducibility: a cache hit returns
/// exactly what recomputation would.
struct PlanCacheEntry {
  EmbeddingPtr emb;
  std::string desc;
  u32 cube = 0;
  u32 dil = 0;
  /// Measured secondary metrics, filled (measured = true) only when the
  /// planner's objective needs them; Lexicographic planning never
  /// measures, so the historical fast path is untouched.
  u32 cong = 0;
  u64 wl = 0;
  bool measured = false;
};

/// Packed memo key: the shape extents plus the extension flag. The memo
/// used to key on `shape.to_string() + flag`, which cost a heap
/// allocation and digit formatting per best() probe — and the
/// factorization odometer probes thousands of times per planned shape.
/// Integer extents hash and compare allocation-free (rank <= 4 stays
/// entirely inline).
struct PlanKey {
  SmallVec<u64, 4> extents;
  bool extend = false;
  /// The planning objective (cost::Objective), part of the key: plans
  /// ranked under different objectives are different values, and the
  /// shared cache must never serve one objective's plan to another.
  u8 objective = 0;

  friend bool operator==(const PlanKey& a, const PlanKey& b) noexcept {
    return a.extend == b.extend && a.objective == b.objective &&
           a.extents == b.extents;
  }
};

struct PlanKeyHash {
  std::size_t operator()(const PlanKey& k) const noexcept {
    // FNV-1a over the extents, seeded with the extension flag and the
    // objective tag.
    u64 h = 14695981039346656037ull ^ static_cast<u64>(k.extend) ^
            (static_cast<u64>(k.objective) << 1);
    for (u64 e : k.extents) {
      h ^= e;
      h *= 1099511628211ull;
    }
    return static_cast<std::size_t>(h);
  }
};

/// Sharded plan memo shared by the worker planners of a batch, so a
/// factor mesh appearing inside many product plans (3x3, 2x2x2, ...) is
/// planned once per batch instead of once per worker. Keys pack the
/// shape extents + extension flag; shard choice hashes the key, so
/// unrelated shapes rarely contend. The read path takes a shared lock —
/// the cache is read-mostly (~2:1 hits at steady state and every hit is
/// a pure read), so readers proceed concurrently and only the first
/// planner of a shape takes a shard's exclusive lock.
///
/// Purity invariant: keys carry no fault information, so ONLY fault-free
/// canonical plans may be stored. Planner::best() is the sole writer;
/// plan_avoiding() and the fault-aware plan_batch overload treat their
/// fault-constrained results as uncacheable (see the audit comment in
/// planner.cpp).
class ShardedPlanCache {
 public:
  [[nodiscard]] std::optional<PlanCacheEntry> get(const PlanKey& key) const;
  void put(const PlanKey& key, const PlanCacheEntry& entry);
  /// Total entries across shards (diagnostic; takes all shard locks).
  [[nodiscard]] u64 size() const;
  void clear();

 private:
  static constexpr u32 kShards = 64;
  [[nodiscard]] static u32 shard_of(const PlanKey& key);

  struct Shard {
    mutable std::shared_mutex mu;
    std::unordered_map<PlanKey, PlanCacheEntry, PlanKeyHash> map;
  };
  std::array<Shard, kShards> shards_;
};

/// Plans embeddings of (non-wrapped) meshes into minimal-or-near-minimal
/// cubes. Not thread-safe; create one per thread. Results are memoized
/// across calls, so reusing one planner amortizes sweeps.
class Planner {
 public:
  explicit Planner(PlannerOptions opts = {});

  /// Attach a search-based direct embedding source.
  void set_direct_provider(DirectProvider provider);

  /// Attach a many-to-one fallback source (m2o::make_degrade_provider());
  /// used by plan_avoiding when no one-to-one remap dodges the faults.
  void set_degrade_provider(DegradeProvider provider);

  /// Attach a cross-planner memo (not owned; must outlive the planner).
  /// Consulted after the local memo, published to after each sub-plan;
  /// used by plan_batch to share factor plans between worker planners.
  void set_shared_cache(ShardedPlanCache* cache);

  /// Best certified embedding of `shape`. Always succeeds (Gray is always
  /// available); inspect result.report for dilation / minimality.
  [[nodiscard]] PlanResult plan(const Shape& shape);

  /// Best certified embedding of `shape` that avoids `faults`, walking the
  /// degradation ladder:
  ///   1. detour — keep the planned node map, reroute affected edge paths
  ///      around failed links (adds <= 2 dilation per detour);
  ///   2. healthy remap — translate/reflect the node map across cube
  ///      dimensions (an XOR automorphism into the healthy sub-cube, which
  ///      expansion slack allows), then detour-route;
  ///   3. many-to-one contraction onto surviving nodes via the attached
  ///      degrade provider (Theorem 4 machinery).
  /// The chosen rung is recorded in PlanResult::plan, and the returned
  /// report is certified fault-free by the extended verify(). Throws
  /// std::invalid_argument when every rung fails (e.g. a fault set with no
  /// healthy sub-cube and no degrade provider attached).
  [[nodiscard]] PlanResult plan_avoiding(const Shape& shape,
                                         const FaultSet& faults);

  /// True iff plan(shape) reaches the minimal cube with dilation <= 2.
  [[nodiscard]] bool achieves_minimal_dil2(const Shape& shape);

 private:
  using Entry = PlanCacheEntry;

  Entry best(const Shape& shape, bool may_extend);
  void consider(Entry& incumbent, Entry candidate) const;
  /// Fill candidate.cong/wl (one verify()) when the objective ranks on
  /// them; a no-op under Lexicographic or when already measured.
  void measure(Entry& e) const;
  /// True when a cube tie is still worth building under the objective
  /// (non-lex objectives can win ties on secondary metrics).
  [[nodiscard]] bool tie_viable() const;
  Entry gray_entry(const Shape& shape) const;
  void try_factorizations(const Shape& shape, Entry& incumbent);
  void try_extensions(const Shape& shape, Entry& incumbent);
  void try_pattern_extension(const Shape& shape, Entry& incumbent);

  PlannerOptions opts_;
  DirectProvider provider_;
  DegradeProvider degrade_provider_;
  ShardedPlanCache* shared_ = nullptr;
  std::unordered_map<PlanKey, Entry, PlanKeyHash> memo_;
};

/// Factory handed to plan_batch instead of a DirectProvider because each
/// worker planner needs its own provider instance (a provider closure is
/// not required to be reentrant). Called once per worker.
using DirectProviderFactory = std::function<DirectProvider()>;

/// Plan a batch of shapes concurrently on the par:: engine (HJ_THREADS /
/// --threads). Inputs are deduplicated by canonical (sorted) shape —
/// meshes are isomorphic under axis permutation — so each canonical
/// class is planned exactly once per batch, then relabeled to the
/// requested axis order (plan string "perm<l1x...>(...)" when the order
/// differs). Worker planners share a ShardedPlanCache, so factor meshes
/// recurring across product plans are planned once. Results are in input
/// order and bit-identical at every thread count.
///
/// `cache`, when given, persists the shared memo across batches (it is
/// not cleared); pass nullptr for a per-call cache.
[[nodiscard]] std::vector<PlanResult> plan_batch(
    const std::vector<Shape>& shapes, const PlannerOptions& opts = {},
    const DirectProviderFactory& provider_factory = nullptr,
    ShardedPlanCache* cache = nullptr);

/// Relabel a finished plan to `target`, which must be an axis permutation
/// of the plan's guest shape. Rebuilds the embedding via RelabelEmbedding,
/// re-verifies it (the relabelled guest has its own edge set, so the
/// certificate is re-derived, never copied) and tags the plan string with
/// "perm<target>(...)". `target` equal to the plan's shape returns the
/// input unchanged. Shared by plan_batch and the plan store's serve path.
[[nodiscard]] PlanResult relabel_plan(const PlanResult& canon,
                                      const Shape& target);

/// Fault-aware batch: `faults[i]` constrains shapes[i] (nullptr or an
/// empty set means unconstrained). Fault-free entries go through the
/// canonical-dedup path above and may be served from / inserted into the
/// shared cache; fault-constrained entries are planned individually via
/// plan_avoiding — they are excluded from canonical dedup (faults live
/// in *host* space, so two axis-permuted shapes cannot share a faulted
/// plan) and their results never touch the cache, which stays pure
/// fault-free. Throws std::invalid_argument (after all workers finish)
/// when some faulted entry has no avoiding plan.
[[nodiscard]] std::vector<PlanResult> plan_batch(
    const std::vector<Shape>& shapes,
    const std::vector<const FaultSet*>& faults,
    const PlannerOptions& opts = {},
    const DirectProviderFactory& provider_factory = nullptr,
    ShardedPlanCache* cache = nullptr);

}  // namespace hj
