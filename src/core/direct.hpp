// hjembed: the paper's direct embeddings (Section 3.3).
//
// Five mesh shapes carry hand-crafted (here: search-generated, see
// tools/gen_tables.cpp) dilation-2, congestion-2, minimal-expansion
// embeddings that no Gray code or reshaping reaches:
//
//     2D: 3x5 -> Q4,  7x9 -> Q6,  11x11 -> Q7        [14]
//     3D: 3x3x3 -> Q5,  3x3x7 -> Q6                  [13]
//
// Together with Gray code and the decomposition engine these seed the
// Section 5 pipeline. The registry accepts any axis order and any number
// of interspersed length-1 axes (a 5x1x3 guest uses the 3x5 table).
#pragma once

#include <optional>
#include <vector>

#include "core/embedding.hpp"

namespace hj {

/// The canonical shapes with built-in tables (sorted axis order).
[[nodiscard]] const std::vector<Shape>& direct_table_shapes();

/// True iff `shape` (up to axis permutation and length-1 axes) has a
/// built-in direct table.
[[nodiscard]] bool has_direct_embedding(const Shape& shape);

/// A dilation-2 congestion-2 minimal-expansion embedding of `shape`, if a
/// direct table covers it (up to axis permutation / length-1 axes).
/// Returned embeddings are cached and shared; they are immutable.
[[nodiscard]] std::optional<EmbeddingPtr> direct_embedding(const Shape& shape);

/// Beyond-paper witnesses found by this library's search engine: shapes
/// the paper lists as open (5x5x5) or does not tabulate (15x17, the next
/// member of the (2^a-1) x (2^a+1) family after 3x5 and 7x9). Kept out of
/// the default planner pipeline so the paper's own coverage stays
/// measurable; see bench/exp_open_shapes.
[[nodiscard]] const std::vector<Shape>& extra_table_shapes();
[[nodiscard]] std::optional<EmbeddingPtr> extra_embedding(const Shape& shape);

}  // namespace hj
