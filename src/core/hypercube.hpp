// hjembed: the host graph — the Boolean cube (hypercube) Q_n.
#pragma once

#include "core/common.hpp"
#include "core/small_vec.hpp"

namespace hj {

/// A path in the cube, stored as the full node sequence (both endpoints
/// included). A path of length d (the paper's dilation-d image of an edge)
/// has d+1 nodes. Dilation <= 3 in every construction of the paper, so four
/// inline slots avoid allocation on the hot path.
using CubePath = SmallVec<CubeNode, 4>;

/// The Boolean cube Q_n: 2^n nodes, with an edge between addresses at
/// Hamming distance one.
class Hypercube {
 public:
  explicit Hypercube(u32 dim) : dim_(dim) {
    require(dim <= 63, "Hypercube dimension must be <= 63");
  }

  [[nodiscard]] u32 dim() const noexcept { return dim_; }
  [[nodiscard]] u64 num_nodes() const noexcept { return u64{1} << dim_; }
  [[nodiscard]] u64 num_edges() const noexcept {
    return dim_ == 0 ? 0 : (u64{dim_} << (dim_ - 1));
  }
  [[nodiscard]] bool contains(CubeNode v) const noexcept {
    return v < num_nodes();
  }
  [[nodiscard]] static bool adjacent(CubeNode a, CubeNode b) noexcept {
    return hamming(a, b) == 1;
  }

  /// Neighbor of `v` across dimension `bit`.
  [[nodiscard]] static CubeNode neighbor(CubeNode v, u32 bit) noexcept {
    return v ^ (u64{1} << bit);
  }

  /// The deterministic dimension-ordered ("e-cube") shortest path from `a`
  /// to `b`: differing bits are fixed from least to most significant. This
  /// is the library's default router when an embedding does not prescribe
  /// the paths itself.
  [[nodiscard]] static CubePath ecube_path(CubeNode a, CubeNode b) {
    CubePath path;
    path.push_back(a);
    CubeNode cur = a;
    u64 diff = a ^ b;
    while (diff != 0) {
      const u64 low = diff & (~diff + 1);  // lowest set bit
      cur ^= low;
      diff ^= low;
      path.push_back(cur);
    }
    return path;
  }

  /// Canonical undirected edge key for congestion accounting: the pair
  /// (min, max) packed as min * 2^n + max would overflow for large n, so we
  /// pack as (min << 6 | bit) where bit identifies the flipped dimension.
  /// Valid for dim <= 57; embeddings in this library are far smaller.
  [[nodiscard]] static u64 edge_key(CubeNode a, CubeNode b) noexcept {
    assert(adjacent(a, b));
    const CubeNode lo = a < b ? a : b;
    const u32 bit = static_cast<u32>(std::countr_zero(a ^ b));
    return (lo << 6) | bit;
  }

 private:
  u32 dim_;
};

}  // namespace hj
