#include "core/router.hpp"

#include <algorithm>
#include <unordered_map>
#include <vector>

namespace hj {
namespace {

struct TwoHopEdge {
  MeshEdge edge;
  CubeNode a, b;     // endpoint images
  CubeNode mid[2];   // the two candidate midpoints
  u32 choice = 0;    // current midpoint index
};

class LinkLoads {
 public:
  void add(CubeNode x, CubeNode y, i32 delta) {
    loads_[Hypercube::edge_key(x, y)] += delta;
  }
  [[nodiscard]] i32 get(CubeNode x, CubeNode y) const {
    auto it = loads_.find(Hypercube::edge_key(x, y));
    return it == loads_.end() ? 0 : it->second;
  }
  [[nodiscard]] u32 max_load() const {
    i32 m = 0;
    for (const auto& [k, v] : loads_) m = std::max(m, v);
    return static_cast<u32>(m);
  }

 private:
  std::unordered_map<u64, i32> loads_;
};

/// Cost of routing through midpoint m given current loads (the midpoint's
/// two links, scored by worst-then-sum so ties break toward balance).
u64 midpoint_cost(const LinkLoads& loads, CubeNode a, CubeNode m, CubeNode b) {
  const u32 l1 = static_cast<u32>(loads.get(a, m));
  const u32 l2 = static_cast<u32>(loads.get(m, b));
  return (u64{std::max(l1, l2)} << 32) | (l1 + l2);
}

}  // namespace

RouteStats route_minimize_congestion(ExplicitEmbedding& emb, u32 max_passes) {
  RouteStats stats;
  LinkLoads loads;
  std::vector<TwoHopEdge> twos;

  emb.guest().for_each_edge([&](const MeshEdge& e) {
    const CubeNode a = emb.map(e.a), b = emb.map(e.b);
    const u32 h = hamming(a, b);
    if (h == 0) return;  // many-to-one collapse: no path
    if (h == 1) {
      loads.add(a, b, 1);
      return;
    }
    if (h == 2) {
      const u64 diff = a ^ b;
      const u64 bit1 = diff & (~diff + 1);
      const u64 bit2 = diff ^ bit1;
      TwoHopEdge t{e, a, b, {a ^ bit1, a ^ bit2}, 0};
      twos.push_back(t);
      return;
    }
    // Longer edges: keep the default e-cube route, but load its links so
    // midpoint choices below see them.
    const CubePath p = Hypercube::ecube_path(a, b);
    for (std::size_t i = 0; i + 1 < p.size(); ++i)
      loads.add(p[i], p[i + 1], 1);
  });

  // Greedy initial assignment, most-constrained (fewest fresh links) first
  // is overkill here; simple order with cost-based choice works well.
  for (TwoHopEdge& t : twos) {
    t.choice = midpoint_cost(loads, t.a, t.mid[0], t.b) <=
                       midpoint_cost(loads, t.a, t.mid[1], t.b)
                   ? 0u
                   : 1u;
    loads.add(t.a, t.mid[t.choice], 1);
    loads.add(t.mid[t.choice], t.b, 1);
  }

  // Local improvement: re-evaluate each choice with the edge removed.
  for (u32 pass = 0; pass < max_passes; ++pass) {
    bool changed = false;
    for (TwoHopEdge& t : twos) {
      loads.add(t.a, t.mid[t.choice], -1);
      loads.add(t.mid[t.choice], t.b, -1);
      const u32 best = midpoint_cost(loads, t.a, t.mid[0], t.b) <=
                               midpoint_cost(loads, t.a, t.mid[1], t.b)
                           ? 0u
                           : 1u;
      if (best != t.choice) {
        t.choice = best;
        changed = true;
        ++stats.rerouted_edges;
      }
      loads.add(t.a, t.mid[t.choice], 1);
      loads.add(t.mid[t.choice], t.b, 1);
    }
    stats.passes_used = pass + 1;
    if (!changed) break;
  }

  for (const TwoHopEdge& t : twos)
    emb.set_edge_path(t.edge, CubePath{t.a, t.mid[t.choice], t.b});

  stats.congestion = loads.max_load();
  return stats;
}

}  // namespace hj
