#include "core/router.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <vector>

namespace hj {
namespace {

struct TwoHopEdge {
  MeshEdge edge;
  CubeNode a, b;     // endpoint images
  CubeNode mid[2];   // the two candidate midpoints
  u32 choice = 0;    // current midpoint index
};

class LinkLoads {
 public:
  void add(CubeNode x, CubeNode y, i32 delta) {
    loads_[Hypercube::edge_key(x, y)] += delta;
  }
  [[nodiscard]] i32 get(CubeNode x, CubeNode y) const {
    auto it = loads_.find(Hypercube::edge_key(x, y));
    return it == loads_.end() ? 0 : it->second;
  }
  [[nodiscard]] u32 max_load() const {
    i32 m = 0;
    for (const auto& [k, v] : loads_) m = std::max(m, v);
    return static_cast<u32>(m);
  }
  /// Sum of squared link loads — the balance score used by
  /// route_balanced (order-independent, so iterating the map is safe).
  [[nodiscard]] u64 sum_squares() const {
    u64 s = 0;
    for (const auto& [k, v] : loads_)
      s += static_cast<u64>(v) * static_cast<u64>(v);
    return s;
  }

 private:
  std::unordered_map<u64, i32> loads_;
};

/// Cost of routing through midpoint m given current loads (the midpoint's
/// two links, scored by worst-then-sum so ties break toward balance).
u64 midpoint_cost(const LinkLoads& loads, CubeNode a, CubeNode m, CubeNode b) {
  const u32 l1 = static_cast<u32>(loads.get(a, m));
  const u32 l2 = static_cast<u32>(loads.get(m, b));
  return (u64{std::max(l1, l2)} << 32) | (l1 + l2);
}

}  // namespace

RouteStats route_minimize_congestion(ExplicitEmbedding& emb, u32 max_passes) {
  RouteStats stats;
  LinkLoads loads;
  std::vector<TwoHopEdge> twos;

  emb.guest().for_each_edge([&](const MeshEdge& e) {
    const CubeNode a = emb.map(e.a), b = emb.map(e.b);
    const u32 h = hamming(a, b);
    if (h == 0) return;  // many-to-one collapse: no path
    if (h == 1) {
      loads.add(a, b, 1);
      return;
    }
    if (h == 2) {
      const u64 diff = a ^ b;
      const u64 bit1 = diff & (~diff + 1);
      const u64 bit2 = diff ^ bit1;
      TwoHopEdge t{e, a, b, {a ^ bit1, a ^ bit2}, 0};
      twos.push_back(t);
      return;
    }
    // Longer edges: keep the default e-cube route, but load its links so
    // midpoint choices below see them.
    const CubePath p = Hypercube::ecube_path(a, b);
    for (std::size_t i = 0; i + 1 < p.size(); ++i)
      loads.add(p[i], p[i + 1], 1);
  });

  // Greedy initial assignment, most-constrained (fewest fresh links) first
  // is overkill here; simple order with cost-based choice works well.
  for (TwoHopEdge& t : twos) {
    t.choice = midpoint_cost(loads, t.a, t.mid[0], t.b) <=
                       midpoint_cost(loads, t.a, t.mid[1], t.b)
                   ? 0u
                   : 1u;
    loads.add(t.a, t.mid[t.choice], 1);
    loads.add(t.mid[t.choice], t.b, 1);
  }

  // Local improvement: re-evaluate each choice with the edge removed.
  for (u32 pass = 0; pass < max_passes; ++pass) {
    bool changed = false;
    for (TwoHopEdge& t : twos) {
      loads.add(t.a, t.mid[t.choice], -1);
      loads.add(t.mid[t.choice], t.b, -1);
      const u32 best = midpoint_cost(loads, t.a, t.mid[0], t.b) <=
                               midpoint_cost(loads, t.a, t.mid[1], t.b)
                           ? 0u
                           : 1u;
      if (best != t.choice) {
        t.choice = best;
        changed = true;
        ++stats.rerouted_edges;
      }
      loads.add(t.a, t.mid[t.choice], 1);
      loads.add(t.mid[t.choice], t.b, 1);
    }
    stats.passes_used = pass + 1;
    if (!changed) break;
  }

  for (const TwoHopEdge& t : twos)
    emb.set_edge_path(t.edge, CubePath{t.a, t.mid[t.choice], t.b});

  stats.congestion = loads.max_load();
  return stats;
}

namespace {

/// splitmix64 finalizer: route_balanced's permutation stream must be a
/// pure function of the candidate index.
u64 mix64(u64 x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Shortest path from a to b fixing the differing bits in increasing
/// priority order (prio[bit] = rank; the identity ranking reproduces
/// Hypercube::ecube_path exactly).
CubePath prio_path(CubeNode a, CubeNode b, const std::vector<u32>& prio) {
  std::vector<u32> bits;
  for (u32 bit = 0; bit < prio.size(); ++bit)
    if ((a ^ b) >> bit & 1) bits.push_back(bit);
  std::sort(bits.begin(), bits.end(),
            [&](u32 x, u32 y) { return prio[x] < prio[y]; });
  CubePath p;
  p.push_back(a);
  CubeNode cur = a;
  for (u32 bit : bits) {
    cur ^= u64{1} << bit;
    p.push_back(cur);
  }
  return p;
}

}  // namespace

RouteStats route_balanced(ExplicitEmbedding& emb, u32 candidates,
                          u32 max_passes) {
  const u32 dim = emb.host_dim();

  struct LongEdge {
    MeshEdge edge;
    CubeNode a, b;
  };
  LinkLoads base;  // forced single-hop loads, shared by every candidate
  std::vector<LongEdge> longs;
  emb.guest().for_each_edge([&](const MeshEdge& e) {
    const CubeNode a = emb.map(e.a), b = emb.map(e.b);
    const u32 h = hamming(a, b);
    if (h == 0) return;  // many-to-one collapse: no path
    if (h == 1) {
      base.add(a, b, 1);
      return;
    }
    longs.push_back({e, a, b});
  });

  RouteStats stats;
  if (longs.empty()) {
    stats.congestion = base.max_load();
    return stats;
  }

  std::vector<CubePath> best_paths;
  u64 best_score = ~u64{0};
  RouteStats best_stats;

  std::vector<u32> prio(dim);
  for (u32 k = 0; k < std::max<u32>(1, candidates); ++k) {
    // Candidate 0 is the identity (the default e-cube bit order); the
    // rest are Fisher-Yates shuffles seeded by the candidate index only.
    std::vector<u32> order(dim);
    for (u32 i = 0; i < dim; ++i) order[i] = i;
    if (k) {
      u64 s = k;
      for (u32 i = dim; i > 1; --i) {
        s = mix64(s);
        std::swap(order[i - 1], order[s % i]);
      }
    }
    for (u32 i = 0; i < dim; ++i) prio[order[i]] = i;

    LinkLoads loads = base;
    std::vector<CubePath> paths(longs.size());
    std::vector<TwoHopEdge> twos;  // improvement targets (index into paths)
    std::vector<std::size_t> two_slot;
    for (std::size_t i = 0; i < longs.size(); ++i) {
      const LongEdge& e = longs[i];
      paths[i] = prio_path(e.a, e.b, prio);
      for (std::size_t j = 0; j + 1 < paths[i].size(); ++j)
        loads.add(paths[i][j], paths[i][j + 1], 1);
      if (paths[i].size() == 3) {
        const u64 diff = e.a ^ e.b;
        const u64 bit1 = diff & (~diff + 1);
        const u64 bit2 = diff ^ bit1;
        TwoHopEdge t{e.edge, e.a, e.b, {e.a ^ bit1, e.a ^ bit2}, 0};
        t.choice = paths[i][1] == t.mid[0] ? 0u : 1u;
        twos.push_back(t);
        two_slot.push_back(i);
      }
    }

    // The same local improvement as route_minimize_congestion, on this
    // candidate's loads.
    RouteStats cand_stats;
    for (u32 pass = 0; pass < max_passes; ++pass) {
      bool changed = false;
      for (TwoHopEdge& t : twos) {
        loads.add(t.a, t.mid[t.choice], -1);
        loads.add(t.mid[t.choice], t.b, -1);
        const u32 best = midpoint_cost(loads, t.a, t.mid[0], t.b) <=
                                 midpoint_cost(loads, t.a, t.mid[1], t.b)
                             ? 0u
                             : 1u;
        if (best != t.choice) {
          t.choice = best;
          changed = true;
          ++cand_stats.rerouted_edges;
        }
        loads.add(t.a, t.mid[t.choice], 1);
        loads.add(t.mid[t.choice], t.b, 1);
      }
      cand_stats.passes_used = pass + 1;
      if (!changed) break;
    }
    for (std::size_t j = 0; j < twos.size(); ++j)
      paths[two_slot[j]] =
          CubePath{twos[j].a, twos[j].mid[twos[j].choice], twos[j].b};

    // Worst link load, then sum of squared loads: strictly-better-only
    // replacement keeps the default order on ties.
    cand_stats.congestion = loads.max_load();
    const u64 score =
        (u64{cand_stats.congestion} << 40) |
        std::min<u64>(loads.sum_squares(), (u64{1} << 40) - 1);
    if (score < best_score) {
      best_score = score;
      best_paths = std::move(paths);
      best_stats = cand_stats;
    }
  }

  for (std::size_t i = 0; i < longs.size(); ++i)
    emb.set_edge_path(longs[i].edge, best_paths[i]);
  return best_stats;
}

namespace {

/// Healthy shortest path from `a` to `b` of length <= `budget`, choosing
/// the least-loaded link at every step; empty path when none exists.
/// Deterministic: BFS layers are explored in neighbor-bit order and ties
/// break toward the smaller node address.
CubePath find_detour(u32 dim, const LinkLoads& loads, const FaultSet& faults,
                     CubeNode a, CubeNode b, u32 budget) {
  // Backward BFS from b over the healthy subgraph, bounded by `budget`.
  std::unordered_map<CubeNode, u32> dist;
  dist.emplace(b, 0);
  std::deque<CubeNode> frontier{b};
  while (!frontier.empty()) {
    const CubeNode v = frontier.front();
    frontier.pop_front();
    const u32 d = dist[v];
    if (v == a || d == budget) continue;
    for (u32 bit = 0; bit < dim; ++bit) {
      const CubeNode w = Hypercube::neighbor(v, bit);
      if (dist.count(w) || faults.node_failed(w) || faults.link_failed(v, w))
        continue;
      dist.emplace(w, d + 1);
      frontier.push_back(w);
    }
  }
  const auto it = dist.find(a);
  if (it == dist.end()) return {};

  // Forward load-greedy walk along strictly decreasing distance-to-b.
  CubePath path;
  path.push_back(a);
  CubeNode cur = a;
  while (cur != b) {
    const u32 d = dist[cur];
    CubeNode best = cur;
    i32 best_load = 0;
    for (u32 bit = 0; bit < dim; ++bit) {
      const CubeNode w = Hypercube::neighbor(cur, bit);
      const auto wd = dist.find(w);
      if (wd == dist.end() || wd->second + 1 != d) continue;
      if (faults.link_failed(cur, w)) continue;
      const i32 l = loads.get(cur, w);
      if (best == cur || l < best_load || (l == best_load && w < best)) {
        best = w;
        best_load = l;
      }
    }
    assert(best != cur);  // BFS reached cur via some healthy downhill link
    path.push_back(best);
    cur = best;
  }
  return path;
}

/// Worst-then-sum cost of laying `path` on top of `loads` (the path's own
/// links are assumed absent from `loads`).
u64 path_cost(const LinkLoads& loads, const CubePath& path) {
  u32 worst = 0;
  u64 sum = 0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const u32 l = static_cast<u32>(loads.get(path[i], path[i + 1])) + 1;
    worst = std::max(worst, l);
    sum += l;
  }
  return (u64{worst} << 32) | std::min<u64>(sum, 0xffffffffu);
}

}  // namespace

DetourStats route_around_faults(ExplicitEmbedding& emb, const FaultSet& faults,
                                u32 max_added_dilation, u32 max_passes) {
  DetourStats stats;
  const u32 dim = emb.host_dim();

  struct Affected {
    MeshEdge edge;
    CubeNode a, b;
    CubePath path;  // current (replacement) path; empty until routed
  };
  LinkLoads loads;
  std::vector<Affected> affected;

  emb.guest().for_each_edge([&](const MeshEdge& e) {
    CubePath p = emb.edge_path(e);
    if (faults.path_avoids(p)) {
      for (std::size_t i = 0; i + 1 < p.size(); ++i)
        loads.add(p[i], p[i + 1], 1);
      return;
    }
    const CubeNode a = emb.map(e.a), b = emb.map(e.b);
    if (faults.node_failed(a) || faults.node_failed(b)) {
      // No route can fix an image sitting on a dead node.
      ++stats.unroutable_edges;
      stats.ok = false;
      return;
    }
    affected.push_back({e, a, b, {}});
  });

  // Shortest-first, load-greedy initial assignment.
  for (Affected& f : affected) {
    const u32 budget = hamming(f.a, f.b) + max_added_dilation;
    f.path = find_detour(dim, loads, faults, f.a, f.b, budget);
    if (f.path.empty()) {
      ++stats.unroutable_edges;
      stats.ok = false;
      continue;
    }
    for (std::size_t i = 0; i + 1 < f.path.size(); ++i)
      loads.add(f.path[i], f.path[i + 1], 1);
  }

  // Local improvement over the detoured edges: re-route each with its own
  // load removed, keep the cheaper of (old path, fresh detour).
  for (u32 pass = 0; pass < max_passes; ++pass) {
    bool changed = false;
    for (Affected& f : affected) {
      if (f.path.empty()) continue;
      for (std::size_t i = 0; i + 1 < f.path.size(); ++i)
        loads.add(f.path[i], f.path[i + 1], -1);
      const u32 budget = hamming(f.a, f.b) + max_added_dilation;
      CubePath fresh = find_detour(dim, loads, faults, f.a, f.b, budget);
      if (!fresh.empty() && path_cost(loads, fresh) < path_cost(loads, f.path)) {
        f.path = std::move(fresh);
        changed = true;
      }
      for (std::size_t i = 0; i + 1 < f.path.size(); ++i)
        loads.add(f.path[i], f.path[i + 1], 1);
    }
    if (!changed) break;
  }

  for (Affected& f : affected) {
    if (f.path.empty()) continue;
    ++stats.detoured_edges;
    stats.max_added_dilation =
        std::max(stats.max_added_dilation,
                 static_cast<u32>(f.path.size() - 1) - hamming(f.a, f.b));
    emb.set_edge_path(f.edge, f.path);
  }
  stats.congestion = loads.max_load();
  return stats;
}

}  // namespace hj
