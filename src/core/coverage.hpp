// hjembed: coverage arithmetic for Section 5 / Figure 2.
//
// The paper's headline statistic counts, over all 3D meshes with
// 1 <= l_i <= 2^n, how many admit a minimal-expansion dilation-<=2
// embedding under a cumulative sequence of methods:
//
//   1. Gray code on all three axes.
//   2. A dilation-2 2D embedding (modified line compression / Chan [4])
//      of one axis pair, Gray on the third.
//   3. The 3x3x3 or 3x3x7 direct embedding times a power-of-two Gray mesh
//      (Corollary 2).
//   4. Split one axis l into l' * l'' >= l and pair l' and l'' with the
//      two other axes, each pair embedded by [4] (Corollary 2 again).
//
// Membership in each method is a pure arithmetic condition on the axis
// lengths (the existence of the 2D embeddings is Chan's theorem); this
// module evaluates those conditions and runs the full 512^3 sweep.
#pragma once

#include <array>
#include <optional>

#include "core/shape.hpp"

namespace hj::coverage {

/// log2 of the relative expansion of Gray code on a k-D mesh:
/// prod ceil2(l_i) / ceil2(prod l_i). Zero means Gray is minimal.
[[nodiscard]] u32 gray_excess_log2(const Shape& s);

/// Method 1: Gray code is minimal.
[[nodiscard]] bool method1_gray(u64 l1, u64 l2, u64 l3);

/// Method 2: some axis pair (a,b) satisfies
/// ceil2(la*lb) * ceil2(lc) == ceil2(l1*l2*l3).
[[nodiscard]] bool method2_pair(u64 l1, u64 l2, u64 l3);

/// Method 3: {l1,l2,l3} is a permutation of {3*2^a, 3*2^b, 3*2^c} or
/// {3*2^a, 3*2^b, 7*2^c}. (These products are automatically minimal.)
[[nodiscard]] bool method3_small3d(u64 l1, u64 l2, u64 l3);

/// Method 4: some axis l_s splits (with extension) as l' * l'' >= l_s with
/// ceil2(l_i * l') * ceil2(l'' * l_j) == ceil2(l1*l2*l3), where i, j are
/// the other two axes. Returns the witness (s, l', l'').
struct SplitWitness {
  u32 split_axis;  // the axis that was decomposed
  u32 axis_lo;     // axis paired with l'
  u32 axis_hi;     // axis paired with l''
  u64 lp, lpp;     // l' and l''
};
[[nodiscard]] std::optional<SplitWitness> method4_split(u64 l1, u64 l2,
                                                        u64 l3);

/// The first (cheapest) method covering the mesh, or 0 if none of the four
/// does. Matches the cumulative S_i sets of Figure 2.
[[nodiscard]] u32 first_method(u64 l1, u64 l2, u64 l3);

/// Counts for the Figure 2 sweep over all l1,l2,l3 in [1, 2^n].
struct SweepCounts {
  u64 total = 0;
  /// by_method[m] = meshes whose first covering method is m (m in 1..4);
  /// by_method[0] = not covered by any method.
  std::array<u64, 5> by_method{};
  /// Cumulative fraction S_i (percent) for i in 1..4.
  [[nodiscard]] double cumulative_percent(u32 i) const;
};

/// Run the Figure 2 sweep for side 2^n (n <= 9 reproduces the paper).
/// Exploits permutation symmetry; chunked across the par:: engine
/// (HJ_THREADS / --threads), with counts bit-identical at every thread
/// count.
[[nodiscard]] SweepCounts sweep_3d(u32 n);

// --- k-dimensional generalization (the paper's Summary conjecture). ---

/// Sufficient condition for a k-D mesh to have a minimal-expansion
/// dilation-<=2 embedding using only the paper's 2-D and 3-D machinery:
/// some partition of the axes into blocks of size <= 3 satisfies
///   * singles embed by Gray (always),
///   * pairs embed by Chan's 2-D theorem (always dilation 2, minimal for
///     the pair),
///   * triples are covered by methods 1-4 (first_method > 0),
/// and the blocks' minimal cubes multiply to the k-D minimal cube
/// (Corollary 1). Cross-block axis splitting is NOT attempted, so this
/// undercounts slightly — a conservative bound on the conjecture.
[[nodiscard]] bool covered_kd(const Shape& shape);

struct KdSweep {
  u64 total = 0;
  u64 covered = 0;
  [[nodiscard]] double percent() const {
    return total ? 100.0 * static_cast<double>(covered) /
                       static_cast<double>(total)
                 : 0.0;
  }
};

/// Fraction of k-D meshes with 1 <= l_i <= 2^n satisfying covered_kd.
/// Supported for 1 <= k <= 6 (partition enumeration is hard-bounded).
[[nodiscard]] KdSweep sweep_kd(u32 k, u32 n);

}  // namespace hj::coverage
