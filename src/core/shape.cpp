#include "core/shape.hpp"

#include <algorithm>

namespace hj {

Shape Shape::sorted() const {
  SmallVec<u64, 4> e = ext_;
  std::sort(e.begin(), e.end());
  return Shape(std::move(e));
}

Shape Shape::squeezed() const {
  SmallVec<u64, 4> e;
  for (u64 x : ext_)
    if (x > 1) e.push_back(x);
  if (e.empty()) e.push_back(1);
  return Shape(std::move(e));
}

Shape Shape::padded_to(u32 k) const {
  require(k >= dims(), "padded_to: target rank below current rank");
  SmallVec<u64, 4> e = ext_;
  while (e.size() < k) e.push_back(1);
  return Shape(std::move(e));
}

std::string Shape::to_string() const {
  std::string s;
  for (u32 i = 0; i < dims(); ++i) {
    if (i) s += "x";
    s += std::to_string(ext_[i]);
  }
  return s;
}

}  // namespace hj
