#include "core/io.hpp"

#include <fstream>
#include <sstream>
#include <unordered_set>

namespace hj::io {
namespace {

bool is_default_route(const Embedding& emb, const MeshEdge& e,
                      const CubePath& path) {
  return path == Hypercube::ecube_path(emb.map(e.a), emb.map(e.b));
}

}  // namespace

void write_text(std::ostream& os, const Embedding& emb) {
  const Mesh& guest = emb.guest();
  const Shape& s = guest.shape();
  os << "hjembed 1\n";
  os << "shape";
  for (u32 i = 0; i < s.dims(); ++i) os << ' ' << s[i];
  os << "\nwrap";
  for (u32 i = 0; i < s.dims(); ++i) os << ' ' << (guest.wraps(i) ? 1 : 0);
  os << "\ncube " << emb.host_dim() << "\n";
  os << "map";
  for (MeshIndex i = 0; i < guest.num_nodes(); ++i) os << ' ' << emb.map(i);
  os << "\n";
  guest.for_each_edge([&](const MeshEdge& e) {
    const CubePath p = emb.edge_path(e);
    if (is_default_route(emb, e, p)) return;
    os << "path " << e.a << ' ' << e.axis << ' ' << (e.wrap ? 1 : 0);
    for (CubeNode v : p) os << ' ' << v;
    os << "\n";
  });
  os << "end\n";
}

std::string to_text(const Embedding& emb) {
  std::ostringstream os;
  write_text(os, emb);
  return os.str();
}

// The parser is line-oriented and tracks line numbers, so a truncated or
// torn document (a common torn-write artifact the plan store must survive)
// is rejected with the exact position: input ending mid-`path` line or
// missing the `end` sentinel throws std::invalid_argument naming the line,
// never silently succeeds with a partial embedding.
std::shared_ptr<ExplicitEmbedding> read_text(std::istream& is) {
  u32 lineno = 0;
  std::string line;

  auto fail = [&](const std::string& what) -> std::shared_ptr<ExplicitEmbedding> {
    throw std::invalid_argument("hjembed io: line " + std::to_string(lineno) +
                                ": " + what);
  };

  // Advance to the next line with content (blank lines are tolerated).
  // Returns false on end of input, leaving `lineno` just past the last
  // line so truncation errors point at the torn position.
  auto next_line = [&]() -> bool {
    while (std::getline(is, line)) {
      ++lineno;
      if (line.find_first_not_of(" \t\r") != std::string::npos) return true;
    }
    ++lineno;
    return false;
  };

  if (!next_line()) return fail("empty input (expected 'hjembed 1' header)");
  {
    std::istringstream ls(line);
    std::string word;
    u32 version = 0;
    if (!(ls >> word >> version) || word != "hjembed" || version != 1)
      return fail("bad header");
  }

  if (!next_line()) return fail("truncated input: expected shape");
  SmallVec<u64, 4> extents;
  {
    std::istringstream ls(line);
    std::string word;
    if (!(ls >> word) || word != "shape") return fail("expected shape");
    u64 v;
    while (ls >> v) extents.push_back(v);
    if (!ls.eof()) return fail("bad shape extent");
  }
  if (extents.empty()) return fail("empty shape");
  // Overflow / resource guard: reject meshes no sane file would hold
  // before allocating the node map (fuzzed headers must throw, not OOM).
  u64 total = 1;
  for (u64 e : extents) {
    if (e == 0) return fail("zero shape extent");
    if (total > (u64{1} << 26) / e) return fail("shape too large");
    total *= e;
  }
  const Shape shape{extents};

  if (!next_line()) return fail("truncated input: expected wrap");
  SmallVec<u8, 4> wrap;
  {
    std::istringstream ls(line);
    std::string word;
    if (!(ls >> word) || word != "wrap") return fail("expected wrap");
    for (u32 i = 0; i < shape.dims(); ++i) {
      u32 w;
      if (!(ls >> w)) return fail("short wrap line");
      wrap.push_back(static_cast<u8>(w != 0));
    }
  }
  const Mesh guest(shape, wrap);

  if (!next_line()) return fail("truncated input: expected cube");
  u32 cube = 0;
  {
    std::istringstream ls(line);
    std::string word;
    if (!(ls >> word >> cube) || word != "cube") return fail("expected cube");
  }

  if (!next_line()) return fail("truncated input: expected map");
  std::vector<CubeNode> map(guest.num_nodes());
  {
    std::istringstream ls(line);
    std::string word;
    if (!(ls >> word) || word != "map") return fail("expected map");
    for (CubeNode& v : map)
      if (!(ls >> v)) return fail("short node map");
  }

  std::shared_ptr<ExplicitEmbedding> emb;
  try {
    emb = std::make_shared<ExplicitEmbedding>(guest, cube, std::move(map));
  } catch (const std::invalid_argument& e) {
    return fail(e.what());
  }

  std::unordered_set<u64> seen_paths;
  while (true) {
    if (!next_line()) return fail("missing end marker");
    std::istringstream ls(line);
    std::string word;
    ls >> word;
    if (word == "end") return emb;
    if (word != "path") return fail("unexpected token '" + word + "'");
    MeshIndex a;
    u32 axis, wrapped;
    if (!(ls >> a >> axis >> wrapped))
      return fail("short path header (input truncated mid-path?)");
    if (a >= guest.num_nodes() || axis >= shape.dims())
      return fail("path header out of range");
    if (!seen_paths.insert(a * shape.dims() + axis).second)
      return fail("duplicate path for node " + std::to_string(a) +
                  " axis " + std::to_string(axis));
    CubePath p;
    {
      CubeNode v;
      while (ls >> v) p.push_back(v);
      if (!ls.eof()) return fail("bad path node");
    }
    // Reconstruct the edge this path belongs to.
    const u64 stride = shape.stride(axis);
    const u64 c = (a / stride) % shape[axis];
    MeshIndex b;
    if (wrapped) {
      if (c != shape[axis] - 1) return fail("wrap path from non-border node");
      b = a - (shape[axis] - 1) * stride;
    } else {
      if (c + 1 >= shape[axis]) return fail("path runs off the mesh");
      b = a + stride;
    }
    try {
      emb->set_edge_path(MeshEdge{a, b, axis, wrapped != 0}, std::move(p));
    } catch (const std::invalid_argument& e) {
      return fail(e.what());
    }
  }
}

std::shared_ptr<ExplicitEmbedding> from_text(const std::string& text) {
  std::istringstream is(text);
  return read_text(is);
}

void save(const Embedding& emb, const std::string& file) {
  std::ofstream os(file);
  require(os.good(), "io::save: cannot open '%s' for writing", file.c_str());
  write_text(os, emb);
  require(os.good(), "io::save: write to '%s' failed", file.c_str());
}

std::shared_ptr<ExplicitEmbedding> load(const std::string& file) {
  std::ifstream is(file);
  require(is.good(), "io::load: cannot open '%s'", file.c_str());
  return read_text(is);
}

}  // namespace hj::io
