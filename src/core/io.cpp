#include "core/io.hpp"

#include <fstream>
#include <sstream>
#include <unordered_set>

namespace hj::io {
namespace {

bool is_default_route(const Embedding& emb, const MeshEdge& e,
                      const CubePath& path) {
  return path == Hypercube::ecube_path(emb.map(e.a), emb.map(e.b));
}

}  // namespace

void write_text(std::ostream& os, const Embedding& emb) {
  const Mesh& guest = emb.guest();
  const Shape& s = guest.shape();
  os << "hjembed 1\n";
  os << "shape";
  for (u32 i = 0; i < s.dims(); ++i) os << ' ' << s[i];
  os << "\nwrap";
  for (u32 i = 0; i < s.dims(); ++i) os << ' ' << (guest.wraps(i) ? 1 : 0);
  os << "\ncube " << emb.host_dim() << "\n";
  os << "map";
  for (MeshIndex i = 0; i < guest.num_nodes(); ++i) os << ' ' << emb.map(i);
  os << "\n";
  guest.for_each_edge([&](const MeshEdge& e) {
    const CubePath p = emb.edge_path(e);
    if (is_default_route(emb, e, p)) return;
    os << "path " << e.a << ' ' << e.axis << ' ' << (e.wrap ? 1 : 0);
    for (CubeNode v : p) os << ' ' << v;
    os << "\n";
  });
  os << "end\n";
}

std::string to_text(const Embedding& emb) {
  std::ostringstream os;
  write_text(os, emb);
  return os.str();
}

std::shared_ptr<ExplicitEmbedding> read_text(std::istream& is) {
  auto fail = [](const std::string& what) -> std::shared_ptr<ExplicitEmbedding> {
    throw std::invalid_argument("hjembed io: " + what);
  };

  std::string word;
  u32 version = 0;
  if (!(is >> word >> version) || word != "hjembed" || version != 1)
    return fail("bad header");

  if (!(is >> word) || word != "shape") return fail("expected shape");
  std::string line;
  std::getline(is, line);
  SmallVec<u64, 4> extents;
  {
    std::istringstream ls(line);
    u64 v;
    while (ls >> v) extents.push_back(v);
  }
  if (extents.empty()) return fail("empty shape");
  // Overflow / resource guard: reject meshes no sane file would hold
  // before allocating the node map (fuzzed headers must throw, not OOM).
  u64 total = 1;
  for (u64 e : extents) {
    if (e == 0) return fail("zero shape extent");
    if (total > (u64{1} << 26) / e) return fail("shape too large");
    total *= e;
  }
  const Shape shape{extents};

  if (!(is >> word) || word != "wrap") return fail("expected wrap");
  SmallVec<u8, 4> wrap;
  for (u32 i = 0; i < shape.dims(); ++i) {
    u32 w;
    if (!(is >> w)) return fail("short wrap line");
    wrap.push_back(static_cast<u8>(w != 0));
  }
  const Mesh guest(shape, wrap);

  u32 cube = 0;
  if (!(is >> word >> cube) || word != "cube") return fail("expected cube");

  if (!(is >> word) || word != "map") return fail("expected map");
  std::vector<CubeNode> map(guest.num_nodes());
  for (CubeNode& v : map)
    if (!(is >> v)) return fail("short node map");

  auto emb = std::make_shared<ExplicitEmbedding>(guest, cube, std::move(map));

  std::unordered_set<u64> seen_paths;
  while (is >> word) {
    if (word == "end") return emb;
    if (word != "path") return fail("unexpected token '" + word + "'");
    MeshIndex a;
    u32 axis, wrapped;
    if (!(is >> a >> axis >> wrapped)) return fail("short path header");
    if (a >= guest.num_nodes() || axis >= shape.dims())
      return fail("path header out of range");
    if (!seen_paths.insert(a * shape.dims() + axis).second)
      return fail("duplicate path for node " + std::to_string(a) +
                  " axis " + std::to_string(axis));
    std::getline(is, line);
    CubePath p;
    {
      std::istringstream ls(line);
      CubeNode v;
      while (ls >> v) p.push_back(v);
    }
    // Reconstruct the edge this path belongs to.
    const u64 stride = shape.stride(axis);
    const u64 c = (a / stride) % shape[axis];
    MeshIndex b;
    if (wrapped) {
      if (c != shape[axis] - 1) return fail("wrap path from non-border node");
      b = a - (shape[axis] - 1) * stride;
    } else {
      if (c + 1 >= shape[axis]) return fail("path runs off the mesh");
      b = a + stride;
    }
    emb->set_edge_path(MeshEdge{a, b, axis, wrapped != 0}, std::move(p));
  }
  return fail("missing end marker");
}

std::shared_ptr<ExplicitEmbedding> from_text(const std::string& text) {
  std::istringstream is(text);
  return read_text(is);
}

void save(const Embedding& emb, const std::string& file) {
  std::ofstream os(file);
  require(os.good(), "io::save: cannot open file");
  write_text(os, emb);
  require(os.good(), "io::save: write failed");
}

std::shared_ptr<ExplicitEmbedding> load(const std::string& file) {
  std::ifstream is(file);
  require(is.good(), "io::load: cannot open file");
  return read_text(is);
}

}  // namespace hj::io
