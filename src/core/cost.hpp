// hjembed: the multi-objective cost model — metric values, computable
// lower bounds, and optimality gaps.
//
// The paper measures embeddings by dilation, congestion, expansion and
// load (Definitions 1-3, 5); the related work makes total wirelength a
// first-class objective and derives computable lower bounds for all of
// them (arXiv 1807.06787 for dilation/wirelength/congestion bounds,
// arXiv 2302.13237 for exact wirelength analyses). This module is the
// shared vocabulary: the verifier attaches Bounds to every certificate,
// the planner ranks candidate plans by an Objective, and the reporting
// layers print gap = value / bound so "which embedding is best" is a
// measured, bounded answer rather than a convention.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "core/mesh.hpp"

namespace hj::cost {

/// Ranking order for candidate plans. Every objective keeps the host cube
/// dimension as the primary key (trading expansion away would make Gray
/// code win every secondary metric for free); the secondary keys decide
/// ties between candidates reaching the same cube.
enum class Objective : u8 {
  /// (cube, dilation) — the historical first-wins order. The default;
  /// reproduces the pre-cost-model planner bit-for-bit.
  Lexicographic = 0,
  /// (cube, dilation, wirelength, congestion).
  DilationFirst,
  /// (cube, wirelength, dilation, congestion).
  WirelengthFirst,
  /// (cube, congestion, dilation, wirelength).
  CongestionFirst,
};

inline constexpr u32 kNumObjectives = 4;

/// Canonical lowercase name ("lexicographic", "dilation", "wirelength",
/// "congestion") — the spelling accepted by --objective= and emitted in
/// bench rows and obs metric names.
[[nodiscard]] const char* objective_name(Objective o) noexcept;

/// Parse an --objective= value; accepts the canonical names plus the
/// aliases "lex" and "default". Returns nullopt on anything else (the
/// CLI turns that into a usage error, exit 2).
[[nodiscard]] std::optional<Objective> parse_objective(std::string_view s);

/// The metrics a candidate plan is ranked on. `wirelength` is the total
/// edge-path length (== sum over cube links of their congestion).
struct CostVector {
  u32 cube = 0;
  u32 dilation = 0;
  u32 congestion = 0;
  u64 wirelength = 0;
};

/// Strict "candidate beats incumbent" under `o`. Lexicographic compares
/// (cube, dilation) only — exactly the historical planner order — so
/// unmeasured (zero) congestion/wirelength fields are never consulted.
[[nodiscard]] bool better(Objective o, const CostVector& candidate,
                          const CostVector& incumbent) noexcept;

/// True when ranking under `o` needs measured congestion/wirelength on
/// every candidate (i.e. any objective other than Lexicographic).
[[nodiscard]] constexpr bool needs_measurement(Objective o) noexcept {
  return o != Objective::Lexicographic;
}

/// Computable lower bounds for embedding a fixed guest into a fixed Q_n.
/// Every field is a floor for *any* embedding of that guest into that
/// cube, so value / bound >= 1 is a certified optimality gap.
struct Bounds {
  /// ceil(log2 |V(G)|) — the minimal cube (Definition 1).
  u32 host_dim = 0;
  /// 0 for an edgeless guest; else 1; raised to 2 when a dilation-1
  /// embedding is impossible in Q_n: the Havel-Moravek bound (Theorem 1,
  /// exhaustively verified in E9) requires sum_i ceil(log2 l_i)
  /// dimensions, and an odd wrapped axis is a non-bipartite cycle that no
  /// subgraph of the (bipartite) cube can carry.
  u32 dilation = 0;
  /// max(1, ceil(wirelength / |E(Q_n)|)) for a guest with edges: the
  /// average-congestion form of the cut bounds in arXiv 1807.06787.
  u32 congestion = 0;
  /// One-to-one embeddings: every guest edge costs >= 1 hop, +1 when
  /// dilation 2 is forced (some edge must take two hops); independently,
  /// summing the n host dimension cuts gives >= n * lambda(G) when the
  /// guest overfills half the cube (each cut then separates the guest
  /// nontrivially and lambda(G) = min degree for meshes/tori). The bound
  /// is the max of the two.
  u64 wirelength = 0;
  /// ceil(|V(G)| / 2^n) (Definition 5; 1 for any one-to-one embedding).
  u64 load = 0;

  friend bool operator==(const Bounds& a, const Bounds& b) noexcept {
    return a.host_dim == b.host_dim && a.dilation == b.dilation &&
           a.congestion == b.congestion && a.wirelength == b.wirelength &&
           a.load == b.load;
  }
};

/// Compute the bounds for embedding `guest` into Q_{host_dim}.
/// `one_to_one` relaxes nothing when true; when false (Section 7
/// many-to-one), the edge-counting bounds are dropped — collapsed edges
/// have zero-length paths — and only the load/host_dim floors remain.
[[nodiscard]] Bounds lower_bounds(const Mesh& guest, u32 host_dim,
                                  bool one_to_one);

/// Optimality gap value / bound. A zero bound (edgeless guest,
/// many-to-one) reports gap 1.0 when the value is also zero-or-better
/// trivially, i.e. the metric is considered optimal by convention.
[[nodiscard]] double gap(double value, double bound) noexcept;

/// Min guest degree: the edge connectivity lambda of a mesh or torus
/// (the cut floor used by the wirelength dimension-cut bound). Exposed
/// for tests.
[[nodiscard]] u32 min_degree(const Mesh& guest) noexcept;

}  // namespace hj::cost
