#include "core/planner.hpp"

#include <algorithm>
#include <cstdio>
#include <mutex>

#include "core/bitword.hpp"
#include "core/coverage.hpp"
#include "core/direct.hpp"
#include "core/parallel.hpp"
#include "core/product.hpp"
#include "core/router.hpp"
#include "obs/obs.hpp"

namespace hj {
namespace {

// Axis lengths in practice have few divisors; 16 inline slots cover every
// length below 2^4 * 3^2 * 5 * 7 without touching the heap.
SmallVec<u64, 16> divisors(u64 n) {
  SmallVec<u64, 16> out;
  for (u64 d = 1; d * d <= n; ++d) {
    if (n % d) continue;
    out.push_back(d);
    if (d != n / d) out.push_back(n / d);
  }
  std::sort(out.begin(), out.end());
  return out;
}

u64 product_of(const Shape& s) { return s.num_nodes(); }

PlanKey key_of(const Shape& shape, bool may_extend, cost::Objective obj) {
  PlanKey k;
  k.extents = shape.extents();
  k.extend = may_extend;
  k.objective = static_cast<u8>(obj);
  return k;
}

cost::CostVector cost_of(const PlanCacheEntry& e) {
  return cost::CostVector{e.cube, e.dil, e.cong, e.wl};
}

}  // namespace

u32 ShardedPlanCache::shard_of(const PlanKey& key) {
  return static_cast<u32>(PlanKeyHash{}(key) % kShards);
}

std::optional<PlanCacheEntry> ShardedPlanCache::get(const PlanKey& key) const {
  std::optional<PlanCacheEntry> hit;
  {
    const Shard& s = shards_[shard_of(key)];
    const std::shared_lock<std::shared_mutex> lock(s.mu);
    if (auto it = s.map.find(key); it != s.map.end()) hit = it->second;
  }
  // Timing-kind: whether a worker hits depends on which worker published
  // the key first, i.e. on scheduling — only the *results* served are
  // deterministic, never the hit counts.
  if (obs::enabled()) {
    auto& reg = obs::Registry::global();
    static obs::Counter& lookups =
        reg.counter("plancache.lookups", obs::Kind::Timing);
    static obs::Counter& hits =
        reg.counter("plancache.hits", obs::Kind::Timing);
    lookups.add();
    if (hit) hits.add();
  }
  return hit;
}

void ShardedPlanCache::put(const PlanKey& key, const PlanCacheEntry& entry) {
  bool inserted;
  {
    Shard& s = shards_[shard_of(key)];
    const std::unique_lock<std::shared_mutex> lock(s.mu);
    // First writer wins; a racing writer computed the same value anyway
    // (planning is deterministic), so dropping the duplicate is safe.
    inserted = s.map.try_emplace(key, entry).second;
  }
  if (obs::enabled()) {
    auto& reg = obs::Registry::global();
    static obs::Counter& puts =
        reg.counter("plancache.puts", obs::Kind::Timing);
    static obs::Counter& inserts =
        reg.counter("plancache.inserts", obs::Kind::Timing);
    puts.add();
    if (inserted) inserts.add();
  }
}

u64 ShardedPlanCache::size() const {
  u64 n = 0;
  for (const Shard& s : shards_) {
    const std::shared_lock<std::shared_mutex> lock(s.mu);
    n += s.map.size();
  }
  return n;
}

void ShardedPlanCache::clear() {
  for (Shard& s : shards_) {
    const std::unique_lock<std::shared_mutex> lock(s.mu);
    s.map.clear();
  }
}

Planner::Planner(PlannerOptions opts) : opts_(opts) {}

void Planner::set_direct_provider(DirectProvider provider) {
  provider_ = std::move(provider);
  memo_.clear();  // cached plans may improve with the provider attached
}

void Planner::set_degrade_provider(DegradeProvider provider) {
  degrade_provider_ = std::move(provider);
}

void Planner::set_shared_cache(ShardedPlanCache* cache) { shared_ = cache; }

void Planner::measure(Entry& e) const {
  if (!cost::needs_measurement(opts_.objective) || !e.emb || e.measured)
    return;
  const VerifyReport r = verify(*e.emb);
  e.dil = r.dilation;
  e.cong = r.congestion;
  e.wl = r.wirelength;
  e.measured = true;
}

bool Planner::tie_viable() const {
  return cost::needs_measurement(opts_.objective);
}

void Planner::consider(Entry& incumbent, Entry candidate) const {
  if (!candidate.emb) return;
  measure(candidate);
  if (!incumbent.emb) {
    incumbent = std::move(candidate);
    return;
  }
  if (!cost::better(opts_.objective, cost_of(candidate), cost_of(incumbent)))
    return;
  // Deterministic-kind: whether the objective's secondary keys overrode
  // the historical order is a pure function of the two entries.
  if (obs::enabled() &&
      !cost::better(cost::Objective::Lexicographic, cost_of(candidate),
                    cost_of(incumbent))) {
    obs::Registry::global()
        .counter(std::string("planner.wins.") +
                 cost::objective_name(opts_.objective))
        .add();
  }
  incumbent = std::move(candidate);
}

Planner::Entry Planner::gray_entry(const Shape& shape) const {
  Entry e;
  e.emb = std::make_shared<GrayEmbedding>(Mesh(shape));
  e.desc = "gray " + shape.to_string();
  e.cube = shape.gray_cube_dim();
  e.dil = shape.num_nodes() > 1 ? 1 : 0;
  return e;
}

Planner::Entry Planner::best(const Shape& shape, bool may_extend) {
  // Timing-kind: how often best() runs (vs being memo-served) depends on
  // which worker planner owned which chunk of the batch.
  if (obs::enabled()) {
    static obs::Counter& calls = obs::Registry::global().counter(
        "planner.best_calls", obs::Kind::Timing);
    calls.add();
  }
  const PlanKey key = key_of(shape, may_extend, opts_.objective);
  if (auto it = memo_.find(key); it != memo_.end()) {
    if (obs::enabled()) {
      static obs::Counter& hits = obs::Registry::global().counter(
          "planner.memo_hits", obs::Kind::Timing);
      hits.add();
    }
    return it->second;
  }
  if (shared_) {
    if (auto hit = shared_->get(key)) {
      memo_[key] = *hit;
      return *hit;
    }
  }
  // Seed the memo with the Gray fallback to cut recursion cycles short.
  Entry incumbent = gray_entry(shape);
  measure(incumbent);
  memo_[key] = incumbent;

  const u32 minimal = shape.minimal_cube_dim();
  if (incumbent.cube > minimal) {
    // Direct table.
    if (auto d = direct_embedding(shape)) {
      Entry e;
      e.emb = *d;
      e.desc = "direct " + shape.to_string();
      e.cube = (*d)->host_dim();
      e.dil = 2;
      consider(incumbent, std::move(e));
    }
    // Search provider.
    if (incumbent.cube > minimal && provider_ &&
        shape.num_nodes() <= opts_.provider_max_nodes) {
      if (auto m = provider_(Mesh(shape), minimal)) {
        auto emb =
            std::make_shared<ExplicitEmbedding>(Mesh(shape), minimal, *m);
        // Non-dilation objectives get the balanced router's seeded
        // dimension-order race; the default keeps the historical paths.
        if (cost::needs_measurement(opts_.objective))
          route_balanced(*emb);
        else
          route_minimize_congestion(*emb);
        Entry e;
        e.emb = std::move(emb);
        e.desc = "search " + shape.to_string();
        e.cube = minimal;
        e.dil = 2;
        consider(incumbent, std::move(e));
      }
    }
    if (incumbent.cube > minimal) try_factorizations(shape, incumbent);
    if (incumbent.cube > minimal && may_extend && opts_.allow_extension) {
      try_pattern_extension(shape, incumbent);
      if (incumbent.cube > minimal) try_extensions(shape, incumbent);
    }
  }

  memo_[key] = incumbent;
  if (shared_) shared_->put(key, incumbent);
  return incumbent;
}

void Planner::try_factorizations(const Shape& shape, Entry& incumbent) {
  const u32 k = shape.dims();
  std::vector<SmallVec<u64, 16>> divs(k);
  for (u32 i = 0; i < k; ++i) divs[i] = divisors(shape[i]);

  // Odometer over per-axis divisor choices for the first factor.
  SmallVec<u32, 4> pick(k, 0);
  for (;;) {
    SmallVec<u64, 4> f1, f2;
    u64 n1 = 1;
    for (u32 i = 0; i < k; ++i) {
      const u64 d = divs[i][pick[i]];
      f1.push_back(d);
      f2.push_back(shape[i] / d);
      n1 *= d;
    }
    const u64 n2 = shape.num_nodes() / n1;
    // Skip trivial splits and canonicalize (the pair is unordered; the
    // lower-dilation factor is placed inner regardless).
    if (n1 > 1 && n2 > 1 && n1 <= n2) {
      Shape s1{f1}, s2{f2};
      // Only useful when the factor cubes can sum to the minimal cube:
      // both factors must be minimally embeddable for the product to be.
      Entry e1 = best(s1, false);
      Entry e2 = best(s2, false);
      Entry e;
      e.cube = e1.cube + e2.cube;
      e.dil = std::max(e1.dil, e2.dil);
      // Under a measuring objective a cube tie can still win on the
      // secondary metrics, so the candidate must be built and measured.
      if (!incumbent.emb || e.cube < incumbent.cube ||
          (e.cube == incumbent.cube &&
           (e.dil < incumbent.dil || tie_viable()))) {
        const Entry& inner = e1.dil <= e2.dil ? e1 : e2;
        const Entry& outer = e1.dil <= e2.dil ? e2 : e1;
        e.emb = std::make_shared<MeshProductEmbedding>(inner.emb, outer.emb);
        e.desc = "(" + inner.desc + " * " + outer.desc + ")";
        consider(incumbent, std::move(e));
      }
    }
    // Advance the odometer.
    u32 axis = 0;
    while (axis < k && ++pick[axis] == divs[axis].size()) pick[axis++] = 0;
    if (axis == k) break;
  }
}

void Planner::try_extensions(const Shape& shape, Entry& incumbent) {
  const u64 total = product_of(shape);
  const u64 budget = ceil_pow2(total);
  for (u32 i = 0; i < shape.dims(); ++i) {
    const u64 rest = total / shape[i];
    const u64 vmax = budget / rest;  // keep the extended mesh within the
                                     // minimal cube of the original
    for (u64 v = shape[i] + 1; v <= vmax; ++v) {
      SmallVec<u64, 4> ext = shape.extents();
      ext[i] = v;
      Shape bigger{ext};
      Entry grown = best(bigger, false);
      Entry e;
      e.cube = grown.cube;
      e.dil = grown.dil;
      if (grown.cube < incumbent.cube ||
          (grown.cube == incumbent.cube &&
           (grown.dil < incumbent.dil || tie_viable()))) {
        e.emb = std::make_shared<SubmeshEmbedding>(grown.emb, shape);
        e.desc = "sub<" + shape.to_string() + ">(" + grown.desc + ")";
        consider(incumbent, std::move(e));
      }
    }
  }
}

void Planner::try_pattern_extension(const Shape& shape, Entry& incumbent) {
  // Multi-axis extension to the 3*2^a / 7*2^a patterns of Figure 2's
  // method 3 (only meaningful for 3D shapes; other ranks skip).
  if (shape.dims() != 3) return;
  struct Pattern {
    u64 c[3];
    Shape table;
  };
  const std::vector<Pattern> patterns = {
      {{3, 3, 3}, Shape{3, 3, 3}}, {{7, 3, 3}, Shape{7, 3, 3}},
      {{3, 7, 3}, Shape{3, 7, 3}}, {{3, 3, 7}, Shape{3, 3, 7}},
  };
  for (const Pattern& p : patterns) {
    SmallVec<u64, 4> inner_ext, outer_ext;
    bool exact = true;
    for (u32 i = 0; i < 3; ++i) {
      const u64 li = shape[i];
      const u64 pow = li <= p.c[i]
                          ? 1
                          : ceil_pow2((li + p.c[i] - 1) / p.c[i]);
      inner_ext.push_back(pow);
      outer_ext.push_back(p.c[i]);
      if (pow * p.c[i] < li) exact = false;
    }
    if (!exact) continue;
    auto table = direct_embedding(p.table);
    if (!table) continue;
    auto inner = std::make_shared<GrayEmbedding>(Mesh(Shape{inner_ext}));
    const u32 cube = inner->host_dim() + (*table)->host_dim();
    if (cube > incumbent.cube || (cube == incumbent.cube && !tie_viable()))
      continue;
    auto prod = std::make_shared<MeshProductEmbedding>(inner, *table);
    Entry e;
    e.cube = cube;
    e.dil = 2;
    e.emb = prod->guest().shape() == shape
                ? EmbeddingPtr(prod)
                : EmbeddingPtr(std::make_shared<SubmeshEmbedding>(prod, shape));
    e.desc = "sub<" + shape.to_string() + ">(gray " +
             Shape{inner_ext}.to_string() + " * direct " +
             p.table.to_string() + ")";
    consider(incumbent, std::move(e));
  }
}

PlanResult Planner::plan(const Shape& shape) {
  HJ_SPAN("plan");
  if (obs::enabled()) {
    auto& reg = obs::Registry::global();
    static obs::Counter& plans = reg.counter("planner.plans");
    plans.add();
    reg.counter(std::string("planner.plans.") +
                cost::objective_name(opts_.objective))
        .add();
  }
  Entry e = best(shape, opts_.allow_extension);
  PlanResult out;
  out.embedding = e.emb;
  out.report = verify(*e.emb);
  out.plan = e.desc;
  // Timing-kind: plan() runs on batch worker threads, so emission order
  // is scheduling-dependent even though each payload is deterministic.
  if (obs::events_on())
    obs::Event("planner.plan", obs::Kind::Timing, obs::Severity::Info,
               "planner")
        .kv("shape", shape.to_string())
        .kv("cube", static_cast<u64>(out.report.host_dim))
        .kv("dil", static_cast<u64>(out.report.dilation))
        .emit();
  // Non-default objectives record the achieved gaps in the plan string
  // (the default keeps the historical strings, which golden tests pin).
  if (opts_.objective != cost::Objective::Lexicographic) {
    const VerifyReport& r = out.report;
    char buf[128];
    std::snprintf(
        buf, sizeof buf, " [obj=%s wl %llu (%.2fx) cong %u (%.2fx)]",
        cost::objective_name(opts_.objective),
        static_cast<unsigned long long>(r.wirelength),
        cost::gap(static_cast<double>(r.wirelength),
                  static_cast<double>(r.bounds.wirelength)),
        r.congestion, cost::gap(r.congestion, r.bounds.congestion));
    out.plan += buf;
  }
  return out;
}

PlanResult Planner::plan_avoiding(const Shape& shape, const FaultSet& faults) {
  HJ_SPAN("plan_avoiding");
  if (obs::enabled()) {
    static obs::Counter& avoiding =
        obs::Registry::global().counter("planner.avoiding");
    avoiding.add();
  }
  // Cache-purity audit: memo_ and the shared ShardedPlanCache are keyed
  // by (shape, extension flag) only — no fault information — so a
  // fault-constrained plan must NEVER be inserted under such a key, or a
  // later fault-free plan() of the same shape would be served a detoured
  // or remapped embedding. This function therefore only *reads* the
  // caches, via the plan() call below (whose fault-free result is the
  // legitimate cacheable object); every faulted embedding it builds is
  // returned directly and never written back.
  PlanResult base = plan(shape);
  if (faults.empty()) return base;

  const u32 n = base.report.host_dim;
  const u64 cube = u64{1} << n;
  const u64 nodes = shape.num_nodes();
  require(nodes <= (u64{1} << 24),
          "plan_avoiding: mesh with %llu nodes is too large to materialize",
          static_cast<unsigned long long>(nodes));

  std::vector<CubeNode> map;
  base.embedding->map_all(map);
  BitwordSet used(cube);
  for (MeshIndex i = 0; i < nodes; ++i) used.set(map[i]);

  // Rungs 1-2 of the degradation ladder: an XOR translation t of the node
  // map (t = 0 keeps the map and only detours edge paths; a single-bit t
  // is a reflection across that cube dimension). The map avoids every
  // failed node iff f ^ t is an unused address for each failed node f, so
  // candidates are screened in O(#faults) before any routing work.
  const auto dodges_failed_nodes = [&](u64 t) {
    for (CubeNode f : faults.failed_nodes())
      if ((f ^ t) < cube && used.test(f ^ t)) return false;
    return true;
  };
  const auto attempt = [&](u64 t) -> std::optional<PlanResult> {
    std::vector<CubeNode> m(map);
    if (t)
      for (CubeNode& v : m) v ^= t;
    auto emb = std::make_shared<ExplicitEmbedding>(Mesh(shape), n,
                                                   std::move(m));
    route_minimize_congestion(*emb);
    const DetourStats d = route_around_faults(*emb, faults);
    if (!d.ok) return std::nullopt;
    VerifyReport r = verify(*emb, faults);
    if (!r.valid || !r.fault_free) return std::nullopt;
    std::string desc = base.plan;
    if (d.detoured_edges)
      desc = "detour[" + std::to_string(d.detoured_edges) + "](" + desc + ")";
    if (t) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "remap[xor 0x%llx]",
                    static_cast<unsigned long long>(t));
      desc = std::string(buf) + "(" + desc + ")";
    }
    PlanResult out;
    out.embedding = std::move(emb);
    out.report = std::move(r);
    out.plan = std::move(desc);
    return out;
  };

  // Routing attempts are O(E) each; bound them so a dense fault set cannot
  // turn the translation scan quadratic.
  u32 routing_budget = 64;
  if (dodges_failed_nodes(0)) {
    if (auto r = attempt(0)) return *r;
    --routing_budget;
  }
  if (n <= 20) {
    // Small cube: scan every translation (screening is near-free).
    for (u64 t = 1; t < cube && routing_budget > 0; ++t) {
      if (!dodges_failed_nodes(t)) continue;
      if (auto r = attempt(t)) return *r;
      --routing_budget;
    }
  } else {
    // Large cube: single- and double-dimension reflections only.
    for (u32 d1 = 0; d1 < n && routing_budget > 0; ++d1)
      for (u32 d2 = d1; d2 < n && routing_budget > 0; ++d2) {
        const u64 t = (u64{1} << d1) | (u64{1} << d2);
        if (!dodges_failed_nodes(t)) continue;
        if (auto r = attempt(t)) return *r;
        --routing_budget;
      }
  }

  // Rung 3: many-to-one contraction onto surviving nodes.
  if (degrade_provider_) {
    if (auto degraded = degrade_provider_(shape, n, faults)) {
      VerifyReport r = verify(*degraded->embedding, faults);
      if (r.valid && r.fault_free) {
        PlanResult out;
        out.embedding = std::move(degraded->embedding);
        out.report = std::move(r);
        out.plan = "degrade(" + degraded->plan + ")";
        return out;
      }
    }
  }
  require(false,
          "plan_avoiding: no fault-avoiding plan for %s in Q%u "
          "(%zu failed nodes, %zu failed links)",
          shape.to_string().c_str(), n, faults.num_failed_nodes(),
          faults.num_failed_links());
  return base;  // unreachable
}

bool Planner::achieves_minimal_dil2(const Shape& shape) {
  Entry e = best(shape, opts_.allow_extension);
  return e.cube == shape.minimal_cube_dim() && e.dil <= 2;
}

namespace {

/// Axis map for RelabelEmbedding: base axis i (of the canonical sorted
/// shape) -> the first not-yet-used target axis of equal length. The
/// greedy match is total because target is a permutation of base.
SmallVec<u32, 4> permutation_to(const Shape& base, const Shape& target) {
  SmallVec<u32, 4> axis_of_base(base.dims(), 0);
  SmallVec<u8, 4> used(target.dims(), 0);
  for (u32 i = 0; i < base.dims(); ++i) {
    for (u32 t = 0; t < target.dims(); ++t) {
      if (!used[t] && target[t] == base[i]) {
        axis_of_base[i] = t;
        used[t] = 1;
        break;
      }
    }
  }
  return axis_of_base;
}

}  // namespace

PlanResult relabel_plan(const PlanResult& canon, const Shape& target) {
  const Shape& base_shape = canon.embedding->guest().shape();
  if (target == base_shape) return canon;
  require(target.sorted() == base_shape.sorted(),
          "relabel_plan: target is not an axis permutation of the plan");
  auto relabeled = std::make_shared<RelabelEmbedding>(
      canon.embedding, target, permutation_to(base_shape, target));
  PlanResult out;
  out.report = verify(*relabeled);
  out.embedding = std::move(relabeled);
  out.plan = "perm<" + target.to_string() + ">(" + canon.plan + ")";
  return out;
}

std::vector<PlanResult> plan_batch(const std::vector<Shape>& shapes,
                                   const PlannerOptions& opts,
                                   const DirectProviderFactory& provider_factory,
                                   ShardedPlanCache* cache) {
  HJ_SPAN_N("plan_batch", shapes.size());
  ShardedPlanCache local_cache;
  if (!cache) cache = &local_cache;

  // Deduplicate by canonical (sorted) shape: axis order only permutes
  // the guest labelling, so each canonical class is planned once.
  std::vector<Shape> uniq;
  std::vector<std::size_t> canon_of(shapes.size());
  {
    std::unordered_map<std::string, std::size_t> slot;
    for (std::size_t i = 0; i < shapes.size(); ++i) {
      Shape canon = shapes[i].sorted();
      const auto [it, fresh] = slot.try_emplace(canon.to_string(), uniq.size());
      if (fresh) uniq.push_back(std::move(canon));
      canon_of[i] = it->second;
    }
  }
  // Deterministic-kind: request and canonical counts are pure functions
  // of the input batch (the dedup-effectiveness numerator/denominator).
  if (obs::enabled()) {
    auto& reg = obs::Registry::global();
    reg.counter("plan.batch.calls").add();
    reg.counter("plan.batch.shapes").add(shapes.size());
    reg.counter("plan.batch.unique").add(uniq.size());
  }

  // Plan the canonical shapes. Chunks larger than one shape let a worker
  // planner reuse its local memo across neighbouring shapes; the shared
  // cache covers reuse across chunks. Each canonical plan is a pure
  // function of the shape, so scheduling cannot change any result.
  std::vector<PlanResult> canon_plans(uniq.size());
  {
    HJ_SPAN_N("plan_batch.plan_canonical", uniq.size());
    const u64 plan_grain =
        std::max<u64>(1, uniq.size() / (u64{par::thread_count()} * 4));
    par::parallel_for(0, uniq.size(), plan_grain, [&](u64 lo, u64 hi) {
      Planner planner(opts);
      planner.set_shared_cache(cache);
      if (provider_factory) planner.set_direct_provider(provider_factory());
      for (u64 i = lo; i < hi; ++i) canon_plans[i] = planner.plan(uniq[i]);
    });
  }

  // Relabel each canonical plan to the requested axis order. Permuted
  // outputs are re-verified (the relabelled guest has its own edge set).
  std::vector<PlanResult> out(shapes.size());
  {
    HJ_SPAN("plan_batch.relabel");
    par::parallel_for(0, shapes.size(), /*grain=*/16, [&](u64 lo, u64 hi) {
      for (u64 i = lo; i < hi; ++i)
        out[i] = relabel_plan(canon_plans[canon_of[i]], shapes[i]);
    });
  }
  // Result-quality distributions are functions of the (deterministic)
  // results; observed serially so the loop itself adds no sync.
  if (obs::enabled()) {
    auto& reg = obs::Registry::global();
    obs::Histogram& dil = reg.histogram("plan.dilation");
    obs::Histogram& slack = reg.histogram("plan.cube_slack");
    obs::Counter& relabeled = reg.counter("plan.batch.relabeled");
    for (std::size_t i = 0; i < out.size(); ++i) {
      dil.observe(out[i].report.dilation);
      slack.observe(out[i].report.host_dim - shapes[i].minimal_cube_dim());
      if (out[i].embedding != canon_plans[canon_of[i]].embedding)
        relabeled.add();
    }
  }
  // Batch summary from the calling thread (serial point), so it is a
  // legitimate Deterministic event: counts are pure functions of the
  // input batch, independent of worker scheduling.
  if (obs::events_on()) {
    u64 relabeled = 0;
    for (std::size_t i = 0; i < out.size(); ++i)
      if (out[i].embedding != canon_plans[canon_of[i]].embedding) ++relabeled;
    obs::Event("plan.batch", obs::Kind::Deterministic, obs::Severity::Info,
               "planner")
        .kv("shapes", static_cast<u64>(shapes.size()))
        .kv("unique", static_cast<u64>(uniq.size()))
        .kv("relabeled", relabeled)
        .emit();
  }
  return out;
}

std::vector<PlanResult> plan_batch(const std::vector<Shape>& shapes,
                                   const std::vector<const FaultSet*>& faults,
                                   const PlannerOptions& opts,
                                   const DirectProviderFactory& provider_factory,
                                   ShardedPlanCache* cache) {
  require(faults.size() == shapes.size(),
          "plan_batch: %zu fault sets for %zu shapes", faults.size(),
          shapes.size());
  HJ_SPAN_N("plan_batch.faulted", shapes.size());
  ShardedPlanCache local_cache;
  if (!cache) cache = &local_cache;

  // Split the batch: unconstrained entries ride the canonical-dedup path
  // (and may populate the shared cache); fault-constrained entries are
  // planned one by one with plan_avoiding, which reads fault-free
  // sub-plans from the cache but never writes its faulted results back
  // (see the purity audit in plan_avoiding).
  std::vector<std::size_t> faulted;
  std::vector<Shape> free_shapes;
  std::vector<std::size_t> free_slot;
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    if (faults[i] && !faults[i]->empty()) {
      faulted.push_back(i);
    } else {
      free_shapes.push_back(shapes[i]);
      free_slot.push_back(i);
    }
  }

  if (obs::enabled())
    obs::Registry::global().counter("plan.batch.faulted").add(faulted.size());

  std::vector<PlanResult> out(shapes.size());
  std::vector<PlanResult> free_plans =
      plan_batch(free_shapes, opts, provider_factory, cache);
  for (std::size_t j = 0; j < free_slot.size(); ++j)
    out[free_slot[j]] = std::move(free_plans[j]);

  // Worker exceptions must not escape the parallel engine; collect the
  // first failure per chunk and rethrow on the calling thread.
  std::vector<std::string> errors(faulted.size());
  par::parallel_for(0, faulted.size(), /*grain=*/1, [&](u64 lo, u64 hi) {
    Planner planner(opts);
    planner.set_shared_cache(cache);
    if (provider_factory) planner.set_direct_provider(provider_factory());
    for (u64 j = lo; j < hi; ++j) {
      const std::size_t i = faulted[j];
      try {
        out[i] = planner.plan_avoiding(shapes[i], *faults[i]);
      } catch (const std::invalid_argument& e) {
        errors[j] = e.what();
      }
    }
  });
  for (const std::string& e : errors)
    if (!e.empty()) throw std::invalid_argument(e);
  return out;
}

}  // namespace hj
