// hjembed: certified measurement of embeddings (Definitions 1-3, 5).
//
// Every embedding construction in this library is checked by this verifier
// in the test suite, and the planner re-verifies what it returns. The
// verifier trusts nothing: it walks every guest edge, re-validates the
// assigned cube path, and measures dilation, congestion, expansion and
// load factor exactly as the paper defines them.
#pragma once

#include <string>
#include <vector>

#include "core/cost.hpp"
#include "core/embedding.hpp"
#include "core/fault.hpp"

namespace hj {

/// Everything the paper measures about an embedding, plus the structural
/// validity checks the definitions implicitly assume.
struct VerifyReport {
  /// True iff the embedding is structurally sound: the map stays inside
  /// the cube, is injective when one_to_one() is claimed, and every edge
  /// path is a real cube path between the images of the edge endpoints.
  bool valid = true;
  /// Human-readable reasons when !valid (capped at a few entries).
  std::vector<std::string> errors;

  u64 guest_nodes = 0;
  u64 guest_edges = 0;
  u32 host_dim = 0;

  /// Definition 1. |V(H)| / |V(G)|.
  double expansion = 0.0;
  /// True iff the host is the minimal cube for the guest node count.
  bool minimal_expansion = false;

  /// Definition 2. Maximum, mean and distribution of edge-path lengths.
  u32 dilation = 0;
  double avg_dilation = 0.0;
  std::vector<u64> dilation_histogram;  // histogram[d] = #edges of dilation d

  /// Total wirelength: the sum of all edge-path lengths. Satisfies the
  /// double-counting identity
  ///   wirelength == sum_d d * dilation_histogram[d]
  ///              == sum_c c * congestion_histogram[c]
  /// (every hop is one unit of path length and one unit of load on one
  /// cube link); the verifier asserts it.
  u64 wirelength = 0;

  /// Computable lower bounds for this guest in this cube (cost model;
  /// arXiv 1807.06787-style). Every bound is <= its measured value, so
  /// value / bound is a certified optimality gap >= 1.
  cost::Bounds bounds;

  /// Definition 3. Maximum and mean number of guest edge paths crossing a
  /// cube edge. The mean is taken over all |E(H)| cube edges, as in the
  /// paper's "average congestion is similarly defined".
  u32 congestion = 0;
  double avg_congestion = 0.0;
  std::vector<u64> congestion_histogram;  // histogram[c] = #cube edges used c times

  /// Definition 5. Maximum number of guest nodes sharing a cube node
  /// (1 for a valid one-to-one embedding).
  u64 load_factor = 0;

  /// True iff no image node and no routed path touches the fault set the
  /// verification ran against (trivially true when verified without one).
  bool fault_free = true;
  /// Image nodes / edge paths found on failed hardware.
  u64 faulted_nodes = 0;
  u64 faulted_paths = 0;
};

/// Measure (and validate) an embedding. Never throws on a bad embedding;
/// inspect report.valid / report.errors. With a fault set, additionally
/// certify that the embedding avoids every failed node and link
/// (report.fault_free); fault hits are reported, not treated as structural
/// invalidity.
[[nodiscard]] VerifyReport verify(const Embedding& emb);
[[nodiscard]] VerifyReport verify(const Embedding& emb,
                                  const FaultSet& faults);

/// Certify a batch of embeddings concurrently on the par:: engine
/// (HJ_THREADS / --threads); embeddings are immutable after
/// construction, so sharing them across worker threads is safe. Returns
/// one report per input, in input order, bit-identical to calling
/// verify() serially. Null entries are rejected (std::invalid_argument).
[[nodiscard]] std::vector<VerifyReport> verify_batch(
    const std::vector<EmbeddingPtr>& embs);
[[nodiscard]] std::vector<VerifyReport> verify_batch(
    const std::vector<EmbeddingPtr>& embs, const FaultSet& faults);

/// Convenience: verify and require structural validity, dilation <= max_dil
/// and minimal expansion; used in tests and by the planner's certificates.
[[nodiscard]] bool verify_certified(const Embedding& emb, u32 max_dil,
                                    VerifyReport* out = nullptr);

/// One-line summary, e.g.
/// "7x9 -> Q6: exp 1.016 (minimal), dil 2 (avg 1.08), cong 2 (avg 0.61)".
[[nodiscard]] std::string summary(const VerifyReport& r,
                                  const Embedding& emb);

/// Multi-line report with the dilation and congestion histograms and the
/// lower-bound gap line.
[[nodiscard]] std::string detailed_summary(const VerifyReport& r,
                                           const Embedding& emb);

/// One-line optimality-gap report, e.g.
/// "bounds: dil 2/2 (1.00x), wl 160/139 (1.15x), cong 2/1 (2.00x)".
/// Values are the measured metrics, denominators the certified lower
/// bounds from the cost model.
[[nodiscard]] std::string gap_summary(const VerifyReport& r);

/// Inverse placement table: for every cube node, the guest index mapped
/// there, or -1 for unused nodes. For many-to-one embeddings the last
/// guest index (in index order) wins; use load_factor to detect sharing.
[[nodiscard]] std::vector<i64> inverse_placement(const Embedding& emb);

}  // namespace hj
