// hjembed: the guest graphs of the paper — k-dimensional meshes, optionally
// with wraparound (torus) axes.
#pragma once

#include <vector>

#include "core/shape.hpp"

namespace hj {

/// An undirected mesh edge. `a` and `b` are linear node indices and `axis`
/// the axis along which the nodes differ. `wrap` marks a wraparound edge
/// (from the last coordinate of the axis back to coordinate 0).
struct MeshEdge {
  MeshIndex a = 0;
  MeshIndex b = 0;
  u32 axis = 0;
  bool wrap = false;
};

/// A k-dimensional mesh M(l1, ..., lk), optionally with wraparound on a
/// per-axis basis. With no wrap flags this is the paper's mesh; with all
/// axes wrapped it is the wraparound mesh (torus) of Section 6.
///
/// Conventions for wrapped axes: a wrapped axis of length 1 contributes no
/// edge and of length 2 contributes a single edge (the wrap edge would
/// duplicate the mesh edge, and a multigraph is never intended).
class Mesh {
 public:
  explicit Mesh(Shape shape) : shape_(std::move(shape)) {
    wrap_.assign(shape_.dims(), 0);
  }

  Mesh(Shape shape, SmallVec<u8, 4> wrap)
      : shape_(std::move(shape)), wrap_(std::move(wrap)) {
    require(wrap_.size() == shape_.dims(),
            "Mesh: wrap flags must match shape rank");
  }

  /// Fully wrapped mesh (torus on every axis).
  static Mesh torus(Shape shape) {
    SmallVec<u8, 4> w(shape.dims(), 1);
    return Mesh(std::move(shape), std::move(w));
  }

  [[nodiscard]] const Shape& shape() const noexcept { return shape_; }
  [[nodiscard]] u32 dims() const noexcept { return shape_.dims(); }
  [[nodiscard]] u64 num_nodes() const noexcept { return shape_.num_nodes(); }
  [[nodiscard]] bool wraps(u32 axis) const noexcept {
    return wrap_[axis] != 0;
  }
  [[nodiscard]] bool any_wrap() const noexcept {
    for (u8 w : wrap_)
      if (w) return true;
    return false;
  }

  /// Number of undirected edges along `axis`, per line of that axis.
  [[nodiscard]] u64 edges_per_line(u32 axis) const noexcept {
    const u64 l = shape_[axis];
    if (l <= 1) return 0;
    return (wraps(axis) && l > 2) ? l : l - 1;
  }

  /// Total number of undirected edges.
  [[nodiscard]] u64 num_edges() const noexcept {
    u64 total = 0;
    const u64 nodes = shape_.num_nodes();
    for (u32 i = 0; i < dims(); ++i)
      total += edges_per_line(i) * (nodes / shape_[i]);
    return total;
  }

  /// Visit every undirected edge exactly once. `fn` receives a MeshEdge
  /// whose `a` has the smaller axis coordinate (for wrap edges, `a` is the
  /// coordinate l-1 end and `b` the coordinate 0 end).
  template <class Fn>
  void for_each_edge(Fn&& fn) const {
    const u64 n = shape_.num_nodes();
    for (u32 axis = 0; axis < dims(); ++axis) {
      const u64 l = shape_[axis];
      if (l <= 1) continue;
      const u64 stride = shape_.stride(axis);
      for (MeshIndex idx = 0; idx < n; ++idx) {
        const u64 c = (idx / stride) % l;
        if (c + 1 < l) {
          fn(MeshEdge{idx, idx + stride, axis, false});
        } else if (wraps(axis) && l > 2) {
          fn(MeshEdge{idx, idx - (l - 1) * stride, axis, true});
        }
      }
    }
  }

  /// All edges, materialized. Prefer for_each_edge in hot paths.
  [[nodiscard]] std::vector<MeshEdge> edges() const {
    std::vector<MeshEdge> out;
    out.reserve(num_edges());
    for_each_edge([&](const MeshEdge& e) { out.push_back(e); });
    return out;
  }

  /// Neighbor indices of a node (2k at most).
  [[nodiscard]] SmallVec<MeshIndex, 8> neighbors(MeshIndex idx) const {
    SmallVec<MeshIndex, 8> out;
    for (u32 axis = 0; axis < dims(); ++axis) {
      const u64 l = shape_[axis];
      if (l <= 1) continue;
      const u64 stride = shape_.stride(axis);
      const u64 c = (idx / stride) % l;
      if (c + 1 < l)
        out.push_back(idx + stride);
      else if (wraps(axis) && l > 2)
        out.push_back(idx - (l - 1) * stride);
      if (c > 0)
        out.push_back(idx - stride);
      else if (wraps(axis) && l > 2)
        out.push_back(idx + (l - 1) * stride);
    }
    return out;
  }

  friend bool operator==(const Mesh& a, const Mesh& b) noexcept {
    return a.shape_ == b.shape_ && a.wrap_ == b.wrap_;
  }

 private:
  Shape shape_;
  SmallVec<u8, 4> wrap_;
};

}  // namespace hj
