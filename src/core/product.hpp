// hjembed: the graph decomposition engine — Theorem 3 and Corollary 2.
//
// This module is the paper's primary contribution. Given embeddings of two
// factor meshes M1 -> Q_{n1} and M2 -> Q_{n2}, it constructs the embedding
// of the elementwise-product mesh (l_j = l1j * l2j) into Q_{n1+n2} with
//
//     expansion = e1 * e2,  dilation = max(d1, d2),  congestion = max(c1, c2).
//
// The construction follows the proof of Corollary 2 exactly: the axis-j
// coordinate z_j splits as z_j = y_j * l1j + x_j; the inner (M1) copy
// indexed by y is *reflected* along every axis j for which y_j is odd, so
// consecutive copies of the inner mesh meet at identical inner images and
// the copy-boundary edges are carried entirely by the outer (M2) embedding.
#pragma once

#include "core/embedding.hpp"

namespace hj {

/// The Corollary 2 product of two mesh embeddings. Factor guests must be
/// plain meshes (no wraparound) of equal rank; pad shapes with 1s (see
/// RelabelEmbedding) to align axes.
class MeshProductEmbedding final : public Embedding {
 public:
  /// `inner` embeds M1 (traversed fastest; its axes keep dilation 1 inside
  /// each copy), `outer` embeds M2 (its dilation is paid once per inner
  /// line, which is what makes the Section 4.1 average dilation small).
  MeshProductEmbedding(EmbeddingPtr inner, EmbeddingPtr outer);

  [[nodiscard]] CubeNode map(MeshIndex idx) const override;
  [[nodiscard]] CubePath edge_path(const MeshEdge& e) const override;
  [[nodiscard]] bool one_to_one() const noexcept override {
    return inner_->one_to_one() && outer_->one_to_one();
  }
  void map_all(std::vector<CubeNode>& out) const override;
  [[nodiscard]] bool unit_paths() const noexcept override {
    // Products preserve unit paths: an M1-type edge rides a (possibly
    // reflected) one-hop inner path, an M2-type edge a one-hop outer path.
    return inner_->unit_paths() && outer_->unit_paths();
  }

  [[nodiscard]] const Embedding& inner() const noexcept { return *inner_; }
  [[nodiscard]] const Embedding& outer() const noexcept { return *outer_; }

 private:
  struct Split {
    Coord x;       // inner coordinate, already reflected
    Coord y;       // outer coordinate
    Coord parity;  // y_j parity before reflection (needed by edge_path)
  };
  [[nodiscard]] Split split(MeshIndex idx) const;
  [[nodiscard]] CubeNode combine(CubeNode inner_node,
                                 CubeNode outer_node) const noexcept {
    return (outer_node << inner_->host_dim()) | inner_node;
  }

  EmbeddingPtr inner_;
  EmbeddingPtr outer_;
};

/// Adapter that re-labels axes of an existing embedding: the target guest
/// shape may permute the base guest's axes and insert extra length-1 axes.
/// Example: lift an embedding of 12x20 to guest shape 12x1x20x1 so it can
/// be used as a factor for a 12x16x20x32 mesh.
class RelabelEmbedding final : public Embedding {
 public:
  /// `axis_of_base[j]` = which axis of `target` guest axis j of the base
  /// corresponds to. Every target axis not mentioned must have length 1.
  RelabelEmbedding(EmbeddingPtr base, Shape target,
                   SmallVec<u32, 4> axis_of_base);

  /// Convenience: spread the base axes over `target` in order, matching
  /// lengths greedily (non-1 target axes must match base axes in order).
  static std::shared_ptr<RelabelEmbedding> lift(EmbeddingPtr base,
                                                const Shape& target);

  [[nodiscard]] CubeNode map(MeshIndex idx) const override;
  [[nodiscard]] CubePath edge_path(const MeshEdge& e) const override;
  [[nodiscard]] bool one_to_one() const noexcept override {
    return base_->one_to_one();
  }
  void map_all(std::vector<CubeNode>& out) const override;
  [[nodiscard]] bool unit_paths() const noexcept override {
    return base_->unit_paths();
  }

 private:
  [[nodiscard]] MeshIndex to_base(MeshIndex idx) const;

  EmbeddingPtr base_;
  SmallVec<u32, 4> axis_of_base_;   // base axis -> target axis
  SmallVec<i32, 4> base_of_axis_;   // target axis -> base axis or -1
};

/// Axis-extension adapter (strategy 3 of Section 4.2): embeds a guest mesh
/// as the natural submesh of a slightly larger mesh for which an embedding
/// is known. E.g. a 3x3x23 mesh rides inside an embedded 3x3x25 mesh.
class SubmeshEmbedding final : public Embedding {
 public:
  SubmeshEmbedding(EmbeddingPtr base, Shape guest_shape);

  [[nodiscard]] CubeNode map(MeshIndex idx) const override;
  [[nodiscard]] CubePath edge_path(const MeshEdge& e) const override;
  [[nodiscard]] bool one_to_one() const noexcept override {
    return base_->one_to_one();
  }
  void map_all(std::vector<CubeNode>& out) const override;
  [[nodiscard]] bool unit_paths() const noexcept override {
    return base_->unit_paths();
  }

 private:
  [[nodiscard]] MeshIndex to_base(MeshIndex idx) const;

  EmbeddingPtr base_;
};

/// Corollary 1 for meshes, n-ary: fold a list of factor embeddings into one
/// product embedding (left fold; all factor guests must share a rank).
[[nodiscard]] EmbeddingPtr product_chain(std::vector<EmbeddingPtr> factors);

}  // namespace hj
