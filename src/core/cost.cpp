#include "core/cost.hpp"

#include <algorithm>

#include "core/hypercube.hpp"

namespace hj::cost {

const char* objective_name(Objective o) noexcept {
  switch (o) {
    case Objective::Lexicographic:
      return "lexicographic";
    case Objective::DilationFirst:
      return "dilation";
    case Objective::WirelengthFirst:
      return "wirelength";
    case Objective::CongestionFirst:
      return "congestion";
  }
  return "lexicographic";
}

std::optional<Objective> parse_objective(std::string_view s) {
  if (s == "lexicographic" || s == "lex" || s == "default")
    return Objective::Lexicographic;
  if (s == "dilation") return Objective::DilationFirst;
  if (s == "wirelength") return Objective::WirelengthFirst;
  if (s == "congestion") return Objective::CongestionFirst;
  return std::nullopt;
}

namespace {

/// Three-key tiebreak shared by the measured objectives: strictly less
/// on (k1, k2, k3).
bool less3(u64 a1, u64 a2, u64 a3, u64 b1, u64 b2, u64 b3) noexcept {
  if (a1 != b1) return a1 < b1;
  if (a2 != b2) return a2 < b2;
  return a3 < b3;
}

}  // namespace

bool better(Objective o, const CostVector& c, const CostVector& i) noexcept {
  if (c.cube != i.cube) return c.cube < i.cube;
  switch (o) {
    case Objective::Lexicographic:
      // The historical order: dilation breaks cube ties, nothing else
      // does (first candidate wins among full ties).
      return c.dilation < i.dilation;
    case Objective::DilationFirst:
      return less3(c.dilation, c.wirelength, c.congestion, i.dilation,
                   i.wirelength, i.congestion);
    case Objective::WirelengthFirst:
      return less3(c.wirelength, c.dilation, c.congestion, i.wirelength,
                   i.dilation, i.congestion);
    case Objective::CongestionFirst:
      return less3(c.congestion, c.dilation, c.wirelength, i.congestion,
                   i.dilation, i.wirelength);
  }
  return false;
}

u32 min_degree(const Mesh& guest) noexcept {
  // The corner node: one link per non-degenerate axis, two when the axis
  // wraps with length > 2 (a length-2 wrapped axis is a single edge).
  u32 d = 0;
  for (u32 i = 0; i < guest.dims(); ++i) {
    if (guest.shape()[i] < 2) continue;
    d += (guest.wraps(i) && guest.shape()[i] > 2) ? 2u : 1u;
  }
  return d;
}

Bounds lower_bounds(const Mesh& guest, u32 host_dim, bool one_to_one) {
  Bounds b;
  const Shape& s = guest.shape();
  const u64 nodes = s.num_nodes();
  const u64 edges = guest.num_edges();
  const u64 cube = u64{1} << host_dim;

  b.load = (nodes + cube - 1) / cube;
  if (!one_to_one) {
    // Collapsed edges have zero-length paths, so none of the edge- or
    // injectivity-based floors survive; the occupancy floors do.
    return b;
  }

  b.host_dim = s.minimal_cube_dim();
  if (edges == 0) return b;

  // Dilation: 1 for any embedded edge; 2 when dilation 1 is impossible —
  // either the cube is below the Havel-Moravek dimension bound
  // sum_i ceil(log2 l_i) (Theorem 1), or some wrapped axis is an odd
  // cycle, which the bipartite cube cannot carry as a subgraph.
  b.dilation = 1;
  if (host_dim < s.gray_cube_dim()) b.dilation = 2;
  for (u32 i = 0; i < s.dims(); ++i)
    if (guest.wraps(i) && s[i] > 2 && (s[i] & 1)) b.dilation = 2;

  // Wirelength: injectivity makes every edge cost at least one hop, and
  // a forced dilation-2 embedding spends at least one extra hop
  // somewhere. Independently, each of the n host dimension cuts splits
  // the guest nontrivially whenever the guest overfills half the cube,
  // and a nontrivial cut of a mesh/torus severs at least lambda = min
  // degree edges; hop counts sum over the cuts (arXiv 1807.06787's
  // cut-based bounds, in their mesh-guest form).
  b.wirelength = edges + (b.dilation >= 2 ? 1 : 0);
  if (host_dim > 0 && nodes > (cube >> 1)) {
    const u64 cut_total = u64{host_dim} * min_degree(guest);
    b.wirelength = std::max(b.wirelength, cut_total);
  }

  // Congestion: some link carries at least the average load
  // wirelength / |E(Q_n)| (and at least one link is used at all).
  const u64 host_edges = Hypercube(host_dim).num_edges();
  b.congestion = 1;
  if (host_edges > 0)
    b.congestion = std::max<u32>(
        1, static_cast<u32>((b.wirelength + host_edges - 1) / host_edges));
  return b;
}

double gap(double value, double bound) noexcept {
  if (bound <= 0.0) return 1.0;
  return value / bound;
}

}  // namespace hj::cost
