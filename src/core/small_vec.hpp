// hjembed: a small-buffer vector for hot-path coordinate and path data.
//
// Mesh coordinates (k <= 8 in practice) and cube paths (dilation <= 3 in
// practice) are tiny; storing them inline avoids a heap allocation per edge
// during verification sweeps over millions of edges.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <memory>
#include <type_traits>

namespace hj {

/// Vector with inline storage for up to N elements, spilling to the heap
/// beyond that. Restricted to trivially copyable T (all uses are integer
/// coordinate/path data), which keeps the implementation simple and the
/// copy/grow paths memcpy-able.
template <class T, std::size_t N>
class SmallVec {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVec() noexcept = default;

  SmallVec(std::size_t count, const T& value) { assign(count, value); }

  SmallVec(std::initializer_list<T> init) {
    reserve(init.size());
    for (const T& v : init) push_back(v);
  }

  // Constrained so SmallVec(2, 0) picks the (count, value) constructor,
  // as with std::vector.
  template <class It>
    requires(!std::is_integral_v<It>)
  SmallVec(It first, It last) {
    for (; first != last; ++first) push_back(*first);
  }

  SmallVec(const SmallVec& other) { copy_from(other); }

  SmallVec(SmallVec&& other) noexcept { move_from(std::move(other)); }

  SmallVec& operator=(const SmallVec& other) {
    if (this != &other) {
      clear_storage();
      copy_from(other);
    }
    return *this;
  }

  SmallVec& operator=(SmallVec&& other) noexcept {
    if (this != &other) {
      clear_storage();
      move_from(std::move(other));
    }
    return *this;
  }

  ~SmallVec() { clear_storage(); }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  T* data() noexcept { return data_; }
  const T* data() const noexcept { return data_; }

  iterator begin() noexcept { return data_; }
  iterator end() noexcept { return data_ + size_; }
  const_iterator begin() const noexcept { return data_; }
  const_iterator end() const noexcept { return data_ + size_; }

  T& operator[](std::size_t i) noexcept {
    assert(i < size_);
    return data_[i];
  }
  const T& operator[](std::size_t i) const noexcept {
    assert(i < size_);
    return data_[i];
  }

  T& front() noexcept { return (*this)[0]; }
  const T& front() const noexcept { return (*this)[0]; }
  T& back() noexcept { return (*this)[size_ - 1]; }
  const T& back() const noexcept { return (*this)[size_ - 1]; }

  void push_back(const T& v) {
    if (size_ == capacity_) grow(capacity_ * 2);
    data_[size_++] = v;
  }

  void pop_back() noexcept {
    assert(size_ > 0);
    --size_;
  }

  void clear() noexcept { size_ = 0; }

  void resize(std::size_t n, const T& fill = T{}) {
    reserve(n);
    for (std::size_t i = size_; i < n; ++i) data_[i] = fill;
    size_ = n;
  }

  void assign(std::size_t count, const T& value) {
    clear();
    resize(count, value);
  }

  void reserve(std::size_t n) {
    if (n > capacity_) grow(std::max(n, capacity_ * 2));
  }

  void reverse() noexcept { std::reverse(begin(), end()); }

  friend bool operator==(const SmallVec& a, const SmallVec& b) noexcept {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }

 private:
  void grow(std::size_t new_cap) {
    T* fresh = new T[new_cap];
    std::copy(data_, data_ + size_, fresh);
    if (on_heap()) delete[] data_;
    data_ = fresh;
    capacity_ = new_cap;
  }

  [[nodiscard]] bool on_heap() const noexcept { return data_ != inline_; }

  void clear_storage() noexcept {
    if (on_heap()) delete[] data_;
    data_ = inline_;
    capacity_ = N;
    size_ = 0;
  }

  void copy_from(const SmallVec& other) {
    reserve(other.size_);
    std::copy(other.data_, other.data_ + other.size_, data_);
    size_ = other.size_;
  }

  void move_from(SmallVec&& other) noexcept {
    if (other.on_heap()) {
      data_ = other.data_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.data_ = other.inline_;
      other.capacity_ = N;
      other.size_ = 0;
    } else {
      std::copy(other.data_, other.data_ + other.size_, inline_);
      size_ = other.size_;
      other.size_ = 0;
    }
  }

  T inline_[N];
  T* data_ = inline_;
  std::size_t size_ = 0;
  std::size_t capacity_ = N;
};

}  // namespace hj
