#include "core/embedding.hpp"

#include <algorithm>

namespace hj {

void Embedding::map_all(std::vector<CubeNode>& out) const {
  const u64 n = guest_.num_nodes();
  out.resize(n);
  for (MeshIndex i = 0; i < n; ++i) out[i] = map(i);
}

void GrayEmbedding::map_all(std::vector<CubeNode>& out) const {
  const Shape& s = guest().shape();
  const u64 n = s.num_nodes();
  out.resize(n);
  if (n == 0) return;
  const u32 k = s.dims();
  Coord c(k, 0);
  CubeNode cur = 0;  // gray(0) == 0 on every axis
  for (u64 idx = 0;;) {
    out[idx] = cur;
    if (++idx == n) break;
    // Row-major odometer, fastest axis last. An increment on axis i flips
    // cur by gray(c)^gray(c+1); a carry resets the axis field to gray(0)=0
    // by flipping off gray(l-1).
    for (u32 i = k; i-- > 0;) {
      if (c[i] + 1 < s[i]) {
        cur ^= (gray(c[i]) ^ gray(c[i] + 1)) << shift_[i];
        ++c[i];
        break;
      }
      cur ^= gray(c[i]) << shift_[i];
      c[i] = 0;
    }
  }
}

CubePath ExplicitEmbedding::edge_path(const MeshEdge& e) const {
  const u64 key = path_key(e);
  if (!paths_.empty()) {
    assert(paths_sorted_);
    auto it = std::lower_bound(
        paths_.begin(), paths_.end(), key,
        [](const auto& kv, u64 k) { return kv.first < k; });
    if (it != paths_.end() && it->first == key) return it->second;
  }
  return Hypercube::ecube_path(map(e.a), map(e.b));
}

void ExplicitEmbedding::set_edge_path(const MeshEdge& e, CubePath path) {
  require(!path.empty() && path.front() == map(e.a) && path.back() == map(e.b),
          "set_edge_path: path endpoints must match the node map");
  for (std::size_t i = 0; i + 1 < path.size(); ++i)
    require(Hypercube::adjacent(path[i], path[i + 1]),
            "set_edge_path: path must follow cube edges");
  const u64 key = path_key(e);
  auto it = std::lower_bound(paths_.begin(), paths_.end(), key,
                             [](const auto& kv, u64 k) { return kv.first < k; });
  if (it != paths_.end() && it->first == key)
    it->second = std::move(path);
  else
    paths_.insert(it, {key, std::move(path)});
}

CubePath neighbor_route(const Embedding& emb, MeshIndex u, MeshIndex w) {
  const Shape& s = emb.guest().shape();
  const Coord cu = s.coord(u), cw = s.coord(w);
  u32 axis = 0;
  u32 diffs = 0;
  for (u32 d = 0; d < s.dims(); ++d) {
    if (cu[d] != cw[d]) {
      axis = d;
      ++diffs;
    }
  }
  require(diffs == 1, "neighbor_route: nodes differ in exactly one axis");
  const u64 lo = std::min(cu[axis], cw[axis]);
  const u64 hi = std::max(cu[axis], cw[axis]);
  const bool wrap = hi - lo > 1;  // the wrap edge joins coordinates 0, l-1
  require(wrap ? (lo == 0 && hi == s[axis] - 1 && emb.guest().wraps(axis))
               : hi - lo == 1,
          "neighbor_route: not a guest edge");
  const MeshIndex a = wrap ? (cu[axis] > cw[axis] ? u : w)
                           : (cu[axis] < cw[axis] ? u : w);
  const MeshIndex b = a == u ? w : u;
  CubePath route = emb.edge_path(MeshEdge{a, b, axis, wrap});
  if (a != u) route.reverse();
  return route;
}

}  // namespace hj
