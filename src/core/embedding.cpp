#include "core/embedding.hpp"

#include <algorithm>

namespace hj {

CubePath ExplicitEmbedding::edge_path(const MeshEdge& e) const {
  const u64 key = path_key(e);
  if (!paths_.empty()) {
    assert(paths_sorted_);
    auto it = std::lower_bound(
        paths_.begin(), paths_.end(), key,
        [](const auto& kv, u64 k) { return kv.first < k; });
    if (it != paths_.end() && it->first == key) return it->second;
  }
  return Hypercube::ecube_path(map(e.a), map(e.b));
}

void ExplicitEmbedding::set_edge_path(const MeshEdge& e, CubePath path) {
  require(!path.empty() && path.front() == map(e.a) && path.back() == map(e.b),
          "set_edge_path: path endpoints must match the node map");
  for (std::size_t i = 0; i + 1 < path.size(); ++i)
    require(Hypercube::adjacent(path[i], path[i + 1]),
            "set_edge_path: path must follow cube edges");
  const u64 key = path_key(e);
  auto it = std::lower_bound(paths_.begin(), paths_.end(), key,
                             [](const auto& kv, u64 k) { return kv.first < k; });
  if (it != paths_.end() && it->first == key)
    it->second = std::move(path);
  else
    paths_.insert(it, {key, std::move(path)});
}

CubePath neighbor_route(const Embedding& emb, MeshIndex u, MeshIndex w) {
  const Shape& s = emb.guest().shape();
  const Coord cu = s.coord(u), cw = s.coord(w);
  u32 axis = 0;
  u32 diffs = 0;
  for (u32 d = 0; d < s.dims(); ++d) {
    if (cu[d] != cw[d]) {
      axis = d;
      ++diffs;
    }
  }
  require(diffs == 1, "neighbor_route: nodes differ in exactly one axis");
  const u64 lo = std::min(cu[axis], cw[axis]);
  const u64 hi = std::max(cu[axis], cw[axis]);
  const bool wrap = hi - lo > 1;  // the wrap edge joins coordinates 0, l-1
  require(wrap ? (lo == 0 && hi == s[axis] - 1 && emb.guest().wraps(axis))
               : hi - lo == 1,
          "neighbor_route: not a guest edge");
  const MeshIndex a = wrap ? (cu[axis] > cw[axis] ? u : w)
                           : (cu[axis] < cw[axis] ? u : w);
  const MeshIndex b = a == u ? w : u;
  CubePath route = emb.edge_path(MeshEdge{a, b, axis, wrap});
  if (a != u) route.reverse();
  return route;
}

}  // namespace hj
