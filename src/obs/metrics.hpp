// hjembed: the metrics registry — named counters, gauges and fixed-bucket
// histograms behind every "where does that number come from" question the
// paper's quantitative claims raise at runtime (cache hit rates, dedup
// effectiveness, per-link utilization, per-rung repair cost).
//
// Determinism contract. Metrics carry a Kind:
//
//   * Deterministic — the recorded multiset of observations is a pure
//     function of the workload (plan_batch dedup counts, result dilation
//     histograms, simulator link loads). Counters and histogram buckets
//     are unsigned integers and merging per-thread shards is addition,
//     which commutes, so aggregates are bit-identical at every HJ_THREADS
//     setting — the same guarantee par::parallel_reduce gives results.
//   * Timing — wall-clock durations and scheduling-dependent counts
//     (cache hits depend on which worker published first). Sharded and
//     merged the same way, but the observations themselves vary run to
//     run; excluded from Snapshot comparisons keyed on Deterministic.
//
// Concurrency: every metric is sharded across kSlots cells indexed by a
// per-thread ordinal, so parallel-engine workers touching the same
// counter do not contend on one cache line. All operations are lock-free
// relaxed atomics; the registry map itself is mutex-protected, so hot
// call sites should cache the returned reference (handles stay valid for
// the registry's lifetime — reset() zeroes values, never unregisters).
//
// Cost model: everything is gated behind obs::enabled() (the HJ_OBS=1
// environment variable or set_enabled()); a disabled hook is one relaxed
// atomic load and a predictable branch. Defining HJ_DISABLE_OBS for the
// whole build makes enabled() constexpr false, so every guarded hook is
// dead-code-eliminated.
#pragma once

#include <array>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/common.hpp"

namespace hj::obs {

/// Runtime gate. True when HJ_OBS=1 is in the environment or
/// set_enabled(true) was called (the CLI --metrics-out/--trace-out flags
/// and the `stats` subcommand do this). Compile-time: HJ_DISABLE_OBS
/// pins it to false so instrumentation folds away entirely.
#ifdef HJ_DISABLE_OBS
[[nodiscard]] inline constexpr bool enabled() noexcept { return false; }
inline void set_enabled(bool) noexcept {}
#else
[[nodiscard]] bool enabled() noexcept;
void set_enabled(bool on) noexcept;
#endif

/// Microseconds since the process's observability epoch (first call).
/// Shared clock of trace spans and rung-duration histograms.
[[nodiscard]] u64 now_us() noexcept;

/// Small dense per-thread ordinal (0, 1, 2, ... in first-use order);
/// also the trace `tid`. Stable for the thread's lifetime.
[[nodiscard]] u32 thread_ordinal() noexcept;

enum class Kind : u8 { Deterministic, Timing };

[[nodiscard]] const char* kind_name(Kind k) noexcept;

namespace detail {

inline constexpr u32 kSlots = 16;  // power of two; see slot()

[[nodiscard]] inline u32 slot() noexcept {
  return thread_ordinal() & (kSlots - 1);
}

/// One cache line per shard cell so concurrent writers do not false-share.
struct alignas(64) Cell {
  std::atomic<u64> v{0};
};

[[nodiscard]] inline u64 sum_cells(
    const std::array<Cell, kSlots>& cells) noexcept {
  u64 total = 0;
  for (const Cell& c : cells) total += c.v.load(std::memory_order_relaxed);
  return total;
}

inline void zero_cells(std::array<Cell, kSlots>& cells) noexcept {
  for (Cell& c : cells) c.v.store(0, std::memory_order_relaxed);
}

}  // namespace detail

/// Monotone event count. add() is wait-free; value() sums the shards
/// (u64 addition commutes: order-independent, hence deterministic for
/// Deterministic-kind observation sets).
class Counter {
 public:
  explicit Counter(Kind kind) noexcept : kind_(kind) {}

  void add(u64 n = 1) noexcept {
    cells_[detail::slot()].v.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] u64 value() const noexcept {
    return detail::sum_cells(cells_);
  }
  void reset() noexcept { detail::zero_cells(cells_); }
  [[nodiscard]] Kind kind() const noexcept { return kind_; }

 private:
  Kind kind_;
  std::array<detail::Cell, detail::kSlots> cells_;
};

/// Last-written point-in-time value (cache sizes, configured thread
/// counts). Not sharded: a gauge is a statement, not an accumulation, and
/// concurrent setters should be avoided by the instrumentation site.
class Gauge {
 public:
  explicit Gauge(Kind kind) noexcept : kind_(kind) {}

  void set(i64 v) noexcept { v_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] i64 value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }
  [[nodiscard]] Kind kind() const noexcept { return kind_; }

 private:
  Kind kind_;
  std::atomic<i64> v_{0};
};

/// Aggregated histogram state, comparable across runs and thread counts.
struct HistogramSnapshot {
  u64 count = 0;
  u64 sum = 0;
  u64 max = 0;
  std::vector<u64> buckets;  // one entry per Histogram bucket

  /// Approximate quantile (q in [0,1]) reconstructed from the bucket
  /// counts: find the bucket holding the q-th sample, interpolate
  /// linearly inside its [lo, 2*lo) range, and clamp to the observed
  /// max. Power-of-two buckets bound the error at <2x, tight enough for
  /// the p50/p99 stats surfaces; exact sample quantiles come from
  /// obs::percentile below.
  [[nodiscard]] u64 quantile(double q) const noexcept;

  friend bool operator==(const HistogramSnapshot&,
                         const HistogramSnapshot&) = default;
};

/// Exact nearest-rank percentile of raw samples (p in [0,1]); sorts a
/// copy. Shared by bench/exp_serve and the serve phase reports so every
/// published p50/p99 uses one formula.
[[nodiscard]] u64 percentile(std::vector<u64> samples, double p) noexcept;

/// Fixed power-of-two-bucket histogram of u64 samples. Bucket 0 counts
/// v == 0; bucket i (1 <= i < kBuckets-1) counts v in [2^(i-1), 2^i);
/// the last bucket absorbs the overflow tail. Fixed bounds keep bucket
/// assignment a pure function of the sample, so merged bucket counts are
/// bit-identical at every thread count (the determinism contract above).
class Histogram {
 public:
  static constexpr u32 kBuckets = 34;

  explicit Histogram(Kind kind) noexcept : kind_(kind) {}

  [[nodiscard]] static u32 bucket_of(u64 v) noexcept {
    if (v == 0) return 0;
    return std::min(log2_floor(v) + 1, kBuckets - 1);
  }
  /// Inclusive lower bound of bucket i (0, 1, 2, 4, 8, ...).
  [[nodiscard]] static u64 bucket_lo(u32 i) noexcept {
    return i == 0 ? 0 : u64{1} << (i - 1);
  }

  void observe(u64 v) noexcept {
    const u32 s = detail::slot();
    buckets_[bucket_of(v)][s].v.fetch_add(1, std::memory_order_relaxed);
    count_[s].v.fetch_add(1, std::memory_order_relaxed);
    sum_[s].v.fetch_add(v, std::memory_order_relaxed);
    // max merges with max(), which also commutes.
    u64 seen = max_.load(std::memory_order_relaxed);
    while (v > seen &&
           !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] u64 count() const noexcept {
    return detail::sum_cells(count_);
  }
  [[nodiscard]] u64 sum() const noexcept { return detail::sum_cells(sum_); }
  [[nodiscard]] u64 max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] u64 bucket(u32 i) const noexcept {
    return detail::sum_cells(buckets_[i]);
  }
  [[nodiscard]] double mean() const noexcept {
    const u64 n = count();
    return n ? static_cast<double>(sum()) / static_cast<double>(n) : 0.0;
  }
  [[nodiscard]] HistogramSnapshot snapshot() const;
  void reset() noexcept;
  [[nodiscard]] Kind kind() const noexcept { return kind_; }

 private:
  Kind kind_;
  std::array<std::array<detail::Cell, detail::kSlots>, kBuckets> buckets_;
  std::array<detail::Cell, detail::kSlots> count_;
  std::array<detail::Cell, detail::kSlots> sum_;
  std::atomic<u64> max_{0};
};

/// Name -> metric directory. Registration is idempotent (the first kind
/// wins and a conflicting re-registration throws); returned references
/// stay valid for the registry's lifetime, so call sites may cache them.
class Registry {
 public:
  static Registry& global();

  [[nodiscard]] Counter& counter(const std::string& name,
                                 Kind kind = Kind::Deterministic);
  [[nodiscard]] Gauge& gauge(const std::string& name,
                             Kind kind = Kind::Deterministic);
  [[nodiscard]] Histogram& histogram(const std::string& name,
                                     Kind kind = Kind::Deterministic);

  /// Zero every value; registrations (and cached handles) survive.
  void reset();

  /// Point-in-time copy of every aggregate, optionally restricted to one
  /// kind. Snapshot equality over Kind::Deterministic is the property the
  /// determinism suite asserts across HJ_THREADS 1/2/8.
  struct Snapshot {
    std::map<std::string, u64> counters;
    std::map<std::string, i64> gauges;
    std::map<std::string, HistogramSnapshot> histograms;

    friend bool operator==(const Snapshot&, const Snapshot&) = default;
  };
  [[nodiscard]] Snapshot snapshot(
      std::optional<Kind> only = std::nullopt) const;

  /// Deterministic JSON document (names sorted; histogram buckets emitted
  /// up to the last nonzero). The hj_embed --metrics-out payload.
  [[nodiscard]] std::string to_json() const;

  /// Human-readable run summary with ASCII bucket bars (hj_embed stats).
  [[nodiscard]] std::string summary() const;

 private:
  template <class M>
  M& intern(std::map<std::string, std::unique_ptr<M>>& map,
            const std::string& name, Kind kind);

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace hj::obs
