#include "obs/trace.hpp"

#include <sstream>

namespace hj::obs {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

Trace& Trace::global() {
  static Trace t;
  return t;
}

void Trace::record(TraceEvent event) {
  const std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

std::string Trace::to_json() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& e = events_[i];
    os << (i ? ",\n  " : "\n  ") << "{\"name\": \"" << json_escape(e.name)
       << "\", \"cat\": \"hj\", \"ph\": \"X\", \"ts\": " << e.ts_us
       << ", \"dur\": " << e.dur_us << ", \"pid\": 1, \"tid\": " << e.tid;
    if (e.has_arg) os << ", \"args\": {\"n\": " << e.arg << "}";
    os << "}";
  }
  os << (events_.empty() ? "]}\n" : "\n]}\n");
  return os.str();
}

void Trace::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

u64 Trace::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

}  // namespace hj::obs
