#include "obs/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <sstream>

namespace hj::obs {

namespace {

#ifndef HJ_DISABLE_OBS
bool env_enabled() {
  const char* v = std::getenv("HJ_OBS");
  return v != nullptr && v[0] == '1' && v[1] == '\0';
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> f{env_enabled()};
  return f;
}
#endif

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

/// Buckets up to the last nonzero one, as a JSON array of
/// [lower_bound, count] pairs (self-describing, viewer-friendly).
void append_buckets_json(std::ostringstream& os, const HistogramSnapshot& h) {
  u32 last = 0;
  for (u32 i = 0; i < h.buckets.size(); ++i)
    if (h.buckets[i]) last = i + 1;
  os << "[";
  for (u32 i = 0; i < last; ++i) {
    if (i) os << ", ";
    os << "[" << Histogram::bucket_lo(i) << ", " << h.buckets[i] << "]";
  }
  os << "]";
}

}  // namespace

#ifndef HJ_DISABLE_OBS
bool enabled() noexcept {
  return enabled_flag().load(std::memory_order_relaxed);
}

void set_enabled(bool on) noexcept {
  enabled_flag().store(on, std::memory_order_relaxed);
}
#endif

u64 now_us() noexcept {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return static_cast<u64>(std::chrono::duration_cast<std::chrono::microseconds>(
                              std::chrono::steady_clock::now() - epoch)
                              .count());
}

u32 thread_ordinal() noexcept {
  static std::atomic<u32> next{0};
  thread_local const u32 id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

const char* kind_name(Kind k) noexcept {
  return k == Kind::Deterministic ? "deterministic" : "timing";
}

u64 HistogramSnapshot::quantile(double q) const noexcept {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-th sample (nearest-rank on the cumulative counts).
  const u64 rank = static_cast<u64>(q * static_cast<double>(count - 1) + 0.5);
  u64 seen = 0;
  for (u32 i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    if (seen + buckets[i] > rank) {
      if (i == 0) return 0;
      const u64 lo = Histogram::bucket_lo(i);
      // Interpolate the rank's position inside the [lo, 2*lo) bucket.
      const double frac = static_cast<double>(rank - seen) /
                          static_cast<double>(buckets[i]);
      const u64 est = lo + static_cast<u64>(frac * static_cast<double>(lo));
      return std::min(est, max);
    }
    seen += buckets[i];
  }
  return max;
}

u64 percentile(std::vector<u64> samples, double p) noexcept {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[std::min(idx, samples.size() - 1)];
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot out;
  out.count = count();
  out.sum = sum();
  out.max = max();
  out.buckets.resize(kBuckets);
  for (u32 i = 0; i < kBuckets; ++i) out.buckets[i] = bucket(i);
  return out;
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) detail::zero_cells(b);
  detail::zero_cells(count_);
  detail::zero_cells(sum_);
  max_.store(0, std::memory_order_relaxed);
}

Registry& Registry::global() {
  static Registry r;
  return r;
}

template <class M>
M& Registry::intern(std::map<std::string, std::unique_ptr<M>>& map,
                    const std::string& name, Kind kind) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = map.find(name);
  if (it == map.end())
    it = map.emplace(name, std::make_unique<M>(kind)).first;
  else
    require(it->second->kind() == kind,
            "obs::Registry: metric '%s' re-registered as %s (was %s)",
            name.c_str(), kind_name(kind), kind_name(it->second->kind()));
  return *it->second;
}

Counter& Registry::counter(const std::string& name, Kind kind) {
  return intern(counters_, name, kind);
}

Gauge& Registry::gauge(const std::string& name, Kind kind) {
  return intern(gauges_, name, kind);
}

Histogram& Registry::histogram(const std::string& name, Kind kind) {
  return intern(histograms_, name, kind);
}

void Registry::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

Registry::Snapshot Registry::snapshot(std::optional<Kind> only) const {
  const std::lock_guard<std::mutex> lock(mu_);
  Snapshot out;
  for (const auto& [name, c] : counters_)
    if (!only || c->kind() == *only) out.counters[name] = c->value();
  for (const auto& [name, g] : gauges_)
    if (!only || g->kind() == *only) out.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_)
    if (!only || h->kind() == *only) out.histograms[name] = h->snapshot();
  return out;
}

std::string Registry::to_json() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
       << "\": {\"value\": " << c->value() << ", \"kind\": \""
       << kind_name(c->kind()) << "\"}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
       << "\": {\"value\": " << g->value() << ", \"kind\": \""
       << kind_name(g->kind()) << "\"}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    const HistogramSnapshot s = h->snapshot();
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
       << "\": {\"kind\": \"" << kind_name(h->kind())
       << "\", \"count\": " << s.count << ", \"sum\": " << s.sum
       << ", \"max\": " << s.max << ", \"buckets\": ";
    append_buckets_json(os, s);
    os << "}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

std::string Registry::summary() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  if (!counters_.empty()) {
    os << "counters:\n";
    for (const auto& [name, c] : counters_) {
      char line[128];
      std::snprintf(line, sizeof line, "  %-34s %12llu\n", name.c_str(),
                    static_cast<unsigned long long>(c->value()));
      os << line;
    }
  }
  if (!gauges_.empty()) {
    os << "gauges:\n";
    for (const auto& [name, g] : gauges_) {
      char line[128];
      std::snprintf(line, sizeof line, "  %-34s %12lld\n", name.c_str(),
                    static_cast<long long>(g->value()));
      os << line;
    }
  }
  for (const auto& [name, h] : histograms_) {
    const HistogramSnapshot s = h->snapshot();
    if (s.count == 0) continue;
    char head[200];
    std::snprintf(head, sizeof head,
                  "%s: count=%llu mean=%.1f p50=%llu p99=%llu max=%llu\n",
                  name.c_str(), static_cast<unsigned long long>(s.count),
                  h->mean(),
                  static_cast<unsigned long long>(s.quantile(0.50)),
                  static_cast<unsigned long long>(s.quantile(0.99)),
                  static_cast<unsigned long long>(s.max));
    os << head;
    u64 tallest = 1;
    for (u64 b : s.buckets) tallest = std::max(tallest, b);
    for (u32 i = 0; i < s.buckets.size(); ++i) {
      if (!s.buckets[i]) continue;
      const u32 bar =
          static_cast<u32>((s.buckets[i] * 40 + tallest - 1) / tallest);
      char lo[32];
      if (i == 0)
        std::snprintf(lo, sizeof lo, "0");
      else
        std::snprintf(lo, sizeof lo, ">=%llu",
                      static_cast<unsigned long long>(
                          Histogram::bucket_lo(i)));
      char line[128];
      std::snprintf(line, sizeof line, "  %-10s %10llu |", lo,
                    static_cast<unsigned long long>(s.buckets[i]));
      os << line << std::string(bar, '#') << "\n";
    }
  }
  return os.str();
}

}  // namespace hj::obs
