// hjembed: the structured event log — one JSON line per significant
// state change (a request admitted, a batch checkpointed, an epoch
// verdict, a cache outcome), built for three consumers at once:
//
//   1. the flight recorder: every emitted event is note()'d into the
//      crash ring, so a postmortem names the in-flight work;
//   2. a live stream: --events-out appends each line with a single
//      write(2), so a killed daemon leaves a parseable tail;
//   3. tests: an in-memory capture (bounded, drop-counted) that the
//      determinism suite compares bit-for-bit across HJ_THREADS.
//
// Schema (DESIGN.md §14). Every line is a flat JSON object:
//
//   {"ev":"serve.request","eid":"4c1f00c5","kind":"timing","sev":"info",
//    "comp":"serve","id":17,"shape":"3x5x7","ts_us":1234,"tid":0}
//
//   ev    dotted event name, subsystem first (same convention as metrics)
//   eid   FNV-1a hash of ev, fixed-width hex — a deterministic numeric id
//         stable across builds, for log pipelines that key on integers
//   kind  "det" | "timing" — the metrics Kind contract, verbatim:
//         Deterministic events are emitted from serial or canonically
//         ordered call sites, carry NO ts_us/tid fields, and their
//         concatenated stream is bit-identical at any HJ_THREADS;
//         Timing events append ts_us (obs::now_us) and tid and may
//         interleave freely.
//   sev   "debug" | "info" | "warn" | "error"
//   comp  emitting component ("serve", "store", "live", "planner", ...)
//   ...   event-specific keys, u64/i64/string values, insertion order
//
// Emission idiom (mirrors the metrics cached-handle hook):
//
//   if (obs::events_on()) {
//     obs::Event("serve.shed", obs::Kind::Timing, obs::Severity::Warn,
//                "serve")
//         .kv("id", id).kv("reason", "queue-full").emit();
//   }
//
// events_on() is false until a sink exists (HJ_OBS, a flight ring, or a
// stream fd), and constexpr false under HJ_DISABLE_OBS — so an
// uninstrumented run pays one relaxed load per site and a disabled
// build pays nothing. Event builds its line in a fixed stack buffer
// (no allocation on the hot path; overlong payloads are truncated).
#pragma once

#include <cstring>
#include <string>
#include <vector>

#include "core/common.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"

namespace hj::obs {

enum class Severity : u8 { Debug, Info, Warn, Error };

[[nodiscard]] const char* severity_name(Severity s) noexcept;

/// Deterministic 32-bit event id: FNV-1a of the event name. Stable
/// across builds and platforms; rendered as fixed-width hex in "eid".
[[nodiscard]] constexpr u32 event_id(const char* name) noexcept {
  u32 h = 2166136261u;
  for (const char* p = name; *p != '\0'; ++p) {
    h ^= static_cast<u32>(static_cast<unsigned char>(*p));
    h *= 16777619u;
  }
  return h;
}

/// Sink registry + capture buffer behind Event::emit(). All methods are
/// thread-safe; publish() is lock-free unless in-memory capture is on.
class EventLog {
 public:
  static EventLog& global();

  /// Route finished lines (NOT newline-terminated) to every active sink:
  /// always the flight ring; the stream fd when set; the in-memory
  /// capture when obs::enabled() (bounded at kCaptureCap, then dropped).
  void publish(Kind kind, const char* line, std::size_t len);

  /// Append each event line + '\n' to this fd with one write(2) (open
  /// with O_APPEND; crash leaves a parseable tail). -1 disables.
  void set_stream_fd(int fd) noexcept;
  [[nodiscard]] bool stream_active() const noexcept;

  /// In-memory capture (test + stats surface). Lines in emission order.
  [[nodiscard]] std::vector<std::string> events() const;
  /// Only Kind::Deterministic lines, concatenated with '\n' — the exact
  /// string the determinism property test compares across HJ_THREADS.
  [[nodiscard]] std::string deterministic_text() const;
  [[nodiscard]] u64 dropped() const noexcept;
  void clear();

  static constexpr std::size_t kCaptureCap = 65536;

 private:
  EventLog() = default;
};

#ifdef HJ_DISABLE_OBS
[[nodiscard]] inline constexpr bool events_on() noexcept { return false; }
#else
/// True when any event sink is live: HJ_OBS/set_enabled (capture),
/// a flight ring, or an --events-out stream. Emission sites gate on
/// this so an unobserved run skips all formatting.
[[nodiscard]] inline bool events_on() noexcept {
  return enabled() || flight::active() || EventLog::global().stream_active();
}
#endif

/// One event under construction: fixed stack buffer, chained kv()s,
/// emit() closes the object and publishes. Build only inside an
/// events_on() guard — construction does real formatting work.
class Event {
 public:
  static constexpr std::size_t kMaxLine = 480;  // < flight::kSlotBytes

  Event(const char* name, Kind kind, Severity sev, const char* component) noexcept;

  Event& kv(const char* key, u64 v) noexcept;
  Event& kv(const char* key, i64 v) noexcept;
  Event& kv(const char* key, u32 v) noexcept { return kv(key, static_cast<u64>(v)); }
  Event& kv(const char* key, int v) noexcept { return kv(key, static_cast<i64>(v)); }
  Event& kv(const char* key, const char* v) noexcept;
  Event& kv(const char* key, const std::string& v) noexcept { return kv(key, v.c_str()); }

  /// Close the JSON object (Timing events gain ts_us/tid here) and hand
  /// the line to EventLog::global().publish().
  void emit() noexcept;

  /// The line so far, without the closing brace (tests).
  [[nodiscard]] std::string partial() const { return std::string(buf_, len_); }

 private:
  void put(char c) noexcept;
  void put_str(const char* s) noexcept;
  void put_escaped(const char* s) noexcept;
  void put_u64(u64 v) noexcept;

  char buf_[kMaxLine];
  std::size_t len_ = 0;
  Kind kind_;
};

}  // namespace hj::obs
