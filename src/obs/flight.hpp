// hjembed: the crash flight recorder — an always-on, lock-free ring
// buffer of the last N event lines, dumpable from an async-signal-safe
// handler when the process dies (SIGSEGV/SIGABRT/SIGBUS/SIGFPE/SIGILL)
// or on demand (a live-run Failed verdict, a test).
//
// Two backings, one layout:
//
//   * anonymous  — flight::init(): a static in-process buffer. Survives
//     any catchable signal (the handler write(2)s the ring to the dump
//     path before re-raising), lost on SIGKILL.
//   * file-backed — flight::init_file(path): the same ring mmap(2)'d
//     MAP_SHARED over a file. The kernel owns the dirty pages, so the
//     ring survives even `kill -9` — the file IS the postmortem, no
//     handler needed. read_ring() decodes it offline (`hj_embed flight
//     <file>`).
//
// Ring layout (identical in memory and on disk): a 24-byte header
// (magic "HJFLT01\n", slot count, slot size, atomic head sequence)
// followed by slot_count fixed-size slots. A slot holds one event line,
// '\n'-terminated, zero-padded. note() is wait-free: one relaxed
// fetch_add to claim a sequence number, one bounded memcpy into the
// owned slot. A crash can tear at most the slot being written when the
// signal landed; readers validate each slot (printable bytes ending in
// '\n') and skip garbage, which is why the TAIL of a dump is always
// parseable even when the death was mid-write.
//
// Async-signal-safety rules (DESIGN.md §14): the dump path uses only
// open/write/close, integers are formatted by hand (no snprintf), the
// handler is re-entrancy-guarded with a sig_atomic_t, and it restores
// the default disposition and re-raises so exit codes stay honest
// (ASan's own SIGABRT from a failed check still dumps first).
//
// The recorder is fed by obs::EventLog (every emitted event is noted
// here) and costs nothing until init()/init_file() activates it; with
// HJ_DISABLE_OBS the emission sites above it are dead-code-eliminated.
#pragma once

#include <string>
#include <vector>

#include "core/common.hpp"

namespace hj::obs::flight {

inline constexpr u32 kDefaultSlots = 512;
inline constexpr u32 kSlotBytes = 256;
inline constexpr char kMagic[8] = {'H', 'J', 'F', 'L', 'T', '0', '1', '\n'};
inline constexpr u64 kHeaderBytes = 24;

/// True once init() or init_file() has attached a ring. Emission sites
/// gate on obs::events_on(), which includes this.
[[nodiscard]] bool active() noexcept;

/// Attach the anonymous in-process ring (idempotent; keeps an existing
/// ring, including a file-backed one).
void init(u32 slots = kDefaultSlots);

/// Attach a file-backed ring at `path` (created/truncated, then mmap'd
/// MAP_SHARED so the last-N events survive SIGKILL). Returns false and
/// falls back to the anonymous ring when the file cannot be mapped.
bool init_file(const std::string& path, u32 slots = kDefaultSlots);

/// Record one line (newline NOT required; one is stored). Wait-free,
/// lock-free, safe from any thread. No-op until a ring is attached.
void note(const char* line, std::size_t len) noexcept;

/// Sequence number of the next event (== events noted so far).
[[nodiscard]] u64 recorded() noexcept;

/// Write the ring, oldest to newest, to `fd` as validated text lines.
/// Async-signal-safe (write(2) only). Returns lines written.
u64 dump_fd(int fd) noexcept;

/// Dump to a file (truncate + dump_fd). Returns false when the file
/// cannot be opened or the ring is inactive.
bool dump(const std::string& path) noexcept;

/// Dump to the path registered by install_crash_handler(). False when
/// no handler/path is installed or the ring is inactive.
bool dump_to_configured() noexcept;

/// Install the fatal-signal handler (SIGSEGV/SIGABRT/SIGBUS/SIGFPE/
/// SIGILL): on death, the ring is appended to `dump_path` (or stderr
/// when the path is empty) with a one-line banner, then the default
/// disposition is restored and the signal re-raised. Also attaches the
/// anonymous ring if none is active. Idempotent; the latest path wins.
void install_crash_handler(const std::string& dump_path);

/// Restore the previous signal dispositions (tests).
void uninstall_crash_handler() noexcept;

/// Decode a file-backed ring (or a text dump — detected by the magic)
/// into lines, oldest to newest, skipping torn slots. Throws
/// std::invalid_argument when the file cannot be read.
[[nodiscard]] std::vector<std::string> read_ring(const std::string& path);

}  // namespace hj::obs::flight
