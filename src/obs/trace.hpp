// hjembed: structured trace spans in Chrome trace_event format.
//
// HJ_SPAN("plan") opens a span that closes when the scope exits; spans on
// the same thread nest by time containment, which is exactly how
// about:tracing / Perfetto reconstruct parent/child relationships from
// "X" (complete) events. A full plan_batch — factor search — verify
// pipeline or a run_stencil_with_recovery detect/diagnose/repair epoch
// therefore renders as a flame graph with no extra bookkeeping.
//
// Recording model: a span measures its duration locally (two now_us()
// reads) and pushes one completed event under the global trace mutex at
// scope exit — zero contention while the span is open, one short lock
// per span when it closes. Spans are only recorded while obs::enabled();
// a disabled HJ_SPAN costs one relaxed load and a branch, and defining
// HJ_DISABLE_OBS compiles it away entirely.
//
// Trace timestamps are wall-clock and therefore NOT part of the
// determinism contract (see metrics.hpp) — the span *structure* is
// deterministic for deterministic code, the timings never are.
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace hj::obs {

struct TraceEvent {
  std::string name;
  u64 ts_us = 0;   // span start, microseconds since the obs epoch
  u64 dur_us = 0;  // span duration
  u32 tid = 0;     // thread_ordinal() of the recording thread
  u64 arg = 0;     // optional numeric payload (e.g. batch size)
  bool has_arg = false;
};

class Trace {
 public:
  static Trace& global();

  void record(TraceEvent event);
  /// The Chrome trace_event JSON document ({"traceEvents": [...]}); load
  /// it in about:tracing or ui.perfetto.dev. Events are emitted in
  /// recording order (Chrome sorts by ts itself).
  [[nodiscard]] std::string to_json() const;
  void clear();
  [[nodiscard]] u64 size() const;

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

/// RAII span: captures the clock on construction when obs::enabled(),
/// records one complete event on destruction. Use via HJ_SPAN below.
class SpanGuard {
 public:
  explicit SpanGuard(const char* name) noexcept
      : name_(name), active_(enabled()) {
    if (active_) t0_ = now_us();
  }
  SpanGuard(const char* name, u64 arg) noexcept : SpanGuard(name) {
    arg_ = arg;
    has_arg_ = true;
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;
  ~SpanGuard() {
    if (!active_) return;
    TraceEvent e;
    e.name = name_;
    e.ts_us = t0_;
    e.dur_us = now_us() - t0_;
    e.tid = thread_ordinal();
    e.arg = arg_;
    e.has_arg = has_arg_;
    Trace::global().record(std::move(e));
  }

 private:
  const char* name_;
  u64 t0_ = 0;
  u64 arg_ = 0;
  bool active_ = false;
  bool has_arg_ = false;
};

}  // namespace hj::obs

#define HJ_OBS_CONCAT_INNER(a, b) a##b
#define HJ_OBS_CONCAT(a, b) HJ_OBS_CONCAT_INNER(a, b)

#ifndef HJ_DISABLE_OBS
/// Open a named trace span for the rest of the enclosing scope.
#define HJ_SPAN(name) \
  ::hj::obs::SpanGuard HJ_OBS_CONCAT(hj_obs_span_, __LINE__){name}
/// Span with a numeric payload, rendered as args.n in the trace viewer.
#define HJ_SPAN_N(name, n) \
  ::hj::obs::SpanGuard HJ_OBS_CONCAT(hj_obs_span_, __LINE__){ \
      name, static_cast<::hj::u64>(n)}
#else
#define HJ_SPAN(name) ((void)0)
#define HJ_SPAN_N(name, n) ((void)0)
#endif
