#include "obs/eventlog.hpp"

#include <unistd.h>

#include <atomic>
#include <mutex>

namespace hj::obs {
namespace {

// Capture state: a mutex-protected vector is fine here — capture is only
// active when obs::enabled(), i.e. in tests and explicitly observed
// runs, never on the default serve hot path.
struct Capture {
  std::mutex mu;
  std::vector<std::pair<Kind, std::string>> lines;
  u64 dropped = 0;
};

Capture& capture() {
  static Capture c;
  return c;
}

std::atomic<int> g_stream_fd{-1};

}  // namespace

const char* severity_name(Severity s) noexcept {
  switch (s) {
    case Severity::Debug: return "debug";
    case Severity::Info: return "info";
    case Severity::Warn: return "warn";
    case Severity::Error: return "error";
  }
  return "?";
}

EventLog& EventLog::global() {
  static EventLog log;
  return log;
}

void EventLog::publish(Kind kind, const char* line, std::size_t len) {
  flight::note(line, len);
  const int fd = g_stream_fd.load(std::memory_order_acquire);
  if (fd >= 0) {
    // One write(2) per line (the line already ends without '\n'; build a
    // terminated copy on the stack) so a killed process tears at most
    // the final line and the tail stays parseable.
    char out[Event::kMaxLine + 1];
    const std::size_t n = len < Event::kMaxLine ? len : Event::kMaxLine;
    std::memcpy(out, line, n);
    out[n] = '\n';
    (void)!::write(fd, out, n + 1);
  }
  if (enabled()) {
    Capture& c = capture();
    std::lock_guard<std::mutex> lock(c.mu);
    if (c.lines.size() < kCaptureCap)
      c.lines.emplace_back(kind, std::string(line, len));
    else
      ++c.dropped;
  }
}

void EventLog::set_stream_fd(int fd) noexcept {
  g_stream_fd.store(fd, std::memory_order_release);
}

bool EventLog::stream_active() const noexcept {
  return g_stream_fd.load(std::memory_order_acquire) >= 0;
}

std::vector<std::string> EventLog::events() const {
  Capture& c = capture();
  std::lock_guard<std::mutex> lock(c.mu);
  std::vector<std::string> out;
  out.reserve(c.lines.size());
  for (const auto& [kind, line] : c.lines) out.push_back(line);
  return out;
}

std::string EventLog::deterministic_text() const {
  Capture& c = capture();
  std::lock_guard<std::mutex> lock(c.mu);
  std::string out;
  for (const auto& [kind, line] : c.lines)
    if (kind == Kind::Deterministic) {
      out += line;
      out += '\n';
    }
  return out;
}

u64 EventLog::dropped() const noexcept {
  Capture& c = capture();
  std::lock_guard<std::mutex> lock(c.mu);
  return c.dropped;
}

void EventLog::clear() {
  Capture& c = capture();
  std::lock_guard<std::mutex> lock(c.mu);
  c.lines.clear();
  c.dropped = 0;
}

Event::Event(const char* name, Kind kind, Severity sev, const char* component) noexcept
    : kind_(kind) {
  put_str("{\"ev\":\"");
  put_escaped(name);
  put_str("\",\"eid\":\"");
  // Fixed-width hex of the FNV-1a id.
  const u32 id = event_id(name);
  for (int shift = 28; shift >= 0; shift -= 4) put("0123456789abcdef"[(id >> shift) & 0xf]);
  put_str("\",\"kind\":\"");
  put_str(kind == Kind::Deterministic ? "det" : "timing");
  put_str("\",\"sev\":\"");
  put_str(severity_name(sev));
  put_str("\",\"comp\":\"");
  put_escaped(component);
  put('"');
}

Event& Event::kv(const char* key, u64 v) noexcept {
  put_str(",\"");
  put_escaped(key);
  put_str("\":");
  put_u64(v);
  return *this;
}

Event& Event::kv(const char* key, i64 v) noexcept {
  put_str(",\"");
  put_escaped(key);
  put_str("\":");
  if (v < 0) {
    put('-');
    put_u64(static_cast<u64>(-(v + 1)) + 1);
  } else {
    put_u64(static_cast<u64>(v));
  }
  return *this;
}

Event& Event::kv(const char* key, const char* v) noexcept {
  put_str(",\"");
  put_escaped(key);
  put_str("\":\"");
  put_escaped(v == nullptr ? "" : v);
  put('"');
  return *this;
}

void Event::emit() noexcept {
  // The Kind contract: Deterministic lines must be pure functions of the
  // workload, so the clock and thread id are Timing-only fields.
  if (kind_ == Kind::Timing) {
    kv("ts_us", now_us());
    kv("tid", static_cast<u64>(thread_ordinal()));
  }
  buf_[len_++] = '}';  // put() caps len_ at kMaxLine-1, so this byte is reserved
  EventLog::global().publish(kind_, buf_, len_);
}

void Event::put(char c) noexcept {
  if (len_ < kMaxLine - 1) buf_[len_++] = c;  // reserve 1 byte for '}'
}

void Event::put_str(const char* s) noexcept {
  for (; *s != '\0'; ++s) put(*s);
}

void Event::put_escaped(const char* s) noexcept {
  for (; *s != '\0'; ++s) {
    const unsigned char c = static_cast<unsigned char>(*s);
    if (c == '"' || c == '\\') {
      put('\\');
      put(static_cast<char>(c));
    } else if (c < 0x20) {
      put(' ');  // control bytes would break the one-line invariant
    } else {
      put(static_cast<char>(c));
    }
  }
}

void Event::put_u64(u64 v) noexcept {
  char tmp[20];
  std::size_t n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v > 0);
  while (n > 0) put(tmp[--n]);
}

}  // namespace hj::obs
