#include "obs/flight.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <fstream>
#include <new>
#include <stdexcept>

namespace hj::obs::flight {
namespace {

// The on-disk and in-memory header. `head` is the next sequence number;
// slot for sequence s is s % slot_count. Fixed 24-byte layout so a
// file-backed ring is decodable by any build.
struct RingHeader {
  char magic[8];
  u32 slot_count;
  u32 slot_bytes;
  std::atomic<u64> head;
};
static_assert(sizeof(RingHeader) == kHeaderBytes, "ring header layout is part of the file format");
static_assert(std::atomic<u64>::is_always_lock_free, "note() must stay async-signal-safe");

// The active ring. `g_ring` flips non-null exactly once per attach and
// is read with acquire so note() from any thread sees initialized
// memory. Rings are never detached (the mapping must outlive crash
// handlers), only replaced.
std::atomic<RingHeader*> g_ring{nullptr};

constexpr u32 kMaxSlots = 1u << 20;

u64 ring_bytes(u32 slots) { return kHeaderBytes + static_cast<u64>(slots) * kSlotBytes; }

void init_header(RingHeader* h, u32 slots) {
  std::memcpy(h->magic, kMagic, sizeof(kMagic));
  h->slot_count = slots;
  h->slot_bytes = kSlotBytes;
  h->head.store(0, std::memory_order_relaxed);
}

char* slot_at(RingHeader* h, u64 seq) {
  return reinterpret_cast<char*>(h) + kHeaderBytes +
         static_cast<u64>(seq % h->slot_count) * h->slot_bytes;
}

// A slot is valid when it holds a non-empty run of printable bytes
// terminated by '\n' before the first NUL. Torn or never-written slots
// fail this and are skipped by every reader.
std::size_t valid_line_len(const char* slot, u32 slot_bytes) {
  for (u32 i = 0; i < slot_bytes; ++i) {
    const char c = slot[i];
    if (c == '\n') return i == 0 ? 0 : i + 1;
    if (c == '\0' || static_cast<unsigned char>(c) < 0x20 || static_cast<unsigned char>(c) > 0x7e)
      return 0;
  }
  return 0;
}

// --- crash handler state: plain arrays + sig_atomic_t only. ---
char g_dump_path[512] = {0};
volatile sig_atomic_t g_in_handler = 0;
bool g_handlers_installed = false;
struct sigaction g_prev[5];
const int kFatalSignals[5] = {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL};

void write_all(int fd, const char* p, std::size_t n) noexcept {
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w <= 0) return;  // best effort; nowhere to report from a handler
    p += w;
    n -= static_cast<std::size_t>(w);
  }
}

// Hand-rolled decimal formatting: snprintf is not async-signal-safe.
std::size_t format_u64(u64 v, char* out) noexcept {
  char tmp[20];
  std::size_t n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v > 0);
  for (std::size_t i = 0; i < n; ++i) out[i] = tmp[n - 1 - i];
  return n;
}

void crash_handler(int sig) {
  if (g_in_handler == 0) {
    g_in_handler = 1;
    if (g_ring.load(std::memory_order_acquire) != nullptr) {
      // Configured dump file, or stderr when none was set (a crashing
      // daemon's last words land in the operator's terminal/log).
      int fd = 2;
      bool close_fd = false;
      if (g_dump_path[0] != '\0') {
        const int f = ::open(g_dump_path, O_WRONLY | O_CREAT | O_APPEND, 0644);
        if (f >= 0) {
          fd = f;
          close_fd = true;
        }
      }
      char banner[64];
      std::size_t n = 0;
      const char* head = "# flight dump signal=";
      std::memcpy(banner + n, head, std::strlen(head));
      n += std::strlen(head);
      n += format_u64(static_cast<u64>(sig), banner + n);
      banner[n++] = '\n';
      write_all(fd, banner, n);
      dump_fd(fd);
      if (close_fd) ::close(fd);
    }
  }
  // Re-raise with the default disposition so the process still dies
  // with the honest signal (and ASan/test harnesses see it).
  signal(sig, SIG_DFL);
  raise(sig);
}

}  // namespace

bool active() noexcept { return g_ring.load(std::memory_order_acquire) != nullptr; }

void init(u32 slots) {
  if (active()) return;
  require(slots > 0 && slots <= kMaxSlots, "flight ring slots out of range: %u", slots);
  void* raw = operator new(ring_bytes(slots));
  std::memset(raw, 0, ring_bytes(slots));
  auto* mem = new (raw) RingHeader;
  init_header(mem, slots);
  g_ring.store(mem, std::memory_order_release);
}

bool init_file(const std::string& path, u32 slots) {
  require(slots > 0 && slots <= kMaxSlots, "flight ring slots out of range: %u", slots);
  const u64 bytes = ring_bytes(slots);
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    init(slots);
    return false;
  }
  if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
    ::close(fd);
    init(slots);
    return false;
  }
  void* map = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (map == MAP_FAILED) {
    init(slots);
    return false;
  }
  auto* h = new (map) RingHeader;
  init_header(h, slots);
  g_ring.store(h, std::memory_order_release);
  return true;
}

void note(const char* line, std::size_t len) noexcept {
  RingHeader* h = g_ring.load(std::memory_order_acquire);
  if (h == nullptr || line == nullptr) return;
  const u64 seq = h->head.fetch_add(1, std::memory_order_relaxed);
  char* slot = slot_at(h, seq);
  const std::size_t cap = h->slot_bytes - 1;  // room for '\n'
  if (len > cap) len = cap;
  // Invalidate first so a concurrent/crashing reader never sees the old
  // line's tail stitched onto the new line's head.
  slot[0] = '\0';
  std::memcpy(slot, line, len);
  slot[len] = '\n';
  if (len + 1 < h->slot_bytes) std::memset(slot + len + 1, 0, h->slot_bytes - len - 1);
}

u64 recorded() noexcept {
  RingHeader* h = g_ring.load(std::memory_order_acquire);
  return h == nullptr ? 0 : h->head.load(std::memory_order_relaxed);
}

u64 dump_fd(int fd) noexcept {
  RingHeader* h = g_ring.load(std::memory_order_acquire);
  if (h == nullptr) return 0;
  const u64 head = h->head.load(std::memory_order_relaxed);
  const u64 count = head < h->slot_count ? head : h->slot_count;
  u64 written = 0;
  for (u64 i = 0; i < count; ++i) {
    const char* slot = slot_at(h, head - count + i);
    const std::size_t len = valid_line_len(slot, h->slot_bytes);
    if (len == 0) continue;
    write_all(fd, slot, len);
    ++written;
  }
  return written;
}

bool dump(const std::string& path) noexcept {
  if (!active()) return false;
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  dump_fd(fd);
  ::close(fd);
  return true;
}

bool dump_to_configured() noexcept {
  if (g_dump_path[0] == '\0' || !active()) return false;
  const int fd = ::open(g_dump_path, O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return false;
  dump_fd(fd);
  ::close(fd);
  return true;
}

void install_crash_handler(const std::string& dump_path) {
  require(dump_path.size() < sizeof(g_dump_path), "flight dump path too long: %zu bytes",
          dump_path.size());
  if (!active()) init();
  std::memcpy(g_dump_path, dump_path.c_str(), dump_path.size() + 1);
  if (g_handlers_installed) return;
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = crash_handler;
  sigemptyset(&sa.sa_mask);
  for (std::size_t i = 0; i < 5; ++i) sigaction(kFatalSignals[i], &sa, &g_prev[i]);
  g_handlers_installed = true;
}

void uninstall_crash_handler() noexcept {
  if (!g_handlers_installed) return;
  for (std::size_t i = 0; i < 5; ++i) sigaction(kFatalSignals[i], &g_prev[i], nullptr);
  g_handlers_installed = false;
  g_dump_path[0] = '\0';
}

std::vector<std::string> read_ring(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  require(in.good(), "cannot open flight ring '%s'", path.c_str());
  std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  std::vector<std::string> lines;
  const bool is_ring = bytes.size() >= kHeaderBytes && std::memcmp(bytes.data(), kMagic, 8) == 0;
  if (!is_ring) {
    // A text dump (from dump()/the crash handler): split on newlines.
    std::size_t pos = 0;
    while (pos < bytes.size()) {
      const std::size_t nl = bytes.find('\n', pos);
      if (nl == std::string::npos) break;  // drop the torn final line
      if (nl > pos) lines.push_back(bytes.substr(pos, nl - pos));
      pos = nl + 1;
    }
    return lines;
  }
  // Decode via a trivially-copyable mirror of RingHeader (the atomic
  // member blocks memcpy into the real struct).
  struct PlainHeader {
    char magic[8];
    u32 slot_count;
    u32 slot_bytes;
    u64 head;
  };
  static_assert(sizeof(PlainHeader) == kHeaderBytes);
  PlainHeader hdr;
  std::memcpy(&hdr, bytes.data(), kHeaderBytes);
  const u32 slots = hdr.slot_count;
  const u32 slot_bytes = hdr.slot_bytes;
  require(slots > 0 && slots <= kMaxSlots && slot_bytes > 0 && slot_bytes <= 4096,
          "flight ring '%s' has corrupt geometry (%u slots x %u bytes)", path.c_str(), slots,
          slot_bytes);
  require(bytes.size() >= kHeaderBytes + static_cast<u64>(slots) * slot_bytes,
          "flight ring '%s' truncated", path.c_str());
  const u64 head = hdr.head;
  const u64 count = head < slots ? head : slots;
  for (u64 i = 0; i < count; ++i) {
    const u64 seq = head - count + i;
    const char* slot = bytes.data() + kHeaderBytes + (seq % slots) * static_cast<u64>(slot_bytes);
    const std::size_t len = valid_line_len(slot, slot_bytes);
    if (len > 1) lines.emplace_back(slot, len - 1);  // strip '\n'
  }
  return lines;
}

}  // namespace hj::obs::flight
