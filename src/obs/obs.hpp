// hjembed: observability umbrella — include this from instrumentation
// sites. Hook idiom (the pattern every instrumented module uses):
//
//   if (obs::enabled()) {
//     static obs::Counter& hits =
//         obs::Registry::global().counter("plancache.hits",
//                                         obs::Kind::Timing);
//     hits.add();
//   }
//   HJ_SPAN("plan_batch");           // scope-wide trace span
//
// The static reference makes the registry lookup once per call site; the
// enabled() gate keeps the disabled cost at one relaxed load. With
// HJ_DISABLE_OBS defined (cmake -DHJ_DISABLE_OBS=ON) enabled() is
// constexpr false and the whole block is dead-code-eliminated.
//
// Metric naming: dotted lowercase paths, subsystem first —
// plancache.*, plan.batch.*, planner.*, par.*, sim.*, recovery.*,
// live.*, serve.*, store.*. Kind::Deterministic only for observation
// sets that are pure functions of the workload (see the contract in
// metrics.hpp).
//
// Event idiom (eventlog.hpp): state changes worth a postmortem line use
//
//   if (obs::events_on()) {
//     obs::Event("live.verdict", obs::Kind::Deterministic,
//                obs::Severity::Warn, "live")
//         .kv("verdict", "degraded").kv("epochs", epochs).emit();
//   }
//
// Every emitted event also lands in the flight recorder ring
// (flight.hpp), so the last ~512 events survive a crash. Deterministic
// events must come from serial/ordered call sites and never carry
// timestamps; Timing events may be emitted anywhere.
#pragma once

#include "obs/eventlog.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
