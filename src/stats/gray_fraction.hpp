// hjembed: the Gray-code coverage statistics of Theorem 2 / Figure 1.
//
// Model: for a random axis length l, the ratio a = l / ceil2(l) is
// asymptotically uniform on (1/2, 1]. Gray code is minimal for a k-D mesh
// iff the product of the ratios exceeds 1/2, so the asymptotic fraction of
// k-D meshes with minimal Gray expansion is
//
//     f_k(1/2) = 2^k (1 - 1/2 sum_{i<k} ln^i 2 / i!)        (Theorem 2)
//
// and more generally P(prod a_i >= alpha) = f_k(alpha). This module gives
// the closed forms, the full expansion distribution (via inclusion-
// exclusion over the box constraints), Monte Carlo estimators of both the
// continuous model and the finite domain, and exact finite-domain counts
// for small k.
#pragma once

#include <vector>

#include "core/common.hpp"

namespace hj::stats {

/// Closed form f_k(alpha) = P(prod_{i<k} a_i >= alpha), a_i ~ U(1/2, 1],
/// valid for alpha in [1/2, 1].
[[nodiscard]] double f_k(u32 k, double alpha);

/// Theorem 2's headline value f_k(1/2): the asymptotic fraction of k-D
/// meshes for which binary-reflected Gray code embedding is minimal.
[[nodiscard]] double gray_minimal_fraction(u32 k);

/// P(Gray expansion == 2^beta) for beta = 0..k under the continuous model
/// (the returned vector has k+1 entries summing to 1).
[[nodiscard]] std::vector<double> gray_expansion_distribution(u32 k);

/// Monte Carlo estimate of gray_minimal_fraction under the continuous
/// model; converges to the closed form (used as a cross-check).
[[nodiscard]] double gray_minimal_fraction_mc(u32 k, u64 samples,
                                              u64 seed = 42);

/// Exact fraction of meshes with axes in [1, 2^n] whose Gray embedding is
/// minimal. Supported for k <= 3 (axis symmetry makes n = 9, k = 3 cheap).
[[nodiscard]] double gray_minimal_fraction_exact(u32 k, u32 n);

/// Monte Carlo estimate of the finite-domain fraction for any k.
[[nodiscard]] double gray_minimal_fraction_domain_mc(u32 k, u32 n,
                                                     u64 samples,
                                                     u64 seed = 42);

}  // namespace hj::stats
