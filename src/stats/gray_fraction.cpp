#include "stats/gray_fraction.hpp"

#include <cmath>
#include <random>

namespace hj::stats {
namespace {

constexpr double kLn2 = 0.6931471805599453;

/// Regularized lower incomplete gamma P(k, x) for integer k >= 1:
/// P(k, x) = 1 - e^{-x} sum_{i<k} x^i / i!.
double gamma_cdf(u32 k, double x) {
  if (x <= 0) return 0.0;
  double sum = 0.0, term = 1.0;
  for (u32 i = 0; i < k; ++i) {
    sum += term;
    term *= x / static_cast<double>(i + 1);
  }
  return 1.0 - std::exp(-x) * sum;
}

/// CDF of S = sum of k iid variables with density 2 e^{-b} on [0, ln 2):
/// inclusion-exclusion over the box constraints (b = -ln a).
double sum_cdf(u32 k, double t) {
  if (t <= 0) return 0.0;
  if (t >= static_cast<double>(k) * kLn2) return 1.0;
  double acc = 0.0;
  double binom = 1.0;  // C(k, j)
  double sign = 1.0;
  double scale = 1.0;  // e^{-j ln2} = 2^{-j}
  for (u32 j = 0; j <= k; ++j) {
    const double shifted = t - static_cast<double>(j) * kLn2;
    if (shifted <= 0) break;
    acc += sign * binom * scale * gamma_cdf(k, shifted);
    sign = -sign;
    binom = binom * static_cast<double>(k - j) / static_cast<double>(j + 1);
    scale *= 0.5;
  }
  return std::pow(2.0, static_cast<double>(k)) * acc;
}

}  // namespace

double f_k(u32 k, double alpha) {
  require(k >= 1, "f_k: k must be >= 1");
  require(alpha >= 0.5 && alpha <= 1.0, "f_k: alpha must be in [1/2, 1]");
  // P(prod a_i >= alpha) = P(S <= -ln alpha), and -ln alpha <= ln 2 keeps
  // the simplex inside the box: the plain Gamma CDF suffices.
  const double t = -std::log(alpha);
  return std::pow(2.0, static_cast<double>(k)) * gamma_cdf(k, t);
}

double gray_minimal_fraction(u32 k) { return f_k(k, 0.5); }

std::vector<double> gray_expansion_distribution(u32 k) {
  require(k >= 1, "gray_expansion_distribution: k must be >= 1");
  // Expansion is 2^beta iff S = -ln prod(a_i) lands in
  // [beta ln2, (beta+1) ln2).
  std::vector<double> out(k + 1, 0.0);
  double prev = 0.0;
  for (u32 beta = 0; beta <= k; ++beta) {
    const double next = sum_cdf(k, static_cast<double>(beta + 1) * kLn2);
    out[beta] = next - prev;
    prev = next;
  }
  return out;
}

double gray_minimal_fraction_mc(u32 k, u64 samples, u64 seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> half(0.5, 1.0);
  u64 hits = 0;
  for (u64 s = 0; s < samples; ++s) {
    double prod = 1.0;
    for (u32 i = 0; i < k; ++i) prod *= half(rng);
    if (prod > 0.5) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(samples);
}

double gray_minimal_fraction_exact(u32 k, u32 n) {
  require(k >= 1 && k <= 3, "gray_minimal_fraction_exact: k <= 3 only");
  const u64 side = u64{1} << n;
  u64 hits = 0, total = 0;
  auto minimal = [](u64 a, u64 b, u64 c) {
    return ceil_pow2(a) * ceil_pow2(b) * ceil_pow2(c) == ceil_pow2(a * b * c);
  };
  if (k == 1) return 1.0;  // one axis: always minimal
  if (k == 2) {
    for (u64 a = 1; a <= side; ++a)
      for (u64 b = a; b <= side; ++b) {
        const u64 w = (a == b) ? 1 : 2;
        total += w;
        if (minimal(a, b, 1)) hits += w;
      }
    return static_cast<double>(hits) / static_cast<double>(total);
  }
  for (u64 a = 1; a <= side; ++a)
    for (u64 b = a; b <= side; ++b)
      for (u64 c = b; c <= side; ++c) {
        const u64 w = (a == b && b == c) ? 1 : (a == b || b == c) ? 3 : 6;
        total += w;
        if (minimal(a, b, c)) hits += w;
      }
  return static_cast<double>(hits) / static_cast<double>(total);
}

double gray_minimal_fraction_domain_mc(u32 k, u32 n, u64 samples, u64 seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<u64> len(1, u64{1} << n);
  u64 hits = 0;
  for (u64 s = 0; s < samples; ++s) {
    u32 bits = 0;
    double logp = 0.0;
    for (u32 i = 0; i < k; ++i) {
      const u64 l = len(rng);
      bits += log2_ceil(l);
      logp += std::log2(static_cast<double>(l));
    }
    // Minimal iff sum ceil-log bits == ceil(sum log2 l). Use the exact
    // integer product when it fits to avoid float edge cases.
    if (static_cast<double>(bits) < logp + 1.0 - 1e-12) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(samples);
}

}  // namespace hj::stats
