// hjembed: fault model and injection for the cube-network simulator.
//
// Layers simulation-time behaviour on top of the structural hj::FaultSet:
//
//   * Permanent faults (dead nodes / links) come from the embedded
//     FaultSet. A route crossing one can never be delivered; the simulator
//     reports the message as failed instead of stalling to max_cycles.
//   * Transient link faults: every directed link independently drops all
//     flit transmissions attempted on it during a cycle with probability
//     `drop_p`. Drops are derived from a counter-based hash of
//     (seed, cycle, link), so a given seed yields the identical fault
//     trace regardless of message count, arbitration order, or which
//     queries are made — same seed, same SimResult, reproducibly.
//
// A dropped transmission is retried by the simulator (the iPSC-era
// link-level retry); retries per message are bounded (SimConfig::
// max_retries), after which the message is declared failed — the
// "bounded retry with timeout" discipline, the timeout being the global
// max_cycles cap.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/fault.hpp"

namespace hj::sim {

/// One flapping (intermittently dead) undirected link: transmissions on
/// it fail during the first `down` cycles of every `period`-cycle
/// window, offset by `phase`. Deterministic — link state is a pure
/// function of the absolute cycle — so a flapping link exercises the
/// quarantine / un-quarantine probe loop reproducibly: it trips the
/// detection layer while down, serves traffic again once probed back in
/// while up, and re-trips on the next down window.
struct FlapSpec {
  CubeNode a = 0;
  CubeNode b = 0;
  u64 period = 32;
  u64 down = 8;
  u64 phase = 0;
};

/// Permanent failed nodes/links plus seeded transient link faults.
class FaultModel {
 public:
  FaultModel() = default;
  explicit FaultModel(FaultSet permanent) : permanent_(std::move(permanent)) {}

  /// Structural (permanent) faults; mutate freely before the run.
  [[nodiscard]] FaultSet& permanent() noexcept { return permanent_; }
  [[nodiscard]] const FaultSet& permanent() const noexcept {
    return permanent_;
  }

  /// Enable transient faults: each directed link drops the transmissions
  /// attempted on it in a given cycle with probability `p`.
  void set_transient(double p, u64 seed) {
    require(p >= 0.0 && p < 1.0,
            "FaultModel::set_transient: drop probability %f outside [0, 1)",
            p);
    drop_p_ = p;
    seed_ = seed;
    // Probability threshold in fixed point: drop iff hash < p * 2^64.
    threshold_ = p <= 0.0
                     ? 0
                     : static_cast<u64>(p * 18446744073709551616.0 /* 2^64 */);
  }

  [[nodiscard]] double drop_p() const noexcept { return drop_p_; }
  [[nodiscard]] u64 seed() const noexcept { return seed_; }
  [[nodiscard]] bool has_transient() const noexcept { return threshold_ != 0; }

  /// Register a flapping link (see FlapSpec). Re-registering the same
  /// link replaces its spec.
  void add_flapping(const FlapSpec& f) {
    require(Hypercube::adjacent(f.a, f.b),
            "FaultModel::add_flapping: %llu-%llu is not a cube link",
            static_cast<unsigned long long>(f.a),
            static_cast<unsigned long long>(f.b));
    require(f.period >= 1 && f.down < f.period,
            "FaultModel::add_flapping: down window (%llu) must be shorter "
            "than the period (%llu), or the link is simply dead",
            static_cast<unsigned long long>(f.down),
            static_cast<unsigned long long>(f.period));
    flapping_[Hypercube::edge_key(f.a, f.b)] = f;
  }

  [[nodiscard]] bool has_flapping() const noexcept {
    return !flapping_.empty();
  }
  [[nodiscard]] std::size_t num_flapping() const noexcept {
    return flapping_.size();
  }

  /// True iff the undirected link between adjacent `x` and `y` is in a
  /// down window at `cycle`. Pure function of (spec, cycle).
  [[nodiscard]] bool flapping_down(u64 cycle, CubeNode x,
                                   CubeNode y) const noexcept {
    if (flapping_.empty()) return false;
    const auto it = flapping_.find(Hypercube::edge_key(x, y));
    if (it == flapping_.end()) return false;
    const FlapSpec& f = it->second;
    return (cycle + f.phase) % f.period < f.down;
  }

  /// True iff the directed link `link_id` drops transmissions in `cycle`.
  /// Pure function of (seed, cycle, link_id): deterministic and order-free.
  [[nodiscard]] bool drops(u64 cycle, u64 link_id) const noexcept {
    if (threshold_ == 0) return false;
    return mix(seed_ ^ (cycle * 0x9e3779b97f4a7c15ull) ^
               (link_id * 0xbf58476d1ce4e5b9ull)) < threshold_;
  }

 private:
  /// splitmix64 finalizer: a well-mixed 64-bit hash of the counter state.
  [[nodiscard]] static u64 mix(u64 x) noexcept {
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
  }

  FaultSet permanent_;
  double drop_p_ = 0.0;
  u64 seed_ = 0;
  u64 threshold_ = 0;
  std::unordered_map<u64, FlapSpec> flapping_;  // Hypercube::edge_key
};

/// One timed permanent-fault arrival: at the start of `cycle`, the node
/// `a` (is_node) or the undirected link `a`-`b` dies and stays dead.
struct FaultEvent {
  u64 cycle = 0;
  bool is_node = true;
  CubeNode a = 0;
  CubeNode b = 0;  // link far end; unused for node events

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const FaultEvent& x, const FaultEvent& y) noexcept {
    return x.cycle == y.cycle && x.is_node == y.is_node && x.a == y.a &&
           x.b == y.b;
  }
};

/// A timed sequence of permanent fault arrivals applied *while a
/// simulation is running* (the live-recovery scenario: iPSC-era cubes
/// lost nodes and links mid-computation). Events are kept sorted by
/// (cycle, node-before-link, address) and validated on construction —
/// each piece of hardware may die at most once, and a duplicate arrival
/// is rejected with a formatted require() — so a schedule is a
/// canonical, de-duplicated, deterministic object: the same schedule
/// replayed against the same seed yields the identical simulation,
/// detection trace and RecoveryLog.
class FaultSchedule {
 public:
  FaultSchedule() = default;

  void add_node_failure(u64 cycle, CubeNode v);
  void add_link_failure(u64 cycle, CubeNode a, CubeNode b);

  [[nodiscard]] const std::vector<FaultEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }

  /// Add every event with event.cycle <= cycle to `into`, advancing
  /// `cursor` (an index into events()). Call with a monotonically
  /// non-decreasing cycle and the same cursor to replay incrementally.
  void apply_until(u64 cycle, FaultSet& into, std::size_t& cursor) const;

  /// Ground-truth diagnosis of a suspected link: the earliest event with
  /// cycle <= `up_to_cycle` that explains a failing `u`->`v` transmission
  /// (a dead endpoint node, or the dead link itself). Empty when no
  /// arrival explains it — the suspect was a persistent transient.
  [[nodiscard]] std::optional<FaultEvent> diagnose(CubeNode u, CubeNode v,
                                                   u64 up_to_cycle) const;

  /// Parse the `--fault-schedule` file format: one arrival per line,
  ///   <cycle> node <v>
  ///   <cycle> link <a> <b>
  /// Blank lines and lines starting with '#' are ignored. Throws
  /// std::invalid_argument naming the offending line on malformed input.
  [[nodiscard]] static FaultSchedule parse(const std::string& text);
  [[nodiscard]] static FaultSchedule load(const std::string& file);

  /// Seeded-deterministic random schedule inside Q_{cube_dim}:
  /// `node_events` + `link_events` distinct arrivals at cycles
  /// first_cycle, first_cycle + spacing, ... (nodes and links
  /// interleaved). Pure function of its arguments.
  [[nodiscard]] static FaultSchedule random(u32 cube_dim, u32 node_events,
                                            u32 link_events, u64 first_cycle,
                                            u64 spacing, u64 seed);

 private:
  void insert(FaultEvent e);

  std::vector<FaultEvent> events_;  // sorted; see class comment
};

/// Parse a fault specification, e.g. "node=5,link=3-7,p=0.01,seed=42":
/// comma-separated terms `node=<v>` (failed node), `link=<a>-<b>` (failed
/// link between adjacent nodes), `p=<prob>` (transient drop probability),
/// `seed=<s>` (transient fault seed). Used by the hj_embed CLI `--faults`
/// flag and the fault-resilience bench. Throws std::invalid_argument on a
/// malformed spec.
[[nodiscard]] FaultModel parse_fault_spec(const std::string& spec);

}  // namespace hj::sim
