// hjembed: fault model and injection for the cube-network simulator.
//
// Layers simulation-time behaviour on top of the structural hj::FaultSet:
//
//   * Permanent faults (dead nodes / links) come from the embedded
//     FaultSet. A route crossing one can never be delivered; the simulator
//     reports the message as failed instead of stalling to max_cycles.
//   * Transient link faults: every directed link independently drops all
//     flit transmissions attempted on it during a cycle with probability
//     `drop_p`. Drops are derived from a counter-based hash of
//     (seed, cycle, link), so a given seed yields the identical fault
//     trace regardless of message count, arbitration order, or which
//     queries are made — same seed, same SimResult, reproducibly.
//
// A dropped transmission is retried by the simulator (the iPSC-era
// link-level retry); retries per message are bounded (SimConfig::
// max_retries), after which the message is declared failed — the
// "bounded retry with timeout" discipline, the timeout being the global
// max_cycles cap.
#pragma once

#include <string>

#include "core/fault.hpp"

namespace hj::sim {

/// Permanent failed nodes/links plus seeded transient link faults.
class FaultModel {
 public:
  FaultModel() = default;
  explicit FaultModel(FaultSet permanent) : permanent_(std::move(permanent)) {}

  /// Structural (permanent) faults; mutate freely before the run.
  [[nodiscard]] FaultSet& permanent() noexcept { return permanent_; }
  [[nodiscard]] const FaultSet& permanent() const noexcept {
    return permanent_;
  }

  /// Enable transient faults: each directed link drops the transmissions
  /// attempted on it in a given cycle with probability `p`.
  void set_transient(double p, u64 seed) {
    require(p >= 0.0 && p < 1.0,
            "FaultModel::set_transient: drop probability %f outside [0, 1)",
            p);
    drop_p_ = p;
    seed_ = seed;
    // Probability threshold in fixed point: drop iff hash < p * 2^64.
    threshold_ = p <= 0.0
                     ? 0
                     : static_cast<u64>(p * 18446744073709551616.0 /* 2^64 */);
  }

  [[nodiscard]] double drop_p() const noexcept { return drop_p_; }
  [[nodiscard]] u64 seed() const noexcept { return seed_; }
  [[nodiscard]] bool has_transient() const noexcept { return threshold_ != 0; }

  /// True iff the directed link `link_id` drops transmissions in `cycle`.
  /// Pure function of (seed, cycle, link_id): deterministic and order-free.
  [[nodiscard]] bool drops(u64 cycle, u64 link_id) const noexcept {
    if (threshold_ == 0) return false;
    return mix(seed_ ^ (cycle * 0x9e3779b97f4a7c15ull) ^
               (link_id * 0xbf58476d1ce4e5b9ull)) < threshold_;
  }

 private:
  /// splitmix64 finalizer: a well-mixed 64-bit hash of the counter state.
  [[nodiscard]] static u64 mix(u64 x) noexcept {
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
  }

  FaultSet permanent_;
  double drop_p_ = 0.0;
  u64 seed_ = 0;
  u64 threshold_ = 0;
};

/// Parse a fault specification, e.g. "node=5,link=3-7,p=0.01,seed=42":
/// comma-separated terms `node=<v>` (failed node), `link=<a>-<b>` (failed
/// link between adjacent nodes), `p=<prob>` (transient drop probability),
/// `seed=<s>` (transient fault seed). Used by the hj_embed CLI `--faults`
/// flag and the fault-resilience bench. Throws std::invalid_argument on a
/// malformed spec.
[[nodiscard]] FaultModel parse_fault_spec(const std::string& spec);

}  // namespace hj::sim
