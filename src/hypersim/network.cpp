#include "hypersim/network.hpp"

#include <algorithm>
#include <unordered_map>

#include "core/bitword.hpp"
#include "obs/obs.hpp"

namespace hj::sim {
namespace {

/// Directed link id: source node * dim + flipped bit.
u64 link_id(CubeNode from, CubeNode to, u32 dim) {
  require(Hypercube::adjacent(from, to),
          "link_id: nodes %llu and %llu are not cube-adjacent",
          static_cast<unsigned long long>(from),
          static_cast<unsigned long long>(to));
  return from * dim + static_cast<u64>(std::countr_zero(from ^ to));
}

}  // namespace

CubeNetwork::CubeNetwork(SimConfig config) : config_(config) {
  require(config_.cube_dim <= 30, "CubeNetwork: cube too large to simulate");
  require(config_.link_bandwidth >= 1, "CubeNetwork: bandwidth must be >= 1");
  require(config_.message_flits >= 1, "CubeNetwork: empty messages");
  require(config_.detect_threshold >= 1,
          "CubeNetwork: detect_threshold must be >= 1 (a link cannot be "
          "suspected after zero failures); the default is 4");
  require(config_.detect_threshold <= config_.max_retries,
          "CubeNetwork: detect_threshold (%u) must not exceed max_retries "
          "(%u), or messages exhaust their retry budget before the "
          "detection layer can fire",
          config_.detect_threshold, config_.max_retries);
  require(config_.watchdog_cycles >= 1,
          "CubeNetwork: watchdog_cycles must be >= 1 (a zero-cycle watchdog "
          "would flag every message instantly); the default is 4096");
}

u64 CubeNetwork::add_message(CubePath route, i64 after) {
  const Hypercube host(config_.cube_dim);
  require(!route.empty(), "add_message: empty route");
  require(after < static_cast<i64>(routes_.size()),
          "add_message: dependency on a message not yet queued");
  for (std::size_t i = 0; i + 1 < route.size(); ++i)
    require(host.contains(route[i]) &&
                Hypercube::adjacent(route[i], route[i + 1]),
            "add_message: route must follow cube links");
  routes_.push_back(std::move(route));
  deps_.push_back(after);
  return routes_.size() - 1;
}

void CubeNetwork::add_stencil_exchange(const Embedding& emb) {
  require(emb.host_dim() == config_.cube_dim,
          "add_stencil_exchange: embedding host does not match the network");
  emb.guest().for_each_edge([&](const MeshEdge& e) {
    CubePath fwd = emb.edge_path(e);
    if (fwd.size() < 2) return;  // contracted edge: same processor
    CubePath rev = fwd;
    rev.reverse();
    routes_.push_back(std::move(fwd));
    deps_.push_back(-1);
    routes_.push_back(std::move(rev));
    deps_.push_back(-1);
  });
}

void CubeNetwork::add_axis_shift(const Embedding& emb, u32 axis) {
  require(emb.host_dim() == config_.cube_dim,
          "add_axis_shift: embedding host does not match the network");
  emb.guest().for_each_edge([&](const MeshEdge& e) {
    if (e.axis != axis) return;
    CubePath p = emb.edge_path(e);
    if (p.size() < 2) return;
    routes_.push_back(std::move(p));
    deps_.push_back(-1);
  });
}

void CubeNetwork::add_broadcast(const Embedding& emb, MeshIndex root) {
  require(emb.host_dim() == config_.cube_dim,
          "add_broadcast: embedding host does not match the network");
  const CubeNode src = emb.map(root);
  for (MeshIndex i = 0; i < emb.guest().num_nodes(); ++i) {
    if (i == root) continue;
    const CubeNode dst = emb.map(i);
    if (dst == src) continue;
    routes_.push_back(Hypercube::ecube_path(src, dst));
    deps_.push_back(-1);
  }
}

SimResult CubeNetwork::run() {
  HJ_SPAN_N("sim.run", routes_.size());
  SimResult result;
  result.messages = routes_.size();
  result.switching = config_.switching;
  result.message_flits = config_.message_flits;
  result.link_bandwidth = config_.link_bandwidth;

  const u32 dim = std::max(config_.cube_dim, 1u);
  const u32 flits = config_.message_flits;
  const FaultModel* faults = config_.faults;
  const bool observing = obs::enabled();

  // Static route statistics (over all queued routes, failed or not).
  std::unordered_map<u64, u32> static_load;
  for (const CubePath& r : routes_) {
    result.total_hops += r.size() - 1;
    result.max_route_len =
        std::max<u32>(result.max_route_len, static_cast<u32>(r.size() - 1));
    for (std::size_t i = 0; i + 1 < r.size(); ++i)
      result.max_link_load = std::max(
          result.max_link_load, ++static_load[link_id(r[i], r[i + 1], dim)]);
  }
  if (observing) {
    obs::Histogram& route_len =
        obs::Registry::global().histogram("sim.route_len");
    for (const CubePath& r : routes_) route_len.observe(r.size() - 1);
  }

  // Flit-level simulation. crossed[m][h] = flits of message m that have
  // crossed hop h. A flit may cross hop h this cycle when
  //   * it exists at the upstream node: crossed[h] < crossed[h-1]
  //     (crossed[-1] == flits: the whole train starts at the source), and
  //   * under store-and-forward, the entire train is upstream:
  //     crossed[h-1] == flits, and
  //   * link h has spare bandwidth this cycle.
  // Hops are served destination-first so a flit never moves twice per
  // cycle; messages are served in id order (deterministic arbitration).
  const bool cut_through = config_.switching == Switching::CutThrough;
  std::vector<std::vector<u32>> crossed(routes_.size());
  // Dependency bookkeeping: children[m] are released when m completes.
  std::vector<std::vector<u32>> children(routes_.size());
  // Delivery/failure state packed as bitwords: one cache line covers 512
  // messages, where the two parallel vector<bool>s cost a proxy-masked
  // byte dance per touch.
  BitwordSet done(routes_.size());
  BitwordSet failed(routes_.size());
  std::vector<u32> retries(routes_.size(), 0);
  std::vector<u32> active;
  std::vector<u32> roots;
  for (u32 m = 0; m < routes_.size(); ++m) {
    crossed[m].assign(routes_[m].size() - 1, 0);
    if (deps_[m] >= 0)
      children[static_cast<u32>(deps_[m])].push_back(m);
    else
      roots.push_back(m);
  }
  // A message whose route crosses a permanent fault can never be
  // delivered: fail it up front (and, transitively, its dependents)
  // instead of stalling the run to max_cycles.
  const auto fail = [&](u32 m, const auto& self) -> void {
    if (failed.test(m)) return;
    failed.set(m);
    ++result.failed_messages;
    for (u32 c : children[m]) self(c, self);
  };
  if (faults && !faults->permanent().empty()) {
    for (u32 m = 0; m < routes_.size(); ++m)
      if (!faults->permanent().path_avoids(routes_[m])) fail(m, fail);
  }
  // Release a message: zero-hop messages complete instantly and cascade.
  const auto release = [&](u32 m, std::vector<u32>& out,
                           const auto& self) -> void {
    if (failed.test(m)) return;
    if (!crossed[m].empty()) {
      out.push_back(m);
      return;
    }
    done.set(m);
    ++result.delivered;
    for (u32 c : children[m]) self(c, out, self);
  };
  for (u32 m : roots) release(m, active, release);

  const bool transient = faults && faults->has_transient();
  const bool flapping = faults && faults->has_flapping();
  // Queue-depth proxy, counted unconditionally (one integer increment):
  // transmission attempts deferred because the link's bandwidth was
  // already spent this cycle.
  u64 blocked_attempts = 0;
  obs::Histogram* active_hist =
      observing ? &obs::Registry::global().histogram("sim.active_messages")
                : nullptr;
  std::unordered_map<u64, u32> used_this_cycle;
  used_this_cycle.reserve(static_load.size());
  while (!active.empty() && result.cycles < config_.max_cycles) {
    ++result.cycles;
    if (active_hist) active_hist->observe(active.size());
    used_this_cycle.clear();
    std::vector<u32> still_active;
    still_active.reserve(active.size());
    for (u32 m : active) {
      if (failed.test(m)) continue;  // retry budget ran out earlier this cycle
      const CubePath& r = routes_[m];
      auto& c = crossed[m];
      const u32 hops = static_cast<u32>(c.size());
      for (u32 h = hops; h-- > 0;) {
        const u32 upstream = h == 0 ? flits : c[h - 1];
        if (c[h] >= flits || c[h] >= upstream) continue;
        if (!cut_through && upstream < flits) continue;
        const u64 link = link_id(r[h], r[h + 1], dim);
        u32& used = used_this_cycle[link];
        if (used >= config_.link_bandwidth) {
          ++blocked_attempts;
          continue;
        }
        ++used;  // a dropped transmission still occupies the link slot
        if ((flapping &&
             faults->flapping_down(result.cycles, r[h], r[h + 1])) ||
            (transient && faults->drops(result.cycles, link))) {
          ++result.dropped_flits;
          if (++retries[m] > config_.max_retries) {
            fail(m, fail);
            break;  // retry budget exhausted: message (and dependents) die
          }
          continue;
        }
        ++c[h];
      }
      if (failed.test(m)) continue;
      if (c[hops - 1] < flits) {
        still_active.push_back(m);
      } else {
        done.set(m);
        ++result.delivered;
        for (u32 child : children[m])
          release(child, still_active, release);
      }
    }
    active.swap(still_active);
  }

  // A run that still has messages in flight was truncated by max_cycles.
  result.completed =
      result.delivered == result.messages && result.failed_messages == 0;
  result.slowdown_vs_bound =
      result.messages == 0
          ? 1.0
          : !result.completed
                ? 0.0
                : static_cast<double>(result.cycles) /
                      static_cast<double>(std::max<u64>(1, result.lower_bound()));
  if (observing) {
    // Deterministic-kind: the simulator is sequential with deterministic
    // arbitration, so every number here is a pure function of the queued
    // routes and the fault model.
    auto& reg = obs::Registry::global();
    reg.counter("sim.runs").add();
    reg.counter("sim.messages").add(result.messages);
    reg.counter("sim.cycles").add(result.cycles);
    reg.counter("sim.delivered").add(result.delivered);
    reg.counter("sim.failed_messages").add(result.failed_messages);
    reg.counter("sim.dropped_flits").add(result.dropped_flits);
    reg.counter("sim.blocked_attempts").add(blocked_attempts);
    obs::Histogram& link_load = reg.histogram("sim.link_load");
    obs::Histogram& link_util = reg.histogram("sim.link_util_pct");
    const u64 capacity = result.cycles * config_.link_bandwidth;
    for (const auto& [link, load] : static_load) {
      link_load.observe(load);
      // Share of the run each used link spent carrying flits; only
      // meaningful when the run drained (a truncated run's cycle count
      // measures the cap, not the traffic).
      if (result.completed && capacity > 0)
        link_util.observe(u64{load} * flits * 100 / capacity);
    }
  }
  routes_.clear();
  deps_.clear();
  return result;
}

LiveEpochResult CubeNetwork::run_live(u64 start_cycle,
                                      const FaultSchedule& schedule) {
  HJ_SPAN_N("sim.run_live", routes_.size());
  LiveEpochResult result;
  result.messages = routes_.size();
  result.message_delivered.assign(routes_.size(), 0);

  const u32 dim = std::max(config_.cube_dim, 1u);
  const u32 flits = config_.message_flits;
  const FaultModel* faults = config_.faults;
  const bool transient = faults && faults->has_transient();
  const bool flapping = faults && faults->has_flapping();

  u32 max_route_len = 0;
  for (const CubePath& r : routes_)
    max_route_len =
        std::max<u32>(max_route_len, static_cast<u32>(r.size() - 1));
  require(config_.watchdog_cycles >= u64{max_route_len} * flits,
          "run_live: watchdog_cycles (%llu) is below the longest route's "
          "service time (%u hops x %u flits = %llu cycles); a healthy "
          "message would be flagged as stuck — raise watchdog_cycles",
          static_cast<unsigned long long>(config_.watchdog_cycles),
          max_route_len, flits,
          static_cast<unsigned long long>(u64{max_route_len} * flits));

  // Ground-truth hardware state: the faults known before the run plus
  // every scheduled arrival whose cycle has passed. Nothing is pre-failed
  // from it — a message crossing an arrived fault simply keeps failing its
  // transmissions until the detection layer notices.
  FaultSet live = faults ? faults->permanent() : FaultSet{};
  std::size_t sched_cursor = 0;
  schedule.apply_until(start_cycle, live, sched_cursor);

  const bool cut_through = config_.switching == Switching::CutThrough;
  std::vector<std::vector<u32>> crossed(routes_.size());
  std::vector<std::vector<u32>> children(routes_.size());
  BitwordSet failed(routes_.size());
  std::vector<u32> retries(routes_.size(), 0);
  // Watchdog state: local cycle of each message's last flit progress,
  // plus — to tell a dead network from a saturated one — how many of the
  // message's transmission attempts since that progress were outright
  // *failed* (dead/flapping link, transient drop) versus merely *blocked*
  // on link bandwidth already spent by other traffic.
  std::vector<u64> last_progress(routes_.size(), 0);
  std::vector<u64> failed_since(routes_.size(), 0);
  std::vector<u64> blocked_since(routes_.size(), 0);
  std::vector<u32> active;
  std::vector<u32> roots;
  for (u32 m = 0; m < routes_.size(); ++m) {
    crossed[m].assign(routes_[m].size() - 1, 0);
    if (deps_[m] >= 0)
      children[static_cast<u32>(deps_[m])].push_back(m);
    else
      roots.push_back(m);
  }
  const auto fail = [&](u32 m, const auto& self) -> void {
    if (failed.test(m)) return;
    failed.set(m);
    for (u32 c : children[m]) self(c, self);
  };
  const auto release = [&](u32 m, std::vector<u32>& out,
                           const auto& self) -> void {
    if (failed.test(m)) return;
    if (!crossed[m].empty()) {
      out.push_back(m);
      return;
    }
    result.message_delivered[m] = 1;
    ++result.delivered;
    for (u32 c : children[m]) self(c, out, self);
  };
  for (u32 m : roots) release(m, active, release);

  // Detection layer: consecutive failed transmissions per directed link,
  // reset by any success on that link. A dead link never succeeds, so its
  // counter climbs monotonically to detect_threshold within a few cycles
  // of the first attempt.
  std::unordered_map<u64, u32> consec_failures;
  std::unordered_map<u64, bool> suspected;

  std::unordered_map<u64, u32> used_this_cycle;
  u64 executed = 0;
  while (!active.empty() && executed < config_.max_cycles) {
    ++executed;
    const u64 now = start_cycle + executed;
    schedule.apply_until(now, live, sched_cursor);
    used_this_cycle.clear();
    std::vector<u32> still_active;
    still_active.reserve(active.size());
    for (u32 m : active) {
      if (failed.test(m)) continue;
      const CubePath& r = routes_[m];
      auto& c = crossed[m];
      const u32 hops = static_cast<u32>(c.size());
      bool progressed = false;
      for (u32 h = hops; h-- > 0;) {
        const u32 upstream = h == 0 ? flits : c[h - 1];
        if (c[h] >= flits || c[h] >= upstream) continue;
        if (!cut_through && upstream < flits) continue;
        const u64 link = link_id(r[h], r[h + 1], dim);
        u32& used = used_this_cycle[link];
        if (used >= config_.link_bandwidth) {
          ++blocked_since[m];
          continue;
        }
        ++used;  // a failed transmission still occupies the link slot
        const bool dead = live.link_failed(r[h], r[h + 1]) ||
                          (flapping &&
                           faults->flapping_down(now, r[h], r[h + 1]));
        if (dead || (transient && faults->drops(now, link))) {
          ++result.dropped_flits;
          ++failed_since[m];
          u32& streak = consec_failures[link];
          if (++streak == config_.detect_threshold && !suspected[link]) {
            suspected[link] = true;
            result.detections.push_back(
                DetectionEvent{now, r[h], r[h + 1], streak, false});
          }
          if (++retries[m] > config_.max_retries) {
            fail(m, fail);
            break;
          }
          continue;
        }
        consec_failures[link] = 0;
        ++c[h];
        progressed = true;
      }
      if (failed.test(m)) continue;
      if (progressed) {
        last_progress[m] = executed;
        failed_since[m] = 0;
        blocked_since[m] = 0;
      }
      if (c[hops - 1] < flits) {
        // Watchdog: a message with no flit progress for watchdog_cycles is
        // stuck behind something the failure counters did not catch (e.g.
        // a persistently unlucky transient link whose streaks keep being
        // broken by other traffic). Promote its stuck hop to suspected —
        // but only when failed transmissions dominate the stall: a stall
        // made of bandwidth-blocked attempts means the network is
        // saturated, not dead, and promoting it would make a storm's
        // congestion trigger bogus repairs. Defer those and re-arm.
        if (executed - last_progress[m] >= config_.watchdog_cycles) {
          if (failed_since[m] > 0 && failed_since[m] >= blocked_since[m]) {
            u32 stuck = 0;
            while (stuck + 1 < hops && c[stuck] >= flits) ++stuck;
            const u64 link = link_id(r[stuck], r[stuck + 1], dim);
            if (!suspected[link]) {
              suspected[link] = true;
              result.detections.push_back(DetectionEvent{
                  now, r[stuck], r[stuck + 1], consec_failures[link], true});
            }
          } else {
            ++result.deferred_watchdogs;
          }
          last_progress[m] = executed;  // one decision per stall period
          failed_since[m] = 0;
          blocked_since[m] = 0;
        }
        still_active.push_back(m);
      } else {
        result.message_delivered[m] = 1;
        ++result.delivered;
        for (u32 child : children[m])
          release(child, still_active, release);
      }
    }
    active.swap(still_active);
    // Pause at the end of the first suspicious cycle: every message got
    // its arbitration turn this cycle, so the pause point is independent
    // of which message tripped the detector first.
    if (!result.detections.empty()) break;
  }

  result.end_cycle = start_cycle + executed;
  result.detected = !result.detections.empty();
  result.truncated =
      !result.detected && !active.empty() && executed >= config_.max_cycles;
  if (obs::enabled()) {
    auto& reg = obs::Registry::global();
    reg.counter("sim.live.epochs").add();
    reg.counter("sim.live.cycles").add(executed);
    reg.counter("sim.live.detections").add(result.detections.size());
    reg.counter("sim.live.delivered").add(result.delivered);
    reg.counter("sim.live.dropped_flits").add(result.dropped_flits);
    reg.counter("sim.live.deferred_watchdogs").add(result.deferred_watchdogs);
  }
  routes_.clear();
  deps_.clear();
  return result;
}

SimResult simulate_stencil(const Embedding& emb, u32 link_bandwidth,
                           Switching sw, u32 flits) {
  CubeNetwork net(
      SimConfig{emb.host_dim(), link_bandwidth, 1'000'000, sw, flits});
  net.add_stencil_exchange(emb);
  return net.run();
}

SimResult simulate_stencil(const Embedding& emb, const SimConfig& config) {
  require(config.cube_dim == emb.host_dim(),
          "simulate_stencil: config cube dimension %u does not match the "
          "embedding host Q%u",
          config.cube_dim, emb.host_dim());
  CubeNetwork net(config);
  net.add_stencil_exchange(emb);
  return net.run();
}

}  // namespace hj::sim
