#include "hypersim/live.hpp"

#include <algorithm>
#include <sstream>

#include "obs/obs.hpp"

namespace hj::sim {
namespace {

/// Directed logical message: retransmitted across epochs until delivered.
struct LogicalMessage {
  MeshIndex from = 0;
  MeshIndex to = 0;
};

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

const char* verdict_name(Verdict v) noexcept {
  switch (v) {
    case Verdict::Certified: return "certified";
    case Verdict::Degraded: return "degraded";
    case Verdict::Failed: return "failed";
  }
  return "?";
}

LiveRunResult run_stencil_with_recovery(EmbeddingPtr base,
                                        const FaultSchedule& schedule,
                                        const LiveOptions& opts) {
  require(base != nullptr, "run_stencil_with_recovery: null embedding");
  HJ_SPAN("live.run");
  if (obs::enabled()) {
    static obs::Counter& runs = obs::Registry::global().counter("live.runs");
    runs.add();
  }
  LiveRunResult result;
  result.embedding = base;

  // The pre-fault certificate fixes the d of the d+1 repair guarantee,
  // and the product structure (lost once a repair materializes the
  // embedding) is cached up front for spare-search preference.
  const u32 baseline_dilation = verify(*base).dilation;
  const u32 factor_dim = recovery::inner_factor_dim(*base);
  recovery::RecoveryController controller(base->guest().shape(),
                                          opts.recovery);

  // Logical traffic: every guest edge, both directions.
  std::vector<LogicalMessage> traffic;
  base->guest().for_each_edge([&](const MeshEdge& e) {
    traffic.push_back(LogicalMessage{e.a, e.b});
    traffic.push_back(LogicalMessage{e.b, e.a});
  });
  result.messages = traffic.size();
  std::vector<u8> delivered(traffic.size(), 0);

  // Cumulative known faults live in a copy of the caller's fault model,
  // so the transient layer (if any) keeps operating across epochs.
  FaultModel faults = opts.sim.faults ? *opts.sim.faults : FaultModel{};
  SimConfig cfg = opts.sim;
  cfg.faults = &faults;

  // Quarantine LRU (see the file comment): canonical endpoint pairs in
  // least-recently-quarantined-first order. Only links in this list are
  // ever healed — diagnosed ground-truth faults never enter it.
  std::vector<std::pair<CubeNode, CubeNode>> quarantine;

  u64 now = 0;
  bool hard_truncated = false;  // max_cycles cap: the network is gone
  bool budget_stop = false;     // controller refused: degrade, don't thrash
  while (result.epochs < opts.max_epochs) {
    HJ_SPAN_N("live.epoch", result.epochs);
    controller.start_epoch();
    const Embedding& emb = *result.embedding;
    cfg.cube_dim = emb.host_dim();
    CubeNetwork net(cfg);
    // Queue this epoch's retransmissions on the current embedding.
    // Contracted (same-processor) routes deliver without the network.
    std::vector<std::size_t> queued;  // sim message id -> traffic index
    for (std::size_t i = 0; i < traffic.size(); ++i) {
      if (delivered[i]) continue;
      CubePath route = neighbor_route(emb, traffic[i].from, traffic[i].to);
      if (route.size() < 2) {
        delivered[i] = 1;
        ++result.delivered;
        continue;
      }
      (void)net.add_message(std::move(route));
      queued.push_back(i);
    }
    if (queued.empty()) break;  // everything delivered
    if (obs::enabled()) {
      static obs::Counter& retx =
          obs::Registry::global().counter("live.retransmits");
      retx.add(queued.size());
    }

    const LiveEpochResult epoch = net.run_live(now, schedule);
    now = epoch.end_cycle;
    result.dropped_flits += epoch.dropped_flits;
    result.deferred_watchdogs += epoch.deferred_watchdogs;
    for (std::size_t m = 0; m < queued.size(); ++m) {
      if (epoch.message_delivered[m]) {
        delivered[queued[m]] = 1;
        ++result.delivered;
      }
    }
    if (epoch.truncated) {
      hard_truncated = true;
      break;
    }
    if (!epoch.detected) {
      if (epoch.drained()) break;
      ++result.epochs;  // retry-exhausted transients: plain retransmit
      continue;
    }

    // Diagnose the suspects against the ground-truth schedule; an
    // unexplained suspect is a persistent transient and is quarantined
    // as a permanent link (conservative: we only ever route *around* a
    // healthy-but-unlucky link, never through a dead one).
    HJ_SPAN_N("live.diagnose", epoch.detections.size());
    RecoveryEpochLog entry;
    entry.detect_cycle = epoch.detections.front().cycle;
    entry.arrival_cycle = entry.detect_cycle;
    std::vector<std::string> causes;  // deduped, in detection order
    for (const DetectionEvent& det : epoch.detections) {
      auto diag = schedule.diagnose(det.from, det.to, epoch.end_cycle);
      std::string cause;
      if (diag) {
        if (diag->is_node)
          faults.permanent().fail_node(diag->a);
        else
          faults.permanent().fail_link(diag->a, diag->b);
        entry.arrival_cycle = std::min(entry.arrival_cycle, diag->cycle);
        cause = diag->to_string();
      } else {
        // Unexplained suspect: quarantine it, under the LRU capacity cap.
        const auto link = std::minmax(det.from, det.to);
        const auto pos = std::find(quarantine.begin(), quarantine.end(),
                                   std::pair(link.first, link.second));
        if (pos != quarantine.end()) {
          quarantine.erase(pos);  // re-suspected: refresh to MRU below
        } else if (opts.quarantine_capacity > 0 &&
                   quarantine.size() >= opts.quarantine_capacity) {
          // Probe the coldest quarantined link back into service; a
          // genuinely bad one re-trips detection and comes straight back.
          const auto [pa, pb] = quarantine.front();
          quarantine.erase(quarantine.begin());
          faults.permanent().heal_link(pa, pb);
          ++result.quarantine_evictions;
        }
        quarantine.emplace_back(link.first, link.second);
        faults.permanent().fail_link(det.from, det.to);
        ++result.quarantined;
        cause = "quarantine " + std::to_string(det.from) + "-" +
                std::to_string(det.to);
        // Serial driver + deterministic detection order, so the event
        // stream is a pure function of the workload (Kind contract).
        if (obs::events_on())
          obs::Event("live.quarantine", obs::Kind::Deterministic,
                     obs::Severity::Warn, "live")
              .kv("epoch", result.epochs)
              .kv("from", static_cast<u64>(det.from))
              .kv("to", static_cast<u64>(det.to))
              .kv("occupancy", static_cast<u64>(quarantine.size()))
              .emit();
      }
      // Several detections often share one cause (every link into a dead
      // node trips its own counter); log each cause once.
      if (std::find(causes.begin(), causes.end(), cause) == causes.end())
        causes.push_back(std::move(cause));
    }
    for (const std::string& cause : causes) {
      if (!entry.fault.empty()) entry.fault += ';';
      entry.fault += cause;
    }
    entry.detect_latency = entry.detect_cycle - entry.arrival_cycle;
    if (obs::events_on())
      obs::Event("live.detect", obs::Kind::Deterministic,
                 obs::Severity::Warn, "live")
          .kv("epoch", result.epochs)
          .kv("detect_cycle", entry.detect_cycle)
          .kv("latency", entry.detect_latency)
          .kv("causes", entry.fault)
          .emit();

    if (obs::enabled()) {
      static obs::Histogram& occ =
          obs::Registry::global().histogram("live.quarantine.occupancy");
      occ.observe(quarantine.size());
    }

    recovery::RepairResult repair = controller.repair(
        *result.embedding, faults.permanent(), baseline_dilation,
        factor_dim);
    if (!repair.ok) {
      if (obs::events_on())
        obs::Event("live.repair.denied", obs::Kind::Deterministic,
                   obs::Severity::Warn, "live")
            .kv("epoch", result.epochs)
            .kv("reason", repair.budget_exhausted ? "budget"
                          : !repair.witness.empty() ? "impossible"
                                                    : "transient")
            .kv("desc", repair.desc)
            .emit();
      if (!repair.witness.empty()) result.witness = repair.witness;
      if (repair.budget_exhausted || !repair.witness.empty()) {
        // Terminal: either the backoff budget priced this repair sequence
        // out, or the fault set provably admits no certified repair at
        // all. Stop with an honest Degraded verdict instead of thrashing
        // the ladder for the rest of the run.
        if (repair.budget_exhausted) ++result.repairs_denied;
        if (result.witness.empty()) result.witness = repair.desc;
        budget_stop = true;
        break;
      }
      // A transiently-failed repair (no impossibility proof) is retried
      // next epoch: the fault re-trips detection, and the controller's
      // doubled charge caps how long this can go on.
      entry.rung = recovery::rung_name(recovery::Rung::None);
      entry.plan = repair.desc;
      result.log.push_back(std::move(entry));
      ++result.epochs;
      continue;
    }
    entry.rung = recovery::rung_name(repair.rung);
    entry.moved_nodes = repair.moved_nodes;
    entry.migration_cost = repair.migration_cost;
    entry.dilation = repair.report.dilation;
    entry.congestion = repair.report.congestion;
    entry.plan = repair.desc;
    if (obs::events_on())
      obs::Event("live.repair", obs::Kind::Deterministic,
                 obs::Severity::Info, "live")
          .kv("epoch", result.epochs)
          .kv("rung", entry.rung)
          .kv("moved_nodes", entry.moved_nodes)
          .kv("migration_cost", entry.migration_cost)
          .kv("dilation", static_cast<u64>(entry.dilation))
          .emit();
    result.log.push_back(std::move(entry));
    result.embedding = repair.embedding;
    ++result.epochs;
  }

  // Audit sweep: an arrival no remaining traffic crossed is invisible to
  // detection, but the final embedding must still avoid it. Certify
  // against the ground truth of everything that arrived, repairing once
  // more when the certificate fails.
  FaultSet truth = opts.sim.faults ? opts.sim.faults->permanent()
                                   : FaultSet{};
  std::size_t cursor = 0;
  schedule.apply_until(now, truth, cursor);
  result.report = verify(*result.embedding, truth);
  if (!hard_truncated && !budget_stop &&
      (!result.report.fault_free || !result.report.valid)) {
    recovery::RepairResult repair = controller.repair(
        *result.embedding, truth, baseline_dilation, factor_dim);
    if (!repair.ok && result.witness.empty())
      result.witness =
          !repair.witness.empty()
              ? repair.witness
              : repair.budget_exhausted ? repair.desc : std::string{};
    if (repair.ok) {
      RecoveryEpochLog entry;
      entry.arrival_cycle = now;
      entry.detect_cycle = now;
      entry.fault = "audit";
      entry.rung = recovery::rung_name(repair.rung);
      entry.moved_nodes = repair.moved_nodes;
      entry.migration_cost = repair.migration_cost;
      entry.dilation = repair.report.dilation;
      entry.congestion = repair.report.congestion;
      entry.plan = repair.desc;
      result.log.push_back(std::move(entry));
      result.embedding = repair.embedding;
      ++result.epochs;
      result.report = verify(*result.embedding, truth);
    }
  }
  for (const FaultEvent& e : schedule.events())
    if (e.cycle <= now) {
      if (e.is_node)
        faults.permanent().fail_node(e.a);
      else
        faults.permanent().fail_link(e.a, e.b);
    }
  result.faults = faults.permanent();

  result.cycles = now;
  result.failed = result.messages - result.delivered;
  result.ok = !hard_truncated && result.failed == 0 && result.report.valid &&
              result.report.fault_free;

  // Verdict and, for a Degraded run, the uncovered-node report: every
  // guest node with an undelivered incident message. A Failed verdict is
  // reserved for runs with nothing trustworthy left — the max_cycles cap
  // fired (the network is dead beyond diagnosis) or the final embedding
  // does not even map the guest validly.
  if (result.ok) {
    result.verdict = Verdict::Certified;
  } else if (!hard_truncated && result.report.valid) {
    result.verdict = Verdict::Degraded;
    std::vector<u8> covered(base->guest().num_nodes(), 1);
    for (std::size_t i = 0; i < traffic.size(); ++i) {
      if (delivered[i]) continue;
      covered[traffic[i].from] = 0;
      covered[traffic[i].to] = 0;
    }
    for (MeshIndex v = 0; v < covered.size(); ++v)
      if (!covered[v]) result.uncovered.push_back(v);
  } else {
    result.verdict = Verdict::Failed;
  }
  if (obs::enabled()) {
    auto& reg = obs::Registry::global();
    reg.counter(std::string("live.verdict.") + verdict_name(result.verdict))
        .add();
    reg.counter("live.quarantined").add(result.quarantined);
    reg.counter("live.quarantine_evictions").add(result.quarantine_evictions);
    reg.counter("live.repairs_denied").add(result.repairs_denied);
    reg.counter("live.deferred_watchdogs").add(result.deferred_watchdogs);
  }
  if (obs::events_on())
    obs::Event("live.verdict", obs::Kind::Deterministic,
               result.verdict == Verdict::Certified ? obs::Severity::Info
               : result.verdict == Verdict::Degraded ? obs::Severity::Warn
                                                     : obs::Severity::Error,
               "live")
        .kv("verdict", verdict_name(result.verdict))
        .kv("epochs", result.epochs)
        .kv("delivered", result.delivered)
        .kv("messages", result.messages)
        .kv("quarantined", result.quarantined)
        .emit();
  // A Failed verdict means nothing trustworthy is left — snapshot the
  // flight ring now (like a crash would) so the postmortem includes the
  // epochs that led here even though the process lives on.
  if (result.verdict == Verdict::Failed) (void)obs::flight::dump_to_configured();
  return result;
}

std::string recovery_log_json(const LiveRunResult& r) {
  std::ostringstream os;
  os << "{\n"
     << "  \"ok\": " << (r.ok ? "true" : "false") << ",\n"
     << "  \"verdict\": \"" << verdict_name(r.verdict) << "\",\n"
     << "  \"cycles\": " << r.cycles << ",\n"
     << "  \"messages\": " << r.messages << ",\n"
     << "  \"delivered\": " << r.delivered << ",\n"
     << "  \"failed\": " << r.failed << ",\n"
     << "  \"dropped_flits\": " << r.dropped_flits << ",\n"
     << "  \"epochs\": " << r.epochs << ",\n"
     << "  \"quarantined\": " << r.quarantined << ",\n"
     << "  \"quarantine_evictions\": " << r.quarantine_evictions << ",\n"
     << "  \"repairs_denied\": " << r.repairs_denied << ",\n"
     << "  \"deferred_watchdogs\": " << r.deferred_watchdogs << ",\n"
     << "  \"witness\": \"" << json_escape(r.witness) << "\",\n"
     << "  \"uncovered\": [";
  for (std::size_t i = 0; i < r.uncovered.size(); ++i)
    os << (i ? ", " : "") << r.uncovered[i];
  os << "],\n"
     << "  \"final\": {\"valid\": " << (r.report.valid ? "true" : "false")
     << ", \"fault_free\": " << (r.report.fault_free ? "true" : "false")
     << ", \"dilation\": " << r.report.dilation
     << ", \"congestion\": " << r.report.congestion
     << ", \"load_factor\": " << r.report.load_factor
     << ", \"failed_nodes\": " << r.faults.num_failed_nodes()
     << ", \"failed_links\": " << r.faults.num_failed_links() << "},\n"
     << "  \"recoveries\": [";
  for (std::size_t i = 0; i < r.log.size(); ++i) {
    const RecoveryEpochLog& e = r.log[i];
    os << (i ? ",\n    {" : "\n    {")
       << "\"arrival_cycle\": " << e.arrival_cycle
       << ", \"detect_cycle\": " << e.detect_cycle
       << ", \"detect_latency\": " << e.detect_latency
       << ", \"fault\": \"" << json_escape(e.fault) << "\""
       << ", \"rung\": \"" << json_escape(e.rung) << "\""
       << ", \"moved_nodes\": " << e.moved_nodes
       << ", \"migration_cost\": " << e.migration_cost
       << ", \"dilation\": " << e.dilation
       << ", \"congestion\": " << e.congestion
       << ", \"plan\": \"" << json_escape(e.plan) << "\"}";
  }
  os << (r.log.empty() ? "]\n" : "\n  ]\n") << "}\n";
  return os.str();
}

}  // namespace hj::sim
