#include "hypersim/live.hpp"

#include <algorithm>
#include <sstream>

#include "obs/obs.hpp"

namespace hj::sim {
namespace {

/// Directed logical message: retransmitted across epochs until delivered.
struct LogicalMessage {
  MeshIndex from = 0;
  MeshIndex to = 0;
};

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

LiveRunResult run_stencil_with_recovery(EmbeddingPtr base,
                                        const FaultSchedule& schedule,
                                        const LiveOptions& opts) {
  require(base != nullptr, "run_stencil_with_recovery: null embedding");
  HJ_SPAN("live.run");
  if (obs::enabled()) {
    static obs::Counter& runs = obs::Registry::global().counter("live.runs");
    runs.add();
  }
  LiveRunResult result;
  result.embedding = base;

  // The pre-fault certificate fixes the d of the d+1 repair guarantee,
  // and the product structure (lost once a repair materializes the
  // embedding) is cached up front for spare-search preference.
  const u32 baseline_dilation = verify(*base).dilation;
  const u32 factor_dim = recovery::inner_factor_dim(*base);
  recovery::RecoveryController controller(base->guest().shape(),
                                          opts.recovery);

  // Logical traffic: every guest edge, both directions.
  std::vector<LogicalMessage> traffic;
  base->guest().for_each_edge([&](const MeshEdge& e) {
    traffic.push_back(LogicalMessage{e.a, e.b});
    traffic.push_back(LogicalMessage{e.b, e.a});
  });
  result.messages = traffic.size();
  std::vector<u8> delivered(traffic.size(), 0);

  // Cumulative known faults live in a copy of the caller's fault model,
  // so the transient layer (if any) keeps operating across epochs.
  FaultModel faults = opts.sim.faults ? *opts.sim.faults : FaultModel{};
  SimConfig cfg = opts.sim;
  cfg.faults = &faults;

  u64 now = 0;
  bool truncated = false;
  while (result.epochs < opts.max_epochs) {
    HJ_SPAN_N("live.epoch", result.epochs);
    const Embedding& emb = *result.embedding;
    cfg.cube_dim = emb.host_dim();
    CubeNetwork net(cfg);
    // Queue this epoch's retransmissions on the current embedding.
    // Contracted (same-processor) routes deliver without the network.
    std::vector<std::size_t> queued;  // sim message id -> traffic index
    for (std::size_t i = 0; i < traffic.size(); ++i) {
      if (delivered[i]) continue;
      CubePath route = neighbor_route(emb, traffic[i].from, traffic[i].to);
      if (route.size() < 2) {
        delivered[i] = 1;
        ++result.delivered;
        continue;
      }
      (void)net.add_message(std::move(route));
      queued.push_back(i);
    }
    if (queued.empty()) break;  // everything delivered
    if (obs::enabled()) {
      static obs::Counter& retx =
          obs::Registry::global().counter("live.retransmits");
      retx.add(queued.size());
    }

    const LiveEpochResult epoch = net.run_live(now, schedule);
    now = epoch.end_cycle;
    result.dropped_flits += epoch.dropped_flits;
    for (std::size_t m = 0; m < queued.size(); ++m) {
      if (epoch.message_delivered[m]) {
        delivered[queued[m]] = 1;
        ++result.delivered;
      }
    }
    if (epoch.truncated) {
      truncated = true;
      break;
    }
    if (!epoch.detected) {
      if (epoch.drained()) break;
      ++result.epochs;  // retry-exhausted transients: plain retransmit
      continue;
    }

    // Diagnose the suspects against the ground-truth schedule; an
    // unexplained suspect is a persistent transient and is quarantined
    // as a permanent link (conservative: we only ever route *around* a
    // healthy-but-unlucky link, never through a dead one).
    HJ_SPAN_N("live.diagnose", epoch.detections.size());
    RecoveryEpochLog entry;
    entry.detect_cycle = epoch.detections.front().cycle;
    entry.arrival_cycle = entry.detect_cycle;
    std::vector<std::string> causes;  // deduped, in detection order
    for (const DetectionEvent& det : epoch.detections) {
      auto diag = schedule.diagnose(det.from, det.to, epoch.end_cycle);
      std::string cause;
      if (diag) {
        if (diag->is_node)
          faults.permanent().fail_node(diag->a);
        else
          faults.permanent().fail_link(diag->a, diag->b);
        entry.arrival_cycle = std::min(entry.arrival_cycle, diag->cycle);
        cause = diag->to_string();
      } else {
        faults.permanent().fail_link(det.from, det.to);
        cause = "quarantine " + std::to_string(det.from) + "-" +
                std::to_string(det.to);
      }
      // Several detections often share one cause (every link into a dead
      // node trips its own counter); log each cause once.
      if (std::find(causes.begin(), causes.end(), cause) == causes.end())
        causes.push_back(std::move(cause));
    }
    for (const std::string& cause : causes) {
      if (!entry.fault.empty()) entry.fault += ';';
      entry.fault += cause;
    }
    entry.detect_latency = entry.detect_cycle - entry.arrival_cycle;

    recovery::RepairResult repair = controller.repair(
        *result.embedding, faults.permanent(), baseline_dilation,
        factor_dim);
    if (!repair.ok) {
      truncated = true;  // unrepairable: account the rest as failed
      break;
    }
    entry.rung = recovery::rung_name(repair.rung);
    entry.moved_nodes = repair.moved_nodes;
    entry.migration_cost = repair.migration_cost;
    entry.dilation = repair.report.dilation;
    entry.congestion = repair.report.congestion;
    entry.plan = repair.desc;
    result.log.push_back(std::move(entry));
    result.embedding = repair.embedding;
    ++result.epochs;
  }

  // Audit sweep: an arrival no remaining traffic crossed is invisible to
  // detection, but the final embedding must still avoid it. Certify
  // against the ground truth of everything that arrived, repairing once
  // more when the certificate fails.
  FaultSet truth = opts.sim.faults ? opts.sim.faults->permanent()
                                   : FaultSet{};
  std::size_t cursor = 0;
  schedule.apply_until(now, truth, cursor);
  result.report = verify(*result.embedding, truth);
  if (!truncated && (!result.report.fault_free || !result.report.valid)) {
    recovery::RepairResult repair = controller.repair(
        *result.embedding, truth, baseline_dilation, factor_dim);
    if (repair.ok) {
      RecoveryEpochLog entry;
      entry.arrival_cycle = now;
      entry.detect_cycle = now;
      entry.fault = "audit";
      entry.rung = recovery::rung_name(repair.rung);
      entry.moved_nodes = repair.moved_nodes;
      entry.migration_cost = repair.migration_cost;
      entry.dilation = repair.report.dilation;
      entry.congestion = repair.report.congestion;
      entry.plan = repair.desc;
      result.log.push_back(std::move(entry));
      result.embedding = repair.embedding;
      ++result.epochs;
      result.report = verify(*result.embedding, truth);
    }
  }
  for (const FaultEvent& e : schedule.events())
    if (e.cycle <= now) {
      if (e.is_node)
        faults.permanent().fail_node(e.a);
      else
        faults.permanent().fail_link(e.a, e.b);
    }
  result.faults = faults.permanent();

  result.cycles = now;
  result.failed = result.messages - result.delivered;
  result.ok = !truncated && result.failed == 0 && result.report.valid &&
              result.report.fault_free;
  return result;
}

std::string recovery_log_json(const LiveRunResult& r) {
  std::ostringstream os;
  os << "{\n"
     << "  \"ok\": " << (r.ok ? "true" : "false") << ",\n"
     << "  \"cycles\": " << r.cycles << ",\n"
     << "  \"messages\": " << r.messages << ",\n"
     << "  \"delivered\": " << r.delivered << ",\n"
     << "  \"failed\": " << r.failed << ",\n"
     << "  \"dropped_flits\": " << r.dropped_flits << ",\n"
     << "  \"epochs\": " << r.epochs << ",\n"
     << "  \"final\": {\"valid\": " << (r.report.valid ? "true" : "false")
     << ", \"fault_free\": " << (r.report.fault_free ? "true" : "false")
     << ", \"dilation\": " << r.report.dilation
     << ", \"congestion\": " << r.report.congestion
     << ", \"load_factor\": " << r.report.load_factor
     << ", \"failed_nodes\": " << r.faults.num_failed_nodes()
     << ", \"failed_links\": " << r.faults.num_failed_links() << "},\n"
     << "  \"recoveries\": [";
  for (std::size_t i = 0; i < r.log.size(); ++i) {
    const RecoveryEpochLog& e = r.log[i];
    os << (i ? ",\n    {" : "\n    {")
       << "\"arrival_cycle\": " << e.arrival_cycle
       << ", \"detect_cycle\": " << e.detect_cycle
       << ", \"detect_latency\": " << e.detect_latency
       << ", \"fault\": \"" << json_escape(e.fault) << "\""
       << ", \"rung\": \"" << json_escape(e.rung) << "\""
       << ", \"moved_nodes\": " << e.moved_nodes
       << ", \"migration_cost\": " << e.migration_cost
       << ", \"dilation\": " << e.dilation
       << ", \"congestion\": " << e.congestion
       << ", \"plan\": \"" << json_escape(e.plan) << "\"}";
  }
  os << (r.log.empty() ? "]\n" : "\n  ]\n") << "}\n";
  return os.str();
}

}  // namespace hj::sim
