#include "hypersim/storm.hpp"

#include <algorithm>
#include <cstdlib>
#include <unordered_set>

namespace hj::sim {
namespace {

/// splitmix64: every address and cycle below is a counter hash, so
/// generate() is a pure function of the spec — no hidden RNG state.
u64 mix64(u64 x) {
  x += 0x9e3779b97f4a7c15ull;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

/// Fixed-point probability threshold: event fires iff hash < p * 2^64.
u64 threshold(double p) {
  return p <= 0.0 ? 0
         : p >= 1.0
             ? ~u64{0}
             : static_cast<u64>(p * 18446744073709551616.0 /* 2^64 */);
}

}  // namespace

const char* storm_kind_name(StormKind k) noexcept {
  switch (k) {
    case StormKind::Regional: return "regional";
    case StormKind::Cascading: return "cascading";
    case StormKind::Bursty: return "bursty";
    case StormKind::Mixed: return "mixed";
  }
  return "?";
}

StormGenerator::StormGenerator(StormSpec spec) : spec_(spec) {
  require(spec_.cube_dim >= 1 && spec_.cube_dim <= 30,
          "StormGenerator: cube dimension %u outside [1, 30]", spec_.cube_dim);
  require(spec_.node_fraction >= 0.0 && spec_.node_fraction <= 1.0,
          "StormGenerator: node_fraction %f outside [0, 1]",
          spec_.node_fraction);
  require(spec_.burst_size >= 1, "StormGenerator: burst_size must be >= 1");
  require(spec_.regions >= 1, "StormGenerator: regions must be >= 1");
  require(spec_.region_radius >= 1 && spec_.region_radius <= spec_.cube_dim,
          "StormGenerator: region_radius %u outside [1, cube_dim=%u]",
          spec_.region_radius, spec_.cube_dim);
  require(spec_.cascade_p >= 0.0 && spec_.cascade_p <= 1.0,
          "StormGenerator: cascade_p %f outside [0, 1]", spec_.cascade_p);
  require(spec_.max_fail_fraction > 0.0 && spec_.max_fail_fraction <= 1.0,
          "StormGenerator: max_fail_fraction %f outside (0, 1]",
          spec_.max_fail_fraction);
  if (spec_.flapping_links > 0)
    require(spec_.flap_period >= 1 && spec_.flap_down >= 1 &&
                spec_.flap_down < spec_.flap_period,
            "StormGenerator: flap down window (%llu) must be in "
            "[1, period=%llu)",
            static_cast<unsigned long long>(spec_.flap_down),
            static_cast<unsigned long long>(spec_.flap_period));
}

Storm StormGenerator::generate() const {
  const StormSpec& s = spec_;
  const u32 n = s.cube_dim;
  const u64 num_nodes = u64{1} << n;
  const u64 mask = num_nodes - 1;
  // Leave a machine worth repairing: cap dead nodes and dead links each
  // at max_fail_fraction of the hardware (links: n * 2^(n-1) of them).
  const u64 node_cap = std::max<u64>(
      1, static_cast<u64>(static_cast<double>(num_nodes) *
                          s.max_fail_fraction));
  const u64 link_cap = std::max<u64>(
      1, static_cast<u64>(static_cast<double>(num_nodes / 2 * n) *
                          s.max_fail_fraction));
  const u64 node_thresh = threshold(s.node_fraction);
  const u64 cascade_thresh = threshold(s.cascade_p);

  Storm out;
  u64 ctr = s.seed * 0x9e3779b97f4a7c15ull +
            (static_cast<u64>(s.kind) + 1) * 0x6d5a6d5a6d5a6d5bull;

  // Regional epicenters, reused round-robin across the whole storm so
  // each region's ball keeps accumulating damage.
  std::vector<CubeNode> epicenters(s.regions);
  for (CubeNode& e : epicenters) e = mix64(ctr++) & mask;

  // Uniform sample from the Hamming ball of `region_radius` around
  // `center`: pick a flip count in [1, radius], then distinct dimensions.
  const auto ball = [&](CubeNode center) {
    const u32 k = 1 + static_cast<u32>(mix64(ctr++) % s.region_radius);
    CubeNode x = center;
    u32 flipped = 0;
    for (u32 j = 0; j < k; ++j) {
      u32 d;
      do d = static_cast<u32>(mix64(ctr++) % n);
      while (flipped & (u32{1} << d));
      flipped |= u32{1} << d;
      x ^= u64{1} << d;
    }
    return x;
  };

  // Endpoints of previous victims, the cascade's fuel. Node deaths and
  // both ends of link deaths qualify — heat spreads from either side.
  std::vector<CubeNode> victims;
  const auto cascade_seed = [&]() -> CubeNode {
    if (!victims.empty() && mix64(ctr++) < cascade_thresh)
      return victims[mix64(ctr++) % victims.size()];
    return mix64(ctr++) & mask;
  };

  FaultSet taken;  // dedup: every arrival must name fresh hardware
  u64 nodes_killed = 0, links_killed = 0;
  for (u32 i = 0; i < s.events; ++i) {
    const u32 burst = i / s.burst_size;
    const u64 cycle = s.first_cycle + u64{burst} * s.burst_spacing +
                      u64{i % s.burst_size} * s.intra_burst_spacing;
    const StormKind kind =
        s.kind == StormKind::Mixed
            ? (burst % 2 == 0 ? StormKind::Regional : StormKind::Cascading)
            : s.kind;
    const bool want_node = mix64(ctr++) < node_thresh;
    if (want_node ? nodes_killed >= node_cap : links_killed >= link_cap) {
      ++out.stats.dropped_events;
      continue;
    }
    bool placed = false;
    for (u32 attempt = 0; attempt < 64 && !placed; ++attempt) {
      CubeNode a;
      switch (kind) {
        case StormKind::Regional:
          a = ball(epicenters[i % s.regions]);
          break;
        case StormKind::Cascading:
          a = cascade_seed();
          break;
        default:
          a = mix64(ctr++) & mask;
          break;
      }
      if (want_node) {
        // Cascading node deaths strike next to a victim, not on it (it is
        // already dead); step one random link away first.
        if (kind == StormKind::Cascading)
          a ^= u64{1} << (mix64(ctr++) % n);
        if (taken.node_failed(a)) continue;
        taken.fail_node(a);
        out.schedule.add_node_failure(cycle, a);
        victims.push_back(a);
        ++nodes_killed;
        ++out.stats.node_events;
      } else {
        const CubeNode b = a ^ (u64{1} << (mix64(ctr++) % n));
        // link_failed also covers dead endpoints, so a link under an
        // already-dead node is never scheduled as a separate arrival.
        if (taken.link_failed(a, b)) continue;
        taken.fail_link(a, b);
        out.schedule.add_link_failure(cycle, a, b);
        victims.push_back(a);
        victims.push_back(b);
        ++links_killed;
        ++out.stats.link_events;
      }
      placed = true;
    }
    if (!placed) ++out.stats.dropped_events;
  }

  // Flapping links ride on healthy hardware (a permanent victim cannot
  // also flap) and are distinct from each other.
  std::unordered_set<u64> flap_keys;
  for (u32 f = 0; f < s.flapping_links; ++f) {
    for (u32 attempt = 0; attempt < 64; ++attempt) {
      const CubeNode a = mix64(ctr++) & mask;
      const CubeNode b = a ^ (u64{1} << (mix64(ctr++) % n));
      if (taken.link_failed(a, b)) continue;
      if (!flap_keys.insert(Hypercube::edge_key(a, b)).second) continue;
      out.flapping.push_back(FlapSpec{std::min(a, b), std::max(a, b),
                                      s.flap_period, s.flap_down,
                                      mix64(ctr++) % s.flap_period});
      break;
    }
  }

  if (!out.schedule.empty())
    out.stats.span_cycles = out.schedule.events().back().cycle -
                            out.schedule.events().front().cycle;
  return out;
}

// --- CLI spec parsing -------------------------------------------------------

namespace {

u64 parse_u64(const std::string& s) {
  char* end = nullptr;
  const u64 v = std::strtoull(s.c_str(), &end, 10);
  require(end != s.c_str() && *end == '\0',
          "parse_storm_spec: '%s' is not a number", s.c_str());
  return v;
}

double parse_f64(const std::string& s) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  require(end != s.c_str() && *end == '\0',
          "parse_storm_spec: '%s' is not a number", s.c_str());
  return v;
}

}  // namespace

StormSpec parse_storm_spec(const std::string& spec, u32 cube_dim) {
  StormSpec out;
  out.cube_dim = cube_dim;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string term = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (term.empty()) continue;
    const std::size_t eq = term.find('=');
    require(eq != std::string::npos,
            "parse_storm_spec: expected key=value, got '%s'", term.c_str());
    const std::string key = term.substr(0, eq);
    const std::string val = term.substr(eq + 1);
    if (key == "kind") {
      if (val == "regional") out.kind = StormKind::Regional;
      else if (val == "cascading") out.kind = StormKind::Cascading;
      else if (val == "bursty") out.kind = StormKind::Bursty;
      else if (val == "mixed") out.kind = StormKind::Mixed;
      else
        require(false,
                "parse_storm_spec: unknown kind '%s' (want "
                "regional|cascading|bursty|mixed)",
                val.c_str());
    } else if (key == "events") {
      out.events = static_cast<u32>(parse_u64(val));
    } else if (key == "seed") {
      out.seed = parse_u64(val);
    } else if (key == "node_frac") {
      out.node_fraction = parse_f64(val);
    } else if (key == "first") {
      out.first_cycle = parse_u64(val);
    } else if (key == "burst") {
      out.burst_size = static_cast<u32>(parse_u64(val));
    } else if (key == "spacing") {
      out.burst_spacing = parse_u64(val);
    } else if (key == "gap") {
      out.intra_burst_spacing = parse_u64(val);
    } else if (key == "regions") {
      out.regions = static_cast<u32>(parse_u64(val));
    } else if (key == "radius") {
      out.region_radius = static_cast<u32>(parse_u64(val));
    } else if (key == "cascade_p") {
      out.cascade_p = parse_f64(val);
    } else if (key == "cap") {
      out.max_fail_fraction = parse_f64(val);
    } else if (key == "flap") {
      out.flapping_links = static_cast<u32>(parse_u64(val));
    } else if (key == "flap_period") {
      out.flap_period = parse_u64(val);
    } else if (key == "flap_down") {
      out.flap_down = parse_u64(val);
    } else {
      require(false, "parse_storm_spec: unknown key '%s'", key.c_str());
    }
  }
  return out;
}

}  // namespace hj::sim
