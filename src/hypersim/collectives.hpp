// hjembed: collective-communication schedules on the cube network.
//
// The paper's reference [15] (Johnsson, "Communication efficient basic
// linear algebra computations on hypercube architectures") builds its
// kernels from a few collective patterns. This module generates those
// schedules as dependent message sets for the simulator:
//
//   * binomial_broadcast — the spanning-binomial-tree broadcast native to
//     the cube: n rounds for 2^n nodes, each round doubling the holders.
//   * mesh_flood_broadcast — a broadcast that only uses mesh-logical
//     channels of an embedding (each node forwards to its mesh neighbors),
//     i.e. what an application restricted to the mesh abstraction can do.
//
// Comparing the two quantifies the cost of staying inside the mesh
// abstraction versus dropping to native cube communication — exactly the
// design space the embedding machinery sits in.
#pragma once

#include "hypersim/network.hpp"

namespace hj::sim {

/// A message with an optional dependency: it may start only after the
/// message with index `after` (into the same schedule) completes.
struct ScheduledMessage {
  CubePath route;
  i64 after = -1;  // -1: starts immediately
};

using Schedule = std::vector<ScheduledMessage>;

/// Spanning-binomial-tree broadcast from `root` to every node of Q_n.
/// Round r sends from every holder across cube dimension r: n dependent
/// waves, each message one hop. Completes in exactly n * flits cycles
/// (store-and-forward, bandwidth 1, no contention by construction).
[[nodiscard]] Schedule binomial_broadcast(u32 cube_dim, CubeNode root);

/// Mesh-logical flood broadcast on an embedding: BFS over the guest mesh
/// from `root`; each tree edge becomes a message along the embedding's
/// path for that edge, dependent on the message that delivered the parent.
[[nodiscard]] Schedule mesh_flood_broadcast(const Embedding& emb,
                                            MeshIndex root);

/// Run a dependent schedule on a network configuration; returns the usual
/// SimResult (cycles until the last message lands).
[[nodiscard]] SimResult run_schedule(const Schedule& schedule,
                                     SimConfig config);

}  // namespace hj::sim
