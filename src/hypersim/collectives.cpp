#include "hypersim/collectives.hpp"

#include <queue>

namespace hj::sim {

Schedule binomial_broadcast(u32 cube_dim, CubeNode root) {
  require(cube_dim <= 30, "binomial_broadcast: cube too large");
  require(root < (u64{1} << cube_dim), "binomial_broadcast: root outside");
  Schedule out;
  // delivered[v] = index of the message that delivered v (-1 for root).
  std::vector<i64> delivered(u64{1} << cube_dim, -2);
  delivered[root] = -1;
  std::vector<CubeNode> holders{root};
  for (u32 r = 0; r < cube_dim; ++r) {
    const std::size_t wave = holders.size();
    for (std::size_t i = 0; i < wave; ++i) {
      const CubeNode from = holders[i];
      const CubeNode to = from ^ (u64{1} << r);
      out.push_back({CubePath{from, to}, delivered[from]});
      delivered[to] = static_cast<i64>(out.size()) - 1;
      holders.push_back(to);
    }
  }
  return out;
}

Schedule mesh_flood_broadcast(const Embedding& emb, MeshIndex root) {
  const Mesh& mesh = emb.guest();
  require(root < mesh.num_nodes(), "mesh_flood_broadcast: root outside");
  Schedule out;
  std::vector<i64> delivered(mesh.num_nodes(), -2);
  delivered[root] = -1;
  std::queue<MeshIndex> frontier;
  frontier.push(root);
  while (!frontier.empty()) {
    const MeshIndex u = frontier.front();
    frontier.pop();
    for (MeshIndex w : mesh.neighbors(u)) {
      if (delivered[w] != -2) continue;
      out.push_back({neighbor_route(emb, u, w), delivered[u]});
      delivered[w] = static_cast<i64>(out.size()) - 1;
      frontier.push(w);
    }
  }
  return out;
}

SimResult run_schedule(const Schedule& schedule, SimConfig config) {
  CubeNetwork net(config);
  for (const ScheduledMessage& m : schedule) net.add_message(m.route, m.after);
  return net.run();
}

}  // namespace hj::sim
