// hjembed: a synchronous flit-level Boolean-cube network simulator.
//
// The paper targets iPSC/nCUBE-era hypercube multiprocessors, which we do
// not have; this substrate simulates the communication behaviour that
// makes dilation, congestion and expansion matter. Model:
//
//   * 2^n nodes; each pair at Hamming distance one is joined by two
//     directed links (one per direction).
//   * Messages are trains of `message_flits` flits following a fixed route
//     (the embedding's edge paths). A directed link moves at most
//     `link_bandwidth` flits per cycle; buffers are unbounded.
//   * Switching:
//       StoreAndForward — a message must fully arrive at a node before its
//         first flit leaves it (the paper-era iPSC discipline). Per-hop
//         cost ~ message length: dilation multiplies the latency.
//       CutThrough — a flit may leave a node one cycle after arriving
//         (virtual cut-through): the train pipelines across the route and
//         dilation adds only ~1 cycle per extra hop.
//   * Arbitration is deterministic: lower message id first, flits closest
//     to the destination first (no flit moves twice per cycle).
//
// The quality of an embedding shows up directly: dilation stretches routes
// (latency, amplified by message size under store-and-forward), congestion
// serializes them (bandwidth), and expansion idles processors.
#pragma once

#include <vector>

#include "core/embedding.hpp"
#include "hypersim/fault.hpp"

namespace hj::sim {

enum class Switching : u8 { StoreAndForward, CutThrough };

struct SimConfig {
  u32 cube_dim = 0;
  /// Flits one directed link can carry per cycle.
  u32 link_bandwidth = 1;
  /// Safety stop; a drained run always ends far earlier.
  u64 max_cycles = 1'000'000;
  Switching switching = Switching::StoreAndForward;
  /// Flits per message (message length).
  u32 message_flits = 1;
  /// Optional fault injection. Not owned; must outlive run(). Routes
  /// crossing a permanent fault are reported failed (never simulated);
  /// transient drops are retried up to `max_retries` per message.
  const FaultModel* faults = nullptr;
  /// Bound on transient-fault retries per message before the message is
  /// declared failed (SimResult::failed_messages, completed = false).
  u32 max_retries = 64;
  /// run_live only: consecutive failed transmissions on one directed link
  /// before the detection layer flags it suspected-permanent. Must stay
  /// below max_retries or messages die before detection can fire.
  u32 detect_threshold = 4;
  /// run_live only: cycles a message may go without any flit progress
  /// before the watchdog considers its stuck hop. Must cover the longest
  /// service time of a queued route (validated against
  /// max_route_len * message_flits when run_live starts). The watchdog is
  /// storm-aware: it promotes the hop to suspected-permanent only when
  /// the stall is dominated by *failed* transmissions (the network is
  /// dead there); a stall dominated by bandwidth-blocked attempts means
  /// the network is merely saturated, and the watchdog defers instead
  /// (LiveEpochResult::deferred_watchdogs) — a storm must not let
  /// congestion masquerade as hardware death and trigger repair thrash.
  u64 watchdog_cycles = 4096;
};

struct SimResult {
  /// Cycles until every flit of every message arrived.
  u64 cycles = 0;
  u64 messages = 0;
  u64 total_hops = 0;  // route hops summed over messages (not x flits)
  /// Static load: max messages routed over one directed link.
  u32 max_link_load = 0;
  /// Longest route in hops.
  u32 max_route_len = 0;
  Switching switching = Switching::StoreAndForward;
  u32 message_flits = 1;
  u32 link_bandwidth = 1;

  /// True iff every message was fully delivered: the run drained before
  /// max_cycles and no message failed. A capped (truncated) run is no
  /// longer indistinguishable from a drained one.
  bool completed = false;
  /// Messages fully delivered.
  u64 delivered = 0;
  /// Messages that can never arrive: routed over a permanent fault,
  /// exhausted their transient retry budget, or starved behind a failed
  /// dependency.
  u64 failed_messages = 0;
  /// Flit transmissions dropped by transient link faults (each one costs
  /// a retry cycle on that hop).
  u64 dropped_flits = 0;

  /// A simple schedule lower bound for the configured switching mode.
  [[nodiscard]] u64 lower_bound() const {
    const u64 serial = (u64{max_link_load} * message_flits + link_bandwidth -
                        1) /
                       link_bandwidth;
    const u64 latency =
        switching == Switching::StoreAndForward
            ? u64{max_route_len} * message_flits
            : max_route_len == 0 ? 0 : max_route_len + message_flits - 1;
    return std::max(latency, serial);
  }
  /// cycles / lower_bound: 1.0 means the schedule is provably optimal.
  /// Only meaningful for completed runs; 0.0 when !completed (a capped or
  /// fault-broken run has no meaningful schedule length).
  double slowdown_vs_bound = 0.0;

  /// Accounting invariant of the counters above (previously only stated
  /// in comments): every message is delivered, failed, or still in
  /// flight (a truncated run), so delivered + failed never exceeds the
  /// total, and `completed` is exactly "all delivered, none failed".
  /// run() upholds this by construction; tests assert it on every result.
  [[nodiscard]] bool consistent() const noexcept {
    return delivered + failed_messages <= messages &&
           completed == (delivered == messages && failed_messages == 0);
  }
};

/// One suspicion raised by run_live's detection layer: the directed link
/// `from`->`to` stopped delivering. Raised either by the consecutive-
/// failure counter crossing SimConfig::detect_threshold, or by the
/// delivery watchdog (a message made no progress for watchdog_cycles —
/// the path persistent transients take to suspected-permanent).
struct DetectionEvent {
  u64 cycle = 0;  // absolute cycle the suspicion fired
  CubeNode from = 0;
  CubeNode to = 0;
  u32 consecutive_failures = 0;
  bool by_watchdog = false;

  friend bool operator==(const DetectionEvent& x,
                         const DetectionEvent& y) noexcept {
    return x.cycle == y.cycle && x.from == y.from && x.to == y.to &&
           x.consecutive_failures == y.consecutive_failures &&
           x.by_watchdog == y.by_watchdog;
  }
};

/// Outcome of one run_live epoch: the simulator either drained every
/// queued message, or paused at the end of the first cycle in which the
/// detection layer raised suspicions (so a recovery controller can repair
/// the embedding and resume), or hit the max_cycles safety cap.
struct LiveEpochResult {
  /// Absolute cycle at which the epoch stopped (start_cycle + executed).
  u64 end_cycle = 0;
  u64 messages = 0;
  u64 delivered = 0;
  u64 dropped_flits = 0;
  /// True iff the epoch paused on a detection (detections non-empty).
  bool detected = false;
  /// True iff max_cycles elapsed with traffic still pending.
  bool truncated = false;
  /// Watchdog firings deferred because the stalled message was blocked on
  /// bandwidth, not failing transmissions (saturated, not dead).
  u64 deferred_watchdogs = 0;
  std::vector<DetectionEvent> detections;
  /// Per queued message id: fully delivered this epoch? Undelivered
  /// messages are the caller's to retransmit on the repaired embedding.
  std::vector<u8> message_delivered;

  [[nodiscard]] bool drained() const noexcept {
    return delivered == messages;
  }
};

/// The simulator. Add routed messages, then run() to completion.
class CubeNetwork {
 public:
  explicit CubeNetwork(SimConfig config);

  /// Queue a message along a fixed cube route (consecutive nodes must be
  /// cube-adjacent). Zero-length routes complete instantly. Returns the
  /// message id. With `after` >= 0 the message is held until the message
  /// with that id completes (dependent schedules, e.g. broadcast trees).
  u64 add_message(CubePath route, i64 after = -1);

  /// Queue one message per mesh edge of `emb`, in both directions — the
  /// classic stencil neighbor exchange of an SOR/Jacobi sweep.
  void add_stencil_exchange(const Embedding& emb);

  /// Queue messages shifting along one mesh axis (CSHIFT), one per node
  /// with a successor on that axis, in the + direction.
  void add_axis_shift(const Embedding& emb, u32 axis);

  /// Queue a naive broadcast: one message from the mesh node `root` to
  /// every other mesh node, each along the e-cube route between the
  /// images. (A deliberately congestion-heavy workload.)
  void add_broadcast(const Embedding& emb, MeshIndex root);

  /// Run to completion (or max_cycles) and reset the message list.
  [[nodiscard]] SimResult run();

  /// Run one *live* epoch starting at absolute cycle `start_cycle`, with
  /// the schedule's permanent faults arriving mid-run (every event with
  /// cycle <= the current absolute cycle is in effect; nothing is
  /// pre-failed — faults must be *discovered* by the detection layer).
  /// Stops at the end of the first cycle that raises a detection, when
  /// all traffic drains, or after max_cycles. Resets the message list;
  /// the caller requeues undelivered messages (on a repaired embedding)
  /// and calls run_live again with the returned end_cycle to resume.
  [[nodiscard]] LiveEpochResult run_live(u64 start_cycle,
                                         const FaultSchedule& schedule);

  [[nodiscard]] u64 pending() const noexcept { return routes_.size(); }

 private:
  SimConfig config_;
  std::vector<CubePath> routes_;
  std::vector<i64> deps_;
};

/// One-call helper: stencil exchange on an embedding.
[[nodiscard]] SimResult simulate_stencil(const Embedding& emb,
                                         u32 link_bandwidth = 1,
                                         Switching sw =
                                             Switching::StoreAndForward,
                                         u32 flits = 1);

/// Stencil exchange under an explicit configuration (fault injection,
/// retry budgets, ...). `config.cube_dim` must match the embedding's host.
[[nodiscard]] SimResult simulate_stencil(const Embedding& emb,
                                         const SimConfig& config);

}  // namespace hj::sim
