// hjembed: the live-recovery driver — a stencil computation that survives
// mid-run fault arrivals.
//
// Drives the epoch loop: simulate traffic with CubeNetwork::run_live
// until the detection layer raises suspicions, diagnose the suspects
// against the (ground-truth) FaultSchedule, fold confirmed arrivals into
// the cumulative known FaultSet (persistent transients are conservatively
// quarantined as permanent links), hand the broken embedding to
// recovery::RecoveryController, resume with the repaired embedding, and
// retransmit every undelivered message. The run ends when all traffic
// drains; a final audit sweep re-certifies the embedding against every
// fault that arrived during the run, repairing once more if an arrival
// slipped past detection (possible when no remaining traffic crossed it).
//
// Storm hardening (DESIGN §10). Under sustained correlated failures the
// driver must neither thrash nor lie:
//
//   * Quarantine is capacity-limited with LRU probing. Unexplained
//     suspects (persistent transients, flapping links) are quarantined as
//     permanent link faults, but only `quarantine_capacity` at a time;
//     inserting past capacity un-quarantines (heals) the least-recently
//     quarantined link, probing it back into service. A genuinely bad
//     link re-trips detection and is re-quarantined (moving to
//     most-recently-used); a healed flapping link serves traffic again.
//     Only quarantined links are ever healed — ground-truth diagnosed
//     faults are permanent and never enter the LRU.
//   * Repairs run under the controller's per-epoch budget with
//     exponential backoff (RecoveryOptions); a failed repair no longer
//     aborts the run — the next epoch re-detects and retries at a doubled
//     charge until the budget refuses (budget_exhausted), which ends the
//     run with an honest verdict instead of a thrash loop.
//   * Every run terminates in an explicit Verdict: Certified (everything
//     delivered, final embedding certified), Degraded (a valid partial
//     embedding survives; the result carries the uncovered guest nodes
//     and, when repair is provably impossible, the lower-bound witness),
//     or Failed (truncated/invalid — nothing trustworthy survived).
//
// Determinism: the schedule is a canonical sorted object, run_live is
// sequential with deterministic arbitration, detections are raised in
// (cycle, message id) order, diagnosis is a pure function of (suspect,
// schedule), and repair planning is deterministic at every thread count —
// so the same seed and schedule yield a bit-identical RecoveryLog and
// final embedding at HJ_THREADS in {1, 2, 8}.
#pragma once

#include <string>
#include <vector>

#include "core/recovery.hpp"
#include "hypersim/network.hpp"

namespace hj::sim {

/// One repair epoch of a live run (a RecoveryLog entry).
struct RecoveryEpochLog {
  /// Earliest diagnosed ground-truth arrival behind this epoch's
  /// detections; equals detect_cycle for a quarantined transient.
  u64 arrival_cycle = 0;
  /// Absolute cycle the detection layer paused the simulator.
  u64 detect_cycle = 0;
  /// detect_cycle - arrival_cycle: cycles the fault ran undetected.
  u64 detect_latency = 0;
  /// Diagnosed cause(s), e.g. "node 5" / "link 3-7" / "quarantine 3-7",
  /// ';'-joined when one epoch detected several.
  std::string fault;
  /// Ladder rung the repair ended on (recovery::rung_name).
  std::string rung;
  u64 moved_nodes = 0;
  u64 migration_cost = 0;
  /// Post-repair certified metrics.
  u32 dilation = 0;
  u32 congestion = 0;
  std::string plan;
};

/// Terminal verdict of a live run (see the file comment). Ordered from
/// best to worst; exit-code policy is "0 only for Certified".
enum class Verdict : u8 { Certified, Degraded, Failed };

[[nodiscard]] const char* verdict_name(Verdict v) noexcept;

struct LiveRunResult {
  /// True iff every message was delivered-or-accounted, no epoch was
  /// truncated, and the final embedding is verify()-certified against
  /// every fault that arrived during the run.
  bool ok = false;
  /// The explicit terminal verdict: Certified iff ok; Degraded when a
  /// valid partial embedding survives (see uncovered / witness); Failed
  /// when the run was truncated or the final embedding is invalid.
  Verdict verdict = Verdict::Failed;
  /// Absolute cycle the run ended at.
  u64 cycles = 0;
  /// Logical messages: guest edges x 2 directions (contracted edges are
  /// same-processor and count as delivered instantly).
  u64 messages = 0;
  u64 delivered = 0;
  /// Accounted-but-undeliverable messages (epoch budget exhausted).
  u64 failed = 0;
  u64 dropped_flits = 0;
  u32 epochs = 0;
  std::vector<RecoveryEpochLog> log;
  /// The final (possibly repaired) embedding and its certificate against
  /// the ground-truth arrived faults.
  EmbeddingPtr embedding;
  VerifyReport report;
  /// Cumulative known faults when the run ended (diagnosed arrivals,
  /// quarantined transients, and anything found by the audit sweep).
  FaultSet faults;
  /// Guest nodes with at least one undelivered incident message — the
  /// uncovered-node report backing a Degraded verdict (empty when ok).
  std::vector<MeshIndex> uncovered;
  /// Lower-bound evidence for a Degraded verdict when repair was provably
  /// impossible (recovery::impossibility_witness), or the controller's
  /// refusal reason when the backoff budget ran dry. Empty otherwise.
  std::string witness;
  /// Quarantine traffic over the run: insertions (a re-quarantined link
  /// counts again) and LRU probe evictions.
  u64 quarantined = 0;
  u64 quarantine_evictions = 0;
  /// repair() calls refused up front by the backoff budget.
  u64 repairs_denied = 0;
  /// Watchdog firings deferred as "saturated, not dead" (summed over
  /// epochs; see LiveEpochResult::deferred_watchdogs).
  u64 deferred_watchdogs = 0;
};

struct LiveOptions {
  /// Per-epoch simulator configuration. cube_dim is taken from the
  /// embedding; `faults` may carry pre-existing permanent faults and the
  /// transient model, and is copied (the original is not mutated).
  SimConfig sim;
  recovery::RecoveryOptions recovery;
  /// Safety bound on repair epochs before undelivered messages are
  /// declared failed (accounted, ok = false).
  u32 max_epochs = 64;
  /// Max links quarantined at once; inserting past capacity heals the
  /// least-recently quarantined link (the LRU probe). 0 disables the cap
  /// (quarantine grows without bound, the pre-storm behaviour).
  u32 quarantine_capacity = 16;
};

/// Run a full stencil exchange (every guest edge, both directions) on
/// `base` while `schedule`'s faults arrive mid-run, repairing and
/// retransmitting until everything is delivered or accounted.
[[nodiscard]] LiveRunResult run_stencil_with_recovery(
    EmbeddingPtr base, const FaultSchedule& schedule,
    const LiveOptions& opts);

/// The RecoveryLog as a deterministic JSON document (the CLI `recover`
/// subcommand's output).
[[nodiscard]] std::string recovery_log_json(const LiveRunResult& r);

}  // namespace hj::sim
