#include "hypersim/fault.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace hj::sim {
namespace {

u64 parse_u64(const std::string& s) {
  char* end = nullptr;
  const u64 v = std::strtoull(s.c_str(), &end, 10);
  require(end != s.c_str() && *end == '\0',
          "parse_fault_spec: '%s' is not a number", s.c_str());
  return v;
}

}  // namespace

FaultModel parse_fault_spec(const std::string& spec) {
  FaultModel model;
  double p = 0.0;
  u64 seed = 0;
  bool transient = false;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string term = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (term.empty()) continue;
    const std::size_t eq = term.find('=');
    require(eq != std::string::npos,
            "parse_fault_spec: expected key=value, got '%s'", term.c_str());
    const std::string key = term.substr(0, eq);
    const std::string val = term.substr(eq + 1);
    if (key == "node") {
      model.permanent().fail_node(parse_u64(val));
    } else if (key == "link") {
      const std::size_t dash = val.find('-');
      require(dash != std::string::npos,
              "parse_fault_spec: link wants <a>-<b>, got '%s'", val.c_str());
      model.permanent().fail_link(parse_u64(val.substr(0, dash)),
                                  parse_u64(val.substr(dash + 1)));
    } else if (key == "p") {
      char* end = nullptr;
      p = std::strtod(val.c_str(), &end);
      require(end != val.c_str() && *end == '\0',
              "parse_fault_spec: '%s' is not a probability", val.c_str());
      transient = true;
    } else if (key == "seed") {
      seed = parse_u64(val);
    } else {
      require(false, "parse_fault_spec: unknown key '%s'", key.c_str());
    }
  }
  if (transient) model.set_transient(p, seed);
  return model;
}

// --- FaultSchedule ----------------------------------------------------------

namespace {

/// Canonical event order: cycle, then nodes before links, then address —
/// a total order so schedules built in any insertion order compare equal.
bool event_less(const FaultEvent& x, const FaultEvent& y) {
  if (x.cycle != y.cycle) return x.cycle < y.cycle;
  if (x.is_node != y.is_node) return x.is_node;
  if (x.a != y.a) return x.a < y.a;
  return x.b < y.b;
}

/// splitmix64: the schedule generator must be a pure function of the seed.
u64 mix64(u64 x) {
  x += 0x9e3779b97f4a7c15ull;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

}  // namespace

std::string FaultEvent::to_string() const {
  char buf[96];
  if (is_node)
    std::snprintf(buf, sizeof buf, "node %llu",
                  static_cast<unsigned long long>(a));
  else
    std::snprintf(buf, sizeof buf, "link %llu-%llu",
                  static_cast<unsigned long long>(a),
                  static_cast<unsigned long long>(b));
  return buf;
}

void FaultSchedule::insert(FaultEvent e) {
  // Validate on construction: apply_until and diagnose assume a sorted,
  // de-duplicated sequence, and hardware dies exactly once — a second
  // arrival for the same node or link (at any cycle) is a schedule bug,
  // not a new fault.
  for (const FaultEvent& x : events_)
    require(!(x.is_node == e.is_node && x.a == e.a && x.b == e.b),
            "FaultSchedule: duplicate arrival for %s (already fails at "
            "cycle %llu, re-added at cycle %llu)",
            e.to_string().c_str(),
            static_cast<unsigned long long>(x.cycle),
            static_cast<unsigned long long>(e.cycle));
  const auto pos = std::upper_bound(events_.begin(), events_.end(), e,
                                    event_less);
  events_.insert(pos, e);
}

void FaultSchedule::add_node_failure(u64 cycle, CubeNode v) {
  insert(FaultEvent{cycle, true, v, 0});
}

void FaultSchedule::add_link_failure(u64 cycle, CubeNode a, CubeNode b) {
  require(Hypercube::adjacent(a, b),
          "FaultSchedule: link %llu-%llu is not a cube link",
          static_cast<unsigned long long>(a),
          static_cast<unsigned long long>(b));
  if (b < a) std::swap(a, b);
  insert(FaultEvent{cycle, false, a, b});
}

void FaultSchedule::apply_until(u64 cycle, FaultSet& into,
                                std::size_t& cursor) const {
  while (cursor < events_.size() && events_[cursor].cycle <= cycle) {
    const FaultEvent& e = events_[cursor++];
    if (e.is_node)
      into.fail_node(e.a);
    else
      into.fail_link(e.a, e.b);
  }
}

std::optional<FaultEvent> FaultSchedule::diagnose(CubeNode u, CubeNode v,
                                                  u64 up_to_cycle) const {
  // Node deaths explain every incident link failure, so they win over a
  // link event; among candidates the earliest arrival is the cause.
  std::optional<FaultEvent> link_cause;
  for (const FaultEvent& e : events_) {
    if (e.cycle > up_to_cycle) break;
    if (e.is_node) {
      if (e.a == u || e.a == v) return e;
    } else if (!link_cause &&
               ((e.a == u && e.b == v) || (e.a == v && e.b == u))) {
      link_cause = e;
    }
  }
  return link_cause;
}

FaultSchedule FaultSchedule::parse(const std::string& text) {
  FaultSchedule out;
  std::istringstream is(text);
  std::string line;
  u64 lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    std::istringstream ls(line);
    std::string first;
    if (!(ls >> first) || first[0] == '#') continue;  // blank or comment
    char* end = nullptr;
    const u64 cycle = std::strtoull(first.c_str(), &end, 10);
    require(end != first.c_str() && *end == '\0',
            "fault schedule line %llu: '%s' is not a cycle number",
            static_cast<unsigned long long>(lineno), first.c_str());
    std::string kind;
    require(static_cast<bool>(ls >> kind),
            "fault schedule line %llu: expected 'node <v>' or 'link <a> <b>' "
            "after the cycle",
            static_cast<unsigned long long>(lineno));
    u64 a = 0, b = 0;
    if (kind == "node") {
      require(static_cast<bool>(ls >> a),
              "fault schedule line %llu: 'node' wants one address",
              static_cast<unsigned long long>(lineno));
      out.add_node_failure(cycle, a);
    } else if (kind == "link") {
      require(static_cast<bool>(ls >> a >> b),
              "fault schedule line %llu: 'link' wants two addresses",
              static_cast<unsigned long long>(lineno));
      require(Hypercube::adjacent(a, b),
              "fault schedule line %llu: %llu-%llu is not a cube link "
              "(addresses must differ in exactly one bit)",
              static_cast<unsigned long long>(lineno),
              static_cast<unsigned long long>(a),
              static_cast<unsigned long long>(b));
      out.add_link_failure(cycle, a, b);
    } else {
      require(false,
              "fault schedule line %llu: unknown kind '%s' (want node|link)",
              static_cast<unsigned long long>(lineno), kind.c_str());
    }
    std::string extra;
    require(!(ls >> extra),
            "fault schedule line %llu: trailing junk '%s'",
            static_cast<unsigned long long>(lineno), extra.c_str());
  }
  return out;
}

FaultSchedule FaultSchedule::load(const std::string& file) {
  std::ifstream is(file);
  require(is.good(), "fault schedule: cannot open '%s'", file.c_str());
  std::ostringstream buf;
  buf << is.rdbuf();
  return parse(buf.str());
}

FaultSchedule FaultSchedule::random(u32 cube_dim, u32 node_events,
                                    u32 link_events, u64 first_cycle,
                                    u64 spacing, u64 seed) {
  require(cube_dim >= 1 && cube_dim <= 30,
          "FaultSchedule::random: cube dimension %u outside [1, 30]",
          cube_dim);
  FaultSchedule out;
  const u64 mask = (u64{1} << cube_dim) - 1;
  FaultSet taken;  // dedup: each event must name fresh hardware
  u64 ctr = seed * 0x9e3779b97f4a7c15ull + 1;
  u64 cycle = first_cycle;
  for (u32 i = 0; i < node_events + link_events; ++i) {
    const bool want_node = i < node_events;
    for (;;) {
      const u64 r = mix64(ctr++);
      const CubeNode a = r & mask;
      if (want_node) {
        if (taken.node_failed(a)) continue;
        taken.fail_node(a);
        out.add_node_failure(cycle, a);
      } else {
        const CubeNode b = a ^ (u64{1} << (mix64(ctr++) % cube_dim));
        if (taken.link_failed(a, b)) continue;
        taken.fail_link(a, b);
        out.add_link_failure(cycle, a, b);
      }
      break;
    }
    cycle += spacing;
  }
  return out;
}

}  // namespace hj::sim
