#include "hypersim/fault.hpp"

#include <cstdlib>

namespace hj::sim {
namespace {

u64 parse_u64(const std::string& s) {
  char* end = nullptr;
  const u64 v = std::strtoull(s.c_str(), &end, 10);
  require(end != s.c_str() && *end == '\0',
          "parse_fault_spec: '%s' is not a number", s.c_str());
  return v;
}

}  // namespace

FaultModel parse_fault_spec(const std::string& spec) {
  FaultModel model;
  double p = 0.0;
  u64 seed = 0;
  bool transient = false;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string term = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (term.empty()) continue;
    const std::size_t eq = term.find('=');
    require(eq != std::string::npos,
            "parse_fault_spec: expected key=value, got '%s'", term.c_str());
    const std::string key = term.substr(0, eq);
    const std::string val = term.substr(eq + 1);
    if (key == "node") {
      model.permanent().fail_node(parse_u64(val));
    } else if (key == "link") {
      const std::size_t dash = val.find('-');
      require(dash != std::string::npos,
              "parse_fault_spec: link wants <a>-<b>, got '%s'", val.c_str());
      model.permanent().fail_link(parse_u64(val.substr(0, dash)),
                                  parse_u64(val.substr(dash + 1)));
    } else if (key == "p") {
      char* end = nullptr;
      p = std::strtod(val.c_str(), &end);
      require(end != val.c_str() && *end == '\0',
              "parse_fault_spec: '%s' is not a probability", val.c_str());
      transient = true;
    } else if (key == "seed") {
      seed = parse_u64(val);
    } else {
      require(false, "parse_fault_spec: unknown key '%s'", key.c_str());
    }
  }
  if (transient) model.set_transient(p, seed);
  return model;
}

}  // namespace hj::sim
