// hjembed: the storm generator — seeded, correlated failure processes
// for stressing the recovery ladder far past gentle independent drops.
//
// Real cube machines did not lose hardware independently: a power rail
// takes out a physical neighborhood (many addresses inside one Hamming
// ball), a failing link heats and kills the links next to it (cascades),
// and arrivals come in bursts, not a Poisson trickle. A StormGenerator
// turns a StormSpec into exactly that, as a pure function of the seed:
//
//   * Regional  — `regions` epicenters; every failure lands inside a
//     Hamming ball of `region_radius` around one of them (round-robin),
//     so faults cluster in subcubes the way the product plan's factor
//     structure is laid out — the worst case for subcube spare search.
//   * Cascading — each failed link raises the hazard of links adjacent
//     to previous victims: with probability `cascade_p` the next failure
//     shares an endpoint with an earlier one, else it strikes fresh.
//   * Bursty    — addresses are uncorrelated but arrival *times* come in
//     trains: `burst_size` events `intra_burst_spacing` cycles apart,
//     bursts `burst_spacing` cycles apart.
//   * Mixed     — bursts alternate between the regional and cascading
//     address models.
//
// The bursty timing model applies to every kind. On top of the permanent
// arrivals (a FaultSchedule — validated, sorted, deduplicated), a storm
// may carry `flapping_links` FlapSpecs: links that die and heal on a
// deterministic duty cycle, which the live layer must quarantine and
// probe back into service rather than treat as permanent losses.
//
// A `max_fail_fraction` cap bounds the dead fraction of the cube so a
// storm leaves a machine worth repairing; events that cannot be placed
// (cap reached, or hardware exhausted) are dropped and counted in
// StormStats — never silently.
#pragma once

#include <string>
#include <vector>

#include "hypersim/fault.hpp"

namespace hj::sim {

enum class StormKind : u8 { Regional, Cascading, Bursty, Mixed };

[[nodiscard]] const char* storm_kind_name(StormKind k) noexcept;

struct StormSpec {
  u32 cube_dim = 0;
  StormKind kind = StormKind::Regional;
  /// Requested permanent arrivals (placed arrivals may be fewer when the
  /// fail-fraction cap or the hardware runs out; see StormStats).
  u32 events = 100;
  /// Share of arrivals that are node deaths (the rest are link cuts).
  double node_fraction = 0.25;
  u64 first_cycle = 4;
  u32 burst_size = 16;
  u64 burst_spacing = 64;
  u64 intra_burst_spacing = 1;
  /// Regional model: epicenter count and Hamming-ball radius.
  u32 regions = 4;
  u32 region_radius = 2;
  /// Cascading model: probability the next failure is adjacent to a
  /// previous victim.
  double cascade_p = 0.7;
  /// Cap on the fraction of nodes (and of links) a storm may kill.
  double max_fail_fraction = 0.25;
  /// Flapping links layered on the permanent arrivals.
  u32 flapping_links = 0;
  u64 flap_period = 32;
  u64 flap_down = 8;
  u64 seed = 1;
};

struct StormStats {
  u32 node_events = 0;
  u32 link_events = 0;
  /// Requested-but-unplaceable events (fail-fraction cap, or no fresh
  /// hardware found): events == node_events + link_events + dropped.
  u32 dropped_events = 0;
  /// Cycle span from the first arrival to the last.
  u64 span_cycles = 0;
};

struct Storm {
  FaultSchedule schedule;
  std::vector<FlapSpec> flapping;
  StormStats stats;

  /// Install every flapping link into `model` (the permanent arrivals
  /// stay in the schedule — they must *arrive*, not pre-exist).
  void install_flapping(FaultModel& model) const {
    for (const FlapSpec& f : flapping) model.add_flapping(f);
  }
};

/// Generates storms. Construction validates the spec; generate() is a
/// pure function of the spec (call it twice, get the identical storm).
class StormGenerator {
 public:
  explicit StormGenerator(StormSpec spec);

  [[nodiscard]] const StormSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] Storm generate() const;

 private:
  StormSpec spec_;
};

/// Parse the CLI `--storm=<spec>` format: comma-separated key=value
/// terms over the StormSpec fields —
///   kind=regional|cascading|bursty|mixed, events=N, seed=S,
///   node_frac=F, first=C, burst=N, spacing=C, gap=C, regions=N,
///   radius=R, cascade_p=F, cap=F, flap=N, flap_period=C, flap_down=C
/// Unset keys keep their StormSpec defaults; cube_dim is the caller's.
/// Throws std::invalid_argument naming the offending term.
[[nodiscard]] StormSpec parse_storm_spec(const std::string& spec,
                                         u32 cube_dim);

}  // namespace hj::sim
