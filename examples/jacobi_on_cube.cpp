// Example: a Jacobi relaxation sweep on a 2D grid, mapped onto a simulated
// Boolean-cube multiprocessor with two different embeddings.
//
// This is the paper's motivating workload (Section 1: "solution of partial
// differential equations whenever regular grids are appropriate"). Each
// processor owns one grid cell; every sweep it averages its mesh
// neighbors' values, which costs one neighbor exchange on the cube
// network. We run the same computation under
//
//   (a) the Gray-code embedding (dilation 1, but the cube is twice the
//       mesh), and
//   (b) the planner's dilation-2 minimal-expansion embedding,
//
// and report both the numerical result (identical — the embedding is
// transparent) and the simulated communication cost.
#include <cstdio>
#include <vector>

#include "core/planner.hpp"
#include "hypersim/network.hpp"
#include "search/provider.hpp"

using namespace hj;

namespace {

/// One Jacobi sweep through the *embedding*: values live on cube nodes,
/// and every access goes through the node map — if the embedding were
/// wrong, the numerics would be too.
std::vector<double> jacobi_sweep(const Embedding& emb,
                                 const std::vector<double>& cube_values) {
  const Mesh& mesh = emb.guest();
  std::vector<double> next = cube_values;
  for (MeshIndex i = 0; i < mesh.num_nodes(); ++i) {
    const auto nb = mesh.neighbors(i);
    if (nb.empty()) continue;
    double acc = 0;
    for (MeshIndex j : nb) acc += cube_values[emb.map(j)];
    next[emb.map(i)] = acc / static_cast<double>(nb.size());
  }
  return next;
}

double run(const char* label, const Embedding& emb, u32 sweeps) {
  // Initialize: a point source in the middle of the mesh.
  const Mesh& mesh = emb.guest();
  std::vector<double> values(u64{1} << emb.host_dim(), 0.0);
  values[emb.map(mesh.num_nodes() / 2)] = 1.0;

  for (u32 s = 0; s < sweeps; ++s) values = jacobi_sweep(emb, values);

  double checksum = 0;
  for (MeshIndex i = 0; i < mesh.num_nodes(); ++i)
    checksum += values[emb.map(i)] * static_cast<double>(i % 7);

  const sim::SimResult comm = sim::simulate_stencil(emb);
  const double busy = static_cast<double>(mesh.num_nodes()) /
                      static_cast<double>(u64{1} << emb.host_dim());
  std::printf("  %-28s Q%u  exchange %llu cycles/sweep, %4.0f%% busy, "
              "checksum %.6f\n",
              label, emb.host_dim(),
              static_cast<unsigned long long>(comm.cycles), 100 * busy,
              checksum);
  return checksum;
}

}  // namespace

int main() {
  const Shape shape{9, 13};
  std::printf("Jacobi relaxation on a %s grid, 20 sweeps:\n\n",
              shape.to_string().c_str());

  GrayEmbedding gray{Mesh(shape)};
  const double a = run("Gray code (expansion 2)", gray, 20);

  Planner planner;
  planner.set_direct_provider(search::make_search_provider());
  PlanResult plan = planner.plan(shape);
  const double b = run("decomposition (minimal)", *plan.embedding, 20);

  std::printf("\nchecksums agree: %s — the embedding is numerically "
              "transparent;\nthe minimal embedding runs the same problem on "
              "half the machine.\n",
              std::abs(a - b) < 1e-12 ? "yes" : "NO (bug!)");
  return std::abs(a - b) < 1e-12 ? 0 : 1;
}
