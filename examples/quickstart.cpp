// Quickstart: embed a mesh into its minimal Boolean cube and inspect the
// certified metrics.
//
//   $ hj_quickstart [l1 l2 ...]        (default: 5 6 7)
//
// The planner assembles the best embedding it can prove (Gray code, direct
// tables, graph decomposition, axis extension, bounded search) and the
// verifier re-measures everything from scratch.
#include <cstdio>
#include <cstdlib>

#include "core/planner.hpp"
#include "search/provider.hpp"

using namespace hj;

int main(int argc, char** argv) {
  SmallVec<u64, 4> extents;
  for (int i = 1; i < argc; ++i)
    extents.push_back(static_cast<u64>(std::strtoull(argv[i], nullptr, 10)));
  if (extents.empty()) extents = {5, 6, 7};
  const Shape shape{extents};

  Planner planner;
  planner.set_direct_provider(search::make_search_provider());
  const PlanResult r = planner.plan(shape);

  std::printf("mesh      : %s (%llu nodes, %llu edges)\n",
              shape.to_string().c_str(),
              static_cast<unsigned long long>(r.report.guest_nodes),
              static_cast<unsigned long long>(r.report.guest_edges));
  std::printf("cube      : Q%u (%llu nodes)%s\n", r.report.host_dim,
              static_cast<unsigned long long>(u64{1} << r.report.host_dim),
              r.report.minimal_expansion ? ", minimal" : "");
  std::printf("expansion : %.4f\n", r.report.expansion);
  std::printf("dilation  : %u (average %.4f)\n", r.report.dilation,
              r.report.avg_dilation);
  std::printf("congestion: %u (average %.4f)\n", r.report.congestion,
              r.report.avg_congestion);
  std::printf("plan      : %s\n", r.plan.c_str());
  std::printf("valid     : %s\n", r.report.valid ? "yes (verified)" : "NO");

  // The embedding itself: where do the first few mesh nodes land?
  std::printf("\nfirst nodes -> cube addresses:\n");
  const u64 show = std::min<u64>(8, r.report.guest_nodes);
  for (MeshIndex i = 0; i < show; ++i) {
    const Coord c = shape.coord(i);
    std::printf("  (");
    for (u32 d = 0; d < shape.dims(); ++d)
      std::printf("%s%llu", d ? "," : "",
                  static_cast<unsigned long long>(c[d]));
    std::printf(") -> %llu\n",
                static_cast<unsigned long long>(r.embedding->map(i)));
  }
  return r.report.valid ? 0 : 1;
}
