// Example: the search engine as a standalone tool — find (or refute)
// bounded-dilation embeddings for arbitrary small meshes.
//
//   $ hj_find_embedding <dilation> <cube_dim> l1 [l2 ...]
//   $ hj_find_embedding 2 7 5 5 5        # the paper's open shape
//
// Prints a witness node map (verified) or a refutation. This is exactly
// how the committed direct tables (src/core/tables/) were generated.
#include <cstdio>
#include <cstdlib>

#include "core/router.hpp"
#include "core/verify.hpp"
#include "search/anneal.hpp"
#include "search/backtrack.hpp"

using namespace hj;
using namespace hj::search;

int main(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: %s <max_dilation> <cube_dim> l1 [l2 ...]\n",
                 argv[0]);
    return 2;
  }
  const u32 dil = static_cast<u32>(std::atoi(argv[1]));
  const u32 dim = static_cast<u32>(std::atoi(argv[2]));
  SmallVec<u64, 4> extents;
  for (int i = 3; i < argc; ++i)
    extents.push_back(static_cast<u64>(std::strtoull(argv[i], nullptr, 10)));
  const Shape shape{extents};
  const Mesh mesh(shape);

  std::printf("searching: %s -> Q%u, dilation <= %u\n",
              shape.to_string().c_str(), dim, dil);

  BacktrackOptions opts;
  opts.max_dilation = dil;
  opts.node_budget = 300'000'000;
  BacktrackResult bt = backtrack_search(mesh, dim, opts);
  std::optional<std::vector<CubeNode>> witness = bt.map;
  if (!witness && bt.exhausted) {
    std::printf("REFUTED: no such embedding exists (exhaustive, %llu "
                "nodes).\n",
                static_cast<unsigned long long>(bt.nodes_expanded));
    return 1;
  }
  if (!witness) {
    std::printf("backtracking budget exhausted; trying annealing...\n");
    AnnealOptions ao;
    ao.max_dilation = dil;
    ao.iterations = 20'000'000;
    AnnealResult ar = anneal_search(mesh, dim, ao);
    witness = ar.map;
    if (!witness) {
      std::printf("no witness found (best penalty %llu) — inconclusive.\n",
                  static_cast<unsigned long long>(ar.best_penalty));
      return 1;
    }
  }

  ExplicitEmbedding emb(mesh, dim, *witness);
  const RouteStats routes = route_minimize_congestion(emb);
  const VerifyReport r = verify(emb);
  std::printf("FOUND: %s (router: %u passes)\n", summary(r, emb).c_str(),
              routes.passes_used);
  std::printf("node map (row-major):\n");
  for (std::size_t i = 0; i < witness->size(); ++i)
    std::printf("%llu%s", static_cast<unsigned long long>((*witness)[i]),
                i + 1 == witness->size() ? "\n" : ",");
  return r.valid && r.dilation <= dil ? 0 : 1;
}
