// Example: Cannon's matrix multiplication on an embedded processor torus —
// the paper's linear-algebra motivation, end to end.
//
//   $ hj_cannon_multiply [p] [m]       (default: 6x6 grid, 24x24 matrices)
//
// The p x p torus is embedded by the Section 6 machinery; every tile shift
// travels the embedding's cube paths through the simulated network. The
// result is checked against a serial reference.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <random>

#include "core/planner.hpp"
#include "linalg/cannon.hpp"
#include "torus/torus.hpp"

using namespace hj;

int main(int argc, char** argv) {
  const u64 p = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 6;
  const u64 m = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 4 * p;

  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> val(-1.0, 1.0);
  std::vector<double> A(m * m), B(m * m);
  for (double& v : A) v = val(rng);
  for (double& v : B) v = val(rng);

  torus::TorusPlanner planner;
  PlanResult grid = planner.plan(Shape{p, p});
  std::printf("processor torus: %s\n",
              summary(grid.report, *grid.embedding).c_str());
  std::printf("plan           : %s\n\n", grid.plan.c_str());

  la::CannonResult r = la::cannon_multiply(*grid.embedding, m, A, B, 4);
  const std::vector<double> ref = la::reference_multiply(m, A, B);
  double max_err = 0;
  for (std::size_t i = 0; i < ref.size(); ++i)
    max_err = std::max(max_err, std::abs(r.C[i] - ref[i]));

  std::printf("matrices       : %llu x %llu (tiles of %llu x %llu)\n",
              static_cast<unsigned long long>(m),
              static_cast<unsigned long long>(m),
              static_cast<unsigned long long>(m / p),
              static_cast<unsigned long long>(m / p));
  std::printf("rounds         : %llu\n",
              static_cast<unsigned long long>(r.rounds));
  std::printf("messages       : %llu\n",
              static_cast<unsigned long long>(r.messages));
  std::printf("comm cycles    : %llu (skew %llu)\n",
              static_cast<unsigned long long>(r.comm_cycles),
              static_cast<unsigned long long>(r.skew_cycles));
  std::printf("max |error|    : %.3g vs serial reference %s\n", max_err,
              max_err < 1e-9 ? "(exact)" : "(BUG!)");
  return max_err < 1e-9 ? 0 : 1;
}
