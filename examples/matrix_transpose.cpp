// Example: distributed matrix computation on an embedded mesh — the
// paper's linear-algebra motivation (Section 1, [Johnsson 87]).
//
// A matrix is distributed over an l1 x l2 processor mesh embedded in a
// cube; a relaxation-style "transpose-accumulate" kernel makes every
// element travel along its row and column through mesh-neighbor hops. We
// compare the simulated communication schedule of Gray vs decomposition
// embeddings, and check the data movement end-to-end through the node map.
#include <cstdio>
#include <vector>

#include "core/planner.hpp"
#include "hypersim/network.hpp"

using namespace hj;

namespace {

/// Shift the whole matrix one step along `axis` (toroidal ring shift is
/// the usual systolic primitive; here a plain mesh shift with boundary
/// hold). Data lives on cube nodes; movement goes through the embedding.
std::vector<int> mesh_shift(const Embedding& emb, const std::vector<int>& v,
                            u32 axis) {
  const Shape& s = emb.guest().shape();
  std::vector<int> out = v;
  for (MeshIndex i = 0; i < s.num_nodes(); ++i) {
    Coord c = s.coord(i);
    if (c[axis] + 1 < s[axis]) {
      Coord d = c;
      d[axis] += 1;
      out[emb.map(s.index(d))] = v[emb.map(i)];
    }
  }
  return out;
}

void run(const char* label, const Embedding& emb) {
  const Shape& s = emb.guest().shape();
  std::vector<int> data(u64{1} << emb.host_dim(), -1);
  for (MeshIndex i = 0; i < s.num_nodes(); ++i)
    data[emb.map(i)] = static_cast<int>(i);

  // Push everything one step right, then one step down: element (r, c)
  // ends at (r+1, c+1) clamped — verifiable through the map.
  std::vector<int> shifted = mesh_shift(emb, data, 1);
  shifted = mesh_shift(emb, shifted, 0);
  bool ok = true;
  for (MeshIndex i = 0; i < s.num_nodes() && ok; ++i) {
    Coord c = s.coord(i);
    if (c[0] == 0 || c[1] == 0) continue;
    Coord src = c;
    src[0] -= 1;
    src[1] -= 1;
    ok = shifted[emb.map(i)] == static_cast<int>(s.index(src));
  }

  // Communication schedule for the two shifts.
  sim::CubeNetwork net(sim::SimConfig{emb.host_dim()});
  net.add_axis_shift(emb, 1);
  const sim::SimResult row = net.run();
  net.add_axis_shift(emb, 0);
  const sim::SimResult col = net.run();

  std::printf("  %-30s Q%u  row-shift %llu cy, col-shift %llu cy, data %s\n",
              label, emb.host_dim(),
              static_cast<unsigned long long>(row.cycles),
              static_cast<unsigned long long>(col.cycles),
              ok ? "correct" : "WRONG");
}

}  // namespace

int main() {
  const Shape shape{12, 20};
  std::printf("systolic shifts of a matrix on a %s processor mesh:\n\n",
              shape.to_string().c_str());
  GrayEmbedding gray{Mesh(shape)};
  run("Gray code", gray);
  Planner planner;
  PlanResult plan = planner.plan(shape);
  run("decomposition (minimal cube)", *plan.embedding);
  std::printf("\nplan: %s\n", plan.plan.c_str());
  return 0;
}
