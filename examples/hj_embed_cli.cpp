// The hj_embed command-line tool: the library's planners, verifier,
// serializer and simulator behind one binary.
//
//   hj_embed plan 5 6 7                plan a mesh, print the certificate
//   hj_embed torus 10 14               plan a wraparound mesh
//   hj_embed contract 5 19 19          many-to-one into Q5
//   hj_embed save out.hje 7 9          plan and serialize
//   hj_embed verify a.hje [b.hje ...]  reload and re-verify saved files
//   hj_embed sweep 9                   Figure 2 coverage sweep for 2^n
//   hj_embed sim 9 13                  stencil-exchange simulation
//   hj_embed recover 3 3 7             live run with mid-run fault arrivals
//
// The plan and sim commands accept --faults=<spec> (e.g.
// --faults=node=5,link=3-7,p=0.01,seed=42): permanent faults route
// planning through the degradation ladder (detour / remap / many-to-one),
// and sim additionally injects the transient link faults.
//
// The recover command replays a --fault-schedule=<file> of timed
// permanent-fault arrivals (lines "<cycle> node <v>" / "<cycle> link <a>
// <b>") against a live stencil run, repairing via the escalation ladder
// (reroute / migrate / replan) and printing the RecoveryLog as JSON.
// Without a schedule file it generates a small seeded one.
//
// --threads=N (anywhere on the line) sets the worker count of the
// parallel batch engine used by plan, verify and sweep; the default
// comes from HJ_THREADS or the hardware. Results are identical at every
// thread count.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/coverage.hpp"
#include "core/io.hpp"
#include "core/parallel.hpp"
#include "core/planner.hpp"
#include "hypersim/live.hpp"
#include "hypersim/network.hpp"
#include "manytoone/manytoone.hpp"
#include "search/provider.hpp"
#include "torus/torus.hpp"

using namespace hj;

namespace {

sim::FaultModel g_faults;
bool g_have_faults = false;
sim::FaultSchedule g_schedule;
bool g_have_schedule = false;

PlanResult plan_mesh(const Shape& shape) {
  if (g_have_faults && !g_faults.permanent().empty()) {
    Planner planner;
    planner.set_direct_provider(search::make_search_provider());
    planner.set_degrade_provider(m2o::make_degrade_provider());
    return planner.plan_avoiding(shape, g_faults.permanent());
  }
  // Healthy planning goes through the batch engine (canonical-shape
  // dedup + shared factor cache), honouring --threads / HJ_THREADS.
  return plan_batch({shape}, {},
                    [] { return search::make_search_provider(); })[0];
}

Shape parse_shape(int argc, char** argv, int from) {
  SmallVec<u64, 4> extents;
  for (int i = from; i < argc; ++i)
    extents.push_back(std::strtoull(argv[i], nullptr, 10));
  require(!extents.empty(), "expected axis lengths");
  return Shape{extents};
}

int cmd_plan(int argc, char** argv) {
  PlanResult r = plan_mesh(parse_shape(argc, argv, 2));
  std::printf("%splan: %s\n", detailed_summary(r.report, *r.embedding).c_str(),
              r.plan.c_str());
  if (g_have_faults)
    std::printf("faults: %s\n",
                r.report.fault_free ? "avoided (certified)" : "NOT avoided");
  return r.report.valid && r.report.fault_free ? 0 : 1;
}

int cmd_torus(int argc, char** argv) {
  torus::TorusPlanner planner;
  planner.set_direct_provider(search::make_search_provider());
  PlanResult r = planner.plan(parse_shape(argc, argv, 2));
  std::printf("%s\nplan: %s\n", summary(r.report, *r.embedding).c_str(),
              r.plan.c_str());
  return r.report.valid ? 0 : 1;
}

int cmd_contract(int argc, char** argv) {
  require(argc >= 4, "usage: contract <cube_dim> l1 [l2 ...]");
  const u32 n = static_cast<u32>(std::atoi(argv[2]));
  m2o::ContractPlan p = m2o::contract_to_cube(parse_shape(argc, argv, 3), n);
  std::printf("%s\nplan: %s\noptimal load: %llu (achieved %llu)\n",
              summary(p.report, *p.embedding).c_str(), p.plan.c_str(),
              static_cast<unsigned long long>(p.optimal_load),
              static_cast<unsigned long long>(p.report.load_factor));
  return p.report.valid ? 0 : 1;
}

int cmd_save(int argc, char** argv) {
  require(argc >= 4, "usage: save <file> l1 [l2 ...]");
  Planner planner;
  planner.set_direct_provider(search::make_search_provider());
  PlanResult r = planner.plan(parse_shape(argc, argv, 3));
  io::save(*r.embedding, argv[2]);
  std::printf("saved %s -> %s (%s)\n",
              r.embedding->guest().shape().to_string().c_str(), argv[2],
              r.plan.c_str());
  return 0;
}

int cmd_verify(int argc, char** argv) {
  require(argc >= 3, "usage: verify <file> [file ...]");
  std::vector<EmbeddingPtr> embs;
  for (int i = 2; i < argc; ++i) embs.push_back(io::load(argv[i]));
  const std::vector<VerifyReport> reports = verify_batch(embs);
  bool all_valid = true;
  for (std::size_t i = 0; i < embs.size(); ++i) {
    const VerifyReport& r = reports[i];
    if (embs.size() > 1) std::printf("%s: ", argv[2 + i]);
    std::printf("%s", detailed_summary(r, *embs[i]).c_str());
    if (!r.valid) {
      all_valid = false;
      for (const std::string& e : r.errors)
        std::printf("  error: %s\n", e.c_str());
    }
  }
  return all_valid ? 0 : 1;
}

int cmd_sweep(int argc, char** argv) {
  require(argc >= 3, "usage: sweep <n>");
  const u32 n = static_cast<u32>(std::atoi(argv[2]));
  const coverage::SweepCounts c = coverage::sweep_3d(n);
  std::printf("coverage sweep, %u threads: all meshes with axes in "
              "[1, 2^%u]\n", par::thread_count(), n);
  std::printf("total %llu | uncovered %llu | by method 1..4: %llu %llu "
              "%llu %llu\n", static_cast<unsigned long long>(c.total),
              static_cast<unsigned long long>(c.by_method[0]),
              static_cast<unsigned long long>(c.by_method[1]),
              static_cast<unsigned long long>(c.by_method[2]),
              static_cast<unsigned long long>(c.by_method[3]),
              static_cast<unsigned long long>(c.by_method[4]));
  std::printf("cumulative %%: S1=%.1f S2=%.1f S3=%.1f S4=%.1f\n",
              c.cumulative_percent(1), c.cumulative_percent(2),
              c.cumulative_percent(3), c.cumulative_percent(4));
  return 0;
}

int cmd_sim(int argc, char** argv) {
  PlanResult r = plan_mesh(parse_shape(argc, argv, 2));
  for (u32 flits : {1u, 16u}) {
    sim::SimConfig cfg{r.embedding->host_dim()};
    cfg.message_flits = flits;
    if (g_have_faults) cfg.faults = &g_faults;
    cfg.switching = sim::Switching::StoreAndForward;
    sim::SimResult saf = sim::simulate_stencil(*r.embedding, cfg);
    cfg.switching = sim::Switching::CutThrough;
    sim::SimResult ct = sim::simulate_stencil(*r.embedding, cfg);
    std::printf("stencil exchange, %2u flits: store-and-forward %llu "
                "cycles, cut-through %llu cycles (bound %llu)\n",
                flits, static_cast<unsigned long long>(saf.cycles),
                static_cast<unsigned long long>(ct.cycles),
                static_cast<unsigned long long>(saf.lower_bound()));
    if (g_have_faults)
      std::printf("  faults: %s, delivered %llu/%llu, dropped flits %llu\n",
                  saf.completed && ct.completed ? "absorbed" : "NOT absorbed",
                  static_cast<unsigned long long>(saf.delivered),
                  static_cast<unsigned long long>(saf.messages),
                  static_cast<unsigned long long>(saf.dropped_flits));
  }
  return 0;
}

int cmd_recover(int argc, char** argv) {
  PlanResult r = plan_mesh(parse_shape(argc, argv, 2));
  sim::FaultSchedule schedule = g_schedule;
  if (!g_have_schedule)
    // No file given: a small seeded demo schedule (2 node + 1 link
    // arrivals spaced across the run).
    schedule = sim::FaultSchedule::random(r.embedding->host_dim(), 2, 1,
                                         /*first_cycle=*/2, /*spacing=*/6,
                                         /*seed=*/42);
  sim::LiveOptions opts;
  opts.sim.message_flits = 4;
  if (g_have_faults) opts.sim.faults = &g_faults;
  opts.recovery.direct_provider = search::make_search_provider();
  opts.recovery.degrade_provider = m2o::make_degrade_provider();
  const sim::LiveRunResult live =
      sim::run_stencil_with_recovery(r.embedding, schedule, opts);
  std::printf("%s", sim::recovery_log_json(live).c_str());
  return live.ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(
        stderr,
        "usage: %s plan|torus|contract|save|verify|sweep|sim|recover ...\n",
        argv[0]);
    return 2;
  }
  try {
    // Strip --faults=<spec> / --threads=N (anywhere on the line) before
    // dispatch.
    int out = 1;
    for (int i = 1; i < argc; ++i) {
      if (std::strncmp(argv[i], "--faults=", 9) == 0) {
        g_faults = sim::parse_fault_spec(argv[i] + 9);
        g_have_faults = true;
      } else if (std::strncmp(argv[i], "--fault-schedule=", 17) == 0) {
        g_schedule = sim::FaultSchedule::load(argv[i] + 17);
        g_have_schedule = true;
      } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
        par::set_thread_override(static_cast<u32>(std::atoi(argv[i] + 10)));
      } else {
        argv[out++] = argv[i];
      }
    }
    argc = out;
    require(argc >= 2, "expected a command before/after the flags");
    const std::string cmd = argv[1];
    if (cmd == "plan") return cmd_plan(argc, argv);
    if (cmd == "torus") return cmd_torus(argc, argv);
    if (cmd == "contract") return cmd_contract(argc, argv);
    if (cmd == "save") return cmd_save(argc, argv);
    if (cmd == "verify") return cmd_verify(argc, argv);
    if (cmd == "sweep") return cmd_sweep(argc, argv);
    if (cmd == "sim") return cmd_sim(argc, argv);
    if (cmd == "recover") return cmd_recover(argc, argv);
    std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
