// The hj_embed command-line tool: the library's planners, verifier,
// serializer and simulator behind one binary.
//
//   hj_embed plan 5 6 7                plan a mesh, print the certificate
//   hj_embed torus 10 14               plan a wraparound mesh
//   hj_embed contract 5 19 19          many-to-one into Q5
//   hj_embed save out.hje 7 9          plan and serialize
//   hj_embed verify a.hje [b.hje ...]  reload and re-verify saved files
//   hj_embed precompute plans.hjs 512  build the crash-safe plan store
//                                      (checkpointed; rerun to resume)
//   hj_embed serve plans.hjs           answer stdin requests from the
//                                      store, never uncertified
//   hj_embed sweep 9                   Figure 2 coverage sweep for 2^n
//   hj_embed sim 9 13                  stencil-exchange simulation
//   hj_embed recover 3 3 7             live run with mid-run fault arrivals
//   hj_embed storm 3 3 7               live run under a generated fault
//                                      storm (--storm=<spec> to shape it)
//   hj_embed stats [max_axis] [n]      observability demo: plan/simulate a
//                                      seeded workload, print the registry
//
// The plan and sim commands accept --faults=<spec> (e.g.
// --faults=node=5,link=3-7,p=0.01,seed=42): permanent faults route
// planning through the degradation ladder (detour / remap / many-to-one),
// and sim additionally injects the transient link faults.
//
// The recover command replays a --fault-schedule=<file> of timed
// permanent-fault arrivals (lines "<cycle> node <v>" / "<cycle> link <a>
// <b>") against a live stencil run, repairing via the escalation ladder
// (reroute / migrate / replan) and printing the RecoveryLog as JSON.
// Without a schedule file it generates a small seeded one.
//
// The storm command does the same under a generated correlated failure
// storm (regional / cascading / bursty arrivals plus optional flapping
// links; see parse_storm_spec for the --storm=<spec> keys). Both end in
// a one-line verdict — certified, degraded, or failed — and exit 0 only
// when the run is certified (usage errors still exit 2).
//
// --threads=N (anywhere on the line) sets the worker count of the
// parallel batch engine used by plan, verify and sweep; the default
// comes from HJ_THREADS or the hardware. Results are identical at every
// thread count.
//
// --metrics-out=<file> / --trace-out=<file> (any command) turn the
// observability layer on and, after the command runs, write the metrics
// registry as JSON / the span log as Chrome trace_event JSON (load the
// latter in Perfetto or chrome://tracing). HJ_OBS=1 enables the hooks
// without writing files.
//
// Live telemetry (DESIGN.md §14): --flight=<file> maps a file-backed
// flight-recorder ring (the last ~512 events survive kill -9; decode
// with `hj_embed flight <file>`), --events-out=<file> streams every
// structured event as appended JSON lines, and serve additionally takes
// --stats-every=N / --stats-out=<file> for periodic one-line JSON
// snapshots plus the live `stats` protocol command. serve always runs
// with a flight ring and crash handler, so a SIGSEGV/SIGABRT dumps the
// in-flight request's last events to <flight>.dump or stderr.
#include <fcntl.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "core/coverage.hpp"
#include "core/io.hpp"
#include "core/parallel.hpp"
#include "core/planner.hpp"
#include "hypersim/live.hpp"
#include "hypersim/network.hpp"
#include "hypersim/storm.hpp"
#include "manytoone/manytoone.hpp"
#include "obs/obs.hpp"
#include "search/provider.hpp"
#include "store/precompute.hpp"
#include "store/serve.hpp"
#include "store/store.hpp"
#include "torus/torus.hpp"

using namespace hj;

namespace {

sim::FaultModel g_faults;
bool g_have_faults = false;
cost::Objective g_objective = cost::Objective::Lexicographic;
sim::FaultSchedule g_schedule;
bool g_have_schedule = false;
std::string g_storm_spec;
std::string g_metrics_out;
std::string g_trace_out;
std::string g_flight;
std::string g_events_out;
std::string g_stats_out;
u64 g_stats_every = 0;
u64 g_serve_queue = 64;
u64 g_serve_deadline_us = 100000;
u32 g_precompute_batch = 32;

void print_usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s <command> [args] [flags]\n"
      "\n"
      "commands:\n"
      "  plan l1 [l2 ...]           plan a mesh, print the certificate\n"
      "  torus l1 [l2 ...]          plan a wraparound mesh\n"
      "  contract <n> l1 [l2 ...]   many-to-one contraction into Q_n\n"
      "  save <file> l1 [l2 ...]    plan and serialize\n"
      "  verify <file> [file ...]   reload and re-verify saved embeddings\n"
      "  precompute <store> [max_nodes] [max_rank]\n"
      "                             build the crash-safe plan store for\n"
      "                             every canonical shape below the budget\n"
      "                             (checkpointed; rerun to resume)\n"
      "  serve <store|->            answer embedding requests line by line\n"
      "                             on stdin from the store, falling back\n"
      "                             to the live planner ('-' = no store)\n"
      "  sweep <n>                  Figure 2 coverage sweep for 2^n\n"
      "  sim l1 [l2 ...]            stencil-exchange simulation\n"
      "  recover l1 [l2 ...]        live run with mid-run fault arrivals\n"
      "  storm l1 [l2 ...]          live run under a generated fault storm\n"
      "  stats [max_axis] [n]       plan/simulate a seeded workload, print\n"
      "                             the metrics registry summary\n"
      "  flight <ring|dump>         decode a flight-recorder ring file or\n"
      "                             crash dump, print its event lines\n"
      "\n"
      "flags (any command, anywhere on the line):\n"
      "  --threads=N                parallel engine worker count\n"
      "  --objective=<o>            planner ranking order: lexicographic\n"
      "                             (default), dilation, wirelength,\n"
      "                             congestion\n"
      "  --faults=<spec>            inject faults (node=5,link=3-7,p=0.01)\n"
      "  --fault-schedule=<file>    timed fault arrivals for recover\n"
      "  --storm=<spec>             storm shape for the storm command\n"
      "                             (kind=regional,events=200,seed=7,...)\n"
      "  --metrics-out=<file>       write the metrics registry as JSON\n"
      "  --trace-out=<file>         write spans as Chrome trace JSON\n"
      "  --batch=N                  precompute checkpoint batch size (32)\n"
      "  --queue=N                  serve admission queue capacity (64)\n"
      "  --deadline-us=N            serve per-request deadline in\n"
      "                             microseconds (100000; 0 disables)\n"
      "  --flight=<file>            file-backed flight-recorder ring (the\n"
      "                             last ~512 events survive even kill -9;\n"
      "                             crashes also append <file>.dump)\n"
      "  --events-out=<file>        append every structured event as one\n"
      "                             JSON line (crash-safe tail)\n"
      "  --stats-every=N            serve: emit a one-line JSON stats\n"
      "                             snapshot every N requests\n"
      "  --stats-out=<file>         serve: append the snapshots here\n"
      "                             instead of stderr\n",
      argv0);
}

/// The file-operation error path of PR 6's exit-code contract: a missing
/// input file or unwritable output path is a *usage* error — one line on
/// stderr, the usage text, exit 2 — not a crash.
int usage_error(const char* argv0, const std::string& what) {
  std::fprintf(stderr, "error: %s\n\n", what.c_str());
  print_usage(argv0);
  return 2;
}

/// Write the post-command observability exports requested by
/// --metrics-out / --trace-out.
void write_obs_exports() {
  auto dump = [](const std::string& path, const std::string& body) {
    std::ofstream os(path, std::ios::binary);
    require(os.good(), "cannot open '%s' for writing", path.c_str());
    os << body;
  };
  if (!g_metrics_out.empty())
    dump(g_metrics_out, obs::Registry::global().to_json());
  if (!g_trace_out.empty())
    dump(g_trace_out, obs::Trace::global().to_json());
}

PlannerOptions planner_options() {
  PlannerOptions opts;
  opts.objective = g_objective;
  return opts;
}

PlanResult plan_mesh(const Shape& shape) {
  if (g_have_faults && !g_faults.permanent().empty()) {
    Planner planner(planner_options());
    planner.set_direct_provider(search::make_search_provider());
    planner.set_degrade_provider(m2o::make_degrade_provider());
    return planner.plan_avoiding(shape, g_faults.permanent());
  }
  // Healthy planning goes through the batch engine (canonical-shape
  // dedup + shared factor cache), honouring --threads / HJ_THREADS.
  return plan_batch({shape}, planner_options(),
                    [] { return search::make_search_provider(); })[0];
}

Shape parse_shape(int argc, char** argv, int from) {
  SmallVec<u64, 4> extents;
  for (int i = from; i < argc; ++i)
    extents.push_back(std::strtoull(argv[i], nullptr, 10));
  require(!extents.empty(), "expected axis lengths");
  return Shape{extents};
}

int cmd_plan(int argc, char** argv) {
  PlanResult r = plan_mesh(parse_shape(argc, argv, 2));
  std::printf("%splan: %s\n", detailed_summary(r.report, *r.embedding).c_str(),
              r.plan.c_str());
  if (g_have_faults)
    std::printf("faults: %s\n",
                r.report.fault_free ? "avoided (certified)" : "NOT avoided");
  return r.report.valid && r.report.fault_free ? 0 : 1;
}

int cmd_torus(int argc, char** argv) {
  torus::TorusPlanner planner;
  planner.set_direct_provider(search::make_search_provider());
  PlanResult r = planner.plan(parse_shape(argc, argv, 2));
  std::printf("%s\nplan: %s\n", summary(r.report, *r.embedding).c_str(),
              r.plan.c_str());
  return r.report.valid ? 0 : 1;
}

int cmd_contract(int argc, char** argv) {
  require(argc >= 4, "usage: contract <cube_dim> l1 [l2 ...]");
  const u32 n = static_cast<u32>(std::atoi(argv[2]));
  m2o::ContractPlan p = m2o::contract_to_cube(parse_shape(argc, argv, 3), n);
  std::printf("%s\nplan: %s\noptimal load: %llu (achieved %llu)\n",
              summary(p.report, *p.embedding).c_str(), p.plan.c_str(),
              static_cast<unsigned long long>(p.optimal_load),
              static_cast<unsigned long long>(p.report.load_factor));
  return p.report.valid ? 0 : 1;
}

int cmd_save(int argc, char** argv) {
  require(argc >= 4, "usage: save <file> l1 [l2 ...]");
  Planner planner(planner_options());
  planner.set_direct_provider(search::make_search_provider());
  PlanResult r = planner.plan(parse_shape(argc, argv, 3));
  try {
    io::save(*r.embedding, argv[2]);
  } catch (const std::exception& e) {
    return usage_error(argv[0], e.what());
  }
  std::printf("saved %s -> %s (%s)\n",
              r.embedding->guest().shape().to_string().c_str(), argv[2],
              r.plan.c_str());
  return 0;
}

int cmd_verify(int argc, char** argv) {
  require(argc >= 3, "usage: verify <file> [file ...]");
  std::vector<EmbeddingPtr> embs;
  for (int i = 2; i < argc; ++i) {
    try {
      embs.push_back(io::load(argv[i]));
    } catch (const std::exception& e) {
      return usage_error(argv[0], e.what());
    }
  }
  const std::vector<VerifyReport> reports = verify_batch(embs);
  bool all_valid = true;
  for (std::size_t i = 0; i < embs.size(); ++i) {
    const VerifyReport& r = reports[i];
    if (embs.size() > 1) std::printf("%s: ", argv[2 + i]);
    std::printf("%s", detailed_summary(r, *embs[i]).c_str());
    if (!r.valid) {
      all_valid = false;
      for (const std::string& e : r.errors)
        std::printf("  error: %s\n", e.c_str());
    }
  }
  return all_valid ? 0 : 1;
}

int cmd_precompute(int argc, char** argv) {
  require(argc >= 3, "usage: precompute <store> [max_nodes] [max_rank]");
  store::PrecomputeOptions opts;
  opts.planner = planner_options();
  opts.batch_size = g_precompute_batch;
  if (argc >= 4) opts.max_nodes = std::strtoull(argv[3], nullptr, 10);
  if (argc >= 5) opts.max_rank = static_cast<u32>(std::atoi(argv[4]));
  store::PrecomputeResult r;
  try {
    r = store::precompute(argv[2], opts,
                          [] { return search::make_search_provider(); });
  } catch (const std::runtime_error& e) {
    return usage_error(argv[0], e.what());
  }
  std::printf("precompute %s: %llu shapes in %llu batches "
              "(%llu resumed from the journal, %llu planned",
              argv[2], static_cast<unsigned long long>(r.shapes_total),
              static_cast<unsigned long long>(r.batches_total),
              static_cast<unsigned long long>(r.batches_resumed),
              static_cast<unsigned long long>(r.batches_planned));
  if (r.journal_dropped_bytes)
    std::printf(", torn tail of %llu bytes dropped",
                static_cast<unsigned long long>(r.journal_dropped_bytes));
  std::printf(")\n%s\n", r.complete ? "store finalized"
                                    : "store NOT finalized (partial run)");
  return r.complete ? 0 : 1;
}

int cmd_serve(int argc, char** argv) {
  require(argc >= 3, "usage: serve <store|->");
  store::ServeOptions opts;
  opts.planner = planner_options();
  opts.queue_cap = g_serve_queue;
  opts.deadline_us = g_serve_deadline_us;
  opts.stats_every = g_stats_every;
  opts.stats_out = g_stats_out;
  // The daemon always flies with a recorder: if --flight did not attach
  // a file-backed ring, attach the anonymous one, and install the crash
  // handler (dump to <flight>.dump, or stderr without --flight) so a
  // dying daemon names its in-flight request.
  obs::flight::install_crash_handler(
      g_flight.empty() ? std::string{} : g_flight + ".dump");
  std::optional<store::PlanStore> ps;
  const std::string path = argv[2];
  if (path != "-") {
    try {
      ps.emplace(store::PlanStore::open(path));
    } catch (const std::runtime_error& e) {
      return usage_error(argv[0], e.what());
    }
  }
  store::Server server(ps ? &*ps : nullptr, opts,
                       [] { return search::make_search_provider(); });
  const int rc = store::run_serve(std::cin, std::cout, server);
  const store::ServeStats st = server.stats();
  std::fprintf(stderr,
               "serve: %llu requests (%llu warm, %llu cold, %llu degraded, "
               "%llu shed, %llu errors)\n",
               static_cast<unsigned long long>(st.requests),
               static_cast<unsigned long long>(st.warm),
               static_cast<unsigned long long>(st.cold),
               static_cast<unsigned long long>(st.degraded),
               static_cast<unsigned long long>(st.shed),
               static_cast<unsigned long long>(st.errors));
  return rc;
}

int cmd_flight(int argc, char** argv) {
  require(argc >= 3, "usage: flight <ring-or-dump-file>");
  std::vector<std::string> lines;
  try {
    lines = obs::flight::read_ring(argv[2]);
  } catch (const std::invalid_argument& e) {
    return usage_error(argv[0], e.what());
  }
  for (const std::string& l : lines) std::printf("%s\n", l.c_str());
  std::fprintf(stderr, "flight %s: %zu event lines\n", argv[2], lines.size());
  return 0;
}

int cmd_sweep(int argc, char** argv) {
  require(argc >= 3, "usage: sweep <n>");
  const u32 n = static_cast<u32>(std::atoi(argv[2]));
  const coverage::SweepCounts c = coverage::sweep_3d(n);
  std::printf("coverage sweep, %u threads: all meshes with axes in "
              "[1, 2^%u]\n", par::thread_count(), n);
  std::printf("total %llu | uncovered %llu | by method 1..4: %llu %llu "
              "%llu %llu\n", static_cast<unsigned long long>(c.total),
              static_cast<unsigned long long>(c.by_method[0]),
              static_cast<unsigned long long>(c.by_method[1]),
              static_cast<unsigned long long>(c.by_method[2]),
              static_cast<unsigned long long>(c.by_method[3]),
              static_cast<unsigned long long>(c.by_method[4]));
  std::printf("cumulative %%: S1=%.1f S2=%.1f S3=%.1f S4=%.1f\n",
              c.cumulative_percent(1), c.cumulative_percent(2),
              c.cumulative_percent(3), c.cumulative_percent(4));
  return 0;
}

int cmd_sim(int argc, char** argv) {
  PlanResult r = plan_mesh(parse_shape(argc, argv, 2));
  for (u32 flits : {1u, 16u}) {
    sim::SimConfig cfg{r.embedding->host_dim()};
    cfg.message_flits = flits;
    if (g_have_faults) cfg.faults = &g_faults;
    cfg.switching = sim::Switching::StoreAndForward;
    sim::SimResult saf = sim::simulate_stencil(*r.embedding, cfg);
    cfg.switching = sim::Switching::CutThrough;
    sim::SimResult ct = sim::simulate_stencil(*r.embedding, cfg);
    std::printf("stencil exchange, %2u flits: store-and-forward %llu "
                "cycles, cut-through %llu cycles (bound %llu)\n",
                flits, static_cast<unsigned long long>(saf.cycles),
                static_cast<unsigned long long>(ct.cycles),
                static_cast<unsigned long long>(saf.lower_bound()));
    if (g_have_faults)
      std::printf("  faults: %s, delivered %llu/%llu, dropped flits %llu\n",
                  saf.completed && ct.completed ? "absorbed" : "NOT absorbed",
                  static_cast<unsigned long long>(saf.delivered),
                  static_cast<unsigned long long>(saf.messages),
                  static_cast<unsigned long long>(saf.dropped_flits));
  }
  return 0;
}

/// The one-line verdict both live commands end with, and the exit-code
/// policy: 0 only for a certified run (2 stays reserved for usage
/// errors, which never reach this point).
int finish_live_run(const sim::LiveRunResult& live) {
  std::printf("%s", sim::recovery_log_json(live).c_str());
  std::printf("verdict: %s (%llu/%llu delivered, %llu epochs",
              sim::verdict_name(live.verdict),
              static_cast<unsigned long long>(live.delivered),
              static_cast<unsigned long long>(live.messages),
              static_cast<unsigned long long>(live.epochs));
  if (!live.uncovered.empty())
    std::printf(", %llu uncovered nodes",
                static_cast<unsigned long long>(live.uncovered.size()));
  if (!live.witness.empty())
    std::printf("; %s", live.witness.c_str());
  std::printf(")\n");
  return live.verdict == sim::Verdict::Certified ? 0 : 1;
}

int cmd_recover(int argc, char** argv) {
  PlanResult r = plan_mesh(parse_shape(argc, argv, 2));
  sim::FaultSchedule schedule = g_schedule;
  if (!g_have_schedule)
    // No file given: a small seeded demo schedule (2 node + 1 link
    // arrivals spaced across the run).
    schedule = sim::FaultSchedule::random(r.embedding->host_dim(), 2, 1,
                                         /*first_cycle=*/2, /*spacing=*/6,
                                         /*seed=*/42);
  sim::LiveOptions opts;
  opts.sim.message_flits = 4;
  if (g_have_faults) opts.sim.faults = &g_faults;
  opts.recovery.direct_provider = search::make_search_provider();
  opts.recovery.degrade_provider = m2o::make_degrade_provider();
  const sim::LiveRunResult live =
      sim::run_stencil_with_recovery(r.embedding, schedule, opts);
  return finish_live_run(live);
}

int cmd_storm(int argc, char** argv) {
  PlanResult r = plan_mesh(parse_shape(argc, argv, 2));
  // A gentle default storm when no --storm= was given: regional, a few
  // dozen arrivals, one flapping link — enough to show every mechanism.
  sim::StormSpec spec = sim::parse_storm_spec(
      g_storm_spec.empty() ? "events=24,flap=1" : g_storm_spec,
      r.embedding->host_dim());
  const sim::Storm storm = sim::StormGenerator(spec).generate();
  std::printf("storm: kind=%s arrivals=%u (%u node, %u link, %u dropped) "
              "flapping=%llu span=%llu cycles\n",
              sim::storm_kind_name(spec.kind),
              storm.stats.node_events + storm.stats.link_events,
              storm.stats.node_events, storm.stats.link_events,
              storm.stats.dropped_events,
              static_cast<unsigned long long>(storm.flapping.size()),
              static_cast<unsigned long long>(storm.stats.span_cycles));
  sim::FaultModel faults = g_have_faults ? g_faults : sim::FaultModel{};
  storm.install_flapping(faults);
  sim::LiveOptions opts;
  opts.sim.message_flits = 4;
  opts.sim.faults = &faults;
  opts.recovery.direct_provider = search::make_search_provider();
  opts.recovery.degrade_provider = m2o::make_degrade_provider();
  const sim::LiveRunResult live =
      sim::run_stencil_with_recovery(r.embedding, storm.schedule, opts);
  return finish_live_run(live);
}

int cmd_stats(int argc, char** argv) {
  // A seeded, self-contained workload that exercises every instrumented
  // layer: batch planning (cache + dedup), the parallel engine, and the
  // network simulator. Axes are drawn from [2, max_axis] (default 512 —
  // the full paper-scale mesh range) but shapes are capped at 2^18 guest
  // nodes so a sample stays seconds, not hours.
  const u64 max_axis =
      argc >= 3 ? std::strtoull(argv[2], nullptr, 10) : 512;
  const u64 samples =
      argc >= 4 ? std::strtoull(argv[3], nullptr, 10) : 128;
  require(max_axis >= 2 && max_axis <= (u64{1} << 20),
          "stats: max_axis must be in [2, 2^20]");
  require(samples >= 1 && samples <= 100'000,
          "stats: sample count must be in [1, 100000]");
  obs::set_enabled(true);

  constexpr u64 kMaxNodes = u64{1} << 18;
  std::mt19937_64 rng(0x580B5ULL);
  std::uniform_int_distribution<u64> axis(2, max_axis);
  std::vector<Shape> shapes;
  shapes.reserve(samples);
  while (shapes.size() < samples) {
    const u64 a = axis(rng), b = axis(rng), c = axis(rng);
    if (a > kMaxNodes / b || a * b > kMaxNodes / c) continue;
    shapes.push_back(Shape{{a, b, c}});
  }

  ShardedPlanCache cache;
  const std::vector<PlanResult> plans = plan_batch(
      shapes, planner_options(), [] { return search::make_search_provider(); },
      &cache);

  // Run the stencil simulator on a handful of the small results (the
  // flit-level model walks every cycle; Q13 is plenty to populate the
  // link-utilization histograms).
  u64 simmed = 0;
  for (const PlanResult& r : plans) {
    if (simmed == 8) break;
    if (r.embedding->host_dim() > 13) continue;
    const sim::SimResult s = sim::simulate_stencil(*r.embedding);
    require(s.consistent(), "stats: simulator accounting broke");
    ++simmed;
  }

  auto& reg = obs::Registry::global();
  reg.gauge("plancache.size", obs::Kind::Timing)
      .set(static_cast<i64>(cache.size()));

  const u64 lookups =
      reg.counter("plancache.lookups", obs::Kind::Timing).value();
  const u64 hits = reg.counter("plancache.hits", obs::Kind::Timing).value();
  const u64 batched = reg.counter("plan.batch.shapes").value();
  const u64 unique = reg.counter("plan.batch.unique").value();
  std::printf("stats workload: %llu shapes (axes in [2, %llu], <= 2^18 "
              "nodes), %llu simulated\n",
              static_cast<unsigned long long>(shapes.size()),
              static_cast<unsigned long long>(max_axis),
              static_cast<unsigned long long>(simmed));
  std::printf("cache hit rate: %.1f%% (%llu/%llu lookups)\n",
              lookups ? 100.0 * static_cast<double>(hits) /
                            static_cast<double>(lookups)
                      : 0.0,
              static_cast<unsigned long long>(hits),
              static_cast<unsigned long long>(lookups));
  std::printf("dedup ratio: %.2fx (%llu shapes -> %llu canonical)\n",
              unique ? static_cast<double>(batched) /
                           static_cast<double>(unique)
                     : 0.0,
              static_cast<unsigned long long>(batched),
              static_cast<unsigned long long>(unique));

  // Optimality-gap columns (value / lower bound per certificate).
  struct GapCol {
    const char* name;
    double sum = 0, max = 0;
  } cols[3] = {{"dil"}, {"wl"}, {"cong"}};
  for (const PlanResult& r : plans) {
    const double g[3] = {
        cost::gap(r.report.dilation, r.report.bounds.dilation),
        cost::gap(static_cast<double>(r.report.wirelength),
                  static_cast<double>(r.report.bounds.wirelength)),
        cost::gap(r.report.congestion, r.report.bounds.congestion)};
    for (int c = 0; c < 3; ++c) {
      cols[c].sum += g[c];
      cols[c].max = std::max(cols[c].max, g[c]);
    }
  }
  std::printf("optimality gaps (objective %s):",
              cost::objective_name(g_objective));
  for (const GapCol& c : cols)
    std::printf("  %s avg %.2fx max %.2fx",
                c.name,
                plans.empty() ? 1.0 : c.sum / static_cast<double>(plans.size()),
                c.max);
  std::printf("\n");

  std::printf("\n%s", reg.summary().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage(argv[0]);
    return 2;
  }
  try {
    // Strip --faults=<spec> / --threads=N / the observability export
    // flags (anywhere on the line) before dispatch.
    int out = 1;
    for (int i = 1; i < argc; ++i) {
      if (std::strncmp(argv[i], "--faults=", 9) == 0) {
        g_faults = sim::parse_fault_spec(argv[i] + 9);
        g_have_faults = true;
      } else if (std::strncmp(argv[i], "--fault-schedule=", 17) == 0) {
        g_schedule = sim::FaultSchedule::load(argv[i] + 17);
        g_have_schedule = true;
      } else if (std::strncmp(argv[i], "--storm=", 8) == 0) {
        g_storm_spec = argv[i] + 8;
      } else if (std::strncmp(argv[i], "--objective=", 12) == 0) {
        const auto obj = cost::parse_objective(argv[i] + 12);
        if (!obj) {
          std::fprintf(stderr,
                       "unknown objective '%s' (expected lexicographic, "
                       "dilation, wirelength or congestion)\n\n",
                       argv[i] + 12);
          print_usage(argv[0]);
          return 2;
        }
        g_objective = *obj;
      } else if (std::strncmp(argv[i], "--batch=", 8) == 0) {
        g_precompute_batch = static_cast<u32>(std::atoi(argv[i] + 8));
      } else if (std::strncmp(argv[i], "--queue=", 8) == 0) {
        g_serve_queue = std::strtoull(argv[i] + 8, nullptr, 10);
      } else if (std::strncmp(argv[i], "--deadline-us=", 14) == 0) {
        g_serve_deadline_us = std::strtoull(argv[i] + 14, nullptr, 10);
      } else if (std::strncmp(argv[i], "--flight=", 9) == 0) {
        g_flight = argv[i] + 9;
        require(!g_flight.empty(), "--flight= needs a file path");
        if (!obs::flight::init_file(g_flight))
          return usage_error(argv[0],
                             "cannot map flight ring '" + g_flight + "'");
        // Any command flown with a ring also gets the crash handler (and
        // the Failed-verdict dump target): postmortems go to <ring>.dump.
        obs::flight::install_crash_handler(g_flight + ".dump");
      } else if (std::strncmp(argv[i], "--events-out=", 13) == 0) {
        g_events_out = argv[i] + 13;
        const int fd = ::open(g_events_out.c_str(),
                              O_WRONLY | O_CREAT | O_TRUNC | O_APPEND, 0644);
        if (fd < 0)
          return usage_error(argv[0],
                             "cannot open '" + g_events_out + "' for writing");
        obs::EventLog::global().set_stream_fd(fd);  // lives until exit
      } else if (std::strncmp(argv[i], "--stats-every=", 14) == 0) {
        g_stats_every = std::strtoull(argv[i] + 14, nullptr, 10);
      } else if (std::strncmp(argv[i], "--stats-out=", 12) == 0) {
        g_stats_out = argv[i] + 12;
      } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
        par::set_thread_override(static_cast<u32>(std::atoi(argv[i] + 10)));
      } else if (std::strncmp(argv[i], "--metrics-out=", 14) == 0) {
        g_metrics_out = argv[i] + 14;
        obs::set_enabled(true);
      } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
        g_trace_out = argv[i] + 12;
        obs::set_enabled(true);
      } else {
        argv[out++] = argv[i];
      }
    }
    argc = out;
    require(argc >= 2, "expected a command before/after the flags");
    const std::string cmd = argv[1];
    int rc = -1;
    if (cmd == "plan") rc = cmd_plan(argc, argv);
    else if (cmd == "torus") rc = cmd_torus(argc, argv);
    else if (cmd == "contract") rc = cmd_contract(argc, argv);
    else if (cmd == "save") rc = cmd_save(argc, argv);
    else if (cmd == "verify") rc = cmd_verify(argc, argv);
    else if (cmd == "precompute") rc = cmd_precompute(argc, argv);
    else if (cmd == "serve") rc = cmd_serve(argc, argv);
    else if (cmd == "sweep") rc = cmd_sweep(argc, argv);
    else if (cmd == "sim") rc = cmd_sim(argc, argv);
    else if (cmd == "recover") rc = cmd_recover(argc, argv);
    else if (cmd == "storm") rc = cmd_storm(argc, argv);
    else if (cmd == "stats") rc = cmd_stats(argc, argv);
    else if (cmd == "flight") rc = cmd_flight(argc, argv);
    if (rc < 0) {
      std::fprintf(stderr, "unknown command '%s'\n\n", cmd.c_str());
      print_usage(argv[0]);
      return 2;
    }
    write_obs_exports();
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
