// Example: mapping wraparound meshes (tori) onto Boolean cubes — the
// Section 6 machinery as a small interactive tool.
//
//   $ hj_torus_mapper [l1 l2 ...]      (default: 10 14)
//
// Prints the chosen per-axis scheme (Gray ring / small ring table / Lemma 3
// half / Lemma 4 quarter), the quotient-mesh plan, and the certified
// metrics, then spot-checks every wraparound edge.
#include <cstdio>
#include <cstdlib>

#include "search/provider.hpp"
#include "torus/torus.hpp"

using namespace hj;

int main(int argc, char** argv) {
  SmallVec<u64, 4> extents;
  for (int i = 1; i < argc; ++i)
    extents.push_back(static_cast<u64>(std::strtoull(argv[i], nullptr, 10)));
  if (extents.empty()) extents = {10, 14};
  const Shape shape{extents};

  torus::TorusPlanner planner;
  planner.set_direct_provider(search::make_search_provider());
  const PlanResult r = planner.plan(shape);

  std::printf("torus     : %s (all axes wrap)\n", shape.to_string().c_str());
  std::printf("result    : %s\n", summary(r.report, *r.embedding).c_str());
  std::printf("plan      : %s\n", r.plan.c_str());

  u32 wrap_max = 0;
  u64 wrap_edges = 0;
  r.embedding->guest().for_each_edge([&](const MeshEdge& e) {
    if (!e.wrap) return;
    ++wrap_edges;
    wrap_max = std::max(
        wrap_max, static_cast<u32>(r.embedding->edge_path(e).size() - 1));
  });
  std::printf("wraparound: %llu wrap edges, worst dilation %u\n",
              static_cast<unsigned long long>(wrap_edges), wrap_max);

  // Corollary 3 quick check for 2D tori.
  if (shape.dims() == 2) {
    const u64 l1 = shape[0], l2 = shape[1];
    const bool even = l1 % 2 == 0 && l2 % 2 == 0;
    const bool quarter =
        ceil_pow2(l1 * l2) ==
        16 * ceil_pow2(((l1 + 3) / 4) * ((l2 + 3) / 4));
    const bool half =
        ceil_pow2(l1 * l2) == 4 * ceil_pow2(((l1 + 1) / 2) * ((l2 + 1) / 2));
    std::printf("Corollary 3: dil<=2 condition %s, dil<=3 condition %s\n",
                (even || quarter) ? "holds" : "fails",
                half ? "holds" : "fails");
  }
  return r.report.valid ? 0 : 1;
}
