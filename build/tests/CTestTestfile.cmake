# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_embedding[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_product[1]_include.cmake")
include("/root/repo/build/tests/test_direct[1]_include.cmake")
include("/root/repo/build/tests/test_coverage[1]_include.cmake")
include("/root/repo/build/tests/test_planner[1]_include.cmake")
include("/root/repo/build/tests/test_search[1]_include.cmake")
include("/root/repo/build/tests/test_torus[1]_include.cmake")
include("/root/repo/build/tests/test_manytoone[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_hypersim[1]_include.cmake")
include("/root/repo/build/tests/test_reshape[1]_include.cmake")
include("/root/repo/build/tests/test_linalg[1]_include.cmake")
