# Empty compiler generated dependencies file for test_manytoone.
# This may be replaced when dependencies are built.
