file(REMOVE_RECURSE
  "CMakeFiles/test_manytoone.dir/manytoone/manytoone_test.cpp.o"
  "CMakeFiles/test_manytoone.dir/manytoone/manytoone_test.cpp.o.d"
  "test_manytoone"
  "test_manytoone.pdb"
  "test_manytoone[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_manytoone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
