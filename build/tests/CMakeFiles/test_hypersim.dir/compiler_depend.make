# Empty compiler generated dependencies file for test_hypersim.
# This may be replaced when dependencies are built.
