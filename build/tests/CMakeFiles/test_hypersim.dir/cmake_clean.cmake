file(REMOVE_RECURSE
  "CMakeFiles/test_hypersim.dir/hypersim/collectives_test.cpp.o"
  "CMakeFiles/test_hypersim.dir/hypersim/collectives_test.cpp.o.d"
  "CMakeFiles/test_hypersim.dir/hypersim/network_test.cpp.o"
  "CMakeFiles/test_hypersim.dir/hypersim/network_test.cpp.o.d"
  "test_hypersim"
  "test_hypersim.pdb"
  "test_hypersim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hypersim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
