# Empty dependencies file for test_direct.
# This may be replaced when dependencies are built.
