# Empty dependencies file for test_product.
# This may be replaced when dependencies are built.
