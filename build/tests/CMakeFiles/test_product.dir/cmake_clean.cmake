file(REMOVE_RECURSE
  "CMakeFiles/test_product.dir/core/product_test.cpp.o"
  "CMakeFiles/test_product.dir/core/product_test.cpp.o.d"
  "test_product"
  "test_product.pdb"
  "test_product[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_product.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
