file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/gray_test.cpp.o"
  "CMakeFiles/test_core.dir/core/gray_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/hypercube_test.cpp.o"
  "CMakeFiles/test_core.dir/core/hypercube_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/mesh_test.cpp.o"
  "CMakeFiles/test_core.dir/core/mesh_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/shape_test.cpp.o"
  "CMakeFiles/test_core.dir/core/shape_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/small_vec_test.cpp.o"
  "CMakeFiles/test_core.dir/core/small_vec_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
