file(REMOVE_RECURSE
  "CMakeFiles/exp_cannon.dir/exp_cannon.cpp.o"
  "CMakeFiles/exp_cannon.dir/exp_cannon.cpp.o.d"
  "exp_cannon"
  "exp_cannon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_cannon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
