# Empty compiler generated dependencies file for exp_cannon.
# This may be replaced when dependencies are built.
