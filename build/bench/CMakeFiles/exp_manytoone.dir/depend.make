# Empty dependencies file for exp_manytoone.
# This may be replaced when dependencies are built.
