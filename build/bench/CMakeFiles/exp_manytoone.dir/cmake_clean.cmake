file(REMOVE_RECURSE
  "CMakeFiles/exp_manytoone.dir/exp_manytoone.cpp.o"
  "CMakeFiles/exp_manytoone.dir/exp_manytoone.cpp.o.d"
  "exp_manytoone"
  "exp_manytoone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_manytoone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
