
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/exp_manytoone.cpp" "bench/CMakeFiles/exp_manytoone.dir/exp_manytoone.cpp.o" "gcc" "bench/CMakeFiles/exp_manytoone.dir/exp_manytoone.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/manytoone/CMakeFiles/hj_manytoone.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hj_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
