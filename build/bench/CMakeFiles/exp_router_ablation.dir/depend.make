# Empty dependencies file for exp_router_ablation.
# This may be replaced when dependencies are built.
