file(REMOVE_RECURSE
  "CMakeFiles/exp_router_ablation.dir/exp_router_ablation.cpp.o"
  "CMakeFiles/exp_router_ablation.dir/exp_router_ablation.cpp.o.d"
  "exp_router_ablation"
  "exp_router_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_router_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
