# Empty dependencies file for fig1_gray_fraction.
# This may be replaced when dependencies are built.
