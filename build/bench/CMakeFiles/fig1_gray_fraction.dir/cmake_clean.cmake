file(REMOVE_RECURSE
  "CMakeFiles/fig1_gray_fraction.dir/fig1_gray_fraction.cpp.o"
  "CMakeFiles/fig1_gray_fraction.dir/fig1_gray_fraction.cpp.o.d"
  "fig1_gray_fraction"
  "fig1_gray_fraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_gray_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
