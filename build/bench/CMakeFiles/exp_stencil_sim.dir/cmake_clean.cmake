file(REMOVE_RECURSE
  "CMakeFiles/exp_stencil_sim.dir/exp_stencil_sim.cpp.o"
  "CMakeFiles/exp_stencil_sim.dir/exp_stencil_sim.cpp.o.d"
  "exp_stencil_sim"
  "exp_stencil_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_stencil_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
