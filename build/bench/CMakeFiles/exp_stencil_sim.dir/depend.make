# Empty dependencies file for exp_stencil_sim.
# This may be replaced when dependencies are built.
