# Empty dependencies file for exp_3d_small.
# This may be replaced when dependencies are built.
