file(REMOVE_RECURSE
  "CMakeFiles/exp_3d_small.dir/exp_3d_small.cpp.o"
  "CMakeFiles/exp_3d_small.dir/exp_3d_small.cpp.o.d"
  "exp_3d_small"
  "exp_3d_small.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_3d_small.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
