# Empty compiler generated dependencies file for exp_planner_quality.
# This may be replaced when dependencies are built.
