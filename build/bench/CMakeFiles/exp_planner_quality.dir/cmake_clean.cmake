file(REMOVE_RECURSE
  "CMakeFiles/exp_planner_quality.dir/exp_planner_quality.cpp.o"
  "CMakeFiles/exp_planner_quality.dir/exp_planner_quality.cpp.o.d"
  "exp_planner_quality"
  "exp_planner_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_planner_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
